// Quickstart: train a softmax classifier with 4 simulated workers, first
// with fully synchronous SGD (tau=1), then with the AdaComm adaptive
// communication controller, and compare the simulated wall-clock each needs
// to reach the same training loss.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/delaymodel"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/sgd"
)

func main() {
	const (
		workers = 4
		classes = 4
		dim     = 16
		seed    = 7
	)

	// 1. Data: a synthetic classification problem, sharded IID across the
	//    workers (each shard reshuffles every epoch).
	r := rng.New(seed)
	full := data.GaussianBlobs(data.GaussianBlobsConfig{
		Classes: classes, Dim: dim, N: 1280, Separation: 4, Noise: 1.5,
	}, r)
	train, test := data.SplitTrainTest(full, 256, r)
	shards := data.ShardIID(train, workers, r.Split())

	// 2. Model: logistic regression (any nn.Network works the same way).
	model := nn.NewLogisticRegression(dim, classes)
	model.InitParams(r.Split())

	// 3. Delay model: each local step takes 1 simulated second, each
	//    model-averaging broadcast takes 4 (a communication-bound cluster,
	//    like VGG-16 in the paper's Fig 8).
	dm := delaymodel.New(workers,
		rng.Constant{Value: 1}, // compute time Y
		rng.Constant{Value: 4}, // broadcast delay D
		delaymodel.ConstantScaling{})

	runWith := func(name string, ctrl cluster.Controller) *metrics.Trace {
		engine, err := cluster.New(model, shards, train, test, dm, cluster.Config{
			BatchSize: 8,
			MaxTime:   3000, // simulated seconds
			EvalEvery: 100,
			Seed:      seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tr := engine.Run(ctrl, name)
		fmt.Printf("%-8s final loss %.4f  test acc %5.2f%%  (%d iterations in %.0f sim-s)\n",
			name, tr.FinalLoss(), 100*engine.TestAccuracy(), tr.Last().Iter, tr.Last().Time)
		return tr
	}

	// 4. Baseline: fully synchronous SGD (tau = 1).
	sync := runWith("sync", cluster.FixedTau{Tau: 1, Schedule: sgd.Const{Eta: 0.12}})

	// 5. AdaComm: start with infrequent averaging (tau0 = 16), adapt every
	//    T0 = 300 simulated seconds using the paper's eq 17/18 rules.
	ada := runWith("adacomm", core.NewAdaComm(core.Config{
		Tau0:     16,
		Interval: 300,
		Gamma:    0.5,
		Schedule: sgd.Const{Eta: 0.12},
	}))

	// 6. Compare time-to-loss at a level both methods reach.
	target := sync.MinLoss()
	if m := ada.MinLoss(); m > target {
		target = m
	}
	target *= 1.1
	fmt.Printf("\ntime to reach loss %.4f:\n", target)
	fmt.Printf("  sync SGD: %6.0f sim-s\n", sync.TimeToLoss(target))
	fmt.Printf("  AdaComm:  %6.0f sim-s\n", ada.TimeToLoss(target))
	fmt.Printf("  speedup:  %.2fx\n", metrics.Speedup(sync, ada, target))
}
