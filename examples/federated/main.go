// Federated: local-update SGD under NON-IID data, the federated-learning
// regime the paper's introduction motivates (McMahan et al. 2016). Each
// worker's shard is label-skewed (sorted-by-label partitioning), so local
// models drift apart quickly and large communication periods hurt more than
// in the IID case. AdaComm still helps: it spends the early phase at large
// tau (fast progress) and shrinks tau as the drift penalty starts to bind.
//
//	go run ./examples/federated
package main

import (
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/delaymodel"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/sgd"
)

func main() {
	const (
		workers = 4
		classes = 4
		dim     = 16
	)
	r := rng.New(11)
	full := data.GaussianBlobs(data.GaussianBlobsConfig{
		Classes: classes, Dim: dim, N: 1280, Separation: 4, Noise: 1.5,
	}, r)
	train, test := data.SplitTrainTest(full, 256, r)

	model := nn.NewLogisticRegression(dim, classes)
	model.InitParams(r.Split())
	dm := delaymodel.New(workers, rng.Constant{Value: 1}, rng.Constant{Value: 4},
		delaymodel.ConstantScaling{})

	run := func(name string, shards []*data.Dataset, ctrl cluster.Controller) {
		e, err := cluster.New(model, shards, train, test, dm, cluster.Config{
			BatchSize: 8, MaxTime: 3000, EvalEvery: 100, Seed: 13,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tr := e.Run(ctrl, name)
		fmt.Printf("%-22s final loss %.4f   test acc %5.2f%%\n",
			name, tr.FinalLoss(), 100*e.TestAccuracy())
	}

	iid := data.ShardIID(train, workers, rng.New(20))
	nonIID := data.ShardByLabel(train, workers, rng.New(21))
	sched := sgd.Const{Eta: 0.12}
	adaCfg := core.Config{Tau0: 16, Interval: 300, Gamma: 0.5, Schedule: sched}

	fmt.Println("IID shards (each worker sees all classes):")
	run("  tau=1 (sync)", iid, cluster.FixedTau{Tau: 1, Schedule: sched})
	run("  tau=16 (fixed)", iid, cluster.FixedTau{Tau: 16, Schedule: sched})
	run("  AdaComm", iid, core.NewAdaComm(adaCfg))

	fmt.Println("\nnon-IID shards (each worker sees ~1 class — federated regime):")
	run("  tau=1 (sync)", nonIID, cluster.FixedTau{Tau: 1, Schedule: sched})
	run("  tau=16 (fixed)", nonIID, cluster.FixedTau{Tau: 16, Schedule: sched})
	run("  AdaComm", nonIID, core.NewAdaComm(adaCfg))

	fmt.Println("\nUnder non-IID sharding the fixed large period pays a visibly")
	fmt.Println("higher error floor (local models drift toward their own classes);")
	fmt.Println("AdaComm recovers most of it by shrinking tau over time.")

	crossDevice(r)
}

// crossDevice is the cross-device regime the barrier engine cannot touch: a
// population of 1024 clients, of which only K=32 participate in any update.
// The event-driven engine holds an idle client as a pair of RNG streams and
// an in-flight client as its compressed wire message, so the materialized
// footprint is a constant two replicas plus four scratch vectors — memory
// proportional to the participation cap, not the population.
func crossDevice(r *rng.Rand) {
	const (
		clients = 1024
		k       = 32
		classes = 4
		dim     = 16
	)
	full := data.GaussianBlobs(data.GaussianBlobsConfig{
		Classes: classes, Dim: dim, N: 4096 + 256, Separation: 4, Noise: 1.5,
	}, r)
	train, test := data.SplitTrainTest(full, 256, r)
	model := nn.NewLogisticRegression(dim, classes)
	model.InitParams(r.Split())

	dm := delaymodel.FederatedProfile(1, 4096).Model(clients, nil)
	// Persistent device heterogeneity: each client's compute speed is a
	// seeded Pareto draw, so arrival order is far from uniform and the
	// K-of-m rule has real stragglers to skip.
	dm.Jitter = rng.Pareto{Xm: 1, Alpha: 3}
	dm.JitterSeed = 29

	e, err := cluster.NewAsync(model, data.ShardByLabel(train, clients, rng.New(22)),
		train, test, dm, cluster.AsyncConfig{
			Participation: k,
			Tau:           2,
			BatchSize:     4,
			LR:            0.1,
			MaxUpdates:    150,
			EvalEvery:     200,
			EvalSubset:    512,
			Seed:          31,
		})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tr := e.Run("cross-device")
	st := e.Stats()
	fmt.Printf("\ncross-device: %d non-IID clients, first-%d-of-%d aggregation:\n", clients, k, clients)
	fmt.Printf("  final loss %.4f   test acc %5.2f%%   (%d updates, mean staleness %.2f)\n",
		tr.FinalLoss(), 100*e.TestAccuracy(), st.Updates, st.MeanStaleness)
	fmt.Printf("  materialized replicas: %d (+%d scratch vectors) for %d clients, peak %d in flight\n",
		st.MaterializedReplicas, st.ScratchVectors, clients, st.PeakInFlight)
	if st.MaterializedReplicas+st.ScratchVectors > k {
		fmt.Fprintf(os.Stderr, "memory budget violated: %d model-sized buffers > K=%d\n",
			st.MaterializedReplicas+st.ScratchVectors, k)
		os.Exit(1)
	}
}
