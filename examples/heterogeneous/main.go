// Heterogeneous links: one worker's uplink is 10x worse than the rest, so
// every synchronization is gated by the slow link's transfer time — the
// straggler is slow in bytes per second, not compute (the regime of
// Spiridonoff et al. 2020 and Kas Hanna et al. 2022). Fixed tau = 1 pays
// the slow link every iteration; a large fixed tau amortizes it but keeps
// the high error floor; AdaComm starts large and decays tau, getting the
// runtime of the former early and the error floor of frequent averaging
// late.
//
// The per-worker links come from delaymodel.Model.Links, and the round's
// communication delay is computed from the topology's actual transfer
// schedule (internal/comm), with the slowest link gating each round.
//
// The second half runs the link-AWARE controllers: AdaComm consuming the
// observed per-round comm/compute ratio from cluster.RoundInfo (holding tau
// higher by sqrt(alpha) while the slow link dominates), and the parameter
// server's AdaSync capping K at the fast-link count so the straggling uplink
// never gates an update (the Kas Hanna et al. 2022 direction).
//
// The last section moves the straggler from a worker to a single EDGE:
// delaymodel.Model.EdgeLinks prices one gossip link at 10x latency, and the
// slowest ACTIVE edge gates each round. A topology that contains the edge
// (the ring; full averaging, whose complete graph contains every edge) pays
// it every sync; the 4x4 torus routes around it and also mixes ~8x faster
// than the ring (spectral gap 0.40 vs 0.05), so it reaches the target loss
// in the least simulated time — communication ROUTING, not just frequency,
// sets the error-runtime frontier.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	spec := experiments.DefaultHeteroSpec(experiments.ScaleFull)
	rows := experiments.HeterogeneousStragglerAblation(spec)
	experiments.PrintHeterogeneousAblation(os.Stdout, spec, rows)

	fmt.Println()
	fmt.Println("tau=1 is gated by the slow link every iteration; tau=16 amortizes it")
	fmt.Println("16x but keeps averaging rarely even once communication is cheap to")
	fmt.Println("buy; adacomm starts at tau0=16 and decays tau as the loss falls,")
	fmt.Println("reaching the lowest loss in the same simulated budget.")
	fmt.Println()

	target, laRows := experiments.LinkAwareAblation(spec)
	experiments.PrintLinkAware(os.Stdout,
		"Link-aware AdaComm vs the static rule (10x bandwidth straggler)", target, laRows)
	fmt.Println()
	fmt.Println("the static rule decays tau obliviously and ends up paying the slow")
	fmt.Println("link every few steps; the link-aware mode measures alpha from the")
	fmt.Println("round timings and holds tau ~sqrt(alpha) higher, reaching the target")
	fmt.Println("loss sooner and fitting more iterations into the same budget.")
	fmt.Println()

	psTarget, psRows := experiments.LinkAwareAdaSyncAblation(experiments.ScaleFull)
	experiments.PrintLinkAware(os.Stdout,
		"Link-aware AdaSync vs the static growth rule (K-async, m=8)", psTarget, psRows)
	fmt.Println()
	fmt.Println("static AdaSync grows K to m and every late update waits on the slow")
	fmt.Println("uplink; the link-aware cap stops at the fast-link count, keeping the")
	fmt.Println("update cadence high without giving back the low-noise floor.")
	fmt.Println()

	res := experiments.RunTopologyGrid(experiments.DefaultTopologyGrid(experiments.ScaleFull))
	experiments.PrintTopologyGrid(os.Stdout, res)
	fmt.Println()
	fmt.Println("here the straggler is one EDGE, not a worker: EdgeLinks prices link")
	fmt.Println("3-4 at 10x and the slowest active edge gates each gossip round. The")
	fmt.Println("ring contains the edge and pays it every sync, and so does full")
	fmt.Println("averaging — the complete graph contains every edge. The 4x4 torus")
	fmt.Println("routes around it and still mixes ~8x faster than the ring (spectral")
	fmt.Println("gap 0.40 vs 0.05), so it reaches the shared target loss first: how")
	fmt.Println("communication is routed matters, not just how often it happens.")
}
