// Heterogeneous links: one worker's uplink is 10x worse than the rest, so
// every synchronization is gated by the slow link's transfer time — the
// straggler is slow in bytes per second, not compute (the regime of
// Spiridonoff et al. 2020 and Kas Hanna et al. 2022). Fixed tau = 1 pays
// the slow link every iteration; a large fixed tau amortizes it but keeps
// the high error floor; AdaComm starts large and decays tau, getting the
// runtime of the former early and the error floor of frequent averaging
// late.
//
// The per-worker links come from delaymodel.Model.Links, and the round's
// communication delay is computed from the topology's actual transfer
// schedule (internal/comm), with the slowest link gating each round.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	spec := experiments.DefaultHeteroSpec(experiments.ScaleFull)
	rows := experiments.HeterogeneousStragglerAblation(spec)
	experiments.PrintHeterogeneousAblation(os.Stdout, spec, rows)

	fmt.Println()
	fmt.Println("tau=1 is gated by the slow link every iteration; tau=16 amortizes it")
	fmt.Println("16x but keeps averaging rarely even once communication is cheap to")
	fmt.Println("buy; adacomm starts at tau0=16 and decays tau as the loss falls,")
	fmt.Println("reaching the lowest loss in the same simulated budget.")
}
