// Compression: train PASGD over a bandwidth-constrained link four ways —
// dense broadcasts, fixed top-k sparsification with error feedback, the
// joint AdaComm controller that adapts (tau, compression ratio) together,
// and fully decentralized CHOCO-SGD ring gossip (compressed messages only,
// per-neighbor estimates, no shared reference) — and compare the simulated
// wall-clock each needs to reach the same loss.
//
//	go run ./examples/compression
package main

import (
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/delaymodel"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/sgd"
)

func main() {
	const (
		workers = 4
		classes = 4
		dim     = 16
		seed    = 21
		budget  = 800.0
	)

	// 1. Data and model, as in the quickstart.
	r := rng.New(seed)
	full := data.GaussianBlobs(data.GaussianBlobsConfig{
		Classes: classes, Dim: dim, N: 1280, Separation: 4, Noise: 1.5,
	}, r)
	train, test := data.SplitTrainTest(full, 256, r)
	shards := data.ShardIID(train, workers, r.Split())
	proto := nn.NewLogisticRegression(dim, classes)
	proto.InitParams(r.Split())

	// 2. A federated-style link: one local step costs ~1 s of compute, and
	//    the link moves only 128 bytes per simulated second, so a dense
	//    broadcast of the 68-parameter model (544 B) costs ~4 s — a
	//    bandwidth-bound alpha well above 1.
	dm := delaymodel.FederatedProfile(1.0, 128).Model(workers, delaymodel.ConstantScaling{})
	fmt.Printf("dense broadcast: %.2f sim-s, one local step: %.2f sim-s\n\n",
		dm.MeanDBytes(8*proto.ParamLen()), dm.MeanY())

	run := func(name string, cfg cluster.Config, ctrl cluster.Controller) *metrics.Trace {
		cfg.BatchSize = 8
		cfg.MaxTime = budget
		cfg.EvalEvery = 100
		cfg.Seed = seed + 1
		e, err := cluster.New(proto, shards, train, test, dm, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tr := e.Run(ctrl, name)
		fmt.Printf("%-22s final loss %.4f, payload %4d B/round, acc %.1f%%\n",
			name, tr.FinalLoss(), e.CommBytesPerRound(), 100*e.TestAccuracy())
		return tr
	}

	sched := sgd.Const{Eta: 0.1}
	dense := run("dense tau=5", cluster.Config{}, cluster.FixedTau{Tau: 5, Schedule: sched})
	topk := run("topk(0.25)+ef tau=5",
		cluster.Config{Compress: compress.Spec{Kind: compress.KindTopK, Ratio: 0.25, ErrorFeedback: true}},
		cluster.FixedTau{Tau: 5, Schedule: sched})
	joint := run("adaptive (tau, ratio)",
		cluster.Config{Compress: compress.Spec{Kind: compress.KindTopK, Ratio: 0.1, ErrorFeedback: true}},
		core.NewAdaCommCompress(
			core.Config{Tau0: 16, Interval: budget / 10, Schedule: sched},
			core.CompressSchedule{Ratio0: 0.1}))
	// CHOCO-SGD: fully decentralized ring gossip where every quantity is
	// derivable from the compressed messages alone — each node keeps
	// estimates of its ring neighbors, updated only by what crosses the
	// wire, and mixes toward them with consensus step gamma.
	choco := run("choco ring topk(0.25)",
		cluster.Config{
			Strategy:    cluster.RingGossip,
			Compress:    compress.Spec{Kind: compress.KindTopK, Ratio: 0.25},
			GossipGamma: 0.7,
		},
		cluster.FixedTau{Tau: 5, Schedule: sched})

	// 3. Compare time-to-target at a loss level every method reaches.
	worst := dense.MinLoss()
	for _, tr := range []*metrics.Trace{topk, joint, choco} {
		if m := tr.MinLoss(); m > worst {
			worst = m
		}
	}
	target := worst * 1.05
	fmt.Printf("\ntime to reach loss %.4f:\n", target)
	for _, tr := range []*metrics.Trace{dense, topk, joint, choco} {
		fmt.Printf("  %-22s %8.1f sim-s (%.2fx vs dense)\n",
			tr.Name, tr.TimeToLoss(target), metrics.Speedup(dense, tr, target))
	}
}
