// Stragglers: demonstrates the runtime side of the paper's analysis
// (Sec 3.1-3.2) on a cluster with exponentially distributed compute times —
// the straggler regime. Periodic averaging both amortizes the broadcast
// delay over tau iterations AND smooths the straggler tail, because the
// per-round time is the max of per-worker *averages* instead of the max of
// single draws.
//
//	go run ./examples/stragglers
package main

import (
	"fmt"
	"strings"

	"repro/internal/delaymodel"
	"repro/internal/rng"
)

func main() {
	const (
		workers = 16
		meanY   = 1.0 // mean compute time per local step
		delayD  = 1.0 // broadcast delay
		trials  = 100000
	)
	dm := delaymodel.New(workers,
		rng.Exponential{MeanVal: meanY},
		rng.Constant{Value: delayD},
		delaymodel.ConstantScaling{})
	r := rng.New(42)

	// Closed form for sync SGD: E[T] = y*H_m + D (paper Sec 3.2).
	fmt.Printf("E[T_sync] closed form: %.3f (y*H_%d + D)\n",
		dm.ExpectedSyncIterationExponential(), workers)

	// Monte-Carlo per-iteration times for several communication periods.
	fmt.Println("\ntau   E[T/iter]   speedup   eq-12 (ignores stragglers)")
	sync := dm.MCMeanPerIteration(1, trials, r)
	for _, tau := range []int{1, 2, 5, 10, 20, 50} {
		perIter := dm.MCMeanPerIteration(tau, trials, r)
		fmt.Printf("%3d   %9.3f   %7.2fx   %7.2fx\n",
			tau, perIter, sync/perIter,
			delaymodel.SpeedupConstant(delayD/meanY, tau))
	}
	fmt.Println("\nThe measured speedup EXCEEDS the constant-delay formula: that")
	fmt.Println("gap is straggler mitigation (averaging tau draws shrinks the")
	fmt.Println("variance of each worker's contribution by tau).")

	// Distribution comparison, as in the paper's Fig 5.
	hist := func(tau int) *rng.Histogram {
		h := rng.NewHistogram(0, 8, 32)
		for i := 0; i < trials; i++ {
			h.Add(dm.SamplePerIteration(tau, r))
		}
		return h
	}
	hSync, hPavg := hist(1), hist(10)
	fmt.Println("\nruntime-per-iteration distribution (ASCII, # = sync, * = PASGD tau=10):")
	for i := 0; i < 32; i += 2 {
		bar := func(h *rng.Histogram, ch string) string {
			return strings.Repeat(ch, int(h.Density(i)*400))
		}
		fmt.Printf("%5.2f | %-40s | %s\n", hSync.BinCenter(i), bar(hSync, "#"), bar(hPavg, "*"))
	}
}
