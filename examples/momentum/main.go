// Momentum: AdaComm combined with block momentum (paper Sec 5.3) on the
// convolutional VGGNano workload. Local momentum (0.9) is restarted at every
// averaging step, and a global momentum buffer (0.3) filters the aggregate
// per-round displacement — the scheme of Chen & Huo (2016) that the paper
// adopts.
//
//	go run ./examples/momentum
package main

import (
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/delaymodel"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/sgd"
)

func main() {
	const workers = 4
	r := rng.New(31)
	shape := data.ImageShape{Channels: 1, Height: 8, Width: 8}
	full := data.SynthImages(data.SynthImagesConfig{
		Classes: 4, Shape: shape, N: 640, Noise: 0.35,
	}, r)
	train, test := data.SplitTrainTest(full, 128, r)
	model := nn.NewVGGNano(shape, 4)
	model.InitParams(r.Split())
	shards := data.ShardIID(train, workers, r.Split())
	dm := delaymodel.VGG16Profile().Model(workers, delaymodel.ConstantScaling{})

	cfg := cluster.Config{
		BatchSize:     16,
		Momentum:      0.9, // local momentum, reset at each averaging step
		BlockMomentum: 0.3, // global momentum on the per-round displacement
		MaxTime:       120,
		EvalEvery:     100,
		Seed:          5,
	}
	sched := sgd.Const{Eta: 0.02}

	run := func(name string, ctrl cluster.Controller) *metrics.Trace {
		e, err := cluster.New(model, shards, train, test, dm, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tr := e.Run(ctrl, name)
		fmt.Printf("%-10s final loss %.4f   test acc %5.2f%%   (%d iters)\n",
			name, tr.FinalLoss(), 100*e.TestAccuracy(), tr.Last().Iter)
		return tr
	}

	sync := run("sync", cluster.FixedTau{Tau: 1, Schedule: sched})
	ada := run("adacomm", core.NewAdaComm(core.Config{
		Tau0: 20, Interval: 12, Gamma: 0.5, Schedule: sched,
	}))

	// Pick a target both methods reach: slightly above the worse minimum.
	target := sync.MinLoss()
	if m := ada.MinLoss(); m > target {
		target = m
	}
	target = target*1.2 + 1e-4
	fmt.Printf("\nspeedup to loss %.4f: %.2fx\n", target, metrics.Speedup(sync, ada, target))
}
