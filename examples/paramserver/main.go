// Paramserver: the paper's concluding extension — adapting ASYNCHRONY in a
// parameter-server framework the way AdaComm adapts the communication
// period. K-async SGD applies an update per K gradient arrivals; small K is
// fast but stale (high noise), large K is slow but clean. AdaSync starts at
// K=1 and grows K toward m as the loss falls, mirroring AdaComm's tau decay.
//
//	go run ./examples/paramserver
package main

import (
	"fmt"
	"os"

	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/paramserver"
	"repro/internal/rng"
)

func main() {
	const workers = 8
	r := rng.New(17)
	full := data.GaussianBlobs(data.GaussianBlobsConfig{
		Classes: 4, Dim: 16, N: 1280, Separation: 4, Noise: 1.5, LabelNoise: 0.1,
	}, r)
	train, _ := data.SplitTrainTest(full, 256, r)
	proto := nn.NewLogisticRegression(16, 4)
	proto.InitParams(r.Split())
	shards := data.ShardIID(train, workers, r.Split())

	cfg := paramserver.Config{
		Mode:       paramserver.KAsync,
		BatchSize:  8,
		ComputeY:   rng.Exponential{MeanVal: 1}, // straggler-prone workers
		PushDelay:  rng.Constant{Value: 0.1},
		MaxTime:    400,
		EvalEvery:  25,
		EvalSubset: 400,
		Seed:       3,
	}

	run := func(name string, ctrl paramserver.Controller) *metrics.Trace {
		s, err := paramserver.New(proto, shards, train, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tr, stale := s.Run(ctrl, name)
		fmt.Printf("%-8s final loss %.4f  (%d updates in %.0f sim-s, mean staleness %.2f, p99 %.0f)\n",
			name, tr.FinalLoss(), tr.Last().Iter, tr.Last().Time, stale.Mean, stale.P99)
		return tr
	}

	fmt.Println("K-async parameter server, m=8, exponential compute times:")
	async := run("K=1", paramserver.FixedK{K: 1, LR: 0.1})
	sync := run("K=8", paramserver.FixedK{K: 8, LR: 0.1})
	ada := run("AdaSync", paramserver.NewAdaSync(paramserver.AdaSyncConfig{
		K0: 1, M: workers, Interval: 40, LR: 0.1,
	}))

	target := worstMin(async, sync, ada) * 1.05
	fmt.Printf("\ntime to reach loss %.4f:\n", target)
	for _, tr := range []*metrics.Trace{async, sync, ada} {
		fmt.Printf("  %-8s %6.0f sim-s\n", tr.Name, tr.TimeToLoss(target))
	}
	fmt.Println("\nK=1 races ahead early but plateaus on staleness noise; K=8 is")
	fmt.Println("slow but clean; AdaSync rides K=1's speed then grows K for the floor.")
}

func worstMin(traces ...*metrics.Trace) float64 {
	worst := 0.0
	for _, tr := range traces {
		if l := tr.MinLoss(); l > worst {
			worst = l
		}
	}
	return worst
}
