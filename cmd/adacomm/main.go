// Command adacomm runs one PASGD training job — fixed-tau or AdaComm — on a
// chosen workload and delay profile, printing the loss-versus-simulated-time
// trace as CSV to stdout.
//
// Examples:
//
//	adacomm -arch vgg -method adacomm -tau0 20 -budget 300
//	adacomm -arch resnet -method fixed -tau 5 -budget 240
//	adacomm -arch logistic -method fixed -tau 1 -workers 8 -lr 0.1
//	adacomm -arch logistic -method fixed -tau 5 -compress topk:0.25+ef -bandwidth 128
//	adacomm -arch vgg -method adacomm -compress topk:0.05 -bandwidth 4096 -adapt-compression
//	adacomm -arch logistic -method adacomm -bandwidth 256 -topology tree
//	adacomm -arch logistic -method adacomm -bandwidth 256 -links "0:,0:,0:,0:25.6"
//	adacomm -arch logistic -method adacomm -bandwidth 256 -links "0:,0:,0:,0:25.6" -link-aware
//	adacomm -arch logistic -method fixed -tau 5 -strategy ring -compress topk:0.1 -gossip-gamma 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/delaymodel"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/sgd"
)

func main() {
	arch := flag.String("arch", "vgg", "workload: vgg | resnet | logistic")
	classes := flag.Int("classes", 10, "number of classes (10 or 100)")
	workers := flag.Int("workers", 4, "number of workers m")
	method := flag.String("method", "adacomm", "method: adacomm | fixed")
	tau := flag.Int("tau", 1, "communication period for -method fixed")
	tau0 := flag.Int("tau0", 20, "initial period for -method adacomm")
	interval := flag.Float64("interval", 30, "AdaComm interval T0 (sim seconds)")
	budget := flag.Float64("budget", 300, "simulated-time budget (seconds)")
	lr := flag.Float64("lr", 0.08, "base learning rate")
	variableLR := flag.Bool("variable-lr", false, "10x decay at epoch milestones 15/30/45")
	batch := flag.Int("batch", 16, "per-worker mini-batch size")
	momentum := flag.Float64("momentum", 0, "local momentum factor")
	blockMomentum := flag.Float64("block-momentum", 0, "global block momentum factor")
	seed := flag.Uint64("seed", 1, "random seed")
	quick := flag.Bool("quick", false, "use reduced workload sizes")
	compressFlag := flag.String("compress", "none",
		"delta compression: none | identity | topk:0.01 | randk:0.05 | qsgd:4 (append +ef for error feedback)")
	bandwidth := flag.Float64("bandwidth", 0,
		"per-link bandwidth in bytes per simulated second (0 = infinite, size-free broadcasts)")
	adaptCompression := flag.Bool("adapt-compression", false,
		"with -method adacomm: jointly adapt (tau, compression ratio) per interval")
	topologyFlag := flag.String("topology", "allgather",
		"all-reduce routing: allgather | ring | tree | star (pricing only; allgather is the paper's overlapped broadcast)")
	linksFlag := flag.String("links", "",
		"per-worker heterogeneous links as comma-separated latency:bandwidth pairs, one per worker "+
			"(empty part = inherit; e.g. \"0:,0:,0:,0:25.6\" makes the last worker's link slow)")
	linkAware := flag.Bool("link-aware", false,
		"with -method adacomm: scale tau by the observed comm/compute ratio (slow links hold tau higher)")
	strategyFlag := flag.String("strategy", "full",
		"synchronization strategy: full | ring | elastic (ring + -compress runs CHOCO-SGD gossip)")
	gossipGamma := flag.Float64("gossip-gamma", 0,
		"CHOCO consensus step size in (0,1] for -strategy ring with -compress (0 = default 1)")
	flag.Parse()

	spec, err := compress.ParseSpec(*compressFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adacomm: %v\n", err)
		os.Exit(2)
	}
	if *bandwidth < 0 {
		fmt.Fprintf(os.Stderr, "adacomm: -bandwidth %g must be >= 0 (0 = infinite)\n", *bandwidth)
		os.Exit(2)
	}
	if *adaptCompression && !spec.Enabled() {
		fmt.Fprintln(os.Stderr, "adacomm: -adapt-compression needs a -compress scheme")
		os.Exit(2)
	}
	if *adaptCompression && spec.Kind == compress.KindIdentity {
		fmt.Fprintln(os.Stderr, "adacomm: -adapt-compression needs an adaptive compressor (topk/randk/qsgd)")
		os.Exit(2)
	}
	if *adaptCompression && *method != "adacomm" {
		fmt.Fprintln(os.Stderr, "adacomm: -adapt-compression requires -method adacomm")
		os.Exit(2)
	}
	if *linkAware && *method != "adacomm" {
		fmt.Fprintln(os.Stderr, "adacomm: -link-aware requires -method adacomm")
		os.Exit(2)
	}

	topology, err := comm.ParseTopology(*topologyFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adacomm: %v\n", err)
		os.Exit(2)
	}
	strategy, err := cluster.ParseStrategy(*strategyFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adacomm: %v\n", err)
		os.Exit(2)
	}

	scale := experiments.ScaleFull
	if *quick {
		scale = experiments.ScaleQuick
	}
	w := experiments.BuildWorkload(experiments.Arch(*arch), *classes, *workers, scale, *seed)
	if *bandwidth > 0 {
		w.Delay.Bandwidth = *bandwidth
	}
	links, err := delaymodel.ParseLinks(*linksFlag, *workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adacomm: %v\n", err)
		os.Exit(2)
	}
	w.Delay.Links = links

	var sched sgd.Schedule = sgd.Const{Eta: *lr}
	if *variableLR {
		sched = sgd.MultiStep{Eta: *lr, Factor: 0.1, Milestones: []int{15, 30, 45}}
	}

	cfg := cluster.Config{
		BatchSize:     *batch,
		Momentum:      *momentum,
		BlockMomentum: *blockMomentum,
		MaxTime:       *budget,
		EvalEvery:     100,
		EvalSubset:    512,
		AccEverySync:  5,
		Strategy:      strategy,
		GossipGamma:   *gossipGamma,
		Compress:      spec,
		Topology:      topology,
		Seed:          *seed + 1,
	}
	// Construct directly (not via experiments.Workload.Engine, which
	// panics): invalid flag combinations — a gossip gamma without a ring,
	// a topology or block momentum with a non-full strategy — surface as
	// cluster validation errors and must exit like any other bad flag.
	engine, err := cluster.New(w.Proto, w.Shards, w.Train, w.Test, w.Delay, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adacomm: %v\n", err)
		os.Exit(2)
	}

	var ctrl cluster.Controller
	switch *method {
	case "fixed":
		ctrl = cluster.FixedTau{Tau: *tau, Schedule: sched}
	case "adacomm":
		coreCfg := core.Config{
			Tau0:         *tau0,
			Interval:     *interval,
			Gamma:        0.5,
			Schedule:     sched,
			Coupling:     couplingFlag(*variableLR),
			DeferLRDecay: *variableLR,
			LinkAware:    *linkAware,
		}
		if *adaptCompression {
			ctrl = core.NewAdaCommCompress(coreCfg,
				core.CompressSchedule{Ratio0: spec.InitialRatio()})
		} else {
			ctrl = core.NewAdaComm(coreCfg)
		}
	default:
		fmt.Fprintf(os.Stderr, "adacomm: unknown method %q\n", *method)
		os.Exit(2)
	}

	trace := engine.Run(ctrl, ctrl.Name())
	if err := metrics.WriteCSV(os.Stdout, trace); err != nil {
		fmt.Fprintf(os.Stderr, "adacomm: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "final loss %.5f, min loss %.5f, test acc %.2f%%, %d iters in %.1f sim-s\n",
		trace.FinalLoss(), trace.MinLoss(), 100*engine.TestAccuracy(),
		trace.Last().Iter, trace.Last().Time)
}

func couplingFlag(variable bool) core.Coupling {
	if variable {
		return core.SqrtCoupling
	}
	return core.NoCoupling
}
