// Command adacomm runs one PASGD training job — fixed-tau or AdaComm — on a
// chosen workload and delay profile, printing the loss-versus-simulated-time
// trace as CSV to stdout.
//
// Examples:
//
//	adacomm -arch vgg -method adacomm -tau0 20 -budget 300
//	adacomm -arch resnet -method fixed -tau 5 -budget 240
//	adacomm -arch logistic -method fixed -tau 1 -workers 8 -lr 0.1
//	adacomm -arch logistic -method fixed -tau 5 -compress topk:0.25+ef -bandwidth 128
//	adacomm -arch logistic -method fixed -tau 5 -wire float32 -bandwidth 128
//	adacomm -arch vgg -method adacomm -compress topk:0.05 -bandwidth 4096 -adapt-compression
//	adacomm -arch logistic -method adacomm -bandwidth 256 -topology tree
//	adacomm -arch logistic -method adacomm -bandwidth 256 -links "0:,0:,0:,0:25.6"
//	adacomm -arch logistic -method adacomm -bandwidth 256 -links "0:,0:,0:,0:25.6" -link-aware
//	adacomm -arch logistic -method fixed -tau 5 -strategy ring -compress topk:0.1 -gossip-gamma 0.5
//	adacomm -arch logistic -method fixed -tau 5 -strategy ring -workers 16 -topology torus:4x4
//	adacomm -arch logistic -method fixed -tau 5 -strategy ring -workers 16 -topology "varying:ring,star@B=5" -compress topk:0.25 -adapt-gossip-gamma
//	adacomm -arch logistic -method fixed -tau 5 -strategy ring -workers 16 -topology torus:4x4 -edge-links "3-4:10:"
//	adacomm -arch logistic -method fixed -async -clients 1024 -participation 32 -tau 4
//	adacomm -arch logistic -method fixed -async -participation 6 -workers 8 -link-aware
//	adacomm -arch logistic -method adacomm -faults "blip:1@r10-20,crash:2@r40,drop:0.05"
//	adacomm -arch logistic -method fixed -async -participation 6 -workers 8 -faults "slow:3x4@r10-30"
//	adacomm -arch logistic -method fixed -tau 5 -optimizer adam -adam-beta2 0.99
//	adacomm -arch logistic -method fixed -tau 5 -optimizer adam+synced -strategy ring -compress identity+f32
//	adacomm -arch logistic -method fixed -tau 5 -optimizer momentum:0.9 -global-momentum 0.1
//	adacomm -arch logistic -method fixed -async -participation 6 -workers 8 -optimizer momentum:0.9
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/delaymodel"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/opt"
	"repro/internal/sgd"
	"repro/internal/tensor"
)

func main() {
	arch := flag.String("arch", "vgg", "workload: vgg | resnet | logistic")
	classes := flag.Int("classes", 10, "number of classes (10 or 100)")
	workers := flag.Int("workers", 4, "number of workers m")
	method := flag.String("method", "adacomm", "method: adacomm | fixed")
	tau := flag.Int("tau", 1, "communication period for -method fixed")
	tau0 := flag.Int("tau0", 20, "initial period for -method adacomm")
	interval := flag.Float64("interval", 30, "AdaComm interval T0 (sim seconds)")
	budget := flag.Float64("budget", 300, "simulated-time budget (seconds)")
	lr := flag.Float64("lr", 0.08, "base learning rate")
	variableLR := flag.Bool("variable-lr", false, "10x decay at epoch milestones 15/30/45")
	batch := flag.Int("batch", 16, "per-worker mini-batch size")
	momentum := flag.Float64("momentum", 0, "local momentum factor")
	blockMomentum := flag.Float64("block-momentum", 0, "global block momentum factor")
	optimizerFlag := flag.String("optimizer", "",
		"local update rule (internal/opt); forms: "+opt.Forms()+"; empty = plain SGD (excludes the legacy -momentum shorthand)")
	adamBeta2 := flag.Float64("adam-beta2", 0,
		"second-moment decay beta2 for the adam/adamw forms of -optimizer (0 = default 0.999)")
	globalMomentum := flag.Float64("global-momentum", 0,
		"SlowMo-style slow momentum filtering every sync point under any strategy (0 = off; excludes -block-momentum)")
	seed := flag.Uint64("seed", 1, "random seed")
	quick := flag.Bool("quick", false, "use reduced workload sizes")
	compressFlag := flag.String("compress", "none",
		"delta compression: none | identity | topk:0.01 | randk:0.05 | qsgd:4 (append +ef for error feedback, +f32 for a float32 wire)")
	wireFlag := flag.String("wire", "",
		"wire value precision: float64 | float32 (halves every payload; model state stays float64)")
	kernelWorkers := flag.Int("kernel-workers", 1,
		"goroutines the tensor kernels may fan output-row panels across (bit-identical results at any setting; >1 only helps on multi-core hosts)")
	bandwidth := flag.Float64("bandwidth", 0,
		"per-link bandwidth in bytes per simulated second (0 = infinite, size-free broadcasts)")
	adaptCompression := flag.Bool("adapt-compression", false,
		"with -method adacomm: jointly adapt (tau, compression ratio) per interval")
	topologyFlag := flag.String("topology", "allgather",
		"all-reduce routing (allgather | ring | tree | star; pricing only) or, with -strategy ring, "+
			"a gossip mixing graph: complete | expander | torus:RxC | regular:D[@SEED] | graph:ring | "+
			"graph:star | varying:SPEC,SPEC,...[@B=N]")
	linksFlag := flag.String("links", "",
		"per-worker heterogeneous links as comma-separated latency:bandwidth pairs, one per worker "+
			"(empty part = inherit; e.g. \"0:,0:,0:,0:25.6\" makes the last worker's link slow)")
	edgeLinksFlag := flag.String("edge-links", "",
		"per-edge link overrides for gossip graph rounds as comma-separated I-J:latency:bandwidth "+
			"entries, priced in both directions (empty part = inherit; e.g. \"3-4:10:\" makes edge 3-4 slow)")
	linkAware := flag.Bool("link-aware", false,
		"with -method adacomm: scale tau by the observed comm/compute ratio (slow links hold tau higher)")
	strategyFlag := flag.String("strategy", "full",
		"synchronization strategy: full | ring | elastic (ring + -compress runs CHOCO-SGD gossip)")
	gossipGamma := flag.Float64("gossip-gamma", 0,
		"CHOCO consensus step size in (0,1] for -strategy ring with -compress (0 = default 1)")
	adaptGossipGamma := flag.Bool("adapt-gossip-gamma", false,
		"with -strategy ring and -compress: set the consensus step from the mixing graph's "+
			"spectral gap (sqrt(gap), clamped; excludes -gossip-gamma)")
	async := flag.Bool("async", false,
		"run the event-driven engine (K-of-m partial participation) instead of the round-barrier PASGD engine")
	participation := flag.Int("participation", 0,
		"with -async: aggregate the first K arrivals per update (0 = all clients, the barrier special case)")
	clients := flag.Int("clients", 0,
		"with -async: simulated client population N; memory stays proportional to -participation (0 = -workers)")
	faultsFlag := flag.String("faults", "",
		"fault injection schedule, comma-separated events ("+faults.Forms+"); empty = fault-free")
	flag.Parse()

	spec, err := compress.ParseSpec(*compressFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adacomm: %v\n", err)
		os.Exit(2)
	}
	wire, err := compress.ParseWire(*wireFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adacomm: %v\n", err)
		os.Exit(2)
	}
	if *wireFlag != "" {
		if spec.Wire == compress.WireFloat32 && wire == compress.WireFloat64 {
			fmt.Fprintf(os.Stderr, "adacomm: -wire %s conflicts with the +f32 modifier in -compress %s\n",
				*wireFlag, *compressFlag)
			os.Exit(2)
		}
		spec.Wire = wire
	}
	if *kernelWorkers < 1 {
		fmt.Fprintf(os.Stderr, "adacomm: -kernel-workers %d must be >= 1\n", *kernelWorkers)
		os.Exit(2)
	}
	tensor.SetWorkers(*kernelWorkers)
	fsched, err := faults.Parse(*faultsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adacomm: %v\n", err)
		os.Exit(2)
	}
	optCfg, err := opt.Parse(*optimizerFlag)
	if err != nil {
		// opt.Parse errors already enumerate the valid forms.
		fmt.Fprintf(os.Stderr, "adacomm: -optimizer: %v\n", err)
		os.Exit(2)
	}
	if *adamBeta2 != 0 {
		if !optCfg.Adaptive() {
			fmt.Fprintln(os.Stderr, "adacomm: -adam-beta2 tunes the second-moment decay; it needs an adam/adamw -optimizer")
			os.Exit(2)
		}
		if math.IsNaN(*adamBeta2) || *adamBeta2 <= 0 || *adamBeta2 >= 1 {
			fmt.Fprintf(os.Stderr, "adacomm: -adam-beta2 %g outside (0, 1)\n", *adamBeta2)
			os.Exit(2)
		}
		optCfg.Beta2 = *adamBeta2
	}
	if *bandwidth < 0 {
		fmt.Fprintf(os.Stderr, "adacomm: -bandwidth %g must be >= 0 (0 = infinite)\n", *bandwidth)
		os.Exit(2)
	}
	if *adaptCompression && !spec.Enabled() {
		fmt.Fprintln(os.Stderr, "adacomm: -adapt-compression needs a -compress scheme")
		os.Exit(2)
	}
	if *adaptCompression && spec.Kind == compress.KindIdentity {
		fmt.Fprintln(os.Stderr, "adacomm: -adapt-compression needs an adaptive compressor (topk/randk/qsgd)")
		os.Exit(2)
	}
	if *adaptCompression && *method != "adacomm" {
		fmt.Fprintln(os.Stderr, "adacomm: -adapt-compression requires -method adacomm")
		os.Exit(2)
	}
	if *linkAware && *method != "adacomm" && !*async {
		fmt.Fprintln(os.Stderr, "adacomm: -link-aware requires -method adacomm or -async")
		os.Exit(2)
	}

	// The event-driven engine has no tau controller, runs the full-averaging
	// strategy only, and prices point-to-point links directly — flags that
	// configure the barrier engine's controllers or routing are rejected
	// rather than silently ignored.
	if !*async {
		if *participation != 0 {
			fmt.Fprintln(os.Stderr, "adacomm: -participation requires -async")
			os.Exit(2)
		}
		if *clients != 0 {
			fmt.Fprintln(os.Stderr, "adacomm: -clients requires -async")
			os.Exit(2)
		}
	} else {
		switch {
		case *method == "adacomm":
			fmt.Fprintln(os.Stderr, "adacomm: -async runs without a tau controller; use -method fixed -tau")
		case *adaptCompression:
			fmt.Fprintln(os.Stderr, "adacomm: -adapt-compression needs the AdaComm controller; not available with -async")
		case *strategyFlag != "full":
			fmt.Fprintln(os.Stderr, "adacomm: -async supports only -strategy full (K-of-m averaging)")
		case *topologyFlag != "allgather":
			fmt.Fprintln(os.Stderr, "adacomm: -async prices point-to-point links; -topology does not apply")
		case *edgeLinksFlag != "":
			fmt.Fprintln(os.Stderr, "adacomm: -edge-links prices gossip graph rounds; not available with -async")
		case *adaptGossipGamma:
			fmt.Fprintln(os.Stderr, "adacomm: -adapt-gossip-gamma needs -strategy ring; not available with -async")
		case *blockMomentum != 0 || *globalMomentum != 0:
			fmt.Fprintln(os.Stderr, "adacomm: -async has no sync barrier for block/global momentum to filter")
		case *momentum != 0 && !optCfg.IsZero():
			fmt.Fprintln(os.Stderr, "adacomm: set -momentum or -optimizer, not both")
		case *variableLR:
			fmt.Fprintln(os.Stderr, "adacomm: -async uses a constant learning rate; -variable-lr does not apply")
		case *clients < 0:
			fmt.Fprintf(os.Stderr, "adacomm: -clients %d must be >= 0\n", *clients)
		case *participation < 0:
			fmt.Fprintf(os.Stderr, "adacomm: -participation %d must be >= 0\n", *participation)
		default:
			if *momentum != 0 {
				// The legacy shorthand maps onto the optimizer layer; the
				// engine itself rejects adaptive rules (their per-client
				// state would defeat client sharding).
				optCfg = opt.Config{Rule: opt.RuleMomentum, Momentum: *momentum}
			}
			runAsync(asyncOpts{
				arch: *arch, classes: *classes, clients: *clients, workers: *workers,
				participation: *participation, tau: *tau, batch: *batch, lr: *lr,
				budget: *budget, seed: *seed, quick: *quick, spec: spec,
				bandwidth: *bandwidth, links: *linksFlag, linkAware: *linkAware,
				faults: fsched, opt: optCfg,
			})
			return
		}
		os.Exit(2)
	}

	topology, err := comm.ParseTopology(*topologyFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adacomm: %v\n", err)
		os.Exit(2)
	}
	strategy, err := cluster.ParseStrategy(*strategyFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adacomm: %v\n", err)
		os.Exit(2)
	}

	scale := experiments.ScaleFull
	if *quick {
		scale = experiments.ScaleQuick
	}
	w := experiments.BuildWorkload(experiments.Arch(*arch), *classes, *workers, scale, *seed)
	if *bandwidth > 0 {
		w.Delay.Bandwidth = *bandwidth
	}
	links, err := delaymodel.ParseLinks(*linksFlag, *workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adacomm: %v\n", err)
		os.Exit(2)
	}
	w.Delay.Links = links
	edgeLinks, err := delaymodel.ParseEdgeLinks(*edgeLinksFlag, *workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adacomm: %v\n", err)
		os.Exit(2)
	}
	w.Delay.EdgeLinks = edgeLinks

	var sched sgd.Schedule = sgd.Const{Eta: *lr}
	if *variableLR {
		sched = sgd.MultiStep{Eta: *lr, Factor: 0.1, Milestones: []int{15, 30, 45}}
	}

	cfg := cluster.Config{
		BatchSize:        *batch,
		Momentum:         *momentum,
		BlockMomentum:    *blockMomentum,
		Opt:              optCfg,
		GlobalMomentum:   *globalMomentum,
		MaxTime:          *budget,
		EvalEvery:        100,
		EvalSubset:       512,
		AccEverySync:     5,
		Strategy:         strategy,
		GossipGamma:      *gossipGamma,
		AdaptGossipGamma: *adaptGossipGamma,
		Compress:         spec,
		Topology:         topology,
		Seed:             *seed + 1,
		Faults:           fsched,
	}
	// Construct directly (not via experiments.Workload.Engine, which
	// panics): invalid flag combinations — a gossip gamma without a ring,
	// a topology or block momentum with a non-full strategy — surface as
	// cluster validation errors and must exit like any other bad flag.
	engine, err := cluster.New(w.Proto, w.Shards, w.Train, w.Test, w.Delay, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adacomm: %v\n", err)
		os.Exit(2)
	}

	var ctrl cluster.Controller
	switch *method {
	case "fixed":
		ctrl = cluster.FixedTau{Tau: *tau, Schedule: sched}
	case "adacomm":
		coreCfg := core.Config{
			Tau0:         *tau0,
			Interval:     *interval,
			Gamma:        0.5,
			Schedule:     sched,
			Coupling:     couplingFlag(*variableLR),
			DeferLRDecay: *variableLR,
			LinkAware:    *linkAware,
		}
		if *adaptCompression {
			ctrl = core.NewAdaCommCompress(coreCfg,
				core.CompressSchedule{Ratio0: spec.InitialRatio()})
		} else {
			ctrl = core.NewAdaComm(coreCfg)
		}
	default:
		fmt.Fprintf(os.Stderr, "adacomm: unknown method %q\n", *method)
		os.Exit(2)
	}

	trace := engine.Run(ctrl, ctrl.Name())
	if err := metrics.WriteCSV(os.Stdout, trace); err != nil {
		fmt.Fprintf(os.Stderr, "adacomm: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "final loss %.5f, min loss %.5f, test acc %.2f%%, %d iters in %.1f sim-s\n",
		trace.FinalLoss(), trace.MinLoss(), 100*engine.TestAccuracy(),
		trace.Last().Iter, trace.Last().Time)
}

func couplingFlag(variable bool) core.Coupling {
	if variable {
		return core.SqrtCoupling
	}
	return core.NoCoupling
}

// asyncOpts carries the validated flag set for the event-driven path.
type asyncOpts struct {
	arch          string
	classes       int
	clients       int
	workers       int
	participation int
	tau           int
	batch         int
	lr            float64
	budget        float64
	seed          uint64
	quick         bool
	spec          compress.Spec
	bandwidth     float64
	links         string
	linkAware     bool
	faults        *faults.Schedule
	opt           opt.Config
}

// runAsync builds and runs the event-driven engine: -clients shards
// (default -workers), aggregating the first -participation arrivals per
// update. Exits 2 on invalid configurations, mirroring the barrier path.
func runAsync(o asyncOpts) {
	n := o.clients
	if n == 0 {
		n = o.workers
	}
	k := o.participation
	if k == 0 {
		k = n
	}
	scale := experiments.ScaleFull
	if o.quick {
		scale = experiments.ScaleQuick
	}
	w := experiments.BuildWorkload(experiments.Arch(o.arch), o.classes, n, scale, o.seed)
	if o.bandwidth > 0 {
		w.Delay.Bandwidth = o.bandwidth
	}
	links, err := delaymodel.ParseLinks(o.links, n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adacomm: %v\n", err)
		os.Exit(2)
	}
	w.Delay.Links = links

	cfg := cluster.AsyncConfig{
		Participation: k,
		Tau:           o.tau,
		BatchSize:     o.batch,
		LR:            o.lr,
		Opt:           o.opt,
		MaxTime:       o.budget,
		EvalEvery:     100,
		EvalSubset:    512,
		Compress:      o.spec,
		LinkAware:     o.linkAware,
		Seed:          o.seed + 1,
		Faults:        o.faults,
	}
	engine, err := cluster.NewAsync(w.Proto, w.Shards, w.Train, w.Test, w.Delay, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adacomm: %v\n", err)
		os.Exit(2)
	}
	trace := engine.Run(fmt.Sprintf("async K=%d/%d", k, n))
	if err := metrics.WriteCSV(os.Stdout, trace); err != nil {
		fmt.Fprintf(os.Stderr, "adacomm: %v\n", err)
		os.Exit(1)
	}
	st := engine.Stats()
	fmt.Fprintf(os.Stderr,
		"final loss %.5f, min loss %.5f, test acc %.2f%%, %d iters in %.1f sim-s\n",
		trace.FinalLoss(), trace.MinLoss(), 100*engine.TestAccuracy(),
		trace.Last().Iter, trace.Last().Time)
	fmt.Fprintf(os.Stderr,
		"async: %d updates, %d applied (%d expired), mean staleness %.2f, peak in-flight %d, %d replicas + %d scratch vectors\n",
		st.Updates, st.Applied, st.Expired, st.MeanStaleness, st.PeakInFlight,
		st.MaterializedReplicas, st.ScratchVectors)
}
