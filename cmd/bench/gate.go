package main

import (
	"fmt"
	"sort"
)

// The regression gate (-check) turns a committed BENCH_*.json into a CI
// fence. Wall-clock comparisons across machines are noisy, so the gate
// layers three checks of increasing portability:
//
//  1. ns/op on the PINNED KERNELS only — single-threaded, allocation-free
//     compute loops whose relative speed is stable across hosts — with a
//     configurable fractional tolerance (-tolerance).
//  2. allocs/op on every benchmark present in both records: steady-state
//     allocation counts are host-independent, so ANY increase fails.
//  3. intra-run ratios: the blocked Gemm must beat the naive reference by
//     ratioFloor within the SAME run, which needs no baseline at all.
//
// End-to-end benchmarks (Fig9Quick, AsyncRun, ...) are deliberately not
// ns/op-gated: their wall clock depends on pool scheduling and host load.

// pinnedKernels are the ns/op-gated benchmarks: pure compute hot loops.
var pinnedKernels = []string{
	"Gemm64",
	"Gemm256/naive",
	"Gemm256/blocked",
	"StepVGGNano",
	"StepResNetNano",
	"AdamStep/64k",
}

// ratioFloor is the minimum intra-run speedup of the blocked Gemm over the
// retained naive reference at 256x256. The packed SSE2 micro-kernel
// measures ~3x on the recording host (naive scalar code is pinned at one
// multiply-add per cycle; the packed kernel retires two), so the 1.5x
// floor leaves 2x headroom for runner jitter while still tripping if the
// kernel ever falls back to scalar speed.
const ratioFloor = 1.5

// checkRegression compares the current run against a baseline record and
// returns one human-readable violation per failed check.
func checkRegression(curr, base map[string]Result, pinned []string, tol float64) []string {
	var violations []string
	for _, name := range pinned {
		c, okC := curr[name]
		b, okB := base[name]
		if !okC || !okB {
			continue // new or retired benchmark: nothing to compare
		}
		if limit := b.NsPerOp * (1 + tol); c.NsPerOp > limit {
			violations = append(violations, fmt.Sprintf(
				"%s: %.0f ns/op exceeds baseline %.0f ns/op by more than %.0f%%",
				name, c.NsPerOp, b.NsPerOp, tol*100))
		}
	}
	// Allocation counts are deterministic per op: gate every shared bench.
	names := make([]string, 0, len(curr))
	for name := range curr {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b, ok := base[name]
		if !ok {
			continue
		}
		if c := curr[name]; c.AllocsPerOp > b.AllocsPerOp {
			violations = append(violations, fmt.Sprintf(
				"%s: %d allocs/op exceeds baseline %d allocs/op",
				name, c.AllocsPerOp, b.AllocsPerOp))
		}
	}
	return violations
}

// checkRatios asserts baseline-free invariants within a single run.
func checkRatios(curr map[string]Result) []string {
	var violations []string
	naive, okN := curr["Gemm256/naive"]
	blocked, okB := curr["Gemm256/blocked"]
	if okN && okB && blocked.NsPerOp*ratioFloor > naive.NsPerOp {
		violations = append(violations, fmt.Sprintf(
			"Gemm256: blocked %.0f ns/op is not %.1fx faster than naive %.0f ns/op",
			blocked.NsPerOp, ratioFloor, naive.NsPerOp))
	}
	return violations
}
