// Command bench runs the repository's hot-path micro-benchmarks at a FIXED
// iteration count and writes the results as JSON, giving every PR a
// machine-readable perf trajectory to compare against.
//
// Usage:
//
//	bench                      # print results to stdout
//	bench -out BENCH_5.json    # write the next PR's record
//	bench -n 200               # iterations per micro-benchmark (default 100)
//	bench -out BENCH_5.json -baseline BENCH_4.json -baseline-commit <sha>
//	                           # embed the previous record as the baseline
//	bench -check BENCH_7.json -tolerance 0.35
//	                           # CI regression gate: re-run and compare
//
// Rewriting an existing -out file preserves its baseline section.
//
// In -check mode the exit status is the verdict: 0 when the current run is
// within tolerance of the committed record, 1 on a regression (pinned-kernel
// ns/op past the tolerance, any allocs/op increase, or the blocked Gemm
// losing its margin over the naive reference — see gate.go), 2 on usage
// errors. CI runs this on every push unless the commit message carries a
// `[bench-skip]` marker.
//
// The convention (see ROADMAP.md): each perf-relevant PR N runs
// `go run ./cmd/bench -out BENCH_<N>.json` on an idle machine and commits
// the file; earlier BENCH_*.json files are the baselines. Fields are
// ns/op, B/op, and allocs/op per benchmark, plus the host shape (cores,
// GOMAXPROCS) that wall-clock numbers depend on. Iteration counts are
// pinned — unlike `go test -bench`, which auto-scales them — so ns/op is
// comparable run to run; each benchmark performs one untimed warmup call,
// which means allocs/op reports the steady state (scratch arenas filled).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/data"
	"repro/internal/delaymodel"
	"repro/internal/events"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/nn"
	optpkg "repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Result is one benchmark's measurement.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"`
}

// Baseline embeds a previous commit's numbers, for PRs that claim a
// speedup (populated via -baseline, or carried over from an existing -out
// file on rewrite).
type Baseline struct {
	Commit     string            `json:"commit,omitempty"`
	Harness    string            `json:"harness,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// Record is the full BENCH_*.json document.
type Record struct {
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	NumCPU     int               `json:"num_cpu"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Note       string            `json:"note,omitempty"`
	Baseline   *Baseline         `json:"baseline,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// measure times n calls of the closure produced by setup, after one untimed
// warmup call, and reports per-op wall clock and heap traffic.
func measure(n int, setup func() func()) Result {
	step := setup()
	step() // warmup: fill scratch arenas, touch all data
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < n; i++ {
		step()
	}
	dur := time.Since(start)
	runtime.ReadMemStats(&m1)
	return Result{
		NsPerOp:     float64(dur.Nanoseconds()) / float64(n),
		BytesPerOp:  int64(m1.TotalAlloc-m0.TotalAlloc) / int64(n),
		AllocsPerOp: int64(m1.Mallocs-m0.Mallocs) / int64(n),
		Iterations:  n,
	}
}

func gemmSetup() func() {
	a := tensor.NewMatrix(64, 64)
	b := tensor.NewMatrix(64, 64)
	c := tensor.NewMatrix(64, 64)
	for i := range a.Data {
		a.Data[i] = float64(i % 7)
		b.Data[i] = float64(i % 5)
	}
	return func() { tensor.Gemm(1, a, b, 0, c) }
}

// gemm256Setup is the kernel acceptance benchmark: a dense (no exact
// zeros, so the naive kernel's zero-skip never fires) 256x256x256 product,
// either through the retained naive reference or the blocked kernel at the
// given worker count. The blocked/naive ratio within one run is asserted
// by the -check gate.
func gemm256Setup(naive bool, workers int) func() {
	const n = 256
	a := tensor.NewMatrix(n, n)
	b := tensor.NewMatrix(n, n)
	c := tensor.NewMatrix(n, n)
	r := rng.New(21)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64() + 2
		b.Data[i] = r.NormFloat64()
	}
	if naive {
		return func() { tensor.GemmNaive(1, a, b, 0, c) }
	}
	return func() {
		old := tensor.SetWorkers(workers)
		tensor.Gemm(1, a, b, 0, c)
		tensor.SetWorkers(old)
	}
}

func stepSetup(net *nn.Network, dim int) func() {
	net.InitParams(rng.New(1))
	r := rng.New(2)
	batch := data.Batch{X: tensor.NewMatrix(16, dim), Y: make([]int, 16)}
	for i := 0; i < 16; i++ {
		for j := 0; j < dim; j++ {
			batch.X.Set(i, j, r.NormFloat64())
		}
		batch.Y[i] = r.Intn(4)
	}
	grad := make([]float64, net.ParamLen())
	opt := optpkg.New(optpkg.Config{LR: 0.05}, net.ParamLen())
	return func() {
		net.LossGrad(batch, grad)
		opt.Step(net.Params(), grad)
	}
}

// adamStepSetup times the optimizer layer's hot loop in isolation: one
// Local Adam update (first/second moment EMAs plus the bias-corrected
// step) on a flat 64k-parameter vector. Allocation-free after the arena
// fill, single-threaded, so it joins the pinned ns/op kernels.
func adamStepSetup(dim int) func() {
	params := make([]float64, dim)
	grad := make([]float64, dim)
	r := rng.New(11)
	for i := range params {
		params[i] = r.NormFloat64()
		grad[i] = r.NormFloat64()
	}
	o := optpkg.New(optpkg.Config{Rule: optpkg.RuleAdam, LR: 0.001}, dim)
	return func() { o.Step(params, grad) }
}

// globalMomentumSetup times one full-averaging round with the SlowMo stack
// active: heavy-ball local updates, the shared global-momentum filter at
// the sync point. Steady state must stay allocation-free like the plain
// PASGD round — the filter's buffer is engine-owned.
func globalMomentumSetup() func() {
	w := experiments.BuildWorkload(experiments.ArchLogistic, 4, 4, experiments.ScaleQuick, 3)
	e := w.Engine(cluster.Config{
		BatchSize: 8, MaxIters: 1 << 30, EvalEvery: 1 << 30,
		ComputeWorkers: 1, Seed: 4,
		Opt:            optpkg.Config{Rule: optpkg.RuleMomentum, Momentum: 0.9},
		GlobalMomentum: 0.5,
	})
	return func() {
		e.StepLocal(10, 0.1)
		e.SyncNow()
	}
}

func pasgdSetup(computeWorkers int) func() {
	w := experiments.BuildWorkload(experiments.ArchLogistic, 4, 4, experiments.ScaleQuick, 3)
	e := w.Engine(cluster.Config{
		BatchSize: 8, MaxIters: 1 << 30, EvalEvery: 1 << 30,
		ComputeWorkers: computeWorkers, Seed: 4,
	})
	return func() {
		e.StepLocal(10, 0.1)
		e.SyncNow()
	}
}

// strategySetup times one gossip/elastic round (10 local steps + sync), raw
// or compressed; the strategies' per-sync scratch is engine-owned, so the
// steady state must stay allocation-free like the full-averaging round.
func strategySetup(strat cluster.Strategy, spec compress.Spec) func() {
	w := experiments.BuildWorkload(experiments.ArchLogistic, 4, 4, experiments.ScaleQuick, 3)
	e := w.Engine(cluster.Config{
		BatchSize: 8, MaxIters: 1 << 30, EvalEvery: 1 << 30,
		ComputeWorkers: 1, Strategy: strat, Compress: spec, Seed: 4,
	})
	return func() {
		e.StepLocal(10, 0.1)
		e.SyncNow()
	}
}

// graphMixSetup times one gossip round (10 local steps + sync) over the
// 4x4 torus — the graph-generic mix path at m = 16 and degree 4, against
// RingGossipRound's m = 4 ring. The per-sync scratch (snapshots, active
// adjacency) is engine-owned; the steady-state allocs/op here is the data
// sampler's epoch reshuffle (16 small shards wrap every round), measured
// identical under the legacy ring at the same m — the mix path adds none.
func graphMixSetup() func() {
	topo, err := comm.ParseTopology("torus:4x4")
	if err != nil {
		panic(err)
	}
	w := experiments.BuildWorkload(experiments.ArchLogistic, 4, 16, experiments.ScaleQuick, 3)
	e := w.Engine(cluster.Config{
		BatchSize: 8, MaxIters: 1 << 30, EvalEvery: 1 << 30,
		ComputeWorkers: 1, Strategy: cluster.RingGossip, Topology: topo, Seed: 4,
	})
	return func() {
		e.StepLocal(10, 0.1)
		e.SyncNow()
	}
}

// spectralGapSetup times graph construction including the deflated power
// iteration for 1 - lambda_2. The 64-node ring is the slow case among the
// shipped constructors: its gap is ~1e-3, the deflation ratio is near 1,
// and the iteration runs close to its sweep cap before the tolerance hits.
func spectralGapSetup() func() {
	return func() {
		if g := graph.Ring(64); g.SpectralGap() <= 0 {
			panic("bench: ring(64) spectral gap not positive")
		}
	}
}

// eventQueueSetup times the discrete-event scheduler's raw throughput:
// push 4096 events with colliding times (exercising the seeded tie-break)
// and drain them. Events/sec = 8192 / (ns_per_op * 1e-9); mirrors the
// events package's BenchmarkQueuePushPop.
func eventQueueSetup() func() {
	return func() {
		q := events.NewQueue(9)
		for j := 0; j < 4096; j++ {
			q.Push(events.Event{Time: float64(j % 64), Worker: j & 255, Kind: events.Kind(j & 1)})
		}
		for {
			if _, ok := q.Pop(); !ok {
				break
			}
		}
	}
}

// asyncRunSetup times the event-driven engine end to end: construct and run
// a K-of-m job to a fixed update count, so ns/op tracks scheduler plus
// aggregation overhead per training run.
func asyncRunSetup(clients, k, updates int) func() {
	w := experiments.BuildWorkload(experiments.ArchLogistic, 4, clients, experiments.ScaleQuick, 5)
	cfg := cluster.AsyncConfig{
		Participation: k, Tau: 2, BatchSize: 8, LR: 0.1,
		MaxUpdates: updates, EvalEvery: 1 << 30, Seed: 6,
	}
	return func() {
		e, err := cluster.NewAsync(w.Proto, w.Shards, w.Train, w.Test, w.Delay, cfg)
		if err != nil {
			panic(err)
		}
		e.Run("bench")
	}
}

// asyncShardSetup is the client-sharding memory benchmark: 1024 simulated
// clients at K=32. B/op is the evidence for the "memory proportional to K,
// not N" claim — it must stay orders of magnitude below 1024 materialized
// replicas (1024 * dim * 8 bytes per update batch).
func asyncShardSetup() func() {
	const clients, dim, classes = 1024, 16, 4
	r := rng.New(7)
	train := data.GaussianBlobs(data.GaussianBlobsConfig{
		Classes: classes, Dim: dim, N: 4096, Separation: 4, Noise: 1.5,
	}, r)
	proto := nn.NewLogisticRegression(dim, classes)
	proto.InitParams(r.Split())
	shards := data.ShardIID(train, clients, r.Split())
	dm := delaymodel.FederatedProfile(1, 4096).Model(clients, nil)
	cfg := cluster.AsyncConfig{
		Participation: 32, Tau: 2, BatchSize: 4, LR: 0.1,
		MaxUpdates: 5, EvalEvery: 1 << 30, Seed: 8,
	}
	return func() {
		e, err := cluster.NewAsync(proto, shards, train, nil, dm, cfg)
		if err != nil {
			panic(err)
		}
		e.Run("bench")
	}
}

// fig9Setup regenerates the quick Fig 9 comparison with the given
// experiment-pool width. The serial variant (workers == 1) also pins the
// engines' ComputeWorkers to 1 so it is serial END TO END — otherwise each
// engine would default to GOMAXPROCS and the "serial" baseline would
// already be partially parallel on multi-core hosts.
func fig9Setup(workers int) func() {
	spec := experiments.Fig9Spec(10, false, experiments.ScaleQuick)
	if workers == 1 {
		spec.ComputeWorkers = 1
	}
	return func() {
		old := experiments.SetWorkers(workers)
		_ = experiments.RunComparison(spec)
		experiments.SetWorkers(old)
	}
}

func main() {
	out := flag.String("out", "", "write JSON here (default stdout)")
	n := flag.Int("n", 100, "iterations per micro-benchmark")
	note := flag.String("note", "", "free-form note recorded in the JSON")
	baselineFile := flag.String("baseline", "",
		"embed this BENCH_*.json's benchmarks as the baseline of the new record")
	baselineCommit := flag.String("baseline-commit", "",
		"commit label recorded alongside -baseline")
	check := flag.String("check", "",
		"regression gate: compare this run against the named BENCH_*.json and exit 1 on regression")
	runFilter := flag.String("run", "",
		"only run benchmarks whose name contains this substring (local iteration; CI runs all)")
	tolerance := flag.Float64("tolerance", 0.35,
		"fractional ns/op slowdown allowed on pinned kernels in -check mode")
	flag.Parse()
	if *tolerance < 0 {
		fmt.Fprintln(os.Stderr, "bench: -tolerance must be non-negative")
		os.Exit(2)
	}

	shape := data.ImageShape{Channels: 3, Height: 8, Width: 8}
	benches := []struct {
		name string
		n    int // 0 = the -n default
		fn   func() func()
	}{
		{"Gemm64", 0, gemmSetup},
		{"Gemm256/naive", 30, func() func() { return gemm256Setup(true, 1) }},
		{"Gemm256/blocked", 30, func() func() { return gemm256Setup(false, 1) }},
		// The parallel variant only separates from /blocked on multi-core
		// hosts; on a 1-core recorder it documents the dispatch overhead.
		{"Gemm256/blocked-par4", 30, func() func() { return gemm256Setup(false, 4) }},
		{"StepVGGNano", 0, func() func() { return stepSetup(nn.NewVGGNano(shape, 4), shape.Len()) }},
		{"StepResNetNano", 0, func() func() { return stepSetup(nn.NewResNetNano(shape, 4), shape.Len()) }},
		{"AdamStep/64k", 0, func() func() { return adamStepSetup(1 << 16) }},
		{"PASGDRound/serial", 0, func() func() { return pasgdSetup(1) }},
		{"PASGDRound/pool4", 0, func() func() { return pasgdSetup(4) }},
		{"GlobalMomentumRound", 0, func() func() { return globalMomentumSetup() }},
		{"RingGossipRound/raw", 0, func() func() {
			return strategySetup(cluster.RingGossip, compress.Spec{})
		}},
		{"RingGossipRound/choco", 0, func() func() {
			return strategySetup(cluster.RingGossip,
				compress.Spec{Kind: compress.KindTopK, Ratio: 0.25, ErrorFeedback: true})
		}},
		{"ElasticRound/raw", 0, func() func() {
			return strategySetup(cluster.ElasticAveraging, compress.Spec{})
		}},
		{"ElasticRound/compressed", 0, func() func() {
			return strategySetup(cluster.ElasticAveraging,
				compress.Spec{Kind: compress.KindTopK, Ratio: 0.25, ErrorFeedback: true})
		}},
		{"GraphMixRound", 0, func() func() { return graphMixSetup() }},
		{"SpectralGap/64", 0, func() func() { return spectralGapSetup() }},
		{"EventQueue/4096", 0, func() func() { return eventQueueSetup() }},
		{"AsyncRun/8of64", 20, func() func() { return asyncRunSetup(64, 8, 10) }},
		{"AsyncShard/1024", 10, func() func() { return asyncShardSetup() }},
		// Fig9Quick is an end-to-end figure regeneration (seconds per op);
		// 2 iterations bound the total runtime.
		{"Fig9Quick/serial", 2, func() func() { return fig9Setup(1) }},
		{"Fig9Quick/pool4", 2, func() func() { return fig9Setup(4) }},
	}

	rec := Record{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note:       *note,
		Benchmarks: map[string]Result{},
	}
	for _, bench := range benches {
		if *runFilter != "" && !strings.Contains(bench.name, *runFilter) {
			continue
		}
		iters := bench.n
		if iters == 0 {
			iters = *n
		}
		res := measure(iters, bench.fn)
		rec.Benchmarks[bench.name] = res
		fmt.Fprintf(os.Stderr, "%-20s %14.0f ns/op %12d B/op %8d allocs/op (n=%d)\n",
			bench.name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.Iterations)
	}

	if *check != "" {
		var base Record
		raw, err := os.ReadFile(*check)
		if err == nil {
			err = json.Unmarshal(raw, &base)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: -check: %v\n", err)
			os.Exit(2)
		}
		violations := checkRegression(rec.Benchmarks, base.Benchmarks, pinnedKernels, *tolerance)
		violations = append(violations, checkRatios(rec.Benchmarks)...)
		if len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "bench: regression: %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench: gate ok against %s (tolerance %.0f%%)\n",
			*check, *tolerance*100)
		return
	}

	if *baselineFile != "" {
		var prev Record
		raw, err := os.ReadFile(*baselineFile)
		if err == nil {
			err = json.Unmarshal(raw, &prev)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: -baseline: %v\n", err)
			os.Exit(1)
		}
		rec.Baseline = &Baseline{
			Commit:     *baselineCommit,
			Harness:    "cmd/bench",
			Benchmarks: prev.Benchmarks,
		}
	} else if *out != "" {
		// Rewriting an existing record must not silently drop its baseline.
		if raw, err := os.ReadFile(*out); err == nil {
			var prev Record
			if json.Unmarshal(raw, &prev) == nil && prev.Baseline != nil {
				rec.Baseline = prev.Baseline
			}
		}
	}

	enc, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
}
