package main

import (
	"strings"
	"testing"
)

func res(ns float64, allocs int64) Result {
	return Result{NsPerOp: ns, AllocsPerOp: allocs, Iterations: 1}
}

func TestCheckRegressionPassesWithinTolerance(t *testing.T) {
	base := map[string]Result{
		"Gemm64":      res(1000, 0),
		"StepVGGNano": res(5000, 2),
	}
	curr := map[string]Result{
		"Gemm64":      res(1200, 0), // +20% < 35% tolerance
		"StepVGGNano": res(4800, 2),
	}
	if v := checkRegression(curr, base, pinnedKernels, 0.35); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
}

func TestCheckRegressionCatchesInjectedSlowdown(t *testing.T) {
	// The acceptance demo: inject a 2x slowdown on a pinned kernel and the
	// gate must fail.
	base := map[string]Result{"Gemm64": res(1000, 0)}
	curr := map[string]Result{"Gemm64": res(2000, 0)}
	v := checkRegression(curr, base, pinnedKernels, 0.35)
	if len(v) != 1 || !strings.Contains(v[0], "Gemm64") {
		t.Fatalf("2x slowdown not caught: %v", v)
	}
	// The same numbers pass once the tolerance admits them.
	if v := checkRegression(curr, base, pinnedKernels, 1.5); len(v) != 0 {
		t.Fatalf("tolerance 150%% still failed: %v", v)
	}
}

func TestCheckRegressionCatchesAllocIncrease(t *testing.T) {
	// allocs/op is gated on EVERY shared benchmark, not just pinned ones,
	// and with zero tolerance — counts are host-independent.
	base := map[string]Result{"PASGDRound/serial": res(1000, 4)}
	curr := map[string]Result{"PASGDRound/serial": res(1000, 5)}
	v := checkRegression(curr, base, pinnedKernels, 0.35)
	if len(v) != 1 || !strings.Contains(v[0], "allocs/op") {
		t.Fatalf("alloc increase not caught: %v", v)
	}
}

func TestCheckRegressionIgnoresUnsharedBenches(t *testing.T) {
	// New benchmarks (no baseline entry) and retired ones (no current entry)
	// must not trip the gate.
	base := map[string]Result{"Retired": res(10, 99), "Gemm64": res(1000, 0)}
	curr := map[string]Result{"Gemm256/blocked": res(10, 0), "Gemm64": res(1000, 0)}
	if v := checkRegression(curr, base, pinnedKernels, 0.35); len(v) != 0 {
		t.Fatalf("unshared benches tripped the gate: %v", v)
	}
}

func TestCheckRatiosBlockedMustBeatNaive(t *testing.T) {
	ok := map[string]Result{
		"Gemm256/naive":   res(10000, 0),
		"Gemm256/blocked": res(5000, 0),
	}
	if v := checkRatios(ok); len(v) != 0 {
		t.Fatalf("healthy ratio tripped the gate: %v", v)
	}
	bad := map[string]Result{
		"Gemm256/naive":   res(10000, 0),
		"Gemm256/blocked": res(9500, 0), // only 1.05x
	}
	v := checkRatios(bad)
	if len(v) != 1 || !strings.Contains(v[0], "Gemm256") {
		t.Fatalf("degraded blocked kernel not caught: %v", v)
	}
	// Missing entries (e.g. a trimmed bench list) are not a violation.
	if v := checkRatios(map[string]Result{"Gemm64": res(1, 0)}); len(v) != 0 {
		t.Fatalf("missing benches tripped the ratio gate: %v", v)
	}
}
