// Command figures regenerates the data behind every table and figure of
// the paper's evaluation. By default it runs everything at full scale and
// prints text tables to stdout; -csv additionally dumps raw training traces
// for external plotting.
//
// Usage:
//
//	figures                 # all figures, full scale
//	figures -fig 9          # only Figure 9
//	figures -table 1        # only Table 1
//	figures -quick          # reduced sizes (smoke test)
//	figures -csv out/       # also write trace CSVs into out/
//	figures -workers 8      # run up to 8 methods per figure concurrently
//	figures -async          # async-vs-sync ablation (event-driven engine)
//	figures -wire float32   # float32-vs-float64 wire ablation
//	figures -gossip -wire float32  # gossip grid with narrowed compressed cells
//	figures -topology       # mixing-topology ablation under a slow edge
//	figures -churn          # fault-injection ablation (crash/recover/drop churn)
//	figures -churn -faults "blip:0@r8-20,drop:0.1"  # ... with a custom schedule
//	figures -optimizer      # local-update-rule ablation (SGD/momentum/Adam/SlowMo)
//	figures -optimizer -adam-beta2 0.99 -global-momentum 0.2  # ... tuned rows
//
// Each figure's methods are independent training runs, so they execute
// concurrently on the experiment pool (default width GOMAXPROCS); the
// output is byte-identical at any -workers setting.
//
// The Monte-Carlo runtime figures (5, 8) and the bound-driven schedule
// (fig 7) can be regenerated for a bandwidth-constrained link by pricing
// each broadcast's payload:
//
//	figures -fig 5 -bytes 800000 -bandwidth 4e6   # 0.2 s/transfer
//	figures -fig 8 -bytes 800000 -bandwidth 4e6
//
// With the default -bytes 0 the output is bit-identical to the size-free
// paper model.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/compress"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

func main() {
	fig := flag.Int("fig", 0, "regenerate only this figure number (0 = all)")
	table := flag.Int("table", 0, "regenerate only this table number (0 = all)")
	quick := flag.Bool("quick", false, "use reduced experiment sizes")
	csvDir := flag.String("csv", "", "directory to write trace CSVs into")
	bytes := flag.Int("bytes", 0,
		"per-broadcast payload in bytes for the runtime figures 5/7/8 (0 = the paper's size-free model)")
	bandwidth := flag.Float64("bandwidth", 0,
		"per-link bandwidth in bytes per simulated second for -bytes pricing (0 = infinite)")
	workers := flag.Int("workers", 0,
		"concurrent experiment configurations per grid (0 = GOMAXPROCS, 1 = serial); output is identical at any width")
	gossip := flag.Bool("gossip", false,
		"run the gossip-compression ablation grid (CHOCO ring vs shared-reference averaging) instead of the paper figures")
	topology := flag.Bool("topology", false,
		"run the mixing-topology ablation (ring/torus/random-regular/complete under a slow edge) instead of the paper figures")
	async := flag.Bool("async", false,
		"run the async-vs-sync ablation (event-driven K-of-m vs round-barrier engines under a 10x straggler) instead of the paper figures")
	churn := flag.Bool("churn", false,
		"run the churn ablation (every strategy fault-free and under crash-recover churn plus drops) instead of the paper figures")
	faultsFlag := flag.String("faults", "",
		"with -churn: override the fault schedule, comma-separated events ("+faults.Forms+")")
	optimizer := flag.Bool("optimizer", false,
		"run the optimizer ablation (plain SGD / momentum / Nesterov / Local Adam / wire-synced Adam / SlowMo / norm-driven bit-width) instead of the paper figures")
	adamBeta2 := flag.Float64("adam-beta2", 0,
		"with -optimizer: second-moment decay beta2 of the Adam rows, in (0, 1) (0 = default 0.999)")
	globalMomentum := flag.Float64("global-momentum", 0,
		"with -optimizer: slow-momentum factor of the slowmo row, in (0, 1) (0 = default 0.1)")
	wireFlag := flag.String("wire", "",
		"with -gossip: wire precision (float64 | float32) of the compressed cells; alone, -wire float32 runs the float32-vs-float64 wire ablation")
	kernelWorkers := flag.Int("kernel-workers", 1,
		"goroutines the tensor kernels may fan output-row panels across (bit-identical results at any setting; >1 oversubscribes when the experiment pool is already saturated)")
	flag.Parse()

	if *workers > 0 {
		experiments.SetWorkers(*workers)
	}
	wire, err := compress.ParseWire(*wireFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(2)
	}
	if *kernelWorkers < 1 {
		fmt.Fprintf(os.Stderr, "figures: -kernel-workers %d must be >= 1\n", *kernelWorkers)
		os.Exit(2)
	}
	tensor.SetWorkers(*kernelWorkers)

	if *bytes < 0 || *bandwidth < 0 {
		fmt.Fprintf(os.Stderr, "figures: -bytes %d and -bandwidth %g must be >= 0\n", *bytes, *bandwidth)
		os.Exit(2)
	}
	if *bytes > 0 && *bandwidth <= 0 {
		fmt.Fprintln(os.Stderr, "figures: -bytes needs a finite -bandwidth to price the transfer")
		os.Exit(2)
	}

	scale := experiments.ScaleFull
	if *quick {
		scale = experiments.ScaleQuick
	}
	out := os.Stdout
	modes := 0
	for _, on := range []bool{*gossip, *async, *topology, *churn, *optimizer} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(os.Stderr, "figures: -gossip, -async, -topology, -churn, and -optimizer are separate ablations; pick one")
		os.Exit(2)
	}
	if *faultsFlag != "" && !*churn {
		fmt.Fprintln(os.Stderr, "figures: -faults overrides the churn schedule; it requires -churn")
		os.Exit(2)
	}
	if (*adamBeta2 != 0 || *globalMomentum != 0) && !*optimizer {
		fmt.Fprintln(os.Stderr, "figures: -adam-beta2 and -global-momentum tune the optimizer ablation; they require -optimizer")
		os.Exit(2)
	}
	if *optimizer {
		if *fig != 0 || *table != 0 || *bytes != 0 || *csvDir != "" || *wireFlag != "" {
			fmt.Fprintln(os.Stderr, "figures: -optimizer runs only the optimizer ablation; it cannot combine with -fig/-table/-bytes/-csv/-wire")
			os.Exit(2)
		}
		if *adamBeta2 != 0 && !(*adamBeta2 > 0 && *adamBeta2 < 1) {
			fmt.Fprintf(os.Stderr, "figures: -adam-beta2 %g outside (0, 1)\n", *adamBeta2)
			os.Exit(2)
		}
		if *globalMomentum != 0 && !(*globalMomentum > 0 && *globalMomentum < 1) {
			fmt.Fprintf(os.Stderr, "figures: -global-momentum %g outside (0, 1)\n", *globalMomentum)
			os.Exit(2)
		}
		spec := experiments.DefaultOptimizerSpec(scale)
		spec.AdamBeta2 = *adamBeta2
		if *globalMomentum != 0 {
			spec.GlobalMomentum = *globalMomentum
		}
		target, rows := experiments.OptimizerAblation(spec)
		experiments.PrintLinkAware(out, "local update rules (internal/opt)", target, rows)
		return
	}
	if *churn {
		if *fig != 0 || *table != 0 || *bytes != 0 || *csvDir != "" || *wireFlag != "" {
			fmt.Fprintln(os.Stderr, "figures: -churn runs only the churn ablation; it cannot combine with -fig/-table/-bytes/-csv/-wire")
			os.Exit(2)
		}
		spec := experiments.DefaultChurnSpec(scale)
		if *faultsFlag != "" {
			spec.Faults = *faultsFlag
		}
		sched, err := faults.Parse(spec.Faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(2)
		}
		if err := sched.Validate(spec.Workers); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(2)
		}
		target, rows := experiments.ChurnAblation(spec)
		experiments.PrintLinkAware(out, "strategies under crash-recover churn", target, rows)
		return
	}
	if *topology {
		if *fig != 0 || *table != 0 || *bytes != 0 || *csvDir != "" || *wireFlag != "" {
			fmt.Fprintln(os.Stderr, "figures: -topology runs only the topology ablation; it cannot combine with -fig/-table/-bytes/-csv/-wire")
			os.Exit(2)
		}
		experiments.PrintTopologyGrid(out, experiments.RunTopologyGrid(experiments.DefaultTopologyGrid(scale)))
		return
	}
	// Standalone -wire runs the wire ablation; with -gossip it narrows the
	// grid's compressed cells instead. Any other combination is rejected.
	if *wireFlag != "" && !*gossip {
		if *async || *fig != 0 || *table != 0 || *bytes != 0 || *csvDir != "" {
			fmt.Fprintln(os.Stderr, "figures: -wire runs only the wire ablation (or modifies -gossip); it cannot combine with -fig/-table/-bytes/-csv/-async")
			os.Exit(2)
		}
		if wire != compress.WireFloat32 {
			fmt.Fprintln(os.Stderr, "figures: the wire ablation already includes the float64 baseline; use -wire float32")
			os.Exit(2)
		}
		experiments.PrintWireAblation(out, experiments.WireAblation(scale))
		return
	}
	if *async {
		if *fig != 0 || *table != 0 || *bytes != 0 || *csvDir != "" {
			fmt.Fprintln(os.Stderr, "figures: -async runs only the async ablation; it cannot combine with -fig/-table/-bytes/-csv")
			os.Exit(2)
		}
		target, rows := experiments.AsyncAblation(experiments.DefaultAsyncSpec(scale))
		experiments.PrintLinkAware(out, "async vs sync under 10x straggler", target, rows)
		return
	}
	if *gossip {
		if *fig != 0 || *table != 0 || *bytes != 0 || *csvDir != "" {
			fmt.Fprintln(os.Stderr, "figures: -gossip runs only the gossip grid; it cannot combine with -fig/-table/-bytes/-csv")
			os.Exit(2)
		}
		spec := experiments.DefaultGossipGrid(scale)
		spec.Wire = wire
		if *bandwidth > 0 {
			spec.Bandwidth = *bandwidth
		}
		experiments.PrintGossipGrid(out, experiments.RunGossipGrid(spec))
		return
	}
	all := *fig == 0 && *table == 0

	dump := func(name string, cmp *experiments.Comparison) {
		cmp.Print(out)
		fmt.Fprintln(out)
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		var traces []*metrics.Trace
		for _, n := range cmp.Order {
			traces = append(traces, cmp.Traces[n])
		}
		if err := metrics.WriteCSV(f, traces...); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
	}

	if all || *fig == 1 {
		dump("fig1", experiments.RunComparison(experiments.Fig1Spec(scale)))
	}
	if all || *fig == 4 {
		experiments.PrintFig4(out, experiments.Fig4())
		fmt.Fprintln(out)
	}
	if all || *fig == 5 {
		trials := 200000
		if scale == experiments.ScaleQuick {
			trials = 20000
		}
		experiments.PrintFig5(out, experiments.Fig5Bytes(trials, 1, *bytes, *bandwidth))
		fmt.Fprintln(out)
	}
	if all || *fig == 6 {
		experiments.PrintFig6(out, experiments.Fig6(200))
		fmt.Fprintln(out)
	}
	if all || *fig == 7 {
		c := experiments.SizeAwareConstants(experiments.Fig6Constants(), *bytes, *bandwidth)
		experiments.PrintFig7(out, experiments.Fig7(c, 60, 10, 64))
		fmt.Fprintln(out)
	}
	if all || *fig == 8 {
		experiments.PrintFig8(out, experiments.Fig8Bytes(4, 2, *bytes, *bandwidth))
		fmt.Fprintln(out)
	}
	if all || *fig == 9 {
		dump("fig9a", experiments.RunComparison(experiments.Fig9Spec(10, true, scale)))
		dump("fig9b", experiments.RunComparison(experiments.Fig9Spec(10, false, scale)))
		dump("fig9c", experiments.RunComparison(experiments.Fig9Spec(100, false, scale)))
	}
	if all || *fig == 10 {
		dump("fig10a", experiments.RunComparison(experiments.Fig10Spec(10, true, scale)))
		dump("fig10b", experiments.RunComparison(experiments.Fig10Spec(10, false, scale)))
		dump("fig10c", experiments.RunComparison(experiments.Fig10Spec(100, false, scale)))
	}
	if all || *fig == 11 {
		dump("fig11a", experiments.RunComparison(experiments.Fig11Spec(experiments.ArchResNet, 10, scale)))
		dump("fig11b", experiments.RunComparison(experiments.Fig11Spec(experiments.ArchVGG, 10, scale)))
		dump("fig11c", experiments.RunComparison(experiments.Fig11Spec(experiments.ArchResNet, 100, scale)))
	}
	if all || *fig == 12 {
		dump("fig12a", experiments.RunComparison(experiments.Fig12Spec(10, true, scale)))
		dump("fig12b", experiments.RunComparison(experiments.Fig12Spec(100, false, scale)))
	}
	if all || *fig == 13 {
		dump("fig13a", experiments.RunComparison(experiments.Fig13Spec(10, true, scale)))
		dump("fig13b", experiments.RunComparison(experiments.Fig13Spec(100, false, scale)))
	}
	if all || *fig == 14 {
		experiments.PrintFig14(out, experiments.Fig14(scale, 5))
		fmt.Fprintln(out)
	}
	if all || *table == 1 {
		experiments.PrintTable1(out, experiments.Table1(scale))
		fmt.Fprintln(out)
	}
}
