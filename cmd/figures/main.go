// Command figures regenerates the data behind every table and figure of
// the paper's evaluation. By default it runs everything at full scale and
// prints text tables to stdout; -csv additionally dumps raw training traces
// for external plotting.
//
// Usage:
//
//	figures                 # all figures, full scale
//	figures -fig 9          # only Figure 9
//	figures -table 1        # only Table 1
//	figures -quick          # reduced sizes (smoke test)
//	figures -csv out/       # also write trace CSVs into out/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	fig := flag.Int("fig", 0, "regenerate only this figure number (0 = all)")
	table := flag.Int("table", 0, "regenerate only this table number (0 = all)")
	quick := flag.Bool("quick", false, "use reduced experiment sizes")
	csvDir := flag.String("csv", "", "directory to write trace CSVs into")
	flag.Parse()

	scale := experiments.ScaleFull
	if *quick {
		scale = experiments.ScaleQuick
	}
	out := os.Stdout
	all := *fig == 0 && *table == 0

	dump := func(name string, cmp *experiments.Comparison) {
		cmp.Print(out)
		fmt.Fprintln(out)
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		var traces []*metrics.Trace
		for _, n := range cmp.Order {
			traces = append(traces, cmp.Traces[n])
		}
		if err := metrics.WriteCSV(f, traces...); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
	}

	if all || *fig == 1 {
		dump("fig1", experiments.RunComparison(experiments.Fig1Spec(scale)))
	}
	if all || *fig == 4 {
		experiments.PrintFig4(out, experiments.Fig4())
		fmt.Fprintln(out)
	}
	if all || *fig == 5 {
		trials := 200000
		if scale == experiments.ScaleQuick {
			trials = 20000
		}
		experiments.PrintFig5(out, experiments.Fig5(trials, 1))
		fmt.Fprintln(out)
	}
	if all || *fig == 6 {
		experiments.PrintFig6(out, experiments.Fig6(200))
		fmt.Fprintln(out)
	}
	if all || *fig == 7 {
		experiments.PrintFig7(out, experiments.Fig7(experiments.Fig6Constants(), 60, 10, 64))
		fmt.Fprintln(out)
	}
	if all || *fig == 8 {
		experiments.PrintFig8(out, experiments.Fig8(4, 2))
		fmt.Fprintln(out)
	}
	if all || *fig == 9 {
		dump("fig9a", experiments.RunComparison(experiments.Fig9Spec(10, true, scale)))
		dump("fig9b", experiments.RunComparison(experiments.Fig9Spec(10, false, scale)))
		dump("fig9c", experiments.RunComparison(experiments.Fig9Spec(100, false, scale)))
	}
	if all || *fig == 10 {
		dump("fig10a", experiments.RunComparison(experiments.Fig10Spec(10, true, scale)))
		dump("fig10b", experiments.RunComparison(experiments.Fig10Spec(10, false, scale)))
		dump("fig10c", experiments.RunComparison(experiments.Fig10Spec(100, false, scale)))
	}
	if all || *fig == 11 {
		dump("fig11a", experiments.RunComparison(experiments.Fig11Spec(experiments.ArchResNet, 10, scale)))
		dump("fig11b", experiments.RunComparison(experiments.Fig11Spec(experiments.ArchVGG, 10, scale)))
		dump("fig11c", experiments.RunComparison(experiments.Fig11Spec(experiments.ArchResNet, 100, scale)))
	}
	if all || *fig == 12 {
		dump("fig12a", experiments.RunComparison(experiments.Fig12Spec(10, true, scale)))
		dump("fig12b", experiments.RunComparison(experiments.Fig12Spec(100, false, scale)))
	}
	if all || *fig == 13 {
		dump("fig13a", experiments.RunComparison(experiments.Fig13Spec(10, true, scale)))
		dump("fig13b", experiments.RunComparison(experiments.Fig13Spec(100, false, scale)))
	}
	if all || *fig == 14 {
		experiments.PrintFig14(out, experiments.Fig14(scale, 5))
		fmt.Fprintln(out)
	}
	if all || *table == 1 {
		experiments.PrintTable1(out, experiments.Table1(scale))
		fmt.Fprintln(out)
	}
}
