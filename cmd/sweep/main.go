// Command sweep runs the ablation grids called out in DESIGN.md Sec 4:
// the tau grid search (how tau_0 is picked), the gamma saturation-decay
// ablation, the LR-coupling-rule ablation (eq 19 vs eq 20), the interval
// length T0 sensitivity, and the delay-distribution straggler ablation.
//
// Usage:
//
//	sweep -ablation tau0     # grid over fixed tau
//	sweep -ablation gamma    # gamma in {1, 0.5, 0.25}
//	sweep -ablation coupling # none vs sqrt vs full under LR decay
//	sweep -ablation t0       # interval length sensitivity
//	sweep -ablation delay    # constant vs exponential vs Pareto Y
//	sweep -ablation gossip   # CHOCO ring gossip vs shared-reference averaging
//	sweep -ablation gossip -wire float32  # ... with narrowed compressed cells
//	sweep -ablation async    # event-driven K-of-m vs round-barrier engines
//	sweep -ablation wire     # float32 vs float64 wire at fixed tau
//	sweep -ablation topology # mixing graphs under a per-edge straggler
//	sweep -ablation churn    # every strategy under crash-recover churn + drops
//	sweep -ablation churn -faults "blip:0@r8-20,drop:0.1"  # ... custom schedule
//	sweep -ablation optimizer # local update rules: SGD/momentum/Adam/SlowMo
//	sweep -ablation optimizer -adam-beta2 0.99 -global-momentum 0.2
//	sweep -ablation all
//
// Grid cells are independent configurations and run concurrently on the
// experiment pool (-workers, default GOMAXPROCS); the output is
// byte-identical at any width.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/compress"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/tensor"
)

func main() {
	which := flag.String("ablation", "all", "tau0 | gamma | coupling | t0 | delay | strategy | adasync | gossip | async | wire | topology | churn | optimizer | all")
	quick := flag.Bool("quick", false, "use reduced sizes")
	workers := flag.Int("workers", 0,
		"concurrent experiment configurations per grid (0 = GOMAXPROCS, 1 = serial); output is identical at any width")
	wireFlag := flag.String("wire", "",
		"wire precision (float64 | float32) of the gossip grid's compressed cells; only meaningful with -ablation gossip or all")
	kernelWorkers := flag.Int("kernel-workers", 1,
		"goroutines the tensor kernels may fan output-row panels across (bit-identical results at any setting; >1 oversubscribes when the experiment pool is already saturated)")
	faultsFlag := flag.String("faults", "",
		"override the churn ablation's fault schedule, comma-separated events ("+faults.Forms+"); only meaningful with -ablation churn or all")
	adamBeta2 := flag.Float64("adam-beta2", 0,
		"second-moment decay beta2 of the optimizer ablation's Adam rows, in (0, 1); only meaningful with -ablation optimizer or all (0 = default 0.999)")
	globalMomentum := flag.Float64("global-momentum", 0,
		"slow-momentum factor of the optimizer ablation's slowmo row, in (0, 1); only meaningful with -ablation optimizer or all (0 = default 0.1)")
	flag.Parse()

	if *workers > 0 {
		experiments.SetWorkers(*workers)
	}
	wire, err := compress.ParseWire(*wireFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(2)
	}
	if *wireFlag != "" && *which != "gossip" && *which != "all" {
		fmt.Fprintf(os.Stderr, "sweep: -wire only modifies the gossip grid; -ablation %s ignores it (use -ablation gossip or all)\n", *which)
		os.Exit(2)
	}
	if *faultsFlag != "" && *which != "churn" && *which != "all" {
		fmt.Fprintf(os.Stderr, "sweep: -faults only modifies the churn ablation; -ablation %s ignores it (use -ablation churn or all)\n", *which)
		os.Exit(2)
	}
	// Reject a malformed schedule before any grid runs, not after -ablation
	// all has burned through the earlier tables.
	if _, err := faults.Parse(*faultsFlag); err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(2)
	}
	if (*adamBeta2 != 0 || *globalMomentum != 0) && *which != "optimizer" && *which != "all" {
		fmt.Fprintf(os.Stderr, "sweep: -adam-beta2 and -global-momentum only tune the optimizer ablation; -ablation %s ignores them (use -ablation optimizer or all)\n", *which)
		os.Exit(2)
	}
	if *adamBeta2 != 0 && !(*adamBeta2 > 0 && *adamBeta2 < 1) {
		fmt.Fprintf(os.Stderr, "sweep: -adam-beta2 %g outside (0, 1)\n", *adamBeta2)
		os.Exit(2)
	}
	if *globalMomentum != 0 && !(*globalMomentum > 0 && *globalMomentum < 1) {
		fmt.Fprintf(os.Stderr, "sweep: -global-momentum %g outside (0, 1)\n", *globalMomentum)
		os.Exit(2)
	}
	if *kernelWorkers < 1 {
		fmt.Fprintf(os.Stderr, "sweep: -kernel-workers %d must be >= 1\n", *kernelWorkers)
		os.Exit(2)
	}
	tensor.SetWorkers(*kernelWorkers)

	scale := experiments.ScaleFull
	if *quick {
		scale = experiments.ScaleQuick
	}
	all := *which == "all"
	out := os.Stdout

	if all || *which == "tau0" {
		experiments.PrintTauGrid(out, experiments.TauGridAblation(scale))
		fmt.Fprintln(out)
	}
	if all || *which == "gamma" {
		experiments.PrintGammaAblation(out, experiments.GammaAblation(scale))
		fmt.Fprintln(out)
	}
	if all || *which == "coupling" {
		experiments.PrintCouplingAblation(out, experiments.CouplingAblation(scale))
		fmt.Fprintln(out)
	}
	if all || *which == "t0" {
		experiments.PrintIntervalAblation(out, experiments.IntervalAblation(scale))
		fmt.Fprintln(out)
	}
	if all || *which == "strategy" {
		experiments.PrintStrategyAblation(out, experiments.StrategyAblation(scale))
		fmt.Fprintln(out)
	}
	if all || *which == "adasync" {
		experiments.PrintAdaSync(out, experiments.AdaSyncExperiment(scale))
		fmt.Fprintln(out)
	}
	if all || *which == "delay" {
		experiments.PrintDelayAblation(out, experiments.DelayAblation(scale))
		fmt.Fprintln(out)
	}
	if all || *which == "gossip" {
		spec := experiments.DefaultGossipGrid(scale)
		spec.Wire = wire
		experiments.PrintGossipGrid(out, experiments.RunGossipGrid(spec))
		fmt.Fprintln(out)
	}
	if all || *which == "async" {
		target, rows := experiments.AsyncAblation(experiments.DefaultAsyncSpec(scale))
		experiments.PrintLinkAware(out, "async vs sync under 10x straggler", target, rows)
		fmt.Fprintln(out)
	}
	if all || *which == "wire" {
		experiments.PrintWireAblation(out, experiments.WireAblation(scale))
		fmt.Fprintln(out)
	}
	if all || *which == "topology" {
		experiments.PrintTopologyGrid(out, experiments.RunTopologyGrid(experiments.DefaultTopologyGrid(scale)))
		fmt.Fprintln(out)
	}
	if all || *which == "churn" {
		spec := experiments.DefaultChurnSpec(scale)
		if *faultsFlag != "" {
			spec.Faults = *faultsFlag
		}
		sched, err := faults.Parse(spec.Faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(2)
		}
		if err := sched.Validate(spec.Workers); err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(2)
		}
		target, rows := experiments.ChurnAblation(spec)
		experiments.PrintLinkAware(out, "strategies under crash-recover churn", target, rows)
		fmt.Fprintln(out)
	}
	if all || *which == "optimizer" {
		spec := experiments.DefaultOptimizerSpec(scale)
		spec.AdamBeta2 = *adamBeta2
		if *globalMomentum != 0 {
			spec.GlobalMomentum = *globalMomentum
		}
		target, rows := experiments.OptimizerAblation(spec)
		experiments.PrintLinkAware(out, "local update rules (internal/opt)", target, rows)
		fmt.Fprintln(out)
	}
}
