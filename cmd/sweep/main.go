// Command sweep runs the ablation grids called out in DESIGN.md Sec 4:
// the tau grid search (how tau_0 is picked), the gamma saturation-decay
// ablation, the LR-coupling-rule ablation (eq 19 vs eq 20), the interval
// length T0 sensitivity, and the delay-distribution straggler ablation.
//
// Usage:
//
//	sweep -ablation tau0     # grid over fixed tau
//	sweep -ablation gamma    # gamma in {1, 0.5, 0.25}
//	sweep -ablation coupling # none vs sqrt vs full under LR decay
//	sweep -ablation t0       # interval length sensitivity
//	sweep -ablation delay    # constant vs exponential vs Pareto Y
//	sweep -ablation gossip   # CHOCO ring gossip vs shared-reference averaging
//	sweep -ablation async    # event-driven K-of-m vs round-barrier engines
//	sweep -ablation all
//
// Grid cells are independent configurations and run concurrently on the
// experiment pool (-workers, default GOMAXPROCS); the output is
// byte-identical at any width.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	which := flag.String("ablation", "all", "tau0 | gamma | coupling | t0 | delay | strategy | adasync | gossip | async | all")
	quick := flag.Bool("quick", false, "use reduced sizes")
	workers := flag.Int("workers", 0,
		"concurrent experiment configurations per grid (0 = GOMAXPROCS, 1 = serial); output is identical at any width")
	flag.Parse()

	if *workers > 0 {
		experiments.SetWorkers(*workers)
	}

	scale := experiments.ScaleFull
	if *quick {
		scale = experiments.ScaleQuick
	}
	all := *which == "all"
	out := os.Stdout

	if all || *which == "tau0" {
		experiments.PrintTauGrid(out, experiments.TauGridAblation(scale))
		fmt.Fprintln(out)
	}
	if all || *which == "gamma" {
		experiments.PrintGammaAblation(out, experiments.GammaAblation(scale))
		fmt.Fprintln(out)
	}
	if all || *which == "coupling" {
		experiments.PrintCouplingAblation(out, experiments.CouplingAblation(scale))
		fmt.Fprintln(out)
	}
	if all || *which == "t0" {
		experiments.PrintIntervalAblation(out, experiments.IntervalAblation(scale))
		fmt.Fprintln(out)
	}
	if all || *which == "strategy" {
		experiments.PrintStrategyAblation(out, experiments.StrategyAblation(scale))
		fmt.Fprintln(out)
	}
	if all || *which == "adasync" {
		experiments.PrintAdaSync(out, experiments.AdaSyncExperiment(scale))
		fmt.Fprintln(out)
	}
	if all || *which == "delay" {
		experiments.PrintDelayAblation(out, experiments.DelayAblation(scale))
		fmt.Fprintln(out)
	}
	if all || *which == "gossip" {
		experiments.PrintGossipGrid(out, experiments.RunGossipGrid(experiments.DefaultGossipGrid(scale)))
		fmt.Fprintln(out)
	}
	if all || *which == "async" {
		target, rows := experiments.AsyncAblation(experiments.DefaultAsyncSpec(scale))
		experiments.PrintLinkAware(out, "async vs sync under 10x straggler", target, rows)
		fmt.Fprintln(out)
	}
}
