// Package paramserver implements the parameter-server counterpart of the
// PASGD engine: K-sync and K-async distributed SGD over a discrete-event
// simulation of worker compute times and push/pull delays.
//
// The AdaComm paper's conclusion singles this framework out as the natural
// next target for adaptive communication ("parameter server-based training
// (e.g., adapting asynchrony)"), citing Dutta et al. 2018 ("Slow and stale
// gradients can win the race") whose K-sync/K-async taxonomy this package
// follows:
//
//   - K-sync SGD: all m workers compute a gradient at the current model;
//     the server waits for the FASTEST K, averages them, updates, and
//     cancels the stragglers (they restart at the new model). K = m is
//     fully synchronous SGD; smaller K trades gradient quality for speed.
//   - K-async SGD: workers never wait. Each computes on the model version
//     it last pulled; the server buffers arriving (possibly stale)
//     gradients and applies an averaged update per K arrivals. K = 1 is
//     classic asynchronous SGD (Hogwild-style staleness).
//
// AdaSync (this package's adaptive controller) is the AdaComm idea
// transplanted: start with small K (fast, noisy/stale updates — the analog
// of large tau) and raise K toward m as the loss decreases (the analog of
// decaying tau), using the same loss-ratio rule and saturation refinement.
//
// All worker<->server exchange routes through a star-topology communicator
// (internal/comm). Gradient pushes may be compressed (Config.Compress) and
// model pulls priced and delta-compressed against each worker's last pulled
// reconstruction (Config.PullCompress); Config.Links gives workers
// heterogeneous uplinks/downlinks. Every zero-value knob preserves the
// legacy protocol byte for byte (enforced by golden tests).
package paramserver

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/data"
	"repro/internal/delaymodel"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Mode selects the server's aggregation discipline.
type Mode int

const (
	// KSync waits for the fastest K gradients computed at the CURRENT
	// model, cancels the rest.
	KSync Mode = iota
	// KAsync applies an update per K arrivals without cancelling anyone;
	// gradients may be stale.
	KAsync
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case KSync:
		return "k-sync"
	case KAsync:
		return "k-async"
	}
	return "unknown-mode"
}

// RoundInfo is the server state a Controller sees before each update round —
// the parameter-server analog of cluster.RoundInfo.
type RoundInfo struct {
	Time    float64 // simulated clock
	Version int     // server updates applied so far

	// LinkTimes[i] is the deterministic transfer time of worker i's most
	// recent exchange — its link latency plus the wire payload (gradient
	// push plus any priced pull) over its link's effective bandwidth; the
	// random compute and push-delay draws are excluded, so the entries
	// characterize the LINKS, not the luck. All zeros on free homogeneous
	// links. The slice is server-owned and refreshed in place; controllers
	// must not retain or mutate it.
	LinkTimes []float64

	// GradNorm is the L2 norm of the mean gradient applied by the most
	// recent server update (0 before the first update). Norm-tracking
	// controllers (AdaSync's bit-width rule) read it; it costs no extra
	// gradient evaluation and no RNG.
	GradNorm float64
}

// Controller adapts the server's K (and learning rate) over wall-clock
// time. It is the parameter-server analog of cluster.Controller.
type Controller interface {
	// Next returns the K and learning rate to use for the next update
	// round, given the current server state and an on-demand loss probe.
	Next(info RoundInfo, evalLoss func() float64) (k int, lr float64)
	Name() string
}

// BitsController is a Controller that additionally drives the push
// compressors' quantizer bit-width (the cluster engine has the identical
// hook). QuantBits <= 0 means "leave the width alone"; the server forwards
// positive widths to every push compressor implementing compress.BitSetter.
type BitsController interface {
	Controller
	QuantBits() int
}

// FixedK always returns the same K and learning rate.
type FixedK struct {
	K  int
	LR float64
}

// Next implements Controller.
func (f FixedK) Next(RoundInfo, func() float64) (int, float64) { return f.K, f.LR }

// Name implements Controller.
func (f FixedK) Name() string { return fmt.Sprintf("K=%d", f.K) }

// Config parameterizes a parameter-server run.
type Config struct {
	Mode      Mode
	BatchSize int
	// PushDelay is the latency part of the gradient push + model pull round
	// trip added to every worker-server exchange.
	PushDelay rng.Distribution
	// ComputeY is the per-gradient compute-time distribution.
	ComputeY rng.Distribution
	// Bandwidth is the worker<->server link rate in bytes per simulated
	// second; 0 = infinite (the legacy size-free push). With a finite
	// bandwidth every exchange additionally costs payload/Bandwidth, where
	// the payload is the (possibly compressed) gradient — the same
	// size-aware cost model internal/cluster charges for broadcasts.
	Bandwidth float64
	// Compress optionally compresses pushed gradients with the
	// internal/compress subsystem (None leaves the protocol byte-for-byte
	// unchanged). Each worker owns a compressor instance, so error
	// feedback accumulates per worker exactly as in the PASGD engine.
	Compress compress.Spec
	// PullCompress prices and compresses the model PULL: the server sends
	// each worker the delta of the current model against that worker's last
	// pulled reconstruction, compressed with this spec, and the downlink
	// payload is charged against the worker's link. KindIdentity gives a
	// priced but lossless pull; sparsifying kinds make the pulled model a
	// reconstruction (delta coding against the worker's own last pull keeps
	// the error from accumulating: whatever one pull drops is part of the
	// next pull's delta). The zero value keeps the legacy free/dense pull,
	// byte-for-byte.
	PullCompress compress.Spec
	// Links optionally gives each worker its own uplink/downlink
	// (len(Links) must equal the worker count): every exchange of worker i
	// is charged Links[i].Latency plus payload/Links[i].Bandwidth (falling
	// back to the shared Bandwidth when the link's is 0). nil keeps the
	// homogeneous legacy pricing.
	Links []delaymodel.Link
	// ServerOpt optionally replaces the server's plain x -= lr*mean(grads)
	// update with an internal/opt rule (momentum, Adam, ...) stepped on the
	// mean gradient — the parameter-server face of FedOpt-style server
	// adaptivity. Server state is O(dim); workers are untouched. The zero
	// value keeps the legacy arithmetic bit for bit.
	ServerOpt opt.Config
	// Stop conditions (at least one required).
	MaxUpdates int     // server updates
	MaxTime    float64 // simulated seconds
	// EvalEvery records a trace point every EvalEvery server updates.
	EvalEvery  int
	EvalSubset int
	// Faults optionally injects a seeded crash/churn/slow-down schedule
	// (internal/faults), keyed by the SERVER VERSION. Down workers are
	// parked (not dispatched) and arrivals from workers that went down
	// mid-compute are discarded; a recovered worker is redispatched at the
	// next round, and its dispatch-time model pull — delta-compressed
	// against its last pulled reconstruction when PullCompress is set — IS
	// the rejoin reconciliation, no extra machinery needed. Slow-down
	// episodes and drop-retries multiply the affected worker's transfer
	// terms. When every worker is down the event queue drains and Run
	// returns cleanly. nil keeps the protocol byte-for-byte identical to
	// the fault-free server.
	Faults *faults.Schedule
	Seed   uint64
}

func (c Config) validate() error {
	if c.BatchSize < 1 {
		return fmt.Errorf("paramserver: batch size %d", c.BatchSize)
	}
	if c.MaxUpdates <= 0 && c.MaxTime <= 0 {
		return fmt.Errorf("paramserver: no stop condition")
	}
	if c.ComputeY == nil || c.PushDelay == nil {
		return fmt.Errorf("paramserver: delay distributions required")
	}
	if c.Compress.Enabled() {
		if err := c.Compress.Validate(); err != nil {
			return err
		}
	}
	if c.PullCompress.Enabled() {
		if err := c.PullCompress.Validate(); err != nil {
			return err
		}
	}
	if err := c.ServerOpt.Validate(); err != nil {
		return err
	}
	if c.ServerOpt.SyncedMoments {
		return fmt.Errorf("paramserver: server optimizer state is server-owned; synced moments do not apply")
	}
	// Faults.Validate needs the worker count, so New performs it.
	return nil
}

// event is a worker finishing a gradient computation.
type event struct {
	at     float64 // completion time
	worker int
	seq    uint64 // tie-break for determinism
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

// psWorker is one worker in the event simulation.
type psWorker struct {
	model   *nn.Network // holds the pulled parameters it computes on
	sampler *data.Sampler
	grad    []float64
	version int // model version the in-flight gradient is computed at
	r       *rng.Rand
}

// Server simulates a parameter server training run.
type Server struct {
	cfg     Config
	m       int
	workers []*psWorker
	params  []float64
	version int
	clock   float64

	queue eventQueue
	seq   uint64

	evalModel *nn.Network
	evalBatch data.Batch

	delayRand *rng.Rand

	// Communication state: all worker<->server exchange routes through com
	// (a star-topology internal/comm communicator). comps[i] is worker i's
	// gradient compressor (nil slice when disabled); pushBytes is the
	// per-exchange uplink payload (compressed sizes are data-independent,
	// so the scheduler can price an exchange before the gradient exists).
	com       comm.Communicator
	comps     []compress.Compressor
	decBuf    []float64
	pushBytes int
	linkTimes []float64 // per-worker transfer time of the latest dispatch

	// Pull state (PullCompress enabled): pullComps[i] compresses the model
	// delta the server sends worker i, lastPulled[i] is the reconstruction
	// both sides agreed on at i's previous pull, and lastPullBytes is the
	// most recent pull's downlink payload.
	pullComps     []compress.Compressor
	lastPulled    [][]float64
	pullDelta     []float64
	pullBuf       []float64
	lastPullBytes int

	// Fault state, allocated only when cfg.Faults.Enabled() (fltDown == nil
	// is the fault-free sentinel): fltDown is the version-keyed down mask
	// and inflight tracks which workers have a queued completion event, so
	// recovered workers can be told apart from busy ones at redispatch time.
	fltDown  []bool
	inflight []bool

	// Server-side optimizer state (Config.ServerOpt; nil = legacy update).
	srvOpt       opt.Optimizer
	srvGrad      []float64
	lastGradNorm float64
}

// New builds a server over m shards of the training set.
func New(proto *nn.Network, shards []*data.Dataset, trainEval *data.Dataset, cfg Config) (*Server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("paramserver: no shards")
	}
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = 20
	}
	root := rng.New(cfg.Seed)
	s := &Server{
		cfg:       cfg,
		m:         len(shards),
		params:    append([]float64(nil), proto.Params()...),
		evalModel: proto.Clone(),
		delayRand: root.Split(),
	}
	for i := range shards {
		s.workers = append(s.workers, &psWorker{
			model:   proto.Clone(),
			sampler: data.NewSampler(shards[i], cfg.BatchSize, root.Split()),
			grad:    make([]float64, proto.ParamLen()),
			r:       root.Split(),
		})
	}
	evalDS := trainEval
	if cfg.EvalSubset > 0 && cfg.EvalSubset < trainEval.N() {
		idx := root.Split().Perm(trainEval.N())[:cfg.EvalSubset]
		evalDS = trainEval.Subset(idx)
	}
	s.evalBatch = data.FullBatch(evalDS)
	if cfg.Links != nil {
		lm := &delaymodel.Model{M: s.m, Links: cfg.Links}
		if err := lm.CheckLinks(); err != nil {
			return nil, fmt.Errorf("paramserver: %w", err)
		}
	}
	s.com = comm.New(comm.Star, s.m)
	s.linkTimes = make([]float64, s.m)
	dim := proto.ParamLen()
	s.pushBytes = 8 * dim
	if cfg.Compress.Enabled() {
		s.pushBytes = cfg.Compress.WireBytes(dim)
		s.comps = make([]compress.Compressor, s.m)
		for i := range s.comps {
			c, err := cfg.Compress.New(root.Split())
			if err != nil {
				return nil, err
			}
			s.comps[i] = c
		}
		s.decBuf = make([]float64, dim)
	}
	// Pull-compressor construction comes last so the zero-value config (and
	// the push-only compressed config) consume exactly the legacy RNG
	// stream.
	if cfg.PullCompress.Enabled() {
		s.pullComps = make([]compress.Compressor, s.m)
		s.lastPulled = make([][]float64, s.m)
		for i := range s.pullComps {
			c, err := cfg.PullCompress.New(root.Split())
			if err != nil {
				return nil, err
			}
			s.pullComps[i] = c
			s.lastPulled[i] = append([]float64(nil), s.params...)
		}
		s.pullDelta = make([]float64, dim)
		s.pullBuf = make([]float64, dim)
	}
	// Fault state last; it consumes no RNG, so attaching a schedule cannot
	// shift any existing stream.
	if cfg.Faults.Enabled() {
		if err := cfg.Faults.Validate(s.m); err != nil {
			return nil, err
		}
		s.fltDown = make([]bool, s.m)
		s.inflight = make([]bool, s.m)
	}
	// Server-optimizer state consumes no RNG either.
	if !cfg.ServerOpt.IsZero() {
		s.srvOpt = opt.New(cfg.ServerOpt, dim)
		s.srvGrad = make([]float64, dim)
	}
	return s, nil
}

// PushBytes returns the per-exchange gradient payload in bytes.
func (s *Server) PushBytes() int { return s.pushBytes }

// PullBytes returns the most recent model pull's downlink payload in bytes
// (0 until the first priced pull; always 0 with PullCompress disabled, whose
// legacy pull is free).
func (s *Server) PullBytes() int { return s.lastPullBytes }

// Loss evaluates the server model's training loss.
func (s *Server) Loss() float64 {
	s.evalModel.SetParams(s.params)
	return s.evalModel.Loss(s.evalBatch)
}

// Params returns a copy of the server's parameters.
func (s *Server) Params() []float64 { return append([]float64(nil), s.params...) }

// Version returns the number of server updates applied.
func (s *Server) Version() int { return s.version }

// Clock returns the simulated time.
func (s *Server) Clock() float64 { return s.clock }

// dispatch starts worker i computing a gradient at the current model: the
// worker pulls the model (free and exact on the legacy path; priced and
// delta-compressed against its last pulled reconstruction when PullCompress
// is set) and its gradient's completion event is scheduled with the
// size-aware cost of the whole exchange on the worker's own link.
func (s *Server) dispatch(i int) {
	w := s.workers[i]
	pullBytes := 0
	if s.pullComps != nil {
		// The server ships x - lastPulled[i]; both sides advance their
		// shared reconstruction, so anything this pull's compressor drops
		// is automatically part of the next pull's delta.
		tensor.Sub(s.pullDelta, s.params, s.lastPulled[i])
		msg, err := s.pullComps[i].Compress(s.pullDelta)
		if err != nil {
			panic(fmt.Sprintf("paramserver: worker %d pull compress: %v", i, err))
		}
		if err := compress.Decode(msg, s.pullBuf); err != nil {
			panic(fmt.Sprintf("paramserver: worker %d pull decode: %v", i, err))
		}
		lp := s.lastPulled[i]
		if msg.Enc == compress.EncDense && msg.Wire == compress.WireFloat64 {
			// A full-precision dense delta is lossless, so both sides can
			// snap to the server model exactly instead of trusting
			// lp + (x - lp) to round-trip in floating point — this is what
			// makes the identity pull's "priced but exact" guarantee
			// literal. A float32 wire is lossy, so it accumulates the
			// narrowed delta like the sparsifying kinds (the next pull's
			// delta carries whatever this one's rounding dropped).
			copy(lp, s.params)
		} else {
			tensor.Axpy(1, s.pullBuf, lp)
		}
		w.model.SetParams(lp)
		pullBytes = s.com.Pull(i, msg.Bytes()).DownBytes
		s.lastPullBytes = pullBytes
	} else {
		w.model.SetParams(s.params)
	}
	w.version = s.version
	// The actual gradient computation happens lazily at completion time;
	// only the duration is decided now. Compressed payload sizes are
	// data-independent, so the size-aware transfer term is deterministic.
	// transfer mirrors the deterministic link terms added to dur below; dur
	// itself accumulates in the exact legacy order so event times stay bit
	// for bit.
	dur := s.cfg.ComputeY.Sample(w.r) + s.cfg.PushDelay.Sample(s.delayRand)
	transfer := 0.0
	bw := s.cfg.Bandwidth
	if s.cfg.Links != nil {
		l := s.cfg.Links[i]
		dur += l.Latency
		transfer += l.Latency
		if l.Bandwidth > 0 {
			bw = l.Bandwidth
		}
	}
	if wire := s.pushBytes + pullBytes; bw > 0 {
		wt := float64(wire) / bw
		dur += wt
		transfer += wt
	}
	if s.fltDown != nil {
		// Slow-down episodes and drop-retries multiply the transfer terms
		// only (compute and push-delay draws already happened, keeping the
		// streams aligned with the fault-free run).
		f := s.cfg.Faults.LinkScale(i, s.version) *
			float64(1+s.cfg.Faults.Retries(s.cfg.Seed, s.version, i))
		if f != 1 {
			dur += transfer * (f - 1)
			transfer *= f
		}
		s.inflight[i] = true
	}
	s.linkTimes[i] = transfer
	s.seq++
	heap.Push(&s.queue, event{at: s.clock + dur, worker: i, seq: s.seq})
}

// setCompressionBits forwards a controller-chosen quantizer width to every
// push compressor that can take one (compress.BitSetter); b <= 0 leaves the
// widths alone. Quantized payloads are width-dependent ((bits+1)-bit packed
// levels), so the precomputed per-exchange pricing is refreshed to match.
func (s *Server) setCompressionBits(b int) {
	if b <= 0 || s.comps == nil {
		return
	}
	applied := 0
	for _, c := range s.comps {
		if bs, ok := c.(compress.BitSetter); ok {
			bs.SetBits(b)
			applied = bs.Bits() // post-clamp width
		}
	}
	if applied > 0 {
		spec := s.cfg.Compress
		spec.Bits = applied
		s.pushBytes = spec.WireBytes(len(s.params))
	}
}

// computeGradient materializes worker i's gradient on its next mini-batch,
// routing it through the worker's compressor (wire round-trip, with
// per-worker error feedback) when compression is configured.
func (s *Server) computeGradient(i int) []float64 {
	w := s.workers[i]
	b := w.sampler.Next()
	w.model.LossGrad(b, w.grad)
	if s.comps != nil {
		msg, err := s.comps[i].Compress(w.grad)
		if err != nil {
			panic(fmt.Sprintf("paramserver: worker %d compress: %v", i, err))
		}
		if _, err := s.com.Push(i, msg, s.decBuf); err != nil {
			panic(fmt.Sprintf("paramserver: worker %d push: %v", i, err))
		}
		copy(w.grad, s.decBuf)
	}
	return w.grad
}

// applyUpdate performs x -= lr * mean(grads) — or, with Config.ServerOpt
// set, steps the server rule on the mean gradient. Either way it publishes
// the mean gradient's norm for norm-tracking controllers.
func (s *Server) applyUpdate(grads [][]float64, lr float64) {
	if len(grads) == 0 {
		return
	}
	avg := make([]float64, len(s.params))
	for _, g := range grads {
		tensor.Axpy(1, g, avg)
	}
	inv := 1 / float64(len(grads))
	s.lastGradNorm = tensor.Norm2(avg) * inv
	if s.srvOpt != nil {
		// Gated: the plain rule's params -= lr*(avg*inv) rounds differently
		// from the legacy fused Axpy(-lr/len, avg, ...), so the zero-value
		// config never takes this path.
		for j, v := range avg {
			s.srvGrad[j] = inv * v
		}
		s.srvOpt.SetLR(lr)
		s.srvOpt.Step(s.params, s.srvGrad)
	} else {
		tensor.Axpy(-lr/float64(len(grads)), avg, s.params)
	}
	s.version++
}

// Run executes the configured protocol under the controller and returns the
// loss-vs-time trace plus staleness statistics (K-async only; K-sync
// staleness is identically zero).
func (s *Server) Run(ctrl Controller, traceName string) (*metrics.Trace, rng.Summary) {
	trace := metrics.NewTrace(traceName)
	evalLoss := func() float64 { return s.Loss() }

	record := func(k int, lr float64) {
		trace.Add(metrics.Point{
			Time: s.clock, Iter: s.version, Loss: s.Loss(),
			Acc: math.NaN(), Tau: k, LR: lr,
		})
	}
	record(0, 0)

	var staleSamples []float64
	nextEval := s.cfg.EvalEvery

	for i := range s.workers {
		if s.fltDown != nil && s.cfg.Faults.Down(i, 0) {
			continue // down at start: parked until recovery
		}
		s.dispatch(i)
	}

	for {
		if s.cfg.MaxUpdates > 0 && s.version >= s.cfg.MaxUpdates {
			break
		}
		if s.cfg.MaxTime > 0 && s.clock >= s.cfg.MaxTime {
			break
		}
		if s.fltDown != nil {
			// Refresh the version-keyed membership view and redispatch
			// recovered idle workers: their dispatch-time model pull is the
			// rejoin reconciliation (delta-compressed under PullCompress).
			for i := range s.workers {
				s.fltDown[i] = s.cfg.Faults.Down(i, s.version)
				if !s.fltDown[i] && !s.inflight[i] {
					s.dispatch(i)
				}
			}
			if len(s.queue) == 0 {
				break // every worker is down: terminate cleanly
			}
		}
		k, lr := ctrl.Next(RoundInfo{
			Time: s.clock, Version: s.version,
			LinkTimes: s.linkTimes, GradNorm: s.lastGradNorm,
		}, evalLoss)
		if bc, ok := ctrl.(BitsController); ok {
			s.setCompressionBits(bc.QuantBits())
		}
		if k < 1 {
			k = 1
		}
		if k > s.m {
			k = s.m
		}

		stalled := false
		switch s.cfg.Mode {
		case KSync:
			// All workers are computing at the current version. Take the
			// fastest K arrivals, cancel the rest, update, redispatch all.
			// Under faults, arrivals from workers that went down mid-compute
			// are discarded, and K is effectively clamped to the surviving
			// queue.
			grads := make([][]float64, 0, k)
			var last float64
			for len(grads) < k && len(s.queue) > 0 {
				ev := heap.Pop(&s.queue).(event)
				if s.fltDown != nil {
					s.inflight[ev.worker] = false
					if s.fltDown[ev.worker] {
						continue // crashed mid-compute: gradient lost
					}
				}
				last = ev.at
				g := append([]float64(nil), s.computeGradient(ev.worker)...)
				grads = append(grads, g)
			}
			if len(grads) == 0 {
				stalled = true // queue drained with nothing applicable
				break
			}
			s.clock = last
			s.applyUpdate(grads, lr)
			// Cancel stragglers: clear the queue and restart everyone (every
			// survivor, under faults) at the new model.
			s.queue = s.queue[:0]
			if s.inflight != nil {
				for i := range s.inflight {
					s.inflight[i] = false
				}
			}
			for i := range s.workers {
				if s.fltDown != nil && s.fltDown[i] {
					continue
				}
				s.dispatch(i)
			}

		case KAsync:
			// Collect the next K arrivals (whatever version they computed
			// on), update once, and redispatch only those workers. A down
			// worker's arrival is discarded (the clock still advances — the
			// server waited for it) and the worker stays parked.
			grads := make([][]float64, 0, k)
			arrived := make([]int, 0, k)
			for len(grads) < k && len(s.queue) > 0 {
				ev := heap.Pop(&s.queue).(event)
				s.clock = ev.at
				if s.fltDown != nil {
					s.inflight[ev.worker] = false
					if s.fltDown[ev.worker] {
						continue
					}
				}
				w := s.workers[ev.worker]
				g := append([]float64(nil), s.computeGradient(ev.worker)...)
				grads = append(grads, g)
				staleSamples = append(staleSamples, float64(s.version-w.version))
				arrived = append(arrived, ev.worker)
			}
			if len(grads) == 0 {
				stalled = true
				break
			}
			s.applyUpdate(grads, lr)
			for _, i := range arrived {
				s.dispatch(i)
			}
		}
		if stalled {
			break // no survivor can contribute; Run returns cleanly
		}

		if s.version >= nextEval {
			record(k, lr)
			for nextEval <= s.version {
				nextEval += s.cfg.EvalEvery
			}
		}
	}
	record(0, 0)

	if len(staleSamples) == 0 {
		staleSamples = []float64{0}
	}
	return trace, rng.Summarize(staleSamples)
}

// ExpectedKSyncUpdateTime returns the analytic expected update time of
// K-sync SGD when compute times are Exponential(mean y): the K-th order
// statistic of m exponentials, y*(H_m - H_{m-K}), plus the mean push delay.
func ExpectedKSyncUpdateTime(y float64, m, k int, pushMean float64) float64 {
	if k < 1 || k > m {
		panic("paramserver: need 1 <= K <= m")
	}
	return y*(rng.HarmonicNumber(m)-rng.HarmonicNumber(m-k)) + pushMean
}

// DelayModelFromProfile adapts a delaymodel.Profile into this package's
// compute/push distributions (the push delay is the profile's broadcast
// delay scaled down by the number of workers, approximating point-to-point
// cost).
func DelayModelFromProfile(p delaymodel.Profile, m int) (computeY, push rng.Distribution) {
	return p.ComputeY, rng.Scaled{Base: p.CommD0, Factor: 1 / float64(m)}
}

// SizedDelayFromProfile is DelayModelFromProfile plus the profile's per-link
// bandwidth, for wiring a bandwidth-constrained profile into Config.
func SizedDelayFromProfile(p delaymodel.Profile, m int) (computeY, push rng.Distribution, bandwidth float64) {
	computeY, push = DelayModelFromProfile(p, m)
	return computeY, push, p.Bandwidth
}
