package paramserver

import (
	"testing"

	"repro/internal/delaymodel"
)

// slowLinks gives worker m-1 a 10x slower uplink than the shared bandwidth.
func slowLinks(m int, bandwidth float64) []delaymodel.Link {
	links := make([]delaymodel.Link, m)
	links[m-1].Bandwidth = bandwidth / 10
	return links
}

func adaSyncHashes(t *testing.T, m int, cfg Config, ada *AdaSync, name string) (params, trace uint64, clock float64) {
	t.Helper()
	proto, shards, train := psSetup(t, m)
	s, err := New(proto, shards, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := s.Run(ada, name)
	params = 14695981039346656037
	for _, v := range s.Params() {
		fnvBits(&params, v)
	}
	trace = 14695981039346656037
	for _, p := range tr.Points {
		fnvBits(&trace, p.Time)
		fnvBits(&trace, p.Loss)
		fnvBits(&trace, float64(p.Tau))
	}
	return params, trace, s.Clock()
}

// Golden hashes captured from the pre-link-aware tree (before Controller.Next
// took a RoundInfo): with LinkAware off, AdaSync runs — homogeneous and
// heterogeneous-links alike — must stay bit-identical.
func TestAdaSyncStaticGoldenBitIdentical(t *testing.T) {
	cases := []struct {
		name      string
		bandwidth float64
		links     []delaymodel.Link
		params    uint64
		trace     uint64
		clock     float64
	}{
		{"homog", 0, nil, 0x21c077b928eeaade, 0x2fa671251dfb22a2, 396.5822977360433},
		{"links", 64, slowLinks(4, 64), 0x5bec8bec028811e2, 0xcb3f2f071f0885e0, 10955.853968729534},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := psConfig(KAsync)
			cfg.Bandwidth = tc.bandwidth
			cfg.Links = tc.links
			ada := NewAdaSync(AdaSyncConfig{K0: 1, M: 4, Interval: 10, LR: 0.1})
			ph, th, clock := adaSyncHashes(t, 4, cfg, ada, tc.name)
			if ph != tc.params {
				t.Errorf("params hash %#016x, golden %#016x", ph, tc.params)
			}
			if th != tc.trace {
				t.Errorf("trace hash %#016x, golden %#016x", th, tc.trace)
			}
			if clock != tc.clock {
				t.Errorf("clock %v, golden %v", clock, tc.clock)
			}
		})
	}
}

func TestFastLinkCount(t *testing.T) {
	for _, tc := range []struct {
		times  []float64
		m      int
		cutoff float64
		want   int
	}{
		{nil, 8, 3, 8},                        // no observations yet
		{[]float64{0, 0, 0, 0}, 4, 3, 4},      // free links
		{[]float64{1, 1, 1, 10}, 4, 3, 3},     // 10x straggler excluded
		{[]float64{1, 2.9, 3.1, 10}, 4, 3, 2}, // cutoff is relative to fastest
		{[]float64{0, 5, 5, 5}, 4, 3, 1},      // one free link dwarfs the rest
		{[]float64{2, 2, 2, 2}, 4, 3, 4},      // homogeneous finite links
	} {
		if got := FastLinkCount(tc.times, tc.m, tc.cutoff); got != tc.want {
			t.Errorf("FastLinkCount(%v, %d, %v) = %d, want %d", tc.times, tc.m, tc.cutoff, got, tc.want)
		}
	}
}

// Scripted check of the cap: on a 10x-straggler link table the link-aware
// controller refuses to grow K past the fast-link count, while the static
// rule saturates at m.
func TestAdaSyncLinkAwareCapsK(t *testing.T) {
	hetero := RoundInfo{LinkTimes: []float64{1, 1, 1, 10}}
	homog := RoundInfo{LinkTimes: []float64{1, 1, 1, 1}}

	aware := NewAdaSync(AdaSyncConfig{K0: 1, M: 4, Interval: 10, LR: 0.1, LinkAware: true})
	aware.Next(hetero, func() float64 { return 2.0 })
	var k int
	for i := 1; i <= 6; i++ {
		hetero.Time = float64(i*10 + 1)
		k, _ = aware.Next(hetero, func() float64 { return 0.5 })
	}
	if k != 3 {
		t.Fatalf("link-aware K = %d, want cap at 3 fast links", k)
	}

	static := NewAdaSync(AdaSyncConfig{K0: 1, M: 4, Interval: 10, LR: 0.1})
	static.Next(hetero, func() float64 { return 2.0 })
	for i := 1; i <= 6; i++ {
		hetero.Time = float64(i*10 + 1)
		k, _ = static.Next(hetero, func() float64 { return 0.5 })
	}
	if k != 4 {
		t.Fatalf("static K = %d, want m = 4", k)
	}

	// Homogeneous links never trigger the cap.
	awareHomog := NewAdaSync(AdaSyncConfig{K0: 1, M: 4, Interval: 10, LR: 0.1, LinkAware: true})
	awareHomog.Next(homog, func() float64 { return 2.0 })
	for i := 1; i <= 6; i++ {
		homog.Time = float64(i*10 + 1)
		k, _ = awareHomog.Next(homog, func() float64 { return 0.5 })
	}
	if k != 4 {
		t.Fatalf("link-aware K on homogeneous links = %d, want 4", k)
	}
}

// End-to-end on the event simulation: with one 10x slower uplink, the
// link-aware AdaSync must settle on a smaller K than the static rule and
// finish the same update budget in less simulated time.
func TestAdaSyncLinkAwareEndToEnd(t *testing.T) {
	run := func(linkAware bool) (maxK int, clock float64) {
		proto, shards, train := psSetup(t, 4)
		cfg := psConfig(KAsync)
		cfg.Bandwidth = 64
		cfg.Links = slowLinks(4, 64)
		cfg.MaxUpdates = 300
		s, err := New(proto, shards, train, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ada := NewAdaSync(AdaSyncConfig{K0: 1, M: 4, Interval: 10, LR: 0.1, LinkAware: linkAware})
		tr, _ := s.Run(ada, "la")
		for _, p := range tr.Points {
			if p.Tau > maxK {
				maxK = p.Tau
			}
		}
		return maxK, s.Clock()
	}
	staticK, staticClock := run(false)
	awareK, awareClock := run(true)
	if awareK >= staticK {
		t.Fatalf("link-aware max K %d not below static %d", awareK, staticK)
	}
	if awareClock >= staticClock {
		t.Fatalf("link-aware run not faster: %v vs %v sim-s for the same updates", awareClock, staticClock)
	}
}

func TestArrivalPolicyClampsK(t *testing.T) {
	cases := []struct {
		name  string
		p     ArrivalPolicy
		times []float64
		m     int
		want  int
	}{
		{"zero K clamps to 1", ArrivalPolicy{K: 0}, nil, 8, 1},
		{"negative K clamps to 1", ArrivalPolicy{K: -3}, nil, 8, 1},
		{"K above m clamps to m", ArrivalPolicy{K: 20}, nil, 8, 8},
		{"plain K passes through", ArrivalPolicy{K: 5}, []float64{1, 1, 100}, 8, 5},
		{"link-aware, no observations, no cap", ArrivalPolicy{K: 5, LinkAware: true}, nil, 8, 5},
		{"link-aware caps at fast links", ArrivalPolicy{K: 5, LinkAware: true},
			[]float64{1, 1, 1, 100}, 8, 3},
		{"link-aware default cutoff 3 keeps 2.9x", ArrivalPolicy{K: 4, LinkAware: true},
			[]float64{1, 2.9, 10, 10}, 8, 2},
		{"explicit cutoff widens the fast set", ArrivalPolicy{K: 4, LinkAware: true, SlowCutoff: 12},
			[]float64{1, 2.9, 10, 10}, 8, 4},
		{"cap never below 1", ArrivalPolicy{K: 4, LinkAware: true, SlowCutoff: 1.0001},
			[]float64{1, 5, 5, 5}, 8, 1},
		{"cap does not raise K", ArrivalPolicy{K: 2, LinkAware: true},
			[]float64{1, 1, 1, 1}, 8, 2},
	}
	for _, tc := range cases {
		if got := tc.p.Effective(tc.times, tc.m); got != tc.want {
			t.Errorf("%s: Effective = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestArrivalPolicyMatchesAdaSyncCap pins the refactor: the policy applied
// to raw (K, LinkTimes) must equal what AdaSync.capped historically
// computed — K itself without observations, FastLinkCount-capped with.
func TestArrivalPolicyMatchesAdaSyncCap(t *testing.T) {
	times := []float64{1, 1.5, 2, 50}
	for _, k := range []int{1, 2, 3, 4} {
		p := ArrivalPolicy{K: k, LinkAware: true, SlowCutoff: 3}
		want := k
		if fast := FastLinkCount(times, 4, 3); want > fast {
			want = fast
		}
		if got := p.Effective(times, 4); got != want {
			t.Errorf("K=%d: policy %d, legacy cap %d", k, got, want)
		}
	}
}
