package paramserver

import (
	"math"

	"repro/internal/compress"
)

// AdaSyncConfig parameterizes the adaptive-asynchrony controller.
type AdaSyncConfig struct {
	K0       int     // initial aggregation size (small = more async)
	M        int     // worker count (upper bound for K)
	Interval float64 // wall-clock adaptation interval T0
	LR       float64 // learning rate (constant; schedules compose upstream)
	// Growth is the multiplicative bump applied when the loss-ratio rule
	// stalls (the mirror image of AdaComm's gamma decay); default 2.
	Growth float64
	// LinkAware caps K at the number of links within SlowCutoff of the
	// fastest observed link (RoundInfo.LinkTimes) — the Kas Hanna et al.
	// 2022 direction of waiting only for the K fastest workers, so one
	// straggling link never gates every update. Off (the zero value) the
	// controller is exactly the loss-ratio rule. The cap is the shared
	// ArrivalPolicy rule, the same one the event-driven cluster engine
	// applies to its K-of-m aggregation.
	LinkAware bool
	// SlowCutoff is the multiple of the fastest link's transfer time beyond
	// which a link is considered too slow to wait for (default 3).
	SlowCutoff float64
	// NormBits drives the push quantizer's bit-width from the observed
	// gradient-norm decay (compress.NormDecayBits, the same helper
	// AdaCommCompress uses): one extra bit per halving of the mean-gradient
	// norm relative to the first observed update, clamped to [1, 8]. Off
	// (the zero value) the controller never touches the width — the legacy
	// behavior, bit for bit.
	NormBits bool
	// Bits0 is the reference width the norm rule starts from (default 4 —
	// room to grow toward 8 as the gradient shrinks). Ignored without
	// NormBits.
	Bits0 int
}

// AdaSync adapts the server's K over wall-clock intervals: the AdaComm
// rule inverted. AdaComm shrinks tau as sqrt(F_l/F_0); staleness noise
// scales like 1/K where PASGD's local-drift noise scales like tau, so
// AdaSync GROWS K as sqrt(F_0/F_l), capped at m (fully synchronous). Early
// training tolerates staleness and buys update throughput; late training
// needs low-variance updates to reach a low floor — the same error-runtime
// win-win, on the asynchrony axis. With Config.LinkAware the grown K is
// additionally capped at the count of fast links, so on a heterogeneous
// cluster "fully synchronous" converges to "synchronous over the links worth
// waiting for".
type AdaSync struct {
	cfg AdaSyncConfig

	initialized  bool
	f0           float64
	nextBoundary float64
	curK         int
	lastK        int // K actually returned (after the link cap)

	norm0   float64 // first observed mean-gradient norm (NormBits reference)
	curBits int     // current norm-rule width (0 until a norm is observed)
}

// NewAdaSync builds the controller.
func NewAdaSync(cfg AdaSyncConfig) *AdaSync {
	if cfg.K0 < 1 || cfg.M < cfg.K0 {
		panic("paramserver: AdaSync needs 1 <= K0 <= M")
	}
	if cfg.Interval <= 0 {
		panic("paramserver: AdaSync needs a positive interval")
	}
	if cfg.Growth <= 1 {
		cfg.Growth = 2
	}
	if cfg.SlowCutoff <= 1 {
		cfg.SlowCutoff = 3
	}
	if cfg.Bits0 == 0 {
		cfg.Bits0 = 4
	}
	return &AdaSync{cfg: cfg}
}

// Name implements Controller.
func (a *AdaSync) Name() string { return "AdaSync" }

// K returns the aggregation size most recently handed to the server
// (loss-rule K after the link cap, once running).
func (a *AdaSync) K() int {
	if a.lastK > 0 {
		return a.lastK
	}
	return a.curK
}

// ArrivalPolicy is the K-of-m arrival rule, factored out of this
// controller so the event-driven cluster engine and the K-async server
// share one definition of "how many arrivals is a sync worth waiting for":
// aggregate the first K arrivals, and — when LinkAware — never wait for
// more workers than have links within SlowCutoff of the fastest observed
// one (Kas Hanna et al. 2022). The zero SlowCutoff defaults to 3, matching
// AdaSyncConfig.
type ArrivalPolicy struct {
	K          int
	LinkAware  bool
	SlowCutoff float64
}

// Effective returns the arrival count to wait for, given the most recent
// per-worker transfer-time observations (nil before the first round): K
// clamped into [1, m], then capped at FastLinkCount when LinkAware.
func (p ArrivalPolicy) Effective(times []float64, m int) int {
	k := p.K
	if k < 1 {
		k = 1
	}
	if k > m {
		k = m
	}
	if p.LinkAware {
		cutoff := p.SlowCutoff
		if cutoff <= 1 {
			cutoff = 3
		}
		if fast := FastLinkCount(times, m, cutoff); k > fast {
			k = fast
		}
	}
	return k
}

// FastLinkCount returns how many of the given per-worker transfer times are
// within cutoff of the fastest — the links a link-aware server is willing to
// wait for. A nil/empty slice (no observations yet) counts every worker.
func FastLinkCount(times []float64, m int, cutoff float64) int {
	if len(times) == 0 {
		return m
	}
	fastest := math.Inf(1)
	for _, t := range times {
		if t < fastest {
			fastest = t
		}
	}
	n := 0
	for _, t := range times {
		if t <= fastest*cutoff {
			n++
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// QuantBits implements BitsController: the norm-decay width when NormBits
// is on and a gradient norm has been observed, else 0 (leave the width
// alone).
func (a *AdaSync) QuantBits() int {
	if !a.cfg.NormBits {
		return 0
	}
	return a.curBits
}

// trackNorm updates the norm-decay width from the latest observed
// mean-gradient norm.
func (a *AdaSync) trackNorm(norm float64) {
	if !a.cfg.NormBits || norm <= 0 {
		return
	}
	if a.norm0 == 0 {
		a.norm0 = norm
	}
	a.curBits = compress.NormDecayBits(a.cfg.Bits0, a.norm0, norm)
}

// Next implements Controller.
func (a *AdaSync) Next(info RoundInfo, evalLoss func() float64) (int, float64) {
	a.trackNorm(info.GradNorm)
	if !a.initialized {
		a.f0 = evalLoss()
		if a.f0 <= 0 {
			a.f0 = math.SmallestNonzeroFloat64
		}
		a.curK = a.cfg.K0
		a.nextBoundary = a.cfg.Interval
		a.initialized = true
		a.lastK = a.capped(a.curK, info)
		return a.lastK, a.cfg.LR
	}
	if info.Time >= a.nextBoundary {
		f := evalLoss()
		if f <= 0 {
			f = math.SmallestNonzeroFloat64
		}
		proposed := int(math.Ceil(math.Sqrt(a.f0/f) * float64(a.cfg.K0)))
		if proposed > a.curK {
			a.curK = proposed
		} else {
			// Stalled: force growth (mirror of AdaComm's eq-18 decay).
			a.curK = int(math.Ceil(a.cfg.Growth * float64(a.curK)))
		}
		if a.curK > a.cfg.M {
			a.curK = a.cfg.M
		}
		for a.nextBoundary <= info.Time {
			a.nextBoundary += a.cfg.Interval
		}
	}
	a.lastK = a.capped(a.curK, info)
	return a.lastK, a.cfg.LR
}

// capped applies the link-aware ceiling to the loss-rule K via the shared
// ArrivalPolicy (NewAdaSync defaulted SlowCutoff already; the loss rule
// keeps curK in [K0, M], so the policy's clamp is a no-op here and the
// result is bit-identical to the pre-policy cap).
func (a *AdaSync) capped(k int, info RoundInfo) int {
	p := ArrivalPolicy{K: k, LinkAware: a.cfg.LinkAware, SlowCutoff: a.cfg.SlowCutoff}
	return p.Effective(info.LinkTimes, a.cfg.M)
}
