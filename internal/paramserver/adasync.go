package paramserver

import (
	"math"
)

// AdaSyncConfig parameterizes the adaptive-asynchrony controller.
type AdaSyncConfig struct {
	K0       int     // initial aggregation size (small = more async)
	M        int     // worker count (upper bound for K)
	Interval float64 // wall-clock adaptation interval T0
	LR       float64 // learning rate (constant; schedules compose upstream)
	// Growth is the multiplicative bump applied when the loss-ratio rule
	// stalls (the mirror image of AdaComm's gamma decay); default 2.
	Growth float64
}

// AdaSync adapts the server's K over wall-clock intervals: the AdaComm
// rule inverted. AdaComm shrinks tau as sqrt(F_l/F_0); staleness noise
// scales like 1/K where PASGD's local-drift noise scales like tau, so
// AdaSync GROWS K as sqrt(F_0/F_l), capped at m (fully synchronous). Early
// training tolerates staleness and buys update throughput; late training
// needs low-variance updates to reach a low floor — the same error-runtime
// win-win, on the asynchrony axis.
type AdaSync struct {
	cfg AdaSyncConfig

	initialized  bool
	f0           float64
	nextBoundary float64
	curK         int
}

// NewAdaSync builds the controller.
func NewAdaSync(cfg AdaSyncConfig) *AdaSync {
	if cfg.K0 < 1 || cfg.M < cfg.K0 {
		panic("paramserver: AdaSync needs 1 <= K0 <= M")
	}
	if cfg.Interval <= 0 {
		panic("paramserver: AdaSync needs a positive interval")
	}
	if cfg.Growth <= 1 {
		cfg.Growth = 2
	}
	return &AdaSync{cfg: cfg}
}

// Name implements Controller.
func (a *AdaSync) Name() string { return "AdaSync" }

// K returns the current aggregation size.
func (a *AdaSync) K() int { return a.curK }

// Next implements Controller.
func (a *AdaSync) Next(now float64, _ int, evalLoss func() float64) (int, float64) {
	if !a.initialized {
		a.f0 = evalLoss()
		if a.f0 <= 0 {
			a.f0 = math.SmallestNonzeroFloat64
		}
		a.curK = a.cfg.K0
		a.nextBoundary = a.cfg.Interval
		a.initialized = true
		return a.curK, a.cfg.LR
	}
	if now >= a.nextBoundary {
		f := evalLoss()
		if f <= 0 {
			f = math.SmallestNonzeroFloat64
		}
		proposed := int(math.Ceil(math.Sqrt(a.f0/f) * float64(a.cfg.K0)))
		if proposed > a.curK {
			a.curK = proposed
		} else {
			// Stalled: force growth (mirror of AdaComm's eq-18 decay).
			a.curK = int(math.Ceil(a.cfg.Growth * float64(a.curK)))
		}
		if a.curK > a.cfg.M {
			a.curK = a.cfg.M
		}
		for a.nextBoundary <= now {
			a.nextBoundary += a.cfg.Interval
		}
	}
	return a.curK, a.cfg.LR
}
