package paramserver

import (
	"math"
	"testing"

	"repro/internal/compress"

	"repro/internal/data"
	"repro/internal/delaymodel"
	"repro/internal/nn"
	"repro/internal/rng"
)

func psSetup(t *testing.T, m int) (*nn.Network, []*data.Dataset, *data.Dataset) {
	t.Helper()
	full := data.GaussianBlobs(data.GaussianBlobsConfig{
		Classes: 4, Dim: 10, N: 800, Separation: 4, Noise: 1.2, LabelNoise: 0.05,
	}, rng.New(400))
	proto := nn.NewLogisticRegression(10, 4)
	proto.InitParams(rng.New(401))
	shards := data.ShardIID(full, m, rng.New(402))
	return proto, shards, full
}

func psConfig(mode Mode) Config {
	return Config{
		Mode:       mode,
		BatchSize:  16,
		PushDelay:  rng.Constant{Value: 0.1},
		ComputeY:   rng.Exponential{MeanVal: 1},
		MaxUpdates: 200,
		EvalEvery:  20,
		EvalSubset: 300,
		Seed:       7,
	}
}

func TestModeString(t *testing.T) {
	if KSync.String() != "k-sync" || KAsync.String() != "k-async" {
		t.Fatal("mode names")
	}
	if Mode(9).String() != "unknown-mode" {
		t.Fatal("unknown mode name")
	}
}

func TestConfigValidation(t *testing.T) {
	proto, shards, train := psSetup(t, 4)
	bad := psConfig(KSync)
	bad.BatchSize = 0
	if _, err := New(proto, shards, train, bad); err == nil {
		t.Fatal("accepted zero batch")
	}
	bad = psConfig(KSync)
	bad.MaxUpdates, bad.MaxTime = 0, 0
	if _, err := New(proto, shards, train, bad); err == nil {
		t.Fatal("accepted missing stop condition")
	}
	bad = psConfig(KSync)
	bad.ComputeY = nil
	if _, err := New(proto, shards, train, bad); err == nil {
		t.Fatal("accepted nil distributions")
	}
	if _, err := New(proto, nil, train, psConfig(KSync)); err == nil {
		t.Fatal("accepted zero shards")
	}
}

func TestKSyncTrains(t *testing.T) {
	proto, shards, train := psSetup(t, 4)
	s, err := New(proto, shards, train, psConfig(KSync))
	if err != nil {
		t.Fatal(err)
	}
	trace, stale := s.Run(FixedK{K: 4, LR: 0.2}, "ksync")
	if trace.FinalLoss() >= trace.Points[0].Loss/2 {
		t.Fatalf("K-sync failed to learn: %v -> %v",
			trace.Points[0].Loss, trace.FinalLoss())
	}
	if stale.Max != 0 {
		t.Fatalf("K-sync staleness must be 0, got max %v", stale.Max)
	}
	if s.Version() != 200 {
		t.Fatalf("versions %d, want 200", s.Version())
	}
}

func TestKAsyncTrains(t *testing.T) {
	proto, shards, train := psSetup(t, 4)
	s, err := New(proto, shards, train, psConfig(KAsync))
	if err != nil {
		t.Fatal(err)
	}
	trace, stale := s.Run(FixedK{K: 1, LR: 0.1}, "async")
	if trace.FinalLoss() >= trace.Points[0].Loss/2 {
		t.Fatalf("K-async failed to learn: %v -> %v",
			trace.Points[0].Loss, trace.FinalLoss())
	}
	// Fully async with m=4: staleness must actually occur.
	if stale.Max == 0 {
		t.Fatal("K-async(K=1) produced no staleness")
	}
}

func TestDeterminism(t *testing.T) {
	proto, shards, train := psSetup(t, 4)
	run := func() []float64 {
		s, err := New(proto, shards, train, psConfig(KAsync))
		if err != nil {
			t.Fatal(err)
		}
		s.Run(FixedK{K: 2, LR: 0.1}, "r")
		return s.Params()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
}

func TestSmallerKFasterWallClock(t *testing.T) {
	// K-sync with K=1 waits only for the fastest worker: with exponential
	// compute times it completes the same number of updates in much less
	// simulated time than K=4 (full sync).
	proto, shards, train := psSetup(t, 4)
	runTime := func(k int) float64 {
		s, err := New(proto, shards, train, psConfig(KSync))
		if err != nil {
			t.Fatal(err)
		}
		tr, _ := s.Run(FixedK{K: k, LR: 0.1}, "k")
		return tr.Last().Time
	}
	t1, t4 := runTime(1), runTime(4)
	// Analytic ratio of update times: (y/m + d) vs (y*H_m + d).
	wantRatio := ExpectedKSyncUpdateTime(1, 4, 4, 0.1) / ExpectedKSyncUpdateTime(1, 4, 1, 0.1)
	got := t4 / t1
	if got < wantRatio*0.8 || got > wantRatio*1.25 {
		t.Fatalf("K=4/K=1 time ratio %v, want ~%v", got, wantRatio)
	}
}

func TestKSyncUpdateTimeFormula(t *testing.T) {
	// Monte-Carlo check of the K-th-order-statistic formula.
	r := rng.New(9)
	const m, k, trials = 8, 3, 50000
	sum := 0.0
	for t := 0; t < trials; t++ {
		vals := make([]float64, m)
		for i := range vals {
			vals[i] = r.ExpFloat64()
		}
		// K-th smallest.
		for i := 0; i < k; i++ {
			minIdx := i
			for j := i + 1; j < m; j++ {
				if vals[j] < vals[minIdx] {
					minIdx = j
				}
			}
			vals[i], vals[minIdx] = vals[minIdx], vals[i]
		}
		sum += vals[k-1]
	}
	mc := sum / trials
	want := ExpectedKSyncUpdateTime(1, m, k, 0)
	if math.Abs(mc-want) > 0.02 {
		t.Fatalf("K-th order statistic MC %v vs formula %v", mc, want)
	}
}

func TestKSyncFormulaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("accepted K > m")
		}
	}()
	ExpectedKSyncUpdateTime(1, 4, 5, 0)
}

func TestAsyncStalenessShrinksWithK(t *testing.T) {
	// Larger K means the server waits for more arrivals per update, so
	// version numbers advance more slowly relative to worker pulls and
	// mean staleness (in versions) drops.
	proto, shards, train := psSetup(t, 8)
	meanStale := func(k int) float64 {
		cfg := psConfig(KAsync)
		s, err := New(proto, shards, train, cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, stale := s.Run(FixedK{K: k, LR: 0.05}, "k")
		return stale.Mean
	}
	s1, s8 := meanStale(1), meanStale(8)
	if s8 >= s1 {
		t.Fatalf("staleness should shrink with K: K=1 %v vs K=8 %v", s1, s8)
	}
}

func TestAdaSyncGrowsK(t *testing.T) {
	a := NewAdaSync(AdaSyncConfig{K0: 1, M: 8, Interval: 10, LR: 0.1})
	k, lr := a.Next(RoundInfo{}, func() float64 { return 2.0 })
	if k != 1 || lr != 0.1 {
		t.Fatalf("initial K %d lr %v", k, lr)
	}
	// Loss dropped 4x: K = ceil(sqrt(4)*1) = 2.
	k, _ = a.Next(RoundInfo{Time: 11}, func() float64 { return 0.5 })
	if k != 2 {
		t.Fatalf("K after 4x loss drop = %d, want 2", k)
	}
	// Stalled loss: growth rule doubles K.
	k, _ = a.Next(RoundInfo{Time: 21}, func() float64 { return 0.5 })
	if k != 4 {
		t.Fatalf("K after stall = %d, want 4", k)
	}
	// Capped at m.
	for i := 0; i < 5; i++ {
		k, _ = a.Next(RoundInfo{Time: float64(31 + 10*i)}, func() float64 { return 0.5 })
	}
	if k != 8 {
		t.Fatalf("K not capped at m: %d", k)
	}
}

func TestAdaSyncValidation(t *testing.T) {
	for _, cfg := range []AdaSyncConfig{
		{K0: 0, M: 4, Interval: 1},
		{K0: 5, M: 4, Interval: 1},
		{K0: 1, M: 4, Interval: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("accepted %+v", cfg)
				}
			}()
			NewAdaSync(cfg)
		}()
	}
}

func TestAdaSyncEndToEnd(t *testing.T) {
	// AdaSync on K-async must (a) grow K over the run and (b) reach a
	// final loss comparable to full sync while being faster early.
	proto, shards, train := psSetup(t, 8)
	cfg := psConfig(KAsync)
	cfg.MaxUpdates = 600
	s, err := New(proto, shards, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ada := NewAdaSync(AdaSyncConfig{K0: 1, M: 8, Interval: 30, LR: 0.1})
	trace, _ := s.Run(ada, "adasync")
	if ada.K() <= 1 {
		t.Fatalf("AdaSync never grew K: %d", ada.K())
	}
	if trace.FinalLoss() >= trace.Points[0].Loss/2 {
		t.Fatalf("AdaSync failed to learn: %v -> %v",
			trace.Points[0].Loss, trace.FinalLoss())
	}
}

func TestDelayModelFromProfile(t *testing.T) {
	y, push := DelayModelFromProfile(delaymodel.VGG16Profile(), 4)
	if y.Mean() <= 0 {
		t.Fatal("compute distribution empty")
	}
	// Push delay is the broadcast delay scaled down by m.
	want := delaymodel.VGG16Profile().CommD0.Mean() / 4
	if math.Abs(push.Mean()-want) > 1e-12 {
		t.Fatalf("push mean %v, want %v", push.Mean(), want)
	}
}

// ---------------------------------------------------------------------------
// Size-aware push/pull and gradient compression.
// ---------------------------------------------------------------------------

func TestBandwidthSlowsExchanges(t *testing.T) {
	proto, shards, train := psSetup(t, 4)
	run := func(bandwidth float64, spec compress.Spec) (*Server, float64) {
		cfg := psConfig(KSync)
		cfg.MaxUpdates = 50
		cfg.Bandwidth = bandwidth
		cfg.Compress = spec
		s, err := New(proto, shards, train, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Run(FixedK{K: 4, LR: 0.2}, "t")
		return s, s.Clock()
	}
	_, free := run(0, compress.Spec{})
	srv, tight := run(50, compress.Spec{}) // dense 44-param push = 352 B = 7 s extra
	if tight <= free {
		t.Fatalf("finite bandwidth did not slow the run: %v vs %v", tight, free)
	}
	if srv.PushBytes() != 8*proto.ParamLen() {
		t.Fatalf("dense push bytes %d, want %d", srv.PushBytes(), 8*proto.ParamLen())
	}
	// Compression must claw the time back under the same bandwidth.
	comp, compT := run(50, compress.Spec{Kind: compress.KindTopK, Ratio: 0.2, ErrorFeedback: true})
	if compT >= tight {
		t.Fatalf("compressed push not faster: %v vs %v", compT, tight)
	}
	if comp.PushBytes() >= srv.PushBytes() {
		t.Fatalf("compressed push bytes %d not below dense %d", comp.PushBytes(), srv.PushBytes())
	}
}

func TestCompressedKSyncTrains(t *testing.T) {
	proto, shards, train := psSetup(t, 4)
	cfg := psConfig(KSync)
	cfg.Compress = compress.Spec{Kind: compress.KindTopK, Ratio: 0.25, ErrorFeedback: true}
	s, err := New(proto, shards, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	trace, _ := s.Run(FixedK{K: 4, LR: 0.2}, "ksync-topk")
	if trace.FinalLoss() >= trace.Points[0].Loss/2 {
		t.Fatalf("compressed K-sync failed to learn: %v -> %v",
			trace.Points[0].Loss, trace.FinalLoss())
	}
}

func TestCompressedKAsyncTrains(t *testing.T) {
	proto, shards, train := psSetup(t, 4)
	cfg := psConfig(KAsync)
	cfg.Compress = compress.Spec{Kind: compress.KindQSGD, Bits: 6}
	s, err := New(proto, shards, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	trace, _ := s.Run(FixedK{K: 2, LR: 0.1}, "kasync-qsgd")
	if trace.FinalLoss() >= trace.Points[0].Loss/2 {
		t.Fatalf("compressed K-async failed to learn: %v -> %v",
			trace.Points[0].Loss, trace.FinalLoss())
	}
}

func TestCompressSpecValidatedByConfig(t *testing.T) {
	proto, shards, train := psSetup(t, 4)
	cfg := psConfig(KSync)
	cfg.Compress = compress.Spec{Kind: compress.KindQSGD, Bits: 99}
	if _, err := New(proto, shards, train, cfg); err == nil {
		t.Fatal("accepted invalid compress spec")
	}
}

// ---------------------------------------------------------------------------
// Priced, delta-compressed pulls and heterogeneous links.
// ---------------------------------------------------------------------------

func TestPricedPullSlowsExchanges(t *testing.T) {
	proto, shards, train := psSetup(t, 4)
	run := func(pull compress.Spec) (*Server, float64) {
		cfg := psConfig(KSync)
		cfg.MaxUpdates = 50
		cfg.Bandwidth = 50
		cfg.PullCompress = pull
		s, err := New(proto, shards, train, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Run(FixedK{K: 4, LR: 0.2}, "t")
		return s, s.Clock()
	}
	free, freeT := run(compress.Spec{})
	if free.PullBytes() != 0 {
		t.Fatalf("legacy pull priced at %d bytes, want 0", free.PullBytes())
	}
	priced, pricedT := run(compress.Spec{Kind: compress.KindIdentity})
	if pricedT <= freeT {
		t.Fatalf("priced dense pull did not slow the run: %v vs %v", pricedT, freeT)
	}
	if got, want := priced.PullBytes(), 8*proto.ParamLen(); got != want {
		t.Fatalf("dense pull bytes %d, want %d", got, want)
	}
	// Delta-compressing the pull must claw time back and shrink the downlink.
	sparse, sparseT := run(compress.Spec{Kind: compress.KindTopK, Ratio: 0.2})
	if sparseT >= pricedT {
		t.Fatalf("compressed pull not faster than dense pull: %v vs %v", sparseT, pricedT)
	}
	if sparse.PullBytes() >= priced.PullBytes() {
		t.Fatalf("compressed pull bytes %d not below dense %d",
			sparse.PullBytes(), priced.PullBytes())
	}
}

func TestIdentityPullKeepsModelExact(t *testing.T) {
	// A priced-but-lossless pull must not change the training trajectory:
	// with Bandwidth = 0 the charge is also free, so the run must match the
	// legacy pull bit for bit.
	proto, shards, train := psSetup(t, 4)
	run := func(pull compress.Spec) []float64 {
		cfg := psConfig(KSync)
		cfg.MaxUpdates = 60
		cfg.PullCompress = pull
		s, err := New(proto, shards, train, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Run(FixedK{K: 4, LR: 0.2}, "t")
		return s.Params()
	}
	legacy := run(compress.Spec{})
	identity := run(compress.Spec{Kind: compress.KindIdentity})
	for i := range legacy {
		if legacy[i] != identity[i] {
			t.Fatalf("identity pull drifted at param %d: %v vs %v",
				i, legacy[i], identity[i])
		}
	}
}

func TestDeltaCompressedPullTrains(t *testing.T) {
	proto, shards, train := psSetup(t, 4)
	cfg := psConfig(KAsync)
	cfg.PullCompress = compress.Spec{Kind: compress.KindTopK, Ratio: 0.25}
	s, err := New(proto, shards, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	trace, _ := s.Run(FixedK{K: 2, LR: 0.1}, "kasync-pull")
	if trace.FinalLoss() >= trace.Points[0].Loss/2 {
		t.Fatalf("delta-compressed pull failed to learn: %v -> %v",
			trace.Points[0].Loss, trace.FinalLoss())
	}
}

func TestHeterogeneousLinkSlowsKSync(t *testing.T) {
	// K-sync with K = m waits for everyone, so one worker with a 10x worse
	// link must stretch the simulated clock.
	proto, shards, train := psSetup(t, 4)
	run := func(links []delaymodel.Link) float64 {
		cfg := psConfig(KSync)
		cfg.MaxUpdates = 50
		cfg.Bandwidth = 100
		cfg.Links = links
		s, err := New(proto, shards, train, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Run(FixedK{K: 4, LR: 0.2}, "t")
		return s.Clock()
	}
	homog := run(nil)
	hetero := run([]delaymodel.Link{{}, {}, {}, {Bandwidth: 10}})
	if hetero <= homog {
		t.Fatalf("slow link did not stretch the clock: %v vs %v", hetero, homog)
	}
}

func TestLinksValidated(t *testing.T) {
	proto, shards, train := psSetup(t, 4)
	cfg := psConfig(KSync)
	cfg.Links = []delaymodel.Link{{}}
	if _, err := New(proto, shards, train, cfg); err == nil {
		t.Fatal("accepted wrong link count")
	}
	cfg = psConfig(KSync)
	cfg.PullCompress = compress.Spec{Kind: compress.KindTopK, Ratio: 9}
	if _, err := New(proto, shards, train, cfg); err == nil {
		t.Fatal("accepted invalid pull compress spec")
	}
}

func TestSizedDelayFromProfile(t *testing.T) {
	p := delaymodel.VGG16Profile().Constrained(1024)
	y, push, bw := SizedDelayFromProfile(p, 4)
	if y == nil || push == nil {
		t.Fatal("nil distributions")
	}
	if bw != 1024 {
		t.Fatalf("bandwidth %v, want 1024", bw)
	}
}
