package paramserver

import (
	"math"
	"testing"

	"repro/internal/metrics"
)

// Golden traces captured from the pre-comm-layer server. The refactor that
// routes push/pull through internal/comm (and adds priced, delta-compressed
// pulls plus per-worker links) must keep every zero-value-config path —
// including the finite-bandwidth dense push — bit-identical.

func fnvBits(h *uint64, v float64) {
	const prime64 = 1099511628211
	u := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		*h ^= uint64(byte(u >> (8 * i)))
		*h *= prime64
	}
}

func fnvParams(p []float64) uint64 {
	var sum uint64 = 14695981039346656037
	for _, v := range p {
		fnvBits(&sum, v)
	}
	return sum
}

func fnvTrace(tr *metrics.Trace) uint64 {
	var sum uint64 = 14695981039346656037
	for _, p := range tr.Points {
		fnvBits(&sum, p.Time)
		fnvBits(&sum, p.Loss)
	}
	return sum
}

func TestGoldenTracesBitIdentical(t *testing.T) {
	ksync := psConfig(KSync)

	kasync := psConfig(KAsync)

	ksyncBW := psConfig(KSync)
	ksyncBW.Bandwidth = 50
	ksyncBW.MaxUpdates = 50

	cases := []struct {
		name   string
		cfg    Config
		k      int
		lr     float64
		params uint64
		trace  uint64
		clock  float64
	}{
		{"ksync", ksync, 4, 0.2, 0xde3c142579fecb4c, 0xc8251e922fb5a2ff, 446.04160610066697},
		{"kasync", kasync, 2, 0.1, 0x06d8d1a511e1f61f, 0xcb45685b1fe12d48, 134.13718879672388},
		{"ksync-bw", ksyncBW, 4, 0.2, 0x83f9650c1d56991d, 0x706737d24a6f6281, 471.03423112474451},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			proto, shards, train := psSetup(t, 4)
			s, err := New(proto, shards, train, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			tr, _ := s.Run(FixedK{K: tc.k, LR: tc.lr}, tc.name)
			if got := fnvParams(s.Params()); got != tc.params {
				t.Errorf("params hash %#016x, golden %#016x", got, tc.params)
			}
			if got := fnvTrace(tr); got != tc.trace {
				t.Errorf("trace hash %#016x, golden %#016x", got, tc.trace)
			}
			if got := s.Clock(); got != tc.clock {
				t.Errorf("clock %v, golden %v", got, tc.clock)
			}
		})
	}
}
