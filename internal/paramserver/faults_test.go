package paramserver

import (
	"math"
	"testing"

	"repro/internal/faults"
)

func mustFaults(t *testing.T, spec string) *faults.Schedule {
	t.Helper()
	s, err := faults.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func psHashParams(p []float64) uint64 {
	const prime64 = 1099511628211
	var sum uint64 = 14695981039346656037
	for _, v := range p {
		u := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			sum ^= uint64(byte(u >> (8 * i)))
			sum *= prime64
		}
	}
	return sum
}

// TestPSFaultFreeScheduleBitIdentical: attaching a schedule whose first
// event lies beyond the run's horizon leaves the server's trajectory
// bit-identical — the fault machinery consumes no RNG.
func TestPSFaultFreeScheduleBitIdentical(t *testing.T) {
	for _, mode := range []Mode{KSync, KAsync} {
		run := func(f *faults.Schedule) uint64 {
			proto, shards, train := psSetup(t, 4)
			cfg := psConfig(mode)
			cfg.Faults = f
			s, err := New(proto, shards, train, cfg)
			if err != nil {
				t.Fatal(err)
			}
			s.Run(FixedK{K: 2, LR: 0.1}, "ps")
			return psHashParams(s.Params())
		}
		if run(nil) != run(mustFaults(t, "crash:0@r100000,drop:0")) {
			t.Fatalf("%s: beyond-horizon schedule diverged", mode)
		}
	}
}

// TestPSChurnCompletes: both server modes survive crash-recover churn plus
// slow-down and drops with a finite loss and applied updates.
func TestPSChurnCompletes(t *testing.T) {
	for _, mode := range []Mode{KSync, KAsync} {
		proto, shards, train := psSetup(t, 5)
		cfg := psConfig(mode)
		cfg.MaxUpdates = 120
		cfg.Faults = mustFaults(t, "blip:0@r10-40,blip:1@r30-60,crash:2@r80,slow:3x4@r20-70,drop:0.1")
		s, err := New(proto, shards, train, cfg)
		if err != nil {
			t.Fatal(err)
		}
		trace, _ := s.Run(FixedK{K: 3, LR: 0.1}, "ps-churn")
		if loss := trace.FinalLoss(); math.IsNaN(loss) || math.IsInf(loss, 0) {
			t.Fatalf("%s: final loss %v under churn", mode, loss)
		}
		if s.Version() == 0 {
			t.Fatalf("%s: no updates applied under churn", mode)
		}
	}
}

// TestPSAllDownTerminates: when every worker crashes, the event queue
// drains and Run returns cleanly instead of spinning.
func TestPSAllDownTerminates(t *testing.T) {
	for _, mode := range []Mode{KSync, KAsync} {
		proto, shards, train := psSetup(t, 3)
		cfg := psConfig(mode)
		cfg.MaxUpdates = 1000
		cfg.Faults = mustFaults(t, "crash:0@r5,crash:1@r5,crash:2@r5")
		s, err := New(proto, shards, train, cfg)
		if err != nil {
			t.Fatal(err)
		}
		trace, _ := s.Run(FixedK{K: 2, LR: 0.1}, "ps-all-down")
		if trace.Len() == 0 {
			t.Fatalf("%s: no trace", mode)
		}
		if s.Version() >= 1000 {
			t.Fatalf("%s: did not stop at the crash wall", mode)
		}
	}
}

func TestPSFaultsValidatedAtConstruction(t *testing.T) {
	proto, shards, train := psSetup(t, 3)
	cfg := psConfig(KSync)
	cfg.Faults = mustFaults(t, "crash:5@r1")
	if _, err := New(proto, shards, train, cfg); err == nil {
		t.Fatal("accepted out-of-range fault worker")
	}
}
