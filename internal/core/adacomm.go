// Package core implements ADACOMM, the paper's contribution: an adaptive
// communication-period controller for periodic-averaging SGD. Training is
// divided into wall-clock intervals of length T0; at each interval boundary
// the controller re-chooses the communication period tau from the current
// training loss via the update rules of Sec 4:
//
//	basic rule (eq 17):   tau_l = ceil( sqrt(F(x_l)/F(x_0)) * tau_0 )
//	saturation  (eq 18):  if the rule does not strictly decrease tau,
//	                      multiply the previous tau by gamma < 1 instead
//	LR coupling (eq 20):  tau_l = ceil( sqrt(eta_0/eta_l * F_l/F_0) * tau_0 )
//	full coupling (eq 19): exponent 3/2 on eta_0/eta_l — the variant the
//	                      paper reports as divergence-prone, kept for the
//	                      ablation benches
//
// plus the Sec 4.3.2 policy of deferring scheduled learning-rate decays
// until tau has decayed to 1, and a tau_0 grid-search helper mirroring the
// paper's "trial runs for one or two epochs".
package core

import (
	"fmt"
	"math"

	"repro/internal/bound"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/opt"
	"repro/internal/sgd"
)

// Coupling selects how the learning rate enters the tau update rule.
type Coupling int

const (
	// NoCoupling uses the basic rule (eq 17): tau depends on loss only.
	NoCoupling Coupling = iota
	// SqrtCoupling is rule (20): tau scales with sqrt(eta0/eta_l), derived
	// under the eta*L ~= 1 approximation. This is the rule the paper
	// actually runs.
	SqrtCoupling
	// FullCoupling is rule (19): tau scales with (eta0/eta_l)^{3/2}. After
	// a 10x LR decay this inflates tau ~31x, which the paper observed to
	// push tau to ~1000 and diverge; included for the ablation.
	FullCoupling
)

// String returns the rule's name.
func (c Coupling) String() string {
	switch c {
	case NoCoupling:
		return "none"
	case SqrtCoupling:
		return "sqrt"
	case FullCoupling:
		return "full"
	}
	return fmt.Sprintf("coupling(%d)", int(c))
}

// Config parameterizes the AdaComm controller.
type Config struct {
	Tau0     int          // initial communication period (from grid search)
	Interval float64      // T0, the wall-clock interval between adaptations
	Gamma    float64      // saturation decay factor (paper uses 1/2)
	Slack    int          // slack s in the saturation condition (default 0)
	Schedule sgd.Schedule // learning-rate schedule, indexed by epoch
	Coupling Coupling     // how eta enters the tau rule
	// DeferLRDecay holds back scheduled LR decays while tau > 1
	// (Sec 4.3.2: "first decay the communication period to 1, then decay
	// the learning rate as usual").
	DeferLRDecay bool
	// MinTau floors the adapted period (default 1).
	MinTau int
	// MaxTau caps the adapted period to guard rule (19)'s blow-ups
	// (0 = uncapped).
	MaxTau int
	// LinkAware makes the controller heterogeneity-aware: the proposed tau
	// is scaled by sqrt(alpha_obs) whenever the observed communication/
	// computation ratio alpha_obs = mean(D)/mean(Y) (from RoundInfo's
	// CommTime/ComputeTime, the measured cost that heterogeneous Links and
	// finite bandwidth inflate) exceeds 1 — Theorem 2's tau* grows with the
	// square root of the communication delay, so slow links hold tau higher.
	// A growing link factor may raise tau once, mirroring the LR-decay
	// raise. Off (the zero value), trajectories are bit-identical to the
	// paper's static rule.
	LinkAware bool
	// Momentum is the workers' heavy-ball coefficient, when the engine runs
	// a momentum rule. The eta-coupled tau rules (19)/(20) are derived under
	// eta*L ~= 1; with momentum the steady-state step size is the EFFECTIVE
	// learning rate eta/(1-beta) (the geometric sum of the buffer), so the
	// coupling compares effective rates. At the zero value the effective
	// rate is eta/1 == eta exactly (IEEE 754), so every existing trajectory
	// is bit-identical.
	Momentum float64
}

func (c Config) withDefaults() Config {
	if c.Gamma <= 0 || c.Gamma >= 1 {
		c.Gamma = 0.5
	}
	if c.MinTau < 1 {
		c.MinTau = 1
	}
	if c.Schedule == nil {
		c.Schedule = sgd.Const{Eta: 0.1}
	}
	return c
}

// AdaComm is the adaptive communication controller (implements
// cluster.Controller). It is stateful and must not be reused across runs.
type AdaComm struct {
	cfg Config

	initialized  bool
	f0           float64 // F(x_{t=0})
	eta0         float64
	nextBoundary float64
	curTau       int
	curLR        float64
	linkFactor   float64 // sqrt(alpha_obs) applied at the last boundary (LinkAware)
}

// NewAdaComm builds the controller.
func NewAdaComm(cfg Config) *AdaComm {
	cfg = cfg.withDefaults()
	if cfg.Tau0 < 1 {
		panic("core: AdaComm needs Tau0 >= 1")
	}
	if cfg.Interval <= 0 {
		panic("core: AdaComm needs a positive interval T0")
	}
	if math.IsNaN(cfg.Momentum) || cfg.Momentum < 0 || cfg.Momentum >= 1 {
		panic("core: AdaComm momentum must be in [0, 1)")
	}
	return &AdaComm{cfg: cfg}
}

// Name implements cluster.Controller.
func (a *AdaComm) Name() string { return "AdaComm" }

// Tau returns the communication period currently in effect.
func (a *AdaComm) Tau() int { return a.curTau }

// LinkFactor returns the link-aware tau scale applied at the most recent
// interval boundary: sqrt(observed alpha), or 1 when LinkAware is off, the
// cluster is compute-bound, or no boundary has passed yet.
func (a *AdaComm) LinkFactor() float64 {
	if !a.initialized {
		return 1
	}
	return a.linkFactor
}

// NextRound implements cluster.Controller.
func (a *AdaComm) NextRound(info cluster.RoundInfo, evalLoss func() float64) (int, float64) {
	if !a.initialized {
		a.f0 = evalLoss()
		if a.f0 <= 0 {
			// Degenerate start (already at zero loss): communicate every
			// iteration, nothing to save.
			a.f0 = math.SmallestNonzeroFloat64
		}
		a.eta0 = a.cfg.Schedule.LR(0)
		a.curTau = a.cfg.Tau0
		a.curLR = a.eta0
		a.linkFactor = 1
		a.nextBoundary = a.cfg.Interval
		a.initialized = true
		return a.curTau, a.curLR
	}

	if info.Time >= a.nextBoundary {
		a.adapt(info, evalLoss)
		for a.nextBoundary <= info.Time {
			a.nextBoundary += a.cfg.Interval
		}
	}
	return a.curTau, a.curLR
}

// adapt recomputes tau (and the learning rate) at an interval boundary.
func (a *AdaComm) adapt(info cluster.RoundInfo, evalLoss func() float64) {
	f := evalLoss()
	if f < 0 {
		f = 0
	}

	// Learning-rate scheduling with the optional deferral policy.
	scheduled := a.cfg.Schedule.LR(info.Epoch)
	lr := a.curLR
	if scheduled < a.curLR {
		// A decay milestone has passed. Apply it only if tau has already
		// decayed to 1 (or deferral is off).
		if !a.cfg.DeferLRDecay || a.curTau <= 1 {
			lr = scheduled
		}
	} else if scheduled > a.curLR {
		lr = scheduled // schedules that increase (e.g. warmup) pass through
	}

	// Communication-period update rule.
	ratio := f / a.f0
	if ratio < 0 {
		ratio = 0
	}
	etaFactor := 1.0
	switch a.cfg.Coupling {
	case SqrtCoupling:
		// Under sqrt: tau ~ sqrt(eta0/eta), with eta the EFFECTIVE rate
		// under momentum (eta/(1-beta); identical to eta at beta = 0).
		etaFactor = opt.EffectiveLR(a.eta0, a.cfg.Momentum) /
			opt.EffectiveLR(lr, a.cfg.Momentum)
	case FullCoupling:
		etaFactor = math.Pow(opt.EffectiveLR(a.eta0, a.cfg.Momentum)/
			opt.EffectiveLR(lr, a.cfg.Momentum), 3)
	}
	factor := 1.0
	if a.cfg.LinkAware {
		factor = observedLinkFactor(info)
	}
	proposed := int(math.Ceil(math.Sqrt(etaFactor*ratio) * factor * float64(a.cfg.Tau0)))
	if proposed < a.cfg.MinTau {
		proposed = a.cfg.MinTau
	}

	if proposed+a.cfg.Slack < a.curTau {
		a.curTau = proposed
	} else {
		// Saturation: force multiplicative decay (eq 18).
		decayed := int(math.Ceil(a.cfg.Gamma * float64(a.curTau)))
		if decayed >= a.curTau && a.curTau > a.cfg.MinTau {
			decayed = a.curTau - 1
		}
		if decayed < a.cfg.MinTau {
			decayed = a.cfg.MinTau
		}
		// Rules (19)/(20) can legitimately *raise* tau right after an LR
		// decay, and the link-aware scaling can raise it when the measured
		// communication cost grows. Allow a raise only on the interval the
		// underlying signal actually changed — the LR decayed under a rule
		// that couples eta into tau (under rule (17) eta never enters, so
		// an LR decay must NOT undo the monotone decay), or the link
		// factor grew — and enforce monotone decay otherwise.
		lrRaise := a.cfg.Coupling != NoCoupling && lr < a.curLR
		linkRaise := a.cfg.LinkAware && factor > a.linkFactor*(1+linkFactorTol)
		if (lrRaise || linkRaise) && proposed > a.curTau {
			a.curTau = proposed
		} else {
			a.curTau = decayed
		}
	}
	if a.cfg.MaxTau > 0 && a.curTau > a.cfg.MaxTau {
		a.curTau = a.cfg.MaxTau
	}
	a.curLR = lr
	a.linkFactor = factor
}

// linkFactorTol is the relative growth of the link factor below which a
// boundary does not count as "links got slower" (guards MC noise in the
// observed timings from re-raising tau every interval).
const linkFactorTol = 0.05

// observedLinkFactor turns the engine-observed timing into the tau scale of
// Config.LinkAware: sqrt of the measured communication/computation ratio
// alpha_obs = (CommTime/Round) / (ComputeTime/Iter), floored at 1 so a
// compute-bound cluster reproduces the paper's rule exactly.
func observedLinkFactor(info cluster.RoundInfo) float64 {
	if info.Round <= 0 || info.Iter <= 0 || info.ComputeTime <= 0 {
		return 1
	}
	alpha := (info.CommTime / float64(info.Round)) / (info.ComputeTime / float64(info.Iter))
	if !(alpha > 1) { // NaN-safe
		return 1
	}
	return math.Sqrt(alpha)
}

// OracleTau is the theory-driven controller used for ablation: it evaluates
// Theorem 2's tau* (eq 14/16) exactly at each interval boundary using
// calibrated constants, instead of the practical ratio rule. It quantifies
// how much is lost by not knowing L and sigma^2.
type OracleTau struct {
	Consts   bound.Constants // F1 is overwritten by the live loss
	Interval float64
	Schedule sgd.Schedule
	// Momentum is the workers' heavy-ball coefficient: Theorem 2's tau*
	// consumes the EFFECTIVE learning rate eta/(1-beta) (exactly eta at the
	// zero value, so momentum-free runs are bit-identical).
	Momentum float64

	initialized  bool
	nextBoundary float64
	curTau       int
}

// Name implements cluster.Controller.
func (o *OracleTau) Name() string { return "OracleTau" }

// NextRound implements cluster.Controller.
func (o *OracleTau) NextRound(info cluster.RoundInfo, evalLoss func() float64) (int, float64) {
	if o.Schedule == nil {
		o.Schedule = sgd.Const{Eta: o.Consts.Eta}
	}
	lr := o.Schedule.LR(info.Epoch)
	if !o.initialized || info.Time >= o.nextBoundary {
		c := o.Consts
		c.F1 = evalLoss()
		c.Eta = opt.EffectiveLR(lr, o.Momentum)
		if c.F1 < c.Finf {
			c.F1 = c.Finf
		}
		tau := c.OptimalTauInt(o.Interval)
		if tau > 10000 {
			tau = 10000
		}
		o.curTau = tau
		if !o.initialized {
			o.nextBoundary = 0
			o.initialized = true
		}
		for o.nextBoundary <= info.Time {
			o.nextBoundary += o.Interval
		}
	}
	return o.curTau, lr
}

// GridSearchTau0 mirrors the paper's tau_0 selection: run a short probe for
// each candidate period and keep the one with the lowest final training
// loss. run must execute a fresh short training run (e.g. one or two
// simulated epochs) with the given fixed tau and return its trace.
func GridSearchTau0(candidates []int, run func(tau int) *metrics.Trace) int {
	if len(candidates) == 0 {
		panic("core: GridSearchTau0 needs candidates")
	}
	best := candidates[0]
	bestLoss := math.Inf(1)
	for _, tau := range candidates {
		trace := run(tau)
		if l := trace.FinalLoss(); l < bestLoss {
			bestLoss = l
			best = tau
		}
	}
	return best
}
