package core

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/compress"
	"repro/internal/data"
	"repro/internal/delaymodel"
	"repro/internal/rng"
	"repro/internal/sgd"

	"repro/internal/nn"
)

func jointCfg() Config {
	return Config{Tau0: 20, Interval: 60, Schedule: sgd.Const{Eta: 0.1}}
}

func TestAdaCommCompressInitialState(t *testing.T) {
	a := NewAdaCommCompress(jointCfg(), CompressSchedule{Ratio0: 0.05})
	tau, lr := a.NextRound(fakeInfo(0, 0), lossSeq(2.0))
	if tau != 20 || lr != 0.1 {
		t.Fatalf("initial (tau, lr) = (%d, %v)", tau, lr)
	}
	if a.CompressionRatio() != 0.05 {
		t.Fatalf("initial ratio %v, want Ratio0", a.CompressionRatio())
	}
}

func TestAdaCommCompressRatioRisesWithFallingLoss(t *testing.T) {
	// F0 = 2.0; at the boundary F = 0.5 -> ratio = 0.05 * sqrt(4) = 0.1,
	// while tau drops by eq 17 to ceil(sqrt(0.25)*20) = 10.
	a := NewAdaCommCompress(jointCfg(), CompressSchedule{Ratio0: 0.05})
	a.NextRound(fakeInfo(0, 0), lossSeq(2.0))
	tau, _ := a.NextRound(fakeInfo(61, 1), lossSeq(0.5))
	if tau != 10 {
		t.Fatalf("joint tau %d, want 10", tau)
	}
	if got := a.CompressionRatio(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("ratio %v, want 0.1", got)
	}
}

func TestAdaCommCompressSaturationRelaxes(t *testing.T) {
	// Loss stalls at F0: the rule proposes Ratio0 (no increase), so each
	// boundary must relax the ratio by 1/Gamma = 2x instead.
	a := NewAdaCommCompress(Config{Tau0: 20, Interval: 60, Gamma: 0.5,
		Schedule: sgd.Const{Eta: 0.1}}, CompressSchedule{Ratio0: 0.1})
	a.NextRound(fakeInfo(0, 0), lossSeq(2.0))
	a.NextRound(fakeInfo(61, 1), lossSeq(2.0))
	if got := a.CompressionRatio(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("ratio after one stalled interval %v, want 0.2", got)
	}
	a.NextRound(fakeInfo(121, 2), lossSeq(2.0))
	if got := a.CompressionRatio(); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("ratio after two stalled intervals %v, want 0.4", got)
	}
}

func TestAdaCommCompressRatioCapped(t *testing.T) {
	a := NewAdaCommCompress(jointCfg(), CompressSchedule{Ratio0: 0.5, MaxRatio: 0.8})
	a.NextRound(fakeInfo(0, 0), lossSeq(2.0))
	// Loss fell 100x: the rule proposes 5.0, capped at MaxRatio.
	a.NextRound(fakeInfo(61, 1), lossSeq(0.02))
	if got := a.CompressionRatio(); got != 0.8 {
		t.Fatalf("ratio %v, want MaxRatio cap 0.8", got)
	}
}

func TestAdaCommCompressSingleEvalPerBoundary(t *testing.T) {
	a := NewAdaCommCompress(jointCfg(), CompressSchedule{Ratio0: 0.05})
	evals := 0
	counting := func() float64 { evals++; return 2.0 }
	a.NextRound(fakeInfo(0, 0), counting)
	if evals != 1 {
		t.Fatalf("init evals %d, want 1 (shared between tau and ratio)", evals)
	}
	a.NextRound(fakeInfo(61, 1), counting)
	if evals != 2 {
		t.Fatalf("boundary evals %d, want 2 total", evals)
	}
	// Off-boundary rounds must not evaluate at all.
	a.NextRound(fakeInfo(70, 1), counting)
	if evals != 2 {
		t.Fatalf("off-boundary evals %d, want 2", evals)
	}
}

func TestAdaCommCompressRejectsBadRatio0(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("accepted Ratio0 = 0")
		}
	}()
	NewAdaCommCompress(jointCfg(), CompressSchedule{})
}

func TestAdaCommCompressDrivesEngine(t *testing.T) {
	// End-to-end: joint controller + adaptive top-k on a real engine. The
	// run must learn, and the final payload must exceed the initial one
	// (fidelity rose as the loss fell).
	r := rng.New(500)
	train := data.GaussianBlobs(data.GaussianBlobsConfig{
		Classes: 4, Dim: 10, N: 800, Separation: 4, Noise: 1.2,
	}, r)
	proto := nn.NewLogisticRegression(10, 4)
	proto.InitParams(rng.New(501))
	dm := delaymodel.New(4, rng.Constant{Value: 1}, rng.Constant{Value: 1},
		delaymodel.ConstantScaling{})
	dm.Bandwidth = 256
	e, err := cluster.New(proto, data.ShardIID(train, 4, rng.New(502)), train, nil, dm,
		cluster.Config{
			BatchSize: 16,
			MaxTime:   400,
			EvalEvery: 50,
			Compress:  compress.Spec{Kind: compress.KindTopK, Ratio: 0.1, ErrorFeedback: true},
			Seed:      42,
		})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := NewAdaCommCompress(Config{Tau0: 10, Interval: 40, Schedule: sgd.Const{Eta: 0.1}},
		CompressSchedule{Ratio0: 0.1})
	initialBytes := compress.Spec{Kind: compress.KindTopK, Ratio: 0.1}.WireBytes(e.Dim())
	trace := e.Run(ctrl, ctrl.Name())
	if trace.FinalLoss() >= trace.Points[0].Loss/2 {
		t.Fatalf("joint-controlled run failed to learn: %v -> %v",
			trace.Points[0].Loss, trace.FinalLoss())
	}
	if ctrl.CompressionRatio() <= 0.1 {
		t.Fatalf("ratio never rose above Ratio0: %v", ctrl.CompressionRatio())
	}
	if e.CommBytesPerRound() <= initialBytes {
		t.Fatalf("final payload %d not above initial %d", e.CommBytesPerRound(), initialBytes)
	}
}
