package core

import (
	"math"
	"testing"

	"repro/internal/bound"
	"repro/internal/cluster"
	"repro/internal/data"
	"repro/internal/delaymodel"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/sgd"
)

// fakeInfo builds a RoundInfo at the given simulated time/epoch.
func fakeInfo(time float64, epoch int) cluster.RoundInfo {
	return cluster.RoundInfo{Time: time, Epoch: epoch, Round: 1, Iter: 100, LastLoss: math.NaN()}
}

// lossSeq returns an evalLoss closure yielding scripted values.
func lossSeq(vals ...float64) func() float64 {
	i := 0
	return func() float64 {
		v := vals[i%len(vals)]
		i++
		return v
	}
}

func TestAdaCommInitialTau(t *testing.T) {
	a := NewAdaComm(Config{Tau0: 20, Interval: 60, Schedule: sgd.Const{Eta: 0.1}})
	tau, lr := a.NextRound(fakeInfo(0, 0), lossSeq(2.0))
	if tau != 20 {
		t.Fatalf("initial tau %d, want Tau0=20", tau)
	}
	if lr != 0.1 {
		t.Fatalf("initial lr %v", lr)
	}
}

func TestAdaCommBasicRuleEq17(t *testing.T) {
	// F0 = 2.0; at the boundary F = 0.5 -> tau = ceil(sqrt(0.25)*20) = 10.
	a := NewAdaComm(Config{Tau0: 20, Interval: 60, Schedule: sgd.Const{Eta: 0.1}})
	a.NextRound(fakeInfo(0, 0), lossSeq(2.0))
	tau, _ := a.NextRound(fakeInfo(61, 1), lossSeq(0.5))
	if tau != 10 {
		t.Fatalf("eq-17 tau %d, want 10", tau)
	}
}

func TestAdaCommHoldsBetweenBoundaries(t *testing.T) {
	a := NewAdaComm(Config{Tau0: 20, Interval: 60, Schedule: sgd.Const{Eta: 0.1}})
	a.NextRound(fakeInfo(0, 0), lossSeq(2.0))
	evals := 0
	countingEval := func() float64 { evals++; return 1.0 }
	// Before the boundary, tau stays and evalLoss must NOT be called.
	tau, _ := a.NextRound(fakeInfo(30, 0), countingEval)
	if tau != 20 {
		t.Fatalf("tau changed mid-interval: %d", tau)
	}
	if evals != 0 {
		t.Fatal("evalLoss called before the interval boundary")
	}
}

func TestAdaCommSaturationDecayEq18(t *testing.T) {
	// Loss stuck at F0: rule 17 proposes tau0 again, which is not strictly
	// smaller, so eq 18 fires: tau <- ceil(gamma * tau).
	a := NewAdaComm(Config{Tau0: 20, Interval: 60, Gamma: 0.5, Schedule: sgd.Const{Eta: 0.1}})
	a.NextRound(fakeInfo(0, 0), lossSeq(2.0))
	tau, _ := a.NextRound(fakeInfo(61, 1), lossSeq(2.0))
	if tau != 10 {
		t.Fatalf("saturation decay tau %d, want gamma*20 = 10", tau)
	}
	tau, _ = a.NextRound(fakeInfo(121, 2), lossSeq(2.0))
	if tau != 5 {
		t.Fatalf("second saturation decay tau %d, want 5", tau)
	}
}

func TestAdaCommTauNeverBelowMin(t *testing.T) {
	a := NewAdaComm(Config{Tau0: 2, Interval: 10, Schedule: sgd.Const{Eta: 0.1}})
	a.NextRound(fakeInfo(0, 0), lossSeq(1.0))
	for i := 1; i <= 10; i++ {
		tau, _ := a.NextRound(fakeInfo(float64(i*10+1), i), lossSeq(1.0))
		if tau < 1 {
			t.Fatalf("tau fell below 1: %d", tau)
		}
	}
	if a.Tau() != 1 {
		t.Fatalf("tau should bottom out at 1, got %d", a.Tau())
	}
}

func TestAdaCommSlack(t *testing.T) {
	// With slack 5, a proposal of tau=18 < 20 does not count as progress
	// (18+5 >= 20), so the multiplicative decay fires instead.
	a := NewAdaComm(Config{Tau0: 20, Interval: 60, Slack: 5, Gamma: 0.5, Schedule: sgd.Const{Eta: 0.1}})
	a.NextRound(fakeInfo(0, 0), lossSeq(2.0))
	// sqrt(1.62/2.0)*20 = 18.0 -> proposal 18.
	tau, _ := a.NextRound(fakeInfo(61, 1), lossSeq(1.62))
	if tau != 10 {
		t.Fatalf("slack decay tau %d, want 10", tau)
	}
}

func TestAdaCommSqrtCouplingRaisesTauOnDecay(t *testing.T) {
	// Rule (20): a 10x LR decay multiplies tau by sqrt(10) ~ 3.16 (at
	// equal loss ratio). Loss = F0 throughout; LR decays at epoch 2.
	sch := sgd.MultiStep{Eta: 0.2, Factor: 0.1, Milestones: []int{2}}
	a := NewAdaComm(Config{Tau0: 10, Interval: 60, Coupling: SqrtCoupling, Schedule: sch})
	a.NextRound(fakeInfo(0, 0), lossSeq(1.0))
	// Epoch 2 passed: lr 0.2 -> 0.02, eta0/eta = 10, tau = ceil(sqrt(10*1)*10) = 32.
	tau, lr := a.NextRound(fakeInfo(61, 2), lossSeq(1.0))
	if math.Abs(lr-0.02) > 1e-12 {
		t.Fatalf("lr %v, want 0.02", lr)
	}
	if tau != 32 {
		t.Fatalf("sqrt-coupled tau %d, want 32", tau)
	}
}

func TestAdaCommFullCouplingExplodes(t *testing.T) {
	// Rule (19): the same 10x decay multiplies tau by 10^{3/2} ~ 31.6 —
	// the blow-up the paper warns about (tau -> ~1000 after two decays).
	sch := sgd.MultiStep{Eta: 0.2, Factor: 0.1, Milestones: []int{2}}
	a := NewAdaComm(Config{Tau0: 10, Interval: 60, Coupling: FullCoupling, Schedule: sch})
	a.NextRound(fakeInfo(0, 0), lossSeq(1.0))
	tau, _ := a.NextRound(fakeInfo(61, 2), lossSeq(1.0))
	if tau < 300 {
		t.Fatalf("full coupling tau %d, expected explosion >= 316", tau)
	}
	// And MaxTau caps it.
	b := NewAdaComm(Config{Tau0: 10, Interval: 60, Coupling: FullCoupling, Schedule: sch, MaxTau: 50})
	b.NextRound(fakeInfo(0, 0), lossSeq(1.0))
	tau, _ = b.NextRound(fakeInfo(61, 2), lossSeq(1.0))
	if tau != 50 {
		t.Fatalf("MaxTau cap failed: %d", tau)
	}
}

func TestAdaCommDeferLRDecay(t *testing.T) {
	// With deferral on, the scheduled decay at epoch 2 must NOT apply
	// while tau > 1; once tau reaches 1, the decay goes through.
	sch := sgd.MultiStep{Eta: 0.2, Factor: 0.1, Milestones: []int{2}}
	a := NewAdaComm(Config{Tau0: 8, Interval: 10, Gamma: 0.5, Schedule: sch, DeferLRDecay: true})
	a.NextRound(fakeInfo(0, 0), lossSeq(1.0))
	// Saturating loss: tau halves per boundary: 8 -> 4 -> 2 -> 1.
	var lr float64
	var tau int
	for i := 1; i <= 3; i++ {
		tau, lr = a.NextRound(fakeInfo(float64(i*10+1), 2), lossSeq(1.0))
		if tau > 1 && lr != 0.2 {
			t.Fatalf("LR decayed to %v while tau=%d > 1", lr, tau)
		}
	}
	if tau != 1 {
		t.Fatalf("tau should have reached 1, got %d", tau)
	}
	// Next boundary: tau == 1, decay now applies.
	_, lr = a.NextRound(fakeInfo(41, 2), lossSeq(1.0))
	if math.Abs(lr-0.02) > 1e-12 {
		t.Fatalf("deferred decay never applied: lr %v", lr)
	}
}

func TestAdaCommConfigValidation(t *testing.T) {
	for _, bad := range []Config{
		{Tau0: 0, Interval: 10},
		{Tau0: 5, Interval: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %+v accepted", bad)
				}
			}()
			NewAdaComm(bad)
		}()
	}
}

func TestCouplingString(t *testing.T) {
	if NoCoupling.String() != "none" || SqrtCoupling.String() != "sqrt" || FullCoupling.String() != "full" {
		t.Fatal("coupling names wrong")
	}
}

func TestOracleTauAdapts(t *testing.T) {
	consts := bound.Constants{Finf: 0, Eta: 0.08, L: 1, Sigma2: 1, M: 4, Y: 1, D: 1}
	o := &OracleTau{Consts: consts, Interval: 60, Schedule: sgd.Const{Eta: 0.08}}
	tau1, _ := o.NextRound(fakeInfo(0, 0), lossSeq(2.0))
	if tau1 < 1 {
		t.Fatalf("oracle tau %d", tau1)
	}
	// With a 4x smaller loss, tau* halves (sqrt scaling in F - Finf).
	tau2, _ := o.NextRound(fakeInfo(61, 1), lossSeq(0.5))
	if tau2 >= tau1 {
		t.Fatalf("oracle tau should shrink with loss: %d -> %d", tau1, tau2)
	}
	ratio := float64(tau1) / float64(tau2)
	if ratio < 1.5 || ratio > 3 {
		t.Fatalf("oracle tau ratio %v, want ~2", ratio)
	}
}

func TestGridSearchTau0PicksBest(t *testing.T) {
	// Scripted traces: tau=8 yields the lowest final loss.
	run := func(tau int) *metrics.Trace {
		tr := metrics.NewTrace("probe")
		loss := math.Abs(float64(tau)-8) + 1
		tr.Add(metrics.Point{Time: 0, Loss: 10, Acc: math.NaN()})
		tr.Add(metrics.Point{Time: 10, Loss: loss, Acc: math.NaN()})
		return tr
	}
	if got := GridSearchTau0([]int{1, 4, 8, 16, 64}, run); got != 8 {
		t.Fatalf("grid search picked %d, want 8", got)
	}
}

func TestGridSearchPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty candidates")
		}
	}()
	GridSearchTau0(nil, nil)
}

// End-to-end: AdaComm on a real (small) PASGD run must (a) produce a
// decreasing tau sequence and (b) beat fully synchronous SGD in time-to-loss
// on a communication-bound problem.
func TestAdaCommEndToEnd(t *testing.T) {
	r := rng.New(200)
	train := data.GaussianBlobs(data.GaussianBlobsConfig{
		Classes: 4, Dim: 12, N: 800, Separation: 4, Noise: 1.5,
	}, r)
	proto := nn.NewLogisticRegression(12, 4)
	proto.InitParams(rng.New(201))
	m := 4
	shards := data.ShardIID(train, m, rng.New(202))
	// Communication-bound: alpha = 4 (VGG-like regime).
	dm := delaymodel.New(m, rng.Constant{Value: 1}, rng.Constant{Value: 4}, delaymodel.ConstantScaling{})

	cfg := cluster.Config{
		BatchSize:  8,
		MaxIters:   2500,
		EvalEvery:  100,
		EvalSubset: 400,
		Seed:       7,
	}
	mkEngine := func() *cluster.Engine {
		e, err := cluster.New(proto, shards, train, nil, dm, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}

	syncTrace := mkEngine().Run(cluster.FixedTau{Tau: 1, Schedule: sgd.Const{Eta: 0.1}}, "sync")

	ada := NewAdaComm(Config{
		Tau0:     16,
		Interval: 400,
		Schedule: sgd.Const{Eta: 0.1},
	})
	adaTrace := mkEngine().Run(ada, "adacomm")

	// (a) tau decreases over the run.
	firstTau, lastTau := 0, 0
	for _, p := range adaTrace.Points {
		if p.Tau > 0 {
			if firstTau == 0 {
				firstTau = p.Tau
			}
			lastTau = p.Tau
		}
	}
	if firstTau != 16 {
		t.Fatalf("AdaComm first tau %d, want 16", firstTau)
	}
	if lastTau >= firstTau {
		t.Fatalf("AdaComm tau did not decrease: %d -> %d", firstTau, lastTau)
	}

	// (b) AdaComm reaches a mid-training loss target sooner than sync SGD
	// in simulated wall-clock.
	target := syncTrace.FinalLoss()*0.3 + adaTrace.FinalLoss()*0.7
	if target <= 0 {
		t.Fatalf("degenerate target %v", target)
	}
	sp := metrics.Speedup(syncTrace, adaTrace, target)
	if math.IsNaN(sp) {
		t.Fatalf("speedup undefined: sync %v ada %v target %v",
			syncTrace.TimeToLoss(target), adaTrace.TimeToLoss(target), target)
	}
	if sp <= 1 {
		t.Fatalf("AdaComm speedup %v <= 1 on a communication-bound problem", sp)
	}
}

// Regression for the tau-raise condition in adapt(): under the basic rule
// (17) eta never enters the tau update, so an LR decay must not undo the
// eq-18 monotone decay. Before the fix, `lr < curLR` alone gated the raise
// and a NoCoupling controller jumped tau back to the loss-only proposal on
// the decay interval.
func TestAdaCommNoCouplingDecayDoesNotRaiseTau(t *testing.T) {
	sch := sgd.MultiStep{Eta: 0.2, Factor: 0.1, Milestones: []int{3}}
	a := NewAdaComm(Config{Tau0: 20, Interval: 60, Gamma: 0.5, Coupling: NoCoupling, Schedule: sch})
	a.NextRound(fakeInfo(0, 0), lossSeq(2.0))
	// Two stalled boundaries: eq 18 decays 20 -> 10 -> 5.
	a.NextRound(fakeInfo(61, 1), lossSeq(2.0))
	tau, _ := a.NextRound(fakeInfo(121, 2), lossSeq(2.0))
	if tau != 5 {
		t.Fatalf("setup tau %d, want 5", tau)
	}
	// Milestone passes: lr decays, loss still stalled. Rule (17)'s proposal
	// is 20 > 5, but without coupling the decay must continue: 5 -> 3.
	tau, lr := a.NextRound(fakeInfo(181, 3), lossSeq(2.0))
	if math.Abs(lr-0.02) > 1e-12 {
		t.Fatalf("lr %v, want 0.02", lr)
	}
	if tau != 3 {
		t.Fatalf("NoCoupling raise fired on LR decay: tau %d, want 3", tau)
	}
}

// Same regression through the deferral path: the decay is withheld until tau
// reaches 1; when it finally applies, a NoCoupling controller must keep
// tau = 1 instead of firing the one-time raise with the loss-only proposal.
func TestAdaCommNoCouplingDeferredDecayKeepsTauAtOne(t *testing.T) {
	sch := sgd.MultiStep{Eta: 0.2, Factor: 0.1, Milestones: []int{2}}
	a := NewAdaComm(Config{Tau0: 8, Interval: 10, Gamma: 0.5, Coupling: NoCoupling,
		Schedule: sch, DeferLRDecay: true})
	a.NextRound(fakeInfo(0, 0), lossSeq(1.0))
	// Stalled loss, milestone already passed: tau 8 -> 4 -> 2 -> 1, decay
	// deferred throughout.
	var tau int
	var lr float64
	for i := 1; i <= 3; i++ {
		tau, lr = a.NextRound(fakeInfo(float64(i*10+1), 2), lossSeq(1.0))
	}
	if tau != 1 || lr != 0.2 {
		t.Fatalf("deferral setup: tau %d lr %v, want 1 / 0.2", tau, lr)
	}
	// The release boundary: the decay applies; tau must stay at 1.
	tau, lr = a.NextRound(fakeInfo(41, 2), lossSeq(1.0))
	if math.Abs(lr-0.02) > 1e-12 {
		t.Fatalf("deferred decay never applied: lr %v", lr)
	}
	if tau != 1 {
		t.Fatalf("NoCoupling raise fired on deferral release: tau %d, want 1", tau)
	}
}

// Pin the intended rule-(20) interaction with deferral: the one-time raise
// fires exactly on the boundary the deferred decay applies — not while the
// decay is being withheld — and with the coupled magnitude
// ceil(sqrt(eta0/eta * F/F0) * tau0).
func TestAdaCommSqrtCouplingDeferredRaiseFiresOnRelease(t *testing.T) {
	sch := sgd.MultiStep{Eta: 0.2, Factor: 0.1, Milestones: []int{2}}
	a := NewAdaComm(Config{Tau0: 8, Interval: 10, Gamma: 0.5, Coupling: SqrtCoupling,
		Schedule: sch, DeferLRDecay: true})
	a.NextRound(fakeInfo(0, 0), lossSeq(1.0))
	for i := 1; i <= 3; i++ {
		tau, lr := a.NextRound(fakeInfo(float64(i*10+1), 2), lossSeq(1.0))
		if lr != 0.2 {
			t.Fatalf("decay applied while deferred: lr %v at boundary %d", lr, i)
		}
		if want := []int{4, 2, 1}[i-1]; tau != want {
			t.Fatalf("boundary %d tau %d, want %d (no raise before release)", i, tau, want)
		}
	}
	// Release: lr 0.2 -> 0.02, tau = ceil(sqrt(10 * 1) * 8) = 26.
	tau, lr := a.NextRound(fakeInfo(41, 2), lossSeq(1.0))
	if math.Abs(lr-0.02) > 1e-12 {
		t.Fatalf("lr %v, want 0.02", lr)
	}
	if tau != 26 {
		t.Fatalf("rule-20 raise on release: tau %d, want ceil(sqrt(10)*8) = 26", tau)
	}
}
