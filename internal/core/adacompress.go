package core

import (
	"math"

	"repro/internal/cluster"
	"repro/internal/compress"
)

// CompressSchedule parameterizes the compression half of the joint
// (tau, ratio) controller. The keep-ratio follows the mirror image of the
// tau rule: AdaComm starts with infrequent communication and decays tau as
// the loss falls (eq 17); AdaCommCompress additionally starts with
// aggressive compression and RAISES the wire fidelity as the loss falls,
//
//	ratio_l = min(MaxRatio, Ratio0 * sqrt(F(x_0)/F(x_l)))
//
// with the same saturation refinement as eq 18: when the rule fails to
// strictly raise the ratio (the loss has plateaued), the ratio is relaxed
// multiplicatively by 1/Gamma instead, so a stalled run converges to
// full-fidelity communication rather than staying noisy forever.
type CompressSchedule struct {
	// Ratio0 is the initial keep-ratio (e.g. 0.05 = send 5% of
	// coordinates). Must be in (0, 1].
	Ratio0 float64
	// MaxRatio caps the adapted ratio (default 1 = lossless support).
	MaxRatio float64
	// Gamma is the saturation relaxation factor in (0, 1); each saturated
	// interval divides the compression aggressiveness by Gamma. Defaults to
	// the tau rule's Gamma.
	Gamma float64
	// NormBits drives a QSGD quantizer's bit-width directly from the
	// observed gradient-norm decay (compress.NormDecayBits — the same
	// helper AdaSync's norm rule uses) instead of the coarse ratio→bits
	// rounding: one extra bit per halving of worker 0's mini-batch gradient
	// norm relative to the first observed round, clamped to [1, 8]. The
	// keep-ratio rule still runs (it drives sparsifiers and reporting); the
	// width rule overrides only compressors that accept an exact width. Off
	// (the zero value) nothing touches the width — bit for bit the legacy
	// controller.
	NormBits bool
	// Bits0 is the norm rule's reference width (default 4). Ignored without
	// NormBits.
	Bits0 int
}

func (cs CompressSchedule) withDefaults(tauGamma float64) CompressSchedule {
	if cs.MaxRatio <= 0 || cs.MaxRatio > 1 {
		cs.MaxRatio = 1
	}
	if cs.Gamma <= 0 || cs.Gamma >= 1 {
		cs.Gamma = tauGamma
	}
	if cs.Bits0 == 0 {
		cs.Bits0 = 4
	}
	return cs
}

// AdaCommCompress jointly adapts the communication period tau AND the
// compression keep-ratio per wall-clock interval, implementing
// cluster.RatioController. Tau follows the standard AdaComm rules —
// including Config.LinkAware, which the embedded controller consumes
// unchanged, so the joint controller is heterogeneity-aware for free; the
// ratio follows CompressSchedule on the same interval boundaries, sharing
// the interval's single loss evaluation. Stateful; do not reuse across runs.
type AdaCommCompress struct {
	ada *AdaComm
	cs  CompressSchedule

	initialized  bool
	f0           float64
	ratio        float64
	nextBoundary float64

	norm0   float64 // first observed gradient norm (NormBits reference)
	curBits int     // current norm-rule width (0 until a norm is observed)
}

// NewAdaCommCompress builds the joint controller from the AdaComm config
// (tau/LR half) and a compression schedule (ratio half).
func NewAdaCommCompress(cfg Config, cs CompressSchedule) *AdaCommCompress {
	ada := NewAdaComm(cfg)
	cs = cs.withDefaults(ada.cfg.Gamma)
	if cs.Ratio0 <= 0 || cs.Ratio0 > 1 {
		panic("core: AdaCommCompress needs Ratio0 in (0, 1]")
	}
	return &AdaCommCompress{ada: ada, cs: cs}
}

// Name implements cluster.Controller.
func (a *AdaCommCompress) Name() string { return "AdaComm+Compress" }

// Tau returns the communication period currently in effect.
func (a *AdaCommCompress) Tau() int { return a.ada.Tau() }

// CompressionRatio implements cluster.RatioController.
func (a *AdaCommCompress) CompressionRatio() float64 { return a.ratio }

// QuantBits implements cluster.BitsController: the norm-decay width when
// CompressSchedule.NormBits is on and a gradient norm has been observed,
// else 0 (leave the width to the ratio mapping).
func (a *AdaCommCompress) QuantBits() int {
	if !a.cs.NormBits {
		return 0
	}
	return a.curBits
}

// NextRound implements cluster.Controller: tau and the learning rate come
// from the embedded AdaComm; the ratio is re-chosen at the same interval
// boundaries, reusing the boundary's loss evaluation.
func (a *AdaCommCompress) NextRound(info cluster.RoundInfo, evalLoss func() float64) (int, float64) {
	cached := math.NaN()
	memo := func() float64 {
		if math.IsNaN(cached) {
			cached = evalLoss()
		}
		return cached
	}
	tau, lr := a.ada.NextRound(info, memo)
	if a.cs.NormBits && info.GradNorm > 0 {
		if a.norm0 == 0 {
			a.norm0 = info.GradNorm
		}
		a.curBits = compress.NormDecayBits(a.cs.Bits0, a.norm0, info.GradNorm)
	}
	if !a.initialized {
		a.f0 = memo()
		if a.f0 <= 0 {
			a.f0 = math.SmallestNonzeroFloat64
		}
		a.ratio = a.cs.Ratio0
		a.nextBoundary = a.ada.cfg.Interval
		a.initialized = true
		return tau, lr
	}
	if info.Time >= a.nextBoundary {
		a.adaptRatio(memo())
		for a.nextBoundary <= info.Time {
			a.nextBoundary += a.ada.cfg.Interval
		}
	}
	return tau, lr
}

// adaptRatio applies the ratio rule and its saturation refinement at an
// interval boundary.
func (a *AdaCommCompress) adaptRatio(f float64) {
	proposed := a.cs.MaxRatio
	if f > 0 {
		proposed = a.cs.Ratio0 * math.Sqrt(a.f0/f)
	}
	if proposed > a.cs.MaxRatio {
		proposed = a.cs.MaxRatio
	}
	if proposed > a.ratio {
		a.ratio = proposed
		return
	}
	// Saturation: the loss ratio no longer justifies a fidelity increase,
	// so force a multiplicative relaxation toward lossless communication.
	relaxed := a.ratio / a.cs.Gamma
	if relaxed > a.cs.MaxRatio {
		relaxed = a.cs.MaxRatio
	}
	a.ratio = relaxed
}
