package core

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/data"
	"repro/internal/delaymodel"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/sgd"
)

// laSetup builds the small logistic PASGD problem the link-aware tests and
// goldens run on: 4 workers, unit compute and base latency, optionally a
// finite shared bandwidth with worker 3's link 10x slower.
func laSetup(t *testing.T, bandwidth float64, slowLink bool) (*cluster.Engine, func() *cluster.Engine) {
	t.Helper()
	r := rng.New(100)
	train := data.GaussianBlobs(data.GaussianBlobsConfig{
		Classes: 4, Dim: 10, N: 800, Separation: 4, Noise: 1.2,
	}, r)
	proto := nn.NewLogisticRegression(10, 4)
	proto.InitParams(rng.New(7))
	shards := data.ShardIID(train, 4, rng.New(8))
	mk := func() *cluster.Engine {
		dm := delaymodel.New(4, rng.Constant{Value: 1}, rng.Constant{Value: 1}, delaymodel.ConstantScaling{})
		dm.Bandwidth = bandwidth
		if slowLink {
			links := make([]delaymodel.Link, 4)
			links[3].Bandwidth = bandwidth / 10
			dm.Links = links
		}
		cfg := cluster.Config{BatchSize: 16, MaxIters: 400, EvalEvery: 50, Seed: 42}
		e, err := cluster.New(proto, shards, train, nil, dm, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	return mk(), mk
}

func laHashBits(h *uint64, v float64) {
	const prime64 = 1099511628211
	u := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		*h ^= uint64(byte(u >> (8 * i)))
		*h *= prime64
	}
}

func laHashRun(e *cluster.Engine, tr *metrics.Trace) (params, trace uint64) {
	params = 14695981039346656037
	for _, v := range e.GlobalParams() {
		laHashBits(&params, v)
	}
	trace = 14695981039346656037
	for _, p := range tr.Points {
		laHashBits(&trace, p.Time)
		laHashBits(&trace, p.Loss)
		laHashBits(&trace, float64(p.Tau))
	}
	return params, trace
}

func laAdaCfg(linkAware bool) Config {
	return Config{
		Tau0: 8, Interval: 60, Gamma: 0.5,
		Schedule:  sgd.Const{Eta: 0.1},
		LinkAware: linkAware,
	}
}

// Golden hashes captured from the pre-link-aware tree (before RoundInfo grew
// timing fields): with LinkAware off, AdaComm trajectories — homogeneous and
// heterogeneous-links alike — must stay bit-identical.
func TestAdaCommStaticGoldenBitIdentical(t *testing.T) {
	cases := []struct {
		name      string
		bandwidth float64
		slowLink  bool
		params    uint64
		trace     uint64
		finalTime float64
	}{
		{"homog", 0, false, 0x5ff2eae8e10ada1d, 0xb806a18e6483683a, 732},
		{"links", 64, true, 0xc7e9b15b2fab0e02, 0x1465a30aa738d481, 22072},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, _ := laSetup(t, tc.bandwidth, tc.slowLink)
			tr := e.Run(NewAdaComm(laAdaCfg(false)), tc.name)
			ph, th := laHashRun(e, tr)
			if ph != tc.params {
				t.Errorf("params hash %#016x, golden %#016x", ph, tc.params)
			}
			if th != tc.trace {
				t.Errorf("trace hash %#016x, golden %#016x", th, tc.trace)
			}
			if got := tr.Last().Time; got != tc.finalTime {
				t.Errorf("final time %v, golden %v", got, tc.finalTime)
			}
		})
	}
}

// On a compute-bound homogeneous cluster (alpha = 1) the link factor floors
// at 1, so turning LinkAware ON must also be bit-identical to the paper rule.
func TestLinkAwareNoOpOnComputeBoundCluster(t *testing.T) {
	e, mk := laSetup(t, 0, false)
	trStatic := e.Run(NewAdaComm(laAdaCfg(false)), "static")
	e2 := mk()
	trAware := e2.Run(NewAdaComm(laAdaCfg(true)), "aware")
	ps, ts := laHashRun(e, trStatic)
	pa, ta := laHashRun(e2, trAware)
	if ps != pa || ts != ta {
		t.Fatalf("LinkAware perturbed a compute-bound run: %#x/%#x vs %#x/%#x", ps, ts, pa, ta)
	}
}

func maxTauOf(tr *metrics.Trace) int {
	mx := 0
	for _, p := range tr.Points {
		if p.Tau > mx {
			mx = p.Tau
		}
	}
	return mx
}

// A 10x-slower link must make the link-aware controller hold tau HIGHER than
// both (a) the static rule on the same heterogeneous cluster and (b) the
// link-aware controller on the homogeneous cluster. Deterministic seeds.
func TestLinkAwareRaisesTauOnSlowLink(t *testing.T) {
	eHetero, mkHetero := laSetup(t, 64, true)
	trStatic := eHetero.Run(NewAdaComm(laAdaCfg(false)), "static-hetero")

	e2 := mkHetero()
	ada := NewAdaComm(laAdaCfg(true))
	trAware := e2.Run(ada, "aware-hetero")

	eHomog, _ := laSetup(t, 64, false)
	adaHomog := NewAdaComm(laAdaCfg(true))
	trHomog := eHomog.Run(adaHomog, "aware-homog")

	if got, want := maxTauOf(trAware), maxTauOf(trStatic); got <= want {
		t.Fatalf("link-aware max tau %d not above static %d on the slow-link cluster", got, want)
	}
	if got, want := maxTauOf(trAware), maxTauOf(trHomog); got <= want {
		t.Fatalf("slow link did not raise tau: hetero max %d vs homogeneous max %d", got, want)
	}
	if f := ada.LinkFactor(); f <= adaHomog.LinkFactor() {
		t.Fatalf("link factor %v not above homogeneous %v", f, adaHomog.LinkFactor())
	}
	// More local work per unit wall-clock: the link-aware run completes the
	// same iteration budget in less simulated time.
	if trAware.Last().Time >= trStatic.Last().Time {
		t.Fatalf("link-aware run not faster: %v vs %v sim-s for the same iterations",
			trAware.Last().Time, trStatic.Last().Time)
	}
}

// The joint (tau, ratio) controller inherits LinkAware through its embedded
// AdaComm: the slow link must raise its tau trajectory too.
func TestAdaCommCompressLinkAware(t *testing.T) {
	cfgOf := func(linkAware bool) Config {
		c := laAdaCfg(linkAware)
		return c
	}
	_, mk := laSetup(t, 64, true)
	e1 := mk()
	trStatic := e1.Run(NewAdaCommCompress(cfgOf(false), CompressSchedule{Ratio0: 0.5}), "joint-static")
	e2 := mk()
	trAware := e2.Run(NewAdaCommCompress(cfgOf(true), CompressSchedule{Ratio0: 0.5}), "joint-aware")
	if got, want := maxTauOf(trAware), maxTauOf(trStatic); got <= want {
		t.Fatalf("joint controller ignored LinkAware: max tau %d vs %d", got, want)
	}
}
