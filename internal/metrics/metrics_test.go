package metrics

import (
	"math"
	"strings"
	"testing"
)

func demoTrace() *Trace {
	t := NewTrace("demo")
	losses := []float64{1.0, 0.6, 0.4, 0.3, 0.25}
	for i, l := range losses {
		t.Add(Point{Time: float64(i) * 10, Iter: i * 100, Loss: l, Acc: math.NaN(), Tau: 5, LR: 0.1})
	}
	return t
}

func TestAddOrderEnforced(t *testing.T) {
	tr := NewTrace("x")
	tr.Add(Point{Time: 5})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-order point")
		}
	}()
	tr.Add(Point{Time: 4})
}

func TestTimeToLoss(t *testing.T) {
	tr := demoTrace()
	if got := tr.TimeToLoss(0.4); got != 20 {
		t.Fatalf("TimeToLoss(0.4) = %v, want 20", got)
	}
	if got := tr.TimeToLoss(1.0); got != 0 {
		t.Fatalf("TimeToLoss(1.0) = %v, want 0", got)
	}
	if got := tr.TimeToLoss(0.01); !math.IsNaN(got) {
		t.Fatalf("unreached target should be NaN, got %v", got)
	}
}

func TestLossAtTime(t *testing.T) {
	tr := demoTrace()
	if got := tr.LossAtTime(25); got != 0.4 {
		t.Fatalf("LossAtTime(25) = %v, want 0.4 (step interp)", got)
	}
	if got := tr.LossAtTime(0); got != 1.0 {
		t.Fatalf("LossAtTime(0) = %v, want 1.0", got)
	}
	if got := tr.LossAtTime(-1); !math.IsNaN(got) {
		t.Fatalf("LossAtTime before start should be NaN, got %v", got)
	}
	if got := tr.LossAtTime(1e9); got != 0.25 {
		t.Fatalf("LossAtTime(inf) = %v, want final 0.25", got)
	}
}

func TestSpeedup(t *testing.T) {
	slow := NewTrace("slow")
	fast := NewTrace("fast")
	for i := 0; i < 10; i++ {
		slow.Add(Point{Time: float64(i) * 30, Loss: 1 - float64(i)*0.1, Acc: math.NaN()})
		fast.Add(Point{Time: float64(i) * 10, Loss: 1 - float64(i)*0.1, Acc: math.NaN()})
	}
	if got := Speedup(slow, fast, 0.5); math.Abs(got-3) > 1e-12 {
		t.Fatalf("speedup %v, want 3", got)
	}
	if got := Speedup(slow, fast, -1); !math.IsNaN(got) {
		t.Fatalf("unreachable target should give NaN, got %v", got)
	}
}

func TestBestAccWithin(t *testing.T) {
	tr := NewTrace("acc")
	tr.Add(Point{Time: 0, Acc: 0.5})
	tr.Add(Point{Time: 10, Acc: 0.8})
	tr.Add(Point{Time: 20, Acc: math.NaN()})
	tr.Add(Point{Time: 30, Acc: 0.9})
	if got := tr.BestAccWithin(15); got != 0.8 {
		t.Fatalf("BestAccWithin(15) = %v, want 0.8", got)
	}
	if got := tr.BestAccWithin(100); got != 0.9 {
		t.Fatalf("BestAccWithin(100) = %v, want 0.9", got)
	}
	if got := tr.BestAccWithin(-5); !math.IsNaN(got) {
		t.Fatalf("BestAccWithin before start should be NaN, got %v", got)
	}
}

func TestMinFinalLoss(t *testing.T) {
	tr := demoTrace()
	if tr.MinLoss() != 0.25 || tr.FinalLoss() != 0.25 {
		t.Fatal("min/final loss wrong")
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb, demoTrace()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("CSV has %d lines, want 6 (header + 5)", len(lines))
	}
	if lines[0] != "name,time,iter,loss,acc,tau,lr" {
		t.Fatalf("bad header: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "demo,0.000000,0,1.00000000,,5,0.1") {
		t.Fatalf("bad first row: %q", lines[1])
	}
}

func TestDownsample(t *testing.T) {
	tr := NewTrace("d")
	for i := 0; i < 100; i++ {
		tr.Add(Point{Time: float64(i), Loss: float64(100 - i), Acc: math.NaN()})
	}
	ds := tr.Downsample(10)
	if ds.Len() != 11 { // 0,10,...,90 plus last (99)
		t.Fatalf("downsampled to %d points, want 11", ds.Len())
	}
	if ds.Last().Time != 99 {
		t.Fatal("downsample must keep the final point")
	}
}

func TestRenderTable(t *testing.T) {
	var sb strings.Builder
	err := RenderTable(&sb, "Demo", []string{"a", "b"}, []Row{
		{Label: "row1", Values: []float64{1, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "row1") {
		t.Fatalf("table missing content: %q", out)
	}
}
