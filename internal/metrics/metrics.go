// Package metrics records training traces — loss/accuracy against both
// iteration count and simulated wall-clock time — and derives the summary
// quantities the paper reports: time-to-target-loss, speedups between
// methods, best test accuracy within a time budget (Table 1), and CSV
// emission for external plotting.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Point is one recorded measurement during training.
type Point struct {
	Time float64 // simulated wall-clock seconds
	Iter int     // local-iteration index (paper's k)
	Loss float64 // training loss F(x) on the synchronized model
	Acc  float64 // test accuracy (NaN when not evaluated)
	Tau  int     // communication period in effect
	LR   float64 // learning rate in effect
}

// Trace is a named sequence of points, ordered by time.
type Trace struct {
	Name   string
	Points []Point
}

// NewTrace creates an empty trace.
func NewTrace(name string) *Trace { return &Trace{Name: name} }

// Add appends a point. Points must arrive in non-decreasing time order.
func (t *Trace) Add(p Point) {
	if n := len(t.Points); n > 0 && p.Time < t.Points[n-1].Time {
		panic(fmt.Sprintf("metrics: out-of-order point %v after %v", p.Time, t.Points[n-1].Time))
	}
	t.Points = append(t.Points, p)
}

// Len returns the number of points.
func (t *Trace) Len() int { return len(t.Points) }

// Last returns the final point; panics if empty.
func (t *Trace) Last() Point {
	if len(t.Points) == 0 {
		panic("metrics: Last on empty trace")
	}
	return t.Points[len(t.Points)-1]
}

// FinalLoss returns the last recorded loss.
func (t *Trace) FinalLoss() float64 { return t.Last().Loss }

// MinLoss returns the smallest recorded loss.
func (t *Trace) MinLoss() float64 {
	min := math.Inf(1)
	for _, p := range t.Points {
		if p.Loss < min {
			min = p.Loss
		}
	}
	return min
}

// TimeToLoss returns the earliest recorded time at which the loss reached
// target (loss <= target), or NaN if it never did. This is the paper's
// "X minutes to reach loss Y" metric.
func (t *Trace) TimeToLoss(target float64) float64 {
	for _, p := range t.Points {
		if p.Loss <= target {
			return p.Time
		}
	}
	return math.NaN()
}

// BestAccWithin returns the best accuracy recorded at or before the time
// budget (Table 1's "best accuracy within a time budget"). NaN-accuracy
// points are skipped; returns NaN if none qualify.
func (t *Trace) BestAccWithin(budget float64) float64 {
	best := math.NaN()
	for _, p := range t.Points {
		if p.Time > budget {
			break
		}
		if !math.IsNaN(p.Acc) && (math.IsNaN(best) || p.Acc > best) {
			best = p.Acc
		}
	}
	return best
}

// LossAtTime returns the loss of the latest point at or before tm, or NaN
// if the trace has not started by tm. Step interpolation matches how the
// paper reads values off learning curves.
func (t *Trace) LossAtTime(tm float64) float64 {
	idx := sort.Search(len(t.Points), func(i int) bool { return t.Points[i].Time > tm })
	if idx == 0 {
		return math.NaN()
	}
	return t.Points[idx-1].Loss
}

// Speedup returns how many times faster `fast` reaches the target loss than
// `slow`: timeSlow / timeFast. NaN if either never reaches it. The paper's
// headline "3.3x less time than fully synchronous SGD" is this quantity.
func Speedup(slow, fast *Trace, target float64) float64 {
	ts := slow.TimeToLoss(target)
	tf := fast.TimeToLoss(target)
	if math.IsNaN(ts) || math.IsNaN(tf) || tf == 0 {
		return math.NaN()
	}
	return ts / tf
}

// WriteCSV emits traces in long form: name,time,iter,loss,acc,tau,lr.
func WriteCSV(w io.Writer, traces ...*Trace) error {
	if _, err := fmt.Fprintln(w, "name,time,iter,loss,acc,tau,lr"); err != nil {
		return err
	}
	for _, t := range traces {
		for _, p := range t.Points {
			acc := ""
			if !math.IsNaN(p.Acc) {
				acc = fmt.Sprintf("%.6f", p.Acc)
			}
			if _, err := fmt.Fprintf(w, "%s,%.6f,%d,%.8f,%s,%d,%.6g\n",
				t.Name, p.Time, p.Iter, p.Loss, acc, p.Tau, p.LR); err != nil {
				return err
			}
		}
	}
	return nil
}

// Downsample returns a copy of the trace keeping roughly every step-th
// point plus the last one — for compact logs of long runs.
func (t *Trace) Downsample(step int) *Trace {
	if step < 1 {
		step = 1
	}
	out := NewTrace(t.Name)
	for i, p := range t.Points {
		if i%step == 0 || i == len(t.Points)-1 {
			out.Points = append(out.Points, p)
		}
	}
	return out
}

// Row is one line of a printed result table (EXPERIMENTS.md rows).
type Row struct {
	Label  string
	Values []float64
}

// RenderTable formats rows with a header into a fixed-width text table.
func RenderTable(w io.Writer, title string, header []string, rows []Row) error {
	if _, err := fmt.Fprintf(w, "== %s ==\n", title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-28s", ""); err != nil {
		return err
	}
	for _, h := range header {
		if _, err := fmt.Fprintf(w, "%14s", h); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-28s", r.Label); err != nil {
			return err
		}
		for _, v := range r.Values {
			if _, err := fmt.Fprintf(w, "%14.5g", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
