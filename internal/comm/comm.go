// Package comm is the unified communication layer of the simulator: every
// model/gradient exchange — the PASGD averaging all-reduce in
// internal/cluster (both the lock-step and goroutine backends), the ring and
// elastic mixing strategies, and the parameter-server push/pull in
// internal/paramserver — routes its wire messages through a Communicator, so
// payload accounting and aggregation arithmetic live in exactly one place.
//
// Messages are internal/compress wire messages. The aggregation hot path
// accumulates them by sparse index-merge (compress.AddDecoded): summing m
// top-k messages costs O(k*m) instead of the O(dim*m) a
// decompress-to-dense-then-add loop pays, which is what makes aggressive
// sparsification pay off at large model dimensions (see bench_test.go).
//
// A Communicator moves data; it does not advance the simulated clock. Each
// call returns Payload/Report accounting (wire bytes per worker), and the
// Topology exposes the transfer-schedule multipliers (LatencyHops,
// BytesFactor) that internal/delaymodel prices, including per-worker
// heterogeneous links via delaymodel.Model.Links.
package comm

import (
	"fmt"

	"repro/internal/compress"
)

// Payload is the per-message accounting unit: the wire bytes one worker
// sends toward the aggregation point and receives back from it.
type Payload struct {
	UpBytes   int
	DownBytes int
}

// Report describes one collective round's transfer schedule: the wire bytes
// each worker put on its link, and the largest single message (the legacy
// "per-link payload" the homogeneous delay model charges).
type Report struct {
	Bytes []int // per-worker wire bytes, indexed by worker
	Max   int   // max over Bytes
}

// Communicator routes simulated model/gradient exchange for one cluster.
//
//   - AllReduce is the symmetric collective used by averaging strategies:
//     every worker contributes one message, and the decoded sum becomes
//     visible everywhere.
//   - Push sends one worker's message toward the aggregation root,
//     reconstructing it at the receiver.
//   - PushMulti sends one worker's message to an explicit set of peers
//     (the neighbor-addressed exchange decentralized gossip uses).
//   - Pull accounts for one worker receiving a payload from the root.
//
// Implementations must be deterministic: aggregation happens in fixed worker
// order, which is what keeps the cluster engine's lock-step and goroutine
// backends bitwise identical.
//
// The communicator also carries the round's MEMBERSHIP VIEW: SetActive
// installs which workers currently exist (crashed and blipped-out workers
// are inactive), AllReduce skips inactive contributions, and Push/PushMulti
// reject exchanges naming an inactive endpoint — a fault-injection bug
// that routes traffic through a dead worker fails loudly instead of
// silently averaging stale state. Membership POLICY (who is down when,
// retry and timeout pricing) lives in internal/faults and the engines; the
// communicator only enforces the view it is handed.
type Communicator interface {
	// AllReduce zeroes sum, accumulates every message's reconstruction into
	// it in worker order (sparse index-merge), and returns the round's
	// transfer Report. Inactive workers' messages are skipped: they add
	// nothing and ship zero bytes (callers renormalize by ActiveCount).
	AllReduce(msgs []compress.Message, sum []float64) (Report, error)
	// SetActive installs the active worker set for subsequent calls. nil
	// restores the full membership (the legacy fixed-m view); otherwise
	// len(active) must equal the worker count. The slice is caller-owned
	// and copied.
	SetActive(active []bool)
	// ActiveCount returns the size of the current active set.
	ActiveCount() int
	// Push decodes worker's message into dst (overwriting it) and returns
	// the transfer's Payload.
	Push(worker int, msg compress.Message, dst []float64) (Payload, error)
	// PushMulti sends worker's message to each listed peer in one
	// overlapped hop, decoding it once into dst (every peer reconstructs
	// the identical payload). The transfer is charged the message bytes
	// once — the legacy single-overlapped-hop pricing gossip strategies
	// use, where a node's broadcast to its neighbors overlaps on its link.
	PushMulti(worker int, peers []int, msg compress.Message, dst []float64) (Payload, error)
	// Pull accounts for worker receiving bytes from the aggregation root.
	Pull(worker int, bytes int) Payload
}

// Simulated is the in-process Communicator used by the whole simulator.
// Apart from its shape and the installed membership view it is stateless,
// so one instance may serve any number of rounds; it owns no RNG and
// therefore never perturbs the engines' random streams. The topology
// itself only carries pricing multipliers (LatencyHops/BytesFactor),
// which callers read at construction time.
type Simulated struct {
	topo    Topology
	m       int
	active  []bool // nil = everyone (the legacy fixed-m view)
	nActive int
}

// New builds a communicator for m workers on the given topology.
func New(topo Topology, m int) *Simulated {
	if m < 1 {
		panic("comm: need at least one worker")
	}
	return &Simulated{topo: topo, m: m, nActive: m}
}

// SetActive implements Communicator.
func (c *Simulated) SetActive(active []bool) {
	if active == nil {
		c.active = nil
		c.nActive = c.m
		return
	}
	if len(active) != c.m {
		panic(fmt.Sprintf("comm: active set covers %d of %d workers", len(active), c.m))
	}
	if c.active == nil {
		c.active = make([]bool, c.m)
	}
	n := 0
	for i, up := range active {
		c.active[i] = up
		if up {
			n++
		}
	}
	c.nActive = n
}

// ActiveCount implements Communicator.
func (c *Simulated) ActiveCount() int { return c.nActive }

// isActive reports whether worker i is in the current active set.
func (c *Simulated) isActive(i int) bool { return c.active == nil || c.active[i] }

// AllReduce implements Communicator. Messages are accumulated in worker
// order; sparse messages merge by index in O(k) each. With an active set
// installed, inactive workers' messages are skipped entirely (zero
// contribution, zero bytes).
func (c *Simulated) AllReduce(msgs []compress.Message, sum []float64) (Report, error) {
	if len(msgs) != c.m {
		return Report{}, fmt.Errorf("comm: %d messages for %d workers", len(msgs), c.m)
	}
	for i := range sum {
		sum[i] = 0
	}
	rep := Report{Bytes: make([]int, c.m)}
	for i, msg := range msgs {
		if !c.isActive(i) {
			continue
		}
		if err := compress.AddDecoded(msg, sum); err != nil {
			return Report{}, fmt.Errorf("comm: worker %d: %w", i, err)
		}
		b := msg.Bytes()
		rep.Bytes[i] = b
		if b > rep.Max {
			rep.Max = b
		}
	}
	return rep, nil
}

// Push implements Communicator.
func (c *Simulated) Push(worker int, msg compress.Message, dst []float64) (Payload, error) {
	if worker < 0 || worker >= c.m {
		return Payload{}, fmt.Errorf("comm: worker %d out of [0,%d)", worker, c.m)
	}
	if !c.isActive(worker) {
		return Payload{}, fmt.Errorf("comm: worker %d is not in the active set", worker)
	}
	if err := compress.Decode(msg, dst); err != nil {
		return Payload{}, fmt.Errorf("comm: worker %d: %w", worker, err)
	}
	return Payload{UpBytes: msg.Bytes()}, nil
}

// PushMulti implements Communicator.
func (c *Simulated) PushMulti(worker int, peers []int, msg compress.Message, dst []float64) (Payload, error) {
	if worker < 0 || worker >= c.m {
		return Payload{}, fmt.Errorf("comm: worker %d out of [0,%d)", worker, c.m)
	}
	if !c.isActive(worker) {
		return Payload{}, fmt.Errorf("comm: worker %d is not in the active set", worker)
	}
	for ai, p := range peers {
		if p < 0 || p >= c.m {
			return Payload{}, fmt.Errorf("comm: peer %d out of [0,%d)", p, c.m)
		}
		if !c.isActive(p) {
			return Payload{}, fmt.Errorf("comm: worker %d addressed inactive peer %d", worker, p)
		}
		if p == worker {
			return Payload{}, fmt.Errorf("comm: worker %d addressed itself", worker)
		}
		// Peer lists are neighbor sets — tiny — so the duplicate scan stays
		// quadratic rather than allocating a set per call.
		for _, q := range peers[:ai] {
			if q == p {
				return Payload{}, fmt.Errorf("comm: worker %d lists peer %d twice", worker, p)
			}
		}
	}
	if err := compress.Decode(msg, dst); err != nil {
		return Payload{}, fmt.Errorf("comm: worker %d: %w", worker, err)
	}
	return Payload{UpBytes: msg.Bytes()}, nil
}

// Pull implements Communicator.
func (c *Simulated) Pull(worker int, bytes int) Payload {
	return Payload{DownBytes: bytes}
}

// DenseReport returns the schedule of a round where every worker ships a
// dense dim-coordinate vector — the legacy uncompressed broadcast.
func DenseReport(m, dim int) Report {
	bytes := make([]int, m)
	for i := range bytes {
		bytes[i] = 8 * dim
	}
	return Report{Bytes: bytes, Max: 8 * dim}
}
