package comm

import (
	"math"
	"strings"
	"testing"

	"repro/internal/compress"
	"repro/internal/rng"
)

func testMessages(t *testing.T, dim, m int) []compress.Message {
	t.Helper()
	r := rng.New(50)
	specs := []compress.Spec{
		{Kind: compress.KindIdentity},
		{Kind: compress.KindTopK, Ratio: 0.2},
		{Kind: compress.KindRandK, Ratio: 0.3},
		{Kind: compress.KindQSGD, Bits: 6},
	}
	msgs := make([]compress.Message, m)
	for i := 0; i < m; i++ {
		c, err := specs[i%len(specs)].New(r.Split())
		if err != nil {
			t.Fatal(err)
		}
		vec := make([]float64, dim)
		for j := range vec {
			vec[j] = r.NormFloat64()
		}
		msg, err := c.Compress(vec)
		if err != nil {
			t.Fatal(err)
		}
		msgs[i] = msg
	}
	return msgs
}

func TestAllReduceMatchesDenseReference(t *testing.T) {
	const dim, m = 64, 8
	msgs := testMessages(t, dim, m)
	c := New(AllGather, m)

	sum := make([]float64, dim)
	rep, err := c.AllReduce(msgs, sum)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: decode every message to dense and add.
	want := make([]float64, dim)
	dec := make([]float64, dim)
	maxBytes := 0
	for _, msg := range msgs {
		if err := compress.Decode(msg, dec); err != nil {
			t.Fatal(err)
		}
		for j := range want {
			want[j] += dec[j]
		}
		if b := msg.Bytes(); b > maxBytes {
			maxBytes = b
		}
	}
	for j := range want {
		if math.Abs(sum[j]-want[j]) > 1e-12*(1+math.Abs(want[j])) {
			t.Fatalf("index-merge sum diverged at %d: %v vs %v", j, sum[j], want[j])
		}
	}
	if rep.Max != maxBytes {
		t.Fatalf("report max %d, want %d", rep.Max, maxBytes)
	}
	if len(rep.Bytes) != m {
		t.Fatalf("report has %d workers, want %d", len(rep.Bytes), m)
	}
	for i, msg := range msgs {
		if rep.Bytes[i] != msg.Bytes() {
			t.Fatalf("worker %d bytes %d, want %d", i, rep.Bytes[i], msg.Bytes())
		}
	}
}

func TestAllReduceZeroesSum(t *testing.T) {
	const dim, m = 8, 2
	msgs := testMessages(t, dim, m)
	c := New(AllGather, m)
	sum := make([]float64, dim)
	for j := range sum {
		sum[j] = 1e9
	}
	if _, err := c.AllReduce(msgs, sum); err != nil {
		t.Fatal(err)
	}
	for j := range sum {
		if math.Abs(sum[j]) > 1e6 {
			t.Fatalf("sum not zeroed before accumulation: %v", sum[j])
		}
	}
}

func TestAllReduceErrors(t *testing.T) {
	c := New(AllGather, 3)
	sum := make([]float64, 4)
	if _, err := c.AllReduce(make([]compress.Message, 2), sum); err == nil {
		t.Fatal("accepted wrong message count")
	}
	msgs := []compress.Message{
		{Dim: 9, Enc: compress.EncDense, Dense: make([]float64, 9)},
		{Dim: 4, Enc: compress.EncDense, Dense: make([]float64, 4)},
		{Dim: 4, Enc: compress.EncDense, Dense: make([]float64, 4)},
	}
	if _, err := c.AllReduce(msgs, sum); err == nil {
		t.Fatal("accepted dim mismatch")
	}
}

func TestPushDecodesAndAccounts(t *testing.T) {
	c := New(Star, 4)
	vec := []float64{1, -2, 3, 0}
	msg := compress.Message{Dim: 4, Enc: compress.EncDense, Dense: vec}
	dst := make([]float64, 4)
	pay, err := c.Push(2, msg, dst)
	if err != nil {
		t.Fatal(err)
	}
	for j := range vec {
		if dst[j] != vec[j] {
			t.Fatalf("push did not decode at %d", j)
		}
	}
	if pay.UpBytes != msg.Bytes() || pay.DownBytes != 0 {
		t.Fatalf("push payload %+v, want up=%d", pay, msg.Bytes())
	}
	if _, err := c.Push(9, msg, dst); err == nil {
		t.Fatal("accepted out-of-range worker")
	}
	if got := c.Pull(1, 128); got.DownBytes != 128 || got.UpBytes != 0 {
		t.Fatalf("pull payload %+v, want down=128", got)
	}
}

func TestPushMultiDecodesValidatesAndAccounts(t *testing.T) {
	c := New(AllGather, 4)
	vec := []float64{1, -2, 3, 0}
	msg := compress.Message{Dim: 4, Enc: compress.EncDense, Dense: vec}
	dst := make([]float64, 4)
	pay, err := c.PushMulti(1, []int{0, 2}, msg, dst)
	if err != nil {
		t.Fatal(err)
	}
	for j := range vec {
		if dst[j] != vec[j] {
			t.Fatalf("multicast did not decode at %d", j)
		}
	}
	// One overlapped hop: the message is charged once regardless of the
	// peer count.
	if pay.UpBytes != msg.Bytes() || pay.DownBytes != 0 {
		t.Fatalf("multicast payload %+v, want up=%d", pay, msg.Bytes())
	}
	if _, err := c.PushMulti(9, []int{0}, msg, dst); err == nil {
		t.Fatal("accepted out-of-range sender")
	}
	if _, err := c.PushMulti(1, []int{4}, msg, dst); err == nil {
		t.Fatal("accepted out-of-range peer")
	}
	if _, err := c.PushMulti(1, []int{1}, msg, dst); err == nil {
		t.Fatal("accepted self-addressed peer")
	}
	if _, err := c.PushMulti(1, []int{0, 2, 0}, msg, dst); err == nil {
		t.Fatal("accepted duplicate peer")
	}
	if _, err := c.PushMulti(1, []int{2, 2}, msg, dst); err == nil {
		t.Fatal("accepted adjacent duplicate peer")
	}
	bad := compress.Message{Dim: 9, Enc: compress.EncDense, Dense: make([]float64, 9)}
	if _, err := c.PushMulti(1, []int{0}, bad, dst); err == nil {
		t.Fatal("accepted dim mismatch")
	}
}

func TestDenseReport(t *testing.T) {
	rep := DenseReport(3, 10)
	if rep.Max != 80 || len(rep.Bytes) != 3 {
		t.Fatalf("dense report %+v", rep)
	}
	for _, b := range rep.Bytes {
		if b != 80 {
			t.Fatalf("dense report bytes %v", rep.Bytes)
		}
	}
}

func TestTopologyParseAndString(t *testing.T) {
	for _, topo := range []Topology{AllGather, Ring, Tree, Star} {
		got, err := ParseTopology(topo.String())
		if err != nil || got != topo {
			t.Fatalf("round-trip %s: %v %v", topo, got, err)
		}
	}
	if got, err := ParseTopology(""); err != nil || got != AllGather {
		t.Fatalf("empty topology: %v %v", got, err)
	}
	if _, err := ParseTopology("mesh"); err == nil {
		t.Fatal("accepted unknown topology")
	}
	// The error enumerates the accepted forms — "mesh" must not just fail
	// opaquely.
	_, err := ParseTopology("mesh")
	for _, want := range []string{"allgather", "tree", "torus:RxC", "varying:"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not enumerate %q", err, want)
		}
	}
}

func TestTopologyGraphSpecs(t *testing.T) {
	// Bare "ring"/"star" stay the collectives; the graph reading needs the
	// forcing prefix. Unambiguous graph names parse directly.
	for _, s := range []string{"graph:ring", "graph:star", "complete", "expander",
		"torus:4x4", "regular:4@7", "varying:ring,star@B=5"} {
		topo, err := ParseTopology(s)
		if err != nil {
			t.Fatalf("ParseTopology(%q): %v", s, err)
		}
		if !topo.IsGraph() {
			t.Fatalf("ParseTopology(%q) not a graph topology", s)
		}
		if topo == AllGather {
			t.Fatalf("graph topology %q compares equal to AllGather", s)
		}
		if topo.String() != s {
			t.Fatalf("ParseTopology(%q).String() = %q", s, topo.String())
		}
		// Graph rounds keep the single-overlapped-hop pricing.
		if topo.LatencyHops(16) != 1 || topo.BytesFactor(16) != 1 {
			t.Fatalf("%q hops/bytes not 1", s)
		}
	}
	topo, err := ParseTopology("torus:4x4")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := topo.Graphs(16)
	if err != nil || seq.N() != 16 {
		t.Fatalf("torus:4x4 at m=16: %v", err)
	}
	if _, err := topo.Graphs(9); err == nil {
		t.Fatal("torus:4x4 accepted m=9")
	}
	if _, err := AllGather.Graphs(4); err == nil {
		t.Fatal("collective topology instantiated a graph")
	}
	// Malformed specs of a recognized graph kind are rejected too.
	for _, s := range []string{"torus:4", "regular:0", "varying:ring"} {
		if _, err := ParseTopology(s); err == nil {
			t.Fatalf("ParseTopology(%q) accepted", s)
		}
	}
}

func TestTopologyScheduleFactors(t *testing.T) {
	const m = 8
	cases := []struct {
		topo  Topology
		hops  float64
		bytes float64
	}{
		{AllGather, 1, 1},
		{Ring, 14, 14.0 / 8},
		{Tree, 6, 6},
		{Star, 2, 2},
	}
	for _, tc := range cases {
		if got := tc.topo.LatencyHops(m); math.Abs(got-tc.hops) > 1e-12 {
			t.Fatalf("%s hops %v, want %v", tc.topo, got, tc.hops)
		}
		if got := tc.topo.BytesFactor(m); math.Abs(got-tc.bytes) > 1e-12 {
			t.Fatalf("%s bytes factor %v, want %v", tc.topo, got, tc.bytes)
		}
		// Degenerate single-node cluster: no multiplier on any topology.
		if tc.topo.LatencyHops(1) != 1 || tc.topo.BytesFactor(1) != 1 {
			t.Fatalf("%s m=1 factors not 1", tc.topo)
		}
	}
}
