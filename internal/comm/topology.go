package comm

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/graph"
)

// topoKind discriminates the collective routing schemes from gossip graph
// topologies.
type topoKind int

const (
	kindAllGather topoKind = iota
	kindRing
	kindTree
	kindStar
	kindGraph
)

// Topology describes how a synchronization round's transfers are routed
// between m nodes. The four collective kinds (AllGather/Ring/Tree/Star) do
// not change WHAT is computed (the aggregation semantics are the
// Communicator's), only the transfer schedule the delay model prices: how
// many sequential message launches the round needs (LatencyHops) and what
// multiple of the payload each node's link carries over the whole operation
// (BytesFactor).
//
// A graph topology (IsGraph) instead names a gossip mixing graph
// (internal/graph): the engine takes each node's peer set and mixing
// weights from the instantiated graph, and the round keeps the
// single-overlapped-hop pricing (LatencyHops = BytesFactor = 1) gossip has
// always used — with the delay model optionally pricing the round's ACTIVE
// edges individually (delaymodel.Model.EdgeLinks).
//
// The zero value is AllGather, and comparing against the exported values
// (t == AllGather) works as it did when Topology was an enum.
type Topology struct {
	kind topoKind
	spec *graph.Spec
}

// The collective routing schemes, priced by schedule multipliers.
var (
	// AllGather is the fully connected symmetric all-gather of the paper's
	// Sec 3.1 runtime model: every per-link transfer overlaps, so the round
	// costs one latency and one payload per link. This is the zero value and
	// reproduces the legacy engine's pricing bit for bit.
	AllGather = Topology{kind: kindAllGather}
	// Ring is a bandwidth-optimal ring all-reduce (reduce-scatter followed
	// by all-gather): 2(m-1) sequential chunk launches, each link carrying
	// 2(m-1)/m of the payload in total.
	Ring = Topology{kind: kindRing}
	// Tree is a binary reduction tree followed by a broadcast down the same
	// tree: 2*log2(m) hops, each carrying the full payload (the FireCaffe
	// parameter-server analysis the paper cites).
	Tree = Topology{kind: kindTree}
	// Star routes everything through a central root (parameter server): one
	// uplink and one downlink transfer of the full payload per node. The
	// root's own fan-in is modeled by the delay model's Scaling, not here.
	Star = Topology{kind: kindStar}
)

// GraphTopology wraps a parsed gossip graph spec as a Topology.
func GraphTopology(spec *graph.Spec) Topology {
	if spec == nil {
		panic("comm: nil graph spec")
	}
	return Topology{kind: kindGraph, spec: spec}
}

// IsGraph reports whether the topology names a gossip mixing graph rather
// than a collective routing scheme.
func (t Topology) IsGraph() bool { return t.kind == kindGraph }

// GraphSpec returns the gossip graph spec, nil for collective topologies.
func (t Topology) GraphSpec() *graph.Spec { return t.spec }

// Graphs instantiates the gossip graph spec for m nodes (the possibly
// time-varying mixing sequence). It errors on collective topologies and on
// specs that pin a different node count (e.g. "torus:4x4" at m != 16).
func (t Topology) Graphs(m int) (*graph.Sequence, error) {
	if !t.IsGraph() {
		return nil, fmt.Errorf("comm: topology %s is not a gossip graph", t)
	}
	return t.spec.Build(m)
}

// TopologyForms enumerates the -topology flag grammar for error messages
// and usage text: the four collective names plus the gossip graph-spec
// grammar (a "graph:" prefix forces the graph reading of the ambiguous
// names "ring" and "star").
const TopologyForms = "allgather|ring|tree|star (collectives), or a gossip graph spec: " +
	"graph:ring|graph:star|complete|expander|torus:RxC|regular:D[@SEED]|varying:SPEC,SPEC,...[@B=N]"

// String names the topology in the -topology flag syntax;
// ParseTopology(t.String()) round-trips every representable value.
func (t Topology) String() string {
	switch t.kind {
	case kindAllGather:
		return "allgather"
	case kindRing:
		return "ring"
	case kindTree:
		return "tree"
	case kindStar:
		return "star"
	case kindGraph:
		// Bare "ring"/"star" parse as collectives, so the ambiguous graph
		// kinds keep their forcing prefix.
		if s := t.spec.String(); t.spec.Kind() == "ring" || t.spec.Kind() == "star" {
			return "graph:" + s
		} else {
			return s
		}
	}
	return "unknown-topology"
}

// ParseTopology parses the -topology flag syntax: one of the four
// collective names, or a gossip graph spec (see TopologyForms). "" is
// AllGather, the zero value.
func ParseTopology(s string) (Topology, error) {
	switch s {
	case "allgather", "":
		return AllGather, nil
	case "ring":
		return Ring, nil
	case "tree":
		return Tree, nil
	case "star":
		return Star, nil
	}
	spec, err := graph.ParseSpec(strings.TrimPrefix(s, "graph:"))
	if err != nil {
		return AllGather, fmt.Errorf("comm: unknown topology %q (want %s)", s, TopologyForms)
	}
	return GraphTopology(spec), nil
}

// LatencyHops returns the number of sequential message launches one
// synchronization needs over m nodes, each paying the base inter-node
// latency. It is >= 1 and equals 1 for m = 1 on every topology; m < 1
// panics (graph constructors and Spec.Build reject it the same way, so
// no schedule multiplier is ever computed for an empty cluster). Gossip
// graph rounds are a single overlapped neighbor multicast, so they keep
// the legacy factor 1.
func (t Topology) LatencyHops(m int) float64 {
	if m < 1 {
		panic(fmt.Sprintf("comm: topology %s over %d nodes (need at least one)", t, m))
	}
	if m == 1 {
		return 1
	}
	switch t.kind {
	case kindRing:
		return 2 * float64(m-1)
	case kindTree:
		return 2 * math.Log2(float64(m))
	case kindStar:
		return 2
	}
	return 1
}

// BytesFactor returns the multiple of the per-node payload that node's link
// carries over the whole operation. Gossip graph rounds ship each node's
// payload once over its (overlapped) neighbor links, factor 1. m < 1
// panics, exactly as LatencyHops.
func (t Topology) BytesFactor(m int) float64 {
	if m < 1 {
		panic(fmt.Sprintf("comm: topology %s over %d nodes (need at least one)", t, m))
	}
	if m == 1 {
		return 1
	}
	switch t.kind {
	case kindRing:
		return 2 * float64(m-1) / float64(m)
	case kindTree:
		return 2 * math.Log2(float64(m))
	case kindStar:
		return 2
	}
	return 1
}
