package comm

import (
	"fmt"
	"math"
)

// Topology enumerates how a synchronization round's transfers are routed
// between m nodes. The topology does not change WHAT is computed (the
// aggregation semantics are the Communicator's), only the transfer schedule
// the delay model prices: how many sequential message launches the round
// needs (LatencyHops) and what multiple of the payload each node's link
// carries over the whole operation (BytesFactor).
type Topology int

const (
	// AllGather is the fully connected symmetric all-gather of the paper's
	// Sec 3.1 runtime model: every per-link transfer overlaps, so the round
	// costs one latency and one payload per link. This is the zero value and
	// reproduces the legacy engine's pricing bit for bit.
	AllGather Topology = iota
	// Ring is a bandwidth-optimal ring all-reduce (reduce-scatter followed
	// by all-gather): 2(m-1) sequential chunk launches, each link carrying
	// 2(m-1)/m of the payload in total.
	Ring
	// Tree is a binary reduction tree followed by a broadcast down the same
	// tree: 2*log2(m) hops, each carrying the full payload (the FireCaffe
	// parameter-server analysis the paper cites).
	Tree
	// Star routes everything through a central root (parameter server): one
	// uplink and one downlink transfer of the full payload per node. The
	// root's own fan-in is modeled by the delay model's Scaling, not here.
	Star
)

// String names the topology in the -topology flag syntax.
func (t Topology) String() string {
	switch t {
	case AllGather:
		return "allgather"
	case Ring:
		return "ring"
	case Tree:
		return "tree"
	case Star:
		return "star"
	}
	return "unknown-topology"
}

// ParseTopology parses the -topology flag syntax.
func ParseTopology(s string) (Topology, error) {
	switch s {
	case "allgather", "":
		return AllGather, nil
	case "ring":
		return Ring, nil
	case "tree":
		return Tree, nil
	case "star":
		return Star, nil
	}
	return AllGather, fmt.Errorf("comm: unknown topology %q (want allgather|ring|tree|star)", s)
}

// LatencyHops returns the number of sequential message launches one
// synchronization needs over m nodes, each paying the base inter-node
// latency. It is >= 1 and equals 1 for m <= 1 on every topology.
func (t Topology) LatencyHops(m int) float64 {
	if m <= 1 {
		return 1
	}
	switch t {
	case AllGather:
		return 1
	case Ring:
		return 2 * float64(m-1)
	case Tree:
		return 2 * math.Log2(float64(m))
	case Star:
		return 2
	}
	return 1
}

// BytesFactor returns the multiple of the per-node payload that node's link
// carries over the whole operation.
func (t Topology) BytesFactor(m int) float64 {
	if m <= 1 {
		return 1
	}
	switch t {
	case AllGather:
		return 1
	case Ring:
		return 2 * float64(m-1) / float64(m)
	case Tree:
		return 2 * math.Log2(float64(m))
	case Star:
		return 2
	}
	return 1
}
