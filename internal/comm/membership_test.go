package comm

import (
	"strings"
	"testing"

	"repro/internal/compress"
)

func denseMsg(dim int, fill float64) compress.Message {
	v := make([]float64, dim)
	for i := range v {
		v[i] = fill
	}
	return compress.Message{Dim: dim, Enc: compress.EncDense, Dense: v}
}

func TestSetActiveSkipsInactiveContributions(t *testing.T) {
	const dim, m = 4, 3
	c := New(AllGather, m)
	msgs := []compress.Message{denseMsg(dim, 1), denseMsg(dim, 10), denseMsg(dim, 100)}
	sum := make([]float64, dim)

	c.SetActive([]bool{true, false, true})
	if c.ActiveCount() != 2 {
		t.Fatalf("active count %d, want 2", c.ActiveCount())
	}
	rep, err := c.AllReduce(msgs, sum)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range sum {
		if v != 101 {
			t.Fatalf("sum[%d] = %v, want 101 (worker 1 skipped)", j, v)
		}
	}
	if rep.Bytes[1] != 0 {
		t.Fatalf("inactive worker shipped %d bytes", rep.Bytes[1])
	}
	if rep.Bytes[0] != 8*dim || rep.Bytes[2] != 8*dim {
		t.Fatalf("active bytes %v", rep.Bytes)
	}

	// nil restores the full membership.
	c.SetActive(nil)
	if c.ActiveCount() != m {
		t.Fatalf("restored count %d, want %d", c.ActiveCount(), m)
	}
	if _, err := c.AllReduce(msgs, sum); err != nil {
		t.Fatal(err)
	}
	if sum[0] != 111 {
		t.Fatalf("full sum %v, want 111", sum[0])
	}
}

func TestPushRejectsInactiveEndpoints(t *testing.T) {
	const dim, m = 4, 3
	c := New(AllGather, m)
	c.SetActive([]bool{true, false, true})
	dst := make([]float64, dim)

	if _, err := c.Push(1, denseMsg(dim, 1), dst); err == nil ||
		!strings.Contains(err.Error(), "not in the active set") {
		t.Fatalf("inactive push: %v", err)
	}
	if _, err := c.Push(0, denseMsg(dim, 1), dst); err != nil {
		t.Fatalf("active push: %v", err)
	}
	if _, err := c.PushMulti(1, []int{0}, denseMsg(dim, 1), dst); err == nil {
		t.Fatal("inactive sender accepted")
	}
	if _, err := c.PushMulti(0, []int{1}, denseMsg(dim, 1), dst); err == nil ||
		!strings.Contains(err.Error(), "inactive peer 1") {
		t.Fatalf("inactive peer: %v", err)
	}
	if _, err := c.PushMulti(0, []int{2}, denseMsg(dim, 1), dst); err != nil {
		t.Fatalf("active multicast: %v", err)
	}
}

func TestSetActiveRejectsWrongLength(t *testing.T) {
	c := New(AllGather, 3)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("accepted short active mask")
		}
	}()
	c.SetActive([]bool{true})
}

func TestTopologyFactorsPanicBelowOneNode(t *testing.T) {
	for _, topo := range []Topology{AllGather, Ring, Tree, Star} {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Fatalf("%s: LatencyHops(0) did not panic", topo)
				}
			}()
			topo.LatencyHops(0)
		}()
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Fatalf("%s: BytesFactor(-1) did not panic", topo)
				}
			}()
			topo.BytesFactor(-1)
		}()
		if topo.LatencyHops(1) != 1 || topo.BytesFactor(1) != 1 {
			t.Fatalf("%s: single-node factors not 1", topo)
		}
	}
}
