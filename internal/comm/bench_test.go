package comm

// Benchmarks for the aggregation hot path: summing m compressed messages of
// a 1M-coordinate vector by sparse index-merge (AllReduce, O(dim + k*m))
// versus the legacy decompress-to-dense accumulation (O(dim*m)). Part of the
// repository bench harness (`go test -bench . ./internal/comm`, see
// bench_test.go at the repo root); the interesting regime is small k/dim,
// where the index-merge is an order of magnitude ahead.
//
// Representative run (keep ratio = k/dim over a 2^20-coordinate vector,
// m = 8 top-k messages):
//
//	ratio 0.01: sparse ~9x faster than dense
//	ratio 0.10: sparse ~3x faster
//	ratio 1.00: parity (both are dense-volume bound)

import (
	"fmt"
	"testing"

	"repro/internal/compress"
	"repro/internal/rng"
)

const (
	benchDim = 1 << 20
	benchM   = 8
)

// benchMessages builds m top-k messages at the given keep ratio over
// distinct pseudo-random 1M-coordinate vectors.
func benchMessages(b *testing.B, ratio float64) []compress.Message {
	b.Helper()
	r := rng.New(7)
	msgs := make([]compress.Message, benchM)
	vec := make([]float64, benchDim)
	for i := range msgs {
		for j := range vec {
			vec[j] = r.NormFloat64()
		}
		msg, err := compress.NewTopK(ratio).Compress(vec)
		if err != nil {
			b.Fatal(err)
		}
		msgs[i] = msg
	}
	return msgs
}

func BenchmarkAggregateSparseMerge(b *testing.B) {
	for _, ratio := range []float64{0.01, 0.1, 1.0} {
		b.Run(fmt.Sprintf("ratio-%g", ratio), func(b *testing.B) {
			msgs := benchMessages(b, ratio)
			c := New(AllGather, benchM)
			sum := make([]float64, benchDim)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.AllReduce(msgs, sum); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAggregateDense is the pre-comm-layer baseline: every message is
// decompressed into a dense scratch vector and added coordinate by
// coordinate, paying O(dim) per message regardless of sparsity.
func BenchmarkAggregateDense(b *testing.B) {
	for _, ratio := range []float64{0.01, 0.1, 1.0} {
		b.Run(fmt.Sprintf("ratio-%g", ratio), func(b *testing.B) {
			msgs := benchMessages(b, ratio)
			sum := make([]float64, benchDim)
			dec := make([]float64, benchDim)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range sum {
					sum[j] = 0
				}
				for _, msg := range msgs {
					if err := compress.Decode(msg, dec); err != nil {
						b.Fatal(err)
					}
					for j := range sum {
						sum[j] += dec[j]
					}
				}
			}
		})
	}
}

// TestSparseMergeMatchesDenseAggregation pins the benchmark's two paths to
// the same result, so the speedup is not bought with wrong sums.
func TestSparseMergeMatchesDenseAggregation(t *testing.T) {
	r := rng.New(11)
	const dim, m = 4096, 6
	msgs := make([]compress.Message, m)
	vec := make([]float64, dim)
	for i := range msgs {
		for j := range vec {
			vec[j] = r.NormFloat64()
		}
		msg, err := compress.NewTopK(0.05).Compress(vec)
		if err != nil {
			t.Fatal(err)
		}
		msgs[i] = msg
	}
	c := New(AllGather, m)
	sparse := make([]float64, dim)
	if _, err := c.AllReduce(msgs, sparse); err != nil {
		t.Fatal(err)
	}
	dense := make([]float64, dim)
	dec := make([]float64, dim)
	for _, msg := range msgs {
		if err := compress.Decode(msg, dec); err != nil {
			t.Fatal(err)
		}
		for j := range dense {
			dense[j] += dec[j]
		}
	}
	for j := range dense {
		if sparse[j] != dense[j] {
			t.Fatalf("paths disagree at %d: %v vs %v", j, sparse[j], dense[j])
		}
	}
}
