package sgd

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/rng"
)

func TestConstSchedule(t *testing.T) {
	s := Const{0.1}
	for _, e := range []int{0, 10, 1000} {
		if s.LR(e) != 0.1 {
			t.Fatalf("const LR changed at epoch %d", e)
		}
	}
}

func TestStepDecay(t *testing.T) {
	s := StepDecay{Eta: 1, Factor: 0.5, Every: 10}
	cases := map[int]float64{0: 1, 9: 1, 10: 0.5, 19: 0.5, 20: 0.25}
	for e, want := range cases {
		if got := s.LR(e); math.Abs(got-want) > 1e-12 {
			t.Fatalf("step LR(%d) = %v, want %v", e, got, want)
		}
	}
}

func TestMultiStepMatchesPaperSchedule(t *testing.T) {
	// Paper Sec 5.1: decay by 10 after epochs 80/120/160/200.
	s := MultiStep{Eta: 0.2, Factor: 0.1, Milestones: []int{80, 120, 160, 200}}
	cases := map[int]float64{
		0: 0.2, 79: 0.2,
		80: 0.02, 119: 0.02,
		120: 0.002, 159: 0.002,
		160: 0.0002, 200: 0.00002,
	}
	for e, want := range cases {
		if got := s.LR(e); math.Abs(got-want) > 1e-15 {
			t.Fatalf("multistep LR(%d) = %v, want %v", e, got, want)
		}
	}
}

func TestCosine(t *testing.T) {
	s := Cosine{Eta: 1, EtaMin: 0.1, Period: 100}
	if got := s.LR(0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("cosine LR(0) = %v", got)
	}
	if got := s.LR(100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("cosine LR(end) = %v", got)
	}
	// Monotone decreasing on [0, period].
	prev := math.Inf(1)
	for e := 0; e <= 100; e += 10 {
		cur := s.LR(e)
		if cur > prev+1e-12 {
			t.Fatalf("cosine not decreasing at %d", e)
		}
		prev = cur
	}
}

func TestSGDConvergesOnConvexProblem(t *testing.T) {
	ds, wStar, bStar := data.LinearRegressionData(
		data.LinearRegressionConfig{Dim: 4, N: 2000, Noise: 0.01}, rng.New(1))
	model := nn.NewLinearRegression(4)
	model.InitParams(rng.New(2))
	sampler := data.NewSampler(ds, 32, rng.New(3))
	o := opt.New(opt.Config{LR: 0.05}, model.ParamLen())
	grad := make([]float64, model.ParamLen())
	for s := 0; s < 3000; s++ {
		b := sampler.Next()
		model.LossGrad(b, grad)
		o.Step(model.Params(), grad)
	}
	// Recovered weights must approximate the ground truth. Dense stores W
	// (1 x dim) then bias.
	p := model.Params()
	for j, w := range wStar {
		if math.Abs(p[j]-w) > 0.05 {
			t.Fatalf("weight %d: %v vs true %v", j, p[j], w)
		}
	}
	if math.Abs(p[4]-bStar) > 0.05 {
		t.Fatalf("bias %v vs true %v", p[4], bStar)
	}
}

func TestMomentumFasterThanPlainOnQuadratic(t *testing.T) {
	// On an ill-conditioned quadratic, momentum should reach a lower loss
	// in the same number of steps — the classical acceleration effect.
	ds, _, _ := data.LinearRegressionData(
		data.LinearRegressionConfig{Dim: 6, N: 500, Noise: 0}, rng.New(4))
	// Stretch one input dimension to create bad conditioning.
	for i := 0; i < ds.N(); i++ {
		ds.X.Row(i)[0] *= 5
	}
	run := func(mu float64) float64 {
		model := nn.NewLinearRegression(6)
		model.InitParams(rng.New(5))
		cfg := opt.Config{LR: 0.01}
		if mu != 0 {
			cfg = opt.Config{Rule: opt.RuleMomentum, LR: 0.01, Momentum: mu}
		}
		o := opt.New(cfg, model.ParamLen())
		b := data.FullBatch(ds)
		grad := make([]float64, model.ParamLen())
		for s := 0; s < 150; s++ {
			model.LossGrad(b, grad)
			o.Step(model.Params(), grad)
		}
		return model.Loss(b)
	}
	plain, mom := run(0), run(0.9)
	if mom >= plain {
		t.Fatalf("momentum loss %v not better than plain %v", mom, plain)
	}
}

func TestTrainSerial(t *testing.T) {
	ds := data.GaussianBlobs(data.GaussianBlobsConfig{
		Classes: 3, Dim: 5, N: 300, Separation: 4, Noise: 0.8,
	}, rng.New(20))
	model := nn.NewLogisticRegression(5, 3)
	model.InitParams(rng.New(21))
	initial := model.Loss(data.FullBatch(ds))
	sampler := data.NewSampler(ds, 16, rng.New(22))
	o := opt.New(opt.Config{LR: 0.2}, model.ParamLen())
	tail := TrainSerial(model, sampler, o, 500)
	if math.IsNaN(tail) || tail >= initial/2 {
		t.Fatalf("TrainSerial tail loss %v not well below initial %v", tail, initial)
	}
	final := model.Loss(data.FullBatch(ds))
	if math.Abs(tail-final) > 0.5*final+0.1 {
		t.Fatalf("tail loss %v is a poor proxy for final loss %v", tail, final)
	}
}

func TestEstimateGradientVariance(t *testing.T) {
	ds := data.GaussianBlobs(data.GaussianBlobsConfig{
		Classes: 3, Dim: 5, N: 600, Separation: 3, Noise: 1,
	}, rng.New(6))
	model := nn.NewLogisticRegression(5, 3)
	model.InitParams(rng.New(7))

	// Smaller batches must yield larger variance (sigma^2 ~ 1/B).
	s8 := data.NewSampler(ds, 8, rng.New(8))
	s64 := data.NewSampler(ds, 64, rng.New(9))
	v8 := EstimateGradientVariance(model, ds, 8, 100, s8)
	v64 := EstimateGradientVariance(model, ds, 64, 100, s64)
	if v8 <= v64 {
		t.Fatalf("variance should shrink with batch size: v8=%v v64=%v", v8, v64)
	}
	if v8 <= 0 {
		t.Fatalf("variance must be positive, got %v", v8)
	}
}

func TestEstimateLipschitzPositive(t *testing.T) {
	ds := data.GaussianBlobs(data.GaussianBlobsConfig{
		Classes: 2, Dim: 4, N: 100, Separation: 3, Noise: 1,
	}, rng.New(10))
	model := nn.NewLogisticRegression(4, 2)
	model.InitParams(rng.New(11))
	b := data.FullBatch(ds)
	r := rng.New(12)
	before := append([]float64(nil), model.Params()...)
	l := EstimateLipschitz(model, b, 0.1, 10, r.NormFloat64)
	if l <= 0 {
		t.Fatalf("Lipschitz estimate %v", l)
	}
	// Params must be restored.
	for i, v := range model.Params() {
		if v != before[i] {
			t.Fatal("EstimateLipschitz did not restore parameters")
		}
	}
}
