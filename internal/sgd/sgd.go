// Package sgd provides serial mini-batch SGD building blocks: learning-rate
// schedules (constant, step decay, multi-step — the paper decays by 10x at
// the 80/120/160/200-epoch marks), the serial training loop, and a
// stochastic-gradient variance estimator for calibrating the sigma^2
// constant that Theorem 1 and the tau* formula consume. The update rules
// themselves (plain SGD, momentum, Nesterov, Local Adam) live in
// internal/opt; TrainSerial drives any opt.Optimizer.
package sgd

import (
	"fmt"
	"math"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/tensor"
)

// Schedule maps an epoch index to a learning rate.
type Schedule interface {
	// LR returns the learning rate in effect at the given (0-based) epoch.
	LR(epoch int) float64
	String() string
}

// Const is a fixed learning rate.
type Const struct{ Eta float64 }

// LR implements Schedule.
func (c Const) LR(int) float64 { return c.Eta }

func (c Const) String() string { return fmt.Sprintf("const(%g)", c.Eta) }

// StepDecay multiplies the base rate by Factor every Every epochs.
type StepDecay struct {
	Eta    float64
	Factor float64
	Every  int
}

// LR implements Schedule.
func (s StepDecay) LR(epoch int) float64 {
	if s.Every <= 0 {
		return s.Eta
	}
	return s.Eta * math.Pow(s.Factor, float64(epoch/s.Every))
}

func (s StepDecay) String() string {
	return fmt.Sprintf("step(%g x%g every %d)", s.Eta, s.Factor, s.Every)
}

// MultiStep decays the base rate by Factor at each listed epoch milestone —
// the paper's "decay by 10 after 80/120/160/200 epochs" schedule.
type MultiStep struct {
	Eta        float64
	Factor     float64
	Milestones []int
}

// LR implements Schedule.
func (m MultiStep) LR(epoch int) float64 {
	lr := m.Eta
	for _, ms := range m.Milestones {
		if epoch >= ms {
			lr *= m.Factor
		}
	}
	return lr
}

func (m MultiStep) String() string {
	return fmt.Sprintf("multistep(%g x%g at %v)", m.Eta, m.Factor, m.Milestones)
}

// Cosine anneals from Eta to EtaMin over Period epochs (then stays at
// EtaMin). Included as a modern alternative for the ablation benches.
type Cosine struct {
	Eta    float64
	EtaMin float64
	Period int
}

// LR implements Schedule.
func (c Cosine) LR(epoch int) float64 {
	if c.Period <= 0 || epoch >= c.Period {
		return c.EtaMin
	}
	frac := float64(epoch) / float64(c.Period)
	return c.EtaMin + (c.Eta-c.EtaMin)*(1+math.Cos(math.Pi*frac))/2
}

func (c Cosine) String() string {
	return fmt.Sprintf("cosine(%g->%g over %d)", c.Eta, c.EtaMin, c.Period)
}

// TrainSerial runs serial mini-batch training with the given update rule
// for the given number of steps — the single-node baseline of classical
// SGD analyses — and returns the average mini-batch loss over the final
// 10% of steps (a cheap proxy for the terminal training loss that avoids
// a full-dataset pass).
func TrainSerial(model *nn.Network, sampler *data.Sampler, opt opt.Optimizer, steps int) float64 {
	grad := make([]float64, model.ParamLen())
	tailStart := steps - steps/10
	if tailStart >= steps {
		tailStart = steps - 1
	}
	tailSum, tailN := 0.0, 0
	for s := 0; s < steps; s++ {
		b := sampler.Next()
		loss := model.LossGrad(b, grad)
		opt.Step(model.Params(), grad)
		if s >= tailStart {
			tailSum += loss
			tailN++
		}
	}
	if tailN == 0 {
		return math.NaN()
	}
	return tailSum / float64(tailN)
}

// EstimateGradientVariance estimates sigma^2 = E||g(x) - grad F(x)||^2 at
// the model's current parameters, using the full-batch gradient as the
// ground truth and `trials` mini-batches. This is the sigma^2 that enters
// the tau* formula (paper eq 14); the paper sidesteps estimating it via the
// ratio rule (eq 17), but the repo exposes it so the "oracle" variant of
// AdaComm can be benchmarked against the practical rule.
func EstimateGradientVariance(model *nn.Network, ds *data.Dataset, batchSize, trials int, sampler *data.Sampler) float64 {
	full := data.FullBatch(ds)
	exact := make([]float64, model.ParamLen())
	model.LossGrad(full, exact)

	g := make([]float64, model.ParamLen())
	diff := make([]float64, model.ParamLen())
	total := 0.0
	for t := 0; t < trials; t++ {
		b := sampler.Next()
		model.LossGrad(b, g)
		tensor.Sub(diff, g, exact)
		total += tensor.Dot(diff, diff)
	}
	return total / float64(trials)
}

// EstimateLipschitz crudely estimates the gradient-Lipschitz constant L by
// sampling parameter perturbations and measuring ||grad F(x+d)-grad F(x)||
// over ||d||. It is a lower bound in general but adequate for setting the
// eta*L ~ 1 heuristic the paper invokes for rule (20).
func EstimateLipschitz(model *nn.Network, b data.Batch, perturb float64, trials int, next func() float64) float64 {
	n := model.ParamLen()
	base := append([]float64(nil), model.Params()...)
	g0 := make([]float64, n)
	model.LossGrad(b, g0)

	g1 := make([]float64, n)
	d := make([]float64, n)
	worst := 0.0
	for t := 0; t < trials; t++ {
		for i := range d {
			d[i] = perturb * next()
		}
		tensor.Add(model.Params(), base, d)
		model.LossGrad(b, g1)
		tensor.Sub(g1, g1, g0)
		if dn := tensor.Norm2(d); dn > 0 {
			if ratio := tensor.Norm2(g1) / dn; ratio > worst {
				worst = ratio
			}
		}
	}
	model.SetParams(base)
	return worst
}
