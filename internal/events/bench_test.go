package events

import "testing"

// BenchmarkQueuePushPop measures raw scheduler throughput: push 4096 events
// with colliding times (exercising the tie-break path), then drain. Events
// per second is 8192 / (ns_per_op * 1e-9); cmd/bench records the same
// workload into BENCH_<n>.json as EventQueue/4096.
func BenchmarkQueuePushPop(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := NewQueue(uint64(i))
		for j := 0; j < 4096; j++ {
			q.Push(Event{Time: float64(j % 64), Worker: j & 255, Kind: Kind(j & 1)})
		}
		for {
			if _, ok := q.Pop(); !ok {
				break
			}
		}
	}
}
