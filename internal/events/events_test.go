package events

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"testing"
)

func drain(q *Queue) []Event {
	var out []Event
	for {
		e, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

func TestPopOrderedByTime(t *testing.T) {
	q := NewQueue(1)
	times := []float64{5, 1, 3, 2, 4, 0, 2.5}
	for i, tm := range times {
		q.Push(Event{Time: tm, Worker: i, Kind: Arrival})
	}
	got := drain(q)
	if len(got) != len(times) {
		t.Fatalf("popped %d events, want %d", len(got), len(times))
	}
	want := append([]float64(nil), times...)
	sort.Float64s(want)
	for i, e := range got {
		if e.Time != want[i] {
			t.Fatalf("pop %d: time %v, want %v", i, e.Time, want[i])
		}
	}
}

func TestTieBreakIsSeededNotIndexOrder(t *testing.T) {
	// All events at the same time: pop order must be a seeded shuffle, not
	// worker-index order (a degenerate order would bias every K-of-m
	// aggregation toward low worker ids on homogeneous links).
	const n = 64
	pops := func(seed uint64) []int {
		q := NewQueue(seed)
		for i := 0; i < n; i++ {
			q.Push(Event{Time: 1, Worker: i, Kind: Arrival})
		}
		var order []int
		for _, e := range drain(q) {
			order = append(order, e.Worker)
		}
		return order
	}
	a, b, a2 := pops(7), pops(8), pops(7)
	inIndexOrder := true
	for i := range a {
		if a[i] != i {
			inIndexOrder = false
		}
		if a[i] != a2[i] {
			t.Fatalf("same seed diverged at pop %d: %d vs %d", i, a[i], a2[i])
		}
	}
	if inIndexOrder {
		t.Fatalf("seed 7 tie-break degenerated to index order")
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("seeds 7 and 8 produced identical tie-break orders")
	}
}

func TestDeterministicAcrossGOMAXPROCS(t *testing.T) {
	run := func() []Event {
		q := NewQueue(42)
		src := rand.New(rand.NewSource(99))
		for i := 0; i < 500; i++ {
			q.Push(Event{
				Time:   math.Floor(src.Float64()*10) / 2, // many exact ties
				Worker: i % 17,
				Kind:   Kind(i % 2),
			})
		}
		return drain(q)
	}
	old := runtime.GOMAXPROCS(1)
	a := run()
	runtime.GOMAXPROCS(8)
	b := run()
	runtime.GOMAXPROCS(old)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pop %d differs across GOMAXPROCS: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestInterleavedPushPop(t *testing.T) {
	// Heap stays ordered under interleaving: pop mid-stream never returns
	// an event later than a queued earlier one.
	q := NewQueue(3)
	q.Push(Event{Time: 10, Worker: 0})
	q.Push(Event{Time: 5, Worker: 1})
	if e, _ := q.Pop(); e.Worker != 1 {
		t.Fatalf("expected worker 1 first, got %d", e.Worker)
	}
	q.Push(Event{Time: 1, Worker: 2})
	q.Push(Event{Time: 20, Worker: 3})
	if e, _ := q.Pop(); e.Worker != 2 {
		t.Fatalf("expected worker 2, got %d", e.Worker)
	}
	if e, _ := q.Pop(); e.Worker != 0 {
		t.Fatalf("expected worker 0, got %d", e.Worker)
	}
	if e, _ := q.Pop(); e.Worker != 3 {
		t.Fatalf("expected worker 3, got %d", e.Worker)
	}
	if _, ok := q.Pop(); ok {
		t.Fatalf("queue should be empty")
	}
}

func TestPushRejectsDegenerateTimes(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Push accepted time %v", bad)
				}
			}()
			NewQueue(1).Push(Event{Time: bad})
		}()
	}
}

func TestClocksForwardOnly(t *testing.T) {
	c := NewClocks(3)
	c.AdvanceTo(0, 5)
	c.AdvanceTo(1, 2)
	c.AdvanceTo(0, 5) // same instant is legal
	if c.Time(0) != 5 || c.Time(1) != 2 || c.Time(2) != 0 {
		t.Fatalf("clocks %v %v %v", c.Time(0), c.Time(1), c.Time(2))
	}
	if c.Max() != 5 {
		t.Fatalf("Max = %v, want 5", c.Max())
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("backward advance not rejected")
		}
	}()
	c.AdvanceTo(0, 4)
}

func TestTraceDeterministicHash(t *testing.T) {
	mk := func() *Trace {
		tr := &Trace{}
		tr.Record(Event{Time: 0, Worker: 3, Kind: Dispatch})
		tr.Record(Event{Time: 1.5, Worker: 3, Kind: Arrival})
		return tr
	}
	a, b := mk(), mk()
	if a.String() != b.String() || a.Hash() != b.Hash() {
		t.Fatalf("trace not deterministic: %q vs %q", a.String(), b.String())
	}
	if a.String() != "0 dispatch w3\n1.5 arrival w3" {
		t.Fatalf("unexpected rendering: %q", a.String())
	}
}
