// Package events is the discrete-event substrate of the asynchronous
// training engine (cluster.AsyncEngine): a deterministic priority queue of
// {time, worker, kind} events, per-worker virtual clocks, and a textual
// trace recorder that pins a run's exact event order in golden tests.
//
// # Event queue contract
//
// Pop returns events in non-decreasing Time order. Events with EQUAL times
// are ordered by a tie-break priority drawn from a seeded stream at Push
// time — not by worker index or push order — so that arrival order is not
// degenerate when links are homogeneous (every worker finishing a round at
// the identical instant would otherwise always be served in index order,
// and a K-of-m aggregation would silently become "the first K worker ids").
// Two pushes that draw equal priorities (a ~2^-64 event) fall back to push
// order. Because the priority stream is seeded and consumed in push order,
// the pop sequence is a pure function of (seed, push sequence): same seed,
// same pushes, byte-identical pop order — on any machine, at any
// GOMAXPROCS. The queue is single-goroutine by design; determinism comes
// from the seeded stream, not from locking.
//
// Event times must be finite and non-negative: a NaN time has no place in
// an ordering and would silently corrupt the heap invariant, so Push
// rejects it loudly, the same way delaymodel.CheckLinks rejects NaN links.
//
// # Clock semantics
//
// Clocks tracks one virtual clock per worker plus the implied simulation
// horizon. A worker's clock only moves forward (AdvanceTo panics on a
// backward move): worker i's clock is the simulated instant its last
// scheduled action completes, and the engine's wall-clock reading at any
// event is the event's own time stamp — NOT the max over worker clocks,
// because stragglers deliberately run ahead of the aggregation frontier.
package events

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/rng"
)

// Kind discriminates scheduler events.
type Kind uint8

const (
	// Dispatch activates a worker: it pulls the current global model and
	// begins a round of local work.
	Dispatch Kind = iota
	// Arrival delivers a worker's finished round (its update message) at
	// the aggregation point.
	Arrival
)

// String renders the kind for event traces.
func (k Kind) String() string {
	switch k {
	case Dispatch:
		return "dispatch"
	case Arrival:
		return "arrival"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one scheduled occurrence.
type Event struct {
	Time   float64 // simulated seconds, finite and >= 0
	Worker int
	Kind   Kind
}

// entry is a queued event plus its ordering keys.
type entry struct {
	ev   Event
	prio uint64 // seeded tie-break, drawn at Push
	seq  uint64 // push order, final fallback
}

// Queue is a deterministic min-heap of events. The zero value is unusable;
// construct with NewQueue.
type Queue struct {
	h   []entry
	seq uint64
	r   *rng.Rand
}

// NewQueue builds an empty queue whose tie-break stream is seeded with the
// given seed.
func NewQueue(seed uint64) *Queue {
	return &Queue{r: rng.New(seed)}
}

// Len returns the number of queued events.
func (q *Queue) Len() int { return len(q.h) }

// Push schedules an event. The event's tie-break priority is drawn from the
// queue's seeded stream here, so the pop order is fully determined by the
// seed and the push sequence.
func (q *Queue) Push(e Event) {
	if math.IsNaN(e.Time) || math.IsInf(e.Time, 0) || e.Time < 0 {
		panic(fmt.Sprintf("events: event time %v (want finite >= 0)", e.Time))
	}
	q.h = append(q.h, entry{ev: e, prio: q.r.Uint64(), seq: q.seq})
	q.seq++
	q.up(len(q.h) - 1)
}

// Pop removes and returns the earliest event; ok is false on an empty
// queue.
func (q *Queue) Pop() (e Event, ok bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	top := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h = q.h[:last]
	if len(q.h) > 0 {
		q.down(0)
	}
	return top.ev, true
}

// Peek returns the earliest event without removing it.
func (q *Queue) Peek() (e Event, ok bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	return q.h[0].ev, true
}

// less orders entries by (Time, prio, seq).
func (q *Queue) less(a, b entry) bool {
	if a.ev.Time != b.ev.Time {
		return a.ev.Time < b.ev.Time
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

func (q *Queue) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(q.h[i], q.h[p]) {
			return
		}
		q.h[i], q.h[p] = q.h[p], q.h[i]
		i = p
	}
}

func (q *Queue) down(i int) {
	n := len(q.h)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && q.less(q.h[l], q.h[small]) {
			small = l
		}
		if r < n && q.less(q.h[r], q.h[small]) {
			small = r
		}
		if small == i {
			return
		}
		q.h[i], q.h[small] = q.h[small], q.h[i]
		i = small
	}
}

// Clocks is a set of per-worker virtual clocks.
type Clocks struct {
	t []float64
}

// NewClocks builds n clocks, all at time zero.
func NewClocks(n int) *Clocks {
	if n < 1 {
		panic("events: need at least one clock")
	}
	return &Clocks{t: make([]float64, n)}
}

// Len returns the number of clocks.
func (c *Clocks) Len() int { return len(c.t) }

// Time returns worker i's clock.
func (c *Clocks) Time(i int) float64 { return c.t[i] }

// AdvanceTo moves worker i's clock to tm, which must not be behind it: a
// virtual clock never runs backwards, and a violation means the caller
// scheduled an action to complete before its predecessor.
func (c *Clocks) AdvanceTo(i int, tm float64) {
	if math.IsNaN(tm) || tm < c.t[i] {
		panic(fmt.Sprintf("events: clock %d moved backwards: %v -> %v", i, c.t[i], tm))
	}
	c.t[i] = tm
}

// Max returns the latest per-worker clock — how far ahead of the
// aggregation frontier the most advanced straggler has run.
func (c *Clocks) Max() float64 {
	mx := 0.0
	for _, v := range c.t {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// Trace records a deterministic textual log of processed events. Golden
// tests pin a seeded run's trace (or its hash) byte-identically; the
// determinism test replays the same seed at different GOMAXPROCS and
// asserts equal traces.
type Trace struct {
	lines []string
}

// Record appends one event. %.9g keeps the rendering platform-independent
// for every time the simulator produces (float64-exact inputs render
// float64-exactly).
func (t *Trace) Record(e Event) {
	t.lines = append(t.lines, fmt.Sprintf("%.9g %s w%d", e.Time, e.Kind, e.Worker))
}

// Len returns the number of recorded events.
func (t *Trace) Len() int { return len(t.lines) }

// Lines returns the recorded lines (caller must not mutate).
func (t *Trace) Lines() []string { return t.lines }

// String renders the trace newline-joined.
func (t *Trace) String() string { return strings.Join(t.lines, "\n") }

// Hash folds the rendered trace through FNV-1a, for compact golden pins.
func (t *Trace) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for _, line := range t.lines {
		for i := 0; i < len(line); i++ {
			h ^= uint64(line[i])
			h *= prime64
		}
		h ^= uint64('\n')
		h *= prime64
	}
	return h
}
