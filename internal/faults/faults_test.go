package faults

import (
	"math"
	"strings"
	"testing"
)

func mustParse(t *testing.T, spec string) *Schedule {
	t.Helper()
	s, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	return s
}

func TestParseEmptyDisabled(t *testing.T) {
	for _, spec := range []string{"", "   "} {
		s, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if s.Enabled() {
			t.Fatalf("Parse(%q) enabled", spec)
		}
	}
	var zero Schedule
	if zero.Enabled() {
		t.Fatal("zero Schedule enabled")
	}
	var nilSched *Schedule
	if nilSched.Enabled() || nilSched.Down(0, 0) || nilSched.LinkScale(0, 0) != 1 ||
		nilSched.Retries(1, 0, 0) != 0 || nilSched.Rejoins(0, 1) {
		t.Fatal("nil Schedule is not the empty schedule")
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"crash:3@r40",
		"blip:5@r10-20",
		"slow:2x4@r10-20",
		"drop:0.05",
		"crash:0@r1,blip:1@r2-3,slow:2x1.5@r4-6,drop:0.1",
	} {
		s := mustParse(t, spec)
		if got := s.String(); got != spec {
			t.Errorf("Parse(%q).String() = %q", spec, got)
		}
	}
}

func TestParseRejects(t *testing.T) {
	for _, spec := range []string{
		"nonsense",
		"frob:1@r2",
		"crash:1",           // no round
		"crash:-1@r2",       // negative worker
		"crash:1@r-2",       // negative round
		"crash:1@r2-5",      // crash takes a single round
		"blip:1@r5-2",       // inverted range
		"blip:1@r5-x",       // bad range end
		"slow:1@r2-3",       // missing factor
		"slow:1x0@r2-3",     // zero factor
		"slow:1x-2@r2-3",    // negative factor
		"slow:1xNaN@r2-3",   // NaN factor
		"slow:1x+Inf@r2-3",  // Inf factor
		"drop:1",            // p must be < 1
		"drop:-0.1",         // negative p
		"drop:NaN",          // NaN p
		"drop:0.1,drop:0.2", // duplicate drop
		"crash:1@r2,",       // trailing empty term
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
	// The generic error enumerates every valid form.
	_, err := Parse("frob:1@r2")
	for _, form := range []string{"crash:W@rR", "blip:W@rR1-R2", "slow:WxF@rR1-R2", "drop:P"} {
		if err == nil || !strings.Contains(err.Error(), form) {
			t.Errorf("Parse error %v does not enumerate %q", err, form)
		}
	}
}

func TestDownRejoinSemantics(t *testing.T) {
	s := mustParse(t, "crash:0@r5,blip:1@r3-6")
	for round, want := range map[int]bool{0: false, 4: false, 5: true, 6: true, 1000: true} {
		if got := s.Down(0, round); got != want {
			t.Errorf("crash Down(0, %d) = %v", round, got)
		}
	}
	for round, want := range map[int]bool{2: false, 3: true, 6: true, 7: false} {
		if got := s.Down(1, round); got != want {
			t.Errorf("blip Down(1, %d) = %v", round, got)
		}
	}
	if !s.Rejoins(1, 7) {
		t.Error("blip worker does not rejoin at To+1")
	}
	for _, round := range []int{3, 6, 8} {
		if s.Rejoins(1, round) {
			t.Errorf("Rejoins(1, %d) = true", round)
		}
	}
	if s.Rejoins(0, 6) {
		t.Error("crashed worker rejoins")
	}
	active := make([]bool, 3)
	if n := s.ActiveInto(4, active); n != 2 || !active[0] || active[1] || !active[2] {
		t.Errorf("ActiveInto(4) = %d %v", n, active)
	}
	if n := s.ActiveInto(10, active); n != 2 || active[0] || !active[1] || !active[2] {
		t.Errorf("ActiveInto(10) = %d %v", n, active)
	}
}

func TestLinkScale(t *testing.T) {
	s := mustParse(t, "slow:2x4@r10-20,slow:2x2@r15-15")
	cases := []struct {
		round int
		want  float64
	}{{9, 1}, {10, 4}, {15, 8}, {20, 4}, {21, 1}}
	for _, c := range cases {
		if got := s.LinkScale(2, c.round); got != c.want {
			t.Errorf("LinkScale(2, %d) = %g, want %g", c.round, got, c.want)
		}
	}
	if got := s.LinkScale(0, 15); got != 1 {
		t.Errorf("LinkScale(0, 15) = %g", got)
	}
}

func TestRetriesDeterministicAndBounded(t *testing.T) {
	s := mustParse(t, "drop:0.3")
	total := 0
	for round := 0; round < 200; round++ {
		for w := 0; w < 8; w++ {
			r := s.Retries(42, round, w)
			if r != s.Retries(42, round, w) {
				t.Fatal("Retries is not deterministic")
			}
			if r < 0 || r > maxRetries {
				t.Fatalf("Retries = %d out of [0, %d]", r, maxRetries)
			}
			total += r
		}
	}
	// E[retries] = p/(1-p) ~ 0.43 at p = 0.3; accept a loose band.
	mean := float64(total) / (200 * 8)
	if mean < 0.2 || mean > 0.7 {
		t.Errorf("mean retries %g implausible for p=0.3", mean)
	}
	if s.Retries(42, 1, 1) == s.Retries(43, 1, 1) &&
		s.Retries(42, 2, 1) == s.Retries(43, 2, 1) &&
		s.Retries(42, 3, 1) == s.Retries(43, 3, 1) &&
		s.Retries(42, 1, 0) == s.Retries(43, 1, 0) &&
		s.Retries(42, 4, 2) == s.Retries(43, 4, 2) {
		t.Error("Retries appears seed-independent")
	}
	none := mustParse(t, "crash:1@r5")
	if none.Retries(42, 1, 1) != 0 {
		t.Error("Retries > 0 without a drop term")
	}
}

func TestValidate(t *testing.T) {
	s := mustParse(t, "crash:3@r40")
	if err := s.Validate(4); err != nil {
		t.Errorf("Validate(4): %v", err)
	}
	if err := s.Validate(3); err == nil {
		t.Error("Validate(3) accepted worker 3")
	}
	if err := s.Validate(0); err == nil {
		t.Error("Validate(0) accepted empty cluster")
	}
	var nilSched *Schedule
	if err := nilSched.Validate(0); err != nil {
		t.Errorf("nil Validate: %v", err)
	}
}

func TestHotPathAllocationFree(t *testing.T) {
	s := mustParse(t, "crash:0@r5,blip:1@r3-6,slow:2x4@r10-20,drop:0.2")
	active := make([]bool, 8)
	if n := testing.AllocsPerRun(100, func() {
		s.Down(1, 4)
		s.Rejoins(1, 7)
		s.LinkScale(2, 12)
		s.Retries(42, 7, 3)
		s.ActiveInto(4, active)
	}); n != 0 {
		t.Errorf("hot path allocates %g/op", n)
	}
}

func TestHash01Range(t *testing.T) {
	for i := 0; i < 1000; i++ {
		v := hash01(uint64(i), i*7, i%5, i%3)
		if math.IsNaN(v) || v < 0 || v >= 1 {
			t.Fatalf("hash01 out of [0,1): %g", v)
		}
	}
}
