// Package faults implements a seeded, deterministic fault-injection
// schedule for the simulated engines: permanent worker crashes,
// crash-recover windows ("blips"), transient per-exchange message drops
// (retried with the timeout charged through the delay model), and
// temporary slow-down episodes that multiply a worker's link times.
//
// A Schedule is a pure function of (seed, round): every query — Down,
// LinkScale, Retries — is answered by arithmetic over the parsed events
// plus a splitmix-style hash, and consumes NOTHING from the engines' RNG
// streams (delay draws, jitter, samplers, compressors). That independence
// is the bit-identity rule: a nil or empty schedule leaves every existing
// trajectory byte-for-byte unchanged, and enabling faults perturbs only
// the arithmetic the faults themselves dictate, never the random draws.
//
// Rounds are whatever the consuming engine counts: synchronization rounds
// in the lock-step cluster engine, server versions in the parameter-server
// and event-driven engines. Membership policy lives here; the mechanism
// (who a collective skips, how a mean renormalizes) lives in the engines
// and internal/comm.
package faults

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind classifies a scheduled fault event.
type Kind int

const (
	// KindCrash takes a worker down permanently from round From on.
	KindCrash Kind = iota
	// KindBlip takes a worker down for rounds [From, To]; it rejoins at
	// round To+1 (and must reconcile its stale state).
	KindBlip
	// KindSlow multiplies a worker's link transfer times by Factor for
	// rounds [From, To]; the worker stays up.
	KindSlow
)

// String names the kind using the spec grammar's keyword.
func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindBlip:
		return "blip"
	case KindSlow:
		return "slow"
	}
	return "unknown-fault"
}

// Event is one scheduled fault: Worker is affected for rounds
// [From, To] inclusive (Crash pins To to the maximum int). Factor is the
// link-time multiplier of a Slow event and unused otherwise.
type Event struct {
	Kind   Kind
	Worker int
	From   int
	To     int
	Factor float64
}

// maxRetries caps the consecutive timed-out attempts a dropped exchange
// is charged before it is forced through: with drop probability p the
// expected extra attempts stay p/(1-p), and a pathological p near 1
// cannot stall a round forever.
const maxRetries = 8

// Schedule is a parsed, validated fault schedule. The zero value (and
// nil) is the empty schedule: no worker is ever down, no link is ever
// scaled, no exchange is ever dropped, and Enabled reports false so
// engines keep their untouched legacy code paths.
type Schedule struct {
	events []Event
	drop   float64
}

// Enabled reports whether the schedule can ever perturb a run. Engines
// gate every fault-aware branch on this, which is what keeps fault-free
// configurations bit-identical to the pre-fault code.
func (s *Schedule) Enabled() bool {
	return s != nil && (len(s.events) > 0 || s.drop > 0)
}

// Events returns a copy of the parsed events.
func (s *Schedule) Events() []Event {
	if s == nil {
		return nil
	}
	return append([]Event(nil), s.events...)
}

// Drop returns the per-attempt message-drop probability.
func (s *Schedule) Drop() float64 {
	if s == nil {
		return 0
	}
	return s.drop
}

// Down reports whether the worker is crashed or blipped out at the given
// round. Allocation-free.
func (s *Schedule) Down(worker, round int) bool {
	if s == nil {
		return false
	}
	for _, e := range s.events {
		if e.Worker == worker && e.Kind != KindSlow && round >= e.From && round <= e.To {
			return true
		}
	}
	return false
}

// Rejoins reports whether the worker comes back up at this round after
// being down the previous round — the moment it must reconcile its stale
// state before participating again. Allocation-free.
func (s *Schedule) Rejoins(worker, round int) bool {
	return s != nil && round > 0 && !s.Down(worker, round) && s.Down(worker, round-1)
}

// LinkScale returns the multiplier on the worker's link transfer times at
// the given round: 1 outside any slow-down episode, the product of the
// overlapping episodes' factors inside. Allocation-free.
func (s *Schedule) LinkScale(worker, round int) float64 {
	scale := 1.0
	if s == nil {
		return scale
	}
	for _, e := range s.events {
		if e.Kind == KindSlow && e.Worker == worker && round >= e.From && round <= e.To {
			scale *= e.Factor
		}
	}
	return scale
}

// ActiveInto fills active[i] with whether worker i is up at the given
// round and returns the active count. Allocation-free.
func (s *Schedule) ActiveInto(round int, active []bool) int {
	n := 0
	for i := range active {
		up := !s.Down(i, round)
		active[i] = up
		if up {
			n++
		}
	}
	return n
}

// Retries returns how many timed-out attempts worker's exchange at the
// given round suffers before it succeeds: each attempt is dropped
// independently with probability Drop, decided by a hash of
// (seed, round, worker, attempt) — no RNG stream is consumed — and capped
// at maxRetries. The caller charges each failed attempt as one extra full
// transfer (the timeout-and-resend pricing). Allocation-free.
func (s *Schedule) Retries(seed uint64, round, worker int) int {
	if s == nil || s.drop <= 0 {
		return 0
	}
	n := 0
	for n < maxRetries && hash01(seed, round, worker, n) < s.drop {
		n++
	}
	return n
}

// hash01 maps (seed, round, worker, attempt) to [0, 1) with a
// splitmix64-style finalizer — the same mixing internal/rng seeds with,
// reimplemented here so the fault stream stays structurally independent
// of every engine RNG stream.
func hash01(seed uint64, round, worker, attempt int) float64 {
	x := seed
	x ^= uint64(round) * 0x9E3779B97F4A7C15
	x ^= uint64(worker) * 0xBF58476D1CE4E5B9
	x ^= uint64(attempt) * 0x94D049BB133111EB
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// Validate checks the schedule against a cluster of m workers: every
// event's worker index must be in [0, m). Parse already rejected
// malformed values; this is the half that needs the cluster size.
func (s *Schedule) Validate(m int) error {
	if s == nil {
		return nil
	}
	if m < 1 {
		return fmt.Errorf("faults: cluster of %d workers", m)
	}
	for _, e := range s.events {
		if e.Worker < 0 || e.Worker >= m {
			return fmt.Errorf("faults: %s event names worker %d, cluster has workers 0..%d", e.Kind, e.Worker, m-1)
		}
	}
	return nil
}

// String reconstructs the spec syntax.
func (s *Schedule) String() string {
	if !s.Enabled() {
		return ""
	}
	var parts []string
	for _, e := range s.events {
		switch e.Kind {
		case KindCrash:
			parts = append(parts, fmt.Sprintf("crash:%d@r%d", e.Worker, e.From))
		case KindBlip:
			parts = append(parts, fmt.Sprintf("blip:%d@r%d-%d", e.Worker, e.From, e.To))
		case KindSlow:
			parts = append(parts, fmt.Sprintf("slow:%dx%g@r%d-%d", e.Worker, e.Factor, e.From, e.To))
		}
	}
	if s.drop > 0 {
		parts = append(parts, fmt.Sprintf("drop:%g", s.drop))
	}
	return strings.Join(parts, ",")
}

// Forms enumerates the fault-spec grammar for error messages and usage
// text.
const Forms = "crash:W@rR (worker W down permanently from round R) | " +
	"blip:W@rR1-R2 (worker W down for rounds R1..R2, rejoins at R2+1) | " +
	"slow:WxF@rR1-R2 (worker W's link times multiplied by F for rounds R1..R2) | " +
	"drop:P (every exchange dropped and retried with probability P in [0,1))"

// Parse parses a comma-separated fault spec (Forms):
//
//	crash:3@r40          worker 3 crashes permanently at round 40
//	blip:5@r10-20        worker 5 is down rounds 10..20, rejoins at 21
//	slow:2x4@r10-20      worker 2's links are 4x slower rounds 10..20
//	drop:0.05            every exchange is dropped (and retried, with the
//	                     timeout charged) with probability 0.05
//
// An empty spec returns a nil schedule (faults disabled). Malformed
// workers, rounds, factors (NaN/Inf/non-positive), and probabilities
// outside [0, 1) are rejected with an error that enumerates every valid
// form; worker indices are range-checked later against the cluster size
// by Validate.
func Parse(spec string) (*Schedule, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	s := &Schedule{}
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		kind, rest, ok := strings.Cut(term, ":")
		if !ok {
			return nil, badTerm(term)
		}
		switch kind {
		case "drop":
			p, err := strconv.ParseFloat(rest, 64)
			if err != nil || math.IsNaN(p) || math.IsInf(p, 0) || p < 0 || p >= 1 {
				return nil, fmt.Errorf("faults: drop probability %q must be in [0, 1) (want %s)", rest, Forms)
			}
			if s.drop > 0 {
				return nil, fmt.Errorf("faults: duplicate drop term %q (one drop probability per schedule)", term)
			}
			s.drop = p
		case "crash", "blip", "slow":
			e, err := parseEvent(kind, rest, term)
			if err != nil {
				return nil, err
			}
			s.events = append(s.events, e)
		default:
			return nil, badTerm(term)
		}
	}
	return s, nil
}

func badTerm(term string) error {
	return fmt.Errorf("faults: bad fault %q (want %s)", term, Forms)
}

func parseEvent(kind, rest, term string) (Event, error) {
	who, when, ok := strings.Cut(rest, "@r")
	if !ok {
		return Event{}, badTerm(term)
	}
	e := Event{Factor: 1}
	switch kind {
	case "crash":
		e.Kind = KindCrash
	case "blip":
		e.Kind = KindBlip
	case "slow":
		e.Kind = KindSlow
		ws, fs, ok := strings.Cut(who, "x")
		if !ok {
			return Event{}, badTerm(term)
		}
		f, err := strconv.ParseFloat(fs, 64)
		if err != nil || math.IsNaN(f) || math.IsInf(f, 0) || f <= 0 {
			return Event{}, fmt.Errorf("faults: slow factor %q must be a positive finite number (want %s)", fs, Forms)
		}
		e.Factor = f
		who = ws
	}
	w, err := strconv.Atoi(who)
	if err != nil || w < 0 {
		return Event{}, fmt.Errorf("faults: worker %q must be a non-negative index (want %s)", who, Forms)
	}
	e.Worker = w
	from, to, ranged := strings.Cut(when, "-")
	e.From, err = strconv.Atoi(from)
	if err != nil || e.From < 0 {
		return Event{}, fmt.Errorf("faults: round %q must be a non-negative integer (want %s)", from, Forms)
	}
	switch {
	case e.Kind == KindCrash:
		if ranged {
			return Event{}, fmt.Errorf("faults: crash takes a single round, %q gives a range (use blip:W@rR1-R2 for crash-recover)", term)
		}
		e.To = math.MaxInt
	case ranged:
		e.To, err = strconv.Atoi(to)
		if err != nil || e.To < e.From {
			return Event{}, fmt.Errorf("faults: round range %q must be rR1-R2 with R1 <= R2 (want %s)", when, Forms)
		}
	default:
		e.To = e.From
	}
	return e, nil
}
