package cluster

import (
	"math"
	"strings"
	"testing"

	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/delaymodel"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sgd"
)

// Tests for graph-native gossip: arbitrary mixing topologies via
// Config.Topology graph specs, time-varying sequences, the adaptive
// consensus step, and per-edge delay pricing through the engine.

func mustTopo(t *testing.T, s string) comm.Topology {
	t.Helper()
	topo, err := comm.ParseTopology(s)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestGraphRingTopologyBitIdenticalToDefault(t *testing.T) {
	// Driving the engine with an explicit "graph:ring" topology must be
	// bit-identical to the built-in ring path — same replica trajectories,
	// same evaluation model, same simulated times — on both the raw and the
	// CHOCO (identity-compressed) paths. This is the refactor's safety net:
	// the legacy arithmetic is now one Graph among many.
	for _, m := range []int{2, 3, 5} {
		for _, spec := range []compress.Spec{{}, {Kind: compress.KindIdentity}} {
			s := newSetup(t, m, 1)
			cfg := baseCfg()
			cfg.Strategy = RingGossip
			cfg.MaxIters = 200
			cfg.Compress = spec

			legacy := s.engine(t, cfg)
			trL := legacy.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "legacy")

			cfg.Topology = mustTopo(t, "graph:ring")
			asGraph := s.engine(t, cfg)
			trG := asGraph.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "graph")

			for i := 0; i < m; i++ {
				pl, pg := legacy.LocalModelParams(i), asGraph.LocalModelParams(i)
				for j := range pl {
					if pl[j] != pg[j] {
						t.Fatalf("m=%d spec=%v: worker %d param %d diverged", m, spec, i, j)
					}
				}
			}
			gl, gg := legacy.GlobalParams(), asGraph.GlobalParams()
			for j := range gl {
				if gl[j] != gg[j] {
					t.Fatalf("m=%d spec=%v: evaluation model diverged at %d", m, spec, j)
				}
			}
			if trL.Len() != trG.Len() {
				t.Fatalf("m=%d spec=%v: trace lengths differ", m, spec)
			}
			for i := range trL.Points {
				if trL.Points[i].Loss != trG.Points[i].Loss ||
					trL.Points[i].Time != trG.Points[i].Time {
					t.Fatalf("m=%d spec=%v: traces differ at point %d", m, spec, i)
				}
			}
		}
	}
}

func TestCompleteGraphOneSyncIsGlobalMean(t *testing.T) {
	// On the complete graph every row of W is uniform 1/m over all nodes, so
	// a single raw gossip sync lands every worker exactly on the mean of the
	// pre-sync replicas, accumulated in the row's fixed ascending order.
	const m = 5
	s := newSetup(t, m, 1)
	cfg := baseCfg()
	cfg.Strategy = RingGossip
	cfg.Topology = mustTopo(t, "complete")
	e := s.engine(t, cfg)
	e.StepLocal(7, 0.1)
	pre := make([][]float64, m)
	for i := range pre {
		pre[i] = e.LocalModelParams(i)
	}
	e.SyncNow()
	for i := 0; i < m; i++ {
		got := e.LocalModelParams(i)
		for j := range got {
			sum := pre[0][j]
			for k := 1; k < m; k++ {
				sum += pre[k][j]
			}
			if want := sum / m; got[j] != want {
				t.Fatalf("worker %d param %d: %v, want global mean %v bit-for-bit", i, j, got[j], want)
			}
		}
	}
}

func TestGraphTopologiesTrain(t *testing.T) {
	// Every shipped graph family runs end-to-end on both the raw and the
	// compressed path and reduces the loss. m = 16 so the torus spec pins.
	for _, spec := range []string{"torus:4x4", "expander", "regular:4@11", "graph:star",
		"varying:ring,torus:4x4@B=3"} {
		t.Run(spec, func(t *testing.T) {
			for _, cs := range []compress.Spec{{}, {Kind: compress.KindTopK, Ratio: 0.25}} {
				s := newSetup(t, 16, 1)
				cfg := baseCfg()
				cfg.Strategy = RingGossip
				cfg.Topology = mustTopo(t, spec)
				cfg.MaxIters = 300
				cfg.Compress = cs
				if cs.Enabled() {
					cfg.GossipGamma = 0.6
				}
				e := s.engine(t, cfg)
				tr := e.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, spec)
				if !(tr.FinalLoss() < tr.Points[0].Loss/2) {
					t.Fatalf("compress=%v: failed to learn: %v -> %v",
						cs, tr.Points[0].Loss, tr.FinalLoss())
				}
			}
		})
	}
}

func TestTimeVaryingTopologyAdvances(t *testing.T) {
	// varying:ring,star@B=2 holds each graph for two syncs. The active
	// adjacency (what per-edge pricing charges) must follow the schedule:
	// node 1 has degree 2 on the ring and degree 1 on the star.
	s := newSetup(t, 5, 1)
	cfg := baseCfg()
	cfg.Strategy = RingGossip
	cfg.Topology = mustTopo(t, "varying:ring,star@B=2")
	e := s.engine(t, cfg)
	if !e.gseq.Varying() || e.gseq.Len() != 2 {
		t.Fatalf("sequence not time-varying: len %d", e.gseq.Len())
	}
	wantDeg := []int{2, 2, 1, 1, 2, 2} // ring, ring, star, star, ring, ring
	for sync, want := range wantDeg {
		e.StepLocal(2, 0.1)
		e.SyncNow()
		if e.syncs != sync+1 {
			t.Fatalf("after sync %d: counter %d", sync, e.syncs)
		}
		if got := len(e.activeAdj[1]); got != want {
			t.Fatalf("sync %d: node 1 degree %d, want %d", sync, got, want)
		}
	}
}

func TestAdaptGossipGammaFollowsSpectralGap(t *testing.T) {
	topk := compress.Spec{Kind: compress.KindTopK, Ratio: 0.25}
	s := newSetup(t, 16, 1)
	cfg := baseCfg()
	cfg.Strategy = RingGossip
	cfg.Compress = topk
	cfg.AdaptGossipGamma = true
	cfg.Topology = mustTopo(t, "varying:torus:4x4,ring@B=1")
	e := s.engine(t, cfg)
	want := []float64{
		graph.AdaptiveGamma(graph.Torus(4, 4).SpectralGap()),
		graph.AdaptiveGamma(graph.Ring(16).SpectralGap()),
	}
	if len(e.gammas) != 2 || e.gammas[0] != want[0] || e.gammas[1] != want[1] {
		t.Fatalf("adaptive gammas %v, want %v", e.gammas, want)
	}
	// The torus gap is far larger than the ring's, so its consensus step is
	// more aggressive; both stay inside the clamp.
	if !(e.gammas[0] > e.gammas[1]) || e.gammas[1] < 0.05 || e.gammas[0] > 1 {
		t.Fatalf("adaptive gammas not ordered/clamped: %v", e.gammas)
	}
	tr := e.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "adaptive")
	if !(tr.FinalLoss() < tr.Points[0].Loss/2) {
		t.Fatalf("adaptive gamma failed to learn: %v -> %v", tr.Points[0].Loss, tr.FinalLoss())
	}

	// Validation: the adaptive step needs the CHOCO path, and excludes an
	// explicit gamma.
	bad := baseCfg()
	bad.Strategy = RingGossip
	bad.AdaptGossipGamma = true
	if _, err := New(s.proto, s.shards, s.train, s.test, s.dm, bad); err == nil ||
		!strings.Contains(err.Error(), "compression") {
		t.Fatal("adaptive gamma accepted without compression")
	}
	bad.Compress = topk
	bad.GossipGamma = 0.5
	if _, err := New(s.proto, s.shards, s.train, s.test, s.dm, bad); err == nil ||
		!strings.Contains(err.Error(), "excludes") {
		t.Fatal("adaptive gamma accepted alongside explicit GossipGamma")
	}
}

func TestGraphTopologyValidation(t *testing.T) {
	s := newSetup(t, 4, 1)
	// A graph topology requires the gossip strategy...
	cfg := baseCfg()
	cfg.Topology = mustTopo(t, "complete")
	if _, err := New(s.proto, s.shards, s.train, s.test, s.dm, cfg); err == nil ||
		!strings.Contains(err.Error(), "requires RingGossip") {
		t.Fatal("graph topology accepted with full averaging")
	}
	// ...and a spec that cannot instantiate at this m fails construction.
	cfg = baseCfg()
	cfg.Strategy = RingGossip
	cfg.Topology = mustTopo(t, "torus:4x4")
	if _, err := New(s.proto, s.shards, s.train, s.test, s.dm, cfg); err == nil {
		t.Fatal("torus:4x4 accepted at m=4")
	}
}

func TestPerEdgeStragglerGatesGossipRounds(t *testing.T) {
	// One 10x-latency edge (3,4): the ring activates it every sync, so every
	// round pays D0 + 10; the 4x4 torus does not contain the edge, so the
	// same delay table costs nothing. With constant distributions the times
	// are exact: 20 rounds of tau=5 cost 20*(5+1+10) vs 20*(5+1).
	run := func(spec string) float64 {
		s := newSetup(t, 16, 1)
		s.dm.EdgeLinks = map[delaymodel.Edge]delaymodel.Link{
			{From: 3, To: 4}: {Latency: 10},
			{From: 4, To: 3}: {Latency: 10},
		}
		cfg := baseCfg()
		cfg.Strategy = RingGossip
		cfg.Topology = mustTopo(t, spec)
		cfg.MaxIters = 100
		e := s.engine(t, cfg)
		return e.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, spec).Last().Time
	}
	if got, want := run("graph:ring"), 20.0*(5+1+10); math.Abs(got-want) > 1e-9 {
		t.Fatalf("ring time %v, want %v", got, want)
	}
	if got, want := run("torus:4x4"), 20.0*(5+1); math.Abs(got-want) > 1e-9 {
		t.Fatalf("torus time %v, want %v", got, want)
	}

	// Per-edge tables price gossip graph rounds only.
	s := newSetup(t, 4, 1)
	s.dm.EdgeLinks = map[delaymodel.Edge]delaymodel.Link{{From: 0, To: 1}: {Latency: 1}}
	if _, err := New(s.proto, s.shards, s.train, s.test, s.dm, baseCfg()); err == nil ||
		!strings.Contains(err.Error(), "require RingGossip") {
		t.Fatal("edge links accepted with full averaging")
	}
	bad := delaymodel.New(4, rng.Constant{Value: 1}, rng.Constant{Value: 1}, delaymodel.ConstantScaling{})
	bad.EdgeLinks = map[delaymodel.Edge]delaymodel.Link{{From: 0, To: 9}: {}}
	cfg := baseCfg()
	cfg.Strategy = RingGossip
	if _, err := New(s.proto, s.shards, s.train, s.test, bad, cfg); err == nil {
		t.Fatal("degenerate edge table accepted")
	}
}

func TestPerEdgeGossipParallelBitIdentical(t *testing.T) {
	// The goroutine backend must stay bitwise identical under a graph
	// topology with per-edge pricing (the adjacency is published inside the
	// fixed-order sync, which both backends share).
	mk := func() *Engine {
		s := newSetup(t, 16, 1)
		s.dm.EdgeLinks = map[delaymodel.Edge]delaymodel.Link{
			{From: 3, To: 4}: {Latency: 10},
			{From: 4, To: 3}: {Latency: 10},
		}
		cfg := baseCfg()
		cfg.Strategy = RingGossip
		cfg.Topology = mustTopo(t, "varying:torus:4x4,expander@B=2")
		cfg.MaxIters = 100
		return s.engine(t, cfg)
	}
	e1, e2 := mk(), mk()
	tr1 := e1.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "seq")
	tr2 := e2.RunParallel(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "par")
	p1, p2 := e1.GlobalParams(), e2.GlobalParams()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("parallel diverged at param %d", i)
		}
	}
	for i := range tr1.Points {
		if tr1.Points[i].Time != tr2.Points[i].Time {
			t.Fatalf("trace times differ at %d", i)
		}
	}
}
