package cluster

import (
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/delaymodel"
	"repro/internal/rng"
	"repro/internal/sgd"
)

// With constant Y = 1 and D0 = 1 on an infinite-bandwidth link, a tau-step
// round costs tau + LatencyHops(m), so the topology's hop count is directly
// visible in the final simulated time.
func TestTopologyHopsPriceRounds(t *testing.T) {
	const tau, iters = 5, 100
	rounds := float64(iters / tau)
	for _, tc := range []struct {
		topo comm.Topology
		hops float64
	}{
		{comm.AllGather, 1},
		{comm.Star, 2},
		{comm.Tree, 2 * math.Log2(4)},
		{comm.Ring, 2 * 3},
	} {
		t.Run(tc.topo.String(), func(t *testing.T) {
			s := newSetup(t, 4, 1)
			cfg := baseCfg()
			cfg.MaxIters = iters
			cfg.Topology = tc.topo
			e := s.engine(t, cfg)
			tr := e.Run(FixedTau{Tau: tau, Schedule: sgd.Const{Eta: 0.1}}, "t")
			want := rounds * (tau + tc.hops)
			if got := tr.Last().Time; math.Abs(got-want) > 1e-9 {
				t.Fatalf("final time %v, want %v", got, want)
			}
		})
	}
}

func TestTopologyRequiresFullAveraging(t *testing.T) {
	s := newSetup(t, 4, 1)
	cfg := baseCfg()
	cfg.Strategy = RingGossip
	cfg.Topology = comm.Tree
	if _, err := New(s.proto, s.shards, s.train, s.test, s.dm, cfg); err == nil {
		t.Fatal("accepted explicit topology with ring gossip")
	}
}

func TestHeterogeneousLinkGatesRound(t *testing.T) {
	// One worker with a 10x worse link: the round's broadcast is gated by
	// the slow link, so the same iteration budget takes longer. With
	// constant distributions the exact stretch is computable.
	s := newSetup(t, 4, 1)
	bw := 64.0
	payload := float64(8 * s.proto.ParamLen())
	cfg := baseCfg()
	cfg.MaxIters = 100

	s.dm.Bandwidth = bw
	fast := s.engine(t, cfg)
	fastT := fast.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "homog").Last().Time

	s2 := newSetup(t, 4, 1)
	s2.dm.Bandwidth = bw
	s2.dm.Links = []delaymodel.Link{{}, {}, {}, {Bandwidth: bw / 10}}
	slow := s2.engine(t, cfg)
	slowT := slow.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "hetero").Last().Time

	rounds := 100.0 / 5
	wantFast := rounds * (5 + 1 + payload/bw)
	wantSlow := rounds * (5 + 1 + payload/(bw/10))
	if math.Abs(fastT-wantFast) > 1e-9 {
		t.Fatalf("homogeneous time %v, want %v", fastT, wantFast)
	}
	if math.Abs(slowT-wantSlow) > 1e-9 {
		t.Fatalf("heterogeneous time %v, want %v", slowT, wantSlow)
	}
}

func TestLinkLatencyCharged(t *testing.T) {
	// A pure-latency straggler link (infinite bandwidth) adds its latency to
	// every round even with size-free payloads.
	s := newSetup(t, 4, 1)
	s.dm.Links = []delaymodel.Link{{}, {}, {}, {Latency: 3}}
	cfg := baseCfg()
	cfg.MaxIters = 100
	e := s.engine(t, cfg)
	tr := e.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "lat")
	rounds := 100.0 / 5
	want := rounds * (5 + 1 + 3)
	if got := tr.Last().Time; math.Abs(got-want) > 1e-9 {
		t.Fatalf("final time %v, want %v", got, want)
	}
}

func TestMismatchedLinksRejected(t *testing.T) {
	s := newSetup(t, 4, 1)
	dm := delaymodel.New(4, rng.Constant{Value: 1}, rng.Constant{Value: 1}, nil)
	dm.Links = []delaymodel.Link{{}}
	if _, err := New(s.proto, s.shards, s.train, s.test, dm, baseCfg()); err == nil {
		t.Fatal("accepted mismatched link count")
	}
}

func TestParallelMatchesSequentialUnderTopologyAndLinks(t *testing.T) {
	// The goroutine backend must stay bitwise identical when the comm layer
	// prices a non-trivial topology over heterogeneous links.
	s := newSetup(t, 4, 1)
	s.dm.Bandwidth = 128
	s.dm.Links = []delaymodel.Link{{}, {Latency: 0.5}, {}, {Bandwidth: 16}}
	cfg := baseCfg()
	cfg.MaxIters = 200
	cfg.Topology = comm.Ring
	e1 := s.engine(t, cfg)
	e2 := s.engine(t, cfg)
	tr1 := e1.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "seq")
	tr2 := e2.RunParallel(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "par")
	p1, p2 := e1.GlobalParams(), e2.GlobalParams()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("parallel diverged at param %d", i)
		}
	}
	for i := range tr1.Points {
		if tr1.Points[i].Time != tr2.Points[i].Time {
			t.Fatalf("trace times differ at %d", i)
		}
	}
}
