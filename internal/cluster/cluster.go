// Package cluster implements the distributed training substrate of the
// reproduction: periodic-averaging SGD (PASGD, paper eq 3) over m simulated
// workers. Each worker owns a model replica, a shard of the training data,
// and an optimizer; after every tau local steps the replicas are averaged
// (the tau=1 special case is fully synchronous SGD, eq 4).
//
// Wall-clock time is simulated through internal/delaymodel: a round of tau
// local steps costs max-over-workers of the summed per-step compute times,
// plus one broadcast delay. This is exactly the runtime model of the
// paper's Sec 3.1, and it is what places simulated seconds on the x-axis of
// the reproduced figures.
//
// # Compressed averaging
//
// All model exchange — raw or compressed, full averaging, ring gossip, or
// elastic averaging — routes through the unified communication layer in
// internal/comm: workers contribute wire messages (internal/compress), the
// communicator aggregates them by sparse index-merge, and the resulting
// transfer schedule (per-worker wire bytes plus the configured topology's
// hop multipliers) is what delaymodel prices, per worker when the model has
// heterogeneous Links.
//
// When Config.Compress names a compressor (internal/compress), the
// averaging step exchanges compressed DELTAS instead of raw parameter
// vectors: each worker i compresses x_i - x_glob (its movement since the
// last synchronization, routed through its private error-feedback residual
// if configured), the communicator index-merges the messages, and the new
// synchronized model x_glob + mean(delta_hat_i) is broadcast back. With the
// zero-value Compress spec and Topology the engine takes the legacy
// raw-averaging all-gather path and, because an infinite-bandwidth link
// ignores payload size, reproduces pre-compression traces bit for bit
// (enforced by the golden tests).
//
// Two execution backends are provided: the deterministic lock-step engine
// (Engine.Run) used by all experiments, and a goroutine-parallel backend
// (Engine.RunParallel) in which every worker runs in its own goroutine and
// model averaging is a real barrier all-reduce over channels. Both produce
// bitwise-identical parameter trajectories given the same seed, which the
// test suite verifies.
//
// The lock-step engine's local-update phase is itself parallel: each
// round's tau per-worker update loops fan out across a bounded goroutine
// pool (Config.ComputeWorkers, default GOMAXPROCS). Workers are
// independent between averaging points — each owns its model replica,
// sampler RNG stream, optimizer, and gradient buffer — and the averaging
// step always reduces contributions in fixed worker order, so the pool
// width and goroutine scheduling cannot change a single bit of the
// trajectory. ComputeWorkers: 1 forces the legacy serial loop; the golden
// and determinism tests pin serial and parallel traces bit-identical.
package cluster

import (
	"fmt"
	"math"
	"runtime"

	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/data"
	"repro/internal/delaymodel"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/sgd"
	"repro/internal/tensor"
)

// Config controls a PASGD run.
type Config struct {
	BatchSize int // per-worker mini-batch size

	// Optimizer settings applied at every worker. The legacy
	// Momentum/WeightDecay fields are heavy-ball shorthand; Opt selects any
	// internal/opt rule (plain SGD, momentum, Nesterov, Local Adam/AdamW,
	// with the synced-second-moment ablation axis). Setting Opt alongside a
	// non-zero legacy field is rejected; the zero values of both mean plain
	// SGD, bit-identical to every pre-optimizer-layer golden.
	Momentum    float64 // local momentum factor (0 = plain SGD)
	WeightDecay float64
	Opt         opt.Config

	// BlockMomentum is the global momentum factor beta_glob applied to the
	// accumulated per-round update at averaging time (paper eq 24-25);
	// 0 disables it. When enabled, local momentum buffers are reset at
	// each averaging step (paper Sec 5.3.1 / CNTK practice). It remains the
	// FullAveraging-only legacy knob; GlobalMomentum below is the
	// strategy-generic generalization, and the two are mutually exclusive.
	BlockMomentum float64

	// GlobalMomentum applies SlowMo-style global momentum at every sync
	// point under ANY strategy: full averaging filters the population
	// displacement through one shared buffer (the same arithmetic as
	// BlockMomentum), while gossip and elastic averaging keep one buffer
	// per node, filtering each node's own mixing displacement. GlobalLR is
	// the slow learning rate alpha applied to the buffered update
	// (0 = 1, the BMUF/legacy form). 0 disables.
	GlobalMomentum float64
	GlobalLR       float64

	// Stop conditions: the run ends when either is reached (zero = unset;
	// at least one must be set).
	MaxIters int
	MaxTime  float64

	// EvalEvery records a trace point every EvalEvery local iterations
	// (the paper records every 100). Evaluation happens at the first
	// averaging point at or after the crossing, on the synchronized model.
	EvalEvery int

	// EvalSubset bounds the number of training examples used for loss
	// evaluation (0 = full training set).
	EvalSubset int

	// AccEverySync evaluates test accuracy every this-many averaging steps
	// (0 = never). Accuracy is evaluated on the synchronized model.
	AccEverySync int

	// StragglerFactor optionally slows individual workers: worker i's
	// compute times are multiplied by StragglerFactor[i]. nil = all 1.
	StragglerFactor []float64

	// ComputeWorkers bounds the goroutine pool that executes the simulated
	// workers' local-update phases (Run, StepLocal). 0 defaults to
	// runtime.GOMAXPROCS(0); an effective value of 1 (explicitly, or on a
	// single-core machine) takes the legacy serial path. Workers are
	// independent between averaging points — each owns its replica, sampler
	// stream, and optimizer — and averaging reduces in fixed worker order,
	// so parallel execution is bit-identical to serial (asserted by the
	// golden and determinism tests). Negative values are rejected.
	ComputeWorkers int

	// Strategy selects the mixing rule at synchronization points:
	// FullAveraging (PASGD, the default), RingGossip (decentralized), or
	// ElasticAveraging (EASGD). Block momentum requires FullAveraging.
	Strategy Strategy
	// ElasticAlpha/ElasticBeta are the EASGD pull strengths (defaults 0.5
	// each when Strategy is ElasticAveraging). Explicit values must lie in
	// (0, 1]; the zero value means "use the default".
	ElasticAlpha float64
	ElasticBeta  float64

	// GossipGamma is the consensus step size of compressed (CHOCO-SGD)
	// gossip: each node moves gamma of the way toward its neighborhood's
	// estimate average, x_i += gamma * sum_j W_ij (x̂_j - x̂_i), with W the
	// active mixing graph's matrix. The zero value defaults to 1, which
	// makes lossless compression reproduce the raw gossip mix bit for bit;
	// aggressive lossy compressors typically want gamma < 1 to damp the
	// estimate noise. Explicit values must lie in (0, 1] and require
	// RingGossip with compression enabled.
	GossipGamma float64

	// AdaptGossipGamma derives the consensus step from each mixing graph's
	// measured spectral gap instead of a hand-picked constant:
	// gamma = sqrt(1 - lambda_2(W)) clamped to [0.05, 1]
	// (graph.AdaptiveGamma) — the same measure-then-scale shape AdaComm
	// applies to tau. Well-connected graphs run full-strength consensus;
	// slow-mixing ones damp it so compressed estimate noise cannot be
	// amplified around the cycle. Requires RingGossip with compression and
	// excludes an explicit GossipGamma; under a time-varying sequence each
	// graph gets its own gamma.
	AdaptGossipGamma bool

	// Compress selects the delta-compression scheme used at averaging
	// points (see the package comment). The zero value (compress.None)
	// keeps the legacy raw-vector averaging path, bit-identical to the
	// pre-compression engine. All strategies honor it: full averaging
	// exchanges compressed deltas from the synchronized model, ring gossip
	// and elastic averaging exchange compressed deltas from the last shared
	// reference (the published replica mean / the center variable).
	Compress compress.Spec

	// Topology selects either how full averaging's all-reduce is routed, or
	// which mixing graph gossip runs over (internal/comm). A collective
	// topology (ring/tree/star all-reduce schedules) scales the round's
	// communication delay by its transfer schedule without changing the
	// aggregation math, and requires FullAveraging; the zero value
	// (comm.AllGather) is the legacy overlapped all-gather, bit-identical
	// to the pre-comm-layer engine. A GRAPH topology (comm.Topology.IsGraph
	// — "torus:4x4", "regular:4@7", "varying:ring,star@B=5", ...) instead
	// names the gossip mixing graph and requires RingGossip: each node
	// mixes over graph.Neighbors(i) with the graph's doubly stochastic
	// weights, time-varying sequences advance the active graph once per
	// synchronization, and the round keeps gossip's single-overlapped-hop
	// pricing — per ACTIVE EDGE when the delay model sets EdgeLinks. The
	// RingGossip strategy with the zero-value Topology runs the default
	// ring graph, bit-identical to the legacy hard-coded ring.
	Topology comm.Topology

	// Faults optionally injects a seeded crash/churn/slow-down schedule
	// (internal/faults), keyed by the driving loop's round index. Crashed
	// and blipped-out workers skip local updates and synchronization —
	// full and elastic averaging renormalize over the survivors, gossip
	// mixes on the induced active subgraph (down nodes isolated, weights
	// and spectral gap re-derived, AdaptGossipGamma re-adapted) — and a
	// worker rejoining after a blip reconciles first by pulling the
	// current global model as a priced dense delta against its stale
	// replica. Slow-down episodes and drop-retries multiply the affected
	// worker's transfer times in the round schedule. The schedule is a
	// pure function of (Seed, round) and consumes no RNG from any engine
	// stream; nil (or an empty schedule) keeps every trajectory
	// bit-identical to the fault-free engine. Run, RunParallel, and the
	// async engine honor it; the manual StepLocal/SyncNow drivers do not
	// advance the schedule.
	Faults *faults.Schedule

	Seed uint64
}

func (c Config) validate(m int) error {
	if c.BatchSize < 1 {
		return fmt.Errorf("cluster: batch size %d", c.BatchSize)
	}
	if c.MaxIters <= 0 && c.MaxTime <= 0 {
		return fmt.Errorf("cluster: no stop condition set")
	}
	if c.StragglerFactor != nil && len(c.StragglerFactor) != m {
		return fmt.Errorf("cluster: straggler factors %d != workers %d", len(c.StragglerFactor), m)
	}
	if c.ComputeWorkers < 0 {
		return fmt.Errorf("cluster: compute workers %d < 0", c.ComputeWorkers)
	}
	if c.BlockMomentum != 0 && c.Strategy != FullAveraging {
		return fmt.Errorf("cluster: block momentum requires FullAveraging, got %s", c.Strategy)
	}
	if err := c.Opt.Validate(); err != nil {
		return err
	}
	if !c.Opt.IsZero() && (c.Momentum != 0 || c.WeightDecay != 0) {
		return fmt.Errorf("cluster: set either Opt or the legacy Momentum/WeightDecay fields, not both")
	}
	if c.Opt.SyncedMoments && c.Strategy == ElasticAveraging {
		// Elastic averaging has no averaging step to ship the moment
		// through: the alpha/beta center pull is not a mean, so a synced
		// second moment would need its own center dynamics. Rejected rather
		// than silently approximated.
		return fmt.Errorf("cluster: synced Adam moments require an averaging strategy (full or gossip); elastic's center pull is not an average")
	}
	if math.IsNaN(c.GlobalMomentum) || c.GlobalMomentum < 0 || c.GlobalMomentum >= 1 {
		return fmt.Errorf("cluster: global momentum %v outside [0,1)", c.GlobalMomentum)
	}
	if c.GlobalMomentum != 0 && c.BlockMomentum != 0 {
		return fmt.Errorf("cluster: BlockMomentum and GlobalMomentum are the same buffer; set one")
	}
	if c.GlobalLR != 0 {
		if c.GlobalMomentum == 0 {
			return fmt.Errorf("cluster: GlobalLR %g requires GlobalMomentum", c.GlobalLR)
		}
		if err := checkMixCoeff("global momentum lr", c.GlobalLR); err != nil {
			return err
		}
	}
	if c.Strategy == ElasticAveraging {
		// Like delaymodel.CheckLinks, degenerate coefficients are rejected
		// instead of silently replaced: a negative or NaN pull strength
		// would quietly train a different algorithm. Zero stays legal and
		// keeps the 0.5 default.
		if err := checkMixCoeff("elastic alpha", c.ElasticAlpha); err != nil {
			return err
		}
		if err := checkMixCoeff("elastic beta", c.ElasticBeta); err != nil {
			return err
		}
	}
	if c.GossipGamma != 0 {
		if c.Strategy != RingGossip || !c.Compress.Enabled() {
			return fmt.Errorf("cluster: gossip gamma %g requires RingGossip with compression", c.GossipGamma)
		}
		if math.IsNaN(c.GossipGamma) || c.GossipGamma < 0 || c.GossipGamma > 1 {
			return fmt.Errorf("cluster: gossip gamma %v out of (0,1]", c.GossipGamma)
		}
	}
	if c.AdaptGossipGamma {
		if c.Strategy != RingGossip || !c.Compress.Enabled() {
			return fmt.Errorf("cluster: adaptive gossip gamma requires RingGossip with compression")
		}
		if c.GossipGamma != 0 {
			return fmt.Errorf("cluster: adaptive gossip gamma excludes an explicit GossipGamma (%g)", c.GossipGamma)
		}
	}
	if c.Compress.Enabled() {
		if err := c.Compress.Validate(); err != nil {
			return err
		}
	}
	if c.Topology.IsGraph() {
		if c.Strategy != RingGossip {
			return fmt.Errorf("cluster: gossip graph topology %s requires RingGossip, got %s", c.Topology, c.Strategy)
		}
	} else if c.Topology != comm.AllGather && c.Strategy != FullAveraging {
		return fmt.Errorf("cluster: topology %s requires FullAveraging, got %s", c.Topology, c.Strategy)
	}
	return nil
}

// checkMixCoeff rejects degenerate mixing coefficients: NaN, infinite,
// negative, or above 1 — a pull strength past 1 overshoots its target, so
// it would quietly train a different (possibly divergent) algorithm, the
// same reason GossipGamma is bounded to (0,1]. Zero is legal and means
// "use the default".
func checkMixCoeff(name string, v float64) error {
	if math.IsNaN(v) || v < 0 || v > 1 {
		return fmt.Errorf("cluster: %s %v out of [0,1] (0 uses the default)", name, v)
	}
	return nil
}

// optConfig maps the configured update rule onto internal/opt: Opt when
// set, else the legacy Momentum/WeightDecay heavy-ball shorthand (which
// internal/opt reproduces bit for bit).
func (c Config) optConfig() opt.Config {
	if !c.Opt.IsZero() {
		return c.Opt
	}
	oc := opt.Config{WeightDecay: c.WeightDecay}
	if c.Momentum != 0 {
		oc.Rule = opt.RuleMomentum
		oc.Momentum = c.Momentum
	}
	return oc
}

// RoundInfo is the engine state visible to a Controller before each round.
type RoundInfo struct {
	Round    int     // completed averaging rounds
	Iter     int     // completed local iterations (per worker)
	Time     float64 // simulated wall-clock seconds
	Epoch    int     // completed passes over each worker's shard
	LastTau  int     // tau used in the previous round (0 before first)
	LastLR   float64 // learning rate used in the previous round
	LastLoss float64 // most recent evaluated training loss (NaN if none)

	// Observed timing, populated by the engine (all zero before the first
	// round). CommTime and ComputeTime split Time into the cumulative
	// simulated wall-clock spent on synchronization versus local compute;
	// LastCommTime is the previous round's synchronization delay alone.
	// Their ratio is the controller-visible estimate of the paper's runtime
	// term alpha = E[D]/E[Y], which link-aware controllers consume.
	CommTime     float64
	ComputeTime  float64
	LastCommTime float64

	// GradNorm is the l2 norm of worker 0's most recent mini-batch gradient
	// (zero before the first round; under churn it may reflect a frozen
	// worker). Controllers that drive the QSGD bit-width from gradient-norm
	// decay (compress.NormDecayBits) consume it; reading it costs no RNG
	// and does not perturb any trajectory.
	GradNorm float64

	// LinkTimes[i] is worker i's own transfer time in the previous round's
	// schedule (delaymodel.SampleDScheduleInto: link latency times the
	// topology's hops plus wire bytes over the link's bandwidth, before the
	// model's scale factor) — which link gated the round and by how much.
	// Under per-edge pricing (delaymodel.Model.EdgeLinks on a gossip graph)
	// it is instead worker i's slowest ACTIVE outgoing edge. The slice is
	// engine-owned and overwritten every round; controllers must not retain
	// or mutate it. Nil before the first round.
	LinkTimes []float64
}

// Controller chooses the communication period and learning rate for the
// next round. evalLoss evaluates the current synchronized model's training
// loss on demand (it is relatively expensive; AdaComm calls it once per
// wall-clock interval).
type Controller interface {
	NextRound(info RoundInfo, evalLoss func() float64) (tau int, lr float64)
	Name() string
}

// RatioController is optionally implemented by controllers that adapt the
// compression keep-ratio jointly with tau (e.g. core.AdaCommCompress). When
// the controller implements it, the engine retunes every adaptive
// compressor to CompressionRatio() before each round.
type RatioController interface {
	Controller
	CompressionRatio() float64
}

// FixedTau is the baseline controller: constant communication period with a
// learning rate drawn from an epoch-indexed schedule. FixedTau{Tau: 1}
// is fully synchronous SGD.
type FixedTau struct {
	Tau      int
	Schedule sgd.Schedule
}

// NextRound implements Controller.
func (f FixedTau) NextRound(info RoundInfo, _ func() float64) (int, float64) {
	return f.Tau, f.Schedule.LR(info.Epoch)
}

// Name implements Controller.
func (f FixedTau) Name() string { return fmt.Sprintf("tau=%d", f.Tau) }

// worker is one simulated node.
type worker struct {
	model   *nn.Network
	sampler *data.Sampler
	opt     opt.Optimizer
	sync    [][]float64 // the optimizer's SyncAverage vectors (live views)
	grad    []float64
}

// Engine runs PASGD over m workers.
type Engine struct {
	workers []*worker
	m       int
	dim     int
	pool    int // resolved compute-pool width (<=1 means serial)

	global []float64 // synchronized model parameters

	// Optimizer-layer state. optCfg is the effective per-worker rule
	// (Config.Opt, or the legacy Momentum/WeightDecay mapped onto it);
	// optReset caches whether it carries SyncReset-policy state (the
	// reset-at-averaging gate, equivalent to the legacy Momentum != 0
	// check); optSteps counts the local steps a continuously-active worker
	// has taken (the Adam second-moment clock rejoin reconciliation
	// re-derives). gmom is the shared global-momentum buffer of
	// FullAveraging (BlockMomentum or GlobalMomentum — same arithmetic);
	// gmoms are the per-node buffers of the gossip/elastic strategies.
	optCfg   opt.Config
	optReset bool
	optSteps int
	gmom     *opt.Global
	gmoms    []*opt.Global

	// Wire-visible synced optimizer state (Opt.SyncedMoments): every
	// averaged payload is extended from dim to xdim = dim + syncedLen,
	// with extGlobal = [global | globalSync] the extended reference and
	// extWork per-worker extended rows (load/storeExt marshal a worker's
	// params + SyncAverage vectors through them). All averaging scratch
	// (sumBuf, avgBuf, deltaBuf, mixBuf, ringSnap, CHOCO estimates,
	// reconBuf) is sized xdim, so the state rides the same compression,
	// payload accounting, and float32 wire narrowing as the parameters.
	// Without synced moments xdim == dim and every path is bit-identical
	// to the pre-optimizer-layer engine.
	xdim       int
	ext        bool
	extGlobal  []float64
	globalSync []float64
	extWork    [][]float64

	delay *delaymodel.Model
	slow  []float64 // per-worker compute slowdown factors
	r     *rng.Rand // delay sampling stream

	// Communication state: every model exchange routes through com
	// (internal/comm), and lastReport is the most recent round's transfer
	// schedule, charged by roundTime. latHops/bytesFactor are the
	// configured topology's schedule multipliers, fixed at construction.
	com         comm.Communicator
	lastReport  comm.Report
	latHops     float64
	bytesFactor float64
	linkTimes   []float64 // per-worker transfer times of the last round

	// Compression state: comps[i] is worker i's compressor (owning its
	// error-feedback residual and stochastic stream); nil when the legacy
	// raw-vector path is active.
	comps    []compress.Compressor
	deltaBuf []float64
	sumBuf   []float64
	msgBuf   []compress.Message
	avgBuf   []float64 // averaging / post-mix scratch, reused every round

	// Strategy scratch, engine-owned and reused every sync per the PR-4
	// arena convention (steady-state rounds allocate nothing): ringSnap
	// freezes the pre-mix replicas on the raw gossip path, meanVecs feeds
	// the replica-mean refresh, pullBuf accumulates elastic's center
	// displacement, repBytes backs the strategies' per-sync transfer
	// reports, and denseRep is the constant raw-gossip schedule. gossip is
	// the CHOCO-SGD estimate state of compressed ring gossip.
	ringSnap [][]float64
	snapBack []float64
	meanVecs [][]float64
	pullBuf  []float64
	repBytes []int
	denseRep comm.Report
	gossip   *gossipState

	// Gossip mixing graphs (nil unless Strategy is RingGossip): gseq is the
	// (possibly time-varying) graph sequence — the default ring when
	// Topology is not a graph — syncs counts completed gossip
	// synchronizations (advancing the active graph), activeAdj is the
	// adjacency of the most recent sync's graph (what the per-edge delay
	// pricing charges; nil before the first sync and on non-gossip
	// strategies, delegating to the per-worker path bit-identically),
	// gammas holds the per-graph adaptive consensus steps when
	// AdaptGossipGamma is set, and mixBuf is the CHOCO mix scratch.
	gseq      *graph.Sequence
	syncs     int
	activeAdj [][]int
	gammas    []float64
	mixBuf    []float64

	evalModel *nn.Network // scratch replica for loss/accuracy evaluation
	evalSet   *data.Dataset
	testSet   *data.Dataset
	evalBatch data.Batch
	testBatch data.Batch

	// Fault/membership state, allocated only when cfg.Faults.Enabled()
	// (fltActive == nil is the fault-free sentinel every hot-path branch
	// tests, so the legacy paths stay untouched and allocation-free):
	// fltActive/fltDown are the round's membership view and its inverse
	// (the delay model's mask convention), fltNActive its size, fltScale
	// the per-worker transfer multipliers (slow-down episodes times drop
	// retries), reconBytes the rejoin-reconcile payloads charged into the
	// round's schedule, fltBytesBuf the schedule-bytes scratch that adds
	// them in, reconBuf the reconcile delta scratch, and zeroRep the
	// all-down round's empty transfer report. subGraph caches the induced
	// active subgraph of the current gossip graph (re-derived only when
	// the graph index or membership changes — subForIdx/subActive are the
	// cache key) and subGamma its re-adapted consensus step.
	fltActive   []bool
	fltDown     []bool
	fltNActive  int
	fltScale    []float64
	reconBytes  []int
	fltBytesBuf []int
	reconBuf    []float64
	zeroRep     comm.Report
	subGraph    *graph.Graph
	subForIdx   int
	subActive   []bool
	subGamma    float64

	// Previous round's membership view of the shared global-momentum
	// buffer (allocated only with faults AND gmom): the buffered
	// dispersion was accumulated over gmomPrev's population, so a
	// membership change renormalizes it by the surviving fraction
	// |A_t ∩ A_prev| / |A_prev| before it is mixed again (beginRound).
	gmomPrev  []bool
	gmomPrevN int

	cfg Config
}

// New builds an engine: the prototype network is cloned per worker (plus
// one evaluation replica), the training set is the union of the shards
// (used for loss evaluation), and the test set may be nil.
func New(proto *nn.Network, shards []*data.Dataset, trainEval, test *data.Dataset,
	dm *delaymodel.Model, cfg Config) (*Engine, error) {
	m := len(shards)
	if m == 0 {
		return nil, fmt.Errorf("cluster: no shards")
	}
	if dm.M != m {
		return nil, fmt.Errorf("cluster: delay model has %d workers, got %d shards", dm.M, m)
	}
	if err := cfg.validate(m); err != nil {
		return nil, err
	}
	if err := dm.CheckLinks(); err != nil {
		return nil, err
	}
	if err := dm.CheckEdgeLinks(); err != nil {
		return nil, err
	}
	if dm.EdgeLinks != nil && cfg.Strategy != RingGossip {
		return nil, fmt.Errorf("cluster: per-edge links price gossip graph rounds and require RingGossip, got %s", cfg.Strategy)
	}
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = 100
	}
	if cfg.Strategy == ElasticAveraging {
		// validate already rejected negative/NaN coefficients; only the
		// zero value reaches the defaulting, bit-identical to before.
		if cfg.ElasticAlpha == 0 {
			cfg.ElasticAlpha = 0.5
		}
		if cfg.ElasticBeta == 0 {
			cfg.ElasticBeta = 0.5
		}
	}
	if cfg.Strategy == RingGossip && cfg.Compress.Enabled() && cfg.GossipGamma == 0 && !cfg.AdaptGossipGamma {
		cfg.GossipGamma = 1
	}
	root := rng.New(cfg.Seed)
	e := &Engine{
		m:         m,
		dim:       proto.ParamLen(),
		global:    append([]float64(nil), proto.Params()...),
		delay:     dm,
		r:         root.Split(),
		evalModel: proto.Clone(),
		evalSet:   trainEval,
		testSet:   test,
		cfg:       cfg,
	}
	e.slow = cfg.StragglerFactor
	if e.slow == nil {
		e.slow = make([]float64, m)
		for i := range e.slow {
			e.slow[i] = 1
		}
	}
	// Per-worker compute jitter (delaymodel.Model.Jitter) composes with the
	// configured straggler factors; a nil Jitter draws nothing, keeping
	// every legacy trace bit-identical. Copy before scaling — e.slow may
	// alias the caller's StragglerFactor slice.
	if jit, err := dm.JitterScales(); err != nil {
		return nil, err
	} else if jit != nil {
		scaled := make([]float64, m)
		for i := range scaled {
			scaled[i] = e.slow[i] * jit[i]
		}
		e.slow = scaled
	}
	// Global momentum: FullAveraging keeps one shared buffer on the
	// reference model (BlockMomentum and GlobalMomentum are the same
	// arithmetic); gossip and elastic keep one buffer per node. None of
	// this consumes RNG.
	if gBeta := cfg.BlockMomentum + cfg.GlobalMomentum; gBeta != 0 {
		if cfg.Strategy == FullAveraging {
			e.gmom = opt.NewGlobal(gBeta, cfg.GlobalLR, e.dim)
		} else {
			e.gmoms = make([]*opt.Global, m)
			for i := range e.gmoms {
				e.gmoms[i] = opt.NewGlobal(gBeta, cfg.GlobalLR, e.dim)
			}
		}
	}
	e.optCfg = cfg.optConfig()
	for i := 0; i < m; i++ {
		w := &worker{
			model:   proto.Clone(),
			sampler: data.NewSampler(shards[i], cfg.BatchSize, root.Split()),
			opt:     opt.New(e.optCfg, proto.ParamLen()),
			grad:    make([]float64, proto.ParamLen()),
		}
		w.sync = opt.SyncedVecs(w.opt)
		e.workers = append(e.workers, w)
	}
	e.optReset = opt.HasResetState(e.workers[0].opt)
	// Wire-visible synced state extends every averaged payload: xdim is
	// the extended vector length all averaging scratch below is sized to
	// (== dim without synced moments, leaving every legacy path untouched).
	e.xdim = e.dim + opt.SyncedLen(e.workers[0].opt)
	if e.xdim > e.dim {
		e.ext = true
		e.extGlobal = make([]float64, e.xdim)
		copy(e.extGlobal, e.global)
		e.global = e.extGlobal[:e.dim]
		e.globalSync = e.extGlobal[e.dim:]
		back := make([]float64, m*e.xdim)
		e.extWork = make([][]float64, m)
		for i := range e.extWork {
			e.extWork[i] = back[i*e.xdim : (i+1)*e.xdim]
		}
	}
	// Evaluation subsets are fixed once so the loss curve is comparable
	// across the whole run.
	evalDS := trainEval
	if cfg.EvalSubset > 0 && cfg.EvalSubset < trainEval.N() {
		idx := root.Split().Perm(trainEval.N())[:cfg.EvalSubset]
		evalDS = trainEval.Subset(idx)
	}
	e.evalBatch = data.FullBatch(evalDS)
	if test != nil {
		e.testBatch = data.FullBatch(test)
	}
	// A round's transfer schedule defaults to the dense model on every
	// link; averaging overwrites it per round. The communicator owns no RNG
	// and the compressor construction comes last, so the None path consumes
	// exactly the legacy RNG stream.
	e.com = comm.New(cfg.Topology, m)
	e.latHops = cfg.Topology.LatencyHops(m)
	e.bytesFactor = cfg.Topology.BytesFactor(m)
	e.lastReport = comm.DenseReport(m, e.xdim)
	if cfg.Compress.Enabled() {
		// Before the first synchronization the schedule reflects the spec's
		// data-independent wire size (e.g. a float32 wire halves it); each
		// averaging overwrites it with the observed payload.
		for i := range e.lastReport.Bytes {
			e.lastReport.Bytes[i] = cfg.Compress.WireBytes(e.xdim)
		}
		e.lastReport.Max = cfg.Compress.WireBytes(e.xdim)
	}
	e.linkTimes = make([]float64, m)
	e.sumBuf = make([]float64, e.xdim)
	e.msgBuf = make([]compress.Message, m)
	e.avgBuf = make([]float64, e.xdim)
	e.pool = cfg.ComputeWorkers
	if e.pool == 0 {
		e.pool = runtime.GOMAXPROCS(0)
	}
	if e.pool > m {
		e.pool = m
	}
	if cfg.Compress.Enabled() {
		e.comps = make([]compress.Compressor, m)
		for i := range e.comps {
			c, err := cfg.Compress.New(root.Split())
			if err != nil {
				return nil, err
			}
			e.comps[i] = c
		}
		e.deltaBuf = make([]float64, e.xdim)
	}
	switch cfg.Strategy {
	case RingGossip:
		// The mixing graph sequence: the default ring graph's rows carry
		// the exact legacy accumulation order ([prev, self, next], summed
		// then divided once), so the zero-value Topology reproduces the
		// hard-coded ring gossip bit for bit.
		if cfg.Topology.IsGraph() {
			seq, err := cfg.Topology.Graphs(m)
			if err != nil {
				return nil, err
			}
			e.gseq = seq
		} else {
			e.gseq = graph.Static(graph.Ring(m))
		}
		if cfg.AdaptGossipGamma {
			e.gammas = make([]float64, e.gseq.Len())
			for i := range e.gammas {
				e.gammas[i] = graph.AdaptiveGamma(e.gseq.Graph(i).SpectralGap())
			}
		}
		e.meanVecs = make([][]float64, m)
		if e.comps == nil {
			e.snapBack = make([]float64, m*e.xdim)
			e.ringSnap = make([][]float64, m)
			for i := range e.ringSnap {
				e.ringSnap[i] = e.snapBack[i*e.xdim : (i+1)*e.xdim]
			}
			e.denseRep = comm.DenseReport(m, e.xdim)
		} else {
			// Lossless specs (identity kind on a float64 wire; an
			// error-feedback wrap keeps a residual of exactly zero) let
			// the CHOCO protocol ship the parameters themselves and pin
			// the estimates exactly; see averageRingChoco. A float32 wire
			// is lossy, so it takes the general estimate-delta path.
			e.repBytes = make([]int, m)
			e.mixBuf = make([]float64, e.xdim)
			init := e.global
			if e.ext {
				init = e.extGlobal // CHOCO estimates cover the synced state
			}
			e.gossip = newGossipState(m, init, cfg.GossipGamma,
				cfg.Compress.Lossless())
			for i := range e.gossip.nodes {
				e.gossip.nodes[i] = e.workers[i].model
			}
		}
	case ElasticAveraging:
		e.pullBuf = make([]float64, e.dim)
		e.repBytes = make([]int, m)
	}
	// Fault state comes after every RNG-consuming allocation and draws
	// nothing itself: the schedule is a pure function of (Seed, round), so
	// attaching one cannot shift any existing stream. fltActive non-nil is
	// the sentinel the hot paths test.
	if cfg.Faults.Enabled() {
		if err := cfg.Faults.Validate(m); err != nil {
			return nil, err
		}
		e.fltActive = make([]bool, m)
		for i := range e.fltActive {
			e.fltActive[i] = true
		}
		e.fltDown = make([]bool, m)
		e.fltNActive = m
		e.fltScale = make([]float64, m)
		e.reconBytes = make([]int, m)
		e.fltBytesBuf = make([]int, m)
		e.reconBuf = make([]float64, e.xdim)
		e.zeroRep = comm.Report{Bytes: make([]int, m)}
		e.subForIdx = -1
		e.subActive = make([]bool, m)
		if e.gmom != nil {
			e.gmomPrev = make([]bool, m)
			for i := range e.gmomPrev {
				e.gmomPrev[i] = true
			}
			e.gmomPrevN = m
		}
	}
	return e, nil
}

// Dim returns the model parameter count.
func (e *Engine) Dim() int { return e.dim }

// Workers returns the number of workers m.
func (e *Engine) Workers() int { return e.m }

// GlobalParams returns a copy of the current synchronized parameters.
func (e *Engine) GlobalParams() []float64 {
	return append([]float64(nil), e.global...)
}

// TrainLoss evaluates the training loss of the synchronized model on the
// evaluation subset.
func (e *Engine) TrainLoss() float64 {
	e.evalModel.SetParams(e.global)
	return e.evalModel.Loss(e.evalBatch)
}

// TestAccuracy evaluates test accuracy of the synchronized model; NaN when
// no test set was provided.
func (e *Engine) TestAccuracy() float64 {
	if e.testSet == nil {
		return math.NaN()
	}
	e.evalModel.SetParams(e.global)
	return e.evalModel.Accuracy(e.testBatch)
}

// roundTime samples the wall-clock duration of a round of `steps` local
// iterations followed by one synchronization, honoring per-worker straggler
// factors: compute is max_i slow_i * sum_k Y, comm is D. The synchronization
// is charged the size-aware cost of the round's transfer schedule —
// per-worker wire bytes from the communicator, scaled by the topology's hop
// multipliers and priced on each worker's own link when the delay model is
// heterogeneous — and the per-worker transfer times land in e.linkTimes for
// the next RoundInfo. When per-edge links are configured (Model.EdgeLinks)
// and a gossip graph is active (e.activeAdj, published by the sync just
// performed), each transfer is priced on its actual edges instead and the
// slowest ACTIVE edge gates the round; with either absent the call delegates
// to the per-worker path bit for bit. On a homogeneous infinite-bandwidth
// all-gather comm is the paper's fixed D.
func (e *Engine) roundTime(steps int) (compute, comm float64) {
	mx := math.Inf(-1)
	for i := 0; i < e.m; i++ {
		sum := 0.0
		for k := 0; k < steps; k++ {
			sum += e.delay.Y.Sample(e.r)
		}
		// Down workers' compute draws still happen (stream alignment: the
		// round consumes the same RNG regardless of membership) but do not
		// gate the round.
		if e.fltDown != nil && e.fltDown[i] {
			continue
		}
		if v := e.slow[i] * sum; v > mx {
			mx = v
		}
	}
	if math.IsInf(mx, -1) {
		mx = 0 // every worker down: the round is pure waiting
	}
	if e.fltActive == nil {
		comm = e.delay.SampleDEdgeScheduleInto(e.r, e.lastReport.Bytes, e.activeAdj, e.latHops, e.bytesFactor, e.linkTimes)
		return mx, comm
	}
	// Fault path: rejoin-reconcile payloads ride the round's schedule, down
	// workers ship nothing, and slow-down/drop-retry factors multiply the
	// survivors' transfers.
	for i := range e.fltBytesBuf {
		e.fltBytesBuf[i] = e.lastReport.Bytes[i] + e.reconBytes[i]
	}
	comm = e.delay.SampleDEdgeScheduleFaultyInto(e.r, e.fltBytesBuf, e.activeAdj, e.latHops, e.bytesFactor, e.fltDown, e.fltScale, e.linkTimes)
	return mx, comm
}

// advanceClock charges the round's sampled compute and communication time to
// the engine state shared by Run and RunParallel, keeping info.Time's
// floating-point accumulation identical to the pre-timing-fields engine
// (compute + comm summed first, then added).
func advanceClock(info *RoundInfo, e *Engine, steps int) {
	compute, comm := e.roundTime(steps)
	info.Time += compute + comm
	info.ComputeTime += compute
	info.CommTime += comm
	info.LastCommTime = comm
	info.LinkTimes = e.linkTimes
}

// CommBytesPerRound returns the per-link payload charged for the most
// recent synchronization (the round's largest message).
func (e *Engine) CommBytesPerRound() int { return e.lastReport.Max }

// setCompressionRatio retunes every adaptive compressor to the given
// keep-ratio (no-op on the legacy path or for fixed-rate compressors).
func (e *Engine) setCompressionRatio(r float64) {
	for _, c := range e.comps {
		if a, ok := c.(compress.Adaptive); ok {
			a.SetRatio(r)
		}
	}
}

// BitsController is optionally implemented by controllers that drive the
// QSGD quantization bit-width from observed gradient-norm decay
// (compress.NormDecayBits). A non-positive QuantBits leaves every
// compressor untouched.
type BitsController interface {
	Controller
	QuantBits() int
}

// setCompressionBits retunes every bit-width-capable compressor (QSGD,
// possibly wrapped in error feedback or a float32 wire) to b bits.
func (e *Engine) setCompressionBits(b int) {
	if b <= 0 {
		return
	}
	for _, c := range e.comps {
		if q, ok := c.(compress.BitSetter); ok {
			q.SetBits(b)
		}
	}
}

// runSteps advances one worker by `steps` local SGD iterations at lr. All
// state it touches — replica, sampler stream, optimizer, gradient buffer —
// is owned by this worker, which is what makes the fan-out below safe AND
// bit-identical: no execution schedule can change any worker's arithmetic.
func (w *worker) runSteps(steps int, lr float64) {
	w.opt.SetLR(lr)
	for k := 0; k < steps; k++ {
		b := w.sampler.Next()
		w.model.LossGrad(b, w.grad)
		w.opt.Step(w.model.Params(), w.grad)
	}
}

// localUpdates advances every worker by `steps` local iterations at lr,
// fanning the per-worker update loops across the bounded compute pool
// (Config.ComputeWorkers). Workers do not interact between averaging
// points, so the result is bit-identical to the serial loop regardless of
// pool width or scheduling; the averaging that follows always reduces in
// fixed worker order.
func (e *Engine) localUpdates(steps int, lr float64) {
	par.ForEach(e.m, e.pool, func(i int) {
		if e.fltActive != nil && !e.fltActive[i] {
			return // down workers freeze: no steps, no sampler draws
		}
		e.workers[i].runSteps(steps, lr)
	})
}

// loadExt marshals worker i's parameters followed by its SyncAverage
// optimizer vectors into the worker's extended row and returns it. Only
// called in ext mode (Opt.SyncedMoments).
func (e *Engine) loadExt(i int) []float64 {
	w := e.workers[i]
	row := e.extWork[i]
	copy(row[:e.dim], w.model.Params())
	off := e.dim
	for _, v := range w.sync {
		copy(row[off:off+len(v)], v)
		off += len(v)
	}
	return row
}

// storeExt unmarshals an extended row back into worker i's replica and
// SyncAverage optimizer vectors.
func (e *Engine) storeExt(i int, row []float64) {
	w := e.workers[i]
	w.model.SetParams(row[:e.dim])
	off := e.dim
	for _, v := range w.sync {
		copy(v, row[off:off+len(v)])
		off += len(v)
	}
}

// resetWorkerOpt applies the reset-at-averaging discipline: local
// SyncReset-policy state (heavy-ball buffers, Adam first moments) restarts
// whenever the rule carries any, or when a global-momentum buffer filters
// the sync (paper Sec 5.3.1 / SlowMo practice). Equivalent to the legacy
// Momentum/BlockMomentum gates for the legacy rules.
func (e *Engine) resetWorkerOpt(w *worker) {
	if e.optReset || e.gmom != nil || e.gmoms != nil {
		w.opt.SyncReset()
	}
}

// average synchronizes the replicas according to the configured strategy
// and refreshes e.global (the model that evaluation and AdaComm observe).
func (e *Engine) average() {
	if e.fltActive != nil && e.fltNActive == 0 {
		// Every worker is down: nothing is exchanged, the global model and
		// all replicas stand, and the gossip sequence does not advance (no
		// synchronization happened).
		e.lastReport = e.zeroRep
		return
	}
	switch e.cfg.Strategy {
	case RingGossip:
		e.averageRing()
		return
	case ElasticAveraging:
		e.averageElastic()
		return
	}
	e.averageFull()
}

// averageFull is PASGD's simple averaging (paper eq 3): global <- mean of
// worker models (optionally block-momentum filtered), pushed back into
// every replica. With compression active, the mean is computed from
// compressed per-worker deltas instead of raw vectors.
func (e *Engine) averageFull() {
	avg := e.avgBuf
	if e.comps != nil {
		e.compressedDeltaMean(avg)
	} else {
		// Raw path: each worker contributes its dense parameter vector as a
		// lossless wire message (extended with its synced optimizer state in
		// ext mode); the communicator sums them in worker order, which keeps
		// the arithmetic bit-identical to the pre-comm-layer tensor.Mean.
		// Under faults the communicator skips inactive contributions and the
		// mean renormalizes over the survivors.
		for i, w := range e.workers {
			vec := w.model.Params()
			if e.ext {
				vec = e.loadExt(i)
			}
			e.msgBuf[i] = compress.Message{Dim: e.xdim, Enc: compress.EncDense, Dense: vec}
		}
		rep, err := e.com.AllReduce(e.msgBuf, e.sumBuf)
		if err != nil {
			panic(fmt.Sprintf("cluster: all-reduce: %v", err))
		}
		e.lastReport = rep
		inv := 1 / float64(e.m)
		if e.fltActive != nil {
			inv = 1 / float64(e.fltNActive)
		}
		for j := range avg {
			avg[j] = e.sumBuf[j] * inv
		}
	}

	if e.gmom != nil {
		// Displacement-form global momentum (paper eq 24-25 / SlowMo):
		// treat the round's aggregate movement as one big gradient step and
		// filter it with the shared buffer. lr is already folded into the
		// displacement, matching eq 25 with the round's eta; only the
		// parameter block is filtered — synced optimizer state is averaged,
		// not momentum-extrapolated.
		e.gmom.Apply(e.global, avg[:e.dim], e.global)
	} else {
		copy(e.global, avg[:e.dim])
	}
	if e.ext {
		copy(e.globalSync, avg[e.dim:])
	}

	for i, w := range e.workers {
		if e.fltActive != nil && !e.fltActive[i] {
			continue // down replicas keep their stale state until rejoin
		}
		w.model.SetParams(e.global)
		if e.ext {
			off := 0
			for _, v := range w.sync {
				copy(v, e.globalSync[off:off+len(v)])
				off += len(v)
			}
		}
		// Restart local SyncReset state after averaging so the stale local
		// buffer cannot side-track the first post-sync step (Sec 5.3.1).
		e.resetWorkerOpt(w)
	}
}

// compressedDeltaMean runs the compressed all-reduce: each worker's delta
// from the last synchronized model is compressed (through its error-feedback
// residual if configured) and the messages are aggregated by the
// communicator's sparse index-merge — O(k*m) instead of the O(dim*m) a
// decompress-to-dense loop would pay. avg receives x_glob +
// mean(delta_hat_i). Compression happens in fixed worker order on the
// engine's own streams, which is why Run and RunParallel stay bitwise
// identical under every compressor.
func (e *Engine) compressedDeltaMean(avg []float64) {
	for i, w := range e.workers {
		if e.fltActive != nil && !e.fltActive[i] {
			// Down workers contribute nothing and their compressor state
			// (error-feedback residual, stochastic stream) freezes with them.
			e.msgBuf[i] = compress.Message{}
			continue
		}
		if e.ext {
			tensor.Sub(e.deltaBuf, e.loadExt(i), e.extGlobal)
		} else {
			tensor.Sub(e.deltaBuf, w.model.Params(), e.global)
		}
		msg, err := e.comps[i].Compress(e.deltaBuf)
		if err != nil {
			panic(fmt.Sprintf("cluster: worker %d compress: %v", i, err))
		}
		e.msgBuf[i] = msg
	}
	rep, err := e.com.AllReduce(e.msgBuf, e.sumBuf)
	if err != nil {
		panic(fmt.Sprintf("cluster: all-reduce: %v", err))
	}
	e.lastReport = rep
	inv := 1 / float64(e.m)
	if e.fltActive != nil {
		inv = 1 / float64(e.fltNActive)
	}
	base := e.global
	if e.ext {
		base = e.extGlobal
	}
	for j := range avg {
		avg[j] = base[j] + e.sumBuf[j]*inv
	}
}

// Run executes PASGD under the given controller until a stop condition is
// reached and returns the training trace. Deterministic given cfg.Seed.
func (e *Engine) Run(ctrl Controller, traceName string) *metrics.Trace {
	trace := metrics.NewTrace(traceName)
	info := RoundInfo{LastLoss: math.NaN()}
	nextEval := 0 // record once iter crosses this threshold

	evalLoss := func() float64 { return e.TrainLoss() }

	record := func(tau int, lr float64) {
		loss := e.TrainLoss()
		acc := math.NaN()
		if e.cfg.AccEverySync > 0 && e.testSet != nil && info.Round%e.cfg.AccEverySync == 0 {
			acc = e.TestAccuracy()
		}
		info.LastLoss = loss
		trace.Add(metrics.Point{
			Time: info.Time, Iter: info.Iter, Loss: loss, Acc: acc, Tau: tau, LR: lr,
		})
	}

	// Record the starting point.
	record(0, 0)
	nextEval = e.cfg.EvalEvery

	for {
		if e.cfg.MaxIters > 0 && info.Iter >= e.cfg.MaxIters {
			break
		}
		if e.cfg.MaxTime > 0 && info.Time >= e.cfg.MaxTime {
			break
		}
		tau, lr := ctrl.NextRound(info, evalLoss)
		if tau < 1 {
			panic(fmt.Sprintf("cluster: controller %s returned tau=%d", ctrl.Name(), tau))
		}
		if rc, ok := ctrl.(RatioController); ok {
			e.setCompressionRatio(rc.CompressionRatio())
		}
		if bc, ok := ctrl.(BitsController); ok {
			e.setCompressionBits(bc.QuantBits())
		}
		// Trim the round to the iteration budget so runs are comparable.
		steps := tau
		if e.cfg.MaxIters > 0 {
			if rem := e.cfg.MaxIters - info.Iter; rem < steps {
				steps = rem
			}
		}

		e.beginRound(info.Round)
		e.localUpdates(steps, lr)
		e.optSteps += steps
		info.Iter += steps
		info.GradNorm = tensor.Norm2(e.workers[0].grad)
		// Averaging precedes the clock update so roundTime can charge this
		// round's (possibly compressed) broadcast payload. Neither step
		// draws from the other's RNG stream, so the order swap leaves
		// legacy traces untouched.
		e.average()
		advanceClock(&info, e, steps)
		info.Round++
		info.Epoch = e.workers[0].sampler.Epoch()
		info.LastTau = tau
		info.LastLR = lr

		if info.Iter >= nextEval {
			record(tau, lr)
			for nextEval <= info.Iter {
				nextEval += e.cfg.EvalEvery
			}
		}
	}
	// Always record the final state.
	record(info.LastTau, info.LastLR)
	return trace
}

// StepLocal advances every worker by k local SGD steps at the given
// learning rate WITHOUT averaging, and returns the number of local
// iterations performed. It is the low-level hook used by experiment
// drivers (e.g. the Fig 14 local-vs-synchronized accuracy probe) that need
// to inspect unsynchronized replicas mid-period. Run and RunParallel do not
// share state with this method's iteration accounting.
func (e *Engine) StepLocal(k int, lr float64) int {
	e.localUpdates(k, lr)
	e.optSteps += k
	return k
}

// SyncNow performs one averaging step (including block momentum if
// configured) immediately. Companion to StepLocal for manual drivers.
func (e *Engine) SyncNow() { e.average() }

// LocalModelParams returns a copy of worker i's current (possibly
// unsynchronized) parameters — used by the Fig 14 experiment that compares
// local-model and synchronized-model accuracy.
func (e *Engine) LocalModelParams(i int) []float64 {
	return append([]float64(nil), e.workers[i].model.Params()...)
}

// EvalParamsAccuracy evaluates test accuracy for an arbitrary parameter
// vector (e.g. a local model mid-round).
func (e *Engine) EvalParamsAccuracy(params []float64) float64 {
	if e.testSet == nil {
		return math.NaN()
	}
	e.evalModel.SetParams(params)
	return e.evalModel.Accuracy(e.testBatch)
}

// EvalParamsLoss evaluates training loss for an arbitrary parameter vector.
func (e *Engine) EvalParamsLoss(params []float64) float64 {
	e.evalModel.SetParams(params)
	return e.evalModel.Loss(e.evalBatch)
}
