package cluster

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/compress"
	"repro/internal/data"
	"repro/internal/delaymodel"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/rng"
)

// asyncSetup builds an n-client logistic workload for the event-driven
// engine (same blobs problem as newSetup, sharded wider).
func asyncSetup(t *testing.T, n int) *testSetup {
	t.Helper()
	r := rng.New(100)
	train := data.GaussianBlobs(data.GaussianBlobsConfig{
		Classes: 4, Dim: 10, N: 800, Separation: 4, Noise: 1.2,
	}, r)
	test := data.GaussianBlobs(data.GaussianBlobsConfig{
		Classes: 4, Dim: 10, N: 200, Separation: 4, Noise: 1.2,
	}, r)
	proto := nn.NewLogisticRegression(10, 4)
	proto.InitParams(rng.New(7))
	return &testSetup{
		proto:  proto,
		shards: data.ShardIID(train, n, rng.New(8)),
		train:  train,
		test:   test,
		dm:     delaymodel.New(n, rng.Constant{Value: 1}, rng.Constant{Value: 0.5}, delaymodel.ConstantScaling{}),
	}
}

func baseAsyncCfg() AsyncConfig {
	return AsyncConfig{
		Participation: 4,
		InFlight:      8,
		Tau:           4,
		BatchSize:     16,
		LR:            0.05,
		MaxUpdates:    40,
		EvalEvery:     50,
		Seed:          42,
	}
}

func (s *testSetup) async(t *testing.T, cfg AsyncConfig) *AsyncEngine {
	t.Helper()
	e, err := NewAsync(s.proto, s.shards, s.train, s.test, s.dm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestAsyncValidation(t *testing.T) {
	s := asyncSetup(t, 8)
	cases := []struct {
		name string
		mut  func(*AsyncConfig)
	}{
		{"zero participation", func(c *AsyncConfig) { c.Participation = 0 }},
		{"participation > clients", func(c *AsyncConfig) { c.Participation = 9 }},
		{"in-flight < participation", func(c *AsyncConfig) { c.InFlight = 3 }},
		{"in-flight > clients", func(c *AsyncConfig) { c.InFlight = 9 }},
		{"zero tau", func(c *AsyncConfig) { c.Tau = 0 }},
		{"zero batch", func(c *AsyncConfig) { c.BatchSize = 0 }},
		{"no stop condition", func(c *AsyncConfig) { c.MaxUpdates = 0; c.MaxTime = 0 }},
		{"negative lr", func(c *AsyncConfig) { c.LR = -1 }},
		{"nan server lr", func(c *AsyncConfig) { c.ServerLR = math.NaN() }},
		{"negative staleness pow", func(c *AsyncConfig) { c.StalenessPow = -0.5 }},
		{"negative max staleness", func(c *AsyncConfig) { c.MaxStaleness = -1 }},
		{"straggler length mismatch", func(c *AsyncConfig) { c.StragglerFactor = []float64{1, 2} }},
		{"zero straggler factor", func(c *AsyncConfig) {
			c.StragglerFactor = []float64{1, 1, 1, 1, 1, 1, 1, 0}
		}},
		{"error feedback", func(c *AsyncConfig) {
			c.Compress = compress.Spec{Kind: compress.KindTopK, Ratio: 0.25, ErrorFeedback: true}
		}},
	}
	for _, tc := range cases {
		cfg := baseAsyncCfg()
		tc.mut(&cfg)
		if _, err := NewAsync(s.proto, s.shards, s.train, s.test, s.dm, cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Mismatched delay model.
	badDM := delaymodel.New(3, rng.Constant{Value: 1}, rng.Constant{Value: 1}, nil)
	if _, err := NewAsync(s.proto, s.shards, s.train, s.test, badDM, baseAsyncCfg()); err == nil {
		t.Error("accepted delay model with wrong worker count")
	}
	// Per-edge links price gossip graph rounds, not the async star exchange.
	edgeDM := delaymodel.New(8, rng.Constant{Value: 1}, rng.Constant{Value: 1}, nil)
	edgeDM.EdgeLinks = map[delaymodel.Edge]delaymodel.Link{{From: 0, To: 1}: {Latency: 1}}
	if _, err := NewAsync(s.proto, s.shards, s.train, s.test, edgeDM, baseAsyncCfg()); err == nil {
		t.Error("accepted per-edge links on the async engine")
	}
}

func TestStalenessWeight(t *testing.T) {
	cases := []struct {
		pow  float64
		s    int
		want float64
	}{
		{1, 0, 1}, // fresh: full weight regardless of pow
		{7, 0, 1},
		{0, 9, 1},   // pow 0: unweighted averaging
		{1, 1, 0.5}, // polynomial decay
		{1, 3, 0.25},
		{2, 1, 0.25},
		{0.5, 3, 0.5},
	}
	for _, tc := range cases {
		if got := stalenessWeight(tc.pow, tc.s); math.Abs(got-tc.want) > 1e-15 {
			t.Errorf("stalenessWeight(%v, %d) = %v, want %v", tc.pow, tc.s, got, tc.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("negative staleness did not panic")
		}
	}()
	stalenessWeight(1, -1)
}

// TestAsyncDeterministicAcrossGOMAXPROCS asserts the seeded contract: the
// byte-for-byte event trace and the final parameters are a pure function of
// the seed, independent of scheduler parallelism.
func TestAsyncDeterministicAcrossGOMAXPROCS(t *testing.T) {
	run := func(procs int) (string, uint64, float64) {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		s := asyncSetup(t, 8)
		cfg := baseAsyncCfg()
		cfg.RecordEvents = true
		e := s.async(t, cfg)
		tr := e.Run("det")
		return e.EventTrace(), hashParams(e.GlobalParams()), tr.Last().Loss
	}
	ev1, p1, l1 := run(1)
	ev8, p8, l8 := run(8)
	if ev1 != ev8 {
		t.Fatalf("event traces differ across GOMAXPROCS (len %d vs %d)", len(ev1), len(ev8))
	}
	if p1 != p8 || l1 != l8 {
		t.Fatalf("numerics differ across GOMAXPROCS: params %#x vs %#x, loss %v vs %v", p1, p8, l1, l8)
	}
	if len(ev1) == 0 {
		t.Fatal("empty event trace with RecordEvents set")
	}
}

// TestAsyncGoldenTrace pins the zero-config async run bit-identically, the
// same contract the lock-step golden tests enforce: any change to event
// ordering, RNG consumption, weighting, or accounting shows up here.
func TestAsyncGoldenTrace(t *testing.T) {
	s := asyncSetup(t, 8)
	cfg := baseAsyncCfg()
	cfg.RecordEvents = true
	e := s.async(t, cfg)
	tr := e.Run("golden-async")

	const (
		wantEvents = uint64(0x5fb1b1600e8396cf)
		wantParams = uint64(0xe15a4767cb779e27)
		wantTrace  = uint64(0x11da0677779ad022)
	)
	gotEvents := hashString(e.EventTrace())
	gotParams := hashParams(e.GlobalParams())
	gotTrace := hashTrace(tr)
	if gotEvents != wantEvents || gotParams != wantParams || gotTrace != wantTrace {
		t.Fatalf("golden drift:\n events %#x want %#x\n params %#x want %#x\n trace  %#x want %#x",
			gotEvents, wantEvents, gotParams, wantParams, gotTrace, wantTrace)
	}

	st := e.Stats()
	if st.Updates != cfg.MaxUpdates {
		t.Fatalf("updates %d, want %d", st.Updates, cfg.MaxUpdates)
	}
	if st.Applied < st.Updates*cfg.Participation {
		t.Fatalf("applied %d < updates*K %d", st.Applied, st.Updates*cfg.Participation)
	}
	if st.UpBytes <= 0 || st.DownBytes <= 0 {
		t.Fatalf("payload accounting empty: up %d down %d", st.UpBytes, st.DownBytes)
	}
}

func hashString(s string) uint64 {
	var sum uint64 = 14695981039346656037
	const prime64 = 1099511628211
	for i := 0; i < len(s); i++ {
		sum ^= uint64(s[i])
		sum *= prime64
	}
	return sum
}

// TestAsyncShardingFootprint asserts the client-sharding contract: a large
// population runs with a constant number of materialized replicas and an
// in-flight set bounded by the configured overhang.
func TestAsyncShardingFootprint(t *testing.T) {
	n := 200
	s := asyncSetup(t, n)
	cfg := baseAsyncCfg()
	cfg.Participation = 8
	cfg.InFlight = 16
	cfg.MaxUpdates = 10
	e := s.async(t, cfg)
	e.Run("shard")
	st := e.Stats()
	if st.MaterializedReplicas != 2 {
		t.Fatalf("materialized replicas %d, want 2 (compute slot + eval model)", st.MaterializedReplicas)
	}
	if st.PeakInFlight > cfg.InFlight {
		t.Fatalf("peak in-flight %d exceeds configured %d", st.PeakInFlight, cfg.InFlight)
	}
	if st.Updates != cfg.MaxUpdates {
		t.Fatalf("updates %d, want %d", st.Updates, cfg.MaxUpdates)
	}
}

// TestAsyncStalenessExpiry forces a straggler so slow that its uploads are
// always older than MaxStaleness: they must be discarded, never applied,
// and the engine must keep making progress off the fast clients.
func TestAsyncStalenessExpiry(t *testing.T) {
	s := asyncSetup(t, 4)
	cfg := baseAsyncCfg()
	cfg.Participation = 1
	cfg.InFlight = 4
	cfg.MaxUpdates = 30
	cfg.MaxStaleness = 1
	cfg.StragglerFactor = []float64{1, 1, 1, 500}
	e := s.async(t, cfg)
	e.Run("expiry")
	st := e.Stats()
	if st.Expired == 0 {
		t.Fatal("no expirations despite 500x straggler and MaxStaleness=1")
	}
	if st.Updates != cfg.MaxUpdates {
		t.Fatalf("updates %d, want %d", st.Updates, cfg.MaxUpdates)
	}
}

// TestAsyncZeroServerLRFreezesModel: with ServerLR explicitly ~0 the
// aggregate is still formed and accounted but the model must not move —
// isolating the apply step from the event machinery.
func TestAsyncZeroServerLRFreezesModel(t *testing.T) {
	s := asyncSetup(t, 8)
	cfg := baseAsyncCfg()
	cfg.ServerLR = 1e-300 // effectively zero; exact 0 selects the default 1
	cfg.MaxUpdates = 5
	e := s.async(t, cfg)
	before := e.GlobalParams()
	e.Run("frozen")
	after := e.GlobalParams()
	for i := range before {
		if math.Abs(after[i]-before[i]) > 1e-290 {
			t.Fatalf("param %d moved: %v -> %v", i, before[i], after[i])
		}
	}
	if e.Stats().Updates != 5 {
		t.Fatalf("updates %d, want 5", e.Stats().Updates)
	}
}

// TestAsyncCompressedUplink: a top-k uplink (no error feedback) must cut
// accounted up-bytes to ~ratio of the dense run while still training.
func TestAsyncCompressedUplink(t *testing.T) {
	dense := asyncSetup(t, 8).async(t, baseAsyncCfg())
	dense.Run("dense")

	cfg := baseAsyncCfg()
	cfg.Compress = compress.Spec{Kind: compress.KindTopK, Ratio: 0.25}
	comp := asyncSetup(t, 8).async(t, cfg)
	comp.Run("topk")

	du, cu := dense.Stats().UpBytes, comp.Stats().UpBytes
	if cu >= du {
		t.Fatalf("compressed up-bytes %d not below dense %d", cu, du)
	}
	if comp.TrainLoss() >= dense.TrainLoss()*2 {
		t.Fatalf("compressed loss %v way above dense %v", comp.TrainLoss(), dense.TrainLoss())
	}
}

// TestAsyncPartialMatchesFullParticipation is the seeded convergence check:
// K-of-m with a 3x overhang must land within tolerance of full
// participation's loss on the quickstart-scale workload.
func TestAsyncPartialMatchesFullParticipation(t *testing.T) {
	full := baseAsyncCfg()
	full.Participation = 8
	full.InFlight = 8
	full.MaxUpdates = 60
	ef := asyncSetup(t, 8).async(t, full)
	ef.Run("full")

	part := baseAsyncCfg()
	part.Participation = 3
	part.InFlight = 8
	part.MaxUpdates = 160 // same order of applied client updates
	ep := asyncSetup(t, 8).async(t, part)
	ep.Run("partial")

	lf, lp := ef.TrainLoss(), ep.TrainLoss()
	init := asyncSetup(t, 8).async(t, baseAsyncCfg()).TrainLoss()
	if lf >= init || lp >= init {
		t.Fatalf("no progress: init %v, full %v, partial %v", init, lf, lp)
	}
	if math.Abs(lf-lp) > 0.2 {
		t.Fatalf("partial participation diverged from full: %v vs %v", lp, lf)
	}
	if s := ep.Stats(); s.MeanStaleness <= 0 {
		t.Fatalf("partial run saw no staleness (mean %v) — overhang not overlapping rounds", s.MeanStaleness)
	}
}

// TestAsyncLinkAwareCapsArrivals: with one link far slower than the rest,
// the link-aware policy must shrink rounds below the configured K.
func TestAsyncLinkAwareCapsArrivals(t *testing.T) {
	s := asyncSetup(t, 8)
	links := make([]delaymodel.Link, 8)
	links[7] = delaymodel.Link{Latency: 50}
	s.dm.Links = links
	cfg := baseAsyncCfg()
	cfg.Participation = 8
	cfg.InFlight = 8
	cfg.LinkAware = true
	cfg.MaxUpdates = 20
	e := s.async(t, cfg)
	e.Run("linkaware")
	st := e.Stats()
	// 20 rounds of 8 arrivals each would be 160 applied; the cap must have
	// cut at least the slow link out of most rounds.
	if st.Applied >= st.Updates*cfg.Participation {
		t.Fatalf("link-aware run still waited for all %d arrivals every round (applied %d over %d updates)",
			cfg.Participation, st.Applied, st.Updates)
	}
}

// TestAsyncWireFloat32HalvesBothDirections: under the wire-only float32
// spec every in-flight message AND every model pull is accounted at 4
// bytes/coordinate — exactly half the dense float64 traffic in both
// directions — and training still converges.
func TestAsyncWireFloat32HalvesBothDirections(t *testing.T) {
	dense := asyncSetup(t, 8).async(t, baseAsyncCfg())
	dense.Run("dense")

	cfg := baseAsyncCfg()
	cfg.Compress = compress.Spec{Wire: compress.WireFloat32}
	narrow := asyncSetup(t, 8).async(t, cfg)
	narrow.Run("f32")

	ds, ns := dense.Stats(), narrow.Stats()
	// Bandwidth is 0 in this setup, so payload size has no timing effect:
	// both runs replay the same event schedule and the byte totals are
	// directly comparable.
	if ds.Updates != ns.Updates || ds.Applied != ns.Applied || ds.Expired != ns.Expired {
		t.Fatalf("event schedules diverged: %+v vs %+v", ds, ns)
	}
	if ns.DownBytes*2 != ds.DownBytes {
		t.Fatalf("down bytes %d, want exactly half of %d", ns.DownBytes, ds.DownBytes)
	}
	if ns.UpBytes*2 != ds.UpBytes {
		t.Fatalf("up bytes %d, want exactly half of %d", ns.UpBytes, ds.UpBytes)
	}
	if narrow.TrainLoss() >= dense.TrainLoss()*2 {
		t.Fatalf("float32-wire loss %v way above dense %v", narrow.TrainLoss(), dense.TrainLoss())
	}
}

// TestAsyncServerOptFedAdam: the server-side FedOpt path. An adaptive rule
// on the SERVER descends the staleness-weighted pseudo-gradient — the
// config-time contract (local adaptive rules rejected, server synced
// moments meaningless), the O(dim)-not-O(clients*dim) scratch accounting,
// determinism of the gated path, and that it actually trains.
func TestAsyncServerOptFedAdam(t *testing.T) {
	s := asyncSetup(t, 8)

	bad := baseAsyncCfg()
	bad.Opt = opt.Config{Rule: opt.RuleAdam}
	if _, err := NewAsync(s.proto, s.shards, s.train, s.test, s.dm, bad); err == nil {
		t.Fatal("accepted a per-client adaptive local rule")
	}
	bad = baseAsyncCfg()
	bad.ServerOpt = opt.Config{Rule: opt.RuleAdam, SyncedMoments: true}
	if _, err := NewAsync(s.proto, s.shards, s.train, s.test, s.dm, bad); err == nil {
		t.Fatal("accepted synced moments on server-owned state")
	}

	legacy := s.async(t, baseAsyncCfg())
	legacy.Run("legacy")

	cfg := baseAsyncCfg()
	cfg.ServerOpt = opt.Config{Rule: opt.RuleAdam}
	cfg.ServerLR = 0.02
	a := asyncSetup(t, 8).async(t, cfg)
	a.Run("fedadam")
	b := asyncSetup(t, 8).async(t, cfg)
	b.Run("fedadam-again")

	if !floatsExact(a.GlobalParams(), b.GlobalParams()) {
		t.Fatal("FedOpt path is not deterministic across identical runs")
	}
	if floatsExact(a.GlobalParams(), legacy.GlobalParams()) {
		t.Fatal("FedAdam params identical to the legacy scale path; gate is inert")
	}
	// Server Adam adds the pseudo-gradient scratch plus its m and v state
	// vectors — all O(dim), independent of the 8 clients.
	if got, want := a.Stats().ScratchVectors, legacy.Stats().ScratchVectors+3; got != want {
		t.Fatalf("scratch vectors %d, want %d (legacy %d + grad,m,v)",
			got, want, legacy.Stats().ScratchVectors)
	}
	if la, ll := a.TrainLoss(), legacy.TrainLoss(); math.IsNaN(la) || la >= ll*2 {
		t.Fatalf("FedAdam loss %v way above legacy %v", la, ll)
	}
	if a.Stats().Updates != cfg.MaxUpdates {
		t.Fatalf("updates %d, want %d", a.Stats().Updates, cfg.MaxUpdates)
	}
}
