package cluster

import (
	"math"
	"testing"

	"repro/internal/compress"
	"repro/internal/sgd"
)

// TestWireFloat32HalvesFullAveragingPayload pins the acceptance criterion:
// identity-compressed full averaging under a float32 wire charges exactly
// half the per-round payload of the float64 wire, and still trains.
func TestWireFloat32HalvesFullAveragingPayload(t *testing.T) {
	s := newSetup(t, 4, 1)
	run := func(spec compress.Spec) *Engine {
		cfg := baseCfg()
		cfg.MaxIters = 200
		cfg.Compress = spec
		e := s.engine(t, cfg)
		tr := e.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "t")
		if tr.FinalLoss() >= tr.Points[0].Loss/2 {
			t.Fatalf("%s failed to learn: %v -> %v",
				spec, tr.Points[0].Loss, tr.FinalLoss())
		}
		return e
	}
	wide := run(compress.Spec{Kind: compress.KindIdentity})
	narrow := run(compress.Spec{Kind: compress.KindIdentity, Wire: compress.WireFloat32})
	if got, want := wide.CommBytesPerRound(), 8*wide.Dim(); got != want {
		t.Fatalf("float64 wire payload %d, want %d", got, want)
	}
	if got, want := narrow.CommBytesPerRound(), 4*narrow.Dim(); got != want {
		t.Fatalf("float32 wire payload %d, want exactly half the dense %d", got, 8*narrow.Dim())
	}
}

// TestWireOnlySpecMatchesNarrowIdentity: the kind-None float32 spec is the
// identity compressor plus narrowing, so its trajectory is bit-identical to
// the explicit identity+f32 spec.
func TestWireOnlySpecMatchesNarrowIdentity(t *testing.T) {
	s := newSetup(t, 4, 1)
	run := func(spec compress.Spec) []float64 {
		cfg := baseCfg()
		cfg.MaxIters = 200
		cfg.Compress = spec
		e := s.engine(t, cfg)
		e.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "t")
		return e.GlobalParams()
	}
	a := run(compress.Spec{Wire: compress.WireFloat32})
	b := run(compress.Spec{Kind: compress.KindIdentity, Wire: compress.WireFloat32})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("wire-only spec diverged from identity+f32 at param %d: %v vs %v",
				i, a[i], b[i])
		}
	}
}

// TestWireFloat32TracksFloat64 bounds the lossy boundary: the float32-wire
// trajectory stays close to the float64 one (per-round narrowing error is
// ~2^-24 relative) and reaches a comparable loss.
func TestWireFloat32TracksFloat64(t *testing.T) {
	s := newSetup(t, 4, 1)
	run := func(spec compress.Spec) (*Engine, float64) {
		cfg := baseCfg()
		cfg.MaxIters = 400
		cfg.Compress = spec
		e := s.engine(t, cfg)
		tr := e.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "t")
		return e, tr.FinalLoss()
	}
	_, wideLoss := run(compress.Spec{Kind: compress.KindIdentity})
	_, narrowLoss := run(compress.Spec{Kind: compress.KindIdentity, Wire: compress.WireFloat32})
	if math.IsNaN(narrowLoss) {
		t.Fatal("float32-wire run produced NaN loss")
	}
	if rel := math.Abs(narrowLoss-wideLoss) / wideLoss; rel > 0.05 {
		t.Fatalf("float32 wire drifted: loss %v vs %v (rel %v)", narrowLoss, wideLoss, rel)
	}
}

// TestWireFloat32ChocoGossipIsLossy: a float32 wire disqualifies the
// lossless CHOCO refinement (estimates cannot pin replicas exactly), but the
// estimate-delta path must still converge and charge the halved payload.
func TestWireFloat32ChocoGossip(t *testing.T) {
	s := newSetup(t, 4, 1)
	cfg := baseCfg()
	cfg.MaxIters = 400
	cfg.Strategy = RingGossip
	cfg.Compress = compress.Spec{Kind: compress.KindIdentity, Wire: compress.WireFloat32}
	e := s.engine(t, cfg)
	if e.gossip == nil || e.gossip.lossless {
		t.Fatal("float32-wire gossip must take the lossy CHOCO path")
	}
	tr := e.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "choco-f32")
	if tr.FinalLoss() >= tr.Points[0].Loss/2 {
		t.Fatalf("float32-wire CHOCO failed to learn: %v -> %v",
			tr.Points[0].Loss, tr.FinalLoss())
	}
	if got, want := e.CommBytesPerRound(), 4*e.Dim(); got != want {
		t.Fatalf("float32-wire gossip payload %d, want %d", got, want)
	}
}
