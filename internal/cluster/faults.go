package cluster

import (
	"repro/internal/compress"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// This file is the engine side of fault injection (internal/faults): the
// per-round membership refresh, the rejoin reconciliation, and the induced
// active-subgraph cache gossip mixes on. Everything here is gated on
// e.fltActive != nil — the sentinel New sets only when a schedule is
// attached — and consumes no RNG, so the fault-free engine is untouched
// down to the bit.

// beginRound refreshes the round's membership view from the fault schedule:
// the active set (installed into the communicator), the down mask and the
// per-worker transfer multipliers roundTime charges, and the reconciliation
// pulls of workers rejoining after a blip. Run and RunParallel call it at
// the top of every round; the manual StepLocal/SyncNow drivers do not.
func (e *Engine) beginRound(round int) {
	if e.fltActive == nil {
		return
	}
	e.fltNActive = e.cfg.Faults.ActiveInto(round, e.fltActive)
	for i := range e.fltDown {
		e.fltDown[i] = !e.fltActive[i]
	}
	e.com.SetActive(e.fltActive)
	for i := range e.fltScale {
		// Slow-down episodes multiply the worker's transfers; each dropped
		// attempt (retried with backoff) charges one extra full transfer.
		e.fltScale[i] = e.cfg.Faults.LinkScale(i, round) *
			float64(1+e.cfg.Faults.Retries(e.cfg.Seed, round, i))
		e.reconBytes[i] = 0
	}
	if e.gmom != nil {
		// Shared global-momentum buffer under churn: the buffer is a running
		// sum of displacement contributions from the previous round's active
		// set, so when workers drop out it renormalizes by the surviving
		// fraction |A_t ∩ A_{t-1}| / |A_{t-1}|. Unchanged membership and
		// pure-rejoin rounds give factor 1 (a bitwise no-op); crash rounds
		// shrink the buffer so departed workers' stale contributions do not
		// keep steering the global model.
		inter := 0
		for i := range e.fltActive {
			if e.fltActive[i] && e.gmomPrev[i] {
				inter++
			}
		}
		if e.gmomPrevN > 0 {
			e.gmom.Renormalize(float64(inter) / float64(e.gmomPrevN))
		}
		copy(e.gmomPrev, e.fltActive)
		e.gmomPrevN = e.fltNActive
	}
	for i := range e.workers {
		if e.fltActive[i] && e.cfg.Faults.Rejoins(i, round) {
			e.reconcile(i)
		}
	}
}

// reconcile brings a rejoining worker back into the cluster: it pulls the
// delta between the current global reference and its stale replica as a
// dense (lossless) wire message — priced into this round's transfer schedule
// via reconBytes — and snaps its replica to the reference exactly, the same
// lossless-pull rule the parameter server's PullCompress path uses. The pull
// covers the full extended vector when synced optimizer state is
// wire-visible, so a rejoined worker's Adam second moment matches a
// never-crashed worker's bit for bit: both end the round with params ==
// global, first moment zeroed by the sync reset, second moment == the synced
// reference, and the bias-correction clock re-aligned to the engine's step
// count. Per-node global-momentum buffers restart from zero (the node's
// displacement history died with it), and under compressed gossip the
// worker's CHOCO estimate and projection re-pin to the pulled vector so its
// next wire message is a delta from shared state, not from a pre-crash
// ghost.
func (e *Engine) reconcile(i int) {
	w := e.workers[i]
	ref := e.global
	if e.ext {
		ref = e.extGlobal
		tensor.Sub(e.reconBuf, ref, e.loadExt(i))
	} else {
		tensor.Sub(e.reconBuf, ref, w.model.Params())
	}
	msg := compress.Message{Dim: e.xdim, Enc: compress.EncDense, Dense: e.reconBuf}
	pay := e.com.Pull(i, msg.Bytes())
	e.reconBytes[i] = pay.DownBytes
	w.model.SetParams(e.global)
	if e.ext {
		off := 0
		for _, v := range w.sync {
			copy(v, e.globalSync[off:off+len(v)])
			off += len(v)
		}
	}
	if e.gmom != nil || e.gmoms != nil || e.optReset {
		w.opt.SyncReset()
	}
	if e.optCfg.Adaptive() {
		w.opt.AlignSteps(e.optSteps)
	}
	if e.gmoms != nil {
		e.gmoms[i].Reset()
	}
	if e.gossip != nil {
		copy(e.gossip.hat[i], ref)
		copy(e.gossip.proj[i], ref)
	}
}

// activeGossipGraph returns the mixing graph for the synchronization being
// executed: the sequence's graph itself when every worker is up (the legacy
// arithmetic, bit for bit), or the induced subgraph over the active set —
// down nodes isolated, Metropolis weights and spectral gap re-derived
// (graph.Subgraph) — when membership shrank. The subgraph is cached on
// (sequence index, active set) so steady churn rebuilds nothing, and its
// re-adapted consensus step is published in e.subGamma for
// AdaptGossipGamma. The published adjacency (per-edge delay pricing) always
// matches the graph actually mixed on.
func (e *Engine) activeGossipGraph() (*graph.Graph, int) {
	g, idx := e.nextGossipGraph()
	if e.fltActive == nil || e.fltNActive == e.m {
		return g, idx
	}
	if idx != e.subForIdx || !boolsEqual(e.subActive, e.fltActive) {
		e.subGraph = g.Subgraph(e.fltActive)
		e.subForIdx = idx
		copy(e.subActive, e.fltActive)
		e.subGamma = graph.AdaptiveGamma(e.subGraph.SpectralGap())
	}
	e.activeAdj = e.subGraph.Adjacency()
	return e.subGraph, idx
}

// boolsEqual reports whether two equal-length masks match.
func boolsEqual(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
