package cluster

import (
	"math"
	"testing"

	"repro/internal/sgd"
	"repro/internal/tensor"
)

func TestStrategyString(t *testing.T) {
	if FullAveraging.String() != "full-averaging" ||
		RingGossip.String() != "ring-gossip" ||
		ElasticAveraging.String() != "elastic-averaging" {
		t.Fatal("strategy names wrong")
	}
	if Strategy(99).String() != "unknown-strategy" {
		t.Fatal("unknown strategy name")
	}
}

func TestBlockMomentumRejectedForNonFullStrategies(t *testing.T) {
	s := newSetup(t, 4, 1)
	cfg := baseCfg()
	cfg.Strategy = RingGossip
	cfg.BlockMomentum = 0.3
	if _, err := New(s.proto, s.shards, s.train, s.test, s.dm, cfg); err == nil {
		t.Fatal("accepted block momentum with ring gossip")
	}
}

func TestRingGossipTrains(t *testing.T) {
	s := newSetup(t, 4, 1)
	cfg := baseCfg()
	cfg.Strategy = RingGossip
	cfg.MaxIters = 600
	e := s.engine(t, cfg)
	tr := e.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "ring")
	if tr.FinalLoss() >= tr.Points[0].Loss/2 {
		t.Fatalf("ring gossip failed to learn: %v -> %v", tr.Points[0].Loss, tr.FinalLoss())
	}
}

func TestRingGossipReplicasStayDistinct(t *testing.T) {
	// Unlike full averaging, ring mixing does not equalize replicas at a
	// sync point (for m > 3 the mix is not global).
	s := newSetup(t, 4, 1)
	cfg := baseCfg()
	cfg.Strategy = RingGossip
	cfg.MaxIters = 50
	e := s.engine(t, cfg)
	e.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "ring")
	p0 := e.LocalModelParams(0)
	p2 := e.LocalModelParams(2)
	same := true
	for i := range p0 {
		if p0[i] != p2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("ring gossip should leave non-adjacent replicas distinct")
	}
}

func TestRingGossipPreservesMeanWhenMixing(t *testing.T) {
	// The uniform ring-mixing matrix is doubly stochastic, so one mixing
	// step preserves the replica mean exactly (modulo FP error). Verify by
	// comparing the replica mean before and after a SyncNow with no local
	// steps in between.
	s := newSetup(t, 5, 1)
	cfg := baseCfg()
	cfg.Strategy = RingGossip
	e := s.engine(t, cfg)
	e.StepLocal(3, 0.1) // desynchronize replicas

	meanOf := func() []float64 {
		mean := make([]float64, e.Dim())
		for i := 0; i < e.Workers(); i++ {
			tensor.Axpy(1, e.LocalModelParams(i), mean)
		}
		tensor.Scal(1/float64(e.Workers()), mean)
		return mean
	}
	before := meanOf()
	e.SyncNow()
	after := meanOf()
	for i := range before {
		if math.Abs(before[i]-after[i]) > 1e-12*(1+math.Abs(before[i])) {
			t.Fatalf("ring mixing changed the replica mean at %d: %v vs %v",
				i, before[i], after[i])
		}
	}
}

func TestElasticAveragingTrains(t *testing.T) {
	s := newSetup(t, 4, 1)
	cfg := baseCfg()
	cfg.Strategy = ElasticAveraging
	cfg.MaxIters = 800
	e := s.engine(t, cfg)
	tr := e.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "easgd")
	if tr.FinalLoss() >= tr.Points[0].Loss/2 {
		t.Fatalf("elastic averaging failed to learn: %v -> %v",
			tr.Points[0].Loss, tr.FinalLoss())
	}
}

func TestElasticCenterMovesTowardWorkers(t *testing.T) {
	s := newSetup(t, 4, 1)
	cfg := baseCfg()
	cfg.Strategy = ElasticAveraging
	e := s.engine(t, cfg)
	before := e.GlobalParams()
	e.StepLocal(10, 0.1)
	e.SyncNow()
	after := e.GlobalParams()
	moved := false
	for i := range before {
		if before[i] != after[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("elastic center did not move")
	}
}

func TestElasticPullsWorkersTowardCenter(t *testing.T) {
	// After a sync, each worker must be strictly closer to the (pre-sync)
	// center than before the sync.
	s := newSetup(t, 4, 1)
	cfg := baseCfg()
	cfg.Strategy = ElasticAveraging
	cfg.ElasticAlpha = 0.5
	cfg.ElasticBeta = 0.5
	e := s.engine(t, cfg)
	center := e.GlobalParams()
	e.StepLocal(10, 0.1)
	distBefore := paramDist(e.LocalModelParams(0), center)
	e.SyncNow()
	distAfter := paramDist(e.LocalModelParams(0), center)
	if distAfter >= distBefore {
		t.Fatalf("worker not pulled toward center: %v -> %v", distBefore, distAfter)
	}
}

func paramDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func TestStrategiesParallelMatchesSequential(t *testing.T) {
	for _, strat := range []Strategy{RingGossip, ElasticAveraging} {
		s := newSetup(t, 4, 1)
		cfg := baseCfg()
		cfg.Strategy = strat
		cfg.MaxIters = 200
		e1 := s.engine(t, cfg)
		e2 := s.engine(t, cfg)
		e1.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "seq")
		e2.RunParallel(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "par")
		p1, p2 := e1.GlobalParams(), e2.GlobalParams()
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("%s: parallel backend diverged at %d", strat, i)
			}
		}
	}
}

func TestElasticDefaultsApplied(t *testing.T) {
	s := newSetup(t, 4, 1)
	cfg := baseCfg()
	cfg.Strategy = ElasticAveraging
	e := s.engine(t, cfg)
	if e.cfg.ElasticAlpha != 0.5 || e.cfg.ElasticBeta != 0.5 {
		t.Fatalf("elastic defaults not applied: %v %v",
			e.cfg.ElasticAlpha, e.cfg.ElasticBeta)
	}
}
