package cluster

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/tensor"
)

// Strategy selects how replicas mix at each synchronization point. The
// paper's conclusion notes that adaptive communication extends directly to
// decentralized SGD (Lian et al. 2017) and Elastic-Averaging SGD (Zhang et
// al. 2015); these variants implement those extensions so AdaComm can drive
// their synchronization period too.
//
// Both variants honor Config.Compress and report per-worker payload bytes
// through the communication layer: ring gossip ships each replica's delta
// from the last published replica mean to its neighbors, elastic averaging
// ships each replica's displacement from the center. Their rounds keep the
// legacy single-overlapped-hop pricing (Config.Topology is rejected for
// them), so only the message sizes — not hop multipliers — differ from full
// averaging. With compression disabled they take the legacy raw paths, bit
// for bit.
type Strategy int

const (
	// FullAveraging is PASGD's all-node model average (paper eq 3).
	FullAveraging Strategy = iota
	// RingGossip is decentralized averaging on a ring: each worker mixes
	// with its two neighbors, x_i <- (x_{i-1} + x_i + x_{i+1}) / 3. No
	// global model exists; evaluation uses the replica mean, matching the
	// "averaged model" convention of decentralized-SGD analyses.
	RingGossip
	// ElasticAveraging keeps a center variable z: at each sync, workers
	// are pulled toward z with strength alpha and z moves toward the
	// replica mean with strength beta (EASGD, Zhang et al. 2015).
	ElasticAveraging
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case FullAveraging:
		return "full-averaging"
	case RingGossip:
		return "ring-gossip"
	case ElasticAveraging:
		return "elastic-averaging"
	}
	return "unknown-strategy"
}

// averageRing mixes each replica with its ring neighbors. Mixing is
// computed from a frozen snapshot so worker order cannot matter, then
// e.global is refreshed with the replica mean (for evaluation and AdaComm's
// loss probe).
func (e *Engine) averageRing() {
	if e.comps != nil {
		e.averageRingCompressed()
		return
	}
	snap := make([][]float64, e.m)
	for i, w := range e.workers {
		snap[i] = append([]float64(nil), w.model.Params()...)
	}
	for i, w := range e.workers {
		prev := snap[(i-1+e.m)%e.m]
		next := snap[(i+1)%e.m]
		dst := w.model.Params()
		for j := range dst {
			dst[j] = (prev[j] + snap[i][j] + next[j]) / 3
		}
		e.resetWorkerMomentum(w)
	}
	e.lastReport = comm.DenseReport(e.m, e.dim)
	e.refreshGlobalFromReplicaMean()
}

// averageRingCompressed is ring gossip over compressed messages: each worker
// compresses its delta from the last published replica mean (e.global, the
// shared reference every node saw at the previous synchronization) and ships
// it to its ring neighbors; mixing averages the RECONSTRUCTIONS — including
// the worker's own, so sender and receivers agree on every term of the mix.
// With m = 3 the ring mix is the global mean, so compressed ring gossip must
// match compressed full averaging's synchronized model (the regression test
// asserts this).
func (e *Engine) averageRingCompressed() {
	rep := comm.Report{Bytes: make([]int, e.m)}
	recon := make([][]float64, e.m)
	for i, w := range e.workers {
		tensor.Sub(e.deltaBuf, w.model.Params(), e.global)
		msg, err := e.comps[i].Compress(e.deltaBuf)
		if err != nil {
			panic(fmt.Sprintf("cluster: worker %d compress: %v", i, err))
		}
		rec := make([]float64, e.dim)
		pay, err := e.com.Push(i, msg, rec)
		if err != nil {
			panic(fmt.Sprintf("cluster: worker %d push: %v", i, err))
		}
		tensor.Axpy(1, e.global, rec) // xhat_i = reference + delta_hat_i
		recon[i] = rec
		rep.Bytes[i] = pay.UpBytes
		if pay.UpBytes > rep.Max {
			rep.Max = pay.UpBytes
		}
	}
	for i, w := range e.workers {
		prev := recon[(i-1+e.m)%e.m]
		next := recon[(i+1)%e.m]
		self := recon[i]
		dst := w.model.Params()
		for j := range dst {
			dst[j] = (prev[j] + self[j] + next[j]) / 3
		}
		e.resetWorkerMomentum(w)
	}
	e.lastReport = rep
	e.refreshGlobalFromReplicaMean()
}

// averageElastic applies the EASGD update: x_i <- x_i - alpha(x_i - z),
// z <- z + (beta/m) * sum_i (x_i - z). The center z lives in e.global.
// With compression active, each worker ships its displacement x_i - z as a
// compressed message over the star; worker and center both apply the
// RECONSTRUCTED displacement, so the two sides stay consistent.
func (e *Engine) averageElastic() {
	alpha := e.cfg.ElasticAlpha
	beta := e.cfg.ElasticBeta
	centerPull := make([]float64, e.dim)
	rep := comm.Report{Bytes: make([]int, e.m)}
	for i, w := range e.workers {
		p := w.model.Params()
		if e.comps != nil {
			tensor.Sub(e.deltaBuf, p, e.global)
			msg, err := e.comps[i].Compress(e.deltaBuf)
			if err != nil {
				panic(fmt.Sprintf("cluster: worker %d compress: %v", i, err))
			}
			pay, err := e.com.Push(i, msg, e.deltaBuf)
			if err != nil {
				panic(fmt.Sprintf("cluster: worker %d push: %v", i, err))
			}
			for j := range p {
				p[j] -= alpha * e.deltaBuf[j]
				centerPull[j] += e.deltaBuf[j]
			}
			rep.Bytes[i] = pay.UpBytes
			if pay.UpBytes > rep.Max {
				rep.Max = pay.UpBytes
			}
		} else {
			for j := range p {
				diff := p[j] - e.global[j]
				p[j] -= alpha * diff
				centerPull[j] += diff
			}
			rep.Bytes[i] = 8 * e.dim
			rep.Max = 8 * e.dim
		}
		e.resetWorkerMomentum(w)
	}
	tensor.Axpy(beta/float64(e.m), centerPull, e.global)
	e.lastReport = rep
}

// refreshGlobalFromReplicaMean recomputes the evaluation model as the mean
// of all replicas (used by strategies without a literal global model).
func (e *Engine) refreshGlobalFromReplicaMean() {
	vecs := make([][]float64, e.m)
	for i, w := range e.workers {
		vecs[i] = w.model.Params()
	}
	tensor.Mean(e.global, vecs...)
}

func (e *Engine) resetWorkerMomentum(w *worker) {
	if e.cfg.Momentum != 0 {
		w.opt.ResetMomentum()
	}
}
