package cluster

import (
	"repro/internal/tensor"
)

// Strategy selects how replicas mix at each synchronization point. The
// paper's conclusion notes that adaptive communication extends directly to
// decentralized SGD (Lian et al. 2017) and Elastic-Averaging SGD (Zhang et
// al. 2015); these variants implement those extensions so AdaComm can drive
// their synchronization period too.
type Strategy int

const (
	// FullAveraging is PASGD's all-node model average (paper eq 3).
	FullAveraging Strategy = iota
	// RingGossip is decentralized averaging on a ring: each worker mixes
	// with its two neighbors, x_i <- (x_{i-1} + x_i + x_{i+1}) / 3. No
	// global model exists; evaluation uses the replica mean, matching the
	// "averaged model" convention of decentralized-SGD analyses.
	RingGossip
	// ElasticAveraging keeps a center variable z: at each sync, workers
	// are pulled toward z with strength alpha and z moves toward the
	// replica mean with strength beta (EASGD, Zhang et al. 2015).
	ElasticAveraging
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case FullAveraging:
		return "full-averaging"
	case RingGossip:
		return "ring-gossip"
	case ElasticAveraging:
		return "elastic-averaging"
	}
	return "unknown-strategy"
}

// averageRing mixes each replica with its ring neighbors. Mixing is
// computed from a frozen snapshot so worker order cannot matter, then
// e.global is refreshed with the replica mean (for evaluation and AdaComm's
// loss probe).
func (e *Engine) averageRing() {
	snap := make([][]float64, e.m)
	for i, w := range e.workers {
		snap[i] = append([]float64(nil), w.model.Params()...)
	}
	for i, w := range e.workers {
		prev := snap[(i-1+e.m)%e.m]
		next := snap[(i+1)%e.m]
		dst := w.model.Params()
		for j := range dst {
			dst[j] = (prev[j] + snap[i][j] + next[j]) / 3
		}
		e.resetWorkerMomentum(w)
	}
	e.refreshGlobalFromReplicaMean()
}

// averageElastic applies the EASGD update: x_i <- x_i - alpha(x_i - z),
// z <- z + (beta/m) * sum_i (x_i - z). The center z lives in e.global.
func (e *Engine) averageElastic() {
	alpha := e.cfg.ElasticAlpha
	beta := e.cfg.ElasticBeta
	centerPull := make([]float64, e.dim)
	for _, w := range e.workers {
		p := w.model.Params()
		for j := range p {
			diff := p[j] - e.global[j]
			p[j] -= alpha * diff
			centerPull[j] += diff
		}
		e.resetWorkerMomentum(w)
	}
	tensor.Axpy(beta/float64(e.m), centerPull, e.global)
}

// refreshGlobalFromReplicaMean recomputes the evaluation model as the mean
// of all replicas (used by strategies without a literal global model).
func (e *Engine) refreshGlobalFromReplicaMean() {
	vecs := make([][]float64, e.m)
	for i, w := range e.workers {
		vecs[i] = w.model.Params()
	}
	tensor.Mean(e.global, vecs...)
}

func (e *Engine) resetWorkerMomentum(w *worker) {
	if e.cfg.Momentum != 0 {
		w.opt.ResetMomentum()
	}
}
