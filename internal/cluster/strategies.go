package cluster

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// Strategy selects how replicas mix at each synchronization point. The
// paper's conclusion notes that adaptive communication extends directly to
// decentralized SGD (Lian et al. 2017) and Elastic-Averaging SGD (Zhang et
// al. 2015); these variants implement those extensions so AdaComm can drive
// their synchronization period too.
//
// Both variants honor Config.Compress and report per-worker payload bytes
// through the communication layer. Compressed gossip is CHOCO-SGD
// (Koloskova et al. 2019): every node i maintains estimate vectors x̂_j for
// itself and its graph neighbors, updated ONLY by applying the compressed
// messages q_j = C(x_j - x̂_j) that travel the wire, and mixes via
//
//	x_i <- x_i + gamma * sum_j W_ij (x̂_j - x̂_i)
//
// with the mixing matrix W of the active graph.Graph (the uniform ring by
// default; Config.Topology selects any graph spec, including seeded
// time-varying sequences) and the consensus step size Config.GossipGamma.
// No quantity in the algorithm requires state a real decentralized node
// could not reconstruct from its own messages — there is no shared
// reference vector. Elastic averaging ships each replica's displacement
// from the center. Their rounds keep the legacy single-overlapped-hop
// pricing (collective Topology values are rejected for them), so only the
// message sizes — not hop multipliers — differ from full averaging. With
// compression disabled they take the legacy raw paths, bit for bit.
type Strategy int

const (
	// FullAveraging is PASGD's all-node model average (paper eq 3).
	FullAveraging Strategy = iota
	// RingGossip is decentralized gossip averaging: each worker mixes with
	// its neighbors on the active mixing graph, x_i <- sum_j W_ij x_j. The
	// default graph is the ring — x_i <- (x_{i-1} + x_i + x_{i+1}) / 3, and
	// at m = 2 the single neighbor appears once: x_i <- (x_i + x_other) / 2
	// — and Config.Topology swaps in any graph spec (torus, expander,
	// random-regular, time-varying sequences). No global model exists;
	// evaluation uses the replica mean — or, under compression, the mean of
	// the wire-reconstructed CHOCO estimates — matching the "averaged
	// model" convention of decentralized-SGD analyses.
	RingGossip
	// ElasticAveraging keeps a center variable z: at each sync, workers
	// are pulled toward z with strength alpha and z moves toward the
	// replica mean with strength beta (EASGD, Zhang et al. 2015).
	ElasticAveraging
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case FullAveraging:
		return "full-averaging"
	case RingGossip:
		return "ring-gossip"
	case ElasticAveraging:
		return "elastic-averaging"
	}
	return "unknown-strategy"
}

// ParseStrategy parses a strategy flag value: "full"/"full-averaging",
// "ring"/"ring-gossip", or "elastic"/"elastic-averaging".
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "full", "full-averaging":
		return FullAveraging, nil
	case "ring", "ring-gossip":
		return RingGossip, nil
	case "elastic", "elastic-averaging":
		return ElasticAveraging, nil
	}
	return 0, fmt.Errorf("cluster: unknown strategy %q (want full | ring | elastic)", s)
}

// gossipReplica is the view of one worker the gossip protocol is allowed to
// touch: the node's own parameter vector, read when forming its message and
// read-modified when applying its own mix. The engine wires each worker's
// network in directly; the oracle-free invariant test swaps in guarded
// implementations that panic on out-of-band (cross-node or extra-pass)
// reads, which is what pins the no-shared-reference property.
type gossipReplica interface {
	Params() []float64
}

// gossipState is the engine-owned CHOCO-SGD bookkeeping for compressed
// gossip. hat[j] is the estimate x̂_j: conceptually node j and each of its
// graph neighbors hold a copy each, but since every holder applies the
// identical wire update q_j to the identical previous value, the copies can
// never diverge and the engine stores one canonical vector per node (the
// invariant test exercises exactly this wire-only derivability). Neighbor
// sets come from the engine's active mixing graph, not from this state, so
// time-varying sequences need no estimate reshuffling: every node's estimate
// exists every round, and an inactive edge simply goes unread.
type gossipState struct {
	gamma    float64     // consensus step size (Config.GossipGamma)
	lossless bool        // dense/lossless compressor: estimates pin exactly
	hat      [][]float64 // hat[j] = x̂_j, updated only from wire messages
	hatBack  []float64   // backing array for hat
	rec      []float64   // decode scratch for the message in flight
	proj     [][]float64 // projected post-mix estimates (evaluation model)
	projBack []float64   // backing array for proj
	nodes    []gossipReplica
}

// newGossipState builds the estimate state: every x̂_j starts at the initial
// broadcast model (init), which all nodes know, so the state stays
// wire-derivable from round zero.
func newGossipState(m int, init []float64, gamma float64, lossless bool) *gossipState {
	dim := len(init)
	g := &gossipState{
		gamma:    gamma,
		lossless: lossless,
		hat:      make([][]float64, m),
		hatBack:  make([]float64, m*dim),
		rec:      make([]float64, dim),
		proj:     make([][]float64, m),
		projBack: make([]float64, m*dim),
		nodes:    make([]gossipReplica, m),
	}
	for j := 0; j < m; j++ {
		g.hat[j] = g.hatBack[j*dim : (j+1)*dim]
		copy(g.hat[j], init)
		g.proj[j] = g.projBack[j*dim : (j+1)*dim]
		copy(g.proj[j], init)
	}
	return g
}

// nextGossipGraph returns the mixing graph for the synchronization being
// executed, publishes its adjacency for the round's per-edge delay pricing
// (roundTime runs after the mix, so the priced adjacency always matches the
// sync just performed), and advances the sync counter that drives
// time-varying sequences. The returned index selects the per-graph adaptive
// gamma. It consumes no randomness, so graph topologies leave the engine's
// RNG streams untouched.
func (e *Engine) nextGossipGraph() (*graph.Graph, int) {
	idx := e.gseq.Index(e.syncs)
	g := e.gseq.Graph(idx)
	e.activeAdj = g.Adjacency()
	e.syncs++
	return g, idx
}

// mixRowInto accumulates row i of the graph's mixing matrix over the given
// node vectors into dst: dst = sum_k W[i][order[k]] * vecs[order[k]]. A
// uniform row is summed in MixOrder then divided ONCE by the count — on the
// ring exactly ((prev + self) + next) / 3, the legacy arithmetic the
// bit-identity goldens pin. Weighted rows accumulate w_k * x_k terms in the
// same fixed order.
func mixRowInto(dst []float64, g *graph.Graph, i int, vecs [][]float64) {
	order := g.MixOrder(i)
	first := vecs[order[0]]
	if ws := g.MixWeights(i); ws == nil {
		copy(dst, first)
		for _, o := range order[1:] {
			src := vecs[o]
			for j := range dst {
				dst[j] += src[j]
			}
		}
		inv := float64(len(order))
		for j := range dst {
			dst[j] /= inv
		}
	} else {
		w0 := ws[0]
		for j := range dst {
			dst[j] = w0 * first[j]
		}
		for k := 1; k < len(order); k++ {
			wk := ws[k]
			src := vecs[order[k]]
			for j := range dst {
				dst[j] += wk * src[j]
			}
		}
	}
}

// averageRing mixes each replica with its neighbors on the active mixing
// graph (the legacy ring when Config.Topology names no graph — the default
// Ring graph's rows reproduce the historic (prev+self+next)/3 arithmetic bit
// for bit). Mixing is computed from a frozen snapshot (engine-owned scratch,
// reused every sync) so worker order cannot matter, then e.global is
// refreshed with the replica mean (for evaluation and AdaComm's loss probe).
func (e *Engine) averageRing() {
	if e.comps != nil {
		e.averageRingChoco()
		return
	}
	g, _ := e.activeGossipGraph()
	for i, w := range e.workers {
		if e.ext {
			copy(e.ringSnap[i], e.loadExt(i))
		} else {
			copy(e.ringSnap[i], w.model.Params())
		}
	}
	for i, w := range e.workers {
		if e.fltDown != nil && e.fltDown[i] {
			continue // down nodes neither mix nor are mixed with (the
			// subgraph's rows never reference their stale snapshots)
		}
		if g.Degree(i) > 0 {
			if e.gmoms == nil && !e.ext {
				// Legacy path, bit for bit.
				mixRowInto(w.model.Params(), g, i, e.ringSnap)
			} else {
				post := e.avgBuf
				mixRowInto(post, g, i, e.ringSnap)
				if e.gmoms != nil {
					// Per-node slow momentum: filter this node's own mixing
					// displacement (parameter block only).
					e.gmoms[i].Apply(e.ringSnap[i][:e.dim], post[:e.dim], post[:e.dim])
				}
				if e.ext {
					e.storeExt(i, post)
				} else {
					w.model.SetParams(post[:e.dim])
				}
			}
		}
		// Degree 0 (m == 1, or an active node isolated by churn): nothing
		// to mix with; the mix is the identity, not the
		// rounding-perturbed (x+x+x)/3.
		e.resetWorkerOpt(w)
	}
	e.lastReport = e.denseRep
	e.refreshGlobalFromReplicaMean()
}

// averageRingChoco is CHOCO-SGD's compressed gossip round on the active
// mixing graph. Phase 1: every node compresses its delta from its OWN
// estimate, q_i = C(x_i - x̂_i), and multicasts it to its graph neighbors;
// every holder of x̂_i — the node and its neighbors alike — applies the
// identical wire update x̂_i += q̂_i, so the engine's canonical copy stands
// in for all of them. Phase 2: each node mixes toward its neighborhood's
// weighted estimate average,
//
//	x_i <- x_i + gamma * (sum_j W_ij x̂_j - x̂_i),
//
// computed as gamma*mix + (x_i - gamma*x̂_i) so that a lossless compressor
// (x̂_i == x_i exactly, see below) at gamma = 1 reproduces the raw gossip
// arithmetic bit for bit (on the default ring, the historic
// (x̂_prev + x̂_i + x̂_next)/3). Finally the evaluation model is refreshed as
// the mean of the projected post-mix ESTIMATES — every quantity in the
// round, including the one evaluation observes, is derivable from the wire.
//
// Lossless (dense-encoding) compressors get a protocol refinement: since
// C(x_i - x̂_i) costs exactly the 8*dim wire bytes of the parameters
// themselves, the node ships x_i directly and holders assign rather than
// accumulate. That pins x̂_i to x_i exactly instead of up to the rounding of
// x̂_i + fl(x_i - x̂_i), which is what makes identity-compressed gossip
// bit-identical to the uncompressed path (the regression tests assert it;
// at m = 3 the ring mix is the global mean, so this is also the compressed
// "ring == full averaging" anchor).
func (e *Engine) averageRingChoco() {
	gr, idx := e.activeGossipGraph()
	g := e.gossip
	maxBytes := 0
	for i, node := range g.nodes {
		if e.fltDown != nil && e.fltDown[i] {
			// Down nodes send nothing; their estimates (and compressor
			// residuals) freeze with them until reconcile re-pins them.
			e.repBytes[i] = 0
			continue
		}
		params := node.Params()
		if e.ext {
			// The wire covers the synced optimizer state: estimates,
			// deltas, and payload accounting all run over the extended
			// vector, through the same compressor and wire narrowing.
			params = e.loadExt(i)
		}
		var msg compress.Message
		if g.lossless {
			msg = compress.Message{Dim: e.xdim, Enc: compress.EncDense, Dense: params}
		} else {
			tensor.Sub(e.deltaBuf, params, g.hat[i])
			var err error
			msg, err = e.comps[i].Compress(e.deltaBuf)
			if err != nil {
				panic(fmt.Sprintf("cluster: worker %d compress: %v", i, err))
			}
		}
		pay, err := e.com.PushMulti(i, gr.Neighbors(i), msg, g.rec)
		if err != nil {
			panic(fmt.Sprintf("cluster: worker %d push: %v", i, err))
		}
		if g.lossless {
			copy(g.hat[i], g.rec) // x̂_i = decoded x_i, exact
		} else {
			tensor.Axpy(1, g.rec, g.hat[i]) // x̂_i += decoded delta
		}
		e.repBytes[i] = pay.UpBytes
		if pay.UpBytes > maxBytes {
			maxBytes = pay.UpBytes
		}
	}
	gamma := g.gamma
	if e.gammas != nil {
		gamma = e.gammas[idx]
		if e.fltActive != nil && e.fltNActive < e.m {
			// AdaptGossipGamma re-adapts on every membership change: the
			// consensus step follows the ACTIVE subgraph's spectral gap.
			gamma = e.subGamma
		}
	}
	for i, node := range g.nodes {
		if e.fltDown != nil && e.fltDown[i] {
			continue
		}
		dst := node.Params()
		if e.ext {
			dst = e.extWork[i] // loaded (and current) since phase 1
		}
		hs := g.hat[i]
		prj := g.proj[i]
		if gr.Degree(i) == 0 {
			// m == 1: nothing to mix with. The mix IS x̂_i, and the
			// identity must stay exact — gamma*x̂ + (x - gamma*x̂) is not
			// a bitwise no-op.
			copy(prj, hs)
			e.resetWorkerOpt(e.workers[i])
			continue
		}
		mix := e.mixBuf
		mixRowInto(mix, gr, i, g.hat)
		if e.gmoms == nil && !e.ext {
			// Legacy path, bit for bit.
			for j := range dst {
				dst[j] = gamma*mix[j] + (dst[j] - gamma*hs[j])
				prj[j] = gamma*mix[j] + (hs[j] - gamma*hs[j])
			}
		} else {
			post := e.avgBuf
			for j := range dst {
				post[j] = gamma*mix[j] + (dst[j] - gamma*hs[j])
				prj[j] = gamma*mix[j] + (hs[j] - gamma*hs[j])
			}
			if e.gmoms != nil {
				// The slow-momentum filter applies to the replica only; the
				// projection stays the wire-derived estimate of the plain
				// mix, which the estimate protocol self-corrects toward on
				// the next round's delta.
				e.gmoms[i].Apply(dst[:e.dim], post[:e.dim], post[:e.dim])
			}
			if e.ext {
				e.storeExt(i, post)
			} else {
				e.workers[i].model.SetParams(post[:e.dim])
			}
		}
		e.resetWorkerOpt(e.workers[i])
	}
	e.lastReport = comm.Report{Bytes: e.repBytes, Max: maxBytes}
	// The evaluation model is the mean of the PROJECTED post-mix estimates
	// x̃_i = x̂_i + gamma*(mix_i - x̂_i): every term comes off the wire, and
	// the projection applies the same mixing expression the replicas do, so
	// a lossless compressor (x̂_i == x_i exactly) makes the evaluated model
	// bit-identical to the raw path's post-mix replica mean. Under churn
	// the mean covers the active estimates only (average() already
	// guaranteed at least one).
	dst := e.global
	if e.ext {
		dst = e.extGlobal // refresh the synced-state reference too
	}
	if e.fltActive == nil {
		tensor.Mean(dst, g.proj...)
	} else {
		k := 0
		for i := range g.proj {
			if e.fltActive[i] {
				e.meanVecs[k] = g.proj[i]
				k++
			}
		}
		tensor.Mean(dst, e.meanVecs[:k]...)
	}
}

// averageElastic applies the EASGD update: x_i <- x_i - alpha(x_i - z),
// z <- z + (beta/m) * sum_i (x_i - z). The center z lives in e.global.
// With compression active, each worker ships its displacement x_i - z as a
// compressed message over the star; worker and center both apply the
// RECONSTRUCTED displacement, so the two sides stay consistent.
func (e *Engine) averageElastic() {
	alpha := e.cfg.ElasticAlpha
	beta := e.cfg.ElasticBeta
	centerPull := e.pullBuf
	for j := range centerPull {
		centerPull[j] = 0
	}
	maxBytes := 0
	for i, w := range e.workers {
		if e.fltDown != nil && e.fltDown[i] {
			e.repBytes[i] = 0 // down replicas neither push nor get pulled
			continue
		}
		p := w.model.Params()
		if e.comps != nil {
			tensor.Sub(e.deltaBuf, p, e.global)
			msg, err := e.comps[i].Compress(e.deltaBuf)
			if err != nil {
				panic(fmt.Sprintf("cluster: worker %d compress: %v", i, err))
			}
			pay, err := e.com.Push(i, msg, e.deltaBuf)
			if err != nil {
				panic(fmt.Sprintf("cluster: worker %d push: %v", i, err))
			}
			if e.gmoms == nil {
				for j := range p {
					p[j] -= alpha * e.deltaBuf[j]
					centerPull[j] += e.deltaBuf[j]
				}
			} else {
				post := e.avgBuf[:e.dim]
				for j := range p {
					post[j] = p[j] - alpha*e.deltaBuf[j]
					centerPull[j] += e.deltaBuf[j]
				}
				e.gmoms[i].Apply(p, post, p)
			}
			e.repBytes[i] = pay.UpBytes
			if pay.UpBytes > maxBytes {
				maxBytes = pay.UpBytes
			}
		} else {
			if e.gmoms == nil {
				for j := range p {
					diff := p[j] - e.global[j]
					p[j] -= alpha * diff
					centerPull[j] += diff
				}
			} else {
				// Per-node slow momentum filters the node's own alpha-pull
				// displacement; the center update keeps the raw pull.
				post := e.avgBuf[:e.dim]
				for j := range p {
					diff := p[j] - e.global[j]
					post[j] = p[j] - alpha*diff
					centerPull[j] += diff
				}
				e.gmoms[i].Apply(p, post, p)
			}
			e.repBytes[i] = 8 * e.dim
			maxBytes = 8 * e.dim
		}
		e.resetWorkerOpt(w)
	}
	n := float64(e.m)
	if e.fltActive != nil {
		n = float64(e.fltNActive) // the center moves toward the SURVIVORS' mean
	}
	tensor.Axpy(beta/n, centerPull, e.global)
	e.lastReport = comm.Report{Bytes: e.repBytes, Max: maxBytes}
}

// refreshGlobalFromReplicaMean recomputes the evaluation model as the mean
// of all replicas (used by the raw gossip path, which has no literal global
// model; the CHOCO path averages its estimates instead so that even the
// evaluated model is wire-derivable).
func (e *Engine) refreshGlobalFromReplicaMean() {
	dst := e.global
	row := func(i int) []float64 { return e.workers[i].model.Params() }
	if e.ext {
		// The extended reference [global | globalSync] tracks the replica
		// mean of params AND synced optimizer state together.
		dst = e.extGlobal
		row = e.loadExt
	}
	if e.fltActive == nil {
		for i := range e.workers {
			e.meanVecs[i] = row(i)
		}
		tensor.Mean(dst, e.meanVecs...)
		return
	}
	// Under churn only the active replicas define the evaluated model;
	// stale crashed state must not drag the loss curve. average() already
	// guaranteed at least one active worker.
	k := 0
	for i := range e.workers {
		if e.fltActive[i] {
			e.meanVecs[k] = row(i)
			k++
		}
	}
	tensor.Mean(dst, e.meanVecs[:k]...)
}
