// Event-driven asynchronous engine: the third execution mode of the
// cluster package, built on internal/events instead of the round barrier.
//
// The lock-step engines advance all m workers together, so the slowest
// link gates every round and every replica must stay materialized. The
// async engine replaces the barrier with a discrete-event schedule over
// per-client virtual clocks:
//
//   - K-of-m partial participation: each synchronization aggregates the
//     FIRST K arrivals (paramserver.ArrivalPolicy — the same rule AdaSync
//     applies on the server side), staleness-weighted by how many global
//     versions elapsed since the contributor pulled its base model.
//     Stragglers' in-flight work overlaps the next round instead of gating
//     it; results staler than MaxStaleness versions are discarded on
//     arrival, which is what bounds the engine's version-history needs to
//     ZERO (see below).
//
//   - Client sharding: the engine simulates a population of N clients with
//     memory proportional to K, not N. An idle client's entire state is a
//     pair of RNG streams (its "seed"); an in-flight client's state is the
//     compressed wire message it will deliver (internal/compress, priced by
//     the delay model via compress.Spec-sized payloads); only ONE replica
//     is ever materialized — the engine's compute slot.
//
// # The materialize/evict lifecycle (and why one compute slot suffices)
//
// A client's local training depends only on the global model at its
// dispatch version and on its own RNG streams — never on events that
// happen between dispatch and arrival. The simulator exploits this by
// running the numerics EAGERLY at dispatch time, inside the serial event
// loop: materialize the client into the compute slot (SetParams from the
// current global), run tau local steps, compress the delta against that
// same base, evict the client back to its compressed message, and schedule
// the Arrival at dispatch-time + pull + compute + push on the client's own
// link and clock. The simulated TIMELINE is fully asynchronous — by the
// time the message arrives the global model has moved on, and the update
// is applied stale, exactly as a real async system would — but no snapshot
// history and no per-client replica is ever needed. Peak materialized
// state is therefore the compute slot plus the evaluation replica plus
// four dim-length aggregation scratch vectors, independent of both N and
// K (comfortably within the "K replicas + aggregation scratch" budget a
// real K-participation server would pay).
//
// Determinism: the event loop is single-goroutine; queue tie-breaking is
// seeded (internal/events), per-client streams are split at construction,
// and client sampling draws from the engine's own stream in event order —
// so a run's event trace and final parameters are a pure function of the
// seed, at any GOMAXPROCS (asserted by the async determinism and golden
// tests).
package cluster

import (
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/data"
	"repro/internal/delaymodel"
	"repro/internal/events"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/paramserver"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// AsyncConfig controls the event-driven engine (NewAsync).
type AsyncConfig struct {
	// Participation is K: every synchronization aggregates the first K
	// arrivals. K equal to the client count (with InFlight equal too) is
	// the fully synchronous barrier special case.
	Participation int

	// InFlight is the target number of concurrently active clients. It must
	// be at least Participation — the overhang (InFlight - Participation)
	// is what lets stragglers overlap the next round instead of gating the
	// current one. 0 defaults to min(2*Participation, clients).
	InFlight int

	// Tau is the number of local steps per activation.
	Tau int

	BatchSize int
	LR        float64
	// ServerLR scales the applied aggregate (0 defaults to 1): the update
	// is x += ServerLR * (weighted mean of client deltas). With ServerOpt
	// set it becomes that optimizer's learning rate instead.
	ServerLR float64

	// Opt selects the clients' local update rule (internal/opt). The
	// zero value is plain SGD at LR — bit-identical to the legacy engine.
	// Stateful momentum rules are allowed: the state lives in the engine's
	// single compute-slot optimizer and is activation-scoped (reset at each
	// dispatch — a freshly sampled client has no history). Adaptive rules
	// (Adam/AdamW) are rejected: meaningful Adam state must persist per
	// client across activations, which is Theta(clients*dim) state — exactly
	// what client sharding exists to avoid. Use ServerOpt for adaptivity.
	Opt opt.Config

	// ServerOpt optionally applies a server-side optimizer at aggregation
	// (FedOpt, Reddi et al. 2021): the staleness-weighted mean client delta
	// becomes the server's pseudo-gradient and ServerOpt's rule — including
	// Adam — steps the global model with learning rate ServerLR. Server
	// state is O(dim) regardless of the client count, so adaptivity lives
	// where the memory contract allows it. The zero value keeps the legacy
	// x += ServerLR * mean-delta arithmetic, bit for bit.
	ServerOpt opt.Config

	// StalenessPow shapes the staleness weights: a contribution based on a
	// model s versions old is weighted (1+s)^-StalenessPow before
	// normalization (Xie et al. 2019's polynomial rule). 0 defaults to 1;
	// explicit values must be finite and non-negative.
	StalenessPow float64

	// MaxStaleness discards arrivals whose base model is more than this
	// many versions old instead of applying them (0 defaults to 64). The
	// discarded client simply goes idle and a replacement is dispatched —
	// the same drop-and-resample a production federated server performs.
	MaxStaleness int

	// Stop conditions (at least one must be set): simulated seconds /
	// completed aggregations.
	MaxTime    float64
	MaxUpdates int

	// EvalEvery records a trace point once the aggregated local-iteration
	// count crosses every EvalEvery iterations (default 100), on the global
	// model — the same convention as the lock-step engines.
	EvalEvery  int
	EvalSubset int

	// StragglerFactor optionally slows individual clients' compute (len
	// must equal the client count; nil = all 1). Composes with the delay
	// model's per-worker Jitter.
	StragglerFactor []float64

	// Compress selects the delta compression clients apply before
	// uploading. Error feedback is rejected: a per-client residual is
	// Theta(N*dim) state, exactly what client sharding exists to avoid.
	Compress compress.Spec

	// LinkAware caps the per-round arrival count at the number of links
	// within SlowCutoff of the fastest observed upload, via the shared
	// paramserver.ArrivalPolicy. Off, every round waits for exactly
	// Participation arrivals.
	LinkAware  bool
	SlowCutoff float64

	// RecordEvents retains the textual event trace (EventTrace), used by
	// the determinism and golden tests. Off for large runs — the trace
	// grows with every event.
	RecordEvents bool

	// Faults optionally injects a seeded crash/churn/slow-down schedule
	// (internal/faults), keyed by the GLOBAL VERSION — the async engine's
	// notion of a round. Down clients are parked instead of dispatched, and
	// an in-flight message whose sender is down when it arrives is expired
	// (the same drop-and-redispatch path MaxStaleness uses), so crashed
	// work can never fold into an aggregate. Slow-down episodes and
	// drop-retries multiply the affected client's transfer times. A client
	// recovering from a blip needs no separate reconciliation: every
	// dispatch already begins with a priced dense pull of the current
	// global model, which IS the rejoin delta. When every client is down
	// the event queue drains and Run returns cleanly. nil keeps every
	// trajectory bit-identical to the fault-free engine.
	Faults *faults.Schedule

	Seed uint64
}

func (c AsyncConfig) validate(n int) error {
	if c.BatchSize < 1 {
		return fmt.Errorf("cluster: async batch size %d", c.BatchSize)
	}
	if c.Tau < 1 {
		return fmt.Errorf("cluster: async tau %d < 1", c.Tau)
	}
	if c.Participation < 1 || c.Participation > n {
		return fmt.Errorf("cluster: participation %d out of [1,%d]", c.Participation, n)
	}
	if c.InFlight != 0 && (c.InFlight < c.Participation || c.InFlight > n) {
		return fmt.Errorf("cluster: in-flight %d out of [participation %d, clients %d]",
			c.InFlight, c.Participation, n)
	}
	if c.MaxTime <= 0 && c.MaxUpdates <= 0 {
		return fmt.Errorf("cluster: async run has no stop condition")
	}
	if math.IsNaN(c.LR) || math.IsInf(c.LR, 0) || c.LR <= 0 {
		return fmt.Errorf("cluster: async lr %v (want finite > 0)", c.LR)
	}
	if err := c.Opt.Validate(); err != nil {
		return err
	}
	if c.Opt.Adaptive() {
		return fmt.Errorf("cluster: async engine does not support adaptive local rules " +
			"(per-client Adam moments are Theta(clients*dim) state; client sharding exists to avoid it); " +
			"use ServerOpt for adaptivity")
	}
	if err := c.ServerOpt.Validate(); err != nil {
		return err
	}
	if c.ServerOpt.SyncedMoments {
		return fmt.Errorf("cluster: server optimizer state is server-owned; synced moments do not apply")
	}
	if math.IsNaN(c.ServerLR) || math.IsInf(c.ServerLR, 0) || c.ServerLR < 0 {
		return fmt.Errorf("cluster: server lr %v (want finite >= 0; 0 uses the default 1)", c.ServerLR)
	}
	if math.IsNaN(c.StalenessPow) || math.IsInf(c.StalenessPow, 0) || c.StalenessPow < 0 {
		return fmt.Errorf("cluster: staleness pow %v (want finite >= 0; 0 uses the default 1)", c.StalenessPow)
	}
	if c.MaxStaleness < 0 {
		return fmt.Errorf("cluster: max staleness %d < 0", c.MaxStaleness)
	}
	if c.StragglerFactor != nil {
		if len(c.StragglerFactor) != n {
			return fmt.Errorf("cluster: straggler factors %d != clients %d", len(c.StragglerFactor), n)
		}
		for i, v := range c.StragglerFactor {
			if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				return fmt.Errorf("cluster: client %d straggler factor %v (want finite > 0)", i, v)
			}
		}
	}
	if c.Compress.Enabled() {
		if err := c.Compress.Validate(); err != nil {
			return err
		}
		if c.Compress.ErrorFeedback {
			return fmt.Errorf("cluster: async engine does not support error feedback " +
				"(a per-client residual is Theta(clients*dim) state; client sharding exists to avoid it)")
		}
	}
	if c.Faults.Enabled() {
		if err := c.Faults.Validate(n); err != nil {
			return err
		}
	}
	return nil
}

// asyncClient is one simulated client. Idle, its whole state is the two RNG
// streams; in flight, it additionally holds the compressed wire message it
// will deliver. It never owns a materialized replica.
type asyncClient struct {
	shard  *data.Dataset
	model  *rng.Rand // sampler stream — the idle client's "seed"
	delayR *rng.Rand // compute/transfer-time stream

	inflight bool
	msg      compress.Message
	base     int     // global version pulled at dispatch
	steps    int     // local iterations performed this activation
	upTime   float64 // sampled upload transfer time (link-aware signal)
}

// AsyncStats summarizes a completed async run.
type AsyncStats struct {
	Updates       int     // global aggregations applied
	Applied       int     // arrivals folded into an aggregate
	Expired       int     // arrivals discarded for exceeding MaxStaleness
	MeanStaleness float64 // mean version lag of applied arrivals
	UpBytes       int64   // total client->server wire bytes
	DownBytes     int64   // total server->client wire bytes

	// MaterializedReplicas is the number of persistent replica-sized model
	// buffers the engine owns (the compute slot and the evaluation model);
	// ScratchVectors the dim-length aggregation scratch vectors (global,
	// aggregate, decode, delta). Together they are the engine's entire
	// dense-model footprint — independent of the client count.
	MaterializedReplicas int
	ScratchVectors       int
	PeakInFlight         int // most clients concurrently in flight
}

// AsyncEngine runs event-driven partial-participation training over a
// population of sharded clients.
type AsyncEngine struct {
	cfg      AsyncConfig
	n, dim   int
	inflight int // target concurrently-active clients

	global  []float64
	version int

	clients []asyncClient
	idle    []int // idle client ids; sampled uniformly at dispatch
	eligBuf []int // fault-path scratch: idle-list positions of active clients

	q      *events.Queue
	clocks *events.Clocks
	evlog  *events.Trace

	delay     *delaymodel.Model
	slow      []float64
	serverRng *rng.Rand

	com  comm.Communicator
	comp compress.Compressor // shared: compression happens serially at dispatch

	computeModel *nn.Network // THE materialized replica slot
	opt          opt.Optimizer
	srvOpt       opt.Optimizer // server-side FedOpt rule (nil = legacy scale)
	srvGrad      []float64     // server pseudo-gradient scratch
	deltaBuf     []float64
	decodeBuf    []float64
	aggBuf       []float64
	pullBuf      []float64   // float32-rounded global for WireFloat32 pulls
	freeDense    [][]float64 // recycled dense message buffers (no-compression path)

	policy    paramserver.ArrivalPolicy
	curK      int       // arrivals the current round waits for
	arrivals  int       // arrivals accumulated toward the current round
	wsum      float64   // staleness-weight mass of the current round
	aggIters  int       // local iterations in the current round
	linkTimes []float64 // contributors' upload times (current round)
	lastLink  []float64 // previous round's upload times (policy input)

	evalModel *nn.Network
	testSet   *data.Dataset
	evalBatch data.Batch
	testBatch data.Batch

	stats     AsyncStats
	staleSum  int64
	nInFlight int
}

// NewAsync builds an event-driven engine over len(shards) clients. The
// delay model must have one worker per client; its per-worker Links price
// each client's pulls and uploads, and its Jitter (if set) gives every
// client a persistent compute-speed factor so arrival order is not
// degenerate on homogeneous configurations.
func NewAsync(proto *nn.Network, shards []*data.Dataset, trainEval, test *data.Dataset,
	dm *delaymodel.Model, cfg AsyncConfig) (*AsyncEngine, error) {
	n := len(shards)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no shards")
	}
	if dm.M != n {
		return nil, fmt.Errorf("cluster: delay model has %d workers, got %d shards", dm.M, n)
	}
	if err := cfg.validate(n); err != nil {
		return nil, err
	}
	if err := dm.CheckLinks(); err != nil {
		return nil, err
	}
	if dm.EdgeLinks != nil {
		return nil, fmt.Errorf("cluster: per-edge links price gossip graph rounds; the async engine's star exchange uses per-worker Links")
	}
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = 100
	}
	if cfg.ServerLR == 0 {
		cfg.ServerLR = 1
	}
	if cfg.StalenessPow == 0 {
		cfg.StalenessPow = 1
	}
	if cfg.MaxStaleness == 0 {
		cfg.MaxStaleness = 64
	}
	if cfg.InFlight == 0 {
		cfg.InFlight = 2 * cfg.Participation
		if cfg.InFlight > n {
			cfg.InFlight = n
		}
	}

	root := rng.New(cfg.Seed)
	e := &AsyncEngine{
		cfg:          cfg,
		n:            n,
		dim:          proto.ParamLen(),
		inflight:     cfg.InFlight,
		global:       append([]float64(nil), proto.Params()...),
		clients:      make([]asyncClient, n),
		q:            events.NewQueue(root.Uint64()),
		clocks:       events.NewClocks(n),
		delay:        dm,
		serverRng:    root.Split(),
		com:          comm.New(comm.AllGather, n),
		computeModel: proto.Clone(),
		opt:          opt.New(cfg.Opt, proto.ParamLen()),
		deltaBuf:     make([]float64, proto.ParamLen()),
		decodeBuf:    make([]float64, proto.ParamLen()),
		aggBuf:       make([]float64, proto.ParamLen()),
		policy: paramserver.ArrivalPolicy{
			K: cfg.Participation, LinkAware: cfg.LinkAware, SlowCutoff: cfg.SlowCutoff,
		},
		evalModel: proto.Clone(),
		testSet:   test,
	}
	if cfg.RecordEvents {
		e.evlog = &events.Trace{}
	}
	if !cfg.ServerOpt.IsZero() {
		e.srvOpt = opt.New(cfg.ServerOpt, e.dim)
		e.srvGrad = make([]float64, e.dim)
	}
	e.slow = make([]float64, n)
	for i := range e.slow {
		e.slow[i] = 1
		if cfg.StragglerFactor != nil {
			e.slow[i] = cfg.StragglerFactor[i]
		}
	}
	jit, err := dm.JitterScales()
	if err != nil {
		return nil, err
	}
	if jit != nil {
		for i := range e.slow {
			e.slow[i] *= jit[i]
		}
	}
	for i := 0; i < n; i++ {
		e.clients[i] = asyncClient{
			shard:  shards[i],
			model:  root.Split(),
			delayR: root.Split(),
		}
		e.idle = append(e.idle, i)
	}
	if cfg.Compress.Enabled() {
		c, err := cfg.Compress.New(root.Split())
		if err != nil {
			return nil, err
		}
		e.comp = c
	}
	if cfg.Compress.Wire == compress.WireFloat32 {
		e.pullBuf = make([]float64, e.dim)
	}
	evalDS := trainEval
	if cfg.EvalSubset > 0 && cfg.EvalSubset < trainEval.N() {
		idx := root.Split().Perm(trainEval.N())[:cfg.EvalSubset]
		evalDS = trainEval.Subset(idx)
	}
	e.evalBatch = data.FullBatch(evalDS)
	if test != nil {
		e.testBatch = data.FullBatch(test)
	}
	e.curK = e.policy.Effective(nil, cfg.Participation)
	e.stats.MaterializedReplicas = 2 // compute slot + eval model
	e.stats.ScratchVectors = 4       // global, agg, decode, delta
	if e.pullBuf != nil {
		e.stats.ScratchVectors++ // narrowed-pull buffer
	}
	if e.srvOpt != nil {
		// Pseudo-gradient scratch plus the server rule's own state vectors:
		// all O(dim), none per-client.
		e.stats.ScratchVectors += 1 + len(e.srvOpt.State())
	}
	// The local rule's state (momentum buffer, if any) rides the single
	// compute-slot optimizer — activation-scoped, never per-client.
	e.stats.ScratchVectors += len(e.opt.State())
	return e, nil
}

// Clients returns the simulated population size N.
func (e *AsyncEngine) Clients() int { return e.n }

// Dim returns the model parameter count.
func (e *AsyncEngine) Dim() int { return e.dim }

// GlobalParams returns a copy of the current global parameters.
func (e *AsyncEngine) GlobalParams() []float64 {
	return append([]float64(nil), e.global...)
}

// Version returns the number of applied aggregations.
func (e *AsyncEngine) Version() int { return e.version }

// Stats returns the run summary (valid after Run).
func (e *AsyncEngine) Stats() AsyncStats {
	s := e.stats
	if s.Applied > 0 {
		s.MeanStaleness = float64(e.staleSum) / float64(s.Applied)
	}
	return s
}

// EventTrace returns the recorded event log ("" unless
// AsyncConfig.RecordEvents); the golden and determinism tests pin it.
func (e *AsyncEngine) EventTrace() string {
	if e.evlog == nil {
		return ""
	}
	return e.evlog.String()
}

// TrainLoss evaluates the training loss of the global model.
func (e *AsyncEngine) TrainLoss() float64 {
	e.evalModel.SetParams(e.global)
	return e.evalModel.Loss(e.evalBatch)
}

// TestAccuracy evaluates test accuracy of the global model; NaN without a
// test set.
func (e *AsyncEngine) TestAccuracy() float64 {
	if e.testSet == nil {
		return math.NaN()
	}
	e.evalModel.SetParams(e.global)
	return e.evalModel.Accuracy(e.testBatch)
}

// stalenessWeight is the polynomial decay (1+s)^-pow: fresh contributions
// (s=0) weigh 1 regardless of pow, and pow=0 degrades to unweighted
// averaging.
func stalenessWeight(pow float64, s int) float64 {
	if s < 0 {
		panic(fmt.Sprintf("cluster: negative staleness %d", s))
	}
	if pow == 0 || s == 0 {
		return 1
	}
	return math.Pow(1+float64(s), -pow)
}

// dispatchNew samples one idle client uniformly (seeded) and schedules its
// Dispatch at time t. Returns false when no client is idle. Under a fault
// schedule, clients down at the current version are parked: they stay on
// the idle list and the sample covers the active idle clients only —
// recovery makes them eligible again at the next round boundary's refill.
func (e *AsyncEngine) dispatchNew(t float64) bool {
	if len(e.idle) == 0 {
		return false
	}
	j := -1
	if e.cfg.Faults.Enabled() {
		e.eligBuf = e.eligBuf[:0]
		for p, id := range e.idle {
			if !e.cfg.Faults.Down(id, e.version) {
				e.eligBuf = append(e.eligBuf, p)
			}
		}
		if len(e.eligBuf) == 0 {
			return false
		}
		j = e.eligBuf[e.serverRng.Intn(len(e.eligBuf))]
	} else {
		j = e.serverRng.Intn(len(e.idle))
	}
	id := e.idle[j]
	e.idle[j] = e.idle[len(e.idle)-1]
	e.idle = e.idle[:len(e.idle)-1]
	// The client is committed (off the idle list) the moment its Dispatch
	// is scheduled — counting here, not at dispatch time, is what keeps the
	// refill loop from over-committing past InFlight.
	e.clients[id].inflight = true
	e.nInFlight++
	if e.nInFlight > e.stats.PeakInFlight {
		e.stats.PeakInFlight = e.nInFlight
	}
	e.q.Push(events.Event{Time: t, Worker: id, Kind: events.Dispatch})
	return true
}

// denseBuf returns a recycled (or fresh) dim-length buffer for the
// no-compression wire path; released buffers come back via releaseMsg, so
// the steady-state dense path allocates nothing.
func (e *AsyncEngine) denseBuf() []float64 {
	if k := len(e.freeDense); k > 0 {
		b := e.freeDense[k-1]
		e.freeDense = e.freeDense[:k-1]
		return b
	}
	return make([]float64, e.dim)
}

// releaseMsg evicts a delivered (or expired) message, recycling its dense
// buffer if it owned one.
func (e *AsyncEngine) releaseMsg(c *asyncClient) {
	if e.comp == nil && c.msg.Dense != nil {
		e.freeDense = append(e.freeDense, c.msg.Dense)
	}
	c.msg = compress.Message{}
}

// dispatch materializes client i into the compute slot, runs its tau local
// steps eagerly (see the package comment — the numerics depend only on the
// dispatch-time global model and the client's own streams), evicts it to a
// compressed delta message, and schedules its Arrival on its own clock.
func (e *AsyncEngine) dispatch(i int, t float64) {
	c := &e.clients[i]

	// Pull: the client downloads the dense global model on its own link. A
	// float32 wire halves the payload and the client trains from the
	// float32-rounded global — the download is a priced wire message too.
	downBytes := 8 * e.dim
	pulled := e.global
	if e.pullBuf != nil {
		downBytes = 4 * e.dim
		for j, v := range e.global {
			e.pullBuf[j] = compress.Narrow32(v)
		}
		pulled = e.pullBuf
	}
	e.stats.DownBytes += int64(e.com.Pull(i, downBytes).DownBytes)
	downTime := e.delay.SampleTransfer(c.delayR, i, downBytes)

	// Materialize + local work (the only replica ever materialized). The
	// optimizer state is activation-scoped: a freshly sampled client has no
	// history, so any momentum buffer restarts from zero (a no-op for the
	// stateless plain rule).
	e.computeModel.SetParams(pulled)
	sampler := data.NewSampler(c.shard, e.cfg.BatchSize, c.model)
	e.opt.ResetState()
	e.opt.SetLR(e.cfg.LR)
	for k := 0; k < e.cfg.Tau; k++ {
		b := sampler.Next()
		e.computeModel.LossGrad(b, e.deltaBuf)
		e.opt.Step(e.computeModel.Params(), e.deltaBuf)
	}
	compute := 0.0
	for k := 0; k < e.cfg.Tau; k++ {
		compute += e.delay.Y.Sample(c.delayR)
	}
	compute *= e.slow[i]

	// Evict: the client's surviving state is the wire message.
	tensor.Sub(e.deltaBuf, e.computeModel.Params(), e.global)
	if e.comp != nil {
		msg, err := e.comp.Compress(e.deltaBuf)
		if err != nil {
			panic(fmt.Sprintf("cluster: client %d compress: %v", i, err))
		}
		c.msg = msg
	} else {
		buf := e.denseBuf()
		copy(buf, e.deltaBuf)
		c.msg = compress.Message{Dim: e.dim, Enc: compress.EncDense, Dense: buf}
	}
	c.base = e.version
	c.steps = e.cfg.Tau
	c.upTime = e.delay.SampleTransfer(c.delayR, i, c.msg.Bytes())
	if e.cfg.Faults.Enabled() {
		// Slow-down episodes and drop-retries multiply both transfer legs,
		// AFTER the draws, so the client's RNG streams stay aligned with
		// the fault-free run.
		f := e.cfg.Faults.LinkScale(i, e.version) *
			float64(1+e.cfg.Faults.Retries(e.cfg.Seed, e.version, i))
		downTime *= f
		c.upTime *= f
	}

	arrival := t + downTime + compute + c.upTime
	e.clocks.AdvanceTo(i, arrival)
	e.q.Push(events.Event{Time: arrival, Worker: i, Kind: events.Arrival})
}

// arrive folds client i's delivered message into the pending aggregate (or
// discards it as expired, immediately dispatching a replacement) and reports
// whether the round completed. Non-expired early arrivals do NOT trigger a
// replacement — dispatching happens at round boundaries, which is what makes
// Participation == InFlight == N the exact synchronous barrier (every client
// contributes exactly once per round) and keeps a fast client from counting
// twice toward one aggregate.
func (e *AsyncEngine) arrive(i int, t float64) (roundDone bool) {
	c := &e.clients[i]
	c.inflight = false
	e.nInFlight--
	e.idle = append(e.idle, i)

	if e.cfg.Faults.Enabled() && e.cfg.Faults.Down(i, e.version) {
		// The sender crashed (or blipped out) while its message was in
		// flight: the server expires the work — the existing
		// drop-and-redispatch path — so crashed state never folds into an
		// aggregate.
		e.stats.Expired++
		e.releaseMsg(c)
		e.dispatchNew(t)
		return false
	}

	s := e.version - c.base
	if s > e.cfg.MaxStaleness {
		e.stats.Expired++
		e.releaseMsg(c)
		e.dispatchNew(t)
		return false
	}
	pay, err := e.com.Push(i, c.msg, e.decodeBuf)
	if err != nil {
		panic(fmt.Sprintf("cluster: client %d push: %v", i, err))
	}
	e.stats.UpBytes += int64(pay.UpBytes)
	e.releaseMsg(c)

	w := stalenessWeight(e.cfg.StalenessPow, s)
	for j, v := range e.decodeBuf {
		e.aggBuf[j] += w * v
	}
	e.wsum += w
	e.arrivals++
	e.aggIters += c.steps
	e.staleSum += int64(s)
	e.stats.Applied++
	e.linkTimes = append(e.linkTimes, c.upTime)
	return e.arrivals >= e.curK
}

// applyRound commits the staleness-weighted aggregate, advances the global
// version, and re-arms the arrival policy with this round's observed upload
// times.
func (e *AsyncEngine) applyRound() (iters int) {
	if e.srvOpt != nil {
		// FedOpt: the weighted-mean client delta, negated, is the server's
		// pseudo-gradient; the server rule (momentum, Adam, ...) descends it
		// with learning rate ServerLR. With the plain rule this matches the
		// legacy arithmetic mathematically but not bitwise, so the path is
		// gated on an explicit ServerOpt.
		inv := 1 / e.wsum
		for j, v := range e.aggBuf {
			e.srvGrad[j] = -inv * v
			e.aggBuf[j] = 0
		}
		e.srvOpt.SetLR(e.cfg.ServerLR)
		e.srvOpt.Step(e.global, e.srvGrad)
	} else {
		scale := e.cfg.ServerLR / e.wsum
		for j, v := range e.aggBuf {
			e.global[j] += scale * v
			e.aggBuf[j] = 0
		}
	}
	e.version++
	e.stats.Updates++
	iters = e.aggIters

	e.lastLink = append(e.lastLink[:0], e.linkTimes...)
	e.curK = e.policy.Effective(e.lastLink, e.cfg.Participation)
	e.linkTimes = e.linkTimes[:0]
	e.wsum = 0
	e.arrivals = 0
	e.aggIters = 0
	return iters
}

// Run executes the event loop until a stop condition is reached and returns
// the training trace. Deterministic given cfg.Seed.
func (e *AsyncEngine) Run(traceName string) *metrics.Trace {
	trace := metrics.NewTrace(traceName)
	now := 0.0
	totalIters := 0

	record := func() {
		trace.Add(metrics.Point{
			Time: now, Iter: totalIters, Loss: e.TrainLoss(),
			Acc: math.NaN(), Tau: e.cfg.Tau, LR: e.cfg.LR,
		})
	}
	record()
	nextEval := e.cfg.EvalEvery

	for i := 0; i < e.inflight; i++ {
		e.dispatchNew(0)
	}

	for {
		ev, ok := e.q.Pop()
		if !ok {
			break
		}
		if e.cfg.MaxTime > 0 && ev.Time >= e.cfg.MaxTime {
			break
		}
		now = ev.Time
		if e.evlog != nil {
			e.evlog.Record(ev)
		}
		switch ev.Kind {
		case events.Dispatch:
			e.dispatch(ev.Worker, ev.Time)
		case events.Arrival:
			if e.arrive(ev.Worker, ev.Time) {
				totalIters += e.applyRound()
				if totalIters >= nextEval {
					record()
					for nextEval <= totalIters {
						nextEval += e.cfg.EvalEvery
					}
				}
				// Refill the in-flight set from the idle population; the
				// clients that just reported are eligible for resampling.
				for e.nInFlight < e.inflight && e.dispatchNew(ev.Time) {
				}
				if e.cfg.MaxUpdates > 0 && e.version >= e.cfg.MaxUpdates {
					record()
					return trace
				}
			}
		}
	}
	record()
	return trace
}
