package cluster

import (
	"math"
	"strings"
	"testing"

	"repro/internal/compress"
	"repro/internal/sgd"
	"repro/internal/tensor"
)

// Tests for the CHOCO-SGD compressed gossip path: per-node estimates updated
// only from wire messages, consensus step GossipGamma, no shared reference.

func TestChocoLosslessMatchesRawRingBitForBit(t *testing.T) {
	// With a lossless compressor the wire carries the parameters exactly, so
	// every estimate x̂_i equals x_i bit for bit and the gamma = 1 mix
	// gamma*mix + (x - gamma*x̂) collapses to the raw ring arithmetic. The
	// whole trajectory — parameters, trace losses, simulated times — must be
	// bit-identical to uncompressed ring gossip at every ring size. At m = 3
	// the ring mix is the global mean, so this is also the "CHOCO gossip
	// with identity compression == full averaging" anchor, pinned bitwise
	// against the gossip arithmetic (and to float rounding against the full
	// averaging strategy's different accumulation order, see
	// TestChocoRingIdentityMatchesFullAveragingOnTriangle).
	for _, m := range []int{2, 3, 4, 5} {
		s := newSetup(t, m, 1)
		cfg := baseCfg()
		cfg.Strategy = RingGossip
		cfg.MaxIters = 200

		raw := s.engine(t, cfg)
		trRaw := raw.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "raw")

		cfg.Compress = compress.Spec{Kind: compress.KindIdentity}
		choco := s.engine(t, cfg)
		trChoco := choco.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "choco")

		for i := 0; i < m; i++ {
			pr, pc := raw.LocalModelParams(i), choco.LocalModelParams(i)
			for j := range pr {
				if pr[j] != pc[j] {
					t.Fatalf("m=%d: worker %d param %d diverged: %v vs %v", m, i, j, pr[j], pc[j])
				}
			}
		}
		gr, gc := raw.GlobalParams(), choco.GlobalParams()
		for j := range gr {
			if gr[j] != gc[j] {
				t.Fatalf("m=%d: evaluation model diverged at %d: %v vs %v", m, j, gr[j], gc[j])
			}
		}
		if trRaw.Len() != trChoco.Len() {
			t.Fatalf("m=%d: trace lengths differ: %d vs %d", m, trRaw.Len(), trChoco.Len())
		}
		for i := range trRaw.Points {
			if trRaw.Points[i].Loss != trChoco.Points[i].Loss ||
				trRaw.Points[i].Time != trChoco.Points[i].Time {
				t.Fatalf("m=%d: traces differ at point %d", m, i)
			}
		}
	}
}

func TestChocoTriangleIdentityMixIsGlobalMeanBitForBit(t *testing.T) {
	// m = 3 with Identity compression at gamma = 1: every node's
	// neighborhood is the whole ring, so one CHOCO sync must land each
	// worker EXACTLY on the uniform average of all pre-sync replicas — full
	// averaging, bit for bit, computed purely from wire reconstructions.
	s := newSetup(t, 3, 1)
	cfg := baseCfg()
	cfg.Strategy = RingGossip
	cfg.Compress = compress.Spec{Kind: compress.KindIdentity}
	e := s.engine(t, cfg)
	e.StepLocal(7, 0.1)
	pre := make([][]float64, 3)
	for i := range pre {
		pre[i] = e.LocalModelParams(i)
	}
	e.SyncNow()
	for i := 0; i < 3; i++ {
		got := e.LocalModelParams(i)
		prev, self, next := pre[(i+2)%3], pre[i], pre[(i+1)%3]
		for j := range got {
			if want := (prev[j] + self[j] + next[j]) / 3; got[j] != want {
				t.Fatalf("worker %d param %d: %v, want global mean %v bit-for-bit", i, j, got[j], want)
			}
		}
	}
}

// guardedReplica enforces the oracle-free invariant: a gossip sync may read
// each node's parameters exactly twice — once to form the node's own wire
// message and once to apply the node's own mix. A third read per sync is
// out-of-band state (the old implementation's replica-mean refresh needed
// exactly such an extra pass over every replica) and panics.
type guardedReplica struct {
	inner gossipReplica
	reads int
}

func (g *guardedReplica) Params() []float64 {
	g.reads++
	if g.reads > 2 {
		panic("out-of-band read: compressed gossip touched a replica more than twice in one sync")
	}
	return g.inner.Params()
}

func TestChocoGossipReadsNoOracleState(t *testing.T) {
	// Hide every worker's parameters behind a guard that panics on
	// out-of-band reads, then run compressed gossip rounds. Everything the
	// algorithm consumes beyond those two sanctioned accesses per node —
	// estimate updates, the mix inputs, the evaluated model — must be
	// derivable from the wire alone.
	for _, spec := range []compress.Spec{
		{Kind: compress.KindIdentity},
		{Kind: compress.KindTopK, Ratio: 0.1},
		{Kind: compress.KindQSGD, Bits: 4},
	} {
		t.Run(spec.String(), func(t *testing.T) {
			s := newSetup(t, 4, 1)
			cfg := baseCfg()
			cfg.Strategy = RingGossip
			cfg.Compress = spec
			cfg.GossipGamma = 0.5
			e := s.engine(t, cfg)
			guards := make([]*guardedReplica, e.Workers())
			for i := range guards {
				guards[i] = &guardedReplica{inner: e.gossip.nodes[i]}
				e.gossip.nodes[i] = guards[i]
			}
			before := e.LocalModelParams(0)
			for round := 0; round < 5; round++ {
				for i := range guards {
					guards[i].reads = 0
				}
				e.StepLocal(3, 0.1)
				e.SyncNow()
				for i, g := range guards {
					if g.reads != 2 {
						t.Fatalf("round %d: worker %d read %d times, want exactly 2", round, i, g.reads)
					}
				}
			}
			after := e.LocalModelParams(0)
			same := true
			for j := range before {
				if before[j] != after[j] {
					same = false
					break
				}
			}
			if same {
				t.Fatal("gossip rounds left worker 0 unchanged — mix did not run")
			}
		})
	}
}

func TestChocoGossipPreservesReplicaMean(t *testing.T) {
	// The uniform ring mixing matrix is doubly stochastic, so the CHOCO
	// correction gamma * sum_j W_ij (x̂_j - x̂_i) sums to zero over nodes:
	// one mixing step preserves the replica mean (modulo FP error) at any
	// gamma and compression ratio, exactly like the raw path.
	for _, m := range []int{2, 4, 5} {
		s := newSetup(t, m, 1)
		cfg := baseCfg()
		cfg.Strategy = RingGossip
		cfg.Compress = compress.Spec{Kind: compress.KindTopK, Ratio: 0.25}
		cfg.GossipGamma = 0.7
		e := s.engine(t, cfg)
		e.StepLocal(3, 0.1)

		meanOf := func() []float64 {
			mean := make([]float64, e.Dim())
			for i := 0; i < e.Workers(); i++ {
				tensor.Axpy(1, e.LocalModelParams(i), mean)
			}
			tensor.Scal(1/float64(e.Workers()), mean)
			return mean
		}
		before := meanOf()
		e.SyncNow()
		after := meanOf()
		for i := range before {
			if math.Abs(before[i]-after[i]) > 1e-12*(1+math.Abs(before[i])) {
				t.Fatalf("m=%d: CHOCO mixing changed the replica mean at %d: %v vs %v",
					m, i, before[i], after[i])
			}
		}
	}
}

func TestChocoGossipConvergesAtAggressiveRatio(t *testing.T) {
	// Seeded convergence regression: CHOCO gossip at keep-ratio 0.1 must
	// track the uncompressed gossip loss. The estimates absorb what each
	// sparse message drops, so the compressed run lands within a modest
	// factor of the raw run's final loss while shipping ~10x fewer bytes.
	s := newSetup(t, 4, 1)
	cfg := baseCfg()
	cfg.Strategy = RingGossip
	cfg.MaxIters = 800
	cfg.Seed = 9

	raw := s.engine(t, cfg)
	trRaw := raw.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "raw")

	cfg.Compress = compress.Spec{Kind: compress.KindTopK, Ratio: 0.1}
	cfg.GossipGamma = 0.5
	choco := s.engine(t, cfg)
	trChoco := choco.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "choco")

	if trChoco.FinalLoss() >= trChoco.Points[0].Loss/2 {
		t.Fatalf("CHOCO gossip failed to learn: %v -> %v",
			trChoco.Points[0].Loss, trChoco.FinalLoss())
	}
	if tol := 1.35; trChoco.FinalLoss() > tol*trRaw.FinalLoss() {
		t.Fatalf("CHOCO at ratio 0.1 lost track of raw gossip: %v vs %v (tol %gx)",
			trChoco.FinalLoss(), trRaw.FinalLoss(), tol)
	}
	if got, want := choco.CommBytesPerRound(), raw.CommBytesPerRound(); got >= want/2 {
		t.Fatalf("CHOCO payload %d not meaningfully below raw %d", got, want)
	}
}

func TestChocoGossipComputeWorkersBitIdentical(t *testing.T) {
	// The estimate state is engine-owned and only touched inside the
	// fixed-order sync, so neither the compute pool width nor the
	// goroutine-parallel backend can change a bit of the trajectory.
	base := func() Config {
		cfg := baseCfg()
		cfg.Strategy = RingGossip
		cfg.MaxIters = 200
		cfg.Compress = compress.Spec{Kind: compress.KindTopK, Ratio: 0.25}
		cfg.GossipGamma = 0.8
		return cfg
	}
	s := newSetup(t, 4, 1)
	cfg := base()
	cfg.ComputeWorkers = 1
	serial := s.engine(t, cfg)
	serial.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "serial")

	cfg = base()
	cfg.ComputeWorkers = 4
	pool := s.engine(t, cfg)
	pool.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "pool4")

	cfg = base()
	par := s.engine(t, cfg)
	par.RunParallel(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "goroutine")

	ps, pp, pg := serial.GlobalParams(), pool.GlobalParams(), par.GlobalParams()
	for i := range ps {
		if ps[i] != pp[i] {
			t.Fatalf("compute pool diverged at param %d", i)
		}
		if ps[i] != pg[i] {
			t.Fatalf("goroutine backend diverged at param %d", i)
		}
	}
}

func TestRingGossipTwoNodeMixIsPairAverage(t *testing.T) {
	// m = 2: prev and next are the same worker. The mix must count that
	// single neighbor once — (self + other)/2 — not the double-counted
	// (2*other + self)/3 a naive ring indexing produces.
	s := newSetup(t, 2, 1)
	cfg := baseCfg()
	cfg.Strategy = RingGossip
	e := s.engine(t, cfg)
	e.StepLocal(5, 0.1)
	p0 := e.LocalModelParams(0)
	p1 := e.LocalModelParams(1)
	e.SyncNow()
	q0 := e.LocalModelParams(0)
	q1 := e.LocalModelParams(1)
	for j := range p0 {
		want := (p0[j] + p1[j]) / 2
		if q0[j] != want || q1[j] != want {
			t.Fatalf("two-node mix at %d: got %v/%v, want pair average %v", j, q0[j], q1[j], want)
		}
	}
}

func TestGossipGammaValidation(t *testing.T) {
	s := newSetup(t, 4, 1)
	topk := compress.Spec{Kind: compress.KindTopK, Ratio: 0.25}

	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"requires ring", func(c *Config) { c.GossipGamma = 0.5; c.Compress = topk }, "requires RingGossip"},
		{"requires compression", func(c *Config) { c.Strategy = RingGossip; c.GossipGamma = 0.5 }, "requires RingGossip with compression"},
		{"negative", func(c *Config) { c.Strategy = RingGossip; c.Compress = topk; c.GossipGamma = -0.1 }, "out of (0,1]"},
		{"above one", func(c *Config) { c.Strategy = RingGossip; c.Compress = topk; c.GossipGamma = 1.5 }, "out of (0,1]"},
		{"nan", func(c *Config) { c.Strategy = RingGossip; c.Compress = topk; c.GossipGamma = math.NaN() }, "out of (0,1]"},
	}
	for _, tc := range cases {
		cfg := baseCfg()
		tc.mut(&cfg)
		_, err := New(s.proto, s.shards, s.train, s.test, s.dm, cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %v, want %q", tc.name, err, tc.want)
		}
	}

	// The zero value defaults to gamma = 1.
	cfg := baseCfg()
	cfg.Strategy = RingGossip
	cfg.Compress = topk
	e := s.engine(t, cfg)
	if e.cfg.GossipGamma != 1 {
		t.Fatalf("gossip gamma default %v, want 1", e.cfg.GossipGamma)
	}
}

func TestElasticValidationRejectsDegenerateCoefficients(t *testing.T) {
	// Negative or NaN pull strengths used to be silently replaced with the
	// 0.5 default; they must be rejected, as must strengths above 1 (a
	// pull past the target overshoots). Zero stays legal and defaults
	// (TestElasticDefaultsApplied pins that path bit-identical).
	s := newSetup(t, 4, 1)
	for _, bad := range []float64{-0.5, math.NaN(), math.Inf(1), 2.5} {
		cfg := baseCfg()
		cfg.Strategy = ElasticAveraging
		cfg.ElasticAlpha = bad
		if _, err := New(s.proto, s.shards, s.train, s.test, s.dm, cfg); err == nil {
			t.Fatalf("accepted elastic alpha %v", bad)
		}
		cfg = baseCfg()
		cfg.Strategy = ElasticAveraging
		cfg.ElasticBeta = bad
		if _, err := New(s.proto, s.shards, s.train, s.test, s.dm, cfg); err == nil {
			t.Fatalf("accepted elastic beta %v", bad)
		}
	}
}
