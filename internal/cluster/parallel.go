package cluster

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/metrics"
	"repro/internal/tensor"
)

// RunParallel executes the same PASGD procedure as Run, but each worker's
// local-update loop runs in its own goroutine and model averaging is a real
// barrier all-reduce implemented with channels: every worker contributes
// its parameter vector to a reducer, which averages (compressing deltas and
// applying block momentum if configured) and broadcasts the synchronized
// model back.
//
// Given the same Config.Seed, RunParallel produces the same parameter
// trajectory as Run: per-worker RNG streams are independent, workers do not
// interact between averaging points, and floating-point averaging is
// performed in fixed worker order by the reducer. The test suite asserts
// this equivalence — it is the evidence that the lock-step engine used by
// the experiments faithfully simulates a genuinely concurrent system.
func (e *Engine) RunParallel(ctrl Controller, traceName string) *metrics.Trace {
	trace := metrics.NewTrace(traceName)
	info := RoundInfo{LastLoss: math.NaN()}
	nextEval := e.cfg.EvalEvery

	evalLoss := func() float64 { return e.TrainLoss() }

	record := func(tau int, lr float64) {
		loss := e.TrainLoss()
		acc := math.NaN()
		if e.cfg.AccEverySync > 0 && e.testSet != nil && info.Round%e.cfg.AccEverySync == 0 {
			acc = e.TestAccuracy()
		}
		info.LastLoss = loss
		trace.Add(metrics.Point{
			Time: info.Time, Iter: info.Iter, Loss: loss, Acc: acc, Tau: tau, LR: lr,
		})
	}
	record(0, 0)

	// contribute[i] carries worker i's parameters to the reducer;
	// release broadcasts the synchronized parameters back.
	contribute := make([]chan []float64, e.m)
	release := make([]chan []float64, e.m)
	for i := range contribute {
		contribute[i] = make(chan []float64, 1)
		release[i] = make(chan []float64, 1)
	}

	for {
		if e.cfg.MaxIters > 0 && info.Iter >= e.cfg.MaxIters {
			break
		}
		if e.cfg.MaxTime > 0 && info.Time >= e.cfg.MaxTime {
			break
		}
		tau, lr := ctrl.NextRound(info, evalLoss)
		if tau < 1 {
			panic(fmt.Sprintf("cluster: controller %s returned tau=%d", ctrl.Name(), tau))
		}
		if rc, ok := ctrl.(RatioController); ok {
			e.setCompressionRatio(rc.CompressionRatio())
		}
		if bc, ok := ctrl.(BitsController); ok {
			e.setCompressionBits(bc.QuantBits())
		}
		steps := tau
		if e.cfg.MaxIters > 0 {
			if rem := e.cfg.MaxIters - info.Iter; rem < steps {
				steps = rem
			}
		}

		// --- parallel local-update phase ---
		e.beginRound(info.Round)
		var wg sync.WaitGroup
		for i, w := range e.workers {
			wg.Add(1)
			go func(i int, w *worker) {
				defer wg.Done()
				// A down worker's goroutine still participates in the
				// channel protocol (contribute/release) so the barrier can
				// never deadlock; it just performs no steps.
				if e.fltActive == nil || e.fltActive[i] {
					w.runSteps(steps, lr)
				}
				contribute[i] <- w.model.Params()
			}(i, w)
		}

		// --- reduce phase: gather every worker's contribution in fixed
		// order (deterministic floating-point sums), then apply the
		// configured mixing strategy exactly as the lock-step engine does.
		gathered := make([][]float64, e.m)
		for i := 0; i < e.m; i++ {
			gathered[i] = <-contribute[i]
		}
		wg.Wait()
		e.average()

		// --- broadcast phase: signal workers that their replicas hold the
		// post-mix parameters (strategies write them in place).
		for i := range e.workers {
			release[i] <- gathered[i]
		}
		var bg sync.WaitGroup
		for i := range e.workers {
			bg.Add(1)
			go func(i int) {
				defer bg.Done()
				<-release[i]
			}(i)
		}
		bg.Wait()

		e.optSteps += steps
		info.Iter += steps
		info.GradNorm = tensor.Norm2(e.workers[0].grad)
		advanceClock(&info, e, steps)
		info.Round++
		info.Epoch = e.workers[0].sampler.Epoch()
		info.LastTau = tau
		info.LastLR = lr

		if info.Iter >= nextEval {
			record(tau, lr)
			for nextEval <= info.Iter {
				nextEval += e.cfg.EvalEvery
			}
		}
	}
	record(info.LastTau, info.LastLR)
	return trace
}
