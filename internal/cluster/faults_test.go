package cluster

import (
	"math"
	"testing"

	"repro/internal/compress"
	"repro/internal/faults"
	"repro/internal/sgd"
)

func mustFaults(t *testing.T, spec string) *faults.Schedule {
	t.Helper()
	s, err := faults.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func floatsExact(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// faultVariantCfgs enumerates one config per mixing strategy (raw and
// compressed) for the fault tests.
func faultVariantCfgs() map[string]Config {
	base := baseCfg()

	full := base

	topk := base
	topk.Compress = compress.Spec{Kind: compress.KindTopK, Ratio: 0.25, ErrorFeedback: true}

	ring := base
	ring.Strategy = RingGossip

	choco := base
	choco.Strategy = RingGossip
	choco.Compress = compress.Spec{Kind: compress.KindTopK, Ratio: 0.25}
	choco.GossipGamma = 0.8

	elastic := base
	elastic.Strategy = ElasticAveraging

	return map[string]Config{
		"full": full, "full-topk": topk, "ring": ring, "choco": choco, "elastic": elastic,
	}
}

// TestFaultFreeSchedulesBitIdentical pins the PR's core contract: a nil
// schedule, an empty parsed schedule, and an enabled schedule whose first
// event lies beyond the run's horizon all produce bit-identical parameters
// and traces — attaching the fault machinery consumes no RNG and perturbs
// no arithmetic while everyone is up.
func TestFaultFreeSchedulesBitIdentical(t *testing.T) {
	for name, cfg := range faultVariantCfgs() {
		run := func(f *faults.Schedule) (uint64, uint64) {
			s := newSetup(t, 4, 1)
			c := cfg
			c.Faults = f
			e := s.engine(t, c)
			tr := e.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, name)
			return hashParams(e.GlobalParams()), hashTrace(tr)
		}
		pNil, trNil := run(nil)
		pEmpty, trEmpty := run(mustFaults(t, "  "))
		pFar, trFar := run(mustFaults(t, "crash:0@r100000,slow:1x4@r100000-100010"))
		if pEmpty != pNil || trEmpty != trNil {
			t.Errorf("%s: empty schedule diverged (params %x/%x trace %x/%x)",
				name, pEmpty, pNil, trEmpty, trNil)
		}
		if pFar != pNil || trFar != trNil {
			t.Errorf("%s: beyond-horizon schedule diverged (params %x/%x trace %x/%x)",
				name, pFar, pNil, trFar, trNil)
		}
	}
}

// TestChurnMatrixCompletes is the deadlock-freedom matrix: every strategy,
// under crash + crash-recover churn + slow-down + message drop, must finish
// both the lock-step and the goroutine-parallel backend with a finite loss.
// The churn takes two of five workers down mid-run (one permanently), so
// every renormalization and subgraph path is exercised. Bounded by go
// test's timeout: a deadlock fails the suite.
func TestChurnMatrixCompletes(t *testing.T) {
	const spec = "blip:0@r5-12,blip:1@r20-28,crash:2@r40,slow:3x4@r10-30,drop:0.1"
	for name, cfg := range faultVariantCfgs() {
		cfg.Faults = mustFaults(t, spec)
		for _, backend := range []string{"run", "parallel"} {
			s := newSetup(t, 5, 1)
			e := s.engine(t, cfg)
			var tr interface{ FinalLoss() float64 }
			if backend == "run" {
				tr = e.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, name)
			} else {
				tr = e.RunParallel(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, name)
			}
			if loss := tr.FinalLoss(); math.IsNaN(loss) || math.IsInf(loss, 0) {
				t.Errorf("%s/%s: final loss %v under churn", name, backend, loss)
			}
		}
	}
}

// TestAllWorkersDownRoundIsInert pins the all-down semantics: no exchange,
// no gossip-sequence advance, global and replicas stand.
func TestAllWorkersDownRoundIsInert(t *testing.T) {
	s := newSetup(t, 3, 1)
	cfg := baseCfg()
	cfg.Faults = mustFaults(t, "blip:0@r1-1,blip:1@r1-1,blip:2@r1-1")
	e := s.engine(t, cfg)

	e.beginRound(0)
	e.localUpdates(5, 0.1)
	e.average()
	before := e.GlobalParams()

	e.beginRound(1)
	if e.fltNActive != 0 {
		t.Fatalf("active count %d, want 0", e.fltNActive)
	}
	e.localUpdates(5, 0.1)
	e.average()
	if !floatsExact(e.GlobalParams(), before) {
		t.Fatal("all-down round moved the global model")
	}
	if e.lastReport.Max != 0 {
		t.Fatalf("all-down round shipped %d bytes", e.lastReport.Max)
	}
}

// TestRejoinReconciliation pins the rejoin contract on the full-averaging
// path: a blipped worker freezes while down, and on rejoin it pulls the
// priced dense delta and snaps EXACTLY to the global model — matching a
// never-crashed worker bit for bit.
func TestRejoinReconciliation(t *testing.T) {
	s := newSetup(t, 4, 1)
	cfg := baseCfg()
	cfg.Faults = mustFaults(t, "blip:1@r1-2")
	e := s.engine(t, cfg)
	const lr = 0.1

	e.beginRound(0)
	e.localUpdates(5, lr)
	e.average()
	frozen := e.LocalModelParams(1) // the post-sync model worker 1 crashes with

	for r := 1; r <= 2; r++ {
		e.beginRound(r)
		e.localUpdates(5, lr)
		e.average()
	}
	if !floatsExact(e.LocalModelParams(1), frozen) {
		t.Fatal("down worker's replica moved")
	}
	if floatsExact(e.GlobalParams(), frozen) {
		t.Fatal("survivors did not make progress while worker 1 was down")
	}

	e.beginRound(3) // rejoin round: reconcile fires before local updates
	if got, want := e.reconBytes[1], 8*e.dim; got != want {
		t.Fatalf("reconcile payload %d bytes, want %d", got, want)
	}
	if !floatsExact(e.LocalModelParams(1), e.GlobalParams()) {
		t.Fatal("rejoined replica != global model")
	}
	if !floatsExact(e.LocalModelParams(1), e.LocalModelParams(0)) {
		t.Fatal("rejoined replica != never-crashed replica")
	}
}

// TestRejoinRepinsGossipEstimates: under compressed (CHOCO) gossip a
// rejoiner's estimate and projection re-pin to the pulled model, so its
// next wire message is a delta from shared state.
func TestRejoinRepinsGossipEstimates(t *testing.T) {
	s := newSetup(t, 4, 1)
	cfg := baseCfg()
	cfg.Strategy = RingGossip
	cfg.Compress = compress.Spec{Kind: compress.KindTopK, Ratio: 0.25}
	cfg.GossipGamma = 0.8
	cfg.Faults = mustFaults(t, "blip:2@r1-2")
	e := s.engine(t, cfg)
	const lr = 0.1

	for r := 0; r <= 2; r++ {
		e.beginRound(r)
		e.localUpdates(5, lr)
		e.average()
	}
	e.beginRound(3)
	if !floatsExact(e.gossip.hat[2], e.global) {
		t.Fatal("rejoined estimate not re-pinned to the pulled model")
	}
	if !floatsExact(e.gossip.proj[2], e.global) {
		t.Fatal("rejoined projection not re-pinned")
	}
	if !floatsExact(e.LocalModelParams(2), e.GlobalParams()) {
		t.Fatal("rejoined replica != pulled model")
	}
}

func TestFaultsValidatedAtConstruction(t *testing.T) {
	s := newSetup(t, 4, 1)
	cfg := baseCfg()
	cfg.Faults = mustFaults(t, "crash:9@r1")
	if _, err := New(s.proto, s.shards, s.train, s.test, s.dm, cfg); err == nil {
		t.Fatal("accepted out-of-range fault worker")
	}
}

// TestAsyncChurnCompletes drives the event-driven engine through
// crash-recover churn plus drops: the run must terminate with a finite
// loss, and work in flight from a crashed client must be expired rather
// than aggregated.
func TestAsyncChurnCompletes(t *testing.T) {
	s := asyncSetup(t, 8)
	cfg := baseAsyncCfg()
	cfg.MaxUpdates = 60
	cfg.Faults = mustFaults(t, "blip:0@r5-20,blip:1@r10-30,crash:2@r25,slow:3x5@r5-40,drop:0.15")
	e := s.async(t, cfg)
	tr := e.Run("async-churn")
	if loss := tr.FinalLoss(); math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("final loss %v under churn", loss)
	}
	if e.Version() == 0 {
		t.Fatal("no aggregations applied under churn")
	}
}

// TestAsyncAllDownTerminates: a schedule that takes the whole population
// down drains the queue and Run returns instead of spinning.
func TestAsyncAllDownTerminates(t *testing.T) {
	s := asyncSetup(t, 4)
	cfg := baseAsyncCfg()
	cfg.Participation, cfg.InFlight = 2, 4
	cfg.MaxUpdates = 1000
	cfg.Faults = mustFaults(t, "crash:0@r3,crash:1@r3,crash:2@r3,crash:3@r3")
	e := s.async(t, cfg)
	tr := e.Run("async-all-down")
	if tr.Len() == 0 {
		t.Fatal("no trace points")
	}
	if e.Version() >= 1000 {
		t.Fatal("run did not stop at the crash wall")
	}
}

func TestAsyncFaultsValidatedAtConstruction(t *testing.T) {
	s := asyncSetup(t, 4)
	cfg := baseAsyncCfg()
	cfg.Faults = mustFaults(t, "blip:7@r1-2")
	if _, err := NewAsync(s.proto, s.shards, s.train, s.test, s.dm, cfg); err == nil {
		t.Fatal("accepted out-of-range fault worker")
	}
}

// TestAsyncFaultFreeScheduleBitIdentical: the async engine honors the same
// zero-fault bit-identity contract as the lock-step engines.
func TestAsyncFaultFreeScheduleBitIdentical(t *testing.T) {
	run := func(f *faults.Schedule) uint64 {
		s := asyncSetup(t, 8)
		cfg := baseAsyncCfg()
		cfg.Faults = f
		e := s.async(t, cfg)
		e.Run("async")
		return hashParams(e.GlobalParams())
	}
	if run(nil) != run(mustFaults(t, "crash:0@r100000")) {
		t.Fatal("beyond-horizon schedule diverged")
	}
}
