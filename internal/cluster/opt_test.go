package cluster

import (
	"testing"

	"repro/internal/compress"
	"repro/internal/opt"
	"repro/internal/sgd"
)

// TestLegacyShorthandsMatchOptimizerLayer: the legacy Config.Momentum /
// Config.BlockMomentum shorthands and their optimizer-layer spellings
// (Opt momentum rule; GlobalMomentum) are the same arithmetic down to the
// bit — the refactor moved the code, not the trajectory.
func TestLegacyShorthandsMatchOptimizerLayer(t *testing.T) {
	run := func(cfg Config) (uint64, uint64) {
		s := newSetup(t, 4, 1)
		e := s.engine(t, cfg)
		tr := e.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "legacy-vs-opt")
		return hashParams(e.GlobalParams()), hashTrace(tr)
	}
	legacy := baseCfg()
	legacy.Momentum = 0.9
	legacy.BlockMomentum = 0.3
	layered := baseCfg()
	layered.Opt = opt.Config{Rule: opt.RuleMomentum, Momentum: 0.9}
	layered.GlobalMomentum = 0.3
	lp, lt := run(legacy)
	op, ot := run(layered)
	if lp != op || lt != ot {
		t.Fatalf("optimizer-layer spelling diverged from legacy shorthand (params %#x/%#x trace %#x/%#x)",
			op, lp, ot, lt)
	}
}

// TestOptimizerSerialPoolBitIdentical extends the golden pool contract to
// the new update rules: workers remain independent between averaging points
// under Adam (local and wire-synced moments through CHOCO) and under
// per-node global momentum, so the compute pool width cannot change a bit.
func TestOptimizerSerialPoolBitIdentical(t *testing.T) {
	adam := baseCfg()
	adam.Opt = opt.Config{Rule: opt.RuleAdam}

	synced := baseCfg()
	synced.Opt = opt.Config{Rule: opt.RuleAdam, SyncedMoments: true}

	choco := baseCfg()
	choco.Strategy = RingGossip
	choco.Compress = compress.Spec{Kind: compress.KindTopK, Ratio: 0.25, Wire: compress.WireFloat32}
	choco.GossipGamma = 0.8
	choco.Opt = opt.Config{Rule: opt.RuleAdam, SyncedMoments: true}

	slowmo := baseCfg()
	slowmo.Strategy = RingGossip
	slowmo.Opt = opt.Config{Rule: opt.RuleNesterov, Momentum: 0.9}
	slowmo.GlobalMomentum = 0.2

	cases := []struct {
		name string
		cfg  Config
	}{
		{"adam", adam}, {"adam-synced", synced}, {"adam-synced-choco", choco}, {"slowmo-ring", slowmo},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(pool int) (uint64, uint64) {
				s := newSetup(t, 4, 1)
				cfg := tc.cfg
				cfg.ComputeWorkers = pool
				e := s.engine(t, cfg)
				tr := e.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.05}}, tc.name)
				return hashParams(e.GlobalParams()), hashTrace(tr)
			}
			sp, st := run(1)
			pp, pt := run(4)
			if sp != pp || st != pt {
				t.Fatalf("pool4 diverged from serial (params %#x/%#x trace %#x/%#x)", pp, sp, pt, st)
			}
		})
	}
}

// TestRejoinReconciliationAdamSynced pins the optimizer half of the rejoin
// contract: with wire-synced Adam moments, a rejoining worker pulls the
// extended vector (params + synced second moment, priced dense) and ends the
// reconciliation matching a never-crashed worker BIT FOR BIT — parameters,
// every optimizer state vector, and the bias-correction step clock.
func TestRejoinReconciliationAdamSynced(t *testing.T) {
	s := newSetup(t, 4, 1)
	cfg := baseCfg()
	cfg.Opt = opt.Config{Rule: opt.RuleAdam, SyncedMoments: true}
	cfg.Faults = mustFaults(t, "blip:1@r1-2")
	e := s.engine(t, cfg)
	const lr = 0.02

	round := func(r int) {
		e.beginRound(r)
		e.localUpdates(5, lr)
		e.optSteps += 5 // mirror the Run loop's continuously-active step count
		e.average()
	}
	for r := 0; r <= 2; r++ {
		round(r)
	}

	e.beginRound(3) // rejoin round: reconcile fires before local updates
	if e.xdim <= e.dim {
		t.Fatalf("synced moments did not extend the wire vector (xdim %d, dim %d)", e.xdim, e.dim)
	}
	if got, want := e.reconBytes[1], 8*e.xdim; got != want {
		t.Fatalf("reconcile payload %d bytes, want %d (the extended vector)", got, want)
	}
	if !floatsExact(e.LocalModelParams(1), e.LocalModelParams(0)) {
		t.Fatal("rejoined replica != never-crashed replica")
	}
	w0, w1 := e.workers[0].opt, e.workers[1].opt
	if w0.Steps() != w1.Steps() {
		t.Fatalf("step clocks diverge after reconcile: %d vs %d", w1.Steps(), w0.Steps())
	}
	s0, s1 := w0.State(), w1.State()
	for k := range s0 {
		if !floatsExact(s0[k].Vec, s1[k].Vec) {
			t.Fatalf("optimizer state %q differs between rejoined and never-crashed workers", s0[k].Name)
		}
	}

	// The restored state is not merely equal at the snapshot: the two
	// workers march in lockstep through the next full round.
	e.localUpdates(5, lr)
	e.optSteps += 5
	e.average()
	if !floatsExact(e.LocalModelParams(1), e.LocalModelParams(0)) {
		t.Fatal("rejoined replica diverged one round after reconcile")
	}
	for k := range s0 {
		if !floatsExact(s0[k].Vec, s1[k].Vec) {
			t.Fatalf("optimizer state %q diverged one round after reconcile", s0[k].Name)
		}
	}
}

// TestGlobalMomentumRenormUnderChurn pins the shared-buffer renormalization
// rule: when membership shrinks, the global-momentum buffer scales by the
// surviving fraction |A_t ∩ A_prev| / |A_prev|; unchanged-membership and
// pure-rejoin rounds are bitwise no-ops.
func TestGlobalMomentumRenormUnderChurn(t *testing.T) {
	s := newSetup(t, 4, 1)
	cfg := baseCfg()
	cfg.GlobalMomentum = 0.5
	cfg.Faults = mustFaults(t, "blip:1@r2-3")
	e := s.engine(t, cfg)
	const lr = 0.1

	round := func(r int) {
		e.beginRound(r)
		e.localUpdates(5, lr)
		e.average()
	}
	round(0)
	round(1)

	snap := func() []float64 { return append([]float64(nil), e.gmom.Buf()...) }
	nonzero := func(v []float64) bool {
		for _, x := range v {
			if x != 0 {
				return true
			}
		}
		return false
	}
	pre := snap()
	if !nonzero(pre) {
		t.Fatal("global-momentum buffer empty after two full rounds")
	}
	want := snap()
	for j := range want {
		want[j] *= 3.0 / 4.0
	}
	e.beginRound(2) // worker 1 drops: 3 of the previous 4 survive
	if !floatsExact(e.gmom.Buf(), want) {
		t.Fatal("crash round did not renormalize the buffer by 3/4")
	}
	e.localUpdates(5, lr)
	e.average()

	pre = snap()
	e.beginRound(3) // unchanged membership: factor 1, bitwise no-op
	if !floatsExact(e.gmom.Buf(), pre) {
		t.Fatal("unchanged membership perturbed the buffer")
	}
	e.localUpdates(5, lr)
	e.average()

	pre = snap()
	e.beginRound(4) // pure rejoin: every accumulator survived, factor 1
	if !floatsExact(e.gmom.Buf(), pre) {
		t.Fatal("pure-rejoin round perturbed the buffer")
	}
}
