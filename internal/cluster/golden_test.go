package cluster

import (
	"math"
	"testing"

	"repro/internal/compress"
	"repro/internal/metrics"
	"repro/internal/sgd"
)

// Golden traces captured from the pre-comm-layer engine (PR 1 tree). The
// communication-layer refactor must keep every legacy path — and, because
// the index-merge accumulates the same values in the same worker order, the
// compressed path too — bit-identical: same parameters, same trace times,
// same losses, same RNG consumption.

// hashBits folds a float64's bit pattern into an FNV-1a accumulator
// (little-endian byte order, matching the capture program).
func hashBits(h *uint64, v float64) {
	const prime64 = 1099511628211
	u := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		*h ^= uint64(byte(u >> (8 * i)))
		*h *= prime64
	}
}

func hashParams(p []float64) uint64 {
	var sum uint64 = 14695981039346656037
	for _, v := range p {
		hashBits(&sum, v)
	}
	return sum
}

func hashTrace(tr *metrics.Trace) uint64 {
	var sum uint64 = 14695981039346656037
	for _, p := range tr.Points {
		hashBits(&sum, p.Time)
		hashBits(&sum, p.Loss)
	}
	return sum
}

func TestGoldenTracesBitIdentical(t *testing.T) {
	base := baseCfg()

	ring := base
	ring.Strategy = RingGossip

	elastic := base
	elastic.Strategy = ElasticAveraging

	blockmom := base
	blockmom.Momentum = 0.9
	blockmom.BlockMomentum = 0.3

	topk := base
	topk.Compress = compress.Spec{Kind: compress.KindTopK, Ratio: 0.25, ErrorFeedback: true}

	cases := []struct {
		name      string
		cfg       Config
		bandwidth float64
		params    uint64
		trace     uint64
		finalTime float64
	}{
		{"full", base, 0, 0x40ee2aeb9872f8f8, 0x65f220237db69c2c, 480},
		{"ring", ring, 0, 0x209d53efaf08115d, 0xf96320afb58a2d19, 480},
		{"elastic", elastic, 0, 0xf4d594bd9ed3bc7b, 0x909d5859bae12b34, 480},
		{"blockmom", blockmom, 0, 0x6d9e57e85c55acd4, 0x992565660d92cfc4, 480},
		{"bw64-dense", base, 64, 0x40ee2aeb9872f8f8, 0xc904431c23792786, 920},
		{"topk-ef", topk, 0, 0x3b418a62fdd09c91, 0x2cd5fc15c5a7b0b2, 480},
	}
	// Every golden case must hold under both the legacy serial local-update
	// loop and the fanned-out compute pool: workers are independent between
	// averaging points, so pool width cannot change a bit of the trajectory.
	for _, pool := range []struct {
		suffix  string
		workers int
	}{
		{"", 1},
		{"/pool4", 4},
	} {
		for _, tc := range cases {
			cfg := tc.cfg
			cfg.ComputeWorkers = pool.workers
			t.Run(tc.name+pool.suffix, func(t *testing.T) {
				s := newSetup(t, 4, 1)
				s.dm.Bandwidth = tc.bandwidth
				e := s.engine(t, cfg)
				tr := e.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, tc.name)
				if got := hashParams(e.GlobalParams()); got != tc.params {
					t.Errorf("params hash %#016x, golden %#016x", got, tc.params)
				}
				if got := hashTrace(tr); got != tc.trace {
					t.Errorf("trace hash %#016x, golden %#016x", got, tc.trace)
				}
				if got := tr.Last().Time; got != tc.finalTime {
					t.Errorf("final time %v, golden %v", got, tc.finalTime)
				}
			})
		}
	}
}
