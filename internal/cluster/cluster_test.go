package cluster

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/delaymodel"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/sgd"
)

// testSetup builds a small logistic-regression PASGD problem.
type testSetup struct {
	proto  *nn.Network
	shards []*data.Dataset
	train  *data.Dataset
	test   *data.Dataset
	dm     *delaymodel.Model
}

func newSetup(t *testing.T, m int, alpha float64) *testSetup {
	t.Helper()
	r := rng.New(100)
	train := data.GaussianBlobs(data.GaussianBlobsConfig{
		Classes: 4, Dim: 10, N: 800, Separation: 4, Noise: 1.2,
	}, r)
	test := data.GaussianBlobs(data.GaussianBlobsConfig{
		Classes: 4, Dim: 10, N: 200, Separation: 4, Noise: 1.2,
	}, r)
	// Same class geometry for train/test: regenerate with one generator so
	// prototypes differ; for engine tests statistical detail is irrelevant.
	proto := nn.NewLogisticRegression(10, 4)
	proto.InitParams(rng.New(7))
	dm := delaymodel.New(m, rng.Constant{Value: 1}, rng.Constant{Value: alpha}, delaymodel.ConstantScaling{})
	return &testSetup{
		proto:  proto,
		shards: data.ShardIID(train, m, rng.New(8)),
		train:  train,
		test:   test,
		dm:     dm,
	}
}

func (s *testSetup) engine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(s.proto, s.shards, s.train, s.test, s.dm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func baseCfg() Config {
	return Config{
		BatchSize: 16,
		MaxIters:  400,
		EvalEvery: 50,
		Seed:      42,
	}
}

func TestEngineValidation(t *testing.T) {
	s := newSetup(t, 4, 1)
	if _, err := New(s.proto, nil, s.train, s.test, s.dm, baseCfg()); err == nil {
		t.Fatal("accepted zero shards")
	}
	bad := baseCfg()
	bad.BatchSize = 0
	if _, err := New(s.proto, s.shards, s.train, s.test, s.dm, bad); err == nil {
		t.Fatal("accepted zero batch size")
	}
	bad = baseCfg()
	bad.MaxIters, bad.MaxTime = 0, 0
	if _, err := New(s.proto, s.shards, s.train, s.test, s.dm, bad); err == nil {
		t.Fatal("accepted missing stop condition")
	}
	bad = baseCfg()
	bad.StragglerFactor = []float64{1}
	if _, err := New(s.proto, s.shards, s.train, s.test, s.dm, bad); err == nil {
		t.Fatal("accepted wrong straggler factor count")
	}
	wrongDM := delaymodel.New(2, rng.Constant{Value: 1}, rng.Constant{Value: 1}, nil)
	if _, err := New(s.proto, s.shards, s.train, s.test, wrongDM, baseCfg()); err == nil {
		t.Fatal("accepted mismatched delay model worker count")
	}
}

func TestPASGDReducesLoss(t *testing.T) {
	s := newSetup(t, 4, 1)
	e := s.engine(t, baseCfg())
	trace := e.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "pasgd")
	if trace.Len() < 3 {
		t.Fatalf("trace too short: %d", trace.Len())
	}
	first := trace.Points[0].Loss
	last := trace.FinalLoss()
	if last >= first/2 {
		t.Fatalf("PASGD failed to learn: %v -> %v", first, last)
	}
}

func TestTau1EqualsSyncSemantics(t *testing.T) {
	// tau=1 must average after every single local step: the trace's Iter
	// equals its Round count when recorded at boundaries, and the final
	// loss is finite and reduced.
	s := newSetup(t, 4, 1)
	cfg := baseCfg()
	cfg.MaxIters = 100
	e := s.engine(t, cfg)
	trace := e.Run(FixedTau{Tau: 1, Schedule: sgd.Const{Eta: 0.1}}, "sync")
	if trace.FinalLoss() >= trace.Points[0].Loss {
		t.Fatal("sync SGD did not reduce loss")
	}
}

func TestDeterminism(t *testing.T) {
	s := newSetup(t, 4, 1)
	run := func() []float64 {
		e := s.engine(t, baseCfg())
		e.Run(FixedTau{Tau: 4, Schedule: sgd.Const{Eta: 0.1}}, "run")
		return e.GlobalParams()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at param %d", i)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	// The goroutine backend must produce the bitwise-identical parameter
	// trajectory: same seed, same controller.
	s := newSetup(t, 4, 1)
	e1 := s.engine(t, baseCfg())
	e2 := s.engine(t, baseCfg())
	tr1 := e1.Run(FixedTau{Tau: 7, Schedule: sgd.Const{Eta: 0.1}}, "seq")
	tr2 := e2.RunParallel(FixedTau{Tau: 7, Schedule: sgd.Const{Eta: 0.1}}, "par")
	p1, p2 := e1.GlobalParams(), e2.GlobalParams()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("parallel backend diverged at param %d: %v vs %v", i, p1[i], p2[i])
		}
	}
	if tr1.Len() != tr2.Len() {
		t.Fatalf("trace lengths differ: %d vs %d", tr1.Len(), tr2.Len())
	}
	for i := range tr1.Points {
		if tr1.Points[i].Loss != tr2.Points[i].Loss || tr1.Points[i].Time != tr2.Points[i].Time {
			t.Fatalf("traces differ at %d", i)
		}
	}
}

func TestParallelMatchesSequentialWithBlockMomentum(t *testing.T) {
	s := newSetup(t, 4, 1)
	cfg := baseCfg()
	cfg.Momentum = 0.9
	cfg.BlockMomentum = 0.3
	e1 := s.engine(t, cfg)
	e2 := s.engine(t, cfg)
	e1.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.05}}, "seq")
	e2.RunParallel(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.05}}, "par")
	p1, p2 := e1.GlobalParams(), e2.GlobalParams()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("block-momentum parallel diverged at %d", i)
		}
	}
}

func TestLargerTauFasterWallClockPerIteration(t *testing.T) {
	// With constant Y=1, D=1 (alpha=1), tau=10 should finish the same
	// iteration budget in ~(1+1)/(1+0.1) = 1.82x less simulated time.
	s := newSetup(t, 4, 1)
	run := func(tau int) float64 {
		e := s.engine(t, baseCfg())
		trace := e.Run(FixedTau{Tau: tau, Schedule: sgd.Const{Eta: 0.1}}, "t")
		return trace.Last().Time
	}
	t1 := run(1)
	t10 := run(10)
	ratio := t1 / t10
	want := delaymodel.SpeedupConstant(1, 10)
	if math.Abs(ratio-want) > 0.05*want {
		t.Fatalf("wall-clock speedup %v, want ~%v", ratio, want)
	}
}

func TestErrorFloorGrowsWithTau(t *testing.T) {
	// Paper's trade-off: with a fixed LR and enough iterations, larger tau
	// converges to a higher loss floor. Use a noisy problem (small batch).
	s := newSetup(t, 4, 1)
	run := func(tau int) float64 {
		cfg := baseCfg()
		cfg.BatchSize = 4
		cfg.MaxIters = 3000
		cfg.Seed = 11
		e := s.engine(t, cfg)
		trace := e.Run(FixedTau{Tau: tau, Schedule: sgd.Const{Eta: 0.15}}, "t")
		// Average the last few recorded losses to smooth noise.
		n := trace.Len()
		sum := 0.0
		for _, p := range trace.Points[n-5:] {
			sum += p.Loss
		}
		return sum / 5
	}
	floor1 := run(1)
	floor32 := run(32)
	if floor32 <= floor1 {
		t.Fatalf("tau=32 floor %v should exceed tau=1 floor %v", floor32, floor1)
	}
}

func TestStragglerFactorSlowsRounds(t *testing.T) {
	s := newSetup(t, 4, 0.5)
	cfg := baseCfg()
	cfg.MaxIters = 50
	base := s.engine(t, cfg)
	tr1 := base.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "fast")

	cfg2 := cfg
	cfg2.StragglerFactor = []float64{1, 1, 1, 3} // one 3x-slower node
	slow, err := New(s.proto, s.shards, s.train, s.test, s.dm, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	tr2 := slow.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "slow")
	if tr2.Last().Time <= tr1.Last().Time*2 {
		t.Fatalf("straggler should ~3x the round time: %v vs %v",
			tr2.Last().Time, tr1.Last().Time)
	}
}

func TestMaxTimeStops(t *testing.T) {
	s := newSetup(t, 4, 1)
	cfg := baseCfg()
	cfg.MaxIters = 0
	cfg.MaxTime = 50
	e := s.engine(t, cfg)
	trace := e.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "t")
	// Simulated clock must stop within one round of the budget: each
	// round is 5*1+1=6 seconds here.
	if got := trace.Last().Time; got < 50 || got > 60 {
		t.Fatalf("stopped at %v, want within one round past 50", got)
	}
}

func TestAccuracyRecording(t *testing.T) {
	s := newSetup(t, 4, 1)
	cfg := baseCfg()
	cfg.AccEverySync = 1
	e := s.engine(t, cfg)
	trace := e.Run(FixedTau{Tau: 10, Schedule: sgd.Const{Eta: 0.1}}, "t")
	sawAcc := false
	for _, p := range trace.Points {
		if !math.IsNaN(p.Acc) {
			sawAcc = true
			if p.Acc < 0 || p.Acc > 1 {
				t.Fatalf("accuracy out of range: %v", p.Acc)
			}
		}
	}
	if !sawAcc {
		t.Fatal("no accuracy points recorded")
	}
}

func TestEvalSubset(t *testing.T) {
	s := newSetup(t, 4, 1)
	cfg := baseCfg()
	cfg.EvalSubset = 100
	e := s.engine(t, cfg)
	if e.evalBatch.X.Rows != 100 {
		t.Fatalf("eval subset %d rows, want 100", e.evalBatch.X.Rows)
	}
	// Loss must still be finite and positive.
	if l := e.TrainLoss(); l <= 0 || math.IsNaN(l) {
		t.Fatalf("bad eval loss %v", l)
	}
}

func TestBlockMomentumTrainsStably(t *testing.T) {
	s := newSetup(t, 4, 1)
	cfg := baseCfg()
	cfg.Momentum = 0.9
	cfg.BlockMomentum = 0.3
	cfg.MaxIters = 600
	e := s.engine(t, cfg)
	trace := e.Run(FixedTau{Tau: 10, Schedule: sgd.Const{Eta: 0.05}}, "bm")
	if math.IsNaN(trace.FinalLoss()) || math.IsInf(trace.FinalLoss(), 0) {
		t.Fatal("block momentum diverged")
	}
	if trace.FinalLoss() >= trace.Points[0].Loss {
		t.Fatal("block momentum failed to learn")
	}
}

func TestLocalVsSyncModelAccess(t *testing.T) {
	s := newSetup(t, 4, 1)
	e := s.engine(t, baseCfg())
	e.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "t")
	p := e.LocalModelParams(0)
	if len(p) != e.Dim() {
		t.Fatal("local params wrong length")
	}
	// After a run ends at an averaging boundary, local == global.
	g := e.GlobalParams()
	for i := range p {
		if p[i] != g[i] {
			t.Fatal("local model should equal global at sync point")
		}
	}
	if acc := e.EvalParamsAccuracy(p); acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v", acc)
	}
	if l := e.EvalParamsLoss(p); l <= 0 {
		t.Fatalf("loss %v", l)
	}
}

// controllerSpy records the RoundInfo sequence it observes.
type controllerSpy struct {
	infos []RoundInfo
}

func (c *controllerSpy) NextRound(info RoundInfo, _ func() float64) (int, float64) {
	c.infos = append(c.infos, info)
	return 3, 0.1
}
func (c *controllerSpy) Name() string { return "spy" }

func TestControllerSeesMonotoneState(t *testing.T) {
	s := newSetup(t, 4, 1)
	cfg := baseCfg()
	cfg.MaxIters = 90
	e := s.engine(t, cfg)
	spy := &controllerSpy{}
	e.Run(spy, "t")
	if len(spy.infos) != 30 {
		t.Fatalf("controller called %d times, want 30 rounds", len(spy.infos))
	}
	for i := 1; i < len(spy.infos); i++ {
		prev, cur := spy.infos[i-1], spy.infos[i]
		if cur.Iter != prev.Iter+3 {
			t.Fatalf("iter jump %d -> %d", prev.Iter, cur.Iter)
		}
		if cur.Time <= prev.Time {
			t.Fatal("time not advancing")
		}
		if cur.Round != prev.Round+1 {
			t.Fatal("round not advancing")
		}
		if cur.LastTau != 3 {
			t.Fatal("LastTau not propagated")
		}
	}
}

func TestVariableTauController(t *testing.T) {
	// A controller that shrinks tau over rounds must produce decreasing
	// recorded Tau values in the trace.
	s := newSetup(t, 4, 1)
	cfg := baseCfg()
	cfg.MaxIters = 300
	cfg.EvalEvery = 30
	e := s.engine(t, cfg)
	ctrl := &shrinkingTau{tau: 16}
	trace := e.Run(ctrl, "shrink")
	first := trace.Points[1].Tau
	last := trace.Last().Tau
	if first <= last {
		t.Fatalf("tau did not shrink in trace: first %d last %d", first, last)
	}
}

type shrinkingTau struct{ tau int }

func (s *shrinkingTau) NextRound(info RoundInfo, _ func() float64) (int, float64) {
	if info.Round > 0 && info.Round%3 == 0 && s.tau > 1 {
		s.tau /= 2
		if s.tau < 1 {
			s.tau = 1
		}
	}
	return s.tau, 0.1
}
func (s *shrinkingTau) Name() string { return "shrinking" }

// timingProbe records the RoundInfo timing fields the engine reports.
type timingProbe struct {
	rounds    int
	lastInfo  RoundInfo
	linkTimes []float64
}

func (p *timingProbe) Name() string { return "timing-probe" }

func (p *timingProbe) NextRound(info RoundInfo, _ func() float64) (int, float64) {
	p.rounds++
	p.lastInfo = info
	if info.LinkTimes != nil {
		p.linkTimes = append([]float64(nil), info.LinkTimes...)
	}
	return 5, 0.1
}

func TestRoundInfoTimingFields(t *testing.T) {
	s := newSetup(t, 4, 1)
	s.dm.Bandwidth = 64
	links := make([]delaymodel.Link, 4)
	links[3].Bandwidth = 6.4
	s.dm.Links = links
	e := s.engine(t, baseCfg())
	probe := &timingProbe{}
	e.Run(probe, "timing")
	info := probe.lastInfo
	if info.CommTime <= 0 || info.ComputeTime <= 0 {
		t.Fatalf("timing not populated: comm %v compute %v", info.CommTime, info.ComputeTime)
	}
	if got := info.CommTime + info.ComputeTime; math.Abs(got-info.Time) > 1e-9*info.Time {
		t.Fatalf("comm %v + compute %v != time %v", info.CommTime, info.ComputeTime, info.Time)
	}
	if info.LastCommTime <= 0 || info.LastCommTime > info.CommTime {
		t.Fatalf("LastCommTime %v out of range (cumulative %v)", info.LastCommTime, info.CommTime)
	}
	if len(probe.linkTimes) != 4 {
		t.Fatalf("LinkTimes %v, want 4 entries", probe.linkTimes)
	}
	// Worker 3's 10x slower link must dominate the schedule.
	for i := 0; i < 3; i++ {
		if probe.linkTimes[3] <= probe.linkTimes[i] {
			t.Fatalf("slow link not slowest: %v", probe.linkTimes)
		}
	}
	// The parallel backend reports the same timing.
	e2 := s.engine(t, baseCfg())
	probe2 := &timingProbe{}
	e2.RunParallel(probe2, "timing-parallel")
	if probe2.lastInfo.CommTime != info.CommTime || probe2.lastInfo.ComputeTime != info.ComputeTime {
		t.Fatalf("parallel timing diverged: %+v vs %+v", probe2.lastInfo, info)
	}
}
