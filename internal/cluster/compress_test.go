package cluster

import (
	"testing"

	"repro/internal/compress"
	"repro/internal/sgd"
)

// everySpec is the full set of shipped compressors (with and without error
// feedback for the stochastic/biased ones) that the engine must support.
func everySpec() []compress.Spec {
	return []compress.Spec{
		{Kind: compress.KindIdentity},
		{Kind: compress.KindTopK, Ratio: 0.25},
		{Kind: compress.KindTopK, Ratio: 0.25, ErrorFeedback: true},
		{Kind: compress.KindRandK, Ratio: 0.5},
		{Kind: compress.KindRandK, Ratio: 0.5, ErrorFeedback: true},
		{Kind: compress.KindQSGD, Bits: 6},
		{Kind: compress.KindQSGD, Bits: 6, ErrorFeedback: true},
	}
}

func TestParallelMatchesSequentialUnderEveryCompressor(t *testing.T) {
	s := newSetup(t, 4, 1)
	for _, spec := range everySpec() {
		t.Run(spec.String(), func(t *testing.T) {
			cfg := baseCfg()
			cfg.MaxIters = 200
			cfg.Compress = spec
			e1 := s.engine(t, cfg)
			e2 := s.engine(t, cfg)
			tr1 := e1.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "seq")
			tr2 := e2.RunParallel(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "par")
			p1, p2 := e1.GlobalParams(), e2.GlobalParams()
			for i := range p1 {
				if p1[i] != p2[i] {
					t.Fatalf("parallel diverged at param %d: %v vs %v", i, p1[i], p2[i])
				}
			}
			if tr1.Len() != tr2.Len() {
				t.Fatalf("trace lengths differ: %d vs %d", tr1.Len(), tr2.Len())
			}
			for i := range tr1.Points {
				if tr1.Points[i].Loss != tr2.Points[i].Loss || tr1.Points[i].Time != tr2.Points[i].Time {
					t.Fatalf("traces differ at point %d", i)
				}
			}
		})
	}
}

func TestIdentityCompressionMatchesUncompressedClosely(t *testing.T) {
	// The identity compressor routes averaging through the delta protocol:
	// global + mean(x_i - global) instead of mean(x_i). Algebraically equal,
	// so trajectories must agree to float rounding and train identically
	// well (they are NOT required to be bitwise equal — only the None path
	// preserves the legacy arithmetic).
	s := newSetup(t, 4, 1)
	cfg := baseCfg()
	base := s.engine(t, cfg)
	trBase := base.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "raw")

	cfg.Compress = compress.Spec{Kind: compress.KindIdentity}
	comp := s.engine(t, cfg)
	trComp := comp.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "identity")

	pb, pc := base.GlobalParams(), comp.GlobalParams()
	for i := range pb {
		d := pb[i] - pc[i]
		if d < -1e-9 || d > 1e-9 {
			t.Fatalf("identity path drifted at param %d: %v vs %v", i, pb[i], pc[i])
		}
	}
	if trComp.FinalLoss() >= trBase.Points[0].Loss/2 {
		t.Fatal("identity-compressed run failed to learn")
	}
}

func TestCompressedPASGDConvergesWithErrorFeedback(t *testing.T) {
	// Aggressive top-k with error feedback must still train.
	s := newSetup(t, 4, 1)
	cfg := baseCfg()
	cfg.MaxIters = 800
	cfg.Compress = compress.Spec{Kind: compress.KindTopK, Ratio: 0.1, ErrorFeedback: true}
	e := s.engine(t, cfg)
	trace := e.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "topk-ef")
	if trace.FinalLoss() >= trace.Points[0].Loss/2 {
		t.Fatalf("compressed PASGD failed to learn: %v -> %v",
			trace.Points[0].Loss, trace.FinalLoss())
	}
}

func TestCompressionShrinksRoundPayload(t *testing.T) {
	s := newSetup(t, 4, 1)
	cfg := baseCfg()
	cfg.MaxIters = 50
	dense := s.engine(t, cfg)
	dense.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "dense")
	denseBytes := dense.CommBytesPerRound()
	if want := 8 * dense.Dim(); denseBytes != want {
		t.Fatalf("dense payload %d, want %d", denseBytes, want)
	}

	cfg.Compress = compress.Spec{Kind: compress.KindTopK, Ratio: 0.1}
	sparse := s.engine(t, cfg)
	sparse.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "sparse")
	if got := sparse.CommBytesPerRound(); got >= denseBytes/2 {
		t.Fatalf("top-k payload %d not meaningfully below dense %d", got, denseBytes)
	}
}

func TestBandwidthChargesPayloadTime(t *testing.T) {
	// Same iteration budget, finite bandwidth: the compressed run must
	// finish in less simulated wall-clock time than the dense run.
	s := newSetup(t, 4, 1)
	s.dm.Bandwidth = 64 // bytes per simulated second: dense sync is expensive
	defer func() { s.dm.Bandwidth = 0 }()

	run := func(spec compress.Spec) float64 {
		cfg := baseCfg()
		cfg.MaxIters = 100
		cfg.Compress = spec
		e := s.engine(t, cfg)
		return e.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "t").Last().Time
	}
	denseT := run(compress.Spec{})
	sparseT := run(compress.Spec{Kind: compress.KindTopK, Ratio: 0.1, ErrorFeedback: true})
	if sparseT >= denseT {
		t.Fatalf("compressed run not faster under finite bandwidth: %v vs %v", sparseT, denseT)
	}
}

func TestCompressionRejectsInvalidSpec(t *testing.T) {
	s := newSetup(t, 4, 1)
	cfg := baseCfg()
	cfg.Compress = compress.Spec{Kind: compress.KindTopK, Ratio: 7}
	if _, err := New(s.proto, s.shards, s.train, s.test, s.dm, cfg); err == nil {
		t.Fatal("accepted invalid compress spec")
	}
}

func TestChocoRingIdentityMatchesFullAveragingOnTriangle(t *testing.T) {
	// RECAPTURED REGRESSION (PR 5). The old compressed ring referenced the
	// exact replica mean — oracle state no decentralized node could
	// reconstruct — which made every compressor's m = 3 trajectory track
	// compressed full averaging. CHOCO-SGD's per-node estimates remove that
	// shared reference, so the "triangle == full averaging" anchor now holds
	// where it should: with LOSSLESS compression the estimates pin the
	// replicas exactly, the m = 3 ring mix (prev + self + next)/3 is the
	// global mean, and the trajectory must agree with compressed full
	// averaging to float rounding. Lossy compressors are now a genuinely
	// different (decentralized) algorithm; their behavior is pinned by the
	// CHOCO tests in choco_test.go and the gossip-compression ablation grid.
	run := func(strat Strategy) []float64 {
		s := newSetup(t, 3, 1)
		cfg := baseCfg()
		cfg.MaxIters = 200
		cfg.Strategy = strat
		cfg.Compress = compress.Spec{Kind: compress.KindIdentity}
		e := s.engine(t, cfg)
		e.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "t")
		return e.GlobalParams()
	}
	full := run(FullAveraging)
	ring := run(RingGossip)
	for i := range full {
		d := full[i] - ring[i]
		if d < -1e-9 || d > 1e-9 {
			t.Fatalf("ring diverged from full averaging at param %d: %v vs %v",
				i, full[i], ring[i])
		}
	}
}

func TestCompressedRingChargesPayloadAwareDelay(t *testing.T) {
	// Ring gossip must report its (compressed) payload and finish the same
	// iteration budget in less simulated time than dense ring gossip on a
	// bandwidth-constrained link.
	s := newSetup(t, 4, 1)
	s.dm.Bandwidth = 64
	run := func(spec compress.Spec) (*Engine, float64) {
		cfg := baseCfg()
		cfg.MaxIters = 100
		cfg.Strategy = RingGossip
		cfg.Compress = spec
		e := s.engine(t, cfg)
		tr := e.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "ring")
		return e, tr.Last().Time
	}
	dense, denseT := run(compress.Spec{})
	if got, want := dense.CommBytesPerRound(), 8*dense.Dim(); got != want {
		t.Fatalf("dense ring payload %d, want %d", got, want)
	}
	sparse, sparseT := run(compress.Spec{Kind: compress.KindTopK, Ratio: 0.1, ErrorFeedback: true})
	if got := sparse.CommBytesPerRound(); got >= dense.CommBytesPerRound()/2 {
		t.Fatalf("compressed ring payload %d not meaningfully below dense %d",
			got, dense.CommBytesPerRound())
	}
	if sparseT >= denseT {
		t.Fatalf("compressed ring not faster under finite bandwidth: %v vs %v", sparseT, denseT)
	}
}

func TestCompressedElasticTrainsAndReportsPayload(t *testing.T) {
	s := newSetup(t, 4, 1)
	cfg := baseCfg()
	cfg.MaxIters = 800
	cfg.Strategy = ElasticAveraging
	cfg.Compress = compress.Spec{Kind: compress.KindTopK, Ratio: 0.25, ErrorFeedback: true}
	e := s.engine(t, cfg)
	tr := e.Run(FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, "easgd-topk")
	if tr.FinalLoss() >= tr.Points[0].Loss/2 {
		t.Fatalf("compressed elastic averaging failed to learn: %v -> %v",
			tr.Points[0].Loss, tr.FinalLoss())
	}
	if got := e.CommBytesPerRound(); got >= 8*e.Dim() {
		t.Fatalf("compressed elastic payload %d not below dense %d", got, 8*e.Dim())
	}
}

// ratioSpy is a RatioController that walks the ratio up each round.
type ratioSpy struct {
	FixedTau
	ratio float64
}

func (r *ratioSpy) NextRound(info RoundInfo, eval func() float64) (int, float64) {
	r.ratio += 0.2
	if r.ratio > 1 {
		r.ratio = 1
	}
	return r.FixedTau.NextRound(info, eval)
}

func (r *ratioSpy) CompressionRatio() float64 { return r.ratio }

func TestRatioControllerDrivesAdaptiveCompressors(t *testing.T) {
	s := newSetup(t, 4, 1)
	cfg := baseCfg()
	cfg.MaxIters = 100
	cfg.Compress = compress.Spec{Kind: compress.KindTopK, Ratio: 0.05}
	e := s.engine(t, cfg)
	ctrl := &ratioSpy{FixedTau: FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}, ratio: 0.05}
	e.Run(ctrl, "adaptive")
	// By the last rounds the ratio reached 1.0, so the final payload must
	// be the full support: dim coordinates at 12 bytes each.
	if got, want := e.CommBytesPerRound(), 12*e.Dim(); got != want {
		t.Fatalf("final payload %d, want %d (ratio driven to 1)", got, want)
	}
}
