// Package delaymodel implements the paper's runtime model (Sec 3.1): the
// per-iteration wall-clock time of fully synchronous SGD and of
// periodic-averaging SGD (PASGD) when local-step compute times Y_{i,k} are
// i.i.d. random variables and each all-node broadcast costs D = D0 * s(m).
//
// Beyond the paper, the model is size-aware: a Model with a finite Bandwidth
// (bytes per simulated second) charges each broadcast
//
//	D = (D0 + bytes/Bandwidth) * s(m)
//
// where bytes is the per-link payload of the round — the compressed message
// size when internal/compress is active, the dense 8*dim otherwise. The
// scaling s(m) multiplies the transfer term too, because every hop of the
// broadcast topology carries the payload. Bandwidth = 0 means an infinite
// link: SampleDBytes then degenerates to exactly the fixed-CommD0 cost of
// SampleD (same value, same RNG draws), so every pre-existing profile and
// trace is the bandwidth=infinity special case, bit for bit.
//
// Only SampleDBytes/MeanDBytes/AlphaBytes are size-aware. The paper-model
// helpers (SampleD, MeanD, Alpha, SampleSyncIteration, SampleRound,
// MeasureBreakdown, and the closed forms) deliberately charge the size-free
// D of Sec 3.1 even on a bandwidth-constrained Model — pass the payload
// explicitly via the *Bytes methods when analyzing a constrained link.
//
// The model supplies three things to the rest of the repo:
//
//  1. closed-form results where they exist (speed-up eq 12, exponential
//     order statistics),
//  2. Monte-Carlo sampling of per-iteration and per-round times for the
//     runtime-distribution experiments (Fig 5), and
//  3. the simulated clock that internal/cluster advances during training,
//     which is what puts "wall-clock time" on the x-axis of Figs 9-13.
package delaymodel

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Scaling describes how the broadcast delay grows with the number of
// workers m: D = D0 * s(m) (paper eq 5).
type Scaling interface {
	Factor(m int) float64
	String() string
}

// ConstantScaling ignores m: s(m) = 1.
type ConstantScaling struct{}

// Factor implements Scaling.
func (ConstantScaling) Factor(int) float64 { return 1 }

func (ConstantScaling) String() string { return "s(m)=1" }

// LinearScaling models a flat all-to-one gather: s(m) = m.
type LinearScaling struct{}

// Factor implements Scaling.
func (LinearScaling) Factor(m int) float64 { return float64(m) }

func (LinearScaling) String() string { return "s(m)=m" }

// TreeScaling models a reduction tree: s(m) = 2*log2(m) for m >= 2, 1 for
// m = 1 (paper's parameter-server example, citing FireCaffe).
type TreeScaling struct{}

// Factor implements Scaling.
func (TreeScaling) Factor(m int) float64 {
	if m <= 1 {
		return 1
	}
	return 2 * math.Log2(float64(m))
}

func (TreeScaling) String() string { return "s(m)=2log2(m)" }

// Model is the full delay model for a cluster of M workers.
type Model struct {
	M     int              // number of workers
	Y     rng.Distribution // per-local-step compute time at one worker
	D0    rng.Distribution // base inter-node communication delay (latency)
	Scale Scaling          // delay growth with M

	// Bandwidth is the per-link transfer rate in bytes per simulated
	// second; 0 means infinite (the size-free broadcast of the paper's
	// model, and the default for all legacy profiles).
	Bandwidth float64
}

// New builds a delay model, defaulting Scale to ConstantScaling.
func New(m int, y, d0 rng.Distribution, scale Scaling) *Model {
	if m < 1 {
		panic("delaymodel: need at least one worker")
	}
	if scale == nil {
		scale = ConstantScaling{}
	}
	return &Model{M: m, Y: y, D0: d0, Scale: scale}
}

// MeanD returns E[D] = E[D0] * s(M).
func (dm *Model) MeanD() float64 { return dm.D0.Mean() * dm.Scale.Factor(dm.M) }

// MeanY returns E[Y].
func (dm *Model) MeanY() float64 { return dm.Y.Mean() }

// Alpha returns the communication/computation ratio alpha = E[D]/E[Y].
func (dm *Model) Alpha() float64 { return dm.MeanD() / dm.MeanY() }

// SampleD draws one broadcast delay D = D0 * s(M) for a size-free payload
// (the paper's Sec 3.1 model; Bandwidth is ignored — see SampleDBytes).
func (dm *Model) SampleD(r *rng.Rand) float64 {
	return dm.D0.Sample(r) * dm.Scale.Factor(dm.M)
}

// SampleDBytes draws one broadcast delay for a payload of the given size:
// D = (D0 + bytes/Bandwidth) * s(M). With Bandwidth = 0 (infinite link) it
// is exactly SampleD — same value, same RNG consumption — so size-free
// traces are preserved bit-identically.
func (dm *Model) SampleDBytes(r *rng.Rand, bytes int) float64 {
	d := dm.D0.Sample(r)
	if dm.Bandwidth > 0 && bytes > 0 {
		d += float64(bytes) / dm.Bandwidth
	}
	return d * dm.Scale.Factor(dm.M)
}

// MeanDBytes returns E[D] for a payload of the given size:
// (E[D0] + bytes/Bandwidth) * s(M).
func (dm *Model) MeanDBytes(bytes int) float64 {
	d := dm.D0.Mean()
	if dm.Bandwidth > 0 && bytes > 0 {
		d += float64(bytes) / dm.Bandwidth
	}
	return d * dm.Scale.Factor(dm.M)
}

// AlphaBytes returns the communication/computation ratio for a payload of
// the given size: MeanDBytes(bytes) / E[Y].
func (dm *Model) AlphaBytes(bytes int) float64 {
	return dm.MeanDBytes(bytes) / dm.MeanY()
}

// SampleSyncIteration draws one iteration time of fully synchronous SGD
// (paper eq 7): max over workers of one compute time, plus D.
func (dm *Model) SampleSyncIteration(r *rng.Rand) float64 {
	mx := math.Inf(-1)
	for i := 0; i < dm.M; i++ {
		if v := dm.Y.Sample(r); v > mx {
			mx = v
		}
	}
	return mx + dm.SampleD(r)
}

// SampleRound draws the wall-clock time of one PASGD round of tau local
// steps followed by an averaging broadcast: max over workers of the SUM of
// tau compute times, plus D. Dividing by tau gives the per-iteration time
// whose expectation is eq 11.
func (dm *Model) SampleRound(tau int, r *rng.Rand) float64 {
	if tau < 1 {
		panic("delaymodel: tau must be >= 1")
	}
	mx := math.Inf(-1)
	for i := 0; i < dm.M; i++ {
		sum := 0.0
		for k := 0; k < tau; k++ {
			sum += dm.Y.Sample(r)
		}
		if sum > mx {
			mx = sum
		}
	}
	return mx + dm.SampleD(r)
}

// SamplePerIteration draws the per-iteration time of PASGD with period tau
// (round time divided by tau) — the quantity plotted in Fig 5.
func (dm *Model) SamplePerIteration(tau int, r *rng.Rand) float64 {
	return dm.SampleRound(tau, r) / float64(tau)
}

// MCMeanPerIteration estimates E[T_PAvg] (eq 11) by Monte Carlo.
func (dm *Model) MCMeanPerIteration(tau, trials int, r *rng.Rand) float64 {
	sum := 0.0
	for t := 0; t < trials; t++ {
		sum += dm.SamplePerIteration(tau, r)
	}
	return sum / float64(trials)
}

// ExpectedSyncIterationExponential returns the closed-form E[T_sync] =
// y*H_m + E[D] when Y is exponential with mean y (paper Sec 3.2). It
// panics if Y is not exponential.
func (dm *Model) ExpectedSyncIterationExponential() float64 {
	e, ok := dm.Y.(rng.Exponential)
	if !ok {
		panic("delaymodel: closed form requires exponential Y")
	}
	return rng.ExpectedMaxExponential(e.MeanVal, dm.M) + dm.MeanD()
}

// SpeedupConstant returns the paper's eq 12 speed-up of PASGD over fully
// synchronous SGD when Y and D are constants:
//
//	E[T_sync]/E[T_PAvg] = (1 + alpha) / (1 + alpha/tau).
func SpeedupConstant(alpha float64, tau int) float64 {
	if tau < 1 {
		panic("delaymodel: tau must be >= 1")
	}
	return (1 + alpha) / (1 + alpha/float64(tau))
}

// SpeedupMC estimates the true speed-up E[T_sync]/E[T_PAvg] for arbitrary
// distributions by Monte Carlo.
func (dm *Model) SpeedupMC(tau, trials int, r *rng.Rand) float64 {
	sync := 0.0
	pavg := 0.0
	for t := 0; t < trials; t++ {
		sync += dm.SampleSyncIteration(r)
		pavg += dm.SamplePerIteration(tau, r)
	}
	return sync / pavg
}

// Profile is a named calibration of the delay model to a deep-network
// architecture, standing in for the paper's Fig 8 measurements. ComputeY is
// the per-local-step compute-time distribution; CommD0 the base broadcast
// delay. Alpha(profile) = E[D]/E[Y] reproduces the paper's qualitative
// claim: VGG-16's communication is ~4x its computation, while ResNet-50's
// communication is about half its computation.
type Profile struct {
	Name     string
	ComputeY rng.Distribution
	CommD0   rng.Distribution
	// Bandwidth is the per-link transfer rate in bytes per simulated
	// second (0 = infinite, the legacy size-free behavior).
	Bandwidth float64
}

// VGG16Profile returns the VGG-16-like calibration (alpha = 4): 0.05 s
// compute per iteration, 0.20 s broadcast. The absolute scale is arbitrary
// simulator seconds; the ratio is what Fig 8 pins down.
func VGG16Profile() Profile {
	return Profile{
		Name:     "VGG16-like",
		ComputeY: rng.ShiftedExponential{Shift: 0.04, Scale: 0.01},
		CommD0:   rng.Constant{Value: 0.20},
	}
}

// ResNet50Profile returns the ResNet-50-like calibration (alpha = 0.5):
// 0.12 s compute per iteration, 0.06 s broadcast.
func ResNet50Profile() Profile {
	return Profile{
		Name:     "ResNet50-like",
		ComputeY: rng.ShiftedExponential{Shift: 0.10, Scale: 0.02},
		CommD0:   rng.Constant{Value: 0.06},
	}
}

// Constrained returns a copy of the profile with a finite per-link
// bandwidth (bytes per simulated second), turning it into a
// bandwidth-limited scenario where communication cost depends on payload
// size — the setting where gradient compression pays off.
func (p Profile) Constrained(bandwidth float64) Profile {
	p.Name = fmt.Sprintf("%s@%gB/s", p.Name, bandwidth)
	p.Bandwidth = bandwidth
	return p
}

// FederatedProfile models a WAN/edge link: negligible fixed latency but a
// tight bandwidth, so broadcast cost is dominated by payload size. compute
// is the mean per-step compute time; bandwidth is in bytes per simulated
// second.
func FederatedProfile(compute, bandwidth float64) Profile {
	return Profile{
		Name:      "federated",
		ComputeY:  rng.ShiftedExponential{Shift: 0.8 * compute, Scale: 0.2 * compute},
		CommD0:    rng.Constant{Value: 0.05 * compute},
		Bandwidth: bandwidth,
	}
}

// Model builds a delay model for m workers from the profile.
func (p Profile) Model(m int, scale Scaling) *Model {
	dm := New(m, p.ComputeY, p.CommD0, scale)
	dm.Bandwidth = p.Bandwidth
	return dm
}

// Breakdown is the computation/communication split of a run of iterations,
// the quantity shown as stacked bars in Fig 8.
type Breakdown struct {
	Profile   string
	Tau       int
	Iters     int
	Compute   float64 // total compute wall-clock (max across workers per round)
	Comm      float64 // total communication wall-clock
	WallClock float64 // Compute + Comm
}

// MeasureBreakdown simulates `iters` iterations of PASGD with period tau
// and splits the elapsed time into compute and communication components.
func MeasureBreakdown(p Profile, m, tau, iters int, r *rng.Rand) Breakdown {
	dm := p.Model(m, ConstantScaling{})
	b := Breakdown{Profile: p.Name, Tau: tau, Iters: iters}
	done := 0
	for done < iters {
		steps := tau
		if rem := iters - done; rem < steps {
			steps = rem
		}
		mx := math.Inf(-1)
		for i := 0; i < m; i++ {
			sum := 0.0
			for k := 0; k < steps; k++ {
				sum += dm.Y.Sample(r)
			}
			if sum > mx {
				mx = sum
			}
		}
		b.Compute += mx
		b.Comm += dm.SampleD(r)
		done += steps
	}
	b.WallClock = b.Compute + b.Comm
	return b
}

// String renders the breakdown as a table row.
func (b Breakdown) String() string {
	return fmt.Sprintf("%-14s tau=%-4d iters=%-5d compute=%8.3f comm=%8.3f total=%8.3f",
		b.Profile, b.Tau, b.Iters, b.Compute, b.Comm, b.WallClock)
}
