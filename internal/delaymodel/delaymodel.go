// Package delaymodel implements the paper's runtime model (Sec 3.1): the
// per-iteration wall-clock time of fully synchronous SGD and of
// periodic-averaging SGD (PASGD) when local-step compute times Y_{i,k} are
// i.i.d. random variables and each all-node broadcast costs D = D0 * s(m).
//
// Beyond the paper, the model is size-aware: a Model with a finite Bandwidth
// (bytes per simulated second) charges each broadcast
//
//	D = (D0 + bytes/Bandwidth) * s(m)
//
// where bytes is the per-link payload of the round — the compressed message
// size when internal/compress is active, the dense 8*dim otherwise. The
// scaling s(m) multiplies the transfer term too, because every hop of the
// broadcast topology carries the payload. Bandwidth = 0 means an infinite
// link: SampleDBytes then degenerates to exactly the fixed-CommD0 cost of
// SampleD (same value, same RNG draws), so every pre-existing profile and
// trace is the bandwidth=infinity special case, bit for bit.
//
// Only the *Bytes helpers (SampleDBytes/MeanDBytes/AlphaBytes and the
// Monte-Carlo variants SampleSyncIterationBytes, SampleRoundBytes,
// SamplePerIterationBytes, MeasureBreakdownBytes) are size-aware. The
// paper-model helpers (SampleD, MeanD, Alpha, SampleSyncIteration,
// SampleRound, MeasureBreakdown, and the closed forms) deliberately charge
// the size-free D of Sec 3.1 even on a bandwidth-constrained Model — pass
// the payload explicitly via the *Bytes methods when analyzing a constrained
// link.
//
// Heterogeneous clusters set Model.Links, giving each worker its own
// Link{Latency, Bandwidth}; SampleDSchedule then prices a round from the
// topology's actual transfer schedule (per-worker wire bytes from
// internal/comm plus the topology's hop multipliers), with the slowest link
// gating the round.
//
// The model supplies three things to the rest of the repo:
//
//  1. closed-form results where they exist (speed-up eq 12, exponential
//     order statistics),
//  2. Monte-Carlo sampling of per-iteration and per-round times for the
//     runtime-distribution experiments (Fig 5), and
//  3. the simulated clock that internal/cluster advances during training,
//     which is what puts "wall-clock time" on the x-axis of Figs 9-13.
package delaymodel

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/rng"
)

// Scaling describes how the broadcast delay grows with the number of
// workers m: D = D0 * s(m) (paper eq 5).
type Scaling interface {
	Factor(m int) float64
	String() string
}

// ConstantScaling ignores m: s(m) = 1.
type ConstantScaling struct{}

// Factor implements Scaling.
func (ConstantScaling) Factor(int) float64 { return 1 }

func (ConstantScaling) String() string { return "s(m)=1" }

// LinearScaling models a flat all-to-one gather: s(m) = m.
type LinearScaling struct{}

// Factor implements Scaling.
func (LinearScaling) Factor(m int) float64 { return float64(m) }

func (LinearScaling) String() string { return "s(m)=m" }

// TreeScaling models a reduction tree: s(m) = 2*log2(m) for m >= 2, 1 for
// m = 1 (paper's parameter-server example, citing FireCaffe).
type TreeScaling struct{}

// Factor implements Scaling.
func (TreeScaling) Factor(m int) float64 {
	if m <= 1 {
		return 1
	}
	return 2 * math.Log2(float64(m))
}

func (TreeScaling) String() string { return "s(m)=2log2(m)" }

// Link describes one worker's attachment to the network, for heterogeneous
// clusters where stragglers are slow in bytes per second, not just compute
// (Spiridonoff et al. 2020; Kas Hanna et al. 2022). The zero value is a
// transparent link: no extra latency, bandwidth inherited from
// Model.Bandwidth.
type Link struct {
	// Latency is extra fixed delay (simulated seconds) this worker's link
	// adds to every transfer hop it participates in.
	Latency float64
	// Bandwidth is this worker's link rate in bytes per simulated second;
	// 0 inherits Model.Bandwidth (which may itself be 0 = infinite).
	Bandwidth float64
}

// Model is the full delay model for a cluster of M workers.
type Model struct {
	M     int              // number of workers
	Y     rng.Distribution // per-local-step compute time at one worker
	D0    rng.Distribution // base inter-node communication delay (latency)
	Scale Scaling          // delay growth with M

	// Bandwidth is the per-link transfer rate in bytes per simulated
	// second; 0 means infinite (the size-free broadcast of the paper's
	// model, and the default for all legacy profiles).
	Bandwidth float64

	// Links optionally gives every worker its own uplink/downlink
	// (len(Links) must equal M when non-nil). nil keeps the homogeneous
	// model: every transfer is charged against the shared Bandwidth, which
	// is the legacy behavior bit for bit.
	Links []Link

	// EdgeLinks optionally prices individual directed transfers: an entry
	// for Edge{From: i, To: j} overrides worker i's per-worker link on that
	// one transfer (latency replaces the worker link's latency; bandwidth 0
	// inherits the worker link's, then the shared Bandwidth). Only the
	// gossip engines consume it — a round over a mixing graph is gated by
	// its slowest ACTIVE edge (SampleDEdgeScheduleInto), so a slow edge a
	// sparse graph routes around costs nothing. nil keeps the per-worker
	// Links path on every topology, bit for bit.
	EdgeLinks map[Edge]Link

	// Jitter optionally gives every worker a persistent multiplicative
	// compute-speed factor, drawn once per worker from this distribution
	// with a stream seeded by JitterSeed (see JitterScales). It breaks the
	// arrival-order degeneracy of homogeneous clusters in the event-driven
	// engine — with identical links and compute times, every worker would
	// finish every round at the same instant and "the first K arrivals"
	// would carry no information. nil (the zero config) draws nothing and
	// keeps every existing trace bit-identical.
	Jitter rng.Distribution
	// JitterSeed seeds the per-worker jitter draws, independently of the
	// engines' seeds so enabling jitter never shifts their RNG streams.
	JitterSeed uint64
}

// JitterScales returns the per-worker compute-speed factors: M samples of
// Jitter from a stream seeded by JitterSeed, so the factors are a pure
// function of the model configuration. A nil Jitter returns nil (all
// workers at factor 1, the legacy behavior). Samples must be positive and
// finite — like CheckLinks, a degenerate factor is rejected instead of
// silently poisoning every round's compute time.
func (dm *Model) JitterScales() ([]float64, error) {
	if dm.Jitter == nil {
		return nil, nil
	}
	r := rng.New(dm.JitterSeed)
	s := make([]float64, dm.M)
	for i := range s {
		v := dm.Jitter.Sample(r)
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return nil, fmt.Errorf("delaymodel: worker %d jitter factor %v (want finite > 0)", i, v)
		}
		s[i] = v
	}
	return s, nil
}

// CheckLinks validates the per-worker link table: the length must match the
// worker count, and every latency and bandwidth must be finite and
// non-negative — a negative or NaN entry would silently produce degenerate
// (negative or NaN) transfer times that poison every round's delay. Zero
// stays legal: zero latency is a real value and zero bandwidth means
// "inherit Model.Bandwidth" by construction.
func (dm *Model) CheckLinks() error {
	if dm.Links == nil {
		return nil
	}
	if len(dm.Links) != dm.M {
		return fmt.Errorf("delaymodel: %d links for %d workers", len(dm.Links), dm.M)
	}
	for i, l := range dm.Links {
		if math.IsNaN(l.Latency) || math.IsInf(l.Latency, 0) || l.Latency < 0 {
			return fmt.Errorf("delaymodel: worker %d link latency %v (want finite >= 0)", i, l.Latency)
		}
		if math.IsNaN(l.Bandwidth) || math.IsInf(l.Bandwidth, 0) || l.Bandwidth < 0 {
			return fmt.Errorf("delaymodel: worker %d link bandwidth %v (want finite >= 0; 0 inherits the shared bandwidth)", i, l.Bandwidth)
		}
	}
	return nil
}

// Edge identifies one directed transfer From -> To in the per-edge link
// table. Gossip exchanges are symmetric, so a slow physical cable is two
// entries (ParseEdgeLinks writes both directions from one "i-j:..." form).
type Edge struct {
	From, To int
}

// CheckEdgeLinks validates the per-edge link table the way CheckLinks
// validates the per-worker one: node ids must be in range, self-edges are
// meaningless, and every latency and bandwidth must be finite and
// non-negative — a NaN or negative entry would silently poison every round
// that activates the edge. Entries are checked in sorted order so the
// first error is deterministic.
func (dm *Model) CheckEdgeLinks() error {
	if dm.EdgeLinks == nil {
		return nil
	}
	edges := make([]Edge, 0, len(dm.EdgeLinks))
	for e := range dm.EdgeLinks {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].From != edges[b].From {
			return edges[a].From < edges[b].From
		}
		return edges[a].To < edges[b].To
	})
	for _, e := range edges {
		if e.From < 0 || e.From >= dm.M || e.To < 0 || e.To >= dm.M {
			return fmt.Errorf("delaymodel: edge (%d,%d) out of [0,%d)", e.From, e.To, dm.M)
		}
		if e.From == e.To {
			return fmt.Errorf("delaymodel: edge (%d,%d) is a self-loop", e.From, e.To)
		}
		l := dm.EdgeLinks[e]
		if math.IsNaN(l.Latency) || math.IsInf(l.Latency, 0) || l.Latency < 0 {
			return fmt.Errorf("delaymodel: edge (%d,%d) latency %v (want finite >= 0)", e.From, e.To, l.Latency)
		}
		if math.IsNaN(l.Bandwidth) || math.IsInf(l.Bandwidth, 0) || l.Bandwidth < 0 {
			return fmt.Errorf("delaymodel: edge (%d,%d) bandwidth %v (want finite >= 0; 0 inherits the worker link)", e.From, e.To, l.Bandwidth)
		}
	}
	return nil
}

// New builds a delay model, defaulting Scale to ConstantScaling.
func New(m int, y, d0 rng.Distribution, scale Scaling) *Model {
	if m < 1 {
		panic("delaymodel: need at least one worker")
	}
	if scale == nil {
		scale = ConstantScaling{}
	}
	return &Model{M: m, Y: y, D0: d0, Scale: scale}
}

// MeanD returns E[D] = E[D0] * s(M).
func (dm *Model) MeanD() float64 { return dm.D0.Mean() * dm.Scale.Factor(dm.M) }

// MeanY returns E[Y].
func (dm *Model) MeanY() float64 { return dm.Y.Mean() }

// Alpha returns the communication/computation ratio alpha = E[D]/E[Y].
func (dm *Model) Alpha() float64 { return dm.MeanD() / dm.MeanY() }

// SampleD draws one broadcast delay D = D0 * s(M) for a size-free payload
// (the paper's Sec 3.1 model; Bandwidth is ignored — see SampleDBytes).
func (dm *Model) SampleD(r *rng.Rand) float64 {
	return dm.D0.Sample(r) * dm.Scale.Factor(dm.M)
}

// SampleDBytes draws one broadcast delay for a payload of the given size:
// D = (D0 + bytes/Bandwidth) * s(M). With Bandwidth = 0 (infinite link) it
// is exactly SampleD — same value, same RNG consumption — so size-free
// traces are preserved bit-identically.
func (dm *Model) SampleDBytes(r *rng.Rand, bytes int) float64 {
	d := dm.D0.Sample(r)
	if dm.Bandwidth > 0 && bytes > 0 {
		d += float64(bytes) / dm.Bandwidth
	}
	return d * dm.Scale.Factor(dm.M)
}

// MeanDBytes returns E[D] for a payload of the given size:
// (E[D0] + bytes/Bandwidth) * s(M).
func (dm *Model) MeanDBytes(bytes int) float64 {
	d := dm.D0.Mean()
	if dm.Bandwidth > 0 && bytes > 0 {
		d += float64(bytes) / dm.Bandwidth
	}
	return d * dm.Scale.Factor(dm.M)
}

// AlphaBytes returns the communication/computation ratio for a payload of
// the given size: MeanDBytes(bytes) / E[Y].
func (dm *Model) AlphaBytes(bytes int) float64 {
	return dm.MeanDBytes(bytes) / dm.MeanY()
}

// SampleDSchedule draws the communication delay of one synchronization round
// from its actual transfer schedule: bytesPerWorker is each worker's wire
// volume (internal/comm's Report.Bytes), latHops the topology's count of
// sequential message launches, and bytesFactor the multiple of the payload
// each link carries over the whole collective (comm.Topology.LatencyHops and
// BytesFactor; both 1 for the legacy overlapped all-gather).
//
// With nil Links the round is gated by the largest message against the
// shared Bandwidth — for latHops = bytesFactor = 1 this is exactly
// SampleDBytes(max bytes): same value, same single RNG draw, so every legacy
// trace is preserved bit for bit. With Links set, each worker's transfer is
// priced on its own link (falling back to the shared Bandwidth when the
// link's is 0) and the slowest link gates the round.
func (dm *Model) SampleDSchedule(r *rng.Rand, bytesPerWorker []int, latHops, bytesFactor float64) float64 {
	return dm.SampleDScheduleInto(r, bytesPerWorker, latHops, bytesFactor, nil)
}

// SampleDScheduleInto is SampleDSchedule that additionally records each
// worker's own transfer time into times (when non-nil; len(times) must be at
// least len(bytesPerWorker)): the worker's link latency times latHops plus
// its wire bytes times bytesFactor over its link's effective bandwidth,
// BEFORE the model's Scale factor and the shared D0 draw. This per-worker
// schedule is the signal link-aware controllers consume (which link gates the
// round, and by how much). Total value and RNG consumption are exactly
// SampleDSchedule's, so recording times never perturbs a trace.
func (dm *Model) SampleDScheduleInto(r *rng.Rand, bytesPerWorker []int, latHops, bytesFactor float64, times []float64) float64 {
	dm.checkScheduleWidth(len(bytesPerWorker))
	d := dm.D0.Sample(r) * latHops
	if dm.Links == nil {
		mx := 0
		for i, b := range bytesPerWorker {
			if times != nil {
				times[i] = 0
				if dm.Bandwidth > 0 && b > 0 {
					times[i] = float64(b) * bytesFactor / dm.Bandwidth
				}
			}
			if b > mx {
				mx = b
			}
		}
		if dm.Bandwidth > 0 && mx > 0 {
			d += float64(mx) * bytesFactor / dm.Bandwidth
		}
		return d * dm.Scale.Factor(dm.M)
	}
	slow := 0.0
	for i, b := range bytesPerWorker {
		l := dm.Links[i]
		t := l.Latency * latHops
		bw := l.Bandwidth
		if bw == 0 {
			bw = dm.Bandwidth
		}
		if bw > 0 && b > 0 {
			t += float64(b) * bytesFactor / bw
		}
		if times != nil {
			times[i] = t
		}
		if t > slow {
			slow = t
		}
	}
	return (d + slow) * dm.Scale.Factor(dm.M)
}

// SampleDEdgeScheduleInto prices one gossip round over a mixing graph,
// edge by edge: adj[i] lists the peers node i multicasts its
// bytesPerWorker[i] payload to this round, each directed transfer (i,j) is
// priced on its own link — the EdgeLinks entry if present, else worker i's
// per-worker link — and the SLOWEST ACTIVE EDGE gates the round, so an
// expensive edge that no active graph uses costs nothing. times[i] (when
// non-nil) receives node i's slowest outgoing transfer, the same
// controller-visible signal SampleDScheduleInto records.
//
// With a nil adjacency or a nil EdgeLinks table the call delegates to
// SampleDScheduleInto — identical value, identical single D0 draw — so
// every per-worker-priced trace is preserved bit for bit on every
// topology.
func (dm *Model) SampleDEdgeScheduleInto(r *rng.Rand, bytesPerWorker []int, adj [][]int, latHops, bytesFactor float64, times []float64) float64 {
	if adj == nil || dm.EdgeLinks == nil {
		return dm.SampleDScheduleInto(r, bytesPerWorker, latHops, bytesFactor, times)
	}
	dm.checkScheduleWidth(len(bytesPerWorker))
	if len(adj) < len(bytesPerWorker) {
		panic(fmt.Sprintf("delaymodel: schedule for %d workers over a %d-node adjacency", len(bytesPerWorker), len(adj)))
	}
	d := dm.D0.Sample(r) * latHops
	slow := 0.0
	for i, b := range bytesPerWorker {
		wt := 0.0
		for _, j := range adj[i] {
			l, ok := dm.EdgeLinks[Edge{From: i, To: j}]
			if !ok && dm.Links != nil {
				l = dm.Links[i]
			}
			bw := l.Bandwidth
			if bw == 0 && dm.Links != nil {
				bw = dm.Links[i].Bandwidth
			}
			if bw == 0 {
				bw = dm.Bandwidth
			}
			t := l.Latency * latHops
			if bw > 0 && b > 0 {
				t += float64(b) * bytesFactor / bw
			}
			if t > wt {
				wt = t
			}
		}
		if times != nil {
			times[i] = wt
		}
		if wt > slow {
			slow = wt
		}
	}
	return (d + slow) * dm.Scale.Factor(dm.M)
}

// checkScheduleWidth guards the per-worker link table against a schedule
// wider than it covers: before dynamic membership, a shrunk or mismatched
// worker set would silently index past Links and crash with a bare
// out-of-range error deep in a round's pricing. The schedule may be
// NARROWER than the table (a subset of workers is fine); it must never be
// wider.
func (dm *Model) checkScheduleWidth(workers int) {
	if dm.Links != nil && len(dm.Links) < workers {
		panic(fmt.Sprintf("delaymodel: schedule for %d workers but only %d links (Links must cover every worker)", workers, len(dm.Links)))
	}
}

// SampleDScheduleFaultyInto is SampleDScheduleInto under a fault mask:
// down[i] excludes worker i from the schedule entirely (it neither sends
// nor gates the round, and times[i] is recorded as 0), and scale[i]
// multiplies worker i's transfer time (slow-down episodes; retry charges
// fold in here too). With both nil the call delegates bit-identically to
// the legacy method — either way exactly one D0 draw is consumed, so
// enabling faults never shifts the delay RNG stream.
func (dm *Model) SampleDScheduleFaultyInto(r *rng.Rand, bytesPerWorker []int, latHops, bytesFactor float64, down []bool, scale []float64, times []float64) float64 {
	if down == nil && scale == nil {
		return dm.SampleDScheduleInto(r, bytesPerWorker, latHops, bytesFactor, times)
	}
	dm.checkScheduleWidth(len(bytesPerWorker))
	d := dm.D0.Sample(r) * latHops
	slow := 0.0
	for i, b := range bytesPerWorker {
		if down != nil && down[i] {
			if times != nil {
				times[i] = 0
			}
			continue
		}
		var t float64
		if dm.Links == nil {
			if dm.Bandwidth > 0 && b > 0 {
				t = float64(b) * bytesFactor / dm.Bandwidth
			}
		} else {
			l := dm.Links[i]
			t = l.Latency * latHops
			bw := l.Bandwidth
			if bw == 0 {
				bw = dm.Bandwidth
			}
			if bw > 0 && b > 0 {
				t += float64(b) * bytesFactor / bw
			}
		}
		if scale != nil {
			t *= scale[i]
		}
		if times != nil {
			times[i] = t
		}
		if t > slow {
			slow = t
		}
	}
	return (d + slow) * dm.Scale.Factor(dm.M)
}

// SampleDEdgeScheduleFaultyInto is SampleDEdgeScheduleInto under a fault
// mask: a down endpoint deactivates every edge touching it (the induced
// active subgraph is what the gossip engine prices), and scale[i]
// multiplies node i's outgoing transfer times. With both nil it delegates
// bit-identically to the legacy method; with no EdgeLinks table it
// delegates to the per-worker faulty path. One D0 draw either way.
func (dm *Model) SampleDEdgeScheduleFaultyInto(r *rng.Rand, bytesPerWorker []int, adj [][]int, latHops, bytesFactor float64, down []bool, scale []float64, times []float64) float64 {
	if down == nil && scale == nil {
		return dm.SampleDEdgeScheduleInto(r, bytesPerWorker, adj, latHops, bytesFactor, times)
	}
	if adj == nil || dm.EdgeLinks == nil {
		return dm.SampleDScheduleFaultyInto(r, bytesPerWorker, latHops, bytesFactor, down, scale, times)
	}
	dm.checkScheduleWidth(len(bytesPerWorker))
	if len(adj) < len(bytesPerWorker) {
		panic(fmt.Sprintf("delaymodel: schedule for %d workers over a %d-node adjacency", len(bytesPerWorker), len(adj)))
	}
	d := dm.D0.Sample(r) * latHops
	slow := 0.0
	for i, b := range bytesPerWorker {
		if down != nil && down[i] {
			if times != nil {
				times[i] = 0
			}
			continue
		}
		wt := 0.0
		for _, j := range adj[i] {
			if down != nil && down[j] {
				continue
			}
			l, ok := dm.EdgeLinks[Edge{From: i, To: j}]
			if !ok && dm.Links != nil {
				l = dm.Links[i]
			}
			bw := l.Bandwidth
			if bw == 0 && dm.Links != nil {
				bw = dm.Links[i].Bandwidth
			}
			if bw == 0 {
				bw = dm.Bandwidth
			}
			t := l.Latency * latHops
			if bw > 0 && b > 0 {
				t += float64(b) * bytesFactor / bw
			}
			if t > wt {
				wt = t
			}
		}
		if scale != nil {
			wt *= scale[i]
		}
		if times != nil {
			times[i] = wt
		}
		if wt > slow {
			slow = wt
		}
	}
	return (d + slow) * dm.Scale.Factor(dm.M)
}

// ParseEdgeLinks parses the per-edge link flag syntax: a comma-separated
// list of "I-J:latency:bandwidth" entries. Each entry prices the edge in
// BOTH directions (a slow cable slows traffic both ways); latency and
// bandwidth follow ParseLinks' conventions — either may be empty for its
// zero value, an explicit zero bandwidth is rejected (leave it empty to
// inherit), and non-finite or negative values are rejected. "" returns a
// nil table (the per-worker pricing path, bit for bit).
func ParseEdgeLinks(s string, m int) (map[Edge]Link, error) {
	if s == "" {
		return nil, nil
	}
	table := make(map[Edge]Link)
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		pair, rest, ok := strings.Cut(p, ":")
		if !ok {
			return nil, fmt.Errorf("delaymodel: edge link %q needs I-J:latency:bandwidth", p)
		}
		is, js, ok := strings.Cut(pair, "-")
		if !ok {
			return nil, fmt.Errorf("delaymodel: edge link %q needs an I-J node pair", p)
		}
		i, err1 := strconv.Atoi(is)
		j, err2 := strconv.Atoi(js)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("delaymodel: bad node pair in %q", p)
		}
		if i < 0 || i >= m || j < 0 || j >= m {
			return nil, fmt.Errorf("delaymodel: edge link %q nodes out of [0,%d)", p, m)
		}
		if i == j {
			return nil, fmt.Errorf("delaymodel: edge link %q is a self-loop", p)
		}
		if _, dup := table[Edge{From: i, To: j}]; dup {
			return nil, fmt.Errorf("delaymodel: edge %d-%d listed twice", i, j)
		}
		lat, bw, ok := strings.Cut(rest, ":")
		if !ok {
			return nil, fmt.Errorf("delaymodel: edge link %q needs I-J:latency:bandwidth", p)
		}
		var l Link
		if lat != "" {
			if l.Latency, err1 = strconv.ParseFloat(lat, 64); err1 != nil {
				return nil, fmt.Errorf("delaymodel: bad latency in %q: %v", p, err1)
			}
			if math.IsNaN(l.Latency) || math.IsInf(l.Latency, 0) || l.Latency < 0 {
				return nil, fmt.Errorf("delaymodel: edge link %q latency %v (want finite >= 0)", p, l.Latency)
			}
		}
		if bw != "" {
			if l.Bandwidth, err1 = strconv.ParseFloat(bw, 64); err1 != nil {
				return nil, fmt.Errorf("delaymodel: bad bandwidth in %q: %v", p, err1)
			}
			if math.IsNaN(l.Bandwidth) || math.IsInf(l.Bandwidth, 0) || l.Bandwidth < 0 {
				return nil, fmt.Errorf("delaymodel: edge link %q bandwidth %v (want finite > 0)", p, l.Bandwidth)
			}
			if l.Bandwidth == 0 {
				return nil, fmt.Errorf("delaymodel: edge link %q has explicit zero bandwidth; leave the part empty to inherit", p)
			}
		}
		table[Edge{From: i, To: j}] = l
		table[Edge{From: j, To: i}] = l
	}
	return table, nil
}

// SampleTransfer draws the wall-clock cost of ONE point-to-point transfer
// of `bytes` on worker i's link: a D0 latency sample plus the worker's link
// latency plus bytes over the link's effective bandwidth (the worker's own,
// falling back to the shared Bandwidth; 0 = infinite). Unlike the round
// samplers it applies no Scale factor and takes no max across workers — it
// prices a single worker's pull or push in the event-driven engine, where
// transfers do not form synchronized collectives and each worker's arrival
// is scheduled on its own virtual clock.
func (dm *Model) SampleTransfer(r *rng.Rand, worker, bytes int) float64 {
	d := dm.D0.Sample(r)
	bw := dm.Bandwidth
	if dm.Links != nil {
		if worker < 0 || worker >= len(dm.Links) {
			panic(fmt.Sprintf("delaymodel: transfer for worker %d but only %d links (Links must cover every worker)", worker, len(dm.Links)))
		}
		l := dm.Links[worker]
		d += l.Latency
		if l.Bandwidth > 0 {
			bw = l.Bandwidth
		}
	}
	if bw > 0 && bytes > 0 {
		d += float64(bytes) / bw
	}
	return d
}

// ParseLinks parses the per-worker link flag syntax: a comma-separated list
// of "latency:bandwidth" pairs, one per worker (e.g. "0:4096,0:4096,0:409.6"
// gives the last worker a 10x slower link). Either part may be EMPTY for its
// zero value ("0:" = ":" = transparent link; an empty bandwidth inherits the
// model's shared one). An explicit bandwidth of 0 is rejected — written out,
// "0 bytes per second" reads as a dead link, but the zero value actually
// means "inherit", which silently becomes an INFINITE link on a model with
// no shared bandwidth; leave the part empty to inherit on purpose. Negative
// and non-finite values are rejected for both parts.
func ParseLinks(s string, m int) ([]Link, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != m {
		return nil, fmt.Errorf("delaymodel: %d links for %d workers in %q", len(parts), m, s)
	}
	links := make([]Link, m)
	for i, p := range parts {
		lat, bw, ok := strings.Cut(strings.TrimSpace(p), ":")
		if !ok {
			return nil, fmt.Errorf("delaymodel: link %q needs latency:bandwidth", p)
		}
		var err error
		if lat != "" {
			if links[i].Latency, err = strconv.ParseFloat(lat, 64); err != nil {
				return nil, fmt.Errorf("delaymodel: bad latency in %q: %v", p, err)
			}
			if math.IsNaN(links[i].Latency) || math.IsInf(links[i].Latency, 0) || links[i].Latency < 0 {
				return nil, fmt.Errorf("delaymodel: link %q latency %v (want finite >= 0)", p, links[i].Latency)
			}
		}
		if bw != "" {
			if links[i].Bandwidth, err = strconv.ParseFloat(bw, 64); err != nil {
				return nil, fmt.Errorf("delaymodel: bad bandwidth in %q: %v", p, err)
			}
			if math.IsNaN(links[i].Bandwidth) || math.IsInf(links[i].Bandwidth, 0) || links[i].Bandwidth < 0 {
				return nil, fmt.Errorf("delaymodel: link %q bandwidth %v (want finite > 0)", p, links[i].Bandwidth)
			}
			if links[i].Bandwidth == 0 {
				return nil, fmt.Errorf("delaymodel: link %q has explicit zero bandwidth; leave the part empty (%q) to inherit the shared bandwidth", p, lat+":")
			}
		}
	}
	return links, nil
}

// SampleSyncIteration draws one iteration time of fully synchronous SGD
// (paper eq 7): max over workers of one compute time, plus D. A zero-byte
// payload makes SampleDBytes exactly SampleD (same value, same draws), so
// the size-free samplers delegate to their *Bytes counterparts with 0.
func (dm *Model) SampleSyncIteration(r *rng.Rand) float64 {
	return dm.SampleSyncIterationBytes(r, 0)
}

// SampleRound draws the wall-clock time of one PASGD round of tau local
// steps followed by an averaging broadcast: max over workers of the SUM of
// tau compute times, plus D. Dividing by tau gives the per-iteration time
// whose expectation is eq 11.
func (dm *Model) SampleRound(tau int, r *rng.Rand) float64 {
	return dm.SampleRoundBytes(tau, r, 0)
}

// SampleSyncIterationBytes is SampleSyncIteration with the broadcast charged
// the size-aware cost of a `bytes` payload (SampleDBytes instead of the
// paper's size-free SampleD) — the Fig 5 sampler for bandwidth-constrained
// links.
func (dm *Model) SampleSyncIterationBytes(r *rng.Rand, bytes int) float64 {
	mx := math.Inf(-1)
	for i := 0; i < dm.M; i++ {
		if v := dm.Y.Sample(r); v > mx {
			mx = v
		}
	}
	return mx + dm.SampleDBytes(r, bytes)
}

// SampleRoundBytes is SampleRound with the averaging broadcast charged the
// size-aware cost of a `bytes` payload.
func (dm *Model) SampleRoundBytes(tau int, r *rng.Rand, bytes int) float64 {
	if tau < 1 {
		panic("delaymodel: tau must be >= 1")
	}
	mx := math.Inf(-1)
	for i := 0; i < dm.M; i++ {
		sum := 0.0
		for k := 0; k < tau; k++ {
			sum += dm.Y.Sample(r)
		}
		if sum > mx {
			mx = sum
		}
	}
	return mx + dm.SampleDBytes(r, bytes)
}

// SamplePerIterationBytes draws the per-iteration time of PASGD with period
// tau under a size-aware broadcast of `bytes` per round.
func (dm *Model) SamplePerIterationBytes(tau int, r *rng.Rand, bytes int) float64 {
	return dm.SampleRoundBytes(tau, r, bytes) / float64(tau)
}

// SamplePerIteration draws the per-iteration time of PASGD with period tau
// (round time divided by tau) — the quantity plotted in Fig 5.
func (dm *Model) SamplePerIteration(tau int, r *rng.Rand) float64 {
	return dm.SampleRound(tau, r) / float64(tau)
}

// MCMeanPerIteration estimates E[T_PAvg] (eq 11) by Monte Carlo.
func (dm *Model) MCMeanPerIteration(tau, trials int, r *rng.Rand) float64 {
	sum := 0.0
	for t := 0; t < trials; t++ {
		sum += dm.SamplePerIteration(tau, r)
	}
	return sum / float64(trials)
}

// ExpectedSyncIterationExponential returns the closed-form E[T_sync] =
// y*H_m + E[D] when Y is exponential with mean y (paper Sec 3.2). It
// panics if Y is not exponential.
func (dm *Model) ExpectedSyncIterationExponential() float64 {
	e, ok := dm.Y.(rng.Exponential)
	if !ok {
		panic("delaymodel: closed form requires exponential Y")
	}
	return rng.ExpectedMaxExponential(e.MeanVal, dm.M) + dm.MeanD()
}

// SpeedupConstant returns the paper's eq 12 speed-up of PASGD over fully
// synchronous SGD when Y and D are constants:
//
//	E[T_sync]/E[T_PAvg] = (1 + alpha) / (1 + alpha/tau).
func SpeedupConstant(alpha float64, tau int) float64 {
	if tau < 1 {
		panic("delaymodel: tau must be >= 1")
	}
	return (1 + alpha) / (1 + alpha/float64(tau))
}

// SpeedupMC estimates the true speed-up E[T_sync]/E[T_PAvg] for arbitrary
// distributions by Monte Carlo.
func (dm *Model) SpeedupMC(tau, trials int, r *rng.Rand) float64 {
	sync := 0.0
	pavg := 0.0
	for t := 0; t < trials; t++ {
		sync += dm.SampleSyncIteration(r)
		pavg += dm.SamplePerIteration(tau, r)
	}
	return sync / pavg
}

// Profile is a named calibration of the delay model to a deep-network
// architecture, standing in for the paper's Fig 8 measurements. ComputeY is
// the per-local-step compute-time distribution; CommD0 the base broadcast
// delay. Alpha(profile) = E[D]/E[Y] reproduces the paper's qualitative
// claim: VGG-16's communication is ~4x its computation, while ResNet-50's
// communication is about half its computation.
type Profile struct {
	Name     string
	ComputeY rng.Distribution
	CommD0   rng.Distribution
	// Bandwidth is the per-link transfer rate in bytes per simulated
	// second (0 = infinite, the legacy size-free behavior).
	Bandwidth float64
}

// VGG16Profile returns the VGG-16-like calibration (alpha = 4): 0.05 s
// compute per iteration, 0.20 s broadcast. The absolute scale is arbitrary
// simulator seconds; the ratio is what Fig 8 pins down.
func VGG16Profile() Profile {
	return Profile{
		Name:     "VGG16-like",
		ComputeY: rng.ShiftedExponential{Shift: 0.04, Scale: 0.01},
		CommD0:   rng.Constant{Value: 0.20},
	}
}

// ResNet50Profile returns the ResNet-50-like calibration (alpha = 0.5):
// 0.12 s compute per iteration, 0.06 s broadcast.
func ResNet50Profile() Profile {
	return Profile{
		Name:     "ResNet50-like",
		ComputeY: rng.ShiftedExponential{Shift: 0.10, Scale: 0.02},
		CommD0:   rng.Constant{Value: 0.06},
	}
}

// Constrained returns a copy of the profile with a finite per-link
// bandwidth (bytes per simulated second), turning it into a
// bandwidth-limited scenario where communication cost depends on payload
// size — the setting where gradient compression pays off.
func (p Profile) Constrained(bandwidth float64) Profile {
	p.Name = fmt.Sprintf("%s@%gB/s", p.Name, bandwidth)
	p.Bandwidth = bandwidth
	return p
}

// FederatedProfile models a WAN/edge link: negligible fixed latency but a
// tight bandwidth, so broadcast cost is dominated by payload size. compute
// is the mean per-step compute time; bandwidth is in bytes per simulated
// second.
func FederatedProfile(compute, bandwidth float64) Profile {
	return Profile{
		Name:      "federated",
		ComputeY:  rng.ShiftedExponential{Shift: 0.8 * compute, Scale: 0.2 * compute},
		CommD0:    rng.Constant{Value: 0.05 * compute},
		Bandwidth: bandwidth,
	}
}

// Model builds a delay model for m workers from the profile.
func (p Profile) Model(m int, scale Scaling) *Model {
	dm := New(m, p.ComputeY, p.CommD0, scale)
	dm.Bandwidth = p.Bandwidth
	return dm
}

// Breakdown is the computation/communication split of a run of iterations,
// the quantity shown as stacked bars in Fig 8.
type Breakdown struct {
	Profile   string
	Tau       int
	Iters     int
	Compute   float64 // total compute wall-clock (max across workers per round)
	Comm      float64 // total communication wall-clock
	WallClock float64 // Compute + Comm
}

// MeasureBreakdown simulates `iters` iterations of PASGD with period tau
// and splits the elapsed time into compute and communication components.
// It charges the paper's size-free D; a zero-byte payload makes
// MeasureBreakdownBytes identical (same values, same draws).
func MeasureBreakdown(p Profile, m, tau, iters int, r *rng.Rand) Breakdown {
	return MeasureBreakdownBytes(p, m, tau, iters, r, 0)
}

// MeasureBreakdownBytes is MeasureBreakdown with every broadcast charged the
// size-aware cost of a `bytes` payload against the profile's bandwidth — the
// Fig 8 driver for bandwidth-constrained links (the size-free variant
// deliberately charges the paper's fixed D even on a constrained Model).
func MeasureBreakdownBytes(p Profile, m, tau, iters int, r *rng.Rand, bytes int) Breakdown {
	dm := p.Model(m, ConstantScaling{})
	b := Breakdown{Profile: p.Name, Tau: tau, Iters: iters}
	done := 0
	for done < iters {
		steps := tau
		if rem := iters - done; rem < steps {
			steps = rem
		}
		mx := math.Inf(-1)
		for i := 0; i < m; i++ {
			sum := 0.0
			for k := 0; k < steps; k++ {
				sum += dm.Y.Sample(r)
			}
			if sum > mx {
				mx = sum
			}
		}
		b.Compute += mx
		b.Comm += dm.SampleDBytes(r, bytes)
		done += steps
	}
	b.WallClock = b.Compute + b.Comm
	return b
}

// String renders the breakdown as a table row.
func (b Breakdown) String() string {
	return fmt.Sprintf("%-14s tau=%-4d iters=%-5d compute=%8.3f comm=%8.3f total=%8.3f",
		b.Profile, b.Tau, b.Iters, b.Compute, b.Comm, b.WallClock)
}
