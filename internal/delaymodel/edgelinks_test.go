package delaymodel

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// TestEdgeScheduleNilFallsBackBitIdentical is the per-edge fallback
// contract: with EdgeLinks == nil, SampleDEdgeScheduleInto must reproduce
// SampleDScheduleInto exactly — same value, same RNG consumption, same
// recorded per-worker times — on every mixing topology and on the
// collective hop multipliers, with and without per-worker Links.
func TestEdgeScheduleNilFallsBackBitIdentical(t *testing.T) {
	const m = 16
	graphs := map[string][][]int{
		"nil-adj":  nil,
		"ring":     graph.Ring(m).Adjacency(),
		"torus":    graph.Torus(4, 4).Adjacency(),
		"star":     graph.Star(m).Adjacency(),
		"complete": graph.Complete(m).Adjacency(),
		"expander": graph.Expander(m).Adjacency(),
	}
	links := make([]Link, m)
	links[3] = Link{Latency: 2, Bandwidth: 64}
	bytes := make([]int, m)
	for i := range bytes {
		bytes[i] = 128 * (i + 1)
	}
	for _, withLinks := range []bool{false, true} {
		dm := New(m, rng.Constant{Value: 1}, rng.Exponential{MeanVal: 0.5}, ConstantScaling{})
		dm.Bandwidth = 512
		if withLinks {
			dm.Links = links
		}
		for name, adj := range graphs {
			for _, mult := range []struct{ hops, bf float64 }{{1, 1}, {14, 1.75}, {2, 2}} {
				ra, rb := rng.New(99), rng.New(99)
				ta, tb := make([]float64, m), make([]float64, m)
				want := dm.SampleDScheduleInto(ra, bytes, mult.hops, mult.bf, ta)
				got := dm.SampleDEdgeScheduleInto(rb, bytes, adj, mult.hops, mult.bf, tb)
				if got != want {
					t.Fatalf("%s links=%v hops=%g: edge path %v != per-worker %v", name, withLinks, mult.hops, got, want)
				}
				for i := range ta {
					if ta[i] != tb[i] {
						t.Fatalf("%s links=%v: times[%d] %v != %v", name, withLinks, i, tb[i], ta[i])
					}
				}
				// RNG streams stayed in lockstep (one D0 draw each).
				if ra.Uint64() != rb.Uint64() {
					t.Fatalf("%s links=%v: RNG consumption diverged", name, withLinks)
				}
			}
		}
	}
}

// TestEdgeScheduleSlowestActiveEdgeGates pins the tentpole semantics: a
// slow edge gates rounds on graphs that activate it and costs nothing on
// graphs that route around it.
func TestEdgeScheduleSlowestActiveEdgeGates(t *testing.T) {
	const m = 16
	dm := New(m, rng.Constant{Value: 1}, rng.Constant{Value: 1}, ConstantScaling{})
	dm.EdgeLinks = map[Edge]Link{
		{From: 3, To: 4}: {Latency: 10},
		{From: 4, To: 3}: {Latency: 10},
	}
	if err := dm.CheckEdgeLinks(); err != nil {
		t.Fatal(err)
	}
	bytes := make([]int, m)
	times := make([]float64, m)

	// Ring 3-4 is an active edge: the round pays D0 + 10.
	ring := graph.Ring(m).Adjacency()
	if got := dm.SampleDEdgeScheduleInto(rng.New(1), bytes, ring, 1, 1, times); got != 11 {
		t.Fatalf("ring round %v, want 11", got)
	}
	if times[3] != 10 || times[4] != 10 || times[0] != 0 {
		t.Fatalf("ring per-worker times %v", times)
	}

	// The 4x4 torus does not contain edge (3,4) — node 3 = (0,3) and node
	// 4 = (1,0) are not grid neighbors — so the same table costs nothing.
	torus := graph.Torus(4, 4).Adjacency()
	for _, nb := range torus[3] {
		if nb == 4 {
			t.Fatal("test premise broken: torus contains edge (3,4)")
		}
	}
	if got := dm.SampleDEdgeScheduleInto(rng.New(1), bytes, torus, 1, 1, times); got != 1 {
		t.Fatalf("torus round %v, want 1 (slow edge inactive)", got)
	}

	// The complete graph contains every edge, so it is gated like the ring.
	if got := dm.SampleDEdgeScheduleInto(rng.New(1), bytes, graph.Complete(m).Adjacency(), 1, 1, times); got != 11 {
		t.Fatalf("complete round %v, want 11", got)
	}
}

// TestEdgeScheduleBandwidthFallbackChain: an edge entry's zero bandwidth
// inherits the sender's worker link, then the shared bandwidth; an edge
// entry's bandwidth overrides both.
func TestEdgeScheduleBandwidthFallbackChain(t *testing.T) {
	const m = 2
	adj := graph.Ring(m).Adjacency()
	bytes := []int{800, 0}
	dm := New(m, rng.Constant{Value: 1}, rng.Constant{Value: 0}, ConstantScaling{})
	dm.Bandwidth = 400
	dm.EdgeLinks = map[Edge]Link{{From: 0, To: 1}: {}}
	// Transparent edge entry: bytes priced on the shared bandwidth.
	if got := dm.SampleDEdgeScheduleInto(rng.New(1), bytes, adj, 1, 1, nil); got != 2 {
		t.Fatalf("shared-bandwidth fallback %v, want 2", got)
	}
	// Worker link takes precedence over the shared bandwidth.
	dm.Links = []Link{{Bandwidth: 100}, {}}
	if got := dm.SampleDEdgeScheduleInto(rng.New(1), bytes, adj, 1, 1, nil); got != 8 {
		t.Fatalf("worker-link fallback %v, want 8", got)
	}
	// An explicit edge bandwidth overrides the worker link.
	dm.EdgeLinks[Edge{From: 0, To: 1}] = Link{Bandwidth: 200}
	if got := dm.SampleDEdgeScheduleInto(rng.New(1), bytes, adj, 1, 1, nil); got != 4 {
		t.Fatalf("edge bandwidth override %v, want 4", got)
	}
}

func TestCheckEdgeLinksRejectsDegenerateEntries(t *testing.T) {
	cases := []struct {
		name  string
		edges map[Edge]Link
	}{
		{"nan latency", map[Edge]Link{{From: 0, To: 1}: {Latency: math.NaN()}}},
		{"inf latency", map[Edge]Link{{From: 0, To: 1}: {Latency: math.Inf(1)}}},
		{"negative latency", map[Edge]Link{{From: 0, To: 1}: {Latency: -1}}},
		{"nan bandwidth", map[Edge]Link{{From: 0, To: 1}: {Bandwidth: math.NaN()}}},
		{"negative bandwidth", map[Edge]Link{{From: 0, To: 1}: {Bandwidth: -5}}},
		{"self-loop", map[Edge]Link{{From: 1, To: 1}: {}}},
		{"out of range", map[Edge]Link{{From: 0, To: 4}: {}}},
		{"negative node", map[Edge]Link{{From: -1, To: 0}: {}}},
	}
	for _, tc := range cases {
		dm := New(4, rng.Constant{Value: 1}, rng.Constant{Value: 1}, ConstantScaling{})
		dm.EdgeLinks = tc.edges
		if err := dm.CheckEdgeLinks(); err == nil {
			t.Fatalf("%s accepted", tc.name)
		}
	}
	dm := New(4, rng.Constant{Value: 1}, rng.Constant{Value: 1}, ConstantScaling{})
	if err := dm.CheckEdgeLinks(); err != nil {
		t.Fatalf("nil table rejected: %v", err)
	}
	dm.EdgeLinks = map[Edge]Link{{From: 0, To: 2}: {Latency: 1, Bandwidth: 64}}
	if err := dm.CheckEdgeLinks(); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
}

func TestParseEdgeLinks(t *testing.T) {
	table, err := ParseEdgeLinks("3-4:10:,0-2::64", 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != 4 {
		t.Fatalf("got %d directed entries, want 4", len(table))
	}
	// One entry prices both directions.
	if l := table[Edge{From: 3, To: 4}]; l.Latency != 10 || l.Bandwidth != 0 {
		t.Fatalf("edge 3-4 %+v", l)
	}
	if l := table[Edge{From: 4, To: 3}]; l.Latency != 10 {
		t.Fatalf("edge 4-3 %+v", l)
	}
	if l := table[Edge{From: 2, To: 0}]; l.Bandwidth != 64 {
		t.Fatalf("edge 2-0 %+v", l)
	}
	if nilTable, err := ParseEdgeLinks("", 8); err != nil || nilTable != nil {
		t.Fatalf("empty spec: %v %v", nilTable, err)
	}
	bad := []string{
		"3-4",             // no link parts
		"3-4:10",          // missing bandwidth part
		"3:10:",           // no node pair
		"a-b:10:",         // non-numeric nodes
		"3-9:10:",         // node out of range
		"3-3:10:",         // self-loop
		"3-4:-1:",         // negative latency
		"3-4::0",          // explicit zero bandwidth
		"3-4::nan",        // NaN bandwidth
		"3-4:10:,4-3:10:", // duplicate pair (reverse direction)
		"3-4:10:,3-4:5:",  // duplicate pair
	}
	for _, s := range bad {
		if _, err := ParseEdgeLinks(s, 8); err == nil {
			t.Fatalf("ParseEdgeLinks(%q) accepted", s)
		}
	}
}
