package delaymodel

import (
	"testing"

	"repro/internal/rng"
)

func TestSampleDScheduleFaultyNilMasksDelegate(t *testing.T) {
	links := []Link{{Latency: 0.1, Bandwidth: 1e6}, {Latency: 0.3, Bandwidth: 2e6}, {Latency: 0.2, Bandwidth: 5e5}}
	dm := &Model{M: 3, D0: rng.Constant{Value: 0.5}, Scale: ConstantScaling{}, Links: links}
	bytes := []int{800, 1600, 2400}
	legacy := make([]float64, 3)
	faulty := make([]float64, 3)

	want := dm.SampleDScheduleInto(rng.New(1), bytes, 1, 1, legacy)
	got := dm.SampleDScheduleFaultyInto(rng.New(1), bytes, 1, 1, nil, nil, faulty)
	if got != want {
		t.Fatalf("nil/nil delegation: %v != %v", got, want)
	}
	for i := range legacy {
		if faulty[i] != legacy[i] {
			t.Fatalf("times[%d]: %v != %v", i, faulty[i], legacy[i])
		}
	}

	// All-up masks with unit scales reproduce the legacy schedule exactly.
	got = dm.SampleDScheduleFaultyInto(rng.New(1), bytes, 1, 1,
		[]bool{false, false, false}, []float64{1, 1, 1}, faulty)
	if got != want {
		t.Fatalf("all-up masks: %v != %v", got, want)
	}
}

func TestSampleDScheduleFaultyExcludesDownAndScales(t *testing.T) {
	links := []Link{{Latency: 0.1, Bandwidth: 1000}, {Latency: 10, Bandwidth: 1000}, {Latency: 0.1, Bandwidth: 1000}}
	dm := &Model{M: 3, D0: rng.Constant{Value: 0}, Scale: ConstantScaling{}, Links: links}
	bytes := []int{1000, 1000, 1000}
	times := make([]float64, 3)

	// Worker 1 owns the slow link; taking it down hands the round to the
	// survivors and zeroes its schedule entry.
	d := dm.SampleDScheduleFaultyInto(rng.New(1), bytes, 1, 1,
		[]bool{false, true, false}, nil, times)
	if times[1] != 0 {
		t.Fatalf("down worker time %v, want 0", times[1])
	}
	want := 0.1 + 1.0 // latency + 1000B/1000Bps on the surviving links
	if d != want {
		t.Fatalf("survivor-gated round %v, want %v", d, want)
	}

	// A 3x slow-down episode on worker 0 triples its transfer time.
	d = dm.SampleDScheduleFaultyInto(rng.New(1), bytes, 1, 1,
		[]bool{false, true, false}, []float64{3, 1, 1}, times)
	if times[0] != 3*want {
		t.Fatalf("scaled time %v, want %v", times[0], 3*want)
	}
	if d != 3*want {
		t.Fatalf("scaled round %v, want %v", d, 3*want)
	}
}

func TestSampleDEdgeScheduleFaultyDeactivatesEdgesOfDownNodes(t *testing.T) {
	dm := &Model{
		M: 3, D0: rng.Constant{Value: 0}, Scale: ConstantScaling{},
		EdgeLinks: map[Edge]Link{
			{From: 0, To: 1}: {Latency: 5},
			{From: 1, To: 0}: {Latency: 5},
			{From: 0, To: 2}: {Latency: 1},
			{From: 2, To: 0}: {Latency: 1},
		},
	}
	adj := [][]int{{1, 2}, {0}, {0}}
	bytes := []int{100, 100, 100}
	times := make([]float64, 3)

	// With everyone up the slow 0<->1 edge gates the round.
	d := dm.SampleDEdgeScheduleFaultyInto(rng.New(1), bytes, adj, 1, 1,
		[]bool{false, false, false}, nil, times)
	if d != 5 {
		t.Fatalf("all-up edge round %v, want 5", d)
	}
	// Node 1 down: every edge touching it deactivates, the 0<->2 edge
	// gates, and node 1's entry zeroes.
	d = dm.SampleDEdgeScheduleFaultyInto(rng.New(1), bytes, adj, 1, 1,
		[]bool{false, true, false}, nil, times)
	if d != 1 || times[1] != 0 {
		t.Fatalf("down-endpoint round %v times %v, want 1 / times[1]=0", d, times)
	}
}

func TestScheduleWidthPanics(t *testing.T) {
	dm := &Model{M: 3, D0: rng.Constant{Value: 0}, Scale: ConstantScaling{},
		Links: []Link{{Latency: 1}}}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("short Links accepted by SampleDScheduleInto")
			}
		}()
		dm.SampleDScheduleInto(rng.New(1), []int{1, 1, 1}, 1, 1, nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range worker accepted by SampleTransfer")
			}
		}()
		dm.SampleTransfer(rng.New(1), 2, 100)
	}()
	dmE := &Model{M: 3, D0: rng.Constant{Value: 0}, Scale: ConstantScaling{},
		EdgeLinks: map[Edge]Link{{From: 0, To: 1}: {Latency: 1}, {From: 1, To: 0}: {Latency: 1}}}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("short adjacency accepted by SampleDEdgeScheduleInto")
			}
		}()
		dmE.SampleDEdgeScheduleInto(rng.New(1), []int{1, 1, 1}, [][]int{{1}, {0}}, 1, 1, nil)
	}()
}
