package delaymodel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestScalings(t *testing.T) {
	if (ConstantScaling{}).Factor(16) != 1 {
		t.Fatal("constant scaling")
	}
	if (LinearScaling{}).Factor(16) != 16 {
		t.Fatal("linear scaling")
	}
	if got := (TreeScaling{}).Factor(16); math.Abs(got-8) > 1e-12 {
		t.Fatalf("tree scaling factor(16) = %v, want 8", got)
	}
	if (TreeScaling{}).Factor(1) != 1 {
		t.Fatal("tree scaling m=1 should be 1")
	}
}

func TestAlpha(t *testing.T) {
	dm := New(4, rng.Constant{Value: 2}, rng.Constant{Value: 1}, ConstantScaling{})
	if got := dm.Alpha(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("alpha = %v, want 0.5", got)
	}
	dm2 := New(4, rng.Constant{Value: 1}, rng.Constant{Value: 1}, LinearScaling{})
	if got := dm2.Alpha(); math.Abs(got-4) > 1e-12 {
		t.Fatalf("alpha with linear scaling = %v, want 4", got)
	}
}

func TestSampleSyncConstant(t *testing.T) {
	// With constant Y and D, every sync iteration takes exactly Y+D.
	dm := New(8, rng.Constant{Value: 1}, rng.Constant{Value: 0.5}, ConstantScaling{})
	r := rng.New(1)
	for i := 0; i < 10; i++ {
		if got := dm.SampleSyncIteration(r); math.Abs(got-1.5) > 1e-12 {
			t.Fatalf("sync iter = %v, want 1.5", got)
		}
	}
}

func TestSampleRoundConstant(t *testing.T) {
	dm := New(8, rng.Constant{Value: 1}, rng.Constant{Value: 0.5}, ConstantScaling{})
	r := rng.New(2)
	// Round of tau=10: 10*1 + 0.5.
	if got := dm.SampleRound(10, r); math.Abs(got-10.5) > 1e-12 {
		t.Fatalf("round = %v, want 10.5", got)
	}
	// Per-iteration: 1.05.
	if got := dm.SamplePerIteration(10, r); math.Abs(got-1.05) > 1e-12 {
		t.Fatalf("per-iter = %v, want 1.05", got)
	}
}

func TestSpeedupConstantEq12(t *testing.T) {
	// Spot-check eq 12 values: alpha=0.9, tau->inf approaches 1.9.
	if got := SpeedupConstant(0.9, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("speedup at tau=1 must be 1, got %v", got)
	}
	if got := SpeedupConstant(0.9, 100); got < 1.87 || got > 1.9 {
		t.Fatalf("speedup(0.9, 100) = %v, want ~1.88", got)
	}
	// Monotone increasing in tau.
	prev := 0.0
	for tau := 1; tau <= 64; tau *= 2 {
		cur := SpeedupConstant(0.5, tau)
		if cur <= prev {
			t.Fatalf("speedup not increasing at tau=%d", tau)
		}
		prev = cur
	}
	// Monotone increasing in alpha at fixed tau.
	if SpeedupConstant(0.1, 10) >= SpeedupConstant(0.9, 10) {
		t.Fatal("speedup should grow with alpha")
	}
}

func TestSpeedupMCMatchesFormulaForConstants(t *testing.T) {
	dm := New(4, rng.Constant{Value: 1}, rng.Constant{Value: 0.9}, ConstantScaling{})
	r := rng.New(3)
	mc := dm.SpeedupMC(10, 1000, r)
	want := SpeedupConstant(0.9, 10)
	if math.Abs(mc-want) > 1e-9 {
		t.Fatalf("MC speedup %v vs formula %v", mc, want)
	}
}

func TestExpectedSyncExponentialClosedForm(t *testing.T) {
	dm := New(16, rng.Exponential{MeanVal: 1}, rng.Constant{Value: 1}, ConstantScaling{})
	want := rng.HarmonicNumber(16) + 1
	if got := dm.ExpectedSyncIterationExponential(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("closed form %v, want %v", got, want)
	}
	// Monte-Carlo agreement.
	r := rng.New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += dm.SampleSyncIteration(r)
	}
	if mc := sum / n; math.Abs(mc-want) > 0.02 {
		t.Fatalf("MC %v vs closed form %v", mc, want)
	}
}

func TestClosedFormPanicsForNonExponential(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-exponential Y")
		}
	}()
	New(4, rng.Constant{Value: 1}, rng.Constant{Value: 1}, ConstantScaling{}).
		ExpectedSyncIterationExponential()
}

func TestStragglerMitigation(t *testing.T) {
	// Paper Fig 5's claim: with exponential Y (m=16, y=1, D=1), the mean
	// per-iteration time of PASGD(tau=10) is roughly 2x smaller than sync
	// SGD, and its distribution has a lighter tail.
	dm := New(16, rng.Exponential{MeanVal: 1}, rng.Constant{Value: 1}, ConstantScaling{})
	r := rng.New(5)
	const trials = 50000
	syncMean := 0.0
	syncVals := make([]float64, trials)
	pavgVals := make([]float64, trials)
	pavgMean := 0.0
	for i := 0; i < trials; i++ {
		s := dm.SampleSyncIteration(r)
		p := dm.SamplePerIteration(10, r)
		syncMean += s
		pavgMean += p
		syncVals[i] = s
		pavgVals[i] = p
	}
	syncMean /= trials
	pavgMean /= trials
	ratio := syncMean / pavgMean
	if ratio < 1.8 || ratio > 2.6 {
		t.Fatalf("mean speedup %v, paper reports ~2x", ratio)
	}
	// Lighter tail: PASGD's p99 per-iteration time is smaller.
	ss := rng.Summarize(syncVals)
	ps := rng.Summarize(pavgVals)
	if ps.P99 >= ss.P99 {
		t.Fatalf("PASGD p99 %v should beat sync p99 %v", ps.P99, ss.P99)
	}
	if ps.Var >= ss.Var {
		t.Fatalf("PASGD variance %v should beat sync %v", ps.Var, ss.Var)
	}
}

func TestMCMeanPerIterationDecreasesInTau(t *testing.T) {
	dm := New(8, rng.Exponential{MeanVal: 1}, rng.Constant{Value: 1}, ConstantScaling{})
	r := rng.New(6)
	prev := math.Inf(1)
	for _, tau := range []int{1, 2, 5, 10, 50} {
		cur := dm.MCMeanPerIteration(tau, 20000, r)
		if cur >= prev {
			t.Fatalf("per-iteration time not decreasing at tau=%d: %v >= %v", tau, cur, prev)
		}
		prev = cur
	}
}

func TestProfiles(t *testing.T) {
	vgg := VGG16Profile()
	res := ResNet50Profile()
	am := func(p Profile) float64 { return p.Model(4, ConstantScaling{}).Alpha() }
	if a := am(vgg); a < 3 || a > 5 {
		t.Fatalf("VGG alpha %v, want ~4 (paper Fig 8)", a)
	}
	if a := am(res); a < 0.3 || a > 0.8 {
		t.Fatalf("ResNet alpha %v, want ~0.5 (paper Fig 8)", a)
	}
	if am(vgg) <= am(res) {
		t.Fatal("VGG must be more communication-bound than ResNet")
	}
}

func TestMeasureBreakdown(t *testing.T) {
	r := rng.New(7)
	b1 := MeasureBreakdown(VGG16Profile(), 4, 1, 100, r)
	b10 := MeasureBreakdown(VGG16Profile(), 4, 10, 100, r)
	if b1.Iters != 100 || b10.Iters != 100 {
		t.Fatal("wrong iteration count")
	}
	// tau=10 performs 10 broadcasts instead of 100: ~10x less comm time.
	if b10.Comm >= b1.Comm/5 {
		t.Fatalf("tau=10 comm %v not ~10x below tau=1 comm %v", b10.Comm, b1.Comm)
	}
	// Compute time is roughly unchanged (same number of local steps).
	if b10.Compute > 2*b1.Compute || b1.Compute > 2*b10.Compute {
		t.Fatalf("compute changed too much: %v vs %v", b1.Compute, b10.Compute)
	}
	// For the VGG profile, comm dominates at tau=1 (paper Fig 8).
	if b1.Comm <= b1.Compute {
		t.Fatalf("VGG tau=1: comm %v should dominate compute %v", b1.Comm, b1.Compute)
	}
	if b1.WallClock != b1.Compute+b1.Comm {
		t.Fatal("wallclock != compute + comm")
	}
}

func TestMeasureBreakdownPartialLastRound(t *testing.T) {
	// iters not divisible by tau: the final round has fewer steps but the
	// total local-step count must still equal iters.
	r := rng.New(8)
	b := MeasureBreakdown(Profile{
		Name:     "unit",
		ComputeY: rng.Constant{Value: 1},
		CommD0:   rng.Constant{Value: 0},
	}, 1, 7, 10, r)
	if math.Abs(b.Compute-10) > 1e-12 {
		t.Fatalf("compute %v, want 10 unit steps", b.Compute)
	}
}

// Property: eq-12 speedup is always in [1, 1+alpha].
func TestSpeedupBoundsProperty(t *testing.T) {
	f := func(a8, t8 uint8) bool {
		alpha := float64(a8) / 64.0
		tau := 1 + int(t8)%128
		s := SpeedupConstant(alpha, tau)
		return s >= 1-1e-12 && s <= 1+alpha+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Size-aware communication cost.
// ---------------------------------------------------------------------------

func TestSampleDBytesInfiniteBandwidthIdentical(t *testing.T) {
	// Bandwidth 0 must reproduce SampleD exactly: same values, same RNG
	// consumption, for any payload size.
	dm := New(4, rng.Constant{Value: 1}, rng.Exponential{MeanVal: 0.3}, TreeScaling{})
	r1, r2 := rng.New(17), rng.New(17)
	for i := 0; i < 100; i++ {
		a := dm.SampleD(r1)
		b := dm.SampleDBytes(r2, 1<<20)
		if a != b {
			t.Fatalf("sample %d: SampleD %v != SampleDBytes %v", i, a, b)
		}
	}
}

func TestSampleDBytesChargesTransfer(t *testing.T) {
	dm := New(4, rng.Constant{Value: 1}, rng.Constant{Value: 0.5}, ConstantScaling{})
	dm.Bandwidth = 1000 // bytes per simulated second
	r := rng.New(1)
	got := dm.SampleDBytes(r, 2000)
	want := 0.5 + 2000.0/1000
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("sized delay %v, want %v", got, want)
	}
	// Zero payload pays latency only.
	if got := dm.SampleDBytes(r, 0); got != 0.5 {
		t.Fatalf("zero payload delay %v, want 0.5", got)
	}
}

func TestSampleDBytesScalesTransferWithTopology(t *testing.T) {
	// The transfer term is carried by every hop: s(m) multiplies it too.
	dm := New(8, rng.Constant{Value: 1}, rng.Constant{Value: 0.1}, LinearScaling{})
	dm.Bandwidth = 100
	r := rng.New(2)
	got := dm.SampleDBytes(r, 50)
	want := (0.1 + 0.5) * 8
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("scaled sized delay %v, want %v", got, want)
	}
	if m := dm.MeanDBytes(50); math.Abs(m-want) > 1e-12 {
		t.Fatalf("MeanDBytes %v, want %v", m, want)
	}
	if a := dm.AlphaBytes(50); math.Abs(a-want) > 1e-12 {
		t.Fatalf("AlphaBytes %v, want %v (E[Y]=1)", a, want)
	}
}

func TestConstrainedProfile(t *testing.T) {
	p := VGG16Profile().Constrained(512)
	dm := p.Model(4, ConstantScaling{})
	if dm.Bandwidth != 512 {
		t.Fatalf("bandwidth %v not propagated to model", dm.Bandwidth)
	}
	// The unconstrained profile's model keeps an infinite link.
	if VGG16Profile().Model(4, ConstantScaling{}).Bandwidth != 0 {
		t.Fatal("legacy profile grew a bandwidth")
	}
}

func TestFederatedProfileBandwidthBound(t *testing.T) {
	p := FederatedProfile(1.0, 100)
	dm := p.Model(4, ConstantScaling{})
	// A 1 KiB payload should dominate the tiny base latency.
	if dm.MeanDBytes(1024) < 10 {
		t.Fatalf("federated 1KiB broadcast %v, want >= 10 (bandwidth-bound)", dm.MeanDBytes(1024))
	}
	if dm.MeanD() > 0.1 {
		t.Fatalf("federated latency %v, want small", dm.MeanD())
	}
}

// ---------------------------------------------------------------------------
// Transfer schedules, heterogeneous links, and the *Bytes MC variants.
// ---------------------------------------------------------------------------

func TestSampleDScheduleHomogeneousMatchesSampleDBytes(t *testing.T) {
	// With nil Links and unit hop multipliers the schedule sampler is the
	// legacy per-link charge, bit for bit and draw for draw.
	dm := New(4, rng.Constant{Value: 1}, rng.Exponential{MeanVal: 2}, TreeScaling{})
	dm.Bandwidth = 100
	r1, r2 := rng.New(3), rng.New(3)
	for i := 0; i < 50; i++ {
		a := dm.SampleDBytes(r1, 640)
		b := dm.SampleDSchedule(r2, []int{100, 640, 10, 5}, 1, 1)
		if a != b {
			t.Fatalf("schedule %v != legacy %v at draw %d", b, a, i)
		}
	}
}

func TestSampleDScheduleHopMultipliers(t *testing.T) {
	dm := New(4, rng.Constant{Value: 1}, rng.Constant{Value: 2}, ConstantScaling{})
	dm.Bandwidth = 100
	r := rng.New(1)
	// latHops scales the base latency, bytesFactor the transfer term.
	got := dm.SampleDSchedule(r, []int{200}, 3, 1.5)
	want := 2*3 + 200*1.5/100.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("schedule delay %v, want %v", got, want)
	}
}

func TestSampleDScheduleSlowestLinkGates(t *testing.T) {
	dm := New(3, rng.Constant{Value: 1}, rng.Constant{Value: 1}, ConstantScaling{})
	dm.Bandwidth = 100
	dm.Links = []Link{{}, {Bandwidth: 10}, {Latency: 5}}
	r := rng.New(1)
	// Worker 0 inherits 100 B/s (1 s), worker 1 pays 100/10 = 10 s, worker 2
	// pays 5 s latency plus 1 s transfer: the 10 s link gates the round.
	got := dm.SampleDSchedule(r, []int{100, 100, 100}, 1, 1)
	if want := 1 + 10.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("gated delay %v, want %v", got, want)
	}
}

func TestCheckLinks(t *testing.T) {
	dm := New(4, rng.Constant{Value: 1}, rng.Constant{Value: 1}, nil)
	if err := dm.CheckLinks(); err != nil {
		t.Fatalf("nil links rejected: %v", err)
	}
	dm.Links = make([]Link, 3)
	if err := dm.CheckLinks(); err == nil {
		t.Fatal("accepted 3 links for 4 workers")
	}
}

func TestParseLinks(t *testing.T) {
	links, err := ParseLinks("0.5:100, :50,0:,:", 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []Link{{Latency: 0.5, Bandwidth: 100}, {Bandwidth: 50}, {}, {}}
	for i := range want {
		if links[i] != want[i] {
			t.Fatalf("link %d = %+v, want %+v", i, links[i], want[i])
		}
	}
	if l, err := ParseLinks("", 4); err != nil || l != nil {
		t.Fatalf("empty spec should be nil links: %v %v", l, err)
	}
	for _, bad := range []string{"1:2", "x:1,:,:,:", "1:y,:,:,:", "-1:0,:,:,:"} {
		if _, err := ParseLinks(bad, 4); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestSampleSyncIterationBytesChargesPayload(t *testing.T) {
	dm := New(4, rng.Constant{Value: 1}, rng.Constant{Value: 1}, ConstantScaling{})
	dm.Bandwidth = 100
	r := rng.New(2)
	free := dm.SampleSyncIteration(r)
	sized := dm.SampleSyncIterationBytes(r, 500)
	if want := free + 5; math.Abs(sized-want) > 1e-12 {
		t.Fatalf("sized sync iteration %v, want %v", sized, want)
	}
}

func TestSampleRoundBytesChargesPayload(t *testing.T) {
	dm := New(4, rng.Constant{Value: 1}, rng.Constant{Value: 1}, ConstantScaling{})
	dm.Bandwidth = 100
	r := rng.New(2)
	free := dm.SampleRound(10, r)
	sized := dm.SampleRoundBytes(10, r, 500)
	if want := free + 5; math.Abs(sized-want) > 1e-12 {
		t.Fatalf("sized round %v, want %v", sized, want)
	}
	per := dm.SamplePerIterationBytes(10, r, 500)
	if want := sized / 10; math.Abs(per-want) > 1e-12 {
		t.Fatalf("sized per-iteration %v, want %v", per, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("accepted tau = 0")
		}
	}()
	dm.SampleRoundBytes(0, r, 1)
}

func TestMeasureBreakdownBytes(t *testing.T) {
	p := Profile{
		Name:      "const",
		ComputeY:  rng.Constant{Value: 1},
		CommD0:    rng.Constant{Value: 1},
		Bandwidth: 100,
	}
	r := rng.New(3)
	b := MeasureBreakdownBytes(p, 4, 10, 100, r, 500)
	// 10 rounds: compute 10*10, comm 10*(1 + 500/100).
	if math.Abs(b.Compute-100) > 1e-12 || math.Abs(b.Comm-60) > 1e-12 {
		t.Fatalf("breakdown %+v, want compute 100 comm 60", b)
	}
	// The size-free driver on the same constrained profile still charges the
	// paper's fixed D (documented behavior).
	free := MeasureBreakdown(p, 4, 10, 100, rng.New(3))
	if math.Abs(free.Comm-10) > 1e-12 {
		t.Fatalf("size-free breakdown charged %v, want 10", free.Comm)
	}
}

func TestSampleDScheduleIntoMatchesSampleDSchedule(t *testing.T) {
	// Recording per-worker times must change neither the total nor the RNG
	// consumption, on both the homogeneous and the per-link path.
	bytes := []int{100, 640, 10, 5}
	for _, links := range [][]Link{nil, {{}, {Bandwidth: 10}, {Latency: 5}, {}}} {
		dm := New(4, rng.Constant{Value: 1}, rng.Exponential{MeanVal: 2}, TreeScaling{})
		dm.Bandwidth = 100
		dm.Links = links
		r1, r2 := rng.New(3), rng.New(3)
		times := make([]float64, 4)
		for i := 0; i < 50; i++ {
			a := dm.SampleDSchedule(r1, bytes, 2, 1.5)
			b := dm.SampleDScheduleInto(r2, bytes, 2, 1.5, times)
			if a != b {
				t.Fatalf("links=%v draw %d: into %v != plain %v", links, i, b, a)
			}
		}
	}
}

func TestSampleDScheduleIntoPerWorkerTimes(t *testing.T) {
	dm := New(3, rng.Constant{Value: 1}, rng.Constant{Value: 1}, ConstantScaling{})
	dm.Bandwidth = 100
	dm.Links = []Link{{}, {Bandwidth: 10}, {Latency: 5}}
	times := make([]float64, 3)
	dm.SampleDScheduleInto(rng.New(1), []int{100, 100, 100}, 1, 1, times)
	want := []float64{1, 10, 6}
	for i := range want {
		if math.Abs(times[i]-want[i]) > 1e-12 {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
	// Homogeneous path: every worker priced on the shared bandwidth.
	dm.Links = nil
	dm.SampleDScheduleInto(rng.New(1), []int{100, 200, 50}, 1, 2, times)
	want = []float64{2, 4, 1}
	for i := range want {
		if math.Abs(times[i]-want[i]) > 1e-12 {
			t.Fatalf("homogeneous times = %v, want %v", times, want)
		}
	}
}

func TestCheckLinksRejectsDegenerateEntries(t *testing.T) {
	for _, bad := range [][]Link{
		{{Latency: -1}, {}, {}, {}},
		{{}, {Bandwidth: -5}, {}, {}},
		{{Latency: math.NaN()}, {}, {}, {}},
		{{}, {}, {Bandwidth: math.Inf(1)}, {}},
	} {
		dm := New(4, rng.Constant{Value: 1}, rng.Constant{Value: 1}, nil)
		dm.Links = bad
		if err := dm.CheckLinks(); err == nil {
			t.Fatalf("accepted degenerate links %+v", bad)
		}
	}
	// Zero stays legal: zero latency is real, zero bandwidth inherits.
	dm := New(2, rng.Constant{Value: 1}, rng.Constant{Value: 1}, nil)
	dm.Links = []Link{{}, {Latency: 0, Bandwidth: 50}}
	if err := dm.CheckLinks(); err != nil {
		t.Fatalf("rejected valid links: %v", err)
	}
}

func TestParseLinksRejectsDegenerateEntries(t *testing.T) {
	for _, bad := range []string{
		"0:0,:,:,:",    // explicit zero bandwidth (use empty to inherit)
		"nan:1,:,:,:",  // NaN latency parses but is degenerate
		"1:nan,:,:,:",  // NaN bandwidth
		"inf:1,:,:,:",  // infinite latency
		"1:inf,:,:,:",  // infinite bandwidth
		"1:-2,:,:,:",   // negative bandwidth
		"-0.5:1,:,:,:", // negative latency
	} {
		if _, err := ParseLinks(bad, 4); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
	// Empty bandwidth still inherits; explicit zero latency still legal.
	links, err := ParseLinks("0:,0:100", 2)
	if err != nil {
		t.Fatal(err)
	}
	if links[0] != (Link{}) || links[1] != (Link{Bandwidth: 100}) {
		t.Fatalf("parsed %+v", links)
	}
}

func TestJitterScalesNilIsZeroConfig(t *testing.T) {
	dm := New(4, rng.Constant{Value: 1}, rng.Constant{Value: 1}, nil)
	s, err := dm.JitterScales()
	if err != nil || s != nil {
		t.Fatalf("nil jitter must draw nothing, got %v, %v", s, err)
	}
}

func TestJitterScalesSeededAndPerWorker(t *testing.T) {
	dm := New(8, rng.Constant{Value: 1}, rng.Constant{Value: 1}, nil)
	dm.Jitter = rng.Pareto{Xm: 1, Alpha: 2}
	dm.JitterSeed = 7
	a, err := dm.JitterScales()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := dm.JitterScales()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("worker %d jitter not reproducible: %v vs %v", i, a[i], b[i])
		}
		if a[i] < 1 {
			t.Fatalf("worker %d Pareto(1,2) factor %v < Xm", i, a[i])
		}
	}
	distinct := false
	for i := 1; i < len(a); i++ {
		if a[i] != a[0] {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("all workers drew the same jitter factor")
	}
	dm.JitterSeed = 8
	c, _ := dm.JitterScales()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
}

func TestJitterScalesRejectsDegenerateDraws(t *testing.T) {
	dm := New(2, rng.Constant{Value: 1}, rng.Constant{Value: 1}, nil)
	for _, bad := range []rng.Distribution{
		rng.Constant{Value: 0},
		rng.Constant{Value: -1},
		rng.Constant{Value: math.Inf(1)},
		rng.Constant{Value: math.NaN()},
	} {
		dm.Jitter = bad
		if _, err := dm.JitterScales(); err == nil {
			t.Errorf("accepted jitter draw %v", bad.Sample(rng.New(1)))
		}
	}
}

func TestSampleTransferPricesLinkAndBytes(t *testing.T) {
	dm := New(2, rng.Constant{Value: 1}, rng.Constant{Value: 0.5}, nil)
	dm.Bandwidth = 100
	r := rng.New(3)
	// Homogeneous: D0 + bytes/bandwidth.
	if got, want := dm.SampleTransfer(r, 0, 200), 0.5+2.0; got != want {
		t.Fatalf("transfer %v, want %v", got, want)
	}
	// Zero bytes: latency only.
	if got := dm.SampleTransfer(r, 0, 0); got != 0.5 {
		t.Fatalf("zero-byte transfer %v, want 0.5", got)
	}
	// Per-worker link: added latency, overridden bandwidth.
	dm.Links = []Link{{}, {Latency: 1, Bandwidth: 50}}
	if got, want := dm.SampleTransfer(r, 1, 200), 0.5+1+4.0; got != want {
		t.Fatalf("slow-link transfer %v, want %v", got, want)
	}
	// Inherited bandwidth on a zero link entry.
	if got, want := dm.SampleTransfer(r, 0, 200), 0.5+2.0; got != want {
		t.Fatalf("inherit-link transfer %v, want %v", got, want)
	}
	// Infinite bandwidth: bytes are free.
	dm.Bandwidth = 0
	dm.Links = nil
	if got := dm.SampleTransfer(r, 0, 1<<20); got != 0.5 {
		t.Fatalf("infinite-bandwidth transfer %v, want 0.5", got)
	}
}
