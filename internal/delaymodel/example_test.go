package delaymodel_test

import (
	"fmt"

	"repro/internal/delaymodel"
	"repro/internal/rng"
)

// The eq-12 speedup of PASGD over fully synchronous SGD for a
// communication-bound cluster (alpha = 0.9), as in the paper's Fig 4.
func ExampleSpeedupConstant() {
	for _, tau := range []int{1, 10, 100} {
		fmt.Printf("tau=%-4d speedup=%.3f\n", tau, delaymodel.SpeedupConstant(0.9, tau))
	}
	// Output:
	// tau=1    speedup=1.000
	// tau=10   speedup=1.743
	// tau=100  speedup=1.883
}

// Closed-form expected per-iteration time of fully synchronous SGD with
// exponential compute times: y*H_m + D (paper Sec 3.2).
func ExampleModel_ExpectedSyncIterationExponential() {
	dm := delaymodel.New(16,
		rng.Exponential{MeanVal: 1},
		rng.Constant{Value: 1},
		delaymodel.ConstantScaling{})
	fmt.Printf("%.4f\n", dm.ExpectedSyncIterationExponential())
	// Output:
	// 4.3807
}
