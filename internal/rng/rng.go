// Package rng provides a deterministic, splittable pseudo-random number
// generator and the probability distributions used throughout the AdaComm
// reproduction: local-step compute times Y, communication delays D, data
// synthesis, and Monte-Carlo runtime experiments.
//
// Determinism matters here: every experiment in the paper reproduction is
// seeded, so that figures and tables regenerate identically run-to-run.
// The generator is xoshiro256**, seeded via SplitMix64, which is the
// combination recommended by the xoshiro authors. Split creates an
// independent stream, which lets each simulated worker own its own
// generator without cross-worker coupling.
package rng

import "math"

// Rand is a deterministic pseudo-random number generator (xoshiro256**).
// It is NOT safe for concurrent use; use Split to derive independent
// streams for concurrent consumers.
type Rand struct {
	s [4]uint64
}

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used for seeding only.
func splitMix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given seed. Two generators with
// the same seed produce identical streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro requires a non-zero state; SplitMix64 guarantees this with
	// overwhelming probability, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new generator whose stream is independent of the
// receiver's future outputs. The receiver is advanced.
func (r *Rand) Split() *Rand {
	// Derive a fresh seed from the parent stream and re-expand through
	// SplitMix64 so parent and child states are decorrelated.
	return New(r.Uint64() ^ 0xA3EC647659359ACD)
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling would be faster, but
	// simple modulo rejection keeps the implementation auditable; the bias
	// rejection loop guarantees uniformity.
	bound := uint64(n)
	threshold := -bound % bound // (2^64 - bound) mod bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles the slice in place (Fisher-Yates).
func (r *Rand) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal sample (Box-Muller, polar form).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential sample with rate 1 (mean 1).
func (r *Rand) ExpFloat64() float64 {
	// Inverse CDF on (0,1]; 1-Float64() avoids log(0).
	return -math.Log(1 - r.Float64())
}
