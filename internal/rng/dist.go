package rng

import (
	"fmt"
	"math"
)

// Distribution is a one-dimensional probability distribution from which the
// simulator draws local-step compute times Y and communication delays D.
// Mean and Var return the analytic first two moments, which the runtime
// analysis (paper Sec 3.1) compares against Monte-Carlo estimates.
type Distribution interface {
	Sample(r *Rand) float64
	Mean() float64
	Var() float64
	String() string
}

// Constant is a degenerate distribution: every sample equals Value.
// The paper's speed-up formula (eq 12) assumes constant Y and D.
type Constant struct{ Value float64 }

// Sample returns Value.
func (c Constant) Sample(*Rand) float64 { return c.Value }

// Mean returns Value.
func (c Constant) Mean() float64 { return c.Value }

// Var returns 0.
func (c Constant) Var() float64 { return 0 }

func (c Constant) String() string { return fmt.Sprintf("Constant(%g)", c.Value) }

// Uniform is the continuous uniform distribution on [Low, High].
type Uniform struct{ Low, High float64 }

// Sample draws uniformly from [Low, High).
func (u Uniform) Sample(r *Rand) float64 { return u.Low + (u.High-u.Low)*r.Float64() }

// Mean returns (Low+High)/2.
func (u Uniform) Mean() float64 { return (u.Low + u.High) / 2 }

// Var returns (High-Low)^2 / 12.
func (u Uniform) Var() float64 { d := u.High - u.Low; return d * d / 12 }

func (u Uniform) String() string { return fmt.Sprintf("Uniform[%g,%g]", u.Low, u.High) }

// Exponential has mean MeanVal (rate 1/MeanVal). The paper's straggler
// analysis (Sec 3.2) models Y as exponential with mean y, so that
// E[max of m] = y * H_m grows logarithmically in m.
type Exponential struct{ MeanVal float64 }

// Sample draws an exponential with mean MeanVal.
func (e Exponential) Sample(r *Rand) float64 { return e.MeanVal * r.ExpFloat64() }

// Mean returns the mean.
func (e Exponential) Mean() float64 { return e.MeanVal }

// Var returns mean^2.
func (e Exponential) Var() float64 { return e.MeanVal * e.MeanVal }

func (e Exponential) String() string { return fmt.Sprintf("Exp(mean=%g)", e.MeanVal) }

// ShiftedExponential is Shift + Exponential(mean Scale): a deterministic
// minimum compute time plus an exponential tail. This is the standard model
// for "mostly steady workers with occasional slowdowns".
type ShiftedExponential struct {
	Shift float64 // deterministic floor, >= 0
	Scale float64 // mean of the exponential part
}

// Sample draws Shift + Exp(Scale).
func (s ShiftedExponential) Sample(r *Rand) float64 { return s.Shift + s.Scale*r.ExpFloat64() }

// Mean returns Shift + Scale.
func (s ShiftedExponential) Mean() float64 { return s.Shift + s.Scale }

// Var returns Scale^2.
func (s ShiftedExponential) Var() float64 { return s.Scale * s.Scale }

func (s ShiftedExponential) String() string {
	return fmt.Sprintf("ShiftedExp(shift=%g,scale=%g)", s.Shift, s.Scale)
}

// Erlang is the sum of K i.i.d. exponentials each with mean MeanVal/K, so
// the total mean is MeanVal and the variance is MeanVal^2/K. The average of
// tau local-step times in PASGD (paper eq 9) is Erlang-distributed when Y is
// exponential; its tau-times-smaller variance is the source of PASGD's
// straggler mitigation.
type Erlang struct {
	K       int     // shape (number of summed exponentials), >= 1
	MeanVal float64 // mean of the sum
}

// Sample draws an Erlang(K, mean=MeanVal) value.
func (e Erlang) Sample(r *Rand) float64 {
	if e.K < 1 {
		panic("rng: Erlang with K < 1")
	}
	// Product of uniforms avoids K calls to Log.
	prod := 1.0
	for i := 0; i < e.K; i++ {
		prod *= 1 - r.Float64()
	}
	return -e.MeanVal / float64(e.K) * math.Log(prod)
}

// Mean returns the mean of the sum.
func (e Erlang) Mean() float64 { return e.MeanVal }

// Var returns MeanVal^2 / K.
func (e Erlang) Var() float64 { return e.MeanVal * e.MeanVal / float64(e.K) }

func (e Erlang) String() string { return fmt.Sprintf("Erlang(k=%d,mean=%g)", e.K, e.MeanVal) }

// Pareto is a heavy-tailed distribution with scale Xm > 0 and shape
// Alpha > 0. Used in straggler ablations: with Alpha <= 2 the variance is
// infinite and periodic averaging's tail-smoothing advantage is largest.
type Pareto struct {
	Xm    float64
	Alpha float64
}

// Sample draws a Pareto(Xm, Alpha) value by inverse CDF.
func (p Pareto) Sample(r *Rand) float64 {
	u := 1 - r.Float64() // in (0, 1]
	return p.Xm / math.Pow(u, 1/p.Alpha)
}

// Mean returns alpha*xm/(alpha-1) for Alpha > 1, +Inf otherwise.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// Var returns the variance for Alpha > 2, +Inf otherwise.
func (p Pareto) Var() float64 {
	if p.Alpha <= 2 {
		return math.Inf(1)
	}
	a := p.Alpha
	return p.Xm * p.Xm * a / ((a - 1) * (a - 1) * (a - 2))
}

func (p Pareto) String() string { return fmt.Sprintf("Pareto(xm=%g,alpha=%g)", p.Xm, p.Alpha) }

// Normal is the Gaussian distribution with the given mean and standard
// deviation, truncated below at zero when used as a delay (see
// TruncatedNormal) — this type itself is untruncated.
type Normal struct {
	Mu    float64
	Sigma float64
}

// Sample draws a normal value.
func (n Normal) Sample(r *Rand) float64 { return n.Mu + n.Sigma*r.NormFloat64() }

// Mean returns Mu.
func (n Normal) Mean() float64 { return n.Mu }

// Var returns Sigma^2.
func (n Normal) Var() float64 { return n.Sigma * n.Sigma }

func (n Normal) String() string { return fmt.Sprintf("Normal(mu=%g,sigma=%g)", n.Mu, n.Sigma) }

// TruncatedNormal is a Normal conditioned on being >= Floor (rejection
// sampled). Suitable as a mildly-variable delay distribution.
type TruncatedNormal struct {
	Mu    float64
	Sigma float64
	Floor float64
}

// Sample rejection-samples a normal until the value is >= Floor.
func (t TruncatedNormal) Sample(r *Rand) float64 {
	for i := 0; i < 1024; i++ {
		v := t.Mu + t.Sigma*r.NormFloat64()
		if v >= t.Floor {
			return v
		}
	}
	return t.Floor // pathological parameters; fail safe
}

// Mean returns the untruncated mean (approximation; exact when the
// truncation mass is negligible, which holds for all profiles in this repo).
func (t TruncatedNormal) Mean() float64 { return t.Mu }

// Var returns the untruncated variance (same approximation as Mean).
func (t TruncatedNormal) Var() float64 { return t.Sigma * t.Sigma }

func (t TruncatedNormal) String() string {
	return fmt.Sprintf("TruncNormal(mu=%g,sigma=%g,floor=%g)", t.Mu, t.Sigma, t.Floor)
}

// Scaled wraps a distribution and multiplies every sample (and both
// moments) by Factor. Used for D = D0 * s(m) (paper eq 5).
type Scaled struct {
	Base   Distribution
	Factor float64
}

// Sample returns Factor * Base.Sample(r).
func (s Scaled) Sample(r *Rand) float64 { return s.Factor * s.Base.Sample(r) }

// Mean returns Factor * Base.Mean().
func (s Scaled) Mean() float64 { return s.Factor * s.Base.Mean() }

// Var returns Factor^2 * Base.Var().
func (s Scaled) Var() float64 { return s.Factor * s.Factor * s.Base.Var() }

func (s Scaled) String() string { return fmt.Sprintf("%g*%s", s.Factor, s.Base) }
