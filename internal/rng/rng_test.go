package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must differ from both a fresh parent continuation
	// and a same-seed generator.
	ref := New(7)
	ref.Uint64() // parent consumed one value during Split
	for i := 0; i < 100; i++ {
		if child.Uint64() == ref.Uint64() {
			t.Fatalf("child correlated with parent continuation at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for n := 1; n <= 17; n++ {
		seen := make([]bool, n)
		for i := 0; i < 200*n; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
			seen[v] = true
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("Intn(%d) never produced %d", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(6)
	for _, n := range []int{1, 2, 5, 64, 257} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(8)
	const n, trials = 5, 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("Perm first element %d count %d deviates from %v", v, c, want)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(9)
	const n = 300000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal var = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(10)
	const n = 300000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential sample %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exp mean = %v, want ~1", mean)
	}
}

// checkMoments verifies Monte-Carlo moments of d against its analytic ones.
func checkMoments(t *testing.T, d Distribution, n int, meanTol, varTol float64) {
	t.Helper()
	r := New(11)
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean-d.Mean()) > meanTol {
		t.Fatalf("%s: sample mean %v vs analytic %v", d, mean, d.Mean())
	}
	if !math.IsInf(d.Var(), 1) && math.Abs(variance-d.Var()) > varTol {
		t.Fatalf("%s: sample var %v vs analytic %v", d, variance, d.Var())
	}
}

func TestDistributionMoments(t *testing.T) {
	checkMoments(t, Constant{2.5}, 100, 1e-12, 1e-12)
	checkMoments(t, Uniform{1, 3}, 200000, 0.01, 0.01)
	checkMoments(t, Exponential{2}, 300000, 0.03, 0.15)
	checkMoments(t, ShiftedExponential{Shift: 1, Scale: 0.5}, 200000, 0.01, 0.02)
	checkMoments(t, Erlang{K: 4, MeanVal: 2}, 200000, 0.01, 0.05)
	checkMoments(t, Normal{Mu: 3, Sigma: 0.7}, 200000, 0.01, 0.02)
	checkMoments(t, Pareto{Xm: 1, Alpha: 3}, 400000, 0.02, 0.2)
	checkMoments(t, Scaled{Base: Exponential{1}, Factor: 3}, 300000, 0.05, 0.3)
}

func TestErlangVarianceShrinks(t *testing.T) {
	// Var(Erlang(k, mean)) = mean^2/k must strictly decrease in k: this is
	// the mechanism behind PASGD's straggler mitigation.
	prev := math.Inf(1)
	for k := 1; k <= 32; k *= 2 {
		v := (Erlang{K: k, MeanVal: 1}).Var()
		if v >= prev {
			t.Fatalf("Erlang variance not decreasing at k=%d: %v >= %v", k, v, prev)
		}
		prev = v
	}
}

func TestParetoInfiniteMoments(t *testing.T) {
	if !math.IsInf((Pareto{Xm: 1, Alpha: 1}).Mean(), 1) {
		t.Fatal("Pareto alpha<=1 should have infinite mean")
	}
	if !math.IsInf((Pareto{Xm: 1, Alpha: 2}).Var(), 1) {
		t.Fatal("Pareto alpha<=2 should have infinite variance")
	}
}

func TestTruncatedNormalFloor(t *testing.T) {
	d := TruncatedNormal{Mu: 1, Sigma: 2, Floor: 0.5}
	r := New(12)
	for i := 0; i < 50000; i++ {
		if v := d.Sample(r); v < 0.5 {
			t.Fatalf("truncated sample %v below floor", v)
		}
	}
}

func TestHarmonicNumber(t *testing.T) {
	cases := []struct {
		n    int
		want float64
	}{
		{0, 0}, {1, 1}, {2, 1.5}, {3, 1.5 + 1.0/3},
		{4, 1.5 + 1.0/3 + 0.25},
	}
	for _, c := range cases {
		if got := HarmonicNumber(c.n); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("H_%d = %v, want %v", c.n, got, c.want)
		}
	}
	// H_m ~ ln m + gamma for large m.
	if got := HarmonicNumber(100000); math.Abs(got-(math.Log(100000)+0.5772156649)) > 1e-4 {
		t.Fatalf("H_100000 = %v deviates from asymptotic", got)
	}
}

func TestExpectedMaxExponentialMatchesMC(t *testing.T) {
	r := New(13)
	for _, m := range []int{1, 4, 16} {
		analytic := ExpectedMaxExponential(1, m)
		mc := MonteCarloExpectedMax(Exponential{1}, m, 100000, r)
		if math.Abs(analytic-mc) > 0.05 {
			t.Fatalf("m=%d: analytic %v vs MC %v", m, analytic, mc)
		}
	}
}

func TestMaxOfMeanSmallerThanMax(t *testing.T) {
	// E[max of means of tau draws] < E[max of single draws] for tau > 1:
	// paper Sec 3.2's straggler-mitigation claim.
	r := New(14)
	maxSingle := MonteCarloExpectedMax(Exponential{1}, 16, 50000, r)
	maxMean := MonteCarloExpectedMaxOfMean(Exponential{1}, 16, 10, 50000, r)
	if maxMean >= maxSingle {
		t.Fatalf("E[max of means] %v should be < E[max] %v", maxMean, maxSingle)
	}
	// And it should approach the mean (1.0) as tau grows.
	if maxMean > 2.2 {
		t.Fatalf("E[max of means] %v too large for tau=10", maxMean)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("bad summary %+v", s)
	}
	if math.Abs(s.Var-2.5) > 1e-12 {
		t.Fatalf("variance %v, want 2.5", s.Var)
	}
	if s.P50 != 3 {
		t.Fatalf("median %v, want 3", s.P50)
	}
}

func TestSummarizePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Summarize(empty) did not panic")
		}
	}()
	Summarize(nil)
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-5) // clamps into first bin
	h.Add(50) // clamps into last bin
	if h.Total() != 12 {
		t.Fatalf("total %d, want 12", h.Total())
	}
	if h.Counts[0] != 2 || h.Counts[9] != 2 {
		t.Fatalf("clamping failed: %v", h.Counts)
	}
	if c := h.BinCenter(0); math.Abs(c-0.5) > 1e-12 {
		t.Fatalf("bin center %v, want 0.5", c)
	}
	if d := h.Density(0); math.Abs(d-2.0/12) > 1e-12 {
		t.Fatalf("density %v, want %v", d, 2.0/12)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileProperties(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		s := Summarize(vals)
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Scaled preserves the mean scaling relation on samples.
func TestScaledProperty(t *testing.T) {
	f := func(seed uint64, factor8 uint8) bool {
		factor := 0.1 + float64(factor8)/32.0
		base := Exponential{1.5}
		d := Scaled{Base: base, Factor: factor}
		r1, r2 := New(seed), New(seed)
		for i := 0; i < 16; i++ {
			if math.Abs(d.Sample(r1)-factor*base.Sample(r2)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
