package rng

import (
	"math"
	"sort"
)

// Order-statistic utilities backing the paper's runtime analysis (Sec 3.1):
// the per-iteration time of synchronous SGD is the maximum of m i.i.d.
// compute times (eq 7), and PASGD replaces each compute time with the
// average of tau draws (eq 9), shrinking the variance by tau and hence the
// expected maximum.

// HarmonicNumber returns H_n = sum_{i=1..n} 1/i. H_0 = 0.
func HarmonicNumber(n int) float64 {
	h := 0.0
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h
}

// ExpectedMaxExponential returns E[max of m i.i.d. Exp(mean)] = mean * H_m,
// the closed form the paper uses for E[Y_{m:m}] (Sec 3.2).
func ExpectedMaxExponential(mean float64, m int) float64 {
	return mean * HarmonicNumber(m)
}

// MonteCarloExpectedMax estimates E[max of m i.i.d. draws from d] from the
// given number of trials.
func MonteCarloExpectedMax(d Distribution, m, trials int, r *Rand) float64 {
	if m < 1 || trials < 1 {
		panic("rng: MonteCarloExpectedMax needs m >= 1 and trials >= 1")
	}
	sum := 0.0
	for t := 0; t < trials; t++ {
		mx := math.Inf(-1)
		for i := 0; i < m; i++ {
			if v := d.Sample(r); v > mx {
				mx = v
			}
		}
		sum += mx
	}
	return sum / float64(trials)
}

// MonteCarloExpectedMaxOfMean estimates E[max over m workers of the average
// of tau i.i.d. draws from d] — the E[Ybar_{m:m}] term in the PASGD runtime
// (paper eq 11).
func MonteCarloExpectedMaxOfMean(d Distribution, m, tau, trials int, r *Rand) float64 {
	if m < 1 || tau < 1 || trials < 1 {
		panic("rng: MonteCarloExpectedMaxOfMean needs m, tau, trials >= 1")
	}
	sum := 0.0
	for t := 0; t < trials; t++ {
		mx := math.Inf(-1)
		for i := 0; i < m; i++ {
			acc := 0.0
			for k := 0; k < tau; k++ {
				acc += d.Sample(r)
			}
			if avg := acc / float64(tau); avg > mx {
				mx = avg
			}
		}
		sum += mx
	}
	return sum / float64(trials)
}

// Summary holds basic sample statistics.
type Summary struct {
	N             int
	Mean          float64
	Var           float64 // unbiased sample variance
	Min, Max      float64
	P50, P90, P99 float64
}

// Summarize computes summary statistics of the samples. It panics on an
// empty input.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		panic("rng: Summarize of empty sample set")
	}
	s := Summary{N: len(samples), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, v := range samples {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, v := range samples {
			d := v - s.Mean
			ss += d * d
		}
		s.Var = ss / float64(s.N-1)
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	s.P50 = quantileSorted(sorted, 0.50)
	s.P90 = quantileSorted(sorted, 0.90)
	s.P99 = quantileSorted(sorted, 0.99)
	return s
}

// quantileSorted returns the q-quantile of an ascending-sorted slice using
// linear interpolation between closest ranks.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is a fixed-bin-width histogram over [Low, High); samples outside
// the range are clamped into the first/last bin. It backs Fig 5 (runtime
// per-iteration distributions).
type Histogram struct {
	Low, High float64
	Counts    []int
	total     int
}

// NewHistogram creates a histogram with the given number of bins.
func NewHistogram(low, high float64, bins int) *Histogram {
	if bins < 1 || high <= low {
		panic("rng: NewHistogram needs bins >= 1 and high > low")
	}
	return &Histogram{Low: low, High: high, Counts: make([]int, bins)}
}

// Add records a sample.
func (h *Histogram) Add(v float64) {
	bins := len(h.Counts)
	idx := int(float64(bins) * (v - h.Low) / (h.High - h.Low))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the center of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.High - h.Low) / float64(len(h.Counts))
	return h.Low + (float64(i)+0.5)*w
}

// Density returns the probability mass in bin i (count / total). Zero when
// no samples have been recorded.
func (h *Histogram) Density(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}
