package graph

import (
	"math"
	"testing"
)

func TestSubgraphInducedStructure(t *testing.T) {
	g := Ring(6)
	active := []bool{true, true, false, true, true, true}
	sub := g.Subgraph(active)

	if sub.N() != 6 {
		t.Fatalf("indices must be preserved: N = %d", sub.N())
	}
	if sub.Degree(2) != 0 {
		t.Fatalf("inactive node degree %d, want 0", sub.Degree(2))
	}
	// Node 2's former neighbors lose that edge but keep the rest of the
	// ring.
	wantAdj := map[int][]int{0: {5, 1}, 1: {0}, 3: {4}, 4: {3, 5}, 5: {4, 0}}
	for i, want := range wantAdj {
		got := sub.Neighbors(i)
		if len(got) != len(want) {
			t.Fatalf("node %d neighbors %v, want %v", i, got, want)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("node %d neighbors %v, want %v (parent order)", i, got, want)
			}
		}
	}
	// Mix orders are the parent's rows filtered to active members: no row
	// may reference the inactive node.
	for i := 0; i < 6; i++ {
		if !active[i] {
			continue
		}
		for _, o := range sub.MixOrder(i) {
			if !active[o] {
				t.Fatalf("node %d mix order references inactive %d", i, o)
			}
		}
	}
	// The isolated node's mix row is the exact identity.
	if mo := sub.MixOrder(2); len(mo) != 1 || mo[0] != 2 {
		t.Fatalf("isolated mix order %v", mo)
	}
}

func TestSubgraphWeightsRederived(t *testing.T) {
	// Removing one node from a complete graph leaves a smaller complete
	// graph; every surviving row must be doubly stochastic over survivors.
	g := Complete(5)
	active := []bool{true, true, true, true, false}
	sub := g.Subgraph(active)
	for i := 0; i < 4; i++ {
		order := sub.MixOrder(i)
		total := 0.0
		if ws := sub.MixWeights(i); ws == nil {
			total = 1 // uniform row
		} else {
			for _, w := range ws {
				total += w
			}
		}
		if math.Abs(total-1) > 1e-12 {
			t.Fatalf("node %d row mass %v (order %v)", i, total, order)
		}
	}
}

func TestSubgraphActiveBlockGap(t *testing.T) {
	// The full active set reproduces the parent's connectivity: a ring of 6
	// with one node down still mixes among the 5-path survivors, so the gap
	// must be positive — the isolated node's identity row must NOT pin it
	// to zero... and a fully-up mask changes nothing.
	g := Ring(6)
	allUp := []bool{true, true, true, true, true, true}
	if gap := g.Subgraph(allUp).SpectralGap(); math.Abs(gap-g.SpectralGap()) > 1e-9 {
		t.Fatalf("all-up subgraph gap %v, parent %v", gap, g.SpectralGap())
	}
	one := g.Subgraph([]bool{true, true, false, true, true, true})
	if gap := one.SpectralGap(); !(gap > 0) {
		t.Fatalf("survivor path gap %v, want > 0", gap)
	}
	// Two opposite nodes down disconnect the ring into two components: the
	// active-block gap collapses toward 0 and AdaptiveGamma damps to its
	// floor.
	split := g.Subgraph([]bool{true, false, true, true, false, true})
	if gap := split.SpectralGap(); gap > 0.05 {
		t.Fatalf("disconnected block gap %v, want ~0", gap)
	}
	if gamma := AdaptiveGamma(split.SpectralGap()); gamma > 0.3 {
		t.Fatalf("disconnected gamma %v, want damped", gamma)
	}
	// A single survivor mixes trivially.
	solo := g.Subgraph([]bool{false, false, true, false, false, false})
	if solo.SpectralGap() != 1 {
		t.Fatalf("single-survivor gap %v, want 1", solo.SpectralGap())
	}
}

func TestSubgraphRejectsWrongMask(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("accepted short mask")
		}
	}()
	Ring(4).Subgraph([]bool{true, true})
}
