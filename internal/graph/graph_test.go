package graph

import (
	"math"
	"testing"
)

// checkContract asserts the mixing-matrix contract on a constructed graph:
// symmetry, double stochasticity, positive self-weights, connectivity.
func checkContract(t *testing.T, g *Graph) {
	t.Helper()
	n := g.N()
	if !g.Connected() {
		t.Fatalf("%s: not connected", g)
	}
	colSum := make([]float64, n)
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for _, j := range g.MixOrder(i) {
			w := g.Weight(i, j)
			if w <= 0 {
				t.Fatalf("%s: W[%d][%d] = %v (want > 0 on the neighborhood)", g, i, j, w)
			}
			rowSum += w
			colSum[j] += w
		}
		if math.Abs(rowSum-1) > 1e-12 {
			t.Fatalf("%s: row %d sums to %v", g, i, rowSum)
		}
		if g.Weight(i, i) <= 0 {
			t.Fatalf("%s: self-weight W[%d][%d] = %v", g, i, i, g.Weight(i, i))
		}
		for _, j := range g.Neighbors(i) {
			if wij, wji := g.Weight(i, j), g.Weight(j, i); math.Abs(wij-wji) > 1e-15 {
				t.Fatalf("%s: W[%d][%d]=%v != W[%d][%d]=%v", g, i, j, wij, j, i, wji)
			}
		}
	}
	for j, s := range colSum {
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("%s: column %d sums to %v", g, j, s)
		}
	}
}

func TestConstructorsSatisfyMixingContract(t *testing.T) {
	graphs := []*Graph{
		Ring(1), Ring(2), Ring(3), Ring(5), Ring(16),
		Complete(2), Complete(5), Complete(16),
		Star(2), Star(5), Star(16),
		Torus(1, 5), Torus(2, 2), Torus(2, 4), Torus(4, 4), Torus(3, 5),
		Expander(5), Expander(16), Expander(64),
	}
	rr, err := RandomRegular(16, 4, 11)
	if err != nil {
		t.Fatalf("RandomRegular: %v", err)
	}
	graphs = append(graphs, rr)
	for _, g := range graphs {
		checkContract(t, g)
	}
}

func TestRingMatchesLegacyMixShape(t *testing.T) {
	g := Ring(5)
	for i := 0; i < 5; i++ {
		prev, next := (i-1+5)%5, (i+1)%5
		order := g.MixOrder(i)
		if len(order) != 3 || order[0] != prev || order[1] != i || order[2] != next {
			t.Fatalf("ring row %d order %v, want [%d %d %d]", i, order, prev, i, next)
		}
		if g.MixWeights(i) != nil {
			t.Fatalf("ring row %d not uniform", i)
		}
		if nb := g.Neighbors(i); len(nb) != 2 || nb[0] != prev || nb[1] != next {
			t.Fatalf("ring row %d neighbors %v", i, nb)
		}
	}
	g2 := Ring(2)
	if order := g2.MixOrder(0); len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("two-node ring row 0 order %v, want [0 1]", order)
	}
	if order := Ring(1).MixOrder(0); len(order) != 1 || order[0] != 0 {
		t.Fatalf("one-node ring row 0 order %v, want [0]", order)
	}
}

func TestStarWeightsAreMetropolis(t *testing.T) {
	n := 8
	g := Star(n)
	// Hub row is uniform 1/n; leaf rows keep self-weight 1 - 1/n.
	if g.MixWeights(0) != nil {
		t.Fatalf("hub row should be uniform")
	}
	if w := g.Weight(0, 3); math.Abs(w-1.0/float64(n)) > 1e-15 {
		t.Fatalf("hub edge weight %v, want 1/%d", w, n)
	}
	if w := g.Weight(3, 3); math.Abs(w-(1-1.0/float64(n))) > 1e-15 {
		t.Fatalf("leaf self-weight %v, want 1-1/%d", w, n)
	}
	if g.MixWeights(3) == nil {
		t.Fatalf("leaf row should be weighted (non-uniform)")
	}
}

func TestSpectralGapKnownValues(t *testing.T) {
	// Complete graph: W = ones/n, lambda_2 = 0, gap = 1.
	if gap := Complete(8).SpectralGap(); math.Abs(gap-1) > 1e-6 {
		t.Fatalf("complete gap %v, want 1", gap)
	}
	// Ring eigenvalues are (1 + 2cos(2 pi k / n))/3; the second-largest
	// modulus is at k = 1.
	for _, n := range []int{4, 8, 16} {
		want := 1 - (1+2*math.Cos(2*math.Pi/float64(n)))/3
		if gap := Ring(n).SpectralGap(); math.Abs(gap-want) > 1e-6 {
			t.Fatalf("ring(%d) gap %v, want %v", n, gap, want)
		}
	}
	// Torus 4x4: W = (I + A)/5 with A the C4 x C4 adjacency; eigenvalues
	// (1 + 2cos(pi a/2) + 2cos(pi b/2))/5, second-largest modulus 3/5.
	if gap := Torus(4, 4).SpectralGap(); math.Abs(gap-0.4) > 1e-6 {
		t.Fatalf("torus 4x4 gap %v, want 0.4", gap)
	}
	// Ordering sanity: denser/better-connected graphs mix faster.
	ring, torus, exp := Ring(16).SpectralGap(), Torus(4, 4).SpectralGap(), Expander(16).SpectralGap()
	if !(torus > ring) || !(exp > ring) {
		t.Fatalf("gap ordering ring=%v torus=%v expander=%v (want torus,expander > ring)", ring, torus, exp)
	}
	// Star: consensus bottlenecked by the hub, gap well below the torus.
	if star := Star(16).SpectralGap(); !(star < torus) {
		t.Fatalf("star gap %v not below torus %v", star, torus)
	}
}

func TestRandomRegularSeeded(t *testing.T) {
	a, err := RandomRegular(16, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomRegular(16, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if len(a.Neighbors(i)) != 4 {
			t.Fatalf("node %d degree %d, want 4", i, len(a.Neighbors(i)))
		}
		an, bn := a.Neighbors(i), b.Neighbors(i)
		for k := range an {
			if an[k] != bn[k] {
				t.Fatalf("seed 7 not reproducible at node %d: %v vs %v", i, an, bn)
			}
		}
	}
	if _, err := RandomRegular(5, 3, 1); err == nil {
		t.Fatal("odd n*d accepted")
	}
	if _, err := RandomRegular(4, 4, 1); err == nil {
		t.Fatal("degree >= n accepted")
	}
}

func TestParseSpecGrammar(t *testing.T) {
	good := []string{"ring", "star", "complete", "expander", "torus:4x4",
		"regular:4", "regular:4@7", "varying:ring,star", "varying:ring,torus:4x4@B=5",
		"varying:ring,regular:4@7@B=2"}
	for _, s := range good {
		sp, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
		if sp.String() != s {
			t.Fatalf("ParseSpec(%q).String() = %q", s, sp.String())
		}
	}
	bad := []string{"", "mesh", "torus:4", "torus:0x4", "torus:axb", "regular:0",
		"regular:4@x", "varying:ring", "varying:ring,varying:star,ring",
		"varying:ring,star@B=0", "varying:ring,mesh"}
	for _, s := range bad {
		if _, err := ParseSpec(s); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", s)
		}
	}
}

func TestSpecBuild(t *testing.T) {
	seq, err := mustParse(t, "torus:4x4").Build(16)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Varying() || seq.N() != 16 || seq.Graph(0).MaxDegree() != 4 {
		t.Fatalf("torus build: varying=%v n=%d deg=%d", seq.Varying(), seq.N(), seq.Graph(0).MaxDegree())
	}
	if _, err := mustParse(t, "torus:4x4").Build(8); err == nil {
		t.Fatal("torus:4x4 accepted m=8")
	}
	vs, err := mustParse(t, "varying:ring,star@B=3").Build(6)
	if err != nil {
		t.Fatal(err)
	}
	if !vs.Varying() || vs.Len() != 2 {
		t.Fatalf("varying build: varying=%v len=%d", vs.Varying(), vs.Len())
	}
	// B=3 hold: syncs 0-2 on the ring, 3-5 on the star, then cycling.
	for sync, want := range []string{"ring", "ring", "ring", "star", "star", "star", "ring"} {
		if got := vs.At(sync).Name(); got != want {
			t.Fatalf("At(%d) = %s, want %s", sync, got, want)
		}
	}
}

func mustParse(t *testing.T, s string) *Spec {
	t.Helper()
	sp, err := ParseSpec(s)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", s, err)
	}
	return sp
}

func TestAdaptiveGamma(t *testing.T) {
	if g := AdaptiveGamma(1); g != 1 {
		t.Fatalf("gamma(1) = %v", g)
	}
	if g := AdaptiveGamma(0.25); math.Abs(g-0.5) > 1e-15 {
		t.Fatalf("gamma(0.25) = %v, want 0.5", g)
	}
	if g := AdaptiveGamma(0); g != 0.05 {
		t.Fatalf("gamma(0) = %v, want floor 0.05", g)
	}
	if g := AdaptiveGamma(math.NaN()); g != 0.05 {
		t.Fatalf("gamma(NaN) = %v, want floor 0.05", g)
	}
}

func TestSequenceValidation(t *testing.T) {
	if _, err := NewSequence(1); err == nil {
		t.Fatal("empty sequence accepted")
	}
	if _, err := NewSequence(0, Ring(4)); err == nil {
		t.Fatal("hold 0 accepted")
	}
	if _, err := NewSequence(1, Ring(4), Ring(5)); err == nil {
		t.Fatal("mixed node counts accepted")
	}
	if seq, err := NewSequence(2, Ring(6), Star(6)); err != nil || seq.N() != 6 {
		t.Fatalf("valid sequence rejected: %v", err)
	}
}
