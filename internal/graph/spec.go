package graph

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Sequence is a (possibly time-varying) schedule of mixing graphs: graph
// k is active for Hold consecutive synchronizations, cycling. A static
// topology is the one-graph sequence. Time-varying analyses require
// B-connectivity — the union of any B consecutive graphs connected; since
// every constructor here produces connected graphs, each sync's graph
// already is, and NewSequence additionally validates the union so a future
// disconnected-per-round constructor cannot slip through.
type Sequence struct {
	graphs []*Graph
	hold   int
	name   string
}

// Static wraps a single graph as a one-element sequence.
func Static(g *Graph) *Sequence {
	return &Sequence{graphs: []*Graph{g}, hold: 1, name: g.Name()}
}

// NewSequence builds a cyclic schedule holding each graph for hold
// consecutive synchronizations. All graphs must share a node count and
// their union must be connected.
func NewSequence(hold int, graphs ...*Graph) (*Sequence, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("graph: empty sequence")
	}
	if hold < 1 {
		return nil, fmt.Errorf("graph: sequence hold %d (want >= 1)", hold)
	}
	n := graphs[0].N()
	names := make([]string, len(graphs))
	adjs := make([][][]int, len(graphs))
	for i, g := range graphs {
		if g.N() != n {
			return nil, fmt.Errorf("graph: sequence mixes %d and %d nodes", n, g.N())
		}
		names[i] = g.Name()
		adjs[i] = g.adj
	}
	if !connected(n, adjs...) {
		return nil, fmt.Errorf("graph: sequence union is not connected")
	}
	return &Sequence{
		graphs: graphs,
		hold:   hold,
		name:   fmt.Sprintf("varying:%s@B=%d", strings.Join(names, ","), hold),
	}, nil
}

// N returns the shared node count.
func (s *Sequence) N() int { return s.graphs[0].N() }

// Len returns the number of distinct graphs in the cycle.
func (s *Sequence) Len() int { return len(s.graphs) }

// Varying reports whether the active graph ever changes.
func (s *Sequence) Varying() bool { return len(s.graphs) > 1 }

// Name returns the sequence's spec syntax.
func (s *Sequence) Name() string { return s.name }

// Index returns the cycle position active at the given synchronization
// count (0-based).
func (s *Sequence) Index(sync int) int {
	if len(s.graphs) == 1 {
		return 0
	}
	return (sync / s.hold) % len(s.graphs)
}

// At returns the graph active at the given synchronization count.
func (s *Sequence) At(sync int) *Graph { return s.graphs[s.Index(sync)] }

// Graph returns the graph at cycle position idx.
func (s *Sequence) Graph(idx int) *Graph { return s.graphs[idx] }

// SpecForms enumerates the spec grammar for error messages and usage text.
const SpecForms = "ring|star|complete|expander|torus:RxC|regular:D[@SEED]|varying:SPEC,SPEC,...[@B=N]"

// Spec is a parsed, not-yet-instantiated topology description: the node
// count is bound later (Build), so one flag value can describe a family —
// "ring" works at any m, while "torus:4x4" pins m = 16 and Build rejects a
// mismatch. A Spec is immutable after parsing and safe to share.
type Spec struct {
	raw    string
	kind   string // ring|star|complete|expander|torus|regular|varying
	rows   int    // torus
	cols   int    // torus
	degree int    // regular
	seed   uint64 // regular
	parts  []*Spec
	hold   int // varying: syncs each part stays active
}

// Kind returns the spec's constructor name.
func (sp *Spec) Kind() string { return sp.kind }

// String returns the original spec syntax.
func (sp *Spec) String() string { return sp.raw }

// ParseSpec parses the graph-spec grammar (SpecForms):
//
//	ring                 the n-cycle (the legacy gossip topology)
//	star                 hub-and-leaves, hub = node 0
//	complete             fully connected (gossip == exact full averaging)
//	expander             circulant with +-1 and +-floor(sqrt(n)) chords
//	torus:RxC            R x C wraparound grid; pins m = R*C
//	regular:D[@SEED]     seeded random simple D-regular graph (default seed 1)
//	varying:...[@B=N]    cyclic time-varying sequence of comma-separated
//	                     specs, each held for N syncs (default 1)
func ParseSpec(s string) (*Spec, error) {
	switch s {
	case "ring", "star", "complete", "expander":
		return &Spec{raw: s, kind: s}, nil
	}
	if rest, ok := strings.CutPrefix(s, "torus:"); ok {
		rs, cs, ok := strings.Cut(rest, "x")
		if !ok {
			return nil, fmt.Errorf("graph: torus spec %q needs ROWSxCOLS", s)
		}
		rows, err1 := strconv.Atoi(rs)
		cols, err2 := strconv.Atoi(cs)
		if err1 != nil || err2 != nil || rows < 1 || cols < 1 {
			return nil, fmt.Errorf("graph: torus spec %q needs positive ROWSxCOLS", s)
		}
		return &Spec{raw: s, kind: "torus", rows: rows, cols: cols}, nil
	}
	if rest, ok := strings.CutPrefix(s, "regular:"); ok {
		ds, seeds, hasSeed := strings.Cut(rest, "@")
		d, err := strconv.Atoi(ds)
		if err != nil || d < 1 {
			return nil, fmt.Errorf("graph: regular spec %q needs a positive degree", s)
		}
		seed := uint64(1)
		if hasSeed {
			seed, err = strconv.ParseUint(seeds, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: regular spec %q has a bad seed: %v", s, err)
			}
		}
		return &Spec{raw: s, kind: "regular", degree: d, seed: seed}, nil
	}
	if rest, ok := strings.CutPrefix(s, "varying:"); ok {
		hold := 1
		// The hold suffix is cut at the LAST "@B=", so inner seeds
		// ("regular:4@7") pass through untouched.
		if at := strings.LastIndex(rest, "@B="); at >= 0 {
			h, err := strconv.Atoi(rest[at+len("@B="):])
			if err != nil || h < 1 {
				return nil, fmt.Errorf("graph: varying spec %q needs a positive @B=N hold", s)
			}
			hold = h
			rest = rest[:at]
		}
		var parts []*Spec
		for _, ps := range strings.Split(rest, ",") {
			ps = strings.TrimSpace(ps)
			if strings.HasPrefix(ps, "varying:") {
				return nil, fmt.Errorf("graph: varying spec %q nests varying", s)
			}
			p, err := ParseSpec(ps)
			if err != nil {
				return nil, fmt.Errorf("graph: varying spec %q: %v", s, err)
			}
			parts = append(parts, p)
		}
		if len(parts) < 2 {
			return nil, fmt.Errorf("graph: varying spec %q needs at least two comma-separated parts", s)
		}
		return &Spec{raw: s, kind: "varying", parts: parts, hold: hold}, nil
	}
	return nil, fmt.Errorf("graph: unknown graph spec %q (want %s)", s, SpecForms)
}

// Build instantiates the spec for m nodes, returning the (possibly static)
// sequence of mixing graphs. Specs that pin a node count (torus) reject a
// mismatched m.
func (sp *Spec) Build(m int) (*Sequence, error) {
	if m < 1 {
		return nil, fmt.Errorf("graph: spec %q needs at least one node, got %d", sp.raw, m)
	}
	switch sp.kind {
	case "ring":
		return Static(Ring(m)), nil
	case "star":
		return Static(Star(m)), nil
	case "complete":
		return Static(Complete(m)), nil
	case "expander":
		return Static(Expander(m)), nil
	case "torus":
		if sp.rows*sp.cols != m {
			return nil, fmt.Errorf("graph: spec %q pins %d nodes, cluster has %d", sp.raw, sp.rows*sp.cols, m)
		}
		return Static(Torus(sp.rows, sp.cols)), nil
	case "regular":
		g, err := RandomRegular(m, sp.degree, sp.seed)
		if err != nil {
			return nil, err
		}
		return Static(g), nil
	case "varying":
		graphs := make([]*Graph, len(sp.parts))
		for i, p := range sp.parts {
			seq, err := p.Build(m)
			if err != nil {
				return nil, err
			}
			graphs[i] = seq.Graph(0)
		}
		return NewSequence(sp.hold, graphs...)
	}
	return nil, fmt.Errorf("graph: unknown spec kind %q", sp.kind)
}

// AdaptiveGamma maps a measured spectral gap to a CHOCO consensus step:
// gamma = sqrt(delta) clamped to [0.05, 1]. The sqrt mirrors AdaComm's
// tau* ~ sqrt(D) shape — well-connected graphs (delta near 1) can afford
// full-strength consensus, while a near-disconnected topology damps the
// step so compressed estimate noise cannot be amplified around a slow-
// mixing cycle. The floor keeps gamma usable even on the star's O(1/n)
// gap.
func AdaptiveGamma(gap float64) float64 {
	if math.IsNaN(gap) || gap < 0 {
		gap = 0
	}
	gamma := math.Sqrt(gap)
	if gamma < 0.05 {
		gamma = 0.05
	}
	if gamma > 1 {
		gamma = 1
	}
	return gamma
}
