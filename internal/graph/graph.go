// Package graph is the mixing-topology layer of the decentralized engine: a
// Graph couples an undirected communication graph over n nodes with the
// doubly stochastic mixing matrix W that gossip averaging applies at each
// synchronization. The contract every Graph satisfies (checked at
// construction) is the standard one of decentralized-SGD analyses (Lian et
// al. 2017; Koloskova et al. 2019):
//
//   - W is symmetric:            W_ij == W_ji
//   - W is doubly stochastic:    every row and column sums to 1
//   - self-weights are positive: W_ii > 0
//   - the graph is connected (a Sequence only requires the UNION of its
//     graphs to be connected — the B-connectivity of time-varying analyses)
//
// Weights are Metropolis-Hastings, W_ij = 1/(1 + max(deg_i, deg_j)), which
// is symmetric and doubly stochastic for ANY simple graph and reduces to the
// uniform 1/(deg+1) neighborhood average on regular graphs — on the ring,
// exactly the (x_prev + x_self + x_next)/3 mix the engine has always used.
//
// Each row carries an explicit accumulation order (MixOrder) and a uniform
// flag (MixWeights returning nil): a uniform row must be mixed by summing
// the ordered values and dividing once by the count, NOT by accumulating
// w*x terms — (prev+self+next)/3 and 1/3*prev + 1/3*self + 1/3*next round
// differently, and the engine's bit-identity goldens pin the former. The
// ring constructor orders its rows [prev, self, next] for the same reason.
//
// The convergence rate of gossip averaging is governed by the spectral gap
// delta = 1 - lambda_2(W) (the second-largest eigenvalue modulus):
// consensus contracts by a factor (1 - delta) per round. SpectralGap
// estimates it by power iteration on W deflated against the all-ones
// eigenvector, and the cluster engine can adapt its CHOCO consensus step to
// it (gamma = sqrt(delta), clamped — see cluster.Config.AdaptGossipGamma).
package graph

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// Graph is an undirected mixing topology over n nodes. It is immutable
// after construction and therefore safe to share across goroutines.
type Graph struct {
	n    int
	name string
	adj  [][]int     // adj[i]: neighbor ids, constructor-fixed order
	mix  [][]int     // mix[i]: adj[i] plus i, in the row's accumulation order
	w    [][]float64 // w[i][k]: weight of mix[i][k]; nil row = uniform 1/len
	gap  float64     // 1 - lambda_2(W), estimated at construction
}

// N returns the node count.
func (g *Graph) N() int { return g.n }

// Name returns the constructor-assigned name (the spec syntax that builds
// this graph, e.g. "torus:4x4").
func (g *Graph) Name() string { return g.name }

// Neighbors returns node i's neighbor ids. The slice is graph-owned and
// must not be mutated.
func (g *Graph) Neighbors(i int) []int { return g.adj[i] }

// Degree returns node i's neighbor count.
func (g *Graph) Degree(i int) int { return len(g.adj[i]) }

// MaxDegree returns the largest node degree.
func (g *Graph) MaxDegree() int {
	mx := 0
	for _, a := range g.adj {
		if len(a) > mx {
			mx = len(a)
		}
	}
	return mx
}

// Adjacency returns the full neighbor table, indexed by node. It is
// graph-owned and must not be mutated; the delay model's per-edge round
// pricing consumes it directly (delaymodel.SampleDEdgeScheduleInto).
func (g *Graph) Adjacency() [][]int { return g.adj }

// MixOrder returns the nodes of row i's mix — i's neighborhood including i
// itself — in the exact order a mixer must accumulate them. The order is
// part of the bit-identity contract: the ring orders rows [prev, self,
// next], reproducing the legacy gossip arithmetic bit for bit.
func (g *Graph) MixOrder(i int) []int { return g.mix[i] }

// MixWeights returns the weight of each MixOrder(i) entry, or nil for a
// uniform row. A nil row MUST be mixed as (sum of ordered values)/count —
// one division, not per-term 1/k multiplies — which is both one rounding
// step more accurate and the legacy ring arithmetic.
func (g *Graph) MixWeights(i int) []float64 { return g.w[i] }

// Weight returns W_ij (including j == i). Zero for non-edges.
func (g *Graph) Weight(i, j int) float64 {
	for k, o := range g.mix[i] {
		if o == j {
			if g.w[i] == nil {
				return 1 / float64(len(g.mix[i]))
			}
			return g.w[i][k]
		}
	}
	return 0
}

// SpectralGap returns 1 - lambda_2(W), where lambda_2 is the second-largest
// eigenvalue modulus of the mixing matrix. It is estimated once at
// construction by power iteration on W - (1/n)*ones, so the call is free.
func (g *Graph) SpectralGap() float64 { return g.gap }

// String implements fmt.Stringer.
func (g *Graph) String() string { return fmt.Sprintf("%s[n=%d]", g.name, g.n) }

// build assembles a Graph from an adjacency table, computing
// Metropolis-Hastings weights, per-row uniformity, mix orders, and the
// spectral gap. mixOrder may be nil (rows default to ascending node ids
// with self in sorted position); constructors with a legacy accumulation
// order (the ring) pass it explicitly. The adjacency must describe a simple
// symmetric graph — a violation is a constructor bug and panics.
func build(name string, adj [][]int, mixOrder [][]int) *Graph {
	n := len(adj)
	g := &Graph{n: n, name: name, adj: adj}
	checkSimpleSymmetric(name, adj)
	g.mix = mixOrder
	if g.mix == nil {
		g.mix = make([][]int, n)
		for i, a := range adj {
			row := make([]int, 0, len(a)+1)
			row = append(row, a...)
			row = append(row, i)
			sort.Ints(row)
			g.mix[i] = row
		}
	}
	g.w = make([][]float64, n)
	for i, a := range adj {
		di := len(a)
		uniform := true
		for _, j := range a {
			if len(adj[j]) > di {
				uniform = false
				break
			}
		}
		if uniform {
			continue // w[i] stays nil: 1/(di+1) per entry, summed then divided
		}
		row := make([]float64, len(g.mix[i]))
		selfW := 1.0
		for k, o := range g.mix[i] {
			if o == i {
				continue
			}
			dj := len(adj[o])
			mx := di
			if dj > mx {
				mx = dj
			}
			row[k] = 1 / float64(1+mx)
			selfW -= row[k]
		}
		for k, o := range g.mix[i] {
			if o == i {
				row[k] = selfW
			}
		}
		g.w[i] = row
	}
	g.gap = spectralGap(g)
	return g
}

// Subgraph returns the induced subgraph on the active node set: edges
// between two active nodes survive in the parent's order, every inactive
// node is isolated — degree 0, whose exact-identity mixing semantics the
// gossip engines already honor — and node indices are PRESERVED, so
// replica arrays and delay-model tables need no remapping. Mix orders are
// the parent's rows filtered to the active members, keeping survivor
// arithmetic as close to the parent's accumulation order as the
// membership change allows; Metropolis weights are re-derived for the new
// degrees.
//
// The spectral gap is estimated over the ACTIVE block only: isolated
// nodes contribute identity rows whose eigenvalue 1 would otherwise pin
// lambda_2 and report a closed gap for a subgraph that mixes perfectly
// well among survivors. A disconnected induced subgraph is legal (gossip
// mixes within components); its active-block gap is then near 0, which
// AdaptiveGamma maps to the damped floor.
func (g *Graph) Subgraph(active []bool) *Graph {
	if len(active) != g.n {
		panic(fmt.Sprintf("graph: %s active mask covers %d of %d nodes", g.name, len(active), g.n))
	}
	nActive := 0
	for _, up := range active {
		if up {
			nActive++
		}
	}
	adj := make([][]int, g.n)
	mix := make([][]int, g.n)
	for i := range adj {
		if !active[i] {
			mix[i] = []int{i}
			continue
		}
		row := make([]int, 0, len(g.adj[i]))
		for _, j := range g.adj[i] {
			if active[j] {
				row = append(row, j)
			}
		}
		adj[i] = row
		mrow := make([]int, 0, len(g.mix[i]))
		for _, o := range g.mix[i] {
			if o == i || active[o] {
				mrow = append(mrow, o)
			}
		}
		mix[i] = mrow
	}
	sub := build(fmt.Sprintf("%s/active=%d", g.name, nActive), adj, mix)
	sub.gap = activeBlockGap(adj, active, nActive)
	return sub
}

// activeBlockGap estimates the spectral gap of the mixing matrix
// restricted to the active nodes, by compacting them into a standalone
// graph (indices renumbered 0..nActive-1) and reusing the construction
// estimator. Degenerate blocks (zero or one node) mix trivially: gap 1.
func activeBlockGap(adj [][]int, active []bool, nActive int) float64 {
	if nActive <= 1 {
		return 1
	}
	idx := make([]int, len(adj))
	k := 0
	for i, up := range active {
		if up {
			idx[i] = k
			k++
		}
	}
	cadj := make([][]int, 0, nActive)
	for i, up := range active {
		if !up {
			continue
		}
		row := make([]int, 0, len(adj[i]))
		for _, j := range adj[i] {
			row = append(row, idx[j])
		}
		cadj = append(cadj, row)
	}
	return build("active-block", cadj, nil).gap
}

// checkSimpleSymmetric panics if the adjacency is not a simple undirected
// graph: self-loops, duplicate neighbors, out-of-range ids, or asymmetric
// edges are constructor bugs, not runtime conditions.
func checkSimpleSymmetric(name string, adj [][]int) {
	n := len(adj)
	for i, a := range adj {
		seen := make(map[int]bool, len(a))
		for _, j := range a {
			if j < 0 || j >= n {
				panic(fmt.Sprintf("graph: %s node %d neighbor %d out of [0,%d)", name, i, j, n))
			}
			if j == i {
				panic(fmt.Sprintf("graph: %s node %d has a self-loop", name, i))
			}
			if seen[j] {
				panic(fmt.Sprintf("graph: %s node %d lists neighbor %d twice", name, i, j))
			}
			seen[j] = true
			back := false
			for _, k := range adj[j] {
				if k == i {
					back = true
					break
				}
			}
			if !back {
				panic(fmt.Sprintf("graph: %s edge (%d,%d) is not symmetric", name, i, j))
			}
		}
	}
}

// connected reports whether the union of the given adjacency tables (all
// over the same node set) is connected.
func connected(n int, adjs ...[][]int) bool {
	if n <= 1 {
		return true
	}
	seen := make([]bool, n)
	queue := []int{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for _, adj := range adjs {
			for _, j := range adj[i] {
				if !seen[j] {
					seen[j] = true
					count++
					queue = append(queue, j)
				}
			}
		}
	}
	return count == n
}

// Connected reports whether the graph is connected. Every constructor in
// this package only produces connected graphs; the check is exported for
// tests and for Sequence's union validation.
func (g *Graph) Connected() bool { return connected(g.n, g.adj) }

// spectralGap estimates 1 - lambda_2(W) by power iteration on the deflated
// operator M = W - (1/n)*ones: W's dominant eigenpair (1, ones) is removed,
// so the iteration converges to the second-largest eigenvalue MODULUS of W.
// The start vector is a fixed seeded draw, making the estimate a pure
// function of the graph.
func spectralGap(g *Graph) float64 {
	n := g.n
	if n <= 1 {
		return 1
	}
	r := rng.New(0x5bd1e995 ^ uint64(n))
	v := make([]float64, n)
	y := make([]float64, n)
	for i := range v {
		v[i] = r.Float64() - 0.5
	}
	deflate(v)
	if !normalize(v) {
		return 1
	}
	lam := 0.0
	for it := 0; it < 4000; it++ {
		// y = W v, using the same row accumulation the mixer applies.
		for i := 0; i < n; i++ {
			s := 0.0
			if w := g.w[i]; w == nil {
				for _, o := range g.mix[i] {
					s += v[o]
				}
				s /= float64(len(g.mix[i]))
			} else {
				for k, o := range g.mix[i] {
					s += w[k] * v[o]
				}
			}
			y[i] = s
		}
		deflate(y)
		norm := 0.0
		for _, x := range y {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm < 1e-15 {
			return 1 // M annihilated v: lambda_2 is (numerically) zero
		}
		for i := range y {
			v[i] = y[i] / norm
		}
		if math.Abs(norm-lam) < 1e-13 {
			lam = norm
			break
		}
		lam = norm
	}
	gap := 1 - lam
	if gap < 0 {
		gap = 0
	}
	if gap > 1 {
		gap = 1
	}
	return gap
}

func deflate(v []float64) {
	mean := 0.0
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	for i := range v {
		v[i] -= mean
	}
}

func normalize(v []float64) bool {
	norm := 0.0
	for _, x := range v {
		norm += x * x
	}
	norm = math.Sqrt(norm)
	if norm < 1e-15 {
		return false
	}
	for i := range v {
		v[i] /= norm
	}
	return true
}

// Ring returns the n-cycle with the legacy gossip mix: row order
// [prev, self, next] (m >= 3), [self, other] (m = 2), identity (m = 1).
// Driving the engine with Ring(m) is bit-identical to its built-in ring
// path — the safety net the goldens pin.
func Ring(n int) *Graph {
	if n < 1 {
		panic("graph: ring needs at least one node")
	}
	adj := make([][]int, n)
	mix := make([][]int, n)
	for i := 0; i < n; i++ {
		switch {
		case n == 1:
			mix[i] = []int{i}
		case n == 2:
			adj[i] = []int{1 - i}
			mix[i] = []int{i, 1 - i}
		default:
			prev, next := (i-1+n)%n, (i+1)%n
			adj[i] = []int{prev, next}
			mix[i] = []int{prev, i, next}
		}
	}
	return build("ring", adj, mix)
}

// Complete returns the fully connected graph: uniform 1/n weights, so one
// gossip round IS the exact full average (the engine's densest baseline).
func Complete(n int) *Graph {
	if n < 1 {
		panic("graph: complete needs at least one node")
	}
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		row := make([]int, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				row = append(row, j)
			}
		}
		adj[i] = row
	}
	return build("complete", adj, nil)
}

// Star returns the hub-and-leaves graph (hub = node 0). It is the one
// shipped constructor with non-uniform Metropolis rows: leaves keep
// self-weight 1 - 1/n, so consensus is slow — the spectral-gap worst case
// the ablation contrasts against.
func Star(n int) *Graph {
	if n < 1 {
		panic("graph: star needs at least one node")
	}
	adj := make([][]int, n)
	hub := make([]int, 0, n-1)
	for i := 1; i < n; i++ {
		adj[i] = []int{0}
		hub = append(hub, i)
	}
	adj[0] = hub
	return build("star", adj, nil)
}

// Torus returns the rows x cols wraparound grid. Wraparound neighbors that
// coincide (a 1- or 2-wide dimension) are deduplicated, so Torus(1, n) is
// the n-cycle and Torus(2, 2) the 4-cycle; for rows, cols >= 3 every node
// has degree 4 and uniform weight 1/5.
func Torus(rows, cols int) *Graph {
	if rows < 1 || cols < 1 {
		panic("graph: torus needs positive dimensions")
	}
	n := rows * cols
	adj := make([][]int, n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			i := r*cols + c
			cand := []int{
				((r-1+rows)%rows)*cols + c,
				((r+1)%rows)*cols + c,
				r*cols + (c-1+cols)%cols,
				r*cols + (c+1)%cols,
			}
			sort.Ints(cand)
			row := make([]int, 0, 4)
			for _, j := range cand {
				if j == i {
					continue
				}
				if len(row) > 0 && row[len(row)-1] == j {
					continue
				}
				row = append(row, j)
			}
			adj[i] = row
		}
	}
	return build(fmt.Sprintf("torus:%dx%d", rows, cols), adj, nil)
}

// Expander returns a degree-<=4 circulant expander: node i connects to
// i +- 1 and i +- k (mod n) with k = max(2, floor(sqrt(n))). The +-1
// offsets keep it connected at every n; the long chords give it a spectral
// gap far better than the ring's O(1/n^2) at the same sparsity.
func Expander(n int) *Graph {
	if n < 1 {
		panic("graph: expander needs at least one node")
	}
	k := int(math.Sqrt(float64(n)))
	if k < 2 {
		k = 2
	}
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		cand := []int{(i - 1 + n) % n, (i + 1) % n, (i - k%n + n) % n, (i + k) % n}
		sort.Ints(cand)
		row := make([]int, 0, 4)
		for _, j := range cand {
			if j == i {
				continue
			}
			if len(row) > 0 && row[len(row)-1] == j {
				continue
			}
			row = append(row, j)
		}
		adj[i] = row
	}
	return build("expander", adj, nil)
}

// RandomRegular returns a uniformly random simple d-regular graph on n
// nodes via the configuration (pairing) model, seeded: d copies of every
// node are shuffled and paired, and pairings with self-loops or duplicate
// edges are rejected and redrawn. Requires 1 <= d < n and even n*d. The
// draw retries until the graph is also connected, so the result always
// satisfies the mixing contract; the sampled topology is a pure function
// of (n, d, seed).
func RandomRegular(n, d int, seed uint64) (*Graph, error) {
	if n < 2 || d < 1 || d >= n {
		return nil, fmt.Errorf("graph: random-regular needs 1 <= degree < nodes, got degree %d on %d nodes", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: random-regular needs even n*d, got %d*%d", n, d)
	}
	r := rng.New(seed)
	stubs := make([]int, n*d)
	for attempt := 0; attempt < 1000; attempt++ {
		for i := range stubs {
			stubs[i] = i / d
		}
		r.ShuffleInts(stubs)
		adj := make([][]int, n)
		ok := true
	pairing:
		for p := 0; p < len(stubs); p += 2 {
			a, b := stubs[p], stubs[p+1]
			if a == b {
				ok = false
				break
			}
			for _, j := range adj[a] {
				if j == b {
					ok = false
					break pairing
				}
			}
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], a)
		}
		if !ok || !connected(n, adj) {
			continue
		}
		for i := range adj {
			sort.Ints(adj[i])
		}
		return build(fmt.Sprintf("regular:%d@%d", d, seed), adj, nil), nil
	}
	return nil, fmt.Errorf("graph: no connected simple %d-regular graph on %d nodes after 1000 draws (seed %d)", d, n, seed)
}
