package opt

import (
	"math"
	"testing"
)

func TestParse(t *testing.T) {
	cases := []struct {
		spec string
		want Config
	}{
		{"", Config{}},
		{"sgd", Config{}},
		{"momentum:0.9", Config{Rule: RuleMomentum, Momentum: 0.9}},
		{"nesterov:0.5", Config{Rule: RuleNesterov, Momentum: 0.5}},
		{"adam", Config{Rule: RuleAdam}},
		{"adam:0.8", Config{Rule: RuleAdam, Momentum: 0.8}},
		{"adam:0.8,0.95", Config{Rule: RuleAdam, Momentum: 0.8, Beta2: 0.95}},
		{"adamw:0.9,0.99", Config{Rule: RuleAdamW, Momentum: 0.9, Beta2: 0.99}},
		{"adam+synced", Config{Rule: RuleAdam, SyncedMoments: true}},
		{"adam:0.8,0.95+synced", Config{Rule: RuleAdam, Momentum: 0.8, Beta2: 0.95, SyncedMoments: true}},
	}
	for _, tc := range cases {
		got, err := Parse(tc.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.spec, err)
			continue
		}
		if got != tc.want {
			t.Errorf("Parse(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
	bad := []string{"sgd:0.9", "momentum", "momentum:x", "momentum:1.5", "nesterov",
		"adam:0.9,0.99,0.5", "adam:x", "rmsprop", "sgd+synced", "momentum:0.9+synced"}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): want error", spec)
		}
	}
}

func TestConfigString(t *testing.T) {
	for _, spec := range []string{"sgd", "momentum:0.9", "nesterov:0.5", "adam:0.8,0.95+synced"} {
		c, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if got := c.String(); got != spec {
			t.Errorf("Parse(%q).String() = %q", spec, got)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config: %v", err)
	}
	bad := []Config{
		{Rule: Rule(99)},
		{Momentum: -0.1},
		{Momentum: 1},
		{Rule: RuleAdam, Beta2: 1},
		{Rule: RuleAdam, Eps: -1},
		{Rule: RuleMomentum},
		{SyncedMoments: true},
		{Rule: RuleMomentum, Momentum: 0.9, SyncedMoments: true},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d (%+v): want error", i, c)
		}
	}
}

// legacyStep is the exact update loop of the pre-refactor internal/sgd
// Optimizer, kept here as the bit-identity oracle for plain and heavy-ball
// steps.
func legacyStep(params, grad, buf []float64, lr, mu, wd float64) {
	for i := range params {
		g := grad[i] + wd*params[i]
		if mu != 0 {
			buf[i] = mu*buf[i] + g
			g = buf[i]
		}
		params[i] -= lr * g
	}
}

func TestPlainAndMomentumMatchLegacyBitForBit(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"plain", Config{LR: 0.05}},
		{"plain+wd", Config{LR: 0.05, WeightDecay: 0.01}},
		{"momentum", Config{Rule: RuleMomentum, LR: 0.05, Momentum: 0.9, WeightDecay: 0.003}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := []float64{0.3, -1.2, 2.5, 0}
			q := append([]float64(nil), p...)
			buf := make([]float64, len(p))
			o := New(tc.cfg, len(p))
			for s := 0; s < 7; s++ {
				grad := []float64{0.1 * float64(s), -0.2, 0.33, 1.7 - float64(s)}
				o.Step(p, grad)
				legacyStep(q, grad, buf, tc.cfg.LR, tc.cfg.Momentum, tc.cfg.WeightDecay)
			}
			for i := range p {
				if p[i] != q[i] {
					t.Fatalf("param %d: %v != legacy %v", i, p[i], q[i])
				}
			}
		})
	}
}

func TestNesterovStepMath(t *testing.T) {
	lr, mu := 0.1, 0.9
	o := New(Config{Rule: RuleNesterov, LR: lr, Momentum: mu}, 1)
	p := []float64{1.0}
	g := []float64{0.5}
	// Step 1: buf = g; update = lr*(g + mu*g) = lr*g*(1+mu).
	o.Step(p, g)
	want := 1.0 - lr*(0.5+mu*0.5)
	if math.Abs(p[0]-want) > 1e-15 {
		t.Fatalf("step1: %v want %v", p[0], want)
	}
	// Step 2: buf = mu*g0 + g1; update = lr*(g1 + mu*buf).
	g2 := []float64{0.25}
	buf := mu*0.5 + 0.25
	o.Step(p, g2)
	want -= lr * (0.25 + mu*buf)
	if math.Abs(p[0]-want) > 1e-15 {
		t.Fatalf("step2: %v want %v", p[0], want)
	}
}

func TestAdamStepMath(t *testing.T) {
	lr, b1, b2, eps := 0.01, 0.9, 0.999, 1e-8
	o := New(Config{Rule: RuleAdam, LR: lr}, 2)
	if c := o.Config(); c.Momentum != b1 || c.Beta2 != b2 || c.Eps != eps {
		t.Fatalf("defaults not filled: %+v", c)
	}
	p := []float64{1.0, -2.0}
	g := []float64{0.3, -0.7}
	// Hand-rolled reference with independent scalar bookkeeping.
	m := make([]float64, 2)
	v := make([]float64, 2)
	want := append([]float64(nil), p...)
	for s := 1; s <= 3; s++ {
		o.Step(p, g)
		bc1 := 1 - math.Pow(b1, float64(s))
		bc2 := 1 - math.Pow(b2, float64(s))
		for i := range want {
			m[i] = b1*m[i] + (1-b1)*g[i]
			v[i] = b2*v[i] + (1-b2)*g[i]*g[i]
			want[i] -= lr * (m[i] / bc1) / (math.Sqrt(v[i]/bc2) + eps)
		}
	}
	for i := range p {
		if p[i] != want[i] {
			t.Fatalf("param %d: %v want %v", i, p[i], want[i])
		}
	}
	// With a constant gradient, the bias-corrected first step is ~lr*sign(g).
	o2 := New(Config{Rule: RuleAdam, LR: lr}, 1)
	p2 := []float64{0}
	o2.Step(p2, []float64{42.0})
	if math.Abs(p2[0]+lr) > 1e-6 {
		t.Fatalf("first adam step %v, want ~ %v", p2[0], -lr)
	}
}

func TestAdamSyncResetKeepsSecondMomentClock(t *testing.T) {
	o := New(Config{Rule: RuleAdam, LR: 0.01}, 1)
	p := []float64{1}
	for s := 0; s < 5; s++ {
		o.Step(p, []float64{0.5})
	}
	if o.Steps() != 5 {
		t.Fatalf("Steps = %d, want 5", o.Steps())
	}
	o.SyncReset()
	st := o.State()
	if st[0].Name != "adam.m" || st[0].Vec[0] != 0 {
		t.Fatalf("first moment not reset: %+v", st[0])
	}
	if st[1].Name != "adam.v" || st[1].Vec[0] == 0 {
		t.Fatalf("second moment should survive SyncReset: %+v", st[1])
	}
	if o.Steps() != 5 {
		t.Fatalf("Steps after SyncReset = %d, want 5", o.Steps())
	}
	// The next step's first-moment bias correction restarts at t=1 while
	// the second moment continues at t=6: reproduce both by hand.
	b1, b2, eps := DefaultBeta1, DefaultBeta2, DefaultEps
	vBefore := st[1].Vec[0]
	pBefore := p[0]
	g := 0.5
	o.Step(p, []float64{g})
	m := (1 - b1) * g
	v := b2*vBefore + (1-b2)*g*g
	want := pBefore - 0.01*(m/(1-b1))/(math.Sqrt(v/(1-math.Pow(b2, 6)))+eps)
	if p[0] != want {
		t.Fatalf("post-reset step %v, want %v", p[0], want)
	}
	o.ResetState()
	if o.Steps() != 0 || st[1].Vec[0] != 0 {
		t.Fatalf("ResetState must zero everything")
	}
	o.AlignSteps(17)
	if o.Steps() != 17 {
		t.Fatalf("AlignSteps: %d", o.Steps())
	}
}

func TestAdamWDecoupledDecay(t *testing.T) {
	// With a zero gradient the adamw update is purely -lr*wd*p; classic
	// adam with wd would move by the normalized decayed gradient instead.
	lr, wd := 0.1, 0.5
	o := New(Config{Rule: RuleAdamW, LR: lr, WeightDecay: wd}, 1)
	p := []float64{2.0}
	o.Step(p, []float64{0})
	want := 2.0 - lr*wd*2.0
	if math.Abs(p[0]-want) > 1e-7 {
		t.Fatalf("adamw zero-grad step %v, want %v", p[0], want)
	}
}

func TestSyncPolicies(t *testing.T) {
	plain := New(Config{}, 3)
	if len(plain.State()) != 0 || HasResetState(plain) || SyncedLen(plain) != 0 {
		t.Fatalf("plain SGD must be stateless")
	}
	mom := New(Config{Rule: RuleMomentum, Momentum: 0.9}, 3)
	if !HasResetState(mom) || SyncedLen(mom) != 0 {
		t.Fatalf("momentum: want reset-only state")
	}
	local := New(Config{Rule: RuleAdam}, 3)
	if !HasResetState(local) || SyncedLen(local) != 0 {
		t.Fatalf("local adam: second moment must be SyncKeep")
	}
	synced := New(Config{Rule: RuleAdam, SyncedMoments: true}, 3)
	if SyncedLen(synced) != 3 {
		t.Fatalf("synced adam: SyncedLen = %d, want 3", SyncedLen(synced))
	}
	vs := SyncedVecs(synced)
	if len(vs) != 1 || len(vs[0]) != 3 {
		t.Fatalf("SyncedVecs: %v", vs)
	}
}

func TestStepDoesNotAllocate(t *testing.T) {
	for _, cfg := range []Config{
		{LR: 0.05},
		{Rule: RuleMomentum, LR: 0.05, Momentum: 0.9},
		{Rule: RuleAdam, LR: 0.01},
	} {
		o := New(cfg, 64)
		p := make([]float64, 64)
		g := make([]float64, 64)
		for i := range g {
			g[i] = float64(i) * 0.01
		}
		allocs := testing.AllocsPerRun(20, func() { o.Step(p, g) })
		if allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", cfg.Rule, allocs)
		}
	}
}

func TestGlobalApplyMatchesLegacyUblock(t *testing.T) {
	beta := 0.3
	g := NewGlobal(beta, 0, 3)
	ublock := make([]float64, 3)
	global := []float64{1, 2, 3}
	legacy := append([]float64(nil), global...)
	for round := 0; round < 4; round++ {
		avg := []float64{0.9 - 0.1*float64(round), 1.8, 3.1}
		// Legacy ublock arithmetic (pre-refactor averageFull).
		for i := range legacy {
			disp := legacy[i] - avg[i]
			ublock[i] = beta*ublock[i] + disp
			legacy[i] -= ublock[i]
		}
		g.Apply(global, avg, global)
		for i := range global {
			if global[i] != legacy[i] {
				t.Fatalf("round %d param %d: %v != legacy %v", round, i, global[i], legacy[i])
			}
		}
	}
}

func TestGlobalRenormalizeAndReset(t *testing.T) {
	g := NewGlobal(0.5, 0.7, 2)
	pre := []float64{1, 1}
	post := []float64{0, 2}
	dst := make([]float64, 2)
	g.Apply(pre, post, dst)
	// u = {1,-1}; dst = pre - 0.7*u.
	alpha := 0.7
	if dst[0] != 1-alpha*1 || dst[1] != 1-alpha*(-1) {
		t.Fatalf("alpha-scaled apply: %v", dst)
	}
	g.Renormalize(0.5)
	if g.Buf()[0] != 0.5 || g.Buf()[1] != -0.5 {
		t.Fatalf("renormalize: %v", g.Buf())
	}
	g.Renormalize(1) // no-op
	if g.Buf()[0] != 0.5 {
		t.Fatalf("factor-1 renormalize must be a no-op")
	}
	g.Reset()
	if g.Buf()[0] != 0 || g.Buf()[1] != 0 {
		t.Fatalf("reset: %v", g.Buf())
	}
}

func TestEffectiveLR(t *testing.T) {
	if got := EffectiveLR(0.1, 0); got != 0.1 {
		t.Fatalf("beta=0 must be exact identity, got %v", got)
	}
	if got := EffectiveLR(0.1, 0.9); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("EffectiveLR(0.1, 0.9) = %v, want 1", got)
	}
}
