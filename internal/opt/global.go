package opt

// Global is the slow/global momentum applied at sync points (BMUF /
// SlowMo; the generalization of the paper's Sec 5.3.2 block momentum from
// FullAveraging to every barrier strategy). It filters the sync-point
// displacement pre-post through a heavy-ball buffer:
//
//	u = beta*u + (pre - post)
//	dst = pre - alpha*u
//
// With alpha = 1 this is bit-identical to the legacy ublock arithmetic
// (1*u == u exactly in IEEE754), so the blockmom golden is pinned through
// this path. The centralized strategies keep one Global on the shared
// reference; gossip strategies keep one per node, filtering each node's
// own mixing displacement.
type Global struct {
	Beta  float64
	Alpha float64
	u     []float64
}

// NewGlobal builds a global-momentum buffer over dim parameters.
// alpha = 0 means 1 (the BMUF/legacy form).
func NewGlobal(beta, alpha float64, dim int) *Global {
	if alpha == 0 {
		alpha = 1
	}
	return &Global{Beta: beta, Alpha: alpha, u: make([]float64, dim)}
}

// Apply folds the displacement pre-post into the buffer and writes the
// filtered post-sync state into dst. dst may alias pre.
func (g *Global) Apply(pre, post, dst []float64) {
	for i := range g.u {
		g.u[i] = g.Beta*g.u[i] + (pre[i] - post[i])
		dst[i] = pre[i] - g.Alpha*g.u[i]
	}
}

// Renormalize scales the buffer — the dynamic-membership correction: on a
// round whose active set changed, the buffered dispersion was accumulated
// over the previous population and must be rescaled to the surviving
// fraction before it is mixed again (factor 1 is a no-op, taken on every
// churn-free round).
func (g *Global) Renormalize(factor float64) {
	if factor == 1 {
		return
	}
	for i := range g.u {
		g.u[i] *= factor
	}
}

// Reset zeroes the buffer.
func (g *Global) Reset() {
	for i := range g.u {
		g.u[i] = 0
	}
}

// Buf exposes the raw buffer (tests and rejoin reconciliation).
func (g *Global) Buf() []float64 { return g.u }
