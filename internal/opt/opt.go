// Package opt is the first-class optimizer layer: the per-worker local
// update rule (plain SGD, heavy-ball and Nesterov momentum, Local
// Adam/AdamW) factored out of the engines behind one interface, plus the
// slow/global momentum applied at sync points (global.go). Every rule owns
// its state as enumerable named vectors with an explicit sync policy, so
// the engines can reset, average, or ship that state over the wire without
// knowing which rule is running: heavy-ball buffers and Adam first moments
// reset at averaging points (the paper's Sec 5.3.1 discipline), while Adam
// second moments are an ablation axis — kept local (the Local Adam default)
// or synced through the averaging wire alongside the parameters
// (SyncAverage), where they ride the same compression, payload accounting,
// and float32 narrowing as the model itself.
//
// The zero-value Config is plain SGD and reproduces the legacy
// internal/sgd update arithmetic bit for bit; engines preallocate all
// state at construction (New takes the dimension) so a warm Step performs
// zero heap allocations.
package opt

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Rule selects the local update rule. The zero value is plain SGD.
type Rule int

const (
	// RulePlain is vanilla SGD: x -= lr * (g + wd*x).
	RulePlain Rule = iota
	// RuleMomentum is heavy-ball momentum (the legacy internal/sgd rule):
	// buf = mu*buf + g; x -= lr*buf.
	RuleMomentum
	// RuleNesterov is Nesterov momentum in the PyTorch formulation:
	// buf = mu*buf + g; x -= lr*(g + mu*buf).
	RuleNesterov
	// RuleAdam is Adam with L2 weight decay folded into the gradient.
	RuleAdam
	// RuleAdamW is Adam with decoupled weight decay.
	RuleAdamW
)

func (r Rule) String() string {
	switch r {
	case RulePlain:
		return "sgd"
	case RuleMomentum:
		return "momentum"
	case RuleNesterov:
		return "nesterov"
	case RuleAdam:
		return "adam"
	case RuleAdamW:
		return "adamw"
	}
	return fmt.Sprintf("rule(%d)", int(r))
}

// Defaults applied by New for the adaptive rules when the field is zero.
const (
	DefaultBeta1 = 0.9
	DefaultBeta2 = 0.999
	DefaultEps   = 1e-8
)

// Config describes a local update rule. The zero value is plain SGD with
// no momentum and no weight decay — the contract every engine's golden
// traces rely on.
type Config struct {
	Rule        Rule
	LR          float64 // current learning rate (callers apply Schedule)
	Momentum    float64 // heavy-ball/Nesterov mu, or Adam beta1
	Beta2       float64 // Adam second-moment decay (0 = 0.999)
	Eps         float64 // Adam denominator epsilon (0 = 1e-8)
	WeightDecay float64 // L2 (plain/momentum/adam) or decoupled (adamw)

	// SyncedMoments marks the Adam second moment SyncAverage instead of
	// SyncKeep: the engines then average v across workers at every sync
	// point, shipping it over the same (compressed, byte-priced) wire as
	// the parameters. Only meaningful for RuleAdam/RuleAdamW.
	SyncedMoments bool
}

// Validate rejects configurations New would mis-handle.
func (c Config) Validate() error {
	switch c.Rule {
	case RulePlain, RuleMomentum, RuleNesterov, RuleAdam, RuleAdamW:
	default:
		return fmt.Errorf("opt: unknown rule %d", int(c.Rule))
	}
	if c.Momentum < 0 || c.Momentum >= 1 {
		return fmt.Errorf("opt: momentum %v outside [0,1)", c.Momentum)
	}
	if c.Beta2 < 0 || c.Beta2 >= 1 {
		return fmt.Errorf("opt: beta2 %v outside [0,1)", c.Beta2)
	}
	if c.Eps < 0 {
		return fmt.Errorf("opt: eps %v negative", c.Eps)
	}
	if (c.Rule == RuleMomentum || c.Rule == RuleNesterov) && c.Momentum == 0 {
		return fmt.Errorf("opt: rule %s requires momentum > 0", c.Rule)
	}
	if c.SyncedMoments && c.Rule != RuleAdam && c.Rule != RuleAdamW {
		return fmt.Errorf("opt: synced moments require an adam rule, got %s", c.Rule)
	}
	return nil
}

// IsZero reports whether the config is the plain-SGD zero value (ignoring
// LR, which every engine drives from its schedule).
func (c Config) IsZero() bool {
	z := c
	z.LR = 0
	return z == Config{}
}

// Adaptive reports whether the rule keeps second-moment state.
func (c Config) Adaptive() bool { return c.Rule == RuleAdam || c.Rule == RuleAdamW }

// String renders the config in the grammar Parse accepts.
func (c Config) String() string {
	s := c.Rule.String()
	switch c.Rule {
	case RuleMomentum, RuleNesterov:
		s += ":" + trimFloat(c.Momentum)
	case RuleAdam, RuleAdamW:
		if c.Momentum != 0 || c.Beta2 != 0 {
			s += ":" + trimFloat(c.Momentum)
			if c.Beta2 != 0 {
				s += "," + trimFloat(c.Beta2)
			}
		}
		if c.SyncedMoments {
			s += "+synced"
		}
	}
	return s
}

func trimFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Forms enumerates the spec grammar for CLI error messages.
func Forms() string {
	return `"sgd", "momentum:MU", "nesterov:MU", "adam", "adam:B1", "adam:B1,B2", "adamw[:B1[,B2]]"; adam forms take an optional "+synced" suffix (synced second moments)`
}

// Parse parses an optimizer spec. The empty string and "sgd" yield the
// plain-SGD zero value. See Forms for the grammar.
func Parse(spec string) (Config, error) {
	var c Config
	s := strings.TrimSpace(spec)
	if strings.HasSuffix(s, "+synced") {
		c.SyncedMoments = true
		s = strings.TrimSuffix(s, "+synced")
	}
	name, arg := s, ""
	if i := strings.IndexByte(s, ':'); i >= 0 {
		name, arg = s[:i], s[i+1:]
	}
	switch name {
	case "", "sgd":
		c.Rule = RulePlain
		if arg != "" {
			return Config{}, fmt.Errorf("opt: %q takes no argument (valid forms: %s)", name, Forms())
		}
	case "momentum", "nesterov":
		c.Rule = RuleMomentum
		if name == "nesterov" {
			c.Rule = RuleNesterov
		}
		if arg == "" {
			return Config{}, fmt.Errorf("opt: %q requires a momentum argument, e.g. %q (valid forms: %s)", name, name+":0.9", Forms())
		}
		mu, err := strconv.ParseFloat(arg, 64)
		if err != nil {
			return Config{}, fmt.Errorf("opt: bad momentum %q in %q (valid forms: %s)", arg, spec, Forms())
		}
		c.Momentum = mu
	case "adam", "adamw":
		c.Rule = RuleAdam
		if name == "adamw" {
			c.Rule = RuleAdamW
		}
		if arg != "" {
			parts := strings.Split(arg, ",")
			if len(parts) > 2 {
				return Config{}, fmt.Errorf("opt: too many betas in %q (valid forms: %s)", spec, Forms())
			}
			b1, err := strconv.ParseFloat(parts[0], 64)
			if err != nil {
				return Config{}, fmt.Errorf("opt: bad beta1 %q in %q (valid forms: %s)", parts[0], spec, Forms())
			}
			c.Momentum = b1
			if len(parts) == 2 {
				b2, err := strconv.ParseFloat(parts[1], 64)
				if err != nil {
					return Config{}, fmt.Errorf("opt: bad beta2 %q in %q (valid forms: %s)", parts[1], spec, Forms())
				}
				c.Beta2 = b2
			}
		}
	default:
		return Config{}, fmt.Errorf("opt: unknown optimizer %q (valid forms: %s)", spec, Forms())
	}
	if c.SyncedMoments && !c.Adaptive() {
		return Config{}, fmt.Errorf("opt: +synced only applies to adam forms (valid forms: %s)", Forms())
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// SyncPolicy says what an engine does with a state vector at a sync point.
type SyncPolicy int

const (
	// SyncReset: zero the vector at every averaging point (heavy-ball
	// buffers, Adam first moments — paper Sec 5.3.1 discipline).
	SyncReset SyncPolicy = iota
	// SyncAverage: average the vector across workers at every sync point,
	// shipping it through the same wire as the parameters.
	SyncAverage
	// SyncKeep: per-worker state the sync leaves untouched (Local Adam's
	// local second moments).
	SyncKeep
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncReset:
		return "reset"
	case SyncAverage:
		return "average"
	case SyncKeep:
		return "keep"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// State is one named optimizer state vector. Vec aliases the optimizer's
// arena: engines read and write it in place (e.g. overwriting a
// SyncAverage vector with the across-worker mean).
type State struct {
	Name   string
	Vec    []float64
	Policy SyncPolicy
}

// Optimizer performs in-place updates on a model's flat parameters and
// exposes its state vectors for the engines to reset, average, or restore.
type Optimizer interface {
	// Step applies one update x -= lr * d(g). grad is not modified.
	Step(params, grad []float64)
	// SetLR changes the learning rate used by subsequent steps.
	SetLR(lr float64)
	// Config returns the (default-filled) configuration.
	Config() Config
	// State enumerates the state vectors. The returned slice and the
	// vectors it aliases are stable across calls.
	State() []State
	// SyncReset zeroes every SyncReset-policy vector and the step counter
	// behind Adam's first-moment bias correction. Called by the engines at
	// averaging points.
	SyncReset()
	// ResetState zeroes all state vectors and counters.
	ResetState()
	// Steps returns the total Step count (Adam's second-moment bias
	// correction clock; survives SyncReset).
	Steps() int
	// AlignSteps overwrites the total Step count — rejoin reconciliation
	// uses it to re-derive a recovered worker's bias-correction clock.
	AlignSteps(n int)
}

// optimizer is the single implementation behind New: one struct, with the
// per-rule branch inside Step, so all rules share arena and sync plumbing.
type optimizer struct {
	cfg   Config
	buf   []float64 // heavy-ball / Nesterov momentum buffer
	m     []float64 // Adam first moment
	v     []float64 // Adam second moment
	state []State
	tm    int // steps since the last first-moment reset
	tv    int // total steps (second-moment clock)
}

// New builds an optimizer for a parameter vector of the given length,
// preallocating every state arena so Step never allocates. Zero Adam
// hyperparameters are filled with the package defaults.
func New(cfg Config, dim int) Optimizer {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	o := &optimizer{cfg: cfg}
	switch cfg.Rule {
	case RuleMomentum, RuleNesterov:
		o.buf = make([]float64, dim)
		o.state = []State{{Name: "momentum", Vec: o.buf, Policy: SyncReset}}
	case RuleAdam, RuleAdamW:
		if o.cfg.Momentum == 0 {
			o.cfg.Momentum = DefaultBeta1
		}
		if o.cfg.Beta2 == 0 {
			o.cfg.Beta2 = DefaultBeta2
		}
		if o.cfg.Eps == 0 {
			o.cfg.Eps = DefaultEps
		}
		o.m = make([]float64, dim)
		o.v = make([]float64, dim)
		vPolicy := SyncKeep
		if cfg.SyncedMoments {
			vPolicy = SyncAverage
		}
		o.state = []State{
			{Name: "adam.m", Vec: o.m, Policy: SyncReset},
			{Name: "adam.v", Vec: o.v, Policy: vPolicy},
		}
	}
	return o
}

func (o *optimizer) Config() Config   { return o.cfg }
func (o *optimizer) SetLR(lr float64) { o.cfg.LR = lr }
func (o *optimizer) State() []State   { return o.state }
func (o *optimizer) Steps() int       { return o.tv }
func (o *optimizer) AlignSteps(n int) { o.tv = n }

func (o *optimizer) SyncReset() {
	for _, s := range o.state {
		if s.Policy != SyncReset {
			continue
		}
		for i := range s.Vec {
			s.Vec[i] = 0
		}
	}
	o.tm = 0
}

func (o *optimizer) ResetState() {
	for _, s := range o.state {
		for i := range s.Vec {
			s.Vec[i] = 0
		}
	}
	o.tm, o.tv = 0, 0
}

func (o *optimizer) Step(params, grad []float64) {
	if len(params) != len(grad) {
		panic("opt: params/grad length mismatch")
	}
	wd := o.cfg.WeightDecay
	lr := o.cfg.LR
	switch o.cfg.Rule {
	case RulePlain:
		// Bit-identical to the legacy internal/sgd loop with Momentum=0.
		for i := range params {
			g := grad[i] + wd*params[i]
			params[i] -= lr * g
		}
	case RuleMomentum:
		// Bit-identical to the legacy internal/sgd momentum loop.
		mu := o.cfg.Momentum
		for i := range params {
			g := grad[i] + wd*params[i]
			o.buf[i] = mu*o.buf[i] + g
			params[i] -= lr * o.buf[i]
		}
	case RuleNesterov:
		mu := o.cfg.Momentum
		for i := range params {
			g := grad[i] + wd*params[i]
			o.buf[i] = mu*o.buf[i] + g
			params[i] -= lr * (g + mu*o.buf[i])
		}
	case RuleAdam, RuleAdamW:
		b1, b2, eps := o.cfg.Momentum, o.cfg.Beta2, o.cfg.Eps
		o.tm++
		o.tv++
		bc1 := 1 - math.Pow(b1, float64(o.tm))
		bc2 := 1 - math.Pow(b2, float64(o.tv))
		decoupled := o.cfg.Rule == RuleAdamW
		for i := range params {
			g := grad[i]
			if !decoupled {
				g += wd * params[i]
			}
			o.m[i] = b1*o.m[i] + (1-b1)*g
			o.v[i] = b2*o.v[i] + (1-b2)*g*g
			vhat := o.v[i] / bc2
			if vhat < 0 {
				// Locally v is a sum of squares and can never go negative,
				// but a SYNCED second moment travels a lossy wire: unbiased
				// quantization noise can push the averaged estimate slightly
				// below zero, and sqrt must not turn that into NaN.
				vhat = 0
			}
			step := (o.m[i] / bc1) / (math.Sqrt(vhat) + eps)
			if decoupled {
				step += wd * params[i]
			}
			params[i] -= lr * step
		}
	}
}

// HasResetState reports whether the optimizer carries any SyncReset-policy
// state — the engines' gate for the reset-at-averaging discipline
// (replacing the legacy Momentum != 0 check, to which it is equivalent for
// the legacy rules).
func HasResetState(o Optimizer) bool {
	for _, s := range o.State() {
		if s.Policy == SyncReset {
			return true
		}
	}
	return false
}

// SyncedLen returns the total length of the SyncAverage-policy vectors —
// the extra wire-visible state the engines append to every averaged
// payload (0 for everything but synced-moment Adam).
func SyncedLen(o Optimizer) int {
	n := 0
	for _, s := range o.State() {
		if s.Policy == SyncAverage {
			n += len(s.Vec)
		}
	}
	return n
}

// SyncedVecs returns the SyncAverage-policy vectors in State order.
func SyncedVecs(o Optimizer) [][]float64 {
	var vs [][]float64
	for _, s := range o.State() {
		if s.Policy == SyncAverage {
			vs = append(vs, s.Vec)
		}
	}
	return vs
}

// EffectiveLR is the steady-state effective learning rate of a momentum
// recursion: eta/(1-beta). The AdaComm tau rule's eta coupling uses it to
// stay correct under momentum; at beta = 0 the division is by exactly 1,
// so plain-SGD trajectories are bit-identical to the uncoupled form.
func EffectiveLR(eta, beta float64) float64 { return eta / (1 - beta) }
