package nn

import (
	"math"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Scratch arena: every layer owns the matrices it returns from Forward and
// Backward and reuses them across calls, so the training hot path performs
// no per-step allocations once buffers reach the largest batch size seen.
// The ownership rule is: one arena per layer instance, layer instances
// belong to exactly one Network, and a Network is NOT goroutine-safe — each
// simulated worker clones the network, so arenas never race. Returned
// matrices are valid until the layer's next Forward/Backward call; callers
// that need to retain results must copy them.

// ensureMat returns a rows x cols matrix backed by *m's storage when its
// capacity allows, growing it otherwise. Contents are stale: callers must
// overwrite (or zero) every element before exposing the matrix.
func ensureMat(m **tensor.Matrix, rows, cols int) *tensor.Matrix {
	need := rows * cols
	if *m == nil || cap((*m).Data) < need {
		*m = tensor.NewMatrix(rows, cols)
		return *m
	}
	(*m).Rows, (*m).Cols = rows, cols
	(*m).Data = (*m).Data[:need]
	return *m
}

// Dense is a fully connected layer: out = in*W^T + b, with W stored
// row-major (out x in) followed by b (out) in the parameter slice.
type Dense struct {
	in, out int
	lastIn  *tensor.Matrix // forward cache

	outBuf, dInBuf *tensor.Matrix // scratch arena
}

// NewDense creates a Dense layer mapping in -> out features.
func NewDense(in, out int) *Dense {
	if in < 1 || out < 1 {
		panic("nn: Dense dims must be >= 1")
	}
	return &Dense{in: in, out: out}
}

// InDim implements Layer.
func (d *Dense) InDim() int { return d.in }

// OutDim implements Layer.
func (d *Dense) OutDim() int { return d.out }

// ParamLen implements Layer.
func (d *Dense) ParamLen() int { return d.out*d.in + d.out }

// Init uses He initialization (appropriate for the ReLU nets in the zoo);
// biases start at zero.
func (d *Dense) Init(params []float64, r *rng.Rand) {
	std := math.Sqrt(2 / float64(d.in))
	for i := 0; i < d.out*d.in; i++ {
		params[i] = std * r.NormFloat64()
	}
	for i := d.out * d.in; i < len(params); i++ {
		params[i] = 0
	}
}

func (d *Dense) weights(params []float64) *tensor.Matrix {
	return &tensor.Matrix{Rows: d.out, Cols: d.in, Data: params[:d.out*d.in]}
}

// Forward implements Layer.
func (d *Dense) Forward(params []float64, in *tensor.Matrix) *tensor.Matrix {
	d.lastIn = in
	w := d.weights(params)
	bias := params[d.out*d.in:]
	out := ensureMat(&d.outBuf, in.Rows, d.out)
	tensor.GemmTB(1, in, w, 0, out) // out = in * W^T (beta=0 overwrites)
	for i := 0; i < out.Rows; i++ {
		tensor.Axpy(1, bias, out.Row(i))
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(params []float64, dOut *tensor.Matrix, dParams []float64) *tensor.Matrix {
	w := d.weights(params)
	dW := &tensor.Matrix{Rows: d.out, Cols: d.in, Data: dParams[:d.out*d.in]}
	dB := dParams[d.out*d.in:]
	// dW += dOut^T * in ; dB += column sums of dOut ; dIn = dOut * W.
	tensor.GemmTA(1, dOut, d.lastIn, 1, dW)
	for i := 0; i < dOut.Rows; i++ {
		tensor.Axpy(1, dOut.Row(i), dB)
	}
	dIn := ensureMat(&d.dInBuf, dOut.Rows, d.in)
	tensor.Gemm(1, dOut, w, 0, dIn) // beta=0 overwrites
	return dIn
}

// Clone implements Layer.
func (d *Dense) Clone() Layer { return NewDense(d.in, d.out) }

// ReLU applies max(0, x) elementwise.
type ReLU struct {
	dim     int
	lastOut *tensor.Matrix

	outBuf, dInBuf *tensor.Matrix // scratch arena
}

// NewReLU creates a ReLU over vectors of the given length.
func NewReLU(dim int) *ReLU { return &ReLU{dim: dim} }

// InDim implements Layer.
func (l *ReLU) InDim() int { return l.dim }

// OutDim implements Layer.
func (l *ReLU) OutDim() int { return l.dim }

// ParamLen implements Layer.
func (l *ReLU) ParamLen() int { return 0 }

// Init implements Layer (no parameters).
func (l *ReLU) Init([]float64, *rng.Rand) {}

// Forward implements Layer.
func (l *ReLU) Forward(_ []float64, in *tensor.Matrix) *tensor.Matrix {
	out := ensureMat(&l.outBuf, in.Rows, in.Cols)
	for i, v := range in.Data {
		if v > 0 {
			out.Data[i] = v
		} else {
			out.Data[i] = 0
		}
	}
	l.lastOut = out
	return out
}

// Backward implements Layer.
func (l *ReLU) Backward(_ []float64, dOut *tensor.Matrix, _ []float64) *tensor.Matrix {
	dIn := ensureMat(&l.dInBuf, dOut.Rows, dOut.Cols)
	for i, v := range l.lastOut.Data {
		if v > 0 {
			dIn.Data[i] = dOut.Data[i]
		} else {
			dIn.Data[i] = 0
		}
	}
	return dIn
}

// Clone implements Layer.
func (l *ReLU) Clone() Layer { return NewReLU(l.dim) }

// Tanh applies tanh elementwise.
type Tanh struct {
	dim     int
	lastOut *tensor.Matrix

	outBuf, dInBuf *tensor.Matrix // scratch arena
}

// NewTanh creates a Tanh over vectors of the given length.
func NewTanh(dim int) *Tanh { return &Tanh{dim: dim} }

// InDim implements Layer.
func (l *Tanh) InDim() int { return l.dim }

// OutDim implements Layer.
func (l *Tanh) OutDim() int { return l.dim }

// ParamLen implements Layer.
func (l *Tanh) ParamLen() int { return 0 }

// Init implements Layer (no parameters).
func (l *Tanh) Init([]float64, *rng.Rand) {}

// Forward implements Layer.
func (l *Tanh) Forward(_ []float64, in *tensor.Matrix) *tensor.Matrix {
	out := ensureMat(&l.outBuf, in.Rows, in.Cols)
	for i, v := range in.Data {
		out.Data[i] = math.Tanh(v)
	}
	l.lastOut = out
	return out
}

// Backward implements Layer.
func (l *Tanh) Backward(_ []float64, dOut *tensor.Matrix, _ []float64) *tensor.Matrix {
	dIn := ensureMat(&l.dInBuf, dOut.Rows, dOut.Cols)
	for i, y := range l.lastOut.Data {
		dIn.Data[i] = dOut.Data[i] * (1 - y*y)
	}
	return dIn
}

// Clone implements Layer.
func (l *Tanh) Clone() Layer { return NewTanh(l.dim) }

// Conv2D is a 2-D convolution over channel-major flattened images,
// implemented with im2col so the per-sample work is one matrix multiply.
// Parameters: filters (F x C*K*K, row-major) followed by biases (F).
type Conv2D struct {
	shape   tensor.ConvShape
	filters int
	// patches is the forward cache: the lowered-patches matrices of every
	// batch row, stacked vertically (batch*P rows x PatchLen cols) in one
	// reused buffer instead of one Clone per sample per call.
	patches *tensor.Matrix

	outBuf, dInBuf               *tensor.Matrix // scratch arena
	prodBuf, dProdBuf, dPatchBuf *tensor.Matrix
}

// NewConv2D creates a convolution from the given input shape to `filters`
// output channels with a square kernel.
func NewConv2D(channels, height, width, kernel, stride, pad, filters int) *Conv2D {
	s := tensor.ConvShape{
		Channels: channels, Height: height, Width: width,
		Kernel: kernel, Stride: stride, Pad: pad,
	}
	if s.OutHeight() < 1 || s.OutWidth() < 1 || filters < 1 {
		panic("nn: Conv2D produces empty output")
	}
	return &Conv2D{shape: s, filters: filters}
}

// OutShape returns the (channels, height, width) of the output images.
func (c *Conv2D) OutShape() (channels, height, width int) {
	return c.filters, c.shape.OutHeight(), c.shape.OutWidth()
}

// InDim implements Layer.
func (c *Conv2D) InDim() int { return c.shape.Channels * c.shape.Height * c.shape.Width }

// OutDim implements Layer.
func (c *Conv2D) OutDim() int { return c.filters * c.shape.OutHeight() * c.shape.OutWidth() }

// ParamLen implements Layer.
func (c *Conv2D) ParamLen() int { return c.filters*c.shape.PatchLen() + c.filters }

// Init uses He initialization over the fan-in C*K*K.
func (c *Conv2D) Init(params []float64, r *rng.Rand) {
	fanIn := float64(c.shape.PatchLen())
	std := math.Sqrt(2 / fanIn)
	nw := c.filters * c.shape.PatchLen()
	for i := 0; i < nw; i++ {
		params[i] = std * r.NormFloat64()
	}
	for i := nw; i < len(params); i++ {
		params[i] = 0
	}
}

func (c *Conv2D) kernelMatrix(params []float64) *tensor.Matrix {
	return &tensor.Matrix{Rows: c.filters, Cols: c.shape.PatchLen(),
		Data: params[:c.filters*c.shape.PatchLen()]}
}

// samplePatches returns the lowered-patches view of batch row i inside the
// stacked patches buffer. The returned header is written into view to keep
// the hot path allocation-free.
func (c *Conv2D) samplePatches(view *tensor.Matrix, i int) *tensor.Matrix {
	p := c.shape.OutHeight() * c.shape.OutWidth()
	pl := c.shape.PatchLen()
	view.Rows, view.Cols = p, pl
	view.Data = c.patches.Data[i*p*pl : (i+1)*p*pl]
	return view
}

// Forward implements Layer. Output rows are channel-major flattened images
// of shape (filters, outH, outW).
func (c *Conv2D) Forward(params []float64, in *tensor.Matrix) *tensor.Matrix {
	w := c.kernelMatrix(params)
	bias := params[c.filters*c.shape.PatchLen():]
	outH, outW := c.shape.OutHeight(), c.shape.OutWidth()
	p := outH * outW
	out := ensureMat(&c.outBuf, in.Rows, c.filters*p)
	ensureMat(&c.patches, in.Rows*p, c.shape.PatchLen())
	prod := ensureMat(&c.prodBuf, p, c.filters)
	var lowered tensor.Matrix
	for i := 0; i < in.Rows; i++ {
		c.samplePatches(&lowered, i)
		tensor.Im2Col(c.shape, in.Row(i), &lowered)
		tensor.GemmTB(1, &lowered, w, 0, prod) // (P x F), beta=0 overwrites
		dst := out.Row(i)
		for f := 0; f < c.filters; f++ {
			b := bias[f]
			for pos := 0; pos < p; pos++ {
				dst[f*p+pos] = prod.At(pos, f) + b
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(params []float64, dOut *tensor.Matrix, dParams []float64) *tensor.Matrix {
	w := c.kernelMatrix(params)
	dW := &tensor.Matrix{Rows: c.filters, Cols: c.shape.PatchLen(),
		Data: dParams[:c.filters*c.shape.PatchLen()]}
	dB := dParams[c.filters*c.shape.PatchLen():]
	outH, outW := c.shape.OutHeight(), c.shape.OutWidth()
	p := outH * outW
	dIn := ensureMat(&c.dInBuf, dOut.Rows, c.InDim())
	tensor.Zero(dIn.Data) // Col2Im scatter-adds into dIn rows
	dProd := ensureMat(&c.dProdBuf, p, c.filters)
	dPatches := ensureMat(&c.dPatchBuf, p, c.shape.PatchLen())
	var patches tensor.Matrix
	for i := 0; i < dOut.Rows; i++ {
		src := dOut.Row(i)
		for f := 0; f < c.filters; f++ {
			for pos := 0; pos < p; pos++ {
				g := src[f*p+pos]
				dProd.Set(pos, f, g)
				dB[f] += g
			}
		}
		// dW += dProd^T * patches ; dPatches = dProd * W.
		tensor.GemmTA(1, dProd, c.samplePatches(&patches, i), 1, dW)
		tensor.Gemm(1, dProd, w, 0, dPatches) // beta=0 overwrites
		tensor.Col2Im(c.shape, dPatches, dIn.Row(i))
	}
	return dIn
}

// Clone implements Layer.
func (c *Conv2D) Clone() Layer {
	return &Conv2D{shape: c.shape, filters: c.filters}
}

// MaxPool2x2 downsamples channel-major images by taking the max over
// non-overlapping 2x2 windows. Height and width must be even.
type MaxPool2x2 struct {
	channels, height, width int
	// argmax records, for every batch row and output element, the winning
	// input index: row i's entries live at [i*OutDim(), (i+1)*OutDim()).
	argmax []int

	outBuf, dInBuf *tensor.Matrix // scratch arena
}

// NewMaxPool2x2 creates the pooling layer for the given input image shape.
func NewMaxPool2x2(channels, height, width int) *MaxPool2x2 {
	if height%2 != 0 || width%2 != 0 {
		panic("nn: MaxPool2x2 requires even height and width")
	}
	return &MaxPool2x2{channels: channels, height: height, width: width}
}

// OutShape returns the output image shape.
func (m *MaxPool2x2) OutShape() (channels, height, width int) {
	return m.channels, m.height / 2, m.width / 2
}

// InDim implements Layer.
func (m *MaxPool2x2) InDim() int { return m.channels * m.height * m.width }

// OutDim implements Layer.
func (m *MaxPool2x2) OutDim() int { return m.channels * (m.height / 2) * (m.width / 2) }

// ParamLen implements Layer.
func (m *MaxPool2x2) ParamLen() int { return 0 }

// Init implements Layer (no parameters).
func (m *MaxPool2x2) Init([]float64, *rng.Rand) {}

// Forward implements Layer.
func (m *MaxPool2x2) Forward(_ []float64, in *tensor.Matrix) *tensor.Matrix {
	oh, ow := m.height/2, m.width/2
	out := ensureMat(&m.outBuf, in.Rows, m.channels*oh*ow)
	if need := in.Rows * m.OutDim(); cap(m.argmax) < need {
		m.argmax = make([]int, need)
	} else {
		m.argmax = m.argmax[:need]
	}
	for i := 0; i < in.Rows; i++ {
		src := in.Row(i)
		dst := out.Row(i)
		am := m.argmax[i*m.OutDim() : (i+1)*m.OutDim()]
		for ch := 0; ch < m.channels; ch++ {
			base := ch * m.height * m.width
			obase := ch * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					bestIdx := base + (2*oy)*m.width + 2*ox
					best := src[bestIdx]
					for _, d := range [3]int{1, m.width, m.width + 1} {
						if idx := base + (2*oy)*m.width + 2*ox + d; src[idx] > best {
							best, bestIdx = src[idx], idx
						}
					}
					o := obase + oy*ow + ox
					dst[o] = best
					am[o] = bestIdx
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool2x2) Backward(_ []float64, dOut *tensor.Matrix, _ []float64) *tensor.Matrix {
	dIn := ensureMat(&m.dInBuf, dOut.Rows, m.InDim())
	tensor.Zero(dIn.Data) // gradients scatter-add into the argmax winners
	for i := 0; i < dOut.Rows; i++ {
		src := dOut.Row(i)
		dst := dIn.Row(i)
		for o, idx := range m.argmax[i*m.OutDim() : (i+1)*m.OutDim()] {
			dst[idx] += src[o]
		}
	}
	return dIn
}

// Clone implements Layer.
func (m *MaxPool2x2) Clone() Layer { return NewMaxPool2x2(m.channels, m.height, m.width) }

// Residual wraps an inner layer stack F with a skip connection:
// out = in + F(in). Inner input and output dims must match, which is the
// identity-shortcut residual block of ResNet.
type Residual struct {
	inner []Layer
	// parameter slicing within the residual's own parameter block
	offsets []int
	total   int

	outBuf, dInBuf *tensor.Matrix // scratch arena
}

// NewResidual builds a residual block around the inner layers.
func NewResidual(inner ...Layer) *Residual {
	if len(inner) == 0 {
		panic("nn: Residual needs inner layers")
	}
	total := 0
	offsets := make([]int, len(inner))
	for i, l := range inner {
		if i > 0 && inner[i-1].OutDim() != l.InDim() {
			panic("nn: Residual inner dims mismatch")
		}
		offsets[i] = total
		total += l.ParamLen()
	}
	if inner[0].InDim() != inner[len(inner)-1].OutDim() {
		panic("nn: Residual requires matching in/out dims for the skip connection")
	}
	return &Residual{inner: inner, offsets: offsets, total: total}
}

// InDim implements Layer.
func (r *Residual) InDim() int { return r.inner[0].InDim() }

// OutDim implements Layer.
func (r *Residual) OutDim() int { return r.inner[len(r.inner)-1].OutDim() }

// ParamLen implements Layer.
func (r *Residual) ParamLen() int { return r.total }

// Init implements Layer.
func (r *Residual) Init(params []float64, rnd *rng.Rand) {
	for i, l := range r.inner {
		l.Init(params[r.offsets[i]:r.offsets[i]+l.ParamLen()], rnd)
	}
}

// Forward implements Layer.
func (r *Residual) Forward(params []float64, in *tensor.Matrix) *tensor.Matrix {
	cur := in
	for i, l := range r.inner {
		cur = l.Forward(params[r.offsets[i]:r.offsets[i]+l.ParamLen()], cur)
	}
	out := ensureMat(&r.outBuf, in.Rows, in.Cols)
	tensor.Add(out.Data, in.Data, cur.Data)
	return out
}

// Backward implements Layer.
func (r *Residual) Backward(params []float64, dOut *tensor.Matrix, dParams []float64) *tensor.Matrix {
	cur := dOut
	for i := len(r.inner) - 1; i >= 0; i-- {
		l := r.inner[i]
		cur = l.Backward(params[r.offsets[i]:r.offsets[i]+l.ParamLen()],
			cur, dParams[r.offsets[i]:r.offsets[i]+l.ParamLen()])
	}
	dIn := ensureMat(&r.dInBuf, dOut.Rows, dOut.Cols)
	tensor.Add(dIn.Data, dOut.Data, cur.Data) // skip path + inner path
	return dIn
}

// Clone implements Layer.
func (r *Residual) Clone() Layer {
	inner := make([]Layer, len(r.inner))
	for i, l := range r.inner {
		inner[i] = l.Clone()
	}
	return NewResidual(inner...)
}
