package nn

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Checkpoint format: a small binary container for a network's flat
// parameter vector, so long training runs (and the cmd/ tools) can persist
// and resume models. Layout (little-endian):
//
//	magic   uint32  'ACPT'
//	version uint32  1
//	count   uint64  number of float64 parameters
//	params  count * float64 (IEEE-754 bits)
//	crc     uint32  CRC-32 (IEEE) of the params bytes
const (
	checkpointMagic   = 0x41435054 // "ACPT"
	checkpointVersion = 1
)

// SaveParams writes the network's parameters as a checkpoint.
func (n *Network) SaveParams(w io.Writer) error {
	params := n.Params()
	header := make([]byte, 16)
	binary.LittleEndian.PutUint32(header[0:], checkpointMagic)
	binary.LittleEndian.PutUint32(header[4:], checkpointVersion)
	binary.LittleEndian.PutUint64(header[8:], uint64(len(params)))
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("nn: checkpoint header: %w", err)
	}
	buf := make([]byte, 8*len(params))
	for i, v := range params {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("nn: checkpoint params: %w", err)
	}
	crc := make([]byte, 4)
	binary.LittleEndian.PutUint32(crc, crc32.ChecksumIEEE(buf))
	if _, err := w.Write(crc); err != nil {
		return fmt.Errorf("nn: checkpoint crc: %w", err)
	}
	return nil
}

// LoadParams reads a checkpoint into the network. The parameter count must
// match the architecture exactly; the CRC guards against truncation and
// corruption.
func (n *Network) LoadParams(r io.Reader) error {
	header := make([]byte, 16)
	if _, err := io.ReadFull(r, header); err != nil {
		return fmt.Errorf("nn: checkpoint header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(header[0:]); m != checkpointMagic {
		return fmt.Errorf("nn: bad checkpoint magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(header[4:]); v != checkpointVersion {
		return fmt.Errorf("nn: unsupported checkpoint version %d", v)
	}
	count := binary.LittleEndian.Uint64(header[8:])
	if count != uint64(n.ParamLen()) {
		return fmt.Errorf("nn: checkpoint has %d params, network needs %d", count, n.ParamLen())
	}
	buf := make([]byte, 8*count)
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("nn: checkpoint params: %w", err)
	}
	crcBytes := make([]byte, 4)
	if _, err := io.ReadFull(r, crcBytes); err != nil {
		return fmt.Errorf("nn: checkpoint crc: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(buf), binary.LittleEndian.Uint32(crcBytes); got != want {
		return fmt.Errorf("nn: checkpoint crc mismatch: %#x vs %#x", got, want)
	}
	params := n.Params()
	for i := range params {
		params[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return nil
}
