package nn

import (
	"math"

	"repro/internal/data"
	"repro/internal/tensor"
)

// SoftmaxCrossEntropy is the standard classification loss over logits,
// computed with the log-sum-exp trick for numerical stability.
type SoftmaxCrossEntropy struct{}

// Name implements Loss.
func (SoftmaxCrossEntropy) Name() string { return "softmax-xent" }

// Eval implements Loss. Targets come from b.Y.
func (SoftmaxCrossEntropy) Eval(out *tensor.Matrix, b data.Batch, dOut *tensor.Matrix) float64 {
	if len(b.Y) != out.Rows {
		panic("nn: SoftmaxCrossEntropy needs classification labels")
	}
	total := 0.0
	invB := 1 / float64(out.Rows)
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		mx := row[0]
		for _, v := range row[1:] {
			if v > mx {
				mx = v
			}
		}
		sum := 0.0
		for _, v := range row {
			sum += math.Exp(v - mx)
		}
		logZ := mx + math.Log(sum)
		total += logZ - row[b.Y[i]]
		if dOut != nil {
			d := dOut.Row(i)
			for j, v := range row {
				d[j] = math.Exp(v-logZ) * invB
			}
			d[b.Y[i]] -= invB
		}
	}
	return total * invB
}

// MSE is mean squared error over a scalar (1-D) network output against
// regression targets: mean over the batch of (out - t)^2 / 2.
type MSE struct{}

// Name implements Loss.
func (MSE) Name() string { return "mse" }

// Eval implements Loss. Targets come from b.T.
func (MSE) Eval(out *tensor.Matrix, b data.Batch, dOut *tensor.Matrix) float64 {
	if len(b.T) != out.Rows {
		panic("nn: MSE needs regression targets")
	}
	if out.Cols != 1 {
		panic("nn: MSE expects a scalar output head")
	}
	total := 0.0
	invB := 1 / float64(out.Rows)
	for i := 0; i < out.Rows; i++ {
		diff := out.At(i, 0) - b.T[i]
		total += 0.5 * diff * diff
		if dOut != nil {
			dOut.Set(i, 0, diff*invB)
		}
	}
	return total * invB
}
