package nn

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestCheckpointRoundTrip(t *testing.T) {
	n := NewMLP(6, []int{8}, 3)
	n.InitParams(rng.New(1))
	var buf bytes.Buffer
	if err := n.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	m := NewMLP(6, []int{8}, 3)
	if err := m.LoadParams(&buf); err != nil {
		t.Fatal(err)
	}
	for i := range n.Params() {
		if n.Params()[i] != m.Params()[i] {
			t.Fatalf("round trip changed param %d", i)
		}
	}
}

func TestCheckpointRejectsWrongArchitecture(t *testing.T) {
	n := NewMLP(6, []int{8}, 3)
	n.InitParams(rng.New(2))
	var buf bytes.Buffer
	if err := n.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	other := NewMLP(6, []int{16}, 3)
	if err := other.LoadParams(&buf); err == nil {
		t.Fatal("loaded checkpoint into mismatched architecture")
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	n := NewLogisticRegression(4, 2)
	n.InitParams(rng.New(3))
	var buf bytes.Buffer
	if err := n.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[20] ^= 0xFF // flip a bit inside the parameter payload
	if err := n.LoadParams(bytes.NewReader(raw)); err == nil ||
		!strings.Contains(err.Error(), "crc") {
		t.Fatalf("corruption not detected: %v", err)
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	n := NewLogisticRegression(4, 2)
	if err := n.LoadParams(strings.NewReader("not a checkpoint at all")); err == nil {
		t.Fatal("loaded garbage")
	}
}

func TestCheckpointRejectsTruncation(t *testing.T) {
	n := NewLogisticRegression(4, 2)
	n.InitParams(rng.New(4))
	var buf bytes.Buffer
	if err := n.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()-10]
	if err := n.LoadParams(bytes.NewReader(raw)); err == nil {
		t.Fatal("loaded truncated checkpoint")
	}
}
