package nn

import (
	"math"

	"repro/internal/data"
)

// GradCheck compares the network's analytic gradient against central finite
// differences on the given batch. It returns the maximum relative error over
// all parameters. Used by the test suite to certify every layer's backward
// pass — the reproduction depends on exact gradients, since AdaComm's
// update rule consumes the true training loss.
func GradCheck(n *Network, b data.Batch, eps float64) float64 {
	params := n.Params()
	analytic := make([]float64, n.ParamLen())
	n.LossGrad(b, analytic)

	worst := 0.0
	for i := range params {
		orig := params[i]
		params[i] = orig + eps
		lossPlus := n.Loss(b)
		params[i] = orig - eps
		lossMinus := n.Loss(b)
		params[i] = orig

		numeric := (lossPlus - lossMinus) / (2 * eps)
		scale := math.Max(1e-8, math.Abs(analytic[i])+math.Abs(numeric))
		rel := math.Abs(analytic[i]-numeric) / scale
		if rel > worst {
			worst = rel
		}
	}
	return worst
}
