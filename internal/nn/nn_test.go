package nn

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// classBatch builds a small deterministic classification batch.
func classBatch(dim, classes, n int, seed uint64) data.Batch {
	r := rng.New(seed)
	b := data.Batch{X: tensor.NewMatrix(n, dim), Y: make([]int, n)}
	for i := 0; i < n; i++ {
		for j := 0; j < dim; j++ {
			b.X.Set(i, j, r.NormFloat64())
		}
		b.Y[i] = r.Intn(classes)
	}
	return b
}

func regBatch(dim, n int, seed uint64) data.Batch {
	r := rng.New(seed)
	b := data.Batch{X: tensor.NewMatrix(n, dim), T: make([]float64, n)}
	for i := 0; i < n; i++ {
		for j := 0; j < dim; j++ {
			b.X.Set(i, j, r.NormFloat64())
		}
		b.T[i] = r.NormFloat64()
	}
	return b
}

func checkGrad(t *testing.T, n *Network, b data.Batch, tol float64) {
	t.Helper()
	n.InitParams(rng.New(99))
	if worst := GradCheck(n, b, 1e-5); worst > tol {
		t.Fatalf("gradient check failed: max relative error %v > %v", worst, tol)
	}
}

func TestGradDense(t *testing.T) {
	n := NewNetwork(SoftmaxCrossEntropy{}, 3, NewDense(4, 3))
	checkGrad(t, n, classBatch(4, 3, 5, 1), 1e-5)
}

func TestGradMSE(t *testing.T) {
	n := NewNetwork(MSE{}, 0, NewDense(4, 1))
	checkGrad(t, n, regBatch(4, 5, 2), 1e-5)
}

func TestGradMLP(t *testing.T) {
	n := NewMLP(5, []int{7, 6}, 3)
	checkGrad(t, n, classBatch(5, 3, 4, 3), 1e-4)
}

func TestGradTanh(t *testing.T) {
	n := NewNetwork(SoftmaxCrossEntropy{}, 2,
		NewDense(3, 4), NewTanh(4), NewDense(4, 2))
	checkGrad(t, n, classBatch(3, 2, 4, 4), 1e-5)
}

func TestGradConv(t *testing.T) {
	conv := NewConv2D(2, 4, 4, 3, 1, 1, 3)
	n := NewNetwork(SoftmaxCrossEntropy{}, 2,
		conv, NewReLU(conv.OutDim()), NewDense(conv.OutDim(), 2))
	checkGrad(t, n, classBatch(2*4*4, 2, 3, 5), 1e-4)
}

func TestGradConvStride2(t *testing.T) {
	conv := NewConv2D(1, 6, 6, 3, 2, 1, 2)
	n := NewNetwork(SoftmaxCrossEntropy{}, 2,
		conv, NewDense(conv.OutDim(), 2))
	checkGrad(t, n, classBatch(36, 2, 3, 6), 1e-4)
}

func TestGradMaxPool(t *testing.T) {
	pool := NewMaxPool2x2(2, 4, 4)
	n := NewNetwork(SoftmaxCrossEntropy{}, 2,
		pool, NewDense(pool.OutDim(), 2))
	checkGrad(t, n, classBatch(2*4*4, 2, 3, 7), 1e-4)
}

func TestGradResidual(t *testing.T) {
	res := NewResidual(NewDense(5, 5), NewReLU(5), NewDense(5, 5))
	n := NewNetwork(SoftmaxCrossEntropy{}, 2, res, NewDense(5, 2))
	checkGrad(t, n, classBatch(5, 2, 4, 8), 1e-4)
}

func TestGradVGGNano(t *testing.T) {
	shape := data.ImageShape{Channels: 1, Height: 8, Width: 8}
	n := NewVGGNano(shape, 3)
	checkGrad(t, n, classBatch(shape.Len(), 3, 2, 9), 1e-3)
}

func TestGradResNetNano(t *testing.T) {
	shape := data.ImageShape{Channels: 1, Height: 8, Width: 8}
	n := NewResNetNano(shape, 3)
	checkGrad(t, n, classBatch(shape.Len(), 3, 2, 10), 1e-3)
}

func TestSoftmaxLossValue(t *testing.T) {
	// Uniform logits over K classes give loss log(K).
	out := tensor.NewMatrix(2, 4)
	b := data.Batch{Y: []int{0, 3}}
	loss := SoftmaxCrossEntropy{}.Eval(out, b, nil)
	if math.Abs(loss-math.Log(4)) > 1e-12 {
		t.Fatalf("uniform softmax loss = %v, want %v", loss, math.Log(4))
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	out := tensor.NewMatrix(1, 3)
	out.Set(0, 0, 1e4) // would overflow exp without the max shift
	out.Set(0, 1, 0)
	out.Set(0, 2, -1e4)
	b := data.Batch{Y: []int{0}}
	d := tensor.NewMatrix(1, 3)
	loss := SoftmaxCrossEntropy{}.Eval(out, b, d)
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("unstable loss %v", loss)
	}
	if loss > 1e-6 {
		t.Fatalf("confident correct prediction should have ~0 loss, got %v", loss)
	}
}

func TestMSELossValue(t *testing.T) {
	out := tensor.NewMatrix(2, 1)
	out.Set(0, 0, 3)
	out.Set(1, 0, -1)
	b := data.Batch{T: []float64{1, -1}}
	loss := MSE{}.Eval(out, b, nil)
	// (0.5*4 + 0.5*0)/2 = 1
	if math.Abs(loss-1) > 1e-12 {
		t.Fatalf("MSE = %v, want 1", loss)
	}
}

func TestNetworkDimsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched layer dims")
		}
	}()
	NewNetwork(SoftmaxCrossEntropy{}, 2, NewDense(3, 4), NewDense(5, 2))
}

func TestCloneIndependence(t *testing.T) {
	n := NewMLP(4, []int{5}, 3)
	n.InitParams(rng.New(1))
	c := n.Clone()
	if c.ParamLen() != n.ParamLen() {
		t.Fatal("clone has different param count")
	}
	for i := range n.Params() {
		if n.Params()[i] != c.Params()[i] {
			t.Fatal("clone params differ")
		}
	}
	c.Params()[0] += 1
	if n.Params()[0] == c.Params()[0] {
		t.Fatal("clone shares parameter storage")
	}
	// Both must produce valid losses after divergence (independent caches).
	b := classBatch(4, 3, 6, 11)
	_ = n.Loss(b)
	_ = c.Loss(b)
}

func TestCloneSameForward(t *testing.T) {
	shape := data.ImageShape{Channels: 1, Height: 4, Width: 4}
	n := NewVGGNano(shape, 2)
	n.InitParams(rng.New(5))
	c := n.Clone()
	b := classBatch(shape.Len(), 2, 3, 12)
	if l1, l2 := n.Loss(b), c.Loss(b); l1 != l2 {
		t.Fatalf("clone loss %v != original %v", l2, l1)
	}
}

func TestAccuracy(t *testing.T) {
	// A hand-built 2-class "network" that always predicts class argmax of
	// the first two inputs. Use identity-ish dense weights.
	n := NewNetwork(SoftmaxCrossEntropy{}, 2, NewDense(2, 2))
	p := n.Params()
	// W = I, b = 0 -> logits = inputs.
	p[0], p[1], p[2], p[3] = 1, 0, 0, 1
	b := data.Batch{X: tensor.NewMatrix(3, 2), Y: []int{0, 1, 1}}
	b.X.Set(0, 0, 2) // predicts 0, correct
	b.X.Set(1, 1, 2) // predicts 1, correct
	b.X.Set(2, 0, 2) // predicts 0, wrong
	if acc := n.Accuracy(b); math.Abs(acc-2.0/3) > 1e-12 {
		t.Fatalf("accuracy %v, want 2/3", acc)
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	// Plain GD on a tiny separable problem must reduce the loss; this is
	// the end-to-end sanity check of the forward/backward plumbing.
	ds := data.GaussianBlobs(data.GaussianBlobsConfig{
		Classes: 3, Dim: 6, N: 120, Separation: 5, Noise: 0.5,
	}, rng.New(13))
	n := NewLogisticRegression(6, 3)
	n.InitParams(rng.New(14))
	b := data.FullBatch(ds)
	grad := make([]float64, n.ParamLen())
	first := n.Loss(b)
	for it := 0; it < 200; it++ {
		n.LossGrad(b, grad)
		tensor.Axpy(-0.5, grad, n.Params())
	}
	last := n.Loss(b)
	if last >= first/4 {
		t.Fatalf("GD failed to reduce loss: %v -> %v", first, last)
	}
	if acc := n.Accuracy(b); acc < 0.9 {
		t.Fatalf("accuracy %v too low on separable data", acc)
	}
}

func TestMLPLearnsNonlinear(t *testing.T) {
	// Two-spirals is not linearly separable: logistic regression plateaus
	// near 50% while a small MLP exceeds 75% — evidence the hidden layers
	// and their gradients genuinely work.
	ds := data.TwoSpirals(300, 0.02, rng.New(15))
	b := data.FullBatch(ds)

	mlp := NewMLP(2, []int{32, 32}, 2)
	mlp.InitParams(rng.New(16))
	grad := make([]float64, mlp.ParamLen())
	for it := 0; it < 1500; it++ {
		mlp.LossGrad(b, grad)
		tensor.Axpy(-0.5, grad, mlp.Params())
	}
	if acc := mlp.Accuracy(b); acc < 0.75 {
		t.Fatalf("MLP accuracy %v too low on spirals", acc)
	}
}

func TestVGGNanoLearnsImages(t *testing.T) {
	shape := data.ImageShape{Channels: 1, Height: 8, Width: 8}
	ds := data.SynthImages(data.SynthImagesConfig{
		Classes: 3, Shape: shape, N: 90, Noise: 0.1,
	}, rng.New(17))
	b := data.FullBatch(ds)
	n := NewVGGNano(shape, 3)
	n.InitParams(rng.New(18))
	grad := make([]float64, n.ParamLen())
	first := n.Loss(b)
	for it := 0; it < 150; it++ {
		n.LossGrad(b, grad)
		tensor.Axpy(-0.05, grad, n.Params())
	}
	last := n.Loss(b)
	if last >= 0.9*first {
		t.Fatalf("VGGNano failed to learn: %v -> %v", first, last)
	}
}

func TestParamLenConsistency(t *testing.T) {
	shape := data.ImageShape{Channels: 3, Height: 8, Width: 8}
	for name, n := range map[string]*Network{
		"logistic": NewLogisticRegression(10, 4),
		"mlp":      NewMLP(10, []int{20}, 4),
		"vgg":      NewVGGNano(shape, 10),
		"resnet":   NewResNetNano(shape, 10),
	} {
		if n.ParamLen() != len(n.Params()) {
			t.Fatalf("%s: ParamLen %d != len(Params) %d", name, n.ParamLen(), len(n.Params()))
		}
		if n.ParamLen() == 0 {
			t.Fatalf("%s: zero parameters", name)
		}
	}
}

func TestSetParams(t *testing.T) {
	n := NewLogisticRegression(3, 2)
	src := make([]float64, n.ParamLen())
	for i := range src {
		src[i] = float64(i)
	}
	n.SetParams(src)
	for i, v := range n.Params() {
		if v != float64(i) {
			t.Fatal("SetParams did not copy")
		}
	}
	src[0] = 999
	if n.Params()[0] == 999 {
		t.Fatal("SetParams aliases source")
	}
}

func TestLossGradZeroesGrad(t *testing.T) {
	n := NewLogisticRegression(3, 2)
	n.InitParams(rng.New(19))
	b := classBatch(3, 2, 4, 20)
	grad := make([]float64, n.ParamLen())
	tensor.Fill(grad, 1e9) // stale garbage must be cleared
	n.LossGrad(b, grad)
	for _, g := range grad {
		if math.Abs(g) > 1e6 {
			t.Fatal("LossGrad did not zero the gradient buffer")
		}
	}
}
