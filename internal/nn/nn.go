// Package nn is the hand-rolled neural-network substrate for the AdaComm
// reproduction: a small layer zoo (dense, conv, pooling, residual blocks),
// softmax-cross-entropy and MSE losses, and a Network type with exact
// analytic gradients verified by finite differences.
//
// The paper trains VGG-16 and ResNet-50; this package provides "VGGNano"
// and "ResNetNano" — architecturally faithful miniatures (conv stacks with
// pooling; residual skip connections) sized so that thousands of mini-batch
// SGD steps run in seconds on a CPU. What the error-runtime analysis needs
// from the model is only non-convexity, smoothness, and stochastic-gradient
// noise; both miniatures provide all three.
//
// All model parameters live in one flat []float64 so that PASGD's model
// averaging (paper eq 3) is a single vector mean, and so workers can
// exchange parameters without reflection or serialization overhead.
package nn

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Layer is one differentiable stage of a network. A layer owns forward
// caches AND the scratch matrices it returns from Forward/Backward (it is
// NOT safe for concurrent use); each simulated worker clones the network so
// the caches never race. Returned matrices are reused across calls: they
// remain valid only until the layer's next Forward/Backward, and callers
// that retain results must copy them.
type Layer interface {
	// InDim and OutDim are the flattened input/output lengths per example.
	InDim() int
	OutDim() int
	// ParamLen is the number of parameters this layer owns.
	ParamLen() int
	// Init writes an initialization into params (length ParamLen).
	Init(params []float64, r *rng.Rand)
	// Forward computes the layer output for a batch (rows are examples)
	// and caches whatever Backward needs.
	Forward(params []float64, in *tensor.Matrix) *tensor.Matrix
	// Backward consumes the gradient w.r.t. the layer output, accumulates
	// the parameter gradient into dParams (length ParamLen, NOT zeroed),
	// and returns the gradient w.r.t. the layer input.
	Backward(params []float64, dOut *tensor.Matrix, dParams []float64) *tensor.Matrix
	// Clone returns a fresh layer with identical configuration and empty
	// caches. Parameters live outside the layer, so Clone is cheap.
	Clone() Layer
}

// Loss maps network outputs and batch targets to a scalar mean loss and,
// optionally, the gradient w.r.t. the outputs.
type Loss interface {
	// Eval returns the mean loss over the batch. If dOut is non-nil it is
	// filled with d(meanLoss)/d(out).
	Eval(out *tensor.Matrix, b data.Batch, dOut *tensor.Matrix) float64
	// Name identifies the loss in logs.
	Name() string
}

// Network is a sequential stack of layers with one flat parameter vector.
// It implements the Model contract used by the cluster engine.
type Network struct {
	layers  []Layer
	offsets []int // parameter offset per layer
	params  []float64
	loss    Loss
	classes int // >0 when the network is a classifier

	dOutBuf *tensor.Matrix // scratch for the loss gradient in LossGrad
}

// NewNetwork builds a network from layers and a loss, validating that
// adjacent dimensions agree. classes > 0 marks a classifier whose output
// dimension must equal classes.
func NewNetwork(loss Loss, classes int, layers ...Layer) *Network {
	if len(layers) == 0 {
		panic("nn: network needs at least one layer")
	}
	total := 0
	offsets := make([]int, len(layers))
	for i, l := range layers {
		if i > 0 && layers[i-1].OutDim() != l.InDim() {
			panic(fmt.Sprintf("nn: layer %d out dim %d != layer %d in dim %d",
				i-1, layers[i-1].OutDim(), i, l.InDim()))
		}
		offsets[i] = total
		total += l.ParamLen()
	}
	if classes > 0 && layers[len(layers)-1].OutDim() != classes {
		panic(fmt.Sprintf("nn: classifier output dim %d != classes %d",
			layers[len(layers)-1].OutDim(), classes))
	}
	return &Network{
		layers:  layers,
		offsets: offsets,
		params:  make([]float64, total),
		loss:    loss,
		classes: classes,
	}
}

// InitParams initializes every layer's parameters from r.
func (n *Network) InitParams(r *rng.Rand) {
	for i, l := range n.layers {
		l.Init(n.layerParams(i), r)
	}
}

func (n *Network) layerParams(i int) []float64 {
	return n.params[n.offsets[i] : n.offsets[i]+n.layers[i].ParamLen()]
}

// ParamLen returns the total number of parameters.
func (n *Network) ParamLen() int { return len(n.params) }

// Params returns the live flat parameter vector (mutations are visible to
// the network).
func (n *Network) Params() []float64 { return n.params }

// SetParams copies src into the network's parameters.
func (n *Network) SetParams(src []float64) { tensor.Copy(n.params, src) }

// InDim returns the expected input dimensionality.
func (n *Network) InDim() int { return n.layers[0].InDim() }

// OutDim returns the output dimensionality.
func (n *Network) OutDim() int { return n.layers[len(n.layers)-1].OutDim() }

// Forward runs the batch through all layers and returns the outputs.
func (n *Network) Forward(in *tensor.Matrix) *tensor.Matrix {
	cur := in
	for i, l := range n.layers {
		cur = l.Forward(n.layerParams(i), cur)
	}
	return cur
}

// Loss evaluates the mean loss on the batch without computing gradients.
func (n *Network) Loss(b data.Batch) float64 {
	out := n.Forward(b.X)
	return n.loss.Eval(out, b, nil)
}

// LossGrad evaluates the mean loss and fills grad (length ParamLen) with
// its gradient. grad is zeroed first.
func (n *Network) LossGrad(b data.Batch, grad []float64) float64 {
	if len(grad) != len(n.params) {
		panic(fmt.Sprintf("nn: grad length %d != params %d", len(grad), len(n.params)))
	}
	tensor.Zero(grad)
	out := n.Forward(b.X)
	dOut := ensureMat(&n.dOutBuf, out.Rows, out.Cols)
	lossVal := n.loss.Eval(out, b, dOut)
	cur := dOut
	for i := len(n.layers) - 1; i >= 0; i-- {
		cur = n.layers[i].Backward(n.layerParams(i),
			cur, grad[n.offsets[i]:n.offsets[i]+n.layers[i].ParamLen()])
	}
	return lossVal
}

// Accuracy returns the fraction of batch examples whose argmax output
// matches the label. Panics for non-classifiers.
func (n *Network) Accuracy(b data.Batch) float64 {
	if n.classes == 0 {
		panic("nn: Accuracy on a non-classifier")
	}
	out := n.Forward(b.X)
	correct := 0
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		best := 0
		for j := 1; j < len(row); j++ {
			if row[j] > row[best] {
				best = j
			}
		}
		if best == b.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(out.Rows)
}

// Clone returns an independent copy: fresh layer caches, copied parameters.
func (n *Network) Clone() *Network {
	layers := make([]Layer, len(n.layers))
	for i, l := range n.layers {
		layers[i] = l.Clone()
	}
	c := NewNetwork(n.loss, n.classes, layers...)
	copy(c.params, n.params)
	return c
}

// LossName reports the loss function identifier.
func (n *Network) LossName() string { return n.loss.Name() }

// NumLayers returns the number of layers (for introspection in tests).
func (n *Network) NumLayers() int { return len(n.layers) }
