package nn

import (
	"repro/internal/data"
)

// Model zoo: constructors for the architectures used by the reproduction's
// experiments. Each returns an uninitialized Network; call InitParams.

// NewLinearRegression builds a one-layer linear model with MSE loss —
// the convex workload on which Theorem 1's constants can be estimated.
func NewLinearRegression(dim int) *Network {
	return NewNetwork(MSE{}, 0, NewDense(dim, 1))
}

// NewLogisticRegression builds a linear softmax classifier: convex, cheap,
// and the workhorse for the runtime-focused experiments where the model
// only needs a visible noise floor.
func NewLogisticRegression(dim, classes int) *Network {
	return NewNetwork(SoftmaxCrossEntropy{}, classes, NewDense(dim, classes))
}

// NewMLP builds a fully connected ReLU network with the given hidden sizes.
func NewMLP(dim int, hidden []int, classes int) *Network {
	layers := make([]Layer, 0, 2*len(hidden)+1)
	cur := dim
	for _, h := range hidden {
		layers = append(layers, NewDense(cur, h), NewReLU(h))
		cur = h
	}
	layers = append(layers, NewDense(cur, classes))
	return NewNetwork(SoftmaxCrossEntropy{}, classes, layers...)
}

// NewVGGNano builds the VGG-16 stand-in: two conv+ReLU+maxpool stages
// followed by a fully connected classifier head. Like VGG it is a plain
// feed-forward conv stack with pooling halving the resolution per stage and
// a parameter-heavy dense head — which is exactly why its communication/
// computation ratio is high (paper Fig 8): most parameters sit in cheap
// dense layers, so comm cost per step dominates compute.
func NewVGGNano(shape data.ImageShape, classes int) *Network {
	c, h, w := shape.Channels, shape.Height, shape.Width
	conv1 := NewConv2D(c, h, w, 3, 1, 1, 8)
	_, h1, w1 := conv1.OutShape()
	pool1 := NewMaxPool2x2(8, h1, w1)
	_, h1p, w1p := pool1.OutShape()
	conv2 := NewConv2D(8, h1p, w1p, 3, 1, 1, 16)
	_, h2, w2 := conv2.OutShape()
	pool2 := NewMaxPool2x2(16, h2, w2)
	_, h2p, w2p := pool2.OutShape()
	flat := 16 * h2p * w2p
	return NewNetwork(SoftmaxCrossEntropy{}, classes,
		conv1, NewReLU(conv1.OutDim()),
		pool1,
		conv2, NewReLU(conv2.OutDim()),
		pool2,
		NewDense(flat, 64), NewReLU(64),
		NewDense(64, classes),
	)
}

// NewResNetNano builds the ResNet-50 stand-in: a conv stem, two identity
// residual blocks, pooling, and a light classifier head. Like ResNet its
// compute-per-parameter is high (deep conv trunk, tiny head), which gives
// it the LOW communication/computation ratio the paper reports in Fig 8.
func NewResNetNano(shape data.ImageShape, classes int) *Network {
	c, h, w := shape.Channels, shape.Height, shape.Width
	stem := NewConv2D(c, h, w, 3, 1, 1, 8)
	_, hs, ws := stem.OutShape()

	block := func() Layer {
		conv1 := NewConv2D(8, hs, ws, 3, 1, 1, 8)
		conv2 := NewConv2D(8, hs, ws, 3, 1, 1, 8)
		return NewResidual(conv1, NewReLU(conv1.OutDim()), conv2)
	}

	pool := NewMaxPool2x2(8, hs, ws)
	_, hp, wp := pool.OutShape()
	flat := 8 * hp * wp
	return NewNetwork(SoftmaxCrossEntropy{}, classes,
		stem, NewReLU(stem.OutDim()),
		block(), NewReLU(stem.OutDim()),
		block(), NewReLU(stem.OutDim()),
		pool,
		NewDense(flat, classes),
	)
}
