package compress

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func testVec(dim int, seed uint64) []float64 {
	r := rng.New(seed)
	v := make([]float64, dim)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

func TestIdentityRoundTripExact(t *testing.T) {
	v := testVec(257, 1)
	c := Identity{}
	msg, err := c.Compress(v)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Bytes() != 8*len(v) {
		t.Fatalf("identity bytes %d, want %d", msg.Bytes(), 8*len(v))
	}
	out := make([]float64, len(v))
	if err := c.Decompress(msg, out); err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if out[i] != v[i] {
			t.Fatalf("identity not exact at %d: %v != %v", i, out[i], v[i])
		}
	}
	// The message must not alias the input.
	v[0] += 1
	if msg.Dense[0] == v[0] {
		t.Fatal("identity message aliases input")
	}
}

func TestTopKSupport(t *testing.T) {
	dim := 200
	v := testVec(dim, 2)
	c := NewTopK(0.1) // k = 20
	msg, err := c.Compress(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.Indices) != 20 {
		t.Fatalf("topk support %d, want 20", len(msg.Indices))
	}
	if msg.Bytes() != 20*12 {
		t.Fatalf("topk bytes %d, want 240", msg.Bytes())
	}
	// Every kept magnitude must be >= every dropped magnitude.
	kept := map[int32]bool{}
	minKept := math.Inf(1)
	for j, ix := range msg.Indices {
		kept[ix] = true
		if msg.Values[j] != v[ix] {
			t.Fatalf("topk value mismatch at %d", ix)
		}
		if m := math.Abs(v[ix]); m < minKept {
			minKept = m
		}
	}
	for i, x := range v {
		if !kept[int32(i)] && math.Abs(x) > minKept {
			t.Fatalf("dropped coordinate %d (|%v|) exceeds kept minimum %v", i, x, minKept)
		}
	}
	out := make([]float64, dim)
	if err := c.Decompress(msg, out); err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if kept[int32(i)] && out[i] != v[i] {
			t.Fatal("kept coordinate altered")
		}
		if !kept[int32(i)] && out[i] != 0 {
			t.Fatal("dropped coordinate nonzero")
		}
	}
}

func TestTopKTies(t *testing.T) {
	v := []float64{1, -1, 1, -1, 1, -1}
	c := NewTopK(0.5) // k = 3 among all-equal magnitudes
	msg, err := c.Compress(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.Indices) != 3 {
		t.Fatalf("tie support %d, want 3", len(msg.Indices))
	}
	// Ties resolve in ascending index order.
	for j, ix := range msg.Indices {
		if ix != int32(j) {
			t.Fatalf("tie order %v, want [0 1 2]", msg.Indices)
		}
	}
}

// unbiasednessCheck compresses v repeatedly with a fresh stochastic stream
// per trial and asserts the empirical mean reconstruction approaches v.
func unbiasednessCheck(t *testing.T, v []float64, build func(r *rng.Rand) Compressor, trials int, tol float64) {
	t.Helper()
	dim := len(v)
	sum := make([]float64, dim)
	out := make([]float64, dim)
	root := rng.New(99)
	for n := 0; n < trials; n++ {
		c := build(root.Split())
		msg, err := c.Compress(v)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Decompress(msg, out); err != nil {
			t.Fatal(err)
		}
		for i := range sum {
			sum[i] += out[i]
		}
	}
	num, den := 0.0, 0.0
	for i := range v {
		d := sum[i]/float64(trials) - v[i]
		num += d * d
		den += v[i] * v[i]
	}
	if rel := math.Sqrt(num / den); rel > tol {
		t.Fatalf("mean reconstruction off by %v (relative), want <= %v", rel, tol)
	}
}

func TestRandKUnbiased(t *testing.T) {
	v := testVec(64, 3)
	unbiasednessCheck(t, v, func(r *rng.Rand) Compressor { return NewRandK(0.25, r) }, 4000, 0.1)
}

func TestQSGDUnbiased(t *testing.T) {
	v := testVec(64, 4)
	unbiasednessCheck(t, v, func(r *rng.Rand) Compressor { return NewQSGD(2, r) }, 4000, 0.1)
}

func TestQSGDRoundTripShape(t *testing.T) {
	v := testVec(100, 5)
	c := NewQSGD(4, rng.New(6))
	msg, err := c.Compress(v)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := 8 + (100*5+7)/8
	if msg.Bytes() != wantBytes {
		t.Fatalf("qsgd bytes %d, want %d", msg.Bytes(), wantBytes)
	}
	out := make([]float64, 100)
	if err := c.Decompress(msg, out); err != nil {
		t.Fatal(err)
	}
	// Reconstruction error is bounded by one quantization level per coord.
	s := float64(15)
	for i := range v {
		if math.Abs(out[i]-v[i]) > msg.Norm/s+1e-12 {
			t.Fatalf("qsgd error at %d exceeds one level: %v vs %v", i, out[i], v[i])
		}
	}
}

func TestQSGDZeroVector(t *testing.T) {
	c := NewQSGD(4, rng.New(7))
	msg, err := c.Compress(make([]float64, 10))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 10)
	if err := c.Decompress(msg, out); err != nil {
		t.Fatal(err)
	}
	for _, x := range out {
		if x != 0 {
			t.Fatal("zero vector must round-trip to zero")
		}
	}
}

func TestErrorFeedbackResidualBounded(t *testing.T) {
	// Compressing the same vector under top-k with error feedback: the
	// residual norm must stay bounded (contractive compressor), and the
	// running mean of the emitted messages must converge to the input —
	// nothing is permanently lost.
	dim := 128
	v := testVec(dim, 8)
	vNorm := norm(v)
	ef := WithErrorFeedback(NewTopK(0.1))
	out := make([]float64, dim)
	acc := make([]float64, dim)
	rounds := 200
	for n := 0; n < rounds; n++ {
		msg, err := ef.Compress(v)
		if err != nil {
			t.Fatal(err)
		}
		if err := ef.Decompress(msg, out); err != nil {
			t.Fatal(err)
		}
		for i := range acc {
			acc[i] += out[i]
		}
		if rn := ef.ResidualNorm(); rn > 5*vNorm {
			t.Fatalf("round %d: residual norm %v blew past 5*||v||=%v", n, rn, 5*vNorm)
		}
	}
	num := 0.0
	for i := range v {
		d := acc[i]/float64(rounds) - v[i]
		num += d * d
	}
	if rel := math.Sqrt(num) / vNorm; rel > 0.05 {
		t.Fatalf("error feedback lost mass: mean output off by %v relative", rel)
	}
}

func TestErrorFeedbackNameAndAdaptive(t *testing.T) {
	ef := WithErrorFeedback(NewTopK(0.2))
	if ef.Name() != "topk:0.2+ef" {
		t.Fatalf("name %q", ef.Name())
	}
	ef.SetRatio(0.5)
	if ef.Ratio() != 0.5 {
		t.Fatalf("ratio %v after SetRatio(0.5)", ef.Ratio())
	}
}

func TestAdaptiveRatioChangesSupport(t *testing.T) {
	v := testVec(100, 9)
	c := NewTopK(0.1)
	a := c.(Adaptive)
	msg, _ := c.Compress(v)
	if len(msg.Indices) != 10 {
		t.Fatalf("support %d, want 10", len(msg.Indices))
	}
	a.SetRatio(0.5)
	msg, _ = c.Compress(v)
	if len(msg.Indices) != 50 {
		t.Fatalf("support %d after SetRatio(0.5), want 50", len(msg.Indices))
	}
}

func TestQSGDAdaptiveRatio(t *testing.T) {
	q := NewQSGD(8, rng.New(10)).(Adaptive)
	q.SetRatio(0.5)
	if q.Ratio() != 0.5 {
		t.Fatalf("qsgd ratio %v, want 0.5 (4 bits)", q.Ratio())
	}
	q.SetRatio(0.01)
	if q.Ratio() != 1.0/8 {
		t.Fatalf("qsgd ratio %v, want 1/8 (floor at 1 bit)", q.Ratio())
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"none", Spec{}},
		{"identity", Spec{Kind: KindIdentity}},
		{"topk:0.01", Spec{Kind: KindTopK, Ratio: 0.01}},
		{"randk:0.05+ef", Spec{Kind: KindRandK, Ratio: 0.05, ErrorFeedback: true}},
		{"qsgd:4", Spec{Kind: KindQSGD, Bits: 4}},
		{"topk:0.25+ef", Spec{Kind: KindTopK, Ratio: 0.25, ErrorFeedback: true}},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
		if _, err := ParseSpec(got.String()); err != nil {
			t.Fatalf("String round-trip of %q failed: %v", c.in, err)
		}
	}
	for _, bad := range []string{"topk", "topk:2", "topk:0", "qsgd:9", "qsgd:x", "zip:3", "none+ef", "topk:0.1+zstd"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestSpecWireBytesMatchesMessage(t *testing.T) {
	dim := 333
	v := testVec(dim, 11)
	specs := []Spec{
		{Kind: KindIdentity},
		{Kind: KindTopK, Ratio: 0.1},
		{Kind: KindRandK, Ratio: 0.05},
		{Kind: KindQSGD, Bits: 4},
		{Kind: KindTopK, Ratio: 0.1, ErrorFeedback: true},
	}
	for _, s := range specs {
		c, err := s.New(rng.New(12))
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		msg, err := c.Compress(v)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if msg.Bytes() != s.WireBytes(dim) {
			t.Fatalf("%s: message bytes %d != WireBytes %d", s, msg.Bytes(), s.WireBytes(dim))
		}
	}
	if none := (Spec{}); none.WireBytes(dim) != 8*dim {
		t.Fatal("none spec must charge dense payload")
	}
}

func TestSpecNewNone(t *testing.T) {
	c, err := Spec{}.New(nil)
	if err != nil || c != nil {
		t.Fatalf("None spec: got (%v, %v), want (nil, nil)", c, err)
	}
}

func TestDecompressDimMismatch(t *testing.T) {
	c := Identity{}
	msg, _ := c.Compress(make([]float64, 4))
	if err := c.Decompress(msg, make([]float64, 5)); err == nil {
		t.Fatal("accepted wrong dst length")
	}
}

func TestSelectKthLargest(t *testing.T) {
	a := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	// Descending: 9 6 5 5 4 3 3 2 1 1
	want := []float64{9, 6, 5, 5, 4, 3, 3, 2, 1, 1}
	for k := 1; k <= len(a); k++ {
		scratch := append([]float64(nil), a...)
		if got := selectKthLargest(scratch, k); got != want[k-1] {
			t.Fatalf("k=%d: got %v, want %v", k, got, want[k-1])
		}
	}
}

func norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func TestDecodeMatchesDecompress(t *testing.T) {
	// Message-driven Decode must agree with every compressor's own
	// Decompress, and AddDecoded must accumulate the same reconstruction.
	r := rng.New(60)
	vec := make([]float64, 257)
	for i := range vec {
		vec[i] = r.NormFloat64()
	}
	specs := []Spec{
		{Kind: KindIdentity},
		{Kind: KindTopK, Ratio: 0.1},
		{Kind: KindRandK, Ratio: 0.2},
		{Kind: KindQSGD, Bits: 5},
	}
	for _, spec := range specs {
		c, err := spec.New(r.Split())
		if err != nil {
			t.Fatal(err)
		}
		msg, err := c.Compress(vec)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, len(vec))
		if err := c.Decompress(msg, want); err != nil {
			t.Fatal(err)
		}
		got := make([]float64, len(vec))
		if err := Decode(msg, got); err != nil {
			t.Fatal(err)
		}
		base := make([]float64, len(vec))
		for i := range base {
			base[i] = float64(i)
		}
		acc := append([]float64(nil), base...)
		if err := AddDecoded(msg, acc); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: Decode diverged at %d: %v vs %v", spec, i, got[i], want[i])
			}
			if diff := acc[i] - base[i] - want[i]; diff < -1e-12 || diff > 1e-12 {
				t.Fatalf("%s: AddDecoded diverged at %d", spec, i)
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	dst := make([]float64, 3)
	bad := Message{Dim: 5, Enc: EncDense, Dense: make([]float64, 5)}
	if err := Decode(bad, dst); err == nil {
		t.Fatal("Decode accepted dim mismatch")
	}
	if err := AddDecoded(bad, dst); err == nil {
		t.Fatal("AddDecoded accepted dim mismatch")
	}
	unknown := Message{Dim: 3, Enc: Encoding(9)}
	if err := Decode(unknown, dst); err == nil {
		t.Fatal("Decode accepted unknown encoding")
	}
	if err := AddDecoded(unknown, dst); err == nil {
		t.Fatal("AddDecoded accepted unknown encoding")
	}
}
