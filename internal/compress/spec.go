package compress

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rng"
)

// Kind enumerates the shipped compression schemes. The zero value None means
// "no compressor": consumers take the legacy uncompressed code path, which is
// guaranteed bit-identical to the pre-compression simulator.
type Kind int

const (
	// None disables compression entirely.
	None Kind = iota
	// KindIdentity is the lossless dense encoding.
	KindIdentity
	// KindTopK keeps the largest-magnitude coordinates.
	KindTopK
	// KindRandK keeps a uniformly random subset, unbiasedly rescaled.
	KindRandK
	// KindQSGD stochastically quantizes to b bits per coordinate.
	KindQSGD
)

// Spec is a value-type description of a compressor, suitable for embedding
// in configuration structs and parsing from command-line flags. The zero
// value is None.
type Spec struct {
	Kind          Kind
	Ratio         float64    // keep-fraction for TopK/RandK, in (0, 1]
	Bits          int        // bit-width for QSGD, in [1, 8]
	ErrorFeedback bool       // wrap with residual accumulation
	Wire          WireFormat // value precision on the wire; zero = float64
}

// Enabled reports whether the spec changes what goes on the wire: a named
// compressor, or a float32 wire on an otherwise-uncompressed payload (the
// kind-None float32 spec routes through the compressed machinery with an
// identity base so every consumer narrows the same way).
func (s Spec) Enabled() bool { return s.Kind != None || s.Wire == WireFloat32 }

// Lossless reports whether encode(decode(v)) == v bitwise for every vector —
// a dense encoding at full wire precision. CHOCO gossip uses it to pin
// estimates exactly to the parameters they mirror.
func (s Spec) Lossless() bool {
	return (s.Kind == None || s.Kind == KindIdentity) && s.Wire == WireFloat64
}

// Validate checks the parameters for the chosen kind.
func (s Spec) Validate() error {
	if s.Wire != WireFloat64 && s.Wire != WireFloat32 {
		return fmt.Errorf("compress: unknown wire format %d", int(s.Wire))
	}
	switch s.Kind {
	case None, KindIdentity:
		return nil
	case KindTopK, KindRandK:
		if s.Ratio <= 0 || s.Ratio > 1 {
			return fmt.Errorf("compress: ratio %g out of (0,1]", s.Ratio)
		}
		return nil
	case KindQSGD:
		if s.Bits < 1 || s.Bits > 8 {
			return fmt.Errorf("compress: qsgd bits %d out of [1,8]", s.Bits)
		}
		return nil
	}
	return fmt.Errorf("compress: unknown kind %d", int(s.Kind))
}

// String renders the spec in the flag syntax accepted by ParseSpec.
func (s Spec) String() string {
	var base string
	switch s.Kind {
	case None:
		base = "none"
	case KindIdentity:
		base = "identity"
	case KindTopK:
		base = fmt.Sprintf("topk:%g", s.Ratio)
	case KindRandK:
		base = fmt.Sprintf("randk:%g", s.Ratio)
	case KindQSGD:
		base = fmt.Sprintf("qsgd:%d", s.Bits)
	default:
		base = fmt.Sprintf("kind(%d)", int(s.Kind))
	}
	if s.ErrorFeedback {
		base += "+ef"
	}
	if s.Wire == WireFloat32 {
		base += "+f32"
	}
	return base
}

// ParseSpec parses the flag syntax: "none", "identity", "topk:0.01",
// "randk:0.05", "qsgd:4", each optionally suffixed with "+ef" for error
// feedback and/or "+f32" for a float32 wire (e.g. "topk:0.01+ef+f32";
// "none+f32" narrows an otherwise-uncompressed payload).
func ParseSpec(str string) (Spec, error) {
	var s Spec
	parts := strings.Split(str, "+")
	for _, mod := range parts[1:] {
		switch mod {
		case "ef":
			s.ErrorFeedback = true
		case "f32":
			s.Wire = WireFloat32
		default:
			return s, fmt.Errorf("compress: unknown modifier %q in %q", mod, str)
		}
	}
	base, arg, hasArg := strings.Cut(parts[0], ":")
	switch base {
	case "none", "":
		if s.ErrorFeedback {
			return s, fmt.Errorf("compress: error feedback needs a compressor, got %q", str)
		}
		return Spec{Wire: s.Wire}, nil
	case "identity":
		s.Kind = KindIdentity
	case "topk", "randk":
		if base == "topk" {
			s.Kind = KindTopK
		} else {
			s.Kind = KindRandK
		}
		if !hasArg {
			return s, fmt.Errorf("compress: %s needs a ratio, e.g. %s:0.01", base, base)
		}
		r, err := strconv.ParseFloat(arg, 64)
		if err != nil {
			return s, fmt.Errorf("compress: bad ratio in %q: %v", str, err)
		}
		s.Ratio = r
	case "qsgd":
		s.Kind = KindQSGD
		if !hasArg {
			return s, fmt.Errorf("compress: qsgd needs a bit-width, e.g. qsgd:4")
		}
		b, err := strconv.Atoi(arg)
		if err != nil {
			return s, fmt.Errorf("compress: bad bit-width in %q: %v", str, err)
		}
		s.Bits = b
	default:
		return s, fmt.Errorf("compress: unknown compressor %q", base)
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// New builds one compressor instance. Stochastic kinds (RandK, QSGD) draw
// from r, which must not be shared with other consumers; deterministic kinds
// ignore it. New returns (nil, nil) for the None spec.
func (s Spec) New(r *rng.Rand) (Compressor, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var c Compressor
	switch s.Kind {
	case None:
		if s.Wire != WireFloat32 {
			return nil, nil
		}
		// Wire-only spec: identity base, so the narrowing wrapper below is
		// the whole transform.
		c = Identity{}
	case KindIdentity:
		c = Identity{}
	case KindTopK:
		c = NewTopK(s.Ratio)
	case KindRandK:
		if r == nil {
			return nil, fmt.Errorf("compress: randk needs a random stream")
		}
		c = NewRandK(s.Ratio, r)
	case KindQSGD:
		if r == nil {
			return nil, fmt.Errorf("compress: qsgd needs a random stream")
		}
		c = NewQSGD(s.Bits, r)
	}
	if s.Wire == WireFloat32 {
		c = wireNarrow{inner: c}
	}
	// ErrorFeedback wraps outermost so the residual captures everything the
	// wire dropped, including float32 narrowing loss.
	if s.ErrorFeedback {
		c = WithErrorFeedback(c)
	}
	return c, nil
}

// InitialRatio returns the keep-ratio the spec starts at, in the Adaptive
// convention: the sparsifier's keep-fraction, the quantizer's bits/8, and 1
// for lossless kinds. It seeds the joint controller's Ratio0 consistently
// with what SetRatio/Ratio report on the built compressor.
func (s Spec) InitialRatio() float64 {
	switch s.Kind {
	case KindTopK, KindRandK:
		return s.Ratio
	case KindQSGD:
		return float64(s.Bits) / 8
	}
	return 1
}

// WireBytes returns the (data-independent) payload size of one message for a
// vector of the given dimension — what a scheduler can charge before any
// gradient is materialized. It matches Message.Bytes for every shipped
// compressor.
func (s Spec) WireBytes(dim int) int {
	vb := s.Wire.valueBytes()
	switch s.Kind {
	case None, KindIdentity:
		return vb * dim
	case KindTopK, KindRandK:
		return keepCount(s.Ratio, dim) * (4 + vb)
	case KindQSGD:
		return vb + (dim*(s.Bits+1)+7)/8
	}
	panic(fmt.Sprintf("compress: unknown kind %d", int(s.Kind)))
}
