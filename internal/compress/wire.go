package compress

import "fmt"

// WireFormat selects the precision of VALUES on the wire. Model state is
// always float64; WireFloat32 makes the encode step a lossy boundary that
// rounds every transmitted value through float32 (round-to-nearest-even,
// relative error <= 2^-24 per finite value) and halves its payload
// accounting. Structural fields — sparse indices, quantization levels — are
// exact under either format; only dense payloads, sparse values, and the
// QSGD norm narrow.
type WireFormat int

const (
	// WireFloat64 is the full-precision default: the wire carries exactly
	// what the compressor produced.
	WireFloat64 WireFormat = iota
	// WireFloat32 rounds every transmitted value through float32 and
	// accounts 4 bytes per value instead of 8.
	WireFloat32
)

// String renders the flag syntax accepted by ParseWire.
func (w WireFormat) String() string {
	switch w {
	case WireFloat64:
		return "float64"
	case WireFloat32:
		return "float32"
	}
	return fmt.Sprintf("wire(%d)", int(w))
}

// valueBytes is the per-value payload accounting.
func (w WireFormat) valueBytes() int {
	if w == WireFloat32 {
		return 4
	}
	return 8
}

// ParseWire parses a wire-format flag value: "float64"/"f64" (or empty) and
// "float32"/"f32".
func ParseWire(str string) (WireFormat, error) {
	switch str {
	case "", "float64", "f64":
		return WireFloat64, nil
	case "float32", "f32":
		return WireFloat32, nil
	}
	return WireFloat64, fmt.Errorf("compress: unknown wire format %q (want float64 or float32)", str)
}

// Narrow32 rounds v through float32 precision — the value a float32 wire
// delivers to the receiver.
func Narrow32(v float64) float64 { return float64(float32(v)) }

// wireNarrow wraps a Compressor so its messages carry float32-rounded values
// and 4-byte-per-value accounting. Decompression needs no inverse: the
// narrowed float64 values decode exactly. Like ErrorFeedback, it passes
// Adaptive through to the inner compressor; wrap order in Spec.New puts
// ErrorFeedback outermost so the residual also captures narrowing loss.
type wireNarrow struct {
	inner Compressor
}

// Name implements Compressor.
func (w wireNarrow) Name() string { return w.inner.Name() + "+f32" }

// Compress narrows the inner compressor's message values in place (messages
// never alias compressor scratch, so this mutates only the fresh payload).
func (w wireNarrow) Compress(vec []float64) (Message, error) {
	msg, err := w.inner.Compress(vec)
	if err != nil {
		return Message{}, err
	}
	msg.Wire = WireFloat32
	for i, v := range msg.Dense {
		msg.Dense[i] = Narrow32(v)
	}
	for i, v := range msg.Values {
		msg.Values[i] = Narrow32(v)
	}
	msg.Norm = Narrow32(msg.Norm)
	return msg, nil
}

// Decompress implements Compressor.
func (w wireNarrow) Decompress(msg Message, dst []float64) error {
	return w.inner.Decompress(msg, dst)
}

// SetRatio implements Adaptive when the inner compressor does.
func (w wireNarrow) SetRatio(r float64) {
	if a, ok := w.inner.(Adaptive); ok {
		a.SetRatio(r)
	}
}

// Ratio implements Adaptive when the inner compressor does (1 otherwise).
func (w wireNarrow) Ratio() float64 {
	if a, ok := w.inner.(Adaptive); ok {
		return a.Ratio()
	}
	return 1
}

// SetBits implements BitSetter when the inner compressor does.
func (w wireNarrow) SetBits(b int) {
	if s, ok := w.inner.(BitSetter); ok {
		s.SetBits(b)
	}
}

// Bits implements BitSetter when the inner compressor does (0 otherwise).
func (w wireNarrow) Bits() int {
	if s, ok := w.inner.(BitSetter); ok {
		return s.Bits()
	}
	return 0
}
