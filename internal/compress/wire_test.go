package compress

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestParseWire(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want WireFormat
	}{
		{"", WireFloat64},
		{"float64", WireFloat64},
		{"f64", WireFloat64},
		{"float32", WireFloat32},
		{"f32", WireFloat32},
	} {
		got, err := ParseWire(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseWire(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseWire("float16"); err == nil {
		t.Error("ParseWire(float16) succeeded, want error")
	}
}

func TestParseSpecWireModifier(t *testing.T) {
	for _, str := range []string{"none+f32", "identity+f32", "topk:0.25+ef+f32", "qsgd:4+f32"} {
		s, err := ParseSpec(str)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", str, err)
		}
		if s.Wire != WireFloat32 {
			t.Errorf("ParseSpec(%q).Wire = %v, want WireFloat32", str, s.Wire)
		}
		if !s.Enabled() {
			t.Errorf("ParseSpec(%q).Enabled() = false, want true", str)
		}
		if got, err := ParseSpec(s.String()); err != nil || got != s {
			t.Errorf("round-trip %q -> %q -> %+v (err %v)", str, s.String(), got, err)
		}
	}
	if _, err := ParseSpec("none+ef+f32"); err == nil {
		t.Error("ParseSpec(none+ef+f32) succeeded, want error (ef needs a compressor)")
	}
	if _, err := ParseSpec("identity+f16"); err == nil {
		t.Error("ParseSpec(identity+f16) succeeded, want error")
	}
}

func TestSpecLossless(t *testing.T) {
	for _, tc := range []struct {
		spec Spec
		want bool
	}{
		{Spec{}, true},
		{Spec{Kind: KindIdentity}, true},
		{Spec{Kind: KindIdentity, ErrorFeedback: true}, true},
		{Spec{Kind: KindIdentity, Wire: WireFloat32}, false},
		{Spec{Wire: WireFloat32}, false},
		{Spec{Kind: KindTopK, Ratio: 0.5}, false},
	} {
		if got := tc.spec.Lossless(); got != tc.want {
			t.Errorf("%v.Lossless() = %v, want %v", tc.spec, got, tc.want)
		}
	}
}

// TestWireNarrowRoundTrip pins the error bound of the float32 boundary:
// every reconstructed value is within one float32 ulp (relative 2^-24) of
// the original, and re-encoding the narrowed values is exact.
func TestWireNarrowRoundTrip(t *testing.T) {
	spec := Spec{Wire: WireFloat32}
	c, err := spec.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	dim := 257
	vec := make([]float64, dim)
	for i := range vec {
		vec[i] = (r.Float64()*2 - 1) * math.Pow(10, float64(i%7)-3)
	}
	msg, err := c.Compress(vec)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, dim)
	if err := c.Decompress(msg, dst); err != nil {
		t.Fatal(err)
	}
	for i, v := range vec {
		got := dst[i]
		if math.Float64bits(got) != math.Float64bits(Narrow32(v)) {
			t.Fatalf("coordinate %d: decode %v != Narrow32 %v", i, got, Narrow32(v))
		}
		if rel := math.Abs(got-v) / math.Abs(v); rel > math.Pow(2, -24) {
			t.Fatalf("coordinate %d: relative error %g exceeds 2^-24", i, rel)
		}
	}
	// Idempotence: a second narrowing round-trips bit-exactly.
	msg2, err := c.Compress(dst)
	if err != nil {
		t.Fatal(err)
	}
	for i := range msg2.Dense {
		if math.Float64bits(msg2.Dense[i]) != math.Float64bits(dst[i]) {
			t.Fatalf("coordinate %d: narrowing not idempotent", i)
		}
	}
}

// TestWireBytesHalved pins the acceptance criterion: identity-kind payloads
// are exactly half their float64 size under the float32 wire, in both the
// data-independent Spec.WireBytes and the materialized Message.Bytes.
func TestWireBytesHalved(t *testing.T) {
	dim := 100
	wide := Spec{Kind: KindIdentity}
	narrow := Spec{Kind: KindIdentity, Wire: WireFloat32}
	if w, n := wide.WireBytes(dim), narrow.WireBytes(dim); n*2 != w {
		t.Fatalf("WireBytes: narrow %d, wide %d — want exactly half", n, w)
	}
	if got := narrow.WireBytes(dim); got != 4*dim {
		t.Fatalf("narrow WireBytes = %d, want %d", narrow.WireBytes(dim), 4*dim)
	}
	// The wire-only spec prices like narrow identity.
	if got := (Spec{Wire: WireFloat32}).WireBytes(dim); got != 4*dim {
		t.Fatalf("wire-only WireBytes = %d, want %d", got, 4*dim)
	}
	c, err := narrow.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := c.Compress(make([]float64, dim))
	if err != nil {
		t.Fatal(err)
	}
	if got := msg.Bytes(); got != 4*dim {
		t.Fatalf("Message.Bytes = %d, want %d", got, 4*dim)
	}
}

// TestWireSparseInteraction: under a sparsifying spec the float32 wire
// narrows VALUES only — the selected indices are identical to the wide
// spec's, and each value is the float32 rounding of the wide value.
func TestWireSparseInteraction(t *testing.T) {
	dim := 64
	r := rng.New(11)
	vec := make([]float64, dim)
	for i := range vec {
		vec[i] = r.NormFloat64()
	}
	wide, err := (Spec{Kind: KindTopK, Ratio: 0.25}).New(nil)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := (Spec{Kind: KindTopK, Ratio: 0.25, Wire: WireFloat32}).New(nil)
	if err != nil {
		t.Fatal(err)
	}
	mw, _ := wide.Compress(vec)
	mn, _ := narrow.Compress(vec)
	if len(mw.Indices) != len(mn.Indices) {
		t.Fatalf("index counts differ: %d vs %d", len(mw.Indices), len(mn.Indices))
	}
	for i, ix := range mw.Indices {
		if mn.Indices[i] != ix {
			t.Fatalf("index %d differs: %d vs %d", i, mn.Indices[i], ix)
		}
		if math.Float64bits(mn.Values[i]) != math.Float64bits(Narrow32(mw.Values[i])) {
			t.Fatalf("value %d: %v is not the narrowing of %v", i, mn.Values[i], mw.Values[i])
		}
	}
	// Payload: 4 index bytes stay, 8 value bytes become 4.
	k := len(mw.Indices)
	if got, want := mn.Bytes(), k*(4+4); got != want {
		t.Fatalf("narrow sparse Bytes = %d, want %d", got, want)
	}
	if got, want := mw.Bytes(), k*(4+8); got != want {
		t.Fatalf("wide sparse Bytes = %d, want %d", got, want)
	}
}

// TestWireQSGDInteraction: quantization levels are exact ints either way;
// only the norm narrows, and the payload shrinks by exactly 4 bytes.
func TestWireQSGDInteraction(t *testing.T) {
	dim := 64
	vec := make([]float64, dim)
	r := rng.New(13)
	for i := range vec {
		vec[i] = r.NormFloat64()
	}
	wide, err := (Spec{Kind: KindQSGD, Bits: 4}).New(rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := (Spec{Kind: KindQSGD, Bits: 4, Wire: WireFloat32}).New(rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	mw, _ := wide.Compress(vec)
	mn, _ := narrow.Compress(vec)
	for i := range mw.Levels {
		if mn.Levels[i] != mw.Levels[i] {
			t.Fatalf("level %d differs: %d vs %d", i, mn.Levels[i], mw.Levels[i])
		}
	}
	if math.Float64bits(mn.Norm) != math.Float64bits(Narrow32(mw.Norm)) {
		t.Fatalf("norm %v is not the narrowing of %v", mn.Norm, mw.Norm)
	}
	if got, want := mw.Bytes()-mn.Bytes(), 4; got != want {
		t.Fatalf("qsgd payload shrank by %d bytes, want %d", got, want)
	}
}

// TestWireErrorFeedbackCapturesNarrowing: with EF wrapped outside the
// narrowing boundary, the residual after one round equals exactly what the
// float32 rounding dropped.
func TestWireErrorFeedbackCapturesNarrowing(t *testing.T) {
	dim := 32
	spec := Spec{Kind: KindIdentity, ErrorFeedback: true, Wire: WireFloat32}
	c, err := spec.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	ef, ok := c.(*ErrorFeedback)
	if !ok {
		t.Fatalf("expected ErrorFeedback outermost, got %T", c)
	}
	r := rng.New(17)
	vec := make([]float64, dim)
	for i := range vec {
		vec[i] = r.NormFloat64() * 1e-3
	}
	msg, err := c.Compress(vec)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vec {
		if math.Float64bits(msg.Dense[i]) != math.Float64bits(Narrow32(v)) {
			t.Fatalf("coordinate %d not narrowed", i)
		}
	}
	wantResid := 0.0
	for _, v := range vec {
		d := v - Narrow32(v)
		wantResid += d * d
	}
	wantResid = math.Sqrt(wantResid)
	if got := ef.ResidualNorm(); math.Abs(got-wantResid) > 1e-18 {
		t.Fatalf("residual norm %g, want narrowing loss %g", got, wantResid)
	}
}

// TestWireAdaptivePassthrough: the narrowing wrapper forwards SetRatio/Ratio
// to an adaptive inner compressor.
func TestWireAdaptivePassthrough(t *testing.T) {
	c, err := (Spec{Kind: KindTopK, Ratio: 0.5, Wire: WireFloat32}).New(nil)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := c.(Adaptive)
	if !ok {
		t.Fatalf("narrowed topk is not Adaptive (%T)", c)
	}
	a.SetRatio(0.125)
	if got := a.Ratio(); got != 0.125 {
		t.Fatalf("Ratio() = %g after SetRatio(0.125)", got)
	}
	msg, err := c.Compress(make([]float64, 64))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(msg.Indices); got != 8 {
		t.Fatalf("kept %d coordinates after SetRatio(0.125) on dim 64, want 8", got)
	}
}
