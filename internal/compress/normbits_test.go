package compress

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// TestNormDecayBits pins the norm-driven width rule: one extra bit per
// halving of the gradient norm from the reference, clamped to [1, 8], with
// degenerate norms falling back to the reference width.
func TestNormDecayBits(t *testing.T) {
	cases := []struct {
		bits0       int
		norm0, norm float64
		want        int
	}{
		{4, 1, 1, 4},     // no decay, reference width
		{4, 1, 0.5, 5},   // one halving, one extra bit
		{4, 1, 0.25, 6},  // two halvings
		{4, 1, 2, 3},     // norm GREW: coarser wire
		{4, 1, 1e-10, 8}, // deep decay clamps at 8
		{4, 1, 1e10, 1},  // explosion clamps at 1
		{4, 0, 0.5, 4},   // unset reference: reference width
		{4, 1, 0, 4},     // dead gradient: reference width
		{4, 1, -1, 4},    // negative: reference width
		{4, math.NaN(), 1, 4},
		{4, 1, math.NaN(), 4},
		{0, 1, 1, 1},  // bits0 itself is clamped
		{12, 1, 1, 8}, // ... from both sides
	}
	for _, tc := range cases {
		if got := NormDecayBits(tc.bits0, tc.norm0, tc.norm); got != tc.want {
			t.Errorf("NormDecayBits(%d, %g, %g) = %d, want %d",
				tc.bits0, tc.norm0, tc.norm, got, tc.want)
		}
	}
}

// TestQSGDSetBits: the exact-width hook bypasses the ratio rounding, clamps
// to [1, 8], and the chosen width reaches the wire message.
func TestQSGDSetBits(t *testing.T) {
	c := NewQSGD(4, rng.New(3))
	bs, ok := c.(BitSetter)
	if !ok {
		t.Fatalf("qsgd is not a BitSetter (%T)", c)
	}
	bs.SetBits(7)
	if got := bs.Bits(); got != 7 {
		t.Fatalf("Bits() = %d after SetBits(7)", got)
	}
	msg, err := c.Compress(testVec(32, 5))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Bits != 7 {
		t.Fatalf("wire message carries %d bits, want 7", msg.Bits)
	}
	bs.SetBits(99)
	if got := bs.Bits(); got != 8 {
		t.Fatalf("Bits() = %d after SetBits(99), want clamp to 8", got)
	}
	bs.SetBits(0)
	if got := bs.Bits(); got != 1 {
		t.Fatalf("Bits() = %d after SetBits(0), want clamp to 1", got)
	}
}

// TestBitSetterPassthrough: the error-feedback and wire-narrowing wrappers
// forward SetBits/Bits to a width-capable inner compressor, and stay inert
// around one that is not.
func TestBitSetterPassthrough(t *testing.T) {
	ef := WithErrorFeedback(NewQSGD(4, rng.New(4)))
	ef.SetBits(6)
	if got := ef.Bits(); got != 6 {
		t.Fatalf("error feedback Bits() = %d after SetBits(6)", got)
	}

	efTopK := WithErrorFeedback(NewTopK(0.5))
	efTopK.SetBits(6) // no width to set; must not panic
	if got := efTopK.Bits(); got != 0 {
		t.Fatalf("topk+ef Bits() = %d, want 0 (no width)", got)
	}

	narrowed, err := (Spec{Kind: KindQSGD, Bits: 4, Wire: WireFloat32}).New(rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	nbs, ok := narrowed.(BitSetter)
	if !ok {
		t.Fatalf("narrowed qsgd is not a BitSetter (%T)", narrowed)
	}
	nbs.SetBits(6)
	if got := nbs.Bits(); got != 6 {
		t.Fatalf("narrowed Bits() = %d after SetBits(6)", got)
	}
	msg, err := narrowed.Compress(testVec(32, 6))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Bits != 6 {
		t.Fatalf("narrowed wire message carries %d bits, want 6", msg.Bits)
	}
}
