// Package compress implements gradient/delta compression for the
// communication-volume axis of the error-runtime trade-off. The paper adapts
// how OFTEN workers communicate (the period tau); this package models how
// MUCH is sent per round, so that internal/delaymodel can charge a
// size-aware cost D = (latency + bytes/bandwidth) * s(m) and the simulator
// can express bandwidth-limited (e.g. federated) scenarios.
//
// A Compressor maps a parameter-delta vector to a wire Message and back.
// Four schemes are provided:
//
//   - Identity: lossless dense encoding (8 bytes/coordinate); the baseline
//     that exercises the compressed-averaging protocol at full payload.
//   - Top-k sparsification: keep the k = ceil(ratio*dim) largest-magnitude
//     coordinates (biased, strong in practice; Lin et al. 2018).
//   - Random-k sparsification: keep a uniformly random k-subset scaled by
//     dim/k, an UNBIASED estimator of the input (Stich et al. 2018).
//   - QSGD-style stochastic b-bit quantization: coordinates are stochastically
//     rounded to 2^b-1 levels of the L2 ball, an unbiased estimator
//     (Alistarh et al. 2017).
//
// Biased compressors (top-k in particular) need error feedback to keep
// compressed PASGD convergent: WithErrorFeedback wraps any Compressor with a
// residual accumulator that re-injects what previous rounds dropped
// (Karimireddy et al. 2019). All compressors are deterministic given their
// seed stream, which is what lets the cluster engine's lock-step and
// goroutine backends stay bitwise identical under compression.
package compress

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Encoding discriminates the wire representation held by a Message.
type Encoding int

const (
	// EncDense is the raw float64 vector (identity).
	EncDense Encoding = iota
	// EncSparse is an index/value list (top-k, random-k).
	EncSparse
	// EncQuant is an L2 norm plus per-coordinate signed quantization levels
	// (QSGD).
	EncQuant
)

// Message is one compressed payload. Exactly one encoding's fields are
// populated, according to Enc. Messages do not alias the compressor's
// scratch buffers and stay valid across subsequent Compress calls.
type Message struct {
	Dim  int // uncompressed vector length
	Enc  Encoding
	Wire WireFormat // value precision on the wire (indices/levels are exact)

	// EncDense
	Dense []float64

	// EncSparse
	Indices []int32
	Values  []float64

	// EncQuant: value_i = Norm * Levels[i] / (2^Bits - 1).
	Norm   float64
	Bits   int
	Levels []int16
}

// Bytes returns the on-the-wire payload size: one value-width per dense
// float (8 bytes, or 4 under WireFloat32), 4 index bytes plus one
// value-width per sparse pair, and sign+level bit-packing plus the
// value-width norm for quantized messages. Framing overhead is excluded —
// the delay model charges payload only.
func (m Message) Bytes() int {
	vb := m.Wire.valueBytes()
	switch m.Enc {
	case EncDense:
		return vb * m.Dim
	case EncSparse:
		return len(m.Indices) * (4 + vb)
	case EncQuant:
		return vb + (m.Dim*(m.Bits+1)+7)/8
	}
	panic(fmt.Sprintf("compress: unknown encoding %d", int(m.Enc)))
}

// Decode reconstructs msg into dst, overwriting it entirely (including zeros
// for coordinates a sparse message dropped). It is the message-driven
// counterpart of Compressor.Decompress: any wire message can be decoded
// without the compressor that produced it, which is what lets the receiving
// side of a simulated link (internal/comm) reconstruct payloads it did not
// compress.
func Decode(msg Message, dst []float64) error {
	switch msg.Enc {
	case EncDense:
		if err := checkDim(msg, dst); err != nil {
			return err
		}
		copy(dst, msg.Dense)
		return nil
	case EncSparse:
		return scatterSparse(msg, dst)
	case EncQuant:
		return dequantize(msg, dst)
	}
	return fmt.Errorf("compress: unknown encoding %d", int(msg.Enc))
}

// AddDecoded accumulates the reconstruction of msg into dst without
// materializing a dense intermediate: sparse messages touch only their k
// stored coordinates, which is what makes aggregating m compressed messages
// O(k*m) instead of O(dim*m). dst is NOT zeroed first.
func AddDecoded(msg Message, dst []float64) error {
	if err := checkDim(msg, dst); err != nil {
		return err
	}
	switch msg.Enc {
	case EncDense:
		for i, v := range msg.Dense {
			dst[i] += v
		}
		return nil
	case EncSparse:
		for j, ix := range msg.Indices {
			dst[ix] += msg.Values[j]
		}
		return nil
	case EncQuant:
		if msg.Norm == 0 {
			return nil
		}
		s := float64(int(1)<<msg.Bits - 1)
		for i, lv := range msg.Levels {
			dst[i] += msg.Norm * float64(lv) / s
		}
		return nil
	}
	return fmt.Errorf("compress: unknown encoding %d", int(msg.Enc))
}

// Compressor maps a vector to a wire Message and back. Decompress writes the
// reconstruction into dst (len(dst) must equal msg.Dim); it overwrites dst
// entirely, including zeros for coordinates a sparse message dropped.
type Compressor interface {
	Compress(vec []float64) (Message, error)
	Decompress(msg Message, dst []float64) error
	Name() string
}

// Adaptive is implemented by compressors whose aggressiveness can be retuned
// mid-run; the joint AdaComm controller in internal/core drives this to pick
// (tau, ratio) per wall-clock interval. Ratio is the keep-fraction in (0, 1]:
// for sparsifiers it is k/dim, for QSGD it maps linearly to the bit-width.
type Adaptive interface {
	SetRatio(r float64)
	Ratio() float64
}

// BitSetter is implemented by quantizers whose bit-width can be driven
// directly (QSGD, plus any wrapper that forwards to one). It is the precise
// alternative to the coarse ratio→bits rounding of Adaptive.SetRatio: a
// norm-tracking controller computes an integer width and sets exactly that.
type BitSetter interface {
	SetBits(b int)
	Bits() int
}

// clampBits restricts a quantizer bit-width to [1, 8].
func clampBits(b int) int {
	if b < 1 {
		return 1
	}
	if b > 8 {
		return 8
	}
	return b
}

// NormDecayBits maps an observed gradient-norm decay onto a QSGD bit-width:
// starting from bits0 at reference norm norm0, the width grows by one bit
// per halving of the gradient norm (quantization noise scales with the
// vector norm, so as ||g|| shrinks the same absolute precision needs more
// levels — the variance-matching rule behind adaptive-precision schemes).
// The result is clamped to [1, 8]; non-positive or NaN norms return bits0
// unchanged so a cold start or a dead gradient cannot spike the width.
func NormDecayBits(bits0 int, norm0, norm float64) int {
	bits0 = clampBits(bits0)
	if !(norm0 > 0) || !(norm > 0) {
		return bits0
	}
	return clampBits(bits0 + int(math.Round(math.Log2(norm0/norm))))
}

// keepCount converts a keep-ratio to a coordinate count in [1, dim].
func keepCount(ratio float64, dim int) int {
	k := int(math.Ceil(ratio * float64(dim)))
	if k < 1 {
		k = 1
	}
	if k > dim {
		k = dim
	}
	return k
}

// clampRatio restricts an adaptive ratio to (0, 1].
func clampRatio(r float64) float64 {
	if r <= 0 || math.IsNaN(r) {
		return 1e-6
	}
	if r > 1 {
		return 1
	}
	return r
}

// ---------------------------------------------------------------------------
// Identity
// ---------------------------------------------------------------------------

// Identity is the lossless dense compressor.
type Identity struct{}

// Compress copies the vector into a dense message.
func (Identity) Compress(vec []float64) (Message, error) {
	return Message{Dim: len(vec), Enc: EncDense, Dense: append([]float64(nil), vec...)}, nil
}

// Decompress copies the dense payload back.
func (Identity) Decompress(msg Message, dst []float64) error {
	if err := checkDim(msg, dst); err != nil {
		return err
	}
	copy(dst, msg.Dense)
	return nil
}

// Name implements Compressor.
func (Identity) Name() string { return "identity" }

func checkDim(msg Message, dst []float64) error {
	if len(dst) != msg.Dim {
		return fmt.Errorf("compress: dst length %d != message dim %d", len(dst), msg.Dim)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Top-k sparsification
// ---------------------------------------------------------------------------

type topKCompressor struct {
	ratio  float64
	magBuf []float64
}

// NewTopK returns a top-k sparsifier keeping the ceil(ratio*dim)
// largest-magnitude coordinates.
func NewTopK(ratio float64) Compressor {
	return &topKCompressor{ratio: clampRatio(ratio)}
}

func (t *topKCompressor) Name() string { return fmt.Sprintf("topk:%g", t.ratio) }

// SetRatio implements Adaptive.
func (t *topKCompressor) SetRatio(r float64) { t.ratio = clampRatio(r) }

// Ratio implements Adaptive.
func (t *topKCompressor) Ratio() float64 { return t.ratio }

func (t *topKCompressor) Compress(vec []float64) (Message, error) {
	dim := len(vec)
	k := keepCount(t.ratio, dim)
	if cap(t.magBuf) < dim {
		t.magBuf = make([]float64, dim)
	}
	mags := t.magBuf[:dim]
	for i, v := range vec {
		mags[i] = math.Abs(v)
	}
	thresh := selectKthLargest(mags, k)

	idx := make([]int32, 0, k)
	vals := make([]float64, 0, k)
	for i, v := range vec {
		if math.Abs(v) > thresh {
			idx = append(idx, int32(i))
			vals = append(vals, v)
		}
	}
	// Fill the remaining slots with threshold-magnitude coordinates in
	// ascending index order so ties resolve deterministically.
	for i := 0; len(idx) < k && i < dim; i++ {
		if math.Abs(vec[i]) == thresh {
			idx = append(idx, int32(i))
			vals = append(vals, vec[i])
		}
	}
	return Message{Dim: dim, Enc: EncSparse, Indices: idx, Values: vals}, nil
}

func (t *topKCompressor) Decompress(msg Message, dst []float64) error {
	return scatterSparse(msg, dst)
}

func scatterSparse(msg Message, dst []float64) error {
	if err := checkDim(msg, dst); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = 0
	}
	for j, ix := range msg.Indices {
		dst[ix] = msg.Values[j]
	}
	return nil
}

// selectKthLargest returns the k-th largest value of a, permuting a in the
// process (callers pass scratch). Deterministic middle-element pivots keep
// runs reproducible; three-way partitioning handles duplicate magnitudes.
func selectKthLargest(a []float64, k int) float64 {
	lo, hi := 0, len(a) // active window [lo, hi)
	idx := k - 1        // target position in descending order
	for hi-lo > 1 {
		p := a[lo+(hi-lo)/2]
		lt, gt := lo, hi // invariant: [lo,lt) > p, [gt,hi) < p
		for i := lo; i < gt; {
			switch {
			case a[i] > p:
				a[i], a[lt] = a[lt], a[i]
				lt++
				i++
			case a[i] < p:
				gt--
				a[i], a[gt] = a[gt], a[i]
			default:
				i++
			}
		}
		switch {
		case idx < lt:
			hi = lt
		case idx >= gt:
			lo = gt
		default:
			return p
		}
	}
	return a[lo]
}

// ---------------------------------------------------------------------------
// Random-k sparsification
// ---------------------------------------------------------------------------

type randKCompressor struct {
	ratio  float64
	r      *rng.Rand
	idxBuf []int32 // persistent partial-Fisher-Yates pool
}

// NewRandK returns a random-k sparsifier: a uniformly random k-subset of
// coordinates scaled by dim/k, so E[decompress(compress(v))] = v. The
// subset stream is drawn from r.
func NewRandK(ratio float64, r *rng.Rand) Compressor {
	if r == nil {
		panic("compress: NewRandK needs a random stream")
	}
	return &randKCompressor{ratio: clampRatio(ratio), r: r}
}

func (c *randKCompressor) Name() string { return fmt.Sprintf("randk:%g", c.ratio) }

// SetRatio implements Adaptive.
func (c *randKCompressor) SetRatio(r float64) { c.ratio = clampRatio(r) }

// Ratio implements Adaptive.
func (c *randKCompressor) Ratio() float64 { return c.ratio }

func (c *randKCompressor) Compress(vec []float64) (Message, error) {
	dim := len(vec)
	k := keepCount(c.ratio, dim)
	if len(c.idxBuf) != dim {
		c.idxBuf = make([]int32, dim)
		for i := range c.idxBuf {
			c.idxBuf[i] = int32(i)
		}
	}
	// Partial Fisher-Yates: the first k entries after k swaps are a uniform
	// k-subset; the pool persists across calls, which keeps Compress O(k).
	for i := 0; i < k; i++ {
		j := i + c.r.Intn(dim-i)
		c.idxBuf[i], c.idxBuf[j] = c.idxBuf[j], c.idxBuf[i]
	}
	scale := float64(dim) / float64(k)
	idx := make([]int32, k)
	vals := make([]float64, k)
	copy(idx, c.idxBuf[:k])
	for i, ix := range idx {
		vals[i] = vec[ix] * scale
	}
	return Message{Dim: dim, Enc: EncSparse, Indices: idx, Values: vals}, nil
}

func (c *randKCompressor) Decompress(msg Message, dst []float64) error {
	return scatterSparse(msg, dst)
}

// ---------------------------------------------------------------------------
// QSGD-style stochastic quantization
// ---------------------------------------------------------------------------

type qsgdCompressor struct {
	bits int
	r    *rng.Rand
}

// NewQSGD returns a stochastic b-bit quantizer (1 <= bits <= 8): coordinates
// are projected onto 2^bits - 1 levels of the L2 ball with stochastic
// rounding, so the reconstruction is unbiased. The rounding stream is drawn
// from r.
func NewQSGD(bits int, r *rng.Rand) Compressor {
	if bits < 1 || bits > 8 {
		panic(fmt.Sprintf("compress: QSGD bits %d out of [1,8]", bits))
	}
	if r == nil {
		panic("compress: NewQSGD needs a random stream")
	}
	return &qsgdCompressor{bits: bits, r: r}
}

func (q *qsgdCompressor) Name() string { return fmt.Sprintf("qsgd:%d", q.bits) }

// SetRatio implements Adaptive: the keep-ratio maps linearly onto the
// bit-width, ratio 1 = 8 bits.
func (q *qsgdCompressor) SetRatio(r float64) {
	b := int(math.Round(clampRatio(r) * 8))
	if b < 1 {
		b = 1
	}
	if b > 8 {
		b = 8
	}
	q.bits = b
}

// Ratio implements Adaptive.
func (q *qsgdCompressor) Ratio() float64 { return float64(q.bits) / 8 }

// SetBits implements BitSetter: the width is set exactly (clamped to [1, 8]),
// bypassing the ratio rounding.
func (q *qsgdCompressor) SetBits(b int) { q.bits = clampBits(b) }

// Bits implements BitSetter.
func (q *qsgdCompressor) Bits() int { return q.bits }

func (q *qsgdCompressor) levels() float64 { return float64(int(1)<<q.bits - 1) }

func (q *qsgdCompressor) Compress(vec []float64) (Message, error) {
	dim := len(vec)
	norm := 0.0
	for _, v := range vec {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	msg := Message{Dim: dim, Enc: EncQuant, Norm: norm, Bits: q.bits, Levels: make([]int16, dim)}
	if norm == 0 {
		return msg, nil
	}
	s := q.levels()
	for i, v := range vec {
		a := math.Abs(v) / norm * s
		l := math.Floor(a)
		if q.r.Float64() < a-l {
			l++
		}
		lv := int16(l)
		if v < 0 {
			lv = -lv
		}
		msg.Levels[i] = lv
	}
	return msg, nil
}

func (q *qsgdCompressor) Decompress(msg Message, dst []float64) error {
	return dequantize(msg, dst)
}

func dequantize(msg Message, dst []float64) error {
	if err := checkDim(msg, dst); err != nil {
		return err
	}
	s := float64(int(1)<<msg.Bits - 1)
	for i, lv := range msg.Levels {
		dst[i] = msg.Norm * float64(lv) / s
	}
	return nil
}

// ---------------------------------------------------------------------------
// Error feedback
// ---------------------------------------------------------------------------

// ErrorFeedback wraps a Compressor with a residual accumulator: each round
// compresses vec + residual and keeps what the wire format dropped, so the
// error is re-injected instead of lost. For contractive compressors (top-k)
// the residual norm stays bounded, which is what restores convergence of
// compressed PASGD (Karimireddy et al. 2019).
type ErrorFeedback struct {
	inner  Compressor
	resid  []float64
	buf    []float64
	decBuf []float64
}

// WithErrorFeedback wraps c with residual accumulation.
func WithErrorFeedback(c Compressor) *ErrorFeedback {
	return &ErrorFeedback{inner: c}
}

// Name implements Compressor.
func (e *ErrorFeedback) Name() string { return e.inner.Name() + "+ef" }

// ResidualNorm returns the L2 norm of the accumulated residual (for tests
// and diagnostics).
func (e *ErrorFeedback) ResidualNorm() float64 {
	s := 0.0
	for _, v := range e.resid {
		s += v * v
	}
	return math.Sqrt(s)
}

// SetRatio implements Adaptive when the inner compressor does.
func (e *ErrorFeedback) SetRatio(r float64) {
	if a, ok := e.inner.(Adaptive); ok {
		a.SetRatio(r)
	}
}

// Ratio implements Adaptive when the inner compressor does (1 otherwise).
func (e *ErrorFeedback) Ratio() float64 {
	if a, ok := e.inner.(Adaptive); ok {
		return a.Ratio()
	}
	return 1
}

// SetBits implements BitSetter when the inner compressor does.
func (e *ErrorFeedback) SetBits(b int) {
	if s, ok := e.inner.(BitSetter); ok {
		s.SetBits(b)
	}
}

// Bits implements BitSetter when the inner compressor does (0 otherwise).
func (e *ErrorFeedback) Bits() int {
	if s, ok := e.inner.(BitSetter); ok {
		return s.Bits()
	}
	return 0
}

// Compress compresses vec plus the carried residual and updates the residual
// with what this round's message failed to represent.
func (e *ErrorFeedback) Compress(vec []float64) (Message, error) {
	dim := len(vec)
	if len(e.resid) != dim {
		e.resid = make([]float64, dim)
		e.buf = make([]float64, dim)
		e.decBuf = make([]float64, dim)
	}
	for i, v := range vec {
		e.buf[i] = v + e.resid[i]
	}
	msg, err := e.inner.Compress(e.buf)
	if err != nil {
		return Message{}, err
	}
	if err := e.inner.Decompress(msg, e.decBuf); err != nil {
		return Message{}, err
	}
	for i := range e.resid {
		e.resid[i] = e.buf[i] - e.decBuf[i]
	}
	return msg, nil
}

// Decompress implements Compressor.
func (e *ErrorFeedback) Decompress(msg Message, dst []float64) error {
	return e.inner.Decompress(msg, dst)
}
