package compress

import (
	"testing"

	"repro/internal/rng"
)

// The compression hot path runs once per worker per averaging round, on a
// vector the size of the full model. VGG-16 has ~1.4e8 parameters; these
// benchmarks use 2^20 coordinates so the suite stays fast while the
// asymptotics (quickselect vs full sort, per-coordinate quantization cost)
// are already visible. They are the baseline for future perf PRs.

const benchDim = 1 << 20

func benchVec() []float64 {
	r := rng.New(42)
	v := make([]float64, benchDim)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

func benchCompressor(b *testing.B, c Compressor) {
	b.Helper()
	v := benchVec()
	dst := make([]float64, benchDim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg, err := c.Compress(v)
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Decompress(msg, dst); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(8 * benchDim))
}

func BenchmarkTopK1pct(b *testing.B)  { benchCompressor(b, NewTopK(0.01)) }
func BenchmarkTopK10pct(b *testing.B) { benchCompressor(b, NewTopK(0.1)) }

func BenchmarkRandK1pct(b *testing.B) { benchCompressor(b, NewRandK(0.01, rng.New(1))) }

func BenchmarkQSGD4bit(b *testing.B) { benchCompressor(b, NewQSGD(4, rng.New(2))) }
func BenchmarkQSGD8bit(b *testing.B) { benchCompressor(b, NewQSGD(8, rng.New(3))) }

func BenchmarkTopKWithErrorFeedback(b *testing.B) {
	benchCompressor(b, WithErrorFeedback(NewTopK(0.01)))
}

// BenchmarkTopKSelection isolates the quickselect threshold step, the
// dominant cost of top-k on large vectors.
func BenchmarkTopKSelection(b *testing.B) {
	v := benchVec()
	mags := make([]float64, benchDim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, x := range v {
			if x < 0 {
				x = -x
			}
			mags[j] = x
		}
		selectKthLargest(mags, benchDim/100)
	}
}
