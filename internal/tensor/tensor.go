// Package tensor provides the dense linear-algebra substrate for the
// hand-rolled neural-network stack: float64 vectors and row-major matrices
// with the handful of BLAS-like kernels (axpy, dot, gemv, gemm, im2col) that
// mini-batch SGD on MLPs and small CNNs requires.
//
// Everything is plain Go over []float64 — no assembly, no cgo — because the
// reproduction targets algorithmic shape (error-vs-simulated-time curves),
// not absolute FLOP throughput.
package tensor

import (
	"fmt"
	"math"
)

// Vector ops operate on raw []float64 slices so model parameters can live in
// one contiguous buffer and be averaged across workers with a single loop.

// Axpy computes y += alpha * x. Panics if lengths differ.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scal computes x *= alpha.
func Scal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Dot returns the inner product of x and y. Panics if lengths differ.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// Copy copies src into dst. Panics if lengths differ.
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: Copy length mismatch %d vs %d", len(dst), len(src)))
	}
	copy(dst, src)
}

// Zero sets every element of x to 0.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Add computes dst = a + b elementwise. Panics if lengths differ.
func Add(dst, a, b []float64) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("tensor: Add length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Sub computes dst = a - b elementwise. Panics if lengths differ.
func Sub(dst, a, b []float64) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("tensor: Sub length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// Mean computes dst = elementwise mean of the given vectors, the model
// averaging step of PASGD (paper eq 3). Panics on an empty set or length
// mismatch.
func Mean(dst []float64, vecs ...[]float64) {
	if len(vecs) == 0 {
		panic("tensor: Mean of zero vectors")
	}
	Zero(dst)
	for _, v := range vecs {
		Axpy(1, v, dst)
	}
	Scal(1/float64(len(vecs)), dst)
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // length Rows*Cols, row-major
}

// NewMatrix allocates a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("tensor: negative matrix dimensions")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// BLAS semantics for the beta parameter of the Gem* kernels: beta == 0
// means "overwrite the destination", NOT "scale it by zero". The
// distinction matters because 0 * NaN = NaN — a destination holding stale
// NaN/Inf (e.g. a reused scratch buffer) must not poison the result.

// Gemv computes y = alpha*A*x + beta*y for a row-major A (Rows x Cols),
// len(x) == Cols, len(y) == Rows. beta == 0 overwrites y.
func Gemv(alpha float64, a *Matrix, x []float64, beta float64, y []float64) {
	if len(x) != a.Cols || len(y) != a.Rows {
		panic("tensor: Gemv dimension mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		if beta == 0 {
			y[i] = alpha * s
		} else {
			y[i] = alpha*s + beta*y[i]
		}
	}
}

// GemvT computes y = alpha*A^T*x + beta*y, len(x) == Rows, len(y) == Cols.
// beta == 0 overwrites y.
func GemvT(alpha float64, a *Matrix, x []float64, beta float64, y []float64) {
	if len(x) != a.Rows || len(y) != a.Cols {
		panic("tensor: GemvT dimension mismatch")
	}
	if beta == 0 {
		Zero(y)
	} else if beta != 1 {
		for j := range y {
			y[j] *= beta
		}
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		ax := alpha * x[i]
		if ax == 0 {
			continue
		}
		for j, v := range row {
			y[j] += ax * v
		}
	}
}

// Gemm computes C = alpha*A*B + beta*C. A is (M x K), B is (K x N),
// C is (M x N). The k-inner ordering keeps B accesses sequential.
// beta == 0 overwrites C.
func Gemm(alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic("tensor: Gemm dimension mismatch")
	}
	if beta == 0 {
		Zero(c.Data)
	} else if beta != 1 {
		for i := range c.Data {
			c.Data[i] *= beta
		}
	}
	for i := 0; i < a.Rows; i++ {
		crow := c.Row(i)
		arow := a.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := alpha * arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				crow[j] += aik * bv
			}
		}
	}
}

// GemmTA computes C = alpha*A^T*B + beta*C. A is (K x M), B is (K x N),
// C is (M x N). beta == 0 overwrites C.
func GemmTA(alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic("tensor: GemmTA dimension mismatch")
	}
	if beta == 0 {
		Zero(c.Data)
	} else if beta != 1 {
		for i := range c.Data {
			c.Data[i] *= beta
		}
	}
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			aik := alpha * av
			if aik == 0 {
				continue
			}
			crow := c.Row(i)
			for j, bv := range brow {
				crow[j] += aik * bv
			}
		}
	}
}

// GemmTB computes C = alpha*A*B^T + beta*C. A is (M x K), B is (N x K),
// C is (M x N). beta == 0 overwrites C.
func GemmTB(alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic("tensor: GemmTB dimension mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for j := 0; j < b.Rows; j++ {
			s := Dot(arow, b.Row(j))
			if beta == 0 {
				crow[j] = alpha * s
			} else {
				crow[j] = alpha*s + beta*crow[j]
			}
		}
	}
}
