// Package tensor provides the dense linear-algebra substrate for the
// hand-rolled neural-network stack: float64 vectors and row-major matrices
// with the handful of BLAS-like kernels (axpy, dot, gemv, gemm, im2col) that
// mini-batch SGD on MLPs and small CNNs requires.
//
// Everything is plain Go over []float64 — no assembly, no cgo — because the
// reproduction targets algorithmic shape (error-vs-simulated-time curves),
// not absolute FLOP throughput.
package tensor

import (
	"fmt"
	"math"
)

// Vector ops operate on raw []float64 slices so model parameters can live in
// one contiguous buffer and be averaged across workers with a single loop.

// Axpy computes y += alpha * x. Panics if lengths differ.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scal computes x *= alpha.
func Scal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Dot returns the inner product of x and y. Panics if lengths differ.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// Copy copies src into dst. Panics if lengths differ.
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: Copy length mismatch %d vs %d", len(dst), len(src)))
	}
	copy(dst, src)
}

// Zero sets every element of x to 0.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Add computes dst = a + b elementwise. Panics if lengths differ.
func Add(dst, a, b []float64) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("tensor: Add length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Sub computes dst = a - b elementwise. Panics if lengths differ.
func Sub(dst, a, b []float64) {
	if len(dst) != len(a) || len(a) != len(b) {
		panic("tensor: Sub length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// Mean computes dst = elementwise mean of the given vectors, the model
// averaging step of PASGD (paper eq 3). Panics on an empty set or length
// mismatch.
func Mean(dst []float64, vecs ...[]float64) {
	if len(vecs) == 0 {
		panic("tensor: Mean of zero vectors")
	}
	Zero(dst)
	for _, v := range vecs {
		Axpy(1, v, dst)
	}
	Scal(1/float64(len(vecs)), dst)
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // length Rows*Cols, row-major
}

// NewMatrix allocates a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("tensor: negative matrix dimensions")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// BLAS semantics for the beta parameter of the Gem* kernels: beta == 0
// means "overwrite the destination", NOT "scale it by zero". The
// distinction matters because 0 * NaN = NaN — a destination holding stale
// NaN/Inf (e.g. a reused scratch buffer) must not poison the result.
//
// The Gem*/Gemv* kernels below are cache-blocked and register-tiled (see
// blocked.go) and optionally fan output-row panels across a goroutine pool
// (SetWorkers; default 1 = serial). Every variant is bit-identical to its
// naive reference in naive.go at every worker count: per output element the
// floating-point operation sequence is the canonical reduce order — the
// beta-scaled destination plus one addition per term in ascending reduction
// index, with exact-zero A coefficients skipped in the axpy-form kernels.

// Gemv computes y = alpha*A*x + beta*y for a row-major A (Rows x Cols),
// len(x) == Cols, len(y) == Rows. beta == 0 overwrites y.
func Gemv(alpha float64, a *Matrix, x []float64, beta float64, y []float64) {
	if len(x) != a.Cols || len(y) != a.Rows {
		panic("tensor: Gemv dimension mismatch")
	}
	gemvBlocked(alpha, a, x, beta, y)
}

// GemvT computes y = alpha*A^T*x + beta*y, len(x) == Rows, len(y) == Cols.
// beta == 0 overwrites y.
func GemvT(alpha float64, a *Matrix, x []float64, beta float64, y []float64) {
	if len(x) != a.Rows || len(y) != a.Cols {
		panic("tensor: GemvT dimension mismatch")
	}
	gemvTBlocked(alpha, a, x, beta, y)
}

// Gemm computes C = alpha*A*B + beta*C. A is (M x K), B is (K x N),
// C is (M x N). beta == 0 overwrites C.
func Gemm(alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic("tensor: Gemm dimension mismatch")
	}
	gemmBlocked(alpha, a, b, beta, c)
}

// GemmTA computes C = alpha*A^T*B + beta*C. A is (K x M), B is (K x N),
// C is (M x N). beta == 0 overwrites C.
func GemmTA(alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic("tensor: GemmTA dimension mismatch")
	}
	gemmTABlocked(alpha, a, b, beta, c)
}

// GemmTB computes C = alpha*A*B^T + beta*C. A is (M x K), B is (N x K),
// C is (M x N). beta == 0 overwrites C.
func GemmTB(alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic("tensor: GemmTB dimension mismatch")
	}
	gemmTBBlocked(alpha, a, b, beta, c)
}
