//go:build !amd64

package tensor

// Non-amd64 builds run the pure-Go micro-kernels in blocked.go; the
// constant keeps the asm dispatch dead-code-eliminated.
const useAsmGemm = false

func gemmMadd2x8(ap0, ap1, b, c0, c1 *float64, stepBytes, kn int) {
	panic("tensor: gemmMadd2x8 is amd64-only")
}
