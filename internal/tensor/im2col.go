package tensor

// Im2Col lowers a convolution into a matrix multiply. The input image has
// shape (channels, height, width) stored channel-major in a flat slice. The
// output matrix has one row per output spatial position and one column per
// (channel, kh, kw) patch element, so that
//
//	out = patches (outH*outW x C*K*K)  *  kernels^T (C*K*K x F)
//
// computes all F filters at once. Zero padding is applied symmetrically.
type ConvShape struct {
	Channels, Height, Width int // input shape
	Kernel                  int // square kernel size K
	Stride                  int
	Pad                     int
}

// OutHeight returns the convolution output height.
func (s ConvShape) OutHeight() int { return (s.Height+2*s.Pad-s.Kernel)/s.Stride + 1 }

// OutWidth returns the convolution output width.
func (s ConvShape) OutWidth() int { return (s.Width+2*s.Pad-s.Kernel)/s.Stride + 1 }

// PatchLen returns the number of elements per patch row (C*K*K).
func (s ConvShape) PatchLen() int { return s.Channels * s.Kernel * s.Kernel }

// Im2Col fills dst (OutHeight*OutWidth rows x PatchLen cols) with image
// patches from img (length Channels*Height*Width). Out-of-bounds (padding)
// elements are zero.
func Im2Col(s ConvShape, img []float64, dst *Matrix) {
	outH, outW := s.OutHeight(), s.OutWidth()
	if len(img) != s.Channels*s.Height*s.Width {
		panic("tensor: Im2Col image length mismatch")
	}
	if dst.Rows != outH*outW || dst.Cols != s.PatchLen() {
		panic("tensor: Im2Col dst shape mismatch")
	}
	row := 0
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			d := dst.Row(row)
			idx := 0
			for c := 0; c < s.Channels; c++ {
				base := c * s.Height * s.Width
				for ky := 0; ky < s.Kernel; ky++ {
					iy := oy*s.Stride + ky - s.Pad
					for kx := 0; kx < s.Kernel; kx++ {
						ix := ox*s.Stride + kx - s.Pad
						if iy < 0 || iy >= s.Height || ix < 0 || ix >= s.Width {
							d[idx] = 0
						} else {
							d[idx] = img[base+iy*s.Width+ix]
						}
						idx++
					}
				}
			}
			row++
		}
	}
}

// Col2Im scatter-adds patch gradients back into an image gradient: the
// adjoint of Im2Col. dst (length Channels*Height*Width) is NOT zeroed first,
// so callers can accumulate.
func Col2Im(s ConvShape, patches *Matrix, dst []float64) {
	outH, outW := s.OutHeight(), s.OutWidth()
	if len(dst) != s.Channels*s.Height*s.Width {
		panic("tensor: Col2Im image length mismatch")
	}
	if patches.Rows != outH*outW || patches.Cols != s.PatchLen() {
		panic("tensor: Col2Im patches shape mismatch")
	}
	row := 0
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			p := patches.Row(row)
			idx := 0
			for c := 0; c < s.Channels; c++ {
				base := c * s.Height * s.Width
				for ky := 0; ky < s.Kernel; ky++ {
					iy := oy*s.Stride + ky - s.Pad
					for kx := 0; kx < s.Kernel; kx++ {
						ix := ox*s.Stride + kx - s.Pad
						if iy >= 0 && iy < s.Height && ix >= 0 && ix < s.Width {
							dst[base+iy*s.Width+ix] += p[idx]
						}
						idx++
					}
				}
			}
			row++
		}
	}
}
