package tensor

import (
	"fmt"
	"testing"
)

// benchGemm compares the naive reference against the blocked kernel on
// dense data (no exact zeros, so the naive zero-skip never fires). At
// sizes where B fits L2 the naive triple loop already runs at the scalar
// FP ceiling; the blocked kernel's margin grows with the working set.
func benchGemm(b *testing.B, n int, naive bool) {
	am := NewMatrix(n, n)
	bm := NewMatrix(n, n)
	cm := NewMatrix(n, n)
	r := parityRNG(99)
	for i := range am.Data {
		am.Data[i] = r.next() + 2
		bm.Data[i] = r.next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if naive {
			GemmNaive(1, am, bm, 0, cm)
		} else {
			Gemm(1, am, bm, 0, cm)
		}
	}
}

func BenchmarkGemm(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		b.Run(fmt.Sprintf("naive/%d", n), func(b *testing.B) { benchGemm(b, n, true) })
		b.Run(fmt.Sprintf("blocked/%d", n), func(b *testing.B) { benchGemm(b, n, false) })
	}
}
