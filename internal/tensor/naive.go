package tensor

// The *Naive kernels are the canonical reference implementations the blocked
// kernels in blocked.go must match bit for bit. They define the canonical
// reduce order: every output element starts from its beta-scaled destination
// (beta == 0 overwrites) and accumulates terms in ascending reduction index,
// one addition per term; terms whose A coefficient is exactly zero are
// skipped in the axpy-form kernels (Gemm, GemmTA, GemvT). Parity tests and
// cmd/bench compare against these, so they must stay byte-for-byte what the
// repository shipped before the blocked rewrite.

// GemvNaive is the reference Gemv: y = alpha*A*x + beta*y.
func GemvNaive(alpha float64, a *Matrix, x []float64, beta float64, y []float64) {
	if len(x) != a.Cols || len(y) != a.Rows {
		panic("tensor: Gemv dimension mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		if beta == 0 {
			y[i] = alpha * s
		} else {
			y[i] = alpha*s + beta*y[i]
		}
	}
}

// GemvTNaive is the reference GemvT: y = alpha*A^T*x + beta*y.
func GemvTNaive(alpha float64, a *Matrix, x []float64, beta float64, y []float64) {
	if len(x) != a.Rows || len(y) != a.Cols {
		panic("tensor: GemvT dimension mismatch")
	}
	if beta == 0 {
		Zero(y)
	} else if beta != 1 {
		for j := range y {
			y[j] *= beta
		}
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		ax := alpha * x[i]
		if ax == 0 {
			continue
		}
		for j, v := range row {
			y[j] += ax * v
		}
	}
}

// GemmNaive is the reference Gemm: C = alpha*A*B + beta*C.
func GemmNaive(alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic("tensor: Gemm dimension mismatch")
	}
	if beta == 0 {
		Zero(c.Data)
	} else if beta != 1 {
		for i := range c.Data {
			c.Data[i] *= beta
		}
	}
	for i := 0; i < a.Rows; i++ {
		crow := c.Row(i)
		arow := a.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := alpha * arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				crow[j] += aik * bv
			}
		}
	}
}

// GemmTANaive is the reference GemmTA: C = alpha*A^T*B + beta*C.
func GemmTANaive(alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic("tensor: GemmTA dimension mismatch")
	}
	if beta == 0 {
		Zero(c.Data)
	} else if beta != 1 {
		for i := range c.Data {
			c.Data[i] *= beta
		}
	}
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			aik := alpha * av
			if aik == 0 {
				continue
			}
			crow := c.Row(i)
			for j, bv := range brow {
				crow[j] += aik * bv
			}
		}
	}
}

// GemmTBNaive is the reference GemmTB: C = alpha*A*B^T + beta*C.
func GemmTBNaive(alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	if a.Cols != b.Cols || c.Rows != a.Rows || c.Cols != b.Rows {
		panic("tensor: GemmTB dimension mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for j := 0; j < b.Rows; j++ {
			s := Dot(arow, b.Row(j))
			if beta == 0 {
				crow[j] = alpha * s
			} else {
				crow[j] = alpha*s + beta*crow[j]
			}
		}
	}
}
