//go:build amd64

package tensor

// useAsmGemm gates the SSE2 micro-kernel in gemm_amd64.s. Scalar Go code
// tops out at one multiply-add per cycle (Go emits scalar SSE2, and the
// bit-exactness contract forbids FMA because each term must be a
// separately-rounded multiply then add); the packed kernel retires two
// lanes per port and doubles the ceiling without changing any bit of the
// result.
const useAsmGemm = true

// gemmMadd2x8 accumulates the 2x8 C block {c0[0:8], c1[0:8]} over kn
// ascending reduction steps with stride stepBytes between B rows. The
// caller must guarantee kn > 0 row coefficients free of exact zeros (the
// zero-skip stays in the Go fallback) and 8 addressable floats at each of
// b's kn rows, c0, and c1.
//
//go:noescape
func gemmMadd2x8(ap0, ap1, b, c0, c1 *float64, stepBytes, kn int)
