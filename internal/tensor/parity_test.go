package tensor

import (
	"fmt"
	"math"
	"testing"
)

// Parity tests: the blocked/tiled kernels must be BIT-identical to the naive
// references in naive.go — same canonical reduce order, same zero-skip —
// across ragged shapes (dims straddling rowTile/panelRows/kcBlock), every
// transpose variant, beta in {0, 1, 0.5}, and worker counts 1/4/8.

// parityRNG is a tiny deterministic generator so the tables need no seeds
// from math/rand.
type parityRNG uint64

func (r *parityRNG) next() float64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	u := uint64(*r) >> 11
	return float64(u)/float64(1<<53)*2 - 1
}

// fillParity populates data with a mix of regular values, exact +0/-0 (to
// exercise the zero-skip path), and larger magnitudes.
func fillParity(r *parityRNG, data []float64) {
	for i := range data {
		v := r.next()
		switch {
		case v > 0.8:
			data[i] = 0
		case v < -0.8:
			data[i] = math.Copysign(0, -1)
		default:
			data[i] = v * 3
		}
	}
}

func parityMatrix(r *parityRNG, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	fillParity(r, m.Data)
	return m
}

func bitsEqual(got, want []float64) (int, bool) {
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			return i, false
		}
	}
	return -1, true
}

var parityShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 7, 5},
	{3, 4, 5},
	{7, 13, 5},
	{5, 300, 7},   // k crosses kcBlock
	{31, 33, 2},   // m just under panelRows
	{32, 32, 32},  // exact tile/panel multiples
	{33, 65, 17},  // everything ragged
	{129, 65, 64}, // m crosses panels, above parMinWork: parallel path runs
	{64, 260, 31}, // k crosses kcBlock with ragged rows
}

var parityBetas = []float64{0, 1, 0.5}
var parityWorkers = []int{1, 4, 8}

func TestGemmParity(t *testing.T) {
	r := parityRNG(1)
	for _, w := range parityWorkers {
		prev := SetWorkers(w)
		for _, sh := range parityShapes {
			for _, beta := range parityBetas {
				a := parityMatrix(&r, sh.m, sh.k)
				b := parityMatrix(&r, sh.k, sh.n)
				cGot := parityMatrix(&r, sh.m, sh.n)
				cWant := cGot.Clone()
				Gemm(1.25, a, b, beta, cGot)
				GemmNaive(1.25, a, b, beta, cWant)
				if i, ok := bitsEqual(cGot.Data, cWant.Data); !ok {
					t.Fatalf("Gemm workers=%d shape=%v beta=%v: element %d = %x want %x",
						w, sh, beta, i, math.Float64bits(cGot.Data[i]), math.Float64bits(cWant.Data[i]))
				}
			}
		}
		SetWorkers(prev)
	}
}

func TestGemmTAParity(t *testing.T) {
	r := parityRNG(2)
	for _, w := range parityWorkers {
		prev := SetWorkers(w)
		for _, sh := range parityShapes {
			for _, beta := range parityBetas {
				a := parityMatrix(&r, sh.k, sh.m) // A is (K x M)
				b := parityMatrix(&r, sh.k, sh.n)
				cGot := parityMatrix(&r, sh.m, sh.n)
				cWant := cGot.Clone()
				GemmTA(-0.75, a, b, beta, cGot)
				GemmTANaive(-0.75, a, b, beta, cWant)
				if i, ok := bitsEqual(cGot.Data, cWant.Data); !ok {
					t.Fatalf("GemmTA workers=%d shape=%v beta=%v: element %d = %x want %x",
						w, sh, beta, i, math.Float64bits(cGot.Data[i]), math.Float64bits(cWant.Data[i]))
				}
			}
		}
		SetWorkers(prev)
	}
}

func TestGemmTBParity(t *testing.T) {
	r := parityRNG(3)
	for _, w := range parityWorkers {
		prev := SetWorkers(w)
		for _, sh := range parityShapes {
			for _, beta := range parityBetas {
				a := parityMatrix(&r, sh.m, sh.k)
				b := parityMatrix(&r, sh.n, sh.k) // B is (N x K)
				cGot := parityMatrix(&r, sh.m, sh.n)
				cWant := cGot.Clone()
				GemmTB(2, a, b, beta, cGot)
				GemmTBNaive(2, a, b, beta, cWant)
				if i, ok := bitsEqual(cGot.Data, cWant.Data); !ok {
					t.Fatalf("GemmTB workers=%d shape=%v beta=%v: element %d = %x want %x",
						w, sh, beta, i, math.Float64bits(cGot.Data[i]), math.Float64bits(cWant.Data[i]))
				}
			}
		}
		SetWorkers(prev)
	}
}

func TestGemvParity(t *testing.T) {
	r := parityRNG(4)
	shapes := []struct{ rows, cols int }{
		{1, 1}, {3, 7}, {33, 65}, {129, 31}, {300, 200}, // last one fans out
	}
	for _, w := range parityWorkers {
		prev := SetWorkers(w)
		for _, sh := range shapes {
			for _, beta := range parityBetas {
				a := parityMatrix(&r, sh.rows, sh.cols)
				x := make([]float64, sh.cols)
				fillParity(&r, x)
				yGot := make([]float64, sh.rows)
				fillParity(&r, yGot)
				yWant := append([]float64(nil), yGot...)
				Gemv(1.5, a, x, beta, yGot)
				GemvNaive(1.5, a, x, beta, yWant)
				if i, ok := bitsEqual(yGot, yWant); !ok {
					t.Fatalf("Gemv workers=%d shape=%v beta=%v: element %d = %x want %x",
						w, sh, beta, i, math.Float64bits(yGot[i]), math.Float64bits(yWant[i]))
				}
			}
		}
		SetWorkers(prev)
	}
}

func TestGemvTParity(t *testing.T) {
	r := parityRNG(5)
	shapes := []struct{ rows, cols int }{
		{1, 1}, {7, 3}, {65, 33}, {31, 129}, {200, 300}, // last one fans out
	}
	for _, w := range parityWorkers {
		prev := SetWorkers(w)
		for _, sh := range shapes {
			for _, beta := range parityBetas {
				a := parityMatrix(&r, sh.rows, sh.cols)
				x := make([]float64, sh.rows)
				fillParity(&r, x)
				yGot := make([]float64, sh.cols)
				fillParity(&r, yGot)
				yWant := append([]float64(nil), yGot...)
				GemvT(-1.25, a, x, beta, yGot)
				GemvTNaive(-1.25, a, x, beta, yWant)
				if i, ok := bitsEqual(yGot, yWant); !ok {
					t.Fatalf("GemvT workers=%d shape=%v beta=%v: element %d = %x want %x",
						w, sh, beta, i, math.Float64bits(yGot[i]), math.Float64bits(yWant[i]))
				}
			}
		}
		SetWorkers(prev)
	}
}

// TestGemmParityAllZeroRows pins the zero-skip contract on inputs built to
// hit every tile fallback branch: whole A rows of exact zeros inside a
// 4-row register tile, mixed with nonzero rows.
func TestGemmParityAllZeroRows(t *testing.T) {
	r := parityRNG(6)
	a := parityMatrix(&r, 8, 12)
	for k := 0; k < 12; k++ {
		a.Set(1, k, 0)                    // row fully +0
		a.Set(2, k, math.Copysign(0, -1)) // row fully -0
	}
	b := parityMatrix(&r, 12, 9)
	for _, beta := range parityBetas {
		cGot := parityMatrix(&r, 8, 9)
		cWant := cGot.Clone()
		Gemm(1, a, b, beta, cGot)
		GemmNaive(1, a, b, beta, cWant)
		if i, ok := bitsEqual(cGot.Data, cWant.Data); !ok {
			t.Fatalf("beta=%v element %d = %x want %x",
				beta, i, math.Float64bits(cGot.Data[i]), math.Float64bits(cWant.Data[i]))
		}
	}
}

// TestGemmParityDenseAlphaOne pins the packed (SSE2) kernel path: alpha == 1
// with zero-free A routes every full 2x8 tile through gemmMadd2x8 on amd64,
// and the result must still be bit-identical to the naive reference.
func TestGemmParityDenseAlphaOne(t *testing.T) {
	r := parityRNG(8)
	dense := func(rows, cols int) *Matrix {
		m := NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = r.next() + 2 // no exact zeros
		}
		return m
	}
	for _, w := range parityWorkers {
		prev := SetWorkers(w)
		for _, sh := range parityShapes {
			for _, beta := range parityBetas {
				a := dense(sh.m, sh.k)
				b := parityMatrix(&r, sh.k, sh.n)
				cGot := parityMatrix(&r, sh.m, sh.n)
				cWant := cGot.Clone()
				Gemm(1, a, b, beta, cGot)
				GemmNaive(1, a, b, beta, cWant)
				if i, ok := bitsEqual(cGot.Data, cWant.Data); !ok {
					t.Fatalf("dense Gemm workers=%d shape=%v beta=%v: element %d = %x want %x",
						w, sh, beta, i, math.Float64bits(cGot.Data[i]), math.Float64bits(cWant.Data[i]))
				}
			}
		}
		SetWorkers(prev)
	}
}

func TestSetWorkers(t *testing.T) {
	if got := Workers(); got != 1 {
		t.Fatalf("default Workers() = %d, want 1", got)
	}
	if prev := SetWorkers(4); prev != 1 {
		t.Fatalf("SetWorkers(4) returned prev %d, want 1", prev)
	}
	if got := Workers(); got != 4 {
		t.Fatalf("Workers() after SetWorkers(4) = %d, want 4", got)
	}
	if prev := SetWorkers(0); prev != 4 {
		t.Fatalf("SetWorkers(0) returned prev %d, want 4", prev)
	}
	if got := Workers(); got != 1 {
		t.Fatalf("Workers() after SetWorkers(0) = %d, want 1 (clamped)", got)
	}
}

// TestParallelGemmRace runs concurrent Gemm calls under SetWorkers > 1 so
// the CI race job exercises the kernel fan-out.
func TestParallelGemmRace(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	const mdim = 129
	r := parityRNG(7)
	a := parityMatrix(&r, mdim, 64)
	b := parityMatrix(&r, 64, 65)
	want := NewMatrix(mdim, 65)
	GemmNaive(1, a, b, 0, want)
	done := make(chan error, 3)
	for g := 0; g < 3; g++ {
		go func() {
			c := NewMatrix(mdim, 65)
			for it := 0; it < 5; it++ {
				Gemm(1, a, b, 0, c)
			}
			if i, ok := bitsEqual(c.Data, want.Data); !ok {
				done <- fmt.Errorf("element %d differs", i)
				return
			}
			done <- nil
		}()
	}
	for g := 0; g < 3; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
