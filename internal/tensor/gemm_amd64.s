// SSE2 micro-kernel for the alpha == 1 Gemm hot path. Each XMM lane holds
// ONE C element, so MULPD/ADDPD perform exactly the scalar kernel's
// separately-rounded multiply and add per element, per k, in ascending k —
// vectorizing across independent output columns preserves bit-exactness
// (unlike FMA, which would fuse the rounding). SSE2 only: no MOVDDUP, no
// VEX encodings, so the kernel runs on every amd64 the Go baseline targets.

#include "textflag.h"

// func gemmMadd2x8(ap0, ap1, b, c0, c1 *float64, stepBytes, kn int)
//
// Accumulates the 2x8 C block {c0[0:8], c1[0:8]} over kn reduction steps:
//   c0[j] += ap0[k] * b[k*step+j]   (j = 0..7, k ascending)
//   c1[j] += ap1[k] * b[k*step+j]
// The caller guarantees ap0/ap1 hold NO exact zeros over the kn range, so
// the naive kernel's zero-coefficient skip never fires and the loop needs
// no branches. Sixteen accumulator lanes live in X0-X7; X8/X9 carry the
// broadcast A coefficients; X10-X13 stream B.
TEXT ·gemmMadd2x8(SB), NOSPLIT, $0-56
	MOVQ ap0+0(FP), DI
	MOVQ ap1+8(FP), SI
	MOVQ b+16(FP), BX
	MOVQ c0+24(FP), DX
	MOVQ c1+32(FP), R9
	MOVQ stepBytes+40(FP), R8
	MOVQ kn+48(FP), CX

	MOVUPD (DX), X0
	MOVUPD 16(DX), X1
	MOVUPD 32(DX), X2
	MOVUPD 48(DX), X3
	MOVUPD (R9), X4
	MOVUPD 16(R9), X5
	MOVUPD 32(R9), X6
	MOVUPD 48(R9), X7

	TESTQ CX, CX
	JLE   store

loop:
	MOVSD    (DI), X8
	MOVSD    (SI), X9
	UNPCKLPD X8, X8
	UNPCKLPD X9, X9
	ADDQ     $8, DI
	ADDQ     $8, SI

	MOVUPD (BX), X10
	MOVAPD X10, X11
	MULPD  X8, X10
	MULPD  X9, X11
	ADDPD  X10, X0
	ADDPD  X11, X4

	MOVUPD 16(BX), X12
	MOVAPD X12, X13
	MULPD  X8, X12
	MULPD  X9, X13
	ADDPD  X12, X1
	ADDPD  X13, X5

	MOVUPD 32(BX), X10
	MOVAPD X10, X11
	MULPD  X8, X10
	MULPD  X9, X11
	ADDPD  X10, X2
	ADDPD  X11, X6

	MOVUPD 48(BX), X12
	MOVAPD X12, X13
	MULPD  X8, X12
	MULPD  X9, X13
	ADDPD  X12, X3
	ADDPD  X13, X7

	ADDQ R8, BX
	SUBQ $1, CX
	JNZ  loop

store:
	MOVUPD X0, (DX)
	MOVUPD X1, 16(DX)
	MOVUPD X2, 32(DX)
	MOVUPD X3, 48(DX)
	MOVUPD X4, (R9)
	MOVUPD X5, 16(R9)
	MOVUPD X6, 32(R9)
	MOVUPD X7, 48(R9)
	RET
