package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Axpy(2, x, y)
	want := []float64{12, 24, 36}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy = %v, want %v", y, want)
		}
	}
}

func TestAxpyPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	Axpy(1, []float64{1}, []float64{1, 2})
}

func TestScalDotNorm(t *testing.T) {
	x := []float64{3, 4}
	if got := Dot(x, x); got != 25 {
		t.Fatalf("Dot = %v, want 25", got)
	}
	if got := Norm2(x); got != 5 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	Scal(2, x)
	if x[0] != 6 || x[1] != 8 {
		t.Fatalf("Scal = %v", x)
	}
}

func TestAddSubZeroFill(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 5}
	dst := make([]float64, 2)
	Add(dst, a, b)
	if dst[0] != 4 || dst[1] != 7 {
		t.Fatalf("Add = %v", dst)
	}
	Sub(dst, b, a)
	if dst[0] != 2 || dst[1] != 3 {
		t.Fatalf("Sub = %v", dst)
	}
	Fill(dst, 9)
	if dst[0] != 9 || dst[1] != 9 {
		t.Fatalf("Fill = %v", dst)
	}
	Zero(dst)
	if dst[0] != 0 || dst[1] != 0 {
		t.Fatalf("Zero = %v", dst)
	}
}

func TestMean(t *testing.T) {
	dst := make([]float64, 2)
	Mean(dst, []float64{1, 2}, []float64{3, 4}, []float64{5, 6})
	if dst[0] != 3 || dst[1] != 4 {
		t.Fatalf("Mean = %v, want [3 4]", dst)
	}
}

func TestMeanPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on Mean of zero vectors")
		}
	}()
	Mean(make([]float64, 2))
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("Set/At failed")
	}
	if len(m.Row(1)) != 3 || m.Row(1)[2] != 7 {
		t.Fatal("Row view failed")
	}
	c := m.Clone()
	c.Set(0, 0, 5)
	if m.At(0, 0) != 0 {
		t.Fatal("Clone shares storage")
	}
}

// naiveMatMul is an obviously-correct reference for Gemm checks.
func naiveMatMul(a, b *Matrix) *Matrix {
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func fillSeq(m *Matrix) {
	for i := range m.Data {
		m.Data[i] = float64((i*7)%13) - 6
	}
}

func TestGemmAgainstNaive(t *testing.T) {
	a := NewMatrix(4, 5)
	b := NewMatrix(5, 3)
	fillSeq(a)
	fillSeq(b)
	want := naiveMatMul(a, b)
	c := NewMatrix(4, 3)
	Gemm(1, a, b, 0, c)
	for i := range c.Data {
		if !approxEq(c.Data[i], want.Data[i], 1e-12) {
			t.Fatalf("Gemm mismatch at %d: %v vs %v", i, c.Data[i], want.Data[i])
		}
	}
}

func TestGemmAlphaBeta(t *testing.T) {
	a := NewMatrix(2, 2)
	b := NewMatrix(2, 2)
	fillSeq(a)
	fillSeq(b)
	c := NewMatrix(2, 2)
	Fill(c.Data, 1)
	Gemm(2, a, b, 3, c) // C = 2AB + 3*ones
	want := naiveMatMul(a, b)
	for i := range c.Data {
		if !approxEq(c.Data[i], 2*want.Data[i]+3, 1e-12) {
			t.Fatalf("alpha/beta Gemm wrong at %d", i)
		}
	}
}

func transpose(m *Matrix) *Matrix {
	tm := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			tm.Set(j, i, m.At(i, j))
		}
	}
	return tm
}

func TestGemmTA(t *testing.T) {
	a := NewMatrix(5, 4) // A^T is 4x5
	b := NewMatrix(5, 3)
	fillSeq(a)
	fillSeq(b)
	want := naiveMatMul(transpose(a), b)
	c := NewMatrix(4, 3)
	GemmTA(1, a, b, 0, c)
	for i := range c.Data {
		if !approxEq(c.Data[i], want.Data[i], 1e-12) {
			t.Fatalf("GemmTA mismatch at %d", i)
		}
	}
}

func TestGemmTB(t *testing.T) {
	a := NewMatrix(4, 5)
	b := NewMatrix(3, 5) // B^T is 5x3
	fillSeq(a)
	fillSeq(b)
	want := naiveMatMul(a, transpose(b))
	c := NewMatrix(4, 3)
	GemmTB(1, a, b, 0, c)
	for i := range c.Data {
		if !approxEq(c.Data[i], want.Data[i], 1e-12) {
			t.Fatalf("GemmTB mismatch at %d", i)
		}
	}
}

func TestGemv(t *testing.T) {
	a := NewMatrix(3, 2)
	fillSeq(a)
	x := []float64{2, -1}
	y := make([]float64, 3)
	Gemv(1, a, x, 0, y)
	for i := 0; i < 3; i++ {
		want := a.At(i, 0)*x[0] + a.At(i, 1)*x[1]
		if !approxEq(y[i], want, 1e-12) {
			t.Fatalf("Gemv row %d: %v vs %v", i, y[i], want)
		}
	}
}

func TestGemvT(t *testing.T) {
	a := NewMatrix(3, 2)
	fillSeq(a)
	x := []float64{1, 2, 3}
	y := make([]float64, 2)
	GemvT(1, a, x, 0, y)
	for j := 0; j < 2; j++ {
		want := 0.0
		for i := 0; i < 3; i++ {
			want += a.At(i, j) * x[i]
		}
		if !approxEq(y[j], want, 1e-12) {
			t.Fatalf("GemvT col %d: %v vs %v", j, y[j], want)
		}
	}
}

func TestGemmPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on Gemm mismatch")
		}
	}()
	Gemm(1, NewMatrix(2, 3), NewMatrix(2, 3), 0, NewMatrix(2, 3))
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1x1 kernel, stride 1, no pad: patches matrix equals the image laid
	// out one pixel per row.
	s := ConvShape{Channels: 1, Height: 2, Width: 3, Kernel: 1, Stride: 1, Pad: 0}
	img := []float64{1, 2, 3, 4, 5, 6}
	dst := NewMatrix(s.OutHeight()*s.OutWidth(), s.PatchLen())
	Im2Col(s, img, dst)
	for i, v := range img {
		if dst.At(i, 0) != v {
			t.Fatalf("Im2Col 1x1 mismatch at %d", i)
		}
	}
}

func TestIm2ColPadding(t *testing.T) {
	// 3x3 kernel with pad 1 on a 1x1 image: single output position whose
	// patch is zero except the center.
	s := ConvShape{Channels: 1, Height: 1, Width: 1, Kernel: 3, Stride: 1, Pad: 1}
	img := []float64{5}
	dst := NewMatrix(1, 9)
	Im2Col(s, img, dst)
	for i := 0; i < 9; i++ {
		want := 0.0
		if i == 4 {
			want = 5
		}
		if dst.At(0, i) != want {
			t.Fatalf("pad patch[%d] = %v, want %v", i, dst.At(0, i), want)
		}
	}
}

func TestIm2ColShapes(t *testing.T) {
	s := ConvShape{Channels: 3, Height: 8, Width: 8, Kernel: 3, Stride: 2, Pad: 1}
	if s.OutHeight() != 4 || s.OutWidth() != 4 {
		t.Fatalf("out shape %dx%d, want 4x4", s.OutHeight(), s.OutWidth())
	}
	if s.PatchLen() != 27 {
		t.Fatalf("patch len %d, want 27", s.PatchLen())
	}
}

// TestCol2ImAdjoint checks the defining adjoint property:
// <Im2Col(x), P> == <x, Col2Im(P)> for all x, P.
func TestCol2ImAdjoint(t *testing.T) {
	s := ConvShape{Channels: 2, Height: 5, Width: 4, Kernel: 3, Stride: 1, Pad: 1}
	n := s.Channels * s.Height * s.Width
	rows, cols := s.OutHeight()*s.OutWidth(), s.PatchLen()

	img := make([]float64, n)
	for i := range img {
		img[i] = float64((i*13)%7) - 3
	}
	p := NewMatrix(rows, cols)
	fillSeq(p)

	lowered := NewMatrix(rows, cols)
	Im2Col(s, img, lowered)
	lhs := Dot(lowered.Data, p.Data)

	back := make([]float64, n)
	Col2Im(s, p, back)
	rhs := Dot(img, back)

	if !approxEq(lhs, rhs, 1e-9) {
		t.Fatalf("adjoint mismatch: %v vs %v", lhs, rhs)
	}
}

// Property: Gemm is linear in alpha.
func TestGemmLinearInAlpha(t *testing.T) {
	f := func(seed int64) bool {
		a := NewMatrix(3, 3)
		b := NewMatrix(3, 3)
		v := seed
		next := func() float64 {
			v = v*6364136223846793005 + 1442695040888963407
			return float64(v%1000) / 250
		}
		for i := range a.Data {
			a.Data[i] = next()
			b.Data[i] = next()
		}
		c1 := NewMatrix(3, 3)
		c2 := NewMatrix(3, 3)
		Gemm(2, a, b, 0, c1)
		Gemm(1, a, b, 0, c2)
		for i := range c1.Data {
			if !approxEq(c1.Data[i], 2*c2.Data[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Mean of identical vectors is the vector itself.
func TestMeanIdempotent(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		x := make([]float64, len(raw))
		for i, v := range raw {
			// Clamp to a range where 3*v cannot overflow.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				v = 1
			}
			x[i] = v
		}
		dst := make([]float64, len(x))
		Mean(dst, x, x, x)
		for i := range dst {
			if !approxEq(dst[i], x[i], 1e-9*(1+math.Abs(x[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Regression: beta == 0 must OVERWRITE the destination (BLAS semantics),
// not scale it by zero — 0 * NaN = NaN, so stale NaN/Inf in a reused
// destination buffer would otherwise poison every product written into it.
func TestGemmBetaZeroOverwritesStaleNaN(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(3, 2)
	bt := NewMatrix(2, 3) // B^T operand for GemmTB
	at := NewMatrix(3, 2) // A^T operand for GemmTA
	for i := range a.Data {
		a.Data[i] = float64(i + 1)
		bt.Data[i] = float64(i + 2)
	}
	for i := range b.Data {
		b.Data[i] = float64(i + 2)
		at.Data[i] = float64(i + 1)
	}

	poison := func(m *Matrix) {
		for i := range m.Data {
			if i%2 == 0 {
				m.Data[i] = math.NaN()
			} else {
				m.Data[i] = math.Inf(1)
			}
		}
	}
	check := func(name string, got, want *Matrix) {
		t.Helper()
		for i := range got.Data {
			if math.IsNaN(got.Data[i]) || math.IsInf(got.Data[i], 0) {
				t.Fatalf("%s: stale poison survived beta=0 at %d: %v", name, i, got.Data[i])
			}
			if got.Data[i] != want.Data[i] {
				t.Fatalf("%s: element %d = %v, want %v", name, i, got.Data[i], want.Data[i])
			}
		}
	}

	clean := NewMatrix(2, 2)
	Gemm(1, a, b, 0, clean)
	dirty := NewMatrix(2, 2)
	poison(dirty)
	Gemm(1, a, b, 0, dirty)
	check("Gemm", dirty, clean)

	cleanTB := NewMatrix(2, 2)
	GemmTB(1, a, bt, 0, cleanTB)
	poison(dirty)
	GemmTB(1, a, bt, 0, dirty)
	check("GemmTB", dirty, cleanTB)

	cleanTA := NewMatrix(2, 2)
	GemmTA(1, at, b, 0, cleanTA)
	poison(dirty)
	GemmTA(1, at, b, 0, dirty)
	check("GemmTA", dirty, cleanTA)
}

// Regression: the same overwrite-on-beta-0 contract for the matrix-vector
// kernels.
func TestGemvBetaZeroOverwritesStaleNaN(t *testing.T) {
	a := NewMatrix(2, 3)
	for i := range a.Data {
		a.Data[i] = float64(i + 1)
	}
	x3 := []float64{1, 2, 3}
	x2 := []float64{1, 2}

	y := []float64{math.NaN(), math.Inf(-1)}
	Gemv(1, a, x3, 0, y)
	want := []float64{1*1 + 2*2 + 3*3, 4*1 + 5*2 + 6*3}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Gemv y[%d] = %v, want %v", i, y[i], want[i])
		}
	}

	yt := []float64{math.NaN(), math.Inf(1), math.NaN()}
	GemvT(1, a, x2, 0, yt)
	wantT := []float64{1*1 + 4*2, 2*1 + 5*2, 3*1 + 6*2}
	for i := range yt {
		if yt[i] != wantT[i] {
			t.Fatalf("GemvT y[%d] = %v, want %v", i, yt[i], wantT[i])
		}
	}
}
