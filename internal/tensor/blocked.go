package tensor

import (
	"sync/atomic"

	"repro/internal/par"
)

// Blocked, register-tiled implementations of the Gem*/Gemv* kernels. The
// contract with naive.go: every output element accumulates exactly the same
// sequence of floating-point operations as the naive reference — beta-scale
// (or overwrite) first, then one addition per term in ascending reduction
// index, with the axpy-form zero-coefficient skip preserved — so results are
// bit-identical to the reference at every worker count. The speed comes from
// where values live, not from reassociating arithmetic: register tiles share
// one streamed B (or x) load across several output rows, k-panel blocking
// keeps the streamed operand resident in cache, and the optional fan-out
// gives each goroutine a disjoint set of output rows. On amd64 the alpha==1
// Gemm hot path additionally dispatches to a packed SSE2 micro-kernel
// (gemm_amd64.s) whose lanes hold independent C elements — same per-element
// multiply/add sequence, two retired per cycle instead of one.

const (
	// rowTile is the register tile height: output rows updated per streamed
	// B-row (or x) load in the axpy-form kernels.
	rowTile = 4
	// kcBlock is the k-panel size: the B panel (kcBlock x N floats) stays
	// cache-resident while every row tile of the panel consumes it.
	kcBlock = 256
	// panelRows is the parallel work-unit height. Panels are contiguous and
	// disjoint, so each output row has exactly one writer.
	panelRows = 32
	// parMinWork is the minimum multiply-add count before a kernel fans
	// out; below it the goroutine hand-off costs more than the loop.
	parMinWork = 1 << 15
)

// kernelWorkers holds the pool width used by forRowPanels; <= 1 means
// serial. Read atomically per kernel call: nn layers run inside engine
// compute pools, so concurrent readers are the norm.
var kernelWorkers atomic.Int64

// Workers returns the current kernel worker count (always >= 1).
func Workers() int {
	if w := int(kernelWorkers.Load()); w > 1 {
		return w
	}
	return 1
}

// SetWorkers sets the goroutine count the matmul kernels may tile output-row
// panels across and returns the previous value. n < 1 clamps to 1 (serial,
// the default). Results are bit-identical at every setting; this only
// trades wall-clock for cores. Callers already inside a saturated pool
// (engine compute workers, experiment grids) should leave it at 1 —
// stacking pools oversubscribes the cores.
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	prev := int(kernelWorkers.Swap(int64(n)))
	if prev < 1 {
		prev = 1
	}
	return prev
}

// parPanels returns the number of contiguous disjoint output-row panels a
// kernel call should fan out across, or 0 for the serial path. work is the
// multiply-add count of the whole call; small products never fan out. The
// kernels call their panel body DIRECTLY in the serial case — routing it
// through a closure would heap-allocate the capture on every call, and the
// hot path must stay allocation-free.
func parPanels(m, work int) int {
	panels := (m + panelRows - 1) / panelRows
	if Workers() <= 1 || panels <= 1 || work < parMinWork {
		return 0
	}
	return panels
}

// panelBounds maps panel p to its row range [lo, hi) within [0, m).
func panelBounds(p, m int) (lo, hi int) {
	lo = p * panelRows
	hi = lo + panelRows
	if hi > m {
		hi = m
	}
	return lo, hi
}

// scaleRows applies the beta pre-pass to rows [0, m) of c: overwrite on
// beta == 0 (BLAS semantics, stale NaN/Inf must not propagate), scale
// otherwise.
func scaleRows(beta float64, c *Matrix) {
	if beta == 0 {
		Zero(c.Data)
	} else if beta != 1 {
		for i := range c.Data {
			c.Data[i] *= beta
		}
	}
}

func gemmBlocked(alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	m, k, n := a.Rows, a.Cols, b.Cols
	scaleRows(beta, c)
	if m == 0 || n == 0 || k == 0 {
		return
	}
	if panels := parPanels(m, m*n*k); panels > 0 {
		// Capture COPIES of the matrix headers: capturing the parameters
		// themselves would make every caller's header escape to the heap,
		// and nn layers build Matrix views on the stack per call.
		aa, bb, cc := *a, *b, *c
		par.ForEach(panels, Workers(), func(p int) {
			lo, hi := panelBounds(p, m)
			gemmPanel(alpha, &aa, &bb, &cc, lo, hi, k)
		})
		return
	}
	gemmPanel(alpha, a, b, c, 0, m, k)
}

// gemmPanel computes C rows [lo, hi) with the GEBP loop nest: k-panels
// outermost (so every element still accumulates k-terms in ascending
// order), then 4-column j-strips, then 2-row micro-tiles. With the j-strip
// OUTSIDE the row loop, the B column strip the micro-kernel streams
// (kcBlock rows x 32 bytes) stays L1-resident and is reused by every row
// pair of the panel; nesting the other way re-streams the whole B panel
// per row pair from L2 or memory.
func gemmPanel(alpha float64, a, b, c *Matrix, lo, hi, k int) {
	if useAsmGemm && alpha == 1 {
		gemmPanelSSE(a, b, c, lo, hi, k)
		return
	}
	n := b.Cols
	for k0 := 0; k0 < k; k0 += kcBlock {
		k1 := k0 + kcBlock
		if k1 > k {
			k1 = k
		}
		j := 0
		for ; j+4 <= n; j += 4 {
			i := lo
			for ; i+2 <= hi; i += 2 {
				gemmMicro2x4(alpha, a, b, c, i, j, k0, k1)
			}
			for ; i < hi; i++ {
				gemmMicro1x4(alpha, a.Row(i), b, c.Row(i), j, k0, k1)
			}
		}
		for ; j < n; j++ {
			for i := lo; i < hi; i++ {
				gemmMicro1x1(alpha, a.Row(i), b, c.Row(i), j, k0, k1)
			}
		}
	}
}

// gemmPanelSSE is the alpha == 1 panel body dispatching to the packed SSE2
// micro-kernel (gemm_amd64.s). The kernel has no zero-skip branch, so a Go
// pre-scan classifies each panel row once per k-block: row pairs with no
// exact-zero coefficient take the 2x8 packed kernel, anything else falls
// back to the scalar micro-kernels, which preserve the skip. On dense data
// (trained weights, normalized activations) the scan almost always passes
// and costs two reads per coefficient against sixteen multiply-adds.
func gemmPanelSSE(a, b, c *Matrix, lo, hi, k int) {
	var nz [panelRows]bool
	n, step := b.Cols, b.Cols
	for k0 := 0; k0 < k; k0 += kcBlock {
		k1 := k0 + kcBlock
		if k1 > k {
			k1 = k
		}
		// The serial path covers all m rows in one call, so re-chunk into
		// panelRows strips to bound the nz scratch.
		for i0 := lo; i0 < hi; i0 += panelRows {
			i2 := i0 + panelRows
			if i2 > hi {
				i2 = hi
			}
			for r := i0; r < i2; r++ {
				nz[r-i0] = rowNoZeros(a.Row(r)[k0:k1])
			}
			j := 0
			for ; j+8 <= n; j += 8 {
				i := i0
				for ; i+2 <= i2; i += 2 {
					if nz[i-i0] && nz[i-i0+1] {
						ap0, ap1 := a.Row(i), a.Row(i+1)
						c0, c1 := c.Row(i), c.Row(i+1)
						gemmMadd2x8(&ap0[k0], &ap1[k0], &b.Data[k0*step+j],
							&c0[j], &c1[j], step*8, k1-k0)
						continue
					}
					gemmMicro2x4(1, a, b, c, i, j, k0, k1)
					gemmMicro2x4(1, a, b, c, i, j+4, k0, k1)
				}
				for ; i < i2; i++ {
					gemmMicro1x4(1, a.Row(i), b, c.Row(i), j, k0, k1)
					gemmMicro1x4(1, a.Row(i), b, c.Row(i), j+4, k0, k1)
				}
			}
			for ; j+4 <= n; j += 4 {
				i := i0
				for ; i+2 <= i2; i += 2 {
					gemmMicro2x4(1, a, b, c, i, j, k0, k1)
				}
				for ; i < i2; i++ {
					gemmMicro1x4(1, a.Row(i), b, c.Row(i), j, k0, k1)
				}
			}
			for ; j < n; j++ {
				for i := i0; i < i2; i++ {
					gemmMicro1x1(1, a.Row(i), b, c.Row(i), j, k0, k1)
				}
			}
		}
	}
}

// rowNoZeros reports whether s is free of exact zeros, i.e. the naive
// kernel's zero-coefficient skip cannot fire on this coefficient range.
func rowNoZeros(s []float64) bool {
	for _, v := range s {
		if v == 0 {
			return false
		}
	}
	return true
}

// gemmMicro2x4 accumulates the 2x4 C block at (i, j) over the k-panel
// [k0, k1) in eight register accumulators, so the inner loop's only memory
// traffic is two A coefficients and four B values per k — the streamed-C
// axpy form pays two L1 ops per multiply-add instead. Eight accumulators
// plus six streamed values fit amd64's sixteen XMM registers; a wider tile
// spills and runs SLOWER. Bit-exactness holds because each element's
// accumulator receives one addition per k in ascending order, seeded from
// the (already beta-scaled) C value, and a zero coefficient skips its four
// additions exactly like the naive kernel's k-skip.
func gemmMicro2x4(alpha float64, a, b, c *Matrix, i, j, k0, k1 int) {
	ap0 := a.Row(i)[k0:k1]
	ap1 := a.Row(i + 1)[k0:k1]
	ap1 = ap1[:len(ap0)]
	c0 := c.Row(i)[j : j+4]
	c1 := c.Row(i + 1)[j : j+4]
	s00, s01, s02, s03 := c0[0], c0[1], c0[2], c0[3]
	s10, s11, s12, s13 := c1[0], c1[1], c1[2], c1[3]
	// Walk B by flat offset: one add per k instead of a row multiply and
	// double reslice in the hottest loop of the package.
	bd, step := b.Data, b.Cols
	off := k0*step + j
	if alpha == 1 {
		// alpha == 1 fast path: 1*x is bit-identical to x for every finite,
		// infinite, and quiet-NaN value (only signaling-NaN payloads would
		// differ, and the engines never produce those), so dropping the two
		// coefficient multiplies per k preserves the parity contract while
		// returning a quarter of the FP-port budget to the accumulators.
		for kk, v0 := range ap0 {
			brow := bd[off : off+4 : off+4]
			bv0, bv1, bv2, bv3 := brow[0], brow[1], brow[2], brow[3]
			off += step
			v1 := ap1[kk]
			if v0 != 0 && v1 != 0 {
				s00 += v0 * bv0
				s01 += v0 * bv1
				s02 += v0 * bv2
				s03 += v0 * bv3
				s10 += v1 * bv0
				s11 += v1 * bv1
				s12 += v1 * bv2
				s13 += v1 * bv3
				continue
			}
			if v0 != 0 {
				s00 += v0 * bv0
				s01 += v0 * bv1
				s02 += v0 * bv2
				s03 += v0 * bv3
			}
			if v1 != 0 {
				s10 += v1 * bv0
				s11 += v1 * bv1
				s12 += v1 * bv2
				s13 += v1 * bv3
			}
		}
	} else {
		for kk, av0 := range ap0 {
			brow := bd[off : off+4 : off+4]
			bv0, bv1, bv2, bv3 := brow[0], brow[1], brow[2], brow[3]
			off += step
			v0 := alpha * av0
			v1 := alpha * ap1[kk]
			if v0 != 0 && v1 != 0 {
				s00 += v0 * bv0
				s01 += v0 * bv1
				s02 += v0 * bv2
				s03 += v0 * bv3
				s10 += v1 * bv0
				s11 += v1 * bv1
				s12 += v1 * bv2
				s13 += v1 * bv3
				continue
			}
			if v0 != 0 {
				s00 += v0 * bv0
				s01 += v0 * bv1
				s02 += v0 * bv2
				s03 += v0 * bv3
			}
			if v1 != 0 {
				s10 += v1 * bv0
				s11 += v1 * bv1
				s12 += v1 * bv2
				s13 += v1 * bv3
			}
		}
	}
	c0[0], c0[1], c0[2], c0[3] = s00, s01, s02, s03
	c1[0], c1[1], c1[2], c1[3] = s10, s11, s12, s13
}

// gemmMicro1x4 is the single-row tail of gemmMicro2x4.
func gemmMicro1x4(alpha float64, arow []float64, b *Matrix, crow []float64, j, k0, k1 int) {
	cs := crow[j : j+4]
	s0, s1, s2, s3 := cs[0], cs[1], cs[2], cs[3]
	for kk, av := range arow[k0:k1] {
		v := alpha * av
		if v == 0 {
			continue
		}
		brow := b.Row(k0 + kk)[j : j+4 : j+4]
		s0 += v * brow[0]
		s1 += v * brow[1]
		s2 += v * brow[2]
		s3 += v * brow[3]
	}
	cs[0], cs[1], cs[2], cs[3] = s0, s1, s2, s3
}

// gemmMicro1x1 is the scalar column-remainder kernel.
func gemmMicro1x1(alpha float64, arow []float64, b *Matrix, crow []float64, j, k0, k1 int) {
	s := crow[j]
	for kk, av := range arow[k0:k1] {
		v := alpha * av
		if v == 0 {
			continue
		}
		s += v * b.Row(k0 + kk)[j]
	}
	crow[j] = s
}

// axpyRow is dst += v * src over exactly len(src) elements; the reslice
// makes the loop bounds-check-free.
func axpyRow(dst []float64, v float64, src []float64) {
	dst = dst[:len(src)]
	for j, sv := range src {
		dst[j] += v * sv
	}
}

func gemmTABlocked(alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	k, m, n := a.Rows, a.Cols, b.Cols // C is m x n, reduction over A's rows
	scaleRows(beta, c)
	if m == 0 || n == 0 || k == 0 {
		return
	}
	// The naive kernel walks k outermost; for a fixed C element the terms
	// still arrive in ascending k, so interchanging to C-row panels (i
	// outer) reorders nothing per element.
	if panels := parPanels(m, m*n*k); panels > 0 {
		aa, bb, cc := *a, *b, *c // header copies: keep caller headers off the heap
		par.ForEach(panels, Workers(), func(p int) {
			lo, hi := panelBounds(p, m)
			gemmTAPanel(alpha, &aa, &bb, &cc, lo, hi, k)
		})
		return
	}
	gemmTAPanel(alpha, a, b, c, 0, m, k)
}

func gemmTAPanel(alpha float64, a, b, c *Matrix, lo, hi, k int) {
	for k0 := 0; k0 < k; k0 += kcBlock {
		k1 := k0 + kcBlock
		if k1 > k {
			k1 = k
		}
		i := lo
		for ; i+rowTile <= hi; i += rowTile {
			gemmTATile4(alpha, a, b, c, i, k0, k1)
		}
		for ; i < hi; i++ {
			gemmTATile1(alpha, a, b, c.Row(i), i, k0, k1)
		}
	}
}

// gemmTATile4 is gemmTile4 with A read transposed: coefficients for C rows
// i..i+3 sit adjacent in each A row, so the strided reads stay within one
// cache line per k.
func gemmTATile4(alpha float64, a, b, c *Matrix, i, k0, k1 int) {
	c0, c1, c2, c3 := c.Row(i), c.Row(i+1), c.Row(i+2), c.Row(i+3)
	for kk := k0; kk < k1; kk++ {
		arow := a.Row(kk)
		v0 := alpha * arow[i]
		v1 := alpha * arow[i+1]
		v2 := alpha * arow[i+2]
		v3 := alpha * arow[i+3]
		brow := b.Row(kk)
		if v0 != 0 && v1 != 0 && v2 != 0 && v3 != 0 {
			c0, c1, c2, c3 := c0[:len(brow)], c1[:len(brow)], c2[:len(brow)], c3[:len(brow)]
			for j, bv := range brow {
				c0[j] += v0 * bv
				c1[j] += v1 * bv
				c2[j] += v2 * bv
				c3[j] += v3 * bv
			}
			continue
		}
		if v0 != 0 {
			axpyRow(c0, v0, brow)
		}
		if v1 != 0 {
			axpyRow(c1, v1, brow)
		}
		if v2 != 0 {
			axpyRow(c2, v2, brow)
		}
		if v3 != 0 {
			axpyRow(c3, v3, brow)
		}
	}
}

func gemmTATile1(alpha float64, a, b *Matrix, crow []float64, i, k0, k1 int) {
	for kk := k0; kk < k1; kk++ {
		aik := alpha * a.Row(kk)[i]
		if aik == 0 {
			continue
		}
		axpyRow(crow, aik, b.Row(kk))
	}
}

func gemmTBBlocked(alpha float64, a, b *Matrix, beta float64, c *Matrix) {
	m, k, n := a.Rows, a.Cols, b.Rows // C is m x n, dot-product form
	if m == 0 || n == 0 {
		return
	}
	if panels := parPanels(m, m*n*k); panels > 0 {
		aa, bb, cc := *a, *b, *c // header copies: keep caller headers off the heap
		par.ForEach(panels, Workers(), func(p int) {
			lo, hi := panelBounds(p, m)
			gemmTBPanel(alpha, &aa, &bb, beta, &cc, lo, hi, n)
		})
		return
	}
	gemmTBPanel(alpha, a, b, beta, c, 0, m, n)
}

func gemmTBPanel(alpha float64, a, b *Matrix, beta float64, c *Matrix, lo, hi, n int) {
	i := lo
	for ; i+2 <= hi; i += 2 {
		a0, a1 := a.Row(i), a.Row(i+1)
		c0, c1 := c.Row(i), c.Row(i+1)
		j := 0
		for ; j+2 <= n; j += 2 {
			// 2x2 register tile: four dot products sharing every
			// streamed A and B element; each accumulator sums in
			// ascending k exactly like Dot. The reslices pin all
			// operands to len(a0) for bounds-check elimination.
			a1 := a1[:len(a0)]
			b0 := b.Row(j)[:len(a0)]
			b1 := b.Row(j + 1)[:len(a0)]
			var s00, s01, s10, s11 float64
			for kk, av0 := range a0 {
				av1 := a1[kk]
				bv0 := b0[kk]
				bv1 := b1[kk]
				s00 += av0 * bv0
				s01 += av0 * bv1
				s10 += av1 * bv0
				s11 += av1 * bv1
			}
			if beta == 0 {
				c0[j] = alpha * s00
				c0[j+1] = alpha * s01
				c1[j] = alpha * s10
				c1[j+1] = alpha * s11
			} else {
				c0[j] = alpha*s00 + beta*c0[j]
				c0[j+1] = alpha*s01 + beta*c0[j+1]
				c1[j] = alpha*s10 + beta*c1[j]
				c1[j+1] = alpha*s11 + beta*c1[j+1]
			}
		}
		for ; j < n; j++ {
			brow := b.Row(j)
			var s0, s1 float64
			for kk, av0 := range a0 {
				bv := brow[kk]
				s0 += av0 * bv
				s1 += a1[kk] * bv
			}
			if beta == 0 {
				c0[j] = alpha * s0
				c1[j] = alpha * s1
			} else {
				c0[j] = alpha*s0 + beta*c0[j]
				c1[j] = alpha*s1 + beta*c1[j]
			}
		}
	}
	for ; i < hi; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for j := 0; j < n; j++ {
			s := Dot(arow, b.Row(j))
			if beta == 0 {
				crow[j] = alpha * s
			} else {
				crow[j] = alpha*s + beta*crow[j]
			}
		}
	}
}

func gemvBlocked(alpha float64, a *Matrix, x []float64, beta float64, y []float64) {
	m, n := a.Rows, a.Cols
	if m == 0 {
		return
	}
	if panels := parPanels(m, m*n); panels > 0 {
		aa := *a // header copy: keep the caller's header off the heap
		par.ForEach(panels, Workers(), func(p int) {
			lo, hi := panelBounds(p, m)
			gemvPanel(alpha, &aa, x, beta, y, lo, hi)
		})
		return
	}
	gemvPanel(alpha, a, x, beta, y, 0, m)
}

func gemvPanel(alpha float64, a *Matrix, x []float64, beta float64, y []float64, lo, hi int) {
	i := lo
	for ; i+rowTile <= hi; i += rowTile {
		a0 := a.Row(i)[:len(x)]
		a1 := a.Row(i + 1)[:len(x)]
		a2 := a.Row(i + 2)[:len(x)]
		a3 := a.Row(i + 3)[:len(x)]
		var s0, s1, s2, s3 float64
		for j, xv := range x {
			s0 += a0[j] * xv
			s1 += a1[j] * xv
			s2 += a2[j] * xv
			s3 += a3[j] * xv
		}
		if beta == 0 {
			y[i] = alpha * s0
			y[i+1] = alpha * s1
			y[i+2] = alpha * s2
			y[i+3] = alpha * s3
		} else {
			y[i] = alpha*s0 + beta*y[i]
			y[i+1] = alpha*s1 + beta*y[i+1]
			y[i+2] = alpha*s2 + beta*y[i+2]
			y[i+3] = alpha*s3 + beta*y[i+3]
		}
	}
	for ; i < hi; i++ {
		row := a.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		if beta == 0 {
			y[i] = alpha * s
		} else {
			y[i] = alpha*s + beta*y[i]
		}
	}
}

func gemvTBlocked(alpha float64, a *Matrix, x []float64, beta float64, y []float64) {
	m, n := a.Rows, a.Cols
	// Panels split the OUTPUT (columns of A), so the beta pre-pass and every
	// ascending-i accumulation happen panel-locally with one writer per
	// element.
	if panels := parPanels(n, m*n); panels > 0 {
		aa := *a // header copy: keep the caller's header off the heap
		par.ForEach(panels, Workers(), func(p int) {
			lo, hi := panelBounds(p, n)
			gemvTPanel(alpha, &aa, x, beta, y, lo, hi, m)
		})
		return
	}
	gemvTPanel(alpha, a, x, beta, y, 0, n, m)
}

func gemvTPanel(alpha float64, a *Matrix, x []float64, beta float64, y []float64, lo, hi, m int) {
	yp := y[lo:hi]
	if beta == 0 {
		Zero(yp)
	} else if beta != 1 {
		for j := range yp {
			yp[j] *= beta
		}
	}
	i := 0
	for ; i+2 <= m; i += 2 {
		ax0 := alpha * x[i]
		ax1 := alpha * x[i+1]
		r0 := a.Row(i)[lo:hi]
		r1 := a.Row(i + 1)[lo:hi]
		if ax0 != 0 && ax1 != 0 {
			// Two separate additions per element keep the ascending-i
			// term order of the naive kernel.
			yp, r1 := yp[:len(r0)], r1[:len(r0)]
			for j, v := range r0 {
				yp[j] += ax0 * v
				yp[j] += ax1 * r1[j]
			}
			continue
		}
		if ax0 != 0 {
			axpyRow(yp, ax0, r0)
		}
		if ax1 != 0 {
			axpyRow(yp, ax1, r1)
		}
	}
	if i < m {
		ax := alpha * x[i]
		if ax != 0 {
			axpyRow(yp, ax, a.Row(i)[lo:hi])
		}
	}
}
