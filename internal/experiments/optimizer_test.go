package experiments

import (
	"math"
	"testing"
)

// TestOptimizerAblationQuick is the optimizer layer's acceptance anchor: at
// quick scale with the default seed, every rule finishes the budget with a
// finite loss, the wire-visible-state row (synced Adam moments through
// compressed CHOCO gossip + float32 wire) runs end to end, and the
// momentum/slowmo rows reach the shared target loss no later than plain SGD
// — the classical acceleration, surviving the distributed barrier.
func TestOptimizerAblationQuick(t *testing.T) {
	target, rows := OptimizerAblation(DefaultOptimizerSpec(ScaleQuick))
	if !(target > 0) || math.IsInf(target, 0) {
		t.Fatalf("degenerate shared target %v", target)
	}
	byName := map[string]LinkAwareRow{}
	for _, r := range rows {
		if math.IsNaN(r.FinalLoss) || math.IsInf(r.FinalLoss, 0) {
			t.Fatalf("method %s final loss %v", r.Method, r.FinalLoss)
		}
		if math.IsNaN(r.TimeToTarget) {
			t.Fatalf("method %s never reached the shared target", r.Method)
		}
		byName[r.Method] = r
	}
	for _, name := range []string{"sgd", "momentum", "nesterov", "adam",
		"adam+synced choco", "slowmo", "qsgd norm-bits"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("missing ablation row %q", name)
		}
	}
	sgdRow := byName["sgd"]
	for _, name := range []string{"momentum", "slowmo"} {
		if r := byName[name]; r.TimeToTarget > sgdRow.TimeToTarget {
			t.Fatalf("%s reached the target at t=%.1f, later than plain SGD's t=%.1f",
				name, r.TimeToTarget, sgdRow.TimeToTarget)
		}
	}
}
