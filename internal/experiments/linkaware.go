package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/delaymodel"
	"repro/internal/metrics"
	"repro/internal/paramserver"
	"repro/internal/rng"
	"repro/internal/sgd"
)

// The link-aware ablation quantifies the tentpole claim: on a cluster whose
// straggler is slow in bytes per second, controllers that consume the
// observed per-round timing (cluster.RoundInfo / paramserver.RoundInfo)
// dominate the paper's static loss-ratio rules. AdaComm's LinkAware mode
// holds tau higher by sqrt(observed alpha), amortizing the slow link;
// AdaSync's LinkAware mode stops growing K past the fast-link count, so the
// slow link never gates an update (Kas Hanna et al. 2022).

// LinkAwareRow is one method's outcome on the constrained cluster.
type LinkAwareRow struct {
	Method       string
	FinalLoss    float64
	MinLoss      float64
	TimeToTarget float64 // simulated seconds to reach the shared target loss
	Iters        int     // local iterations (or server updates) in the budget
	FinalTau     int     // final tau (or K)
}

// linkAwareRows converts traces into rows against a shared target: the
// loosest minimum loss across methods, relaxed 1%, so every method reaches
// it and time-to-target is always defined.
func linkAwareRows(traces []*metrics.Trace) (float64, []LinkAwareRow) {
	worst := 0.0
	for _, tr := range traces {
		if l := tr.MinLoss(); l > worst {
			worst = l
		}
	}
	target := worst * 1.01
	rows := make([]LinkAwareRow, 0, len(traces))
	for _, tr := range traces {
		rows = append(rows, LinkAwareRow{
			Method:       tr.Name,
			FinalLoss:    tr.FinalLoss(),
			MinLoss:      tr.MinLoss(),
			TimeToTarget: tr.TimeToLoss(target),
			Iters:        tr.Last().Iter,
			FinalTau:     tr.Last().Tau,
		})
	}
	return target, rows
}

// LinkAwareAblation runs the static-rule AdaComm against the link-aware mode
// (plus the fixed-tau endpoints for context) on the 10x bandwidth-straggler
// profile of HeterogeneousStragglerAblation, under one simulated-time
// budget. The returned target is the shared loss level the time-to-target
// column measures.
func LinkAwareAblation(spec HeteroSpec) (float64, []LinkAwareRow) {
	w := BuildWorkload(ArchLogistic, 4, spec.Workers, spec.Scale, spec.Seed)
	w.Delay.Bandwidth = spec.Bandwidth
	links := make([]delaymodel.Link, spec.Workers)
	links[spec.Workers-1].Bandwidth = spec.Bandwidth / spec.SlowFactor
	w.Delay.Links = links

	// A shorter budget than the straggler ablation's, split into many
	// intervals: the controllers must differentiate WHILE the loss is still
	// falling — with one long first interval both run tau0 until the
	// interesting phase is over and only the noise floor separates them.
	budget := spec.TimeBudget / 3
	cfg := cluster.Config{
		BatchSize:  spec.BatchSize,
		MaxTime:    budget,
		EvalEvery:  50,
		EvalSubset: 400,
		Seed:       spec.Seed + 1,
	}
	sched := sgd.Const{Eta: spec.LR}
	adaCfg := func(linkAware bool) core.Config {
		return core.Config{
			Tau0: spec.Tau0, Interval: budget / 12, Gamma: 0.5,
			Schedule: sched, LinkAware: linkAware,
		}
	}
	runs := []struct {
		name string
		ctrl func() cluster.Controller
	}{
		{"tau=1", func() cluster.Controller { return cluster.FixedTau{Tau: 1, Schedule: sched} }},
		{"adacomm", func() cluster.Controller { return core.NewAdaComm(adaCfg(false)) }},
		{"adacomm+link", func() cluster.Controller { return core.NewAdaComm(adaCfg(true)) }},
	}
	traces := make([]*metrics.Trace, len(runs))
	forEach(len(runs), func(i int) {
		e := w.Engine(cfg)
		traces[i] = e.Run(runs[i].ctrl(), runs[i].name)
	})
	return linkAwareRows(traces)
}

// LinkAwareAdaSyncAblation is the parameter-server half: K-async SGD where
// worker m-1's uplink is 10x slower than the shared bandwidth, comparing the
// static AdaSync growth rule against the link-aware cap under the same
// simulated-time budget.
func LinkAwareAdaSyncAblation(scale Scale) (float64, []LinkAwareRow) {
	m := 8
	w := BuildWorkload(ArchLogistic, 4, m, scale, 501)
	budget := 600.0
	if scale == ScaleQuick {
		budget = 250
	}
	bandwidth := 256.0
	links := make([]delaymodel.Link, m)
	links[m-1].Bandwidth = bandwidth / 10
	cfg := paramserver.Config{
		Mode:       paramserver.KAsync,
		BatchSize:  8,
		ComputeY:   rng.Exponential{MeanVal: 1},
		PushDelay:  rng.Constant{Value: 0.1},
		Bandwidth:  bandwidth,
		Links:      links,
		MaxTime:    budget,
		EvalEvery:  10,
		EvalSubset: 400,
		Seed:       502,
	}
	shards := data.ShardIID(w.Train, m, rng.New(503))

	// A short interval grows the static K to m early in the run, so the
	// slow link starts gating updates while the loss is still falling and
	// the two rules separate on the time axis.
	adaCfg := func(linkAware bool) paramserver.AdaSyncConfig {
		return paramserver.AdaSyncConfig{
			K0: 1, M: m, Interval: budget / 40, LR: 0.1, LinkAware: linkAware,
		}
	}
	runs := []struct {
		name string
		ctrl func() paramserver.Controller
	}{
		{"adasync", func() paramserver.Controller { return paramserver.NewAdaSync(adaCfg(false)) }},
		{"adasync+link", func() paramserver.Controller { return paramserver.NewAdaSync(adaCfg(true)) }},
	}
	traces := make([]*metrics.Trace, len(runs))
	forEach(len(runs), func(i int) {
		s, err := paramserver.New(w.Proto, shards, w.Train, cfg)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		tr, _ := s.Run(runs[i].ctrl(), runs[i].name)
		traces[i] = tr
	})
	return linkAwareRows(traces)
}

// PrintLinkAware renders either ablation's rows.
func PrintLinkAware(w io.Writer, header string, target float64, rows []LinkAwareRow) {
	fmt.Fprintf(w, "== %s (time to loss %.5f) ==\n", header, target)
	fmt.Fprintf(w, "%-20s %12s %12s %11s %8s %9s\n",
		"method", "final loss", "min loss", "t(target)", "iters", "final tau")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %12.5f %12.5f %11.1f %8d %9d\n",
			r.Method, r.FinalLoss, r.MinLoss, r.TimeToTarget, r.Iters, r.FinalTau)
	}
}
