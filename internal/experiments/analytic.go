package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/bound"
	"repro/internal/delaymodel"
	"repro/internal/rng"
)

// ---------------------------------------------------------------------------
// Figure 4: speed-up of PASGD over fully synchronous SGD (eq 12).
// ---------------------------------------------------------------------------

// Fig4Row is one (alpha, tau) point of the speed-up surface.
type Fig4Row struct {
	Alpha   float64
	Tau     int
	Speedup float64
}

// Fig4 evaluates eq 12 for the paper's three alpha values over tau=1..100.
func Fig4() []Fig4Row {
	var rows []Fig4Row
	for _, alpha := range []float64{0.1, 0.5, 0.9} {
		for tau := 1; tau <= 100; tau++ {
			rows = append(rows, Fig4Row{
				Alpha: alpha, Tau: tau,
				Speedup: delaymodel.SpeedupConstant(alpha, tau),
			})
		}
	}
	return rows
}

// PrintFig4 renders the asymptotic speed-ups (the figure's right edge).
func PrintFig4(w io.Writer, rows []Fig4Row) {
	fmt.Fprintln(w, "== Fig 4: speedup over fully synchronous SGD (eq 12) ==")
	fmt.Fprintln(w, "alpha    tau=1    tau=10   tau=50   tau=100")
	for _, alpha := range []float64{0.1, 0.5, 0.9} {
		fmt.Fprintf(w, "%5.2f", alpha)
		for _, tau := range []int{1, 10, 50, 100} {
			for _, r := range rows {
				if r.Alpha == alpha && r.Tau == tau {
					fmt.Fprintf(w, " %8.4f", r.Speedup)
				}
			}
		}
		fmt.Fprintln(w)
	}
}

// ---------------------------------------------------------------------------
// Figure 5: runtime-per-iteration distribution under exponential compute
// times (y=1, D=1, m=16): sync SGD vs PASGD tau=10.
// ---------------------------------------------------------------------------

// Fig5Result carries the two empirical distributions and their means.
type Fig5Result struct {
	SyncHist *rng.Histogram
	PAvgHist *rng.Histogram
	SyncMean float64
	PAvgMean float64
	Trials   int
	// Bytes/Bandwidth record the broadcast payload and per-link rate the
	// samples were priced with (both 0 for the paper's size-free model).
	Bytes     int
	Bandwidth float64
}

// Fig5 Monte-Carlo samples both distributions with the paper's parameters
// (the size-free broadcast; identical to Fig5Bytes with a zero payload).
func Fig5(trials int, seed uint64) Fig5Result {
	return Fig5Bytes(trials, seed, 0, 0)
}

// Fig5Bytes is Fig 5 on a bandwidth-constrained link: every broadcast is
// charged the size-aware cost of a `bytes` payload against the given
// per-link bandwidth (delaymodel.SampleSyncIterationBytes /
// SampleRoundBytes). bytes = 0 reproduces the size-free figure bit for bit —
// same values, same draws.
func Fig5Bytes(trials int, seed uint64, bytes int, bandwidth float64) Fig5Result {
	dm := delaymodel.New(16, rng.Exponential{MeanVal: 1}, rng.Constant{Value: 1},
		delaymodel.ConstantScaling{})
	dm.Bandwidth = bandwidth
	r := rng.New(seed)
	// Widen the histogram range to keep the heavier size-aware tail visible.
	hi := 8.0
	if bandwidth > 0 && bytes > 0 {
		hi += float64(bytes) / bandwidth
	}
	res := Fig5Result{
		SyncHist:  rng.NewHistogram(0, hi, 40),
		PAvgHist:  rng.NewHistogram(0, hi, 40),
		Trials:    trials,
		Bytes:     bytes,
		Bandwidth: bandwidth,
	}
	for t := 0; t < trials; t++ {
		s := dm.SampleSyncIterationBytes(r, bytes)
		p := dm.SamplePerIterationBytes(10, r, bytes)
		res.SyncHist.Add(s)
		res.PAvgHist.Add(p)
		res.SyncMean += s
		res.PAvgMean += p
	}
	res.SyncMean /= float64(trials)
	res.PAvgMean /= float64(trials)
	return res
}

// PrintFig5 renders the distributions as an ASCII density table.
func PrintFig5(w io.Writer, res Fig5Result) {
	fmt.Fprintln(w, "== Fig 5: runtime/iteration distribution (m=16, y=1, D=1) ==")
	if res.Bytes > 0 && res.Bandwidth > 0 {
		fmt.Fprintf(w, "broadcast payload:   %d bytes @ %g B/s (+%.3f s/transfer)\n",
			res.Bytes, res.Bandwidth, float64(res.Bytes)/res.Bandwidth)
	}
	fmt.Fprintf(w, "mean sync SGD:       %.4f\n", res.SyncMean)
	fmt.Fprintf(w, "mean PASGD(tau=10):  %.4f\n", res.PAvgMean)
	fmt.Fprintf(w, "mean ratio:          %.2fx less\n", res.SyncMean/res.PAvgMean)
	fmt.Fprintln(w, "bin-center  p(sync)  p(pasgd)")
	for i := 0; i < len(res.SyncHist.Counts); i += 2 {
		fmt.Fprintf(w, "%9.2f  %7.4f  %8.4f\n",
			res.SyncHist.BinCenter(i), res.SyncHist.Density(i), res.PAvgHist.Density(i))
	}
}

// ---------------------------------------------------------------------------
// Figure 6: Theorem 1 error bound versus wall-clock time.
// ---------------------------------------------------------------------------

// Fig6Curve is one bound-vs-time learning curve.
type Fig6Curve struct {
	Tau    int
	Times  []float64
	Values []float64
}

// Fig6Constants returns the exact constants under the figure (paper: F1=1,
// Finf=0, eta=0.08, L=1, sigma^2=1, with the Fig 5 delay parameters m=16,
// Y=1, D=1).
func Fig6Constants() bound.Constants {
	return bound.Constants{F1: 1, Finf: 0, Eta: 0.08, L: 1, Sigma2: 1, M: 16, Y: 1, D: 1}
}

// SizeAwareConstants charges the bound constants' broadcast delay D the
// size-aware transfer term bytes/bandwidth — the theory-side counterpart of
// the *Bytes Monte-Carlo drivers, used to regenerate the Fig 6/7 bound
// curves for a bandwidth-constrained link. A zero payload or bandwidth
// returns c unchanged.
func SizeAwareConstants(c bound.Constants, bytes int, bandwidth float64) bound.Constants {
	if bytes > 0 && bandwidth > 0 {
		c.D += float64(bytes) / bandwidth
	}
	return c
}

// Fig6 samples the bound curves for tau=1 (sync SGD) and tau=10.
func Fig6(points int) []Fig6Curve {
	c := Fig6Constants()
	var out []Fig6Curve
	for _, tau := range []int{1, 10} {
		times, vals := c.Curve(tau, 4000, points)
		out = append(out, Fig6Curve{Tau: tau, Times: times, Values: vals})
	}
	return out
}

// PrintFig6 renders selected points of both curves and the crossover.
func PrintFig6(w io.Writer, curves []Fig6Curve) {
	fmt.Fprintln(w, "== Fig 6: Theorem-1 bound vs runtime (eta=0.08, L=1, sigma2=1, m=16) ==")
	c := Fig6Constants()
	fmt.Fprintln(w, "time      bound(tau=1)  bound(tau=10)")
	for _, frac := range []float64{0.05, 0.1, 0.25, 0.5, 1.0} {
		T := 4000 * frac
		fmt.Fprintf(w, "%7.0f  %12.4f  %13.4f\n",
			T, c.ErrorAtTime(T, 1), c.ErrorAtTime(T, 10))
	}
	fmt.Fprintf(w, "crossover time (tau=10 vs tau=1): %.1f\n", c.CrossoverTime(10, 1))
	fmt.Fprintf(w, "error floors: tau=1 %.4f, tau=10 %.4f\n", c.ErrorFloor(1), c.ErrorFloor(10))
}

// ---------------------------------------------------------------------------
// Figure 7: per-interval best tau (the adaptive schedule, from theory).
// ---------------------------------------------------------------------------

// Fig7Result is the sequence of per-interval optimal communication periods
// chosen by minimizing the Theorem-1 bound over each wall-clock interval —
// the idealized version of AdaComm sketched in Fig 7(b).
type Fig7Result struct {
	IntervalLen float64
	TauStars    []int     // best tau per interval (grid-argmin of the bound)
	TauFormula  []float64 // eq 16's closed form at each interval start
}

// Fig7 computes both the grid-argmin and the closed-form tau* for a run of
// `intervals` intervals of length T0, with bound constants c. The loss at
// the start of each interval is taken from the bound of the previous
// interval's choice (a self-consistent forward simulation of the theory).
func Fig7(c bound.Constants, t0 float64, intervals, tauGrid int) Fig7Result {
	res := Fig7Result{IntervalLen: t0}
	cur := c
	for l := 0; l < intervals; l++ {
		// Closed form (eq 16) with the current "restart" loss.
		res.TauFormula = append(res.TauFormula, cur.OptimalTau(t0))
		// Grid argmin of the bound at the end of this interval.
		best, bestVal := 1, math.Inf(1)
		for tau := 1; tau <= tauGrid; tau++ {
			if v := cur.ErrorAtTime(t0, tau); v < bestVal {
				best, bestVal = tau, v
			}
		}
		res.TauStars = append(res.TauStars, best)
		// Restart: the next interval begins from the achieved error level.
		// The bound is on gradient norm; use it as a proxy for the
		// remaining objective gap, scaled into F-units.
		next := cur
		next.F1 = math.Max(cur.Finf, bestVal)
		cur = next
	}
	return res
}

// PrintFig7 renders the schedule.
func PrintFig7(w io.Writer, res Fig7Result) {
	fmt.Fprintln(w, "== Fig 7: theory-driven adaptive schedule (best tau per interval) ==")
	fmt.Fprintln(w, "interval  tau*(grid)  tau*(eq 16)")
	for i, tau := range res.TauStars {
		fmt.Fprintf(w, "%8d  %10d  %11.2f\n", i, tau, res.TauFormula[i])
	}
}

// ---------------------------------------------------------------------------
// Figure 8: computation vs communication wall-clock for 100 iterations.
// ---------------------------------------------------------------------------

// Fig8 measures the compute/communication breakdown of 100 iterations for
// both architecture profiles at tau=1 and tau=10 with m workers (size-free
// broadcasts; identical to Fig8Bytes with a zero payload).
func Fig8(m int, seed uint64) []delaymodel.Breakdown {
	return Fig8Bytes(m, seed, 0, 0)
}

// Fig8Bytes is Fig 8 on bandwidth-constrained links: each profile is
// constrained to the given per-link bandwidth and every broadcast charged a
// `bytes` payload (delaymodel.MeasureBreakdownBytes), which is where large
// tau's amortization of the transfer term shows up in the comm bars.
// bytes = 0 with bandwidth = 0 reproduces the size-free figure bit for bit.
func Fig8Bytes(m int, seed uint64, bytes int, bandwidth float64) []delaymodel.Breakdown {
	r := rng.New(seed)
	var rows []delaymodel.Breakdown
	for _, p := range []delaymodel.Profile{delaymodel.ResNet50Profile(), delaymodel.VGG16Profile()} {
		// Constrain (and relabel) only when there is a payload to price: with
		// bytes = 0 the sampler ignores bandwidth, and a "@B/s" label over
		// size-free numbers would misrepresent the run.
		if bandwidth > 0 && bytes > 0 {
			p = p.Constrained(bandwidth)
		}
		for _, tau := range []int{1, 10} {
			rows = append(rows, delaymodel.MeasureBreakdownBytes(p, m, tau, 100, r, bytes))
		}
	}
	return rows
}

// PrintFig8 renders the stacked-bar data.
func PrintFig8(w io.Writer, rows []delaymodel.Breakdown) {
	fmt.Fprintln(w, "== Fig 8: wall-clock for 100 iterations, compute vs comm (m=4) ==")
	for _, b := range rows {
		fmt.Fprintln(w, b.String())
	}
}
