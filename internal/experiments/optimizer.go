package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/opt"
	"repro/internal/sgd"
)

// The optimizer ablation puts every local update rule (internal/opt) on one
// error-runtime table under the same PASGD barrier and budget: plain SGD,
// heavy-ball and Nesterov momentum, Local Adam with worker-local second
// moments, Local Adam with SYNCED second moments shipped through compressed
// CHOCO gossip over a float32 wire (the wire-visible-state row — optimizer
// state rides the same quantized, narrowed messages the parameters do), and
// SlowMo-style slow/global momentum layered on fast local momentum. A final
// row exercises the norm-decay bit-width rule: AdaComm jointly driving tau
// and a QSGD quantizer whose width follows the observed gradient-norm decay
// (compress.NormDecayBits) instead of the coarse ratio map.

// OptimizerSpec sizes the optimizer ablation.
type OptimizerSpec struct {
	Scale          Scale
	Workers        int
	Tau            int
	BatchSize      int
	LR             float64 // SGD-family learning rate
	AdamLR         float64 // Adam rows' learning rate (Adam wants a smaller step)
	AdamBeta2      float64 // Adam rows' second-moment decay (0 = opt default 0.999)
	GlobalMomentum float64 // slowmo row's slow-momentum factor
	TimeBudget     float64 // simulated seconds per method
	Seed           uint64
}

// DefaultOptimizerSpec returns the sizing used by cmd/figures and cmd/sweep.
func DefaultOptimizerSpec(scale Scale) OptimizerSpec {
	s := OptimizerSpec{
		Scale:          scale,
		Workers:        4,
		Tau:            5,
		BatchSize:      8,
		LR:             0.1,
		AdamLR:         0.02,
		GlobalMomentum: 0.1,
		TimeBudget:     600,
		Seed:           911,
	}
	if scale == ScaleQuick {
		s.TimeBudget = 240
	}
	return s
}

// OptimizerAblation runs every update rule on one logistic workload and one
// simulated-time budget, returning the shared target loss and one row per
// rule. The momentum and slowmo rows are the acceptance anchor: with the
// default seed they reach the shared target no later than plain SGD.
func OptimizerAblation(spec OptimizerSpec) (float64, []LinkAwareRow) {
	lrSched := sgd.Const{Eta: spec.LR}
	adamSched := sgd.Const{Eta: spec.AdamLR}
	base := func() cluster.Config {
		return cluster.Config{
			BatchSize:  spec.BatchSize,
			MaxTime:    spec.TimeBudget,
			EvalEvery:  50,
			EvalSubset: 400,
			Seed:       spec.Seed + 1,
		}
	}
	fixed := func(cfg cluster.Config, sched sgd.Schedule) func(w *Workload, label string) *metrics.Trace {
		return func(w *Workload, label string) *metrics.Trace {
			e := w.Engine(cfg)
			return e.Run(cluster.FixedTau{Tau: spec.Tau, Schedule: sched}, label)
		}
	}

	sgdCfg := base()
	momCfg := base()
	momCfg.Opt = opt.Config{Rule: opt.RuleMomentum, Momentum: 0.9}
	nesCfg := base()
	nesCfg.Opt = opt.Config{Rule: opt.RuleNesterov, Momentum: 0.9}
	adamCfg := base()
	adamCfg.Opt = opt.Config{Rule: opt.RuleAdam, Beta2: spec.AdamBeta2}
	// Wire-visible optimizer state: synced second moments ride CHOCO gossip
	// over a float32 wire — narrowed, estimate-tracked, and priced like the
	// parameters themselves. The wire is dense: aggressive quantization of
	// the second moment is catastrophic (v coordinates are orders of
	// magnitude below the parameter deltas sharing the vector norm, so
	// level noise swamps them and Adam's 1/sqrt(v) amplifies it), which is
	// itself a finding of this ablation axis.
	syncCfg := base()
	syncCfg.Strategy = cluster.RingGossip
	syncCfg.Compress = compress.Spec{Kind: compress.KindIdentity, Wire: compress.WireFloat32}
	syncCfg.AdaptGossipGamma = true
	syncCfg.Opt = opt.Config{Rule: opt.RuleAdam, Beta2: spec.AdamBeta2, SyncedMoments: true}
	// SlowMo: fast local momentum plus a slow global-momentum filter at the
	// averaging points.
	slowCfg := base()
	slowCfg.Opt = opt.Config{Rule: opt.RuleMomentum, Momentum: 0.9}
	slowCfg.GlobalMomentum = spec.GlobalMomentum
	normCfg := base()
	normCfg.Compress = compress.Spec{Kind: compress.KindQSGD, Bits: 4}

	type method struct {
		name string
		run  func(w *Workload, label string) *metrics.Trace
	}
	methods := []method{
		{"sgd", fixed(sgdCfg, lrSched)},
		{"momentum", fixed(momCfg, lrSched)},
		{"nesterov", fixed(nesCfg, lrSched)},
		{"adam", fixed(adamCfg, adamSched)},
		{"adam+synced choco", fixed(syncCfg, adamSched)},
		{"slowmo", fixed(slowCfg, lrSched)},
		{"qsgd norm-bits", func(w *Workload, label string) *metrics.Trace {
			ctrl := core.NewAdaCommCompress(core.Config{
				Tau0: spec.Tau, Interval: spec.TimeBudget / 12, Gamma: 0.5,
				Schedule: lrSched,
			}, core.CompressSchedule{Ratio0: 0.5, NormBits: true, Bits0: 4})
			e := w.Engine(normCfg)
			return e.Run(ctrl, label)
		}},
	}

	traces := make([]*metrics.Trace, len(methods))
	forEach(len(methods), func(i int) {
		w := BuildWorkload(ArchLogistic, 4, spec.Workers, spec.Scale, spec.Seed)
		traces[i] = methods[i].run(w, methods[i].name)
	})
	target, rows := linkAwareRows(traces)
	if len(rows) != len(methods) {
		panic(fmt.Sprintf("experiments: optimizer ablation produced %d rows for %d methods",
			len(rows), len(methods)))
	}
	return target, rows
}
