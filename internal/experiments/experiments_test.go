package experiments

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"

	"repro/internal/delaymodel"
)

func TestFig4Shape(t *testing.T) {
	rows := Fig4()
	if len(rows) != 300 {
		t.Fatalf("Fig4 rows %d, want 300", len(rows))
	}
	// Paper claim: at alpha=0.9 PASGD approaches ~2x speedup.
	var last Fig4Row
	for _, r := range rows {
		if r.Alpha == 0.9 && r.Tau == 100 {
			last = r
		}
		if r.Tau == 1 && math.Abs(r.Speedup-1) > 1e-12 {
			t.Fatalf("speedup at tau=1 must be 1: %+v", r)
		}
	}
	if last.Speedup < 1.8 {
		t.Fatalf("alpha=0.9 tau=100 speedup %v, want ~1.88", last.Speedup)
	}
	var sb strings.Builder
	PrintFig4(&sb, rows)
	if !strings.Contains(sb.String(), "Fig 4") {
		t.Fatal("PrintFig4 empty")
	}
}

func TestFig5Shape(t *testing.T) {
	res := Fig5(20000, 1)
	// Paper: dashed mean lines show ~2x gap.
	ratio := res.SyncMean / res.PAvgMean
	if ratio < 1.8 || ratio > 2.6 {
		t.Fatalf("Fig5 mean ratio %v, want ~2", ratio)
	}
	if res.SyncHist.Total() != 20000 || res.PAvgHist.Total() != 20000 {
		t.Fatal("histogram totals wrong")
	}
	var sb strings.Builder
	PrintFig5(&sb, res)
	if !strings.Contains(sb.String(), "x less") {
		t.Fatal("PrintFig5 missing ratio")
	}
}

func TestFig6Shape(t *testing.T) {
	curves := Fig6(100)
	if len(curves) != 2 {
		t.Fatal("want 2 curves")
	}
	sync, pavg := curves[0], curves[1]
	if sync.Tau != 1 || pavg.Tau != 10 {
		t.Fatal("curve taus wrong")
	}
	// Early: tau=10 lower; late: tau=1 lower (paper Fig 6 shape).
	if pavg.Values[2] >= sync.Values[2] {
		t.Fatalf("tau=10 should win early: %v vs %v", pavg.Values[2], sync.Values[2])
	}
	n := len(sync.Values)
	if pavg.Values[n-1] <= sync.Values[n-1] {
		t.Fatalf("tau=1 should win late: %v vs %v", sync.Values[n-1], pavg.Values[n-1])
	}
	var sb strings.Builder
	PrintFig6(&sb, curves)
	if !strings.Contains(sb.String(), "crossover") {
		t.Fatal("PrintFig6 missing crossover")
	}
}

func TestFig7Schedule(t *testing.T) {
	res := Fig7(Fig6Constants(), 60, 8, 64)
	if len(res.TauStars) != 8 || len(res.TauFormula) != 8 {
		t.Fatal("wrong interval count")
	}
	// The schedule must be non-increasing and end below its start.
	for i := 1; i < len(res.TauStars); i++ {
		if res.TauStars[i] > res.TauStars[i-1] {
			t.Fatalf("tau* increased at interval %d: %v", i, res.TauStars)
		}
	}
	if res.TauStars[len(res.TauStars)-1] >= res.TauStars[0] {
		t.Fatalf("tau* did not decay: %v", res.TauStars)
	}
	var sb strings.Builder
	PrintFig7(&sb, res)
	if !strings.Contains(sb.String(), "interval") {
		t.Fatal("PrintFig7 empty")
	}
}

func TestFig8Shape(t *testing.T) {
	rows := Fig8(4, 2)
	if len(rows) != 4 {
		t.Fatalf("Fig8 rows %d, want 4", len(rows))
	}
	byKey := map[string]delaymodel.Breakdown{}
	for _, b := range rows {
		byKey[b.Profile+"/"+itoa(b.Tau)] = b
	}
	vgg1 := byKey["VGG16-like/1"]
	res1 := byKey["ResNet50-like/1"]
	// Paper Fig 8: VGG comm ~4x its compute; ResNet comm below compute.
	if vgg1.Comm < 2*vgg1.Compute {
		t.Fatalf("VGG tau=1 comm %v should dwarf compute %v", vgg1.Comm, vgg1.Compute)
	}
	if res1.Comm >= res1.Compute {
		t.Fatalf("ResNet tau=1 comm %v should be below compute %v", res1.Comm, res1.Compute)
	}
	// tau=10 shrinks total time for both, dramatically for VGG.
	vgg10 := byKey["VGG16-like/10"]
	if vgg10.WallClock > 0.5*vgg1.WallClock {
		t.Fatalf("VGG tau=10 total %v not far below tau=1 %v", vgg10.WallClock, vgg1.WallClock)
	}
}

func itoa(n int) string {
	if n == 1 {
		return "1"
	}
	return "10"
}

func TestBuildWorkloadShapes(t *testing.T) {
	for _, arch := range []Arch{ArchLogistic, ArchVGG, ArchResNet} {
		w := BuildWorkload(arch, 4, 4, ScaleQuick, 3)
		if len(w.Shards) != 4 {
			t.Fatalf("%s: %d shards", arch, len(w.Shards))
		}
		if w.Train.N() == 0 || w.Test.N() == 0 {
			t.Fatalf("%s: empty datasets", arch)
		}
		if w.Proto.ParamLen() == 0 {
			t.Fatalf("%s: empty model", arch)
		}
		if w.Delay.M != 4 {
			t.Fatalf("%s: delay model workers", arch)
		}
	}
}

func TestBuildWorkloadDeterministic(t *testing.T) {
	a := BuildWorkload(ArchVGG, 4, 4, ScaleQuick, 9)
	b := BuildWorkload(ArchVGG, 4, 4, ScaleQuick, 9)
	for i := range a.Proto.Params() {
		if a.Proto.Params()[i] != b.Proto.Params()[i] {
			t.Fatal("workload init not deterministic")
		}
	}
	for i := range a.Train.X.Data {
		if a.Train.X.Data[i] != b.Train.X.Data[i] {
			t.Fatal("dataset not deterministic")
		}
	}
}

func TestFig1QuickRun(t *testing.T) {
	cmp := RunComparison(Fig1Spec(ScaleQuick))
	if len(cmp.Order) != 3 { // tau=1, tau=20, AdaComm
		t.Fatalf("methods: %v", cmp.Order)
	}
	for name, tr := range cmp.Traces {
		if tr.Len() < 3 {
			t.Fatalf("%s trace too short", name)
		}
		if tr.FinalLoss() >= tr.Points[0].Loss {
			t.Fatalf("%s did not reduce loss: %v -> %v", name, tr.Points[0].Loss, tr.FinalLoss())
		}
	}
	// tau=20 completes more iterations than tau=1 in the same budget
	// (alpha=1: roughly (1+1)/(1+1/20) ~ 1.9x).
	it1 := cmp.Traces["tau=1"].Last().Iter
	it20 := cmp.Traces["tau=20"].Last().Iter
	if float64(it20) < 1.5*float64(it1) {
		t.Fatalf("tau=20 iterations %d not well above tau=1 %d", it20, it1)
	}
	cmp.Print(io.Discard)
}

func TestFig9QuickShape(t *testing.T) {
	cmp := RunComparison(Fig9Spec(4, false, ScaleQuick))
	// AdaComm's tau must decrease over the run.
	first, last := 0, 0
	for _, p := range cmp.Traces["AdaComm"].Points {
		if p.Tau > 0 {
			if first == 0 {
				first = p.Tau
			}
			last = p.Tau
		}
	}
	if first == 0 || last > first {
		t.Fatalf("AdaComm tau trajectory wrong: first %d last %d", first, last)
	}
	cmp.Print(io.Discard)
}

func TestFig14QuickGap(t *testing.T) {
	res := Fig14(ScaleQuick, 5)
	if len(res.SyncAcc) == 0 || len(res.LocalAcc) == 0 {
		t.Fatal("Fig14 recorded no points")
	}
	// The synchronized model must be better on average (paper: ~10% gap;
	// any positive gap validates the mechanism at this scale).
	if math.IsNaN(res.MeanGap) || res.MeanGap <= 0 {
		t.Fatalf("sync-local accuracy gap %v, want > 0", res.MeanGap)
	}
	var sb strings.Builder
	PrintFig14(&sb, res)
	if !strings.Contains(sb.String(), "gap") {
		t.Fatal("PrintFig14 empty")
	}
}

func TestRepeatComparison(t *testing.T) {
	rows := RepeatComparison(Fig1Spec(ScaleQuick), []uint64{1, 2, 3})
	if len(rows) != 3 { // tau=1, tau=20, AdaComm
		t.Fatalf("methods %d, want 3", len(rows))
	}
	for _, r := range rows {
		if math.IsNaN(r.FinalLossMean) || r.FinalLossMean <= 0 {
			t.Fatalf("bad loss stats %+v", r)
		}
		if r.Runs == 0 {
			t.Fatalf("no defined speedups for %s", r.Method)
		}
	}
	// tau=1's speedup vs itself is exactly 1 with zero variance.
	if rows[0].Method != "tau=1" || math.Abs(rows[0].SpeedupMean-1) > 1e-9 || rows[0].SpeedupStd != 0 {
		t.Fatalf("sync self-speedup wrong: %+v", rows[0])
	}
	var sb strings.Builder
	PrintRepeat(&sb, "demo", rows)
	if !strings.Contains(sb.String(), "multi-seed") {
		t.Fatal("PrintRepeat empty")
	}
}

func TestStrategyAblationQuick(t *testing.T) {
	rows := StrategyAblation(ScaleQuick)
	if len(rows) != 3 {
		t.Fatalf("strategies %d, want 3", len(rows))
	}
	for _, r := range rows {
		if math.IsNaN(r.FinalLoss) || r.FinalLoss <= 0 {
			t.Fatalf("bad loss for %s: %v", r.Strategy, r.FinalLoss)
		}
	}
	var sb strings.Builder
	PrintStrategyAblation(&sb, rows)
	if !strings.Contains(sb.String(), "ring-gossip") {
		t.Fatal("PrintStrategyAblation missing strategies")
	}
}

func TestDelayAblationQuick(t *testing.T) {
	rows := DelayAblation(ScaleQuick)
	if len(rows) != 3 {
		t.Fatalf("rows %d, want 3", len(rows))
	}
	// Heavy-tailed distributions must beat the constant-Y formula
	// (straggler mitigation); the constant distribution must match it.
	for _, r := range rows {
		if strings.HasPrefix(r.Dist, "Constant") {
			if math.Abs(r.SpeedupMC-r.ConstantModel) > 0.05*r.ConstantModel {
				t.Fatalf("constant-Y MC %v != formula %v", r.SpeedupMC, r.ConstantModel)
			}
		} else if r.SpeedupMC <= r.ConstantModel {
			t.Fatalf("%s: MC speedup %v should exceed eq-12 %v",
				r.Dist, r.SpeedupMC, r.ConstantModel)
		}
	}
}

func TestAdaSyncExperimentQuick(t *testing.T) {
	rows := AdaSyncExperiment(ScaleQuick)
	if len(rows) != 3 {
		t.Fatalf("rows %d, want 3", len(rows))
	}
	byName := map[string]AdaSyncRow{}
	for _, r := range rows {
		byName[r.Method] = r
		if math.IsNaN(r.FinalLoss) {
			t.Fatalf("NaN loss for %s", r.Method)
		}
	}
	async := byName["K=1 (async)"]
	sync := byName["K=8 (sync)"]
	// Async completes far more updates in the same simulated budget.
	if async.Updates < 2*sync.Updates {
		t.Fatalf("async updates %d not well above sync %d", async.Updates, sync.Updates)
	}
	// Async has staleness; sync has none.
	if async.MeanStale <= 0 || sync.MeanStale != 0 {
		t.Fatalf("staleness wrong: async %v sync %v", async.MeanStale, sync.MeanStale)
	}
	var sb strings.Builder
	PrintAdaSync(&sb, rows)
	if !strings.Contains(sb.String(), "AdaSync") {
		t.Fatal("PrintAdaSync empty")
	}
}

func TestTable1Quick(t *testing.T) {
	rows := Table1(ScaleQuick)
	if len(rows) != 8 { // 2 archs x 4 methods
		t.Fatalf("Table1 rows %d, want 8", len(rows))
	}
	for _, r := range rows {
		if math.IsNaN(r.FixedLR) || r.FixedLR < 0 || r.FixedLR > 1 {
			t.Fatalf("bad fixed-LR accuracy %+v", r)
		}
		if math.IsNaN(r.VariableLR) || r.VariableLR < 0 || r.VariableLR > 1 {
			t.Fatalf("bad variable-LR accuracy %+v", r)
		}
	}
	var sb strings.Builder
	PrintTable1(&sb, rows)
	if !strings.Contains(sb.String(), "Table 1") {
		t.Fatal("PrintTable1 empty")
	}
}

func TestCompressionTradeoff(t *testing.T) {
	// Acceptance demo: on a bandwidth-constrained profile, compressed PASGD
	// reaches the shared target loss in less simulated wall-clock time than
	// uncompressed PASGD at the same tau.
	res := CompressionTradeoff(ScaleQuick)
	if math.IsNaN(res.TimeUncomp) || math.IsNaN(res.TimeComp) {
		t.Fatalf("target %v unreached: dense %v, compressed %v",
			res.Target, res.TimeUncomp, res.TimeComp)
	}
	if res.TimeComp >= res.TimeUncomp {
		t.Fatalf("compression did not pay off: dense %v s vs compressed %v s",
			res.TimeUncomp, res.TimeComp)
	}
	var sb strings.Builder
	PrintCompressionTradeoff(&sb, res)
	if !strings.Contains(sb.String(), "Compressed vs dense") {
		t.Fatal("PrintCompressionTradeoff empty")
	}
}

func TestCompressionGridShape(t *testing.T) {
	spec := DefaultCompressionGrid(ScaleQuick)
	res := RunCompressionGrid(spec)
	if want := len(spec.Taus) * len(spec.Specs); len(res.Rows) != want {
		t.Fatalf("grid rows %d, want %d", len(res.Rows), want)
	}
	for _, r := range res.Rows {
		if math.IsNaN(r.TimeToTarget) {
			t.Fatalf("cell tau=%d/%s never reached the shared target %v",
				r.Tau, r.Compressor, res.Target)
		}
		if r.BytesPerRound <= 0 {
			t.Fatalf("cell tau=%d/%s reported no payload", r.Tau, r.Compressor)
		}
	}
	// Within each tau, every compressed cell must carry fewer bytes than
	// the dense baseline.
	dense := map[int]int{}
	for _, r := range res.Rows {
		if r.Compressor == "none" {
			dense[r.Tau] = r.BytesPerRound
		}
	}
	for _, r := range res.Rows {
		if r.Compressor != "none" && r.BytesPerRound >= dense[r.Tau] {
			t.Fatalf("cell tau=%d/%s payload %d not below dense %d",
				r.Tau, r.Compressor, r.BytesPerRound, dense[r.Tau])
		}
	}
	var sb strings.Builder
	PrintCompressionGrid(&sb, res)
	if !strings.Contains(sb.String(), "trade-off") {
		t.Fatal("PrintCompressionGrid empty")
	}
}

func TestHeterogeneousStragglerAblationQuick(t *testing.T) {
	spec := DefaultHeteroSpec(ScaleQuick)
	rows := HeterogeneousStragglerAblation(spec)
	if len(rows) != 3 {
		t.Fatalf("want 3 methods, got %d", len(rows))
	}
	byName := map[string]HeteroRow{}
	for _, r := range rows {
		if math.IsNaN(r.FinalLoss) || math.IsInf(r.FinalLoss, 0) {
			t.Fatalf("%s diverged: %v", r.Method, r.FinalLoss)
		}
		byName[r.Method] = r
	}
	// tau=1 pays the slow link every iteration, so under the same budget it
	// completes far fewer local steps than the amortizing fixed period.
	if byName["tau=1"].Iters*4 > byName["tau=16"].Iters {
		t.Fatalf("tau=1 iters %d should trail tau=16 iters %d by >= 4x",
			byName["tau=1"].Iters, byName["tau=16"].Iters)
	}
	// AdaComm starts at tau0 (amortizing the slow link) and decays tau, so
	// it must complete more work AND reach a lower loss than communicating
	// every step on the constrained link.
	if byName["adacomm"].Iters <= byName["tau=1"].Iters {
		t.Fatalf("adacomm iters %d should beat tau=1 iters %d",
			byName["adacomm"].Iters, byName["tau=1"].Iters)
	}
	if byName["adacomm"].FinalLoss >= byName["tau=1"].FinalLoss {
		t.Fatalf("adacomm loss %v should beat tau=1 loss %v on the slow link",
			byName["adacomm"].FinalLoss, byName["tau=1"].FinalLoss)
	}
	var buf strings.Builder
	PrintHeterogeneousAblation(&buf, spec, rows)
	if !strings.Contains(buf.String(), "adacomm") {
		t.Fatal("print output missing methods")
	}
}

// The PR's acceptance criterion: on the 10x-straggler link profile the
// link-aware AdaComm reaches the shared target loss in measurably less
// simulated wall-clock than the paper's static rule. Deterministic seeds.
func TestLinkAwareAblationBeatsStaticAdaComm(t *testing.T) {
	target, rows := LinkAwareAblation(DefaultHeteroSpec(ScaleQuick))
	if target <= 0 {
		t.Fatalf("degenerate target %v", target)
	}
	byName := map[string]LinkAwareRow{}
	for _, r := range rows {
		byName[r.Method] = r
	}
	static, aware := byName["adacomm"], byName["adacomm+link"]
	if static.Method == "" || aware.Method == "" {
		t.Fatalf("missing methods in %v", rows)
	}
	if math.IsNaN(static.TimeToTarget) || math.IsNaN(aware.TimeToTarget) {
		t.Fatalf("time-to-target undefined: static %v aware %v", static.TimeToTarget, aware.TimeToTarget)
	}
	if aware.TimeToTarget >= static.TimeToTarget {
		t.Fatalf("link-aware AdaComm not faster to target: %v vs %v sim-s",
			aware.TimeToTarget, static.TimeToTarget)
	}
	if aware.Iters <= static.Iters {
		t.Fatalf("link-aware AdaComm did not buy iterations: %d vs %d", aware.Iters, static.Iters)
	}
	if aware.MinLoss > static.MinLoss {
		t.Fatalf("link-aware AdaComm traded away loss: %v vs %v", aware.MinLoss, static.MinLoss)
	}
}

// And the AdaSync-K half: the link-aware cap keeps the slow link from gating
// updates, reaching the target sooner within the same budget.
func TestLinkAwareAblationBeatsStaticAdaSync(t *testing.T) {
	target, rows := LinkAwareAdaSyncAblation(ScaleQuick)
	if target <= 0 {
		t.Fatalf("degenerate target %v", target)
	}
	byName := map[string]LinkAwareRow{}
	for _, r := range rows {
		byName[r.Method] = r
	}
	static, aware := byName["adasync"], byName["adasync+link"]
	if static.Method == "" || aware.Method == "" {
		t.Fatalf("missing methods in %v", rows)
	}
	if math.IsNaN(static.TimeToTarget) || math.IsNaN(aware.TimeToTarget) {
		t.Fatalf("time-to-target undefined: static %v aware %v", static.TimeToTarget, aware.TimeToTarget)
	}
	if aware.TimeToTarget >= static.TimeToTarget {
		t.Fatalf("link-aware AdaSync not faster to target: %v vs %v sim-s",
			aware.TimeToTarget, static.TimeToTarget)
	}
	if aware.Iters <= static.Iters {
		t.Fatalf("link-aware AdaSync did not buy updates: %d vs %d", aware.Iters, static.Iters)
	}
}

func TestPrintLinkAware(t *testing.T) {
	rows := []LinkAwareRow{
		{Method: "adacomm", FinalLoss: 0.62, MinLoss: 0.62, TimeToTarget: 290, Iters: 45, FinalTau: 1},
		{Method: "adacomm+link", FinalLoss: 0.55, MinLoss: 0.55, TimeToTarget: 99, Iters: 144, FinalTau: 8},
	}
	var buf bytes.Buffer
	PrintLinkAware(&buf, "link-aware ablation", 0.97, rows)
	out := buf.String()
	if !strings.Contains(out, "adacomm+link") || !strings.Contains(out, "t(target)") {
		t.Fatalf("print output missing columns:\n%s", out)
	}
}

// The size-aware Fig 5/8 drivers must reproduce the size-free figures bit
// for bit at a zero payload, and charge the transfer term otherwise.
func TestFig5BytesZeroPayloadBitIdentical(t *testing.T) {
	free := Fig5(2000, 1)
	zero := Fig5Bytes(2000, 1, 0, 4e6)
	if free.SyncMean != zero.SyncMean || free.PAvgMean != zero.PAvgMean {
		t.Fatalf("zero-payload means diverged: %v/%v vs %v/%v",
			free.SyncMean, free.PAvgMean, zero.SyncMean, zero.PAvgMean)
	}
	for i := range free.SyncHist.Counts {
		if free.SyncHist.Counts[i] != zero.SyncHist.Counts[i] ||
			free.PAvgHist.Counts[i] != zero.PAvgHist.Counts[i] {
			t.Fatalf("zero-payload histograms diverged at bin %d", i)
		}
	}
	sized := Fig5Bytes(2000, 1, 800000, 4e6)
	if sized.SyncMean <= free.SyncMean+0.19 {
		t.Fatalf("sized sync mean %v, want ~%v + 0.2", sized.SyncMean, free.SyncMean)
	}
	// PASGD amortizes the transfer over tau=10 iterations.
	if sized.PAvgMean <= free.PAvgMean || sized.PAvgMean >= free.PAvgMean+0.19 {
		t.Fatalf("sized PASGD mean %v, want in (%v, %v)", sized.PAvgMean, free.PAvgMean, free.PAvgMean+0.19)
	}
}

func TestFig8BytesZeroPayloadBitIdentical(t *testing.T) {
	free := Fig8(4, 2)
	zero := Fig8Bytes(4, 2, 0, 0)
	for i := range free {
		if free[i] != zero[i] {
			t.Fatalf("zero-payload breakdown %d diverged: %+v vs %+v", i, zero[i], free[i])
		}
	}
	sized := Fig8Bytes(4, 2, 800000, 4e6)
	for i := range sized {
		if sized[i].Comm <= free[i].Comm {
			t.Fatalf("constrained breakdown %d comm %v not above free %v",
				i, sized[i].Comm, free[i].Comm)
		}
	}
}

func TestSizeAwareConstants(t *testing.T) {
	c := Fig6Constants()
	if got := SizeAwareConstants(c, 0, 4e6); got != c {
		t.Fatalf("zero payload changed constants: %+v", got)
	}
	if got := SizeAwareConstants(c, 800000, 0); got != c {
		t.Fatalf("zero bandwidth changed constants: %+v", got)
	}
	got := SizeAwareConstants(c, 800000, 4e6)
	if got.D != c.D+0.2 {
		t.Fatalf("D = %v, want %v", got.D, c.D+0.2)
	}
}

// -bandwidth without a payload must not relabel the profiles: with bytes = 0
// the sampler ignores bandwidth, so the rows must stay the size-free ones,
// names included.
func TestFig8BytesBandwidthAloneIsSizeFree(t *testing.T) {
	free := Fig8(4, 2)
	got := Fig8Bytes(4, 2, 0, 4e6)
	for i := range free {
		if got[i] != free[i] {
			t.Fatalf("bandwidth-only breakdown %d diverged: %+v vs %+v", i, got[i], free[i])
		}
	}
}
