package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/delaymodel"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sgd"
)

// Ablations for the design choices DESIGN.md calls out. All run on the
// cheap logistic workload so a full sweep finishes in seconds.

func ablationWorkload(scale Scale) (*Workload, cluster.Config, float64) {
	w := BuildWorkload(ArchLogistic, 4, 4, scale, 301)
	budget := 2400.0
	if scale == ScaleQuick {
		budget = 800
	}
	cfg := cluster.Config{
		BatchSize:  8,
		MaxTime:    budget,
		EvalEvery:  100,
		EvalSubset: 400,
		Seed:       302,
	}
	return w, cfg, budget
}

// ---------------------------------------------------------------------------
// tau_0 grid search (Sec 4.2's "simple grid search over different tau").
// ---------------------------------------------------------------------------

// TauGridRow is one probe result of the tau_0 grid search.
type TauGridRow struct {
	Tau       int
	ProbeLoss float64 // training loss after the short probe
	Chosen    bool
}

// TauGridAblation runs the paper's tau_0 selection protocol: short trial
// runs (about two epochs) for each candidate tau, keeping the best.
func TauGridAblation(scale Scale) []TauGridRow {
	w, cfg, budget := ablationWorkload(scale)
	cfg.MaxTime = budget / 8 // short probes
	candidates := []int{1, 2, 5, 10, 20, 50, 100}
	// Probe every candidate concurrently (each probe owns its engine), then
	// replay the memoized traces through the paper's selection rule.
	probes := make([]*metrics.Trace, len(candidates))
	forEach(len(candidates), func(i int) {
		e := w.Engine(cfg)
		probes[i] = e.Run(cluster.FixedTau{Tau: candidates[i], Schedule: sgd.Const{Eta: 0.12}},
			fmt.Sprintf("tau=%d", candidates[i]))
	})
	traces := map[int]*metrics.Trace{}
	for i, tau := range candidates {
		traces[tau] = probes[i]
	}
	chosen := core.GridSearchTau0(candidates, func(tau int) *metrics.Trace { return traces[tau] })
	rows := make([]TauGridRow, 0, len(candidates))
	for _, tau := range candidates {
		rows = append(rows, TauGridRow{
			Tau: tau, ProbeLoss: traces[tau].FinalLoss(), Chosen: tau == chosen,
		})
	}
	return rows
}

// PrintTauGrid renders the grid-search outcome.
func PrintTauGrid(w io.Writer, rows []TauGridRow) {
	fmt.Fprintln(w, "== Ablation: tau_0 grid search (short probes, lowest loss wins) ==")
	fmt.Fprintf(w, "%6s %12s %s\n", "tau", "probe loss", "")
	for _, r := range rows {
		mark := ""
		if r.Chosen {
			mark = "  <-- tau_0"
		}
		fmt.Fprintf(w, "%6d %12.5f%s\n", r.Tau, r.ProbeLoss, mark)
	}
}

// ---------------------------------------------------------------------------
// gamma saturation-decay ablation (eq 18).
// ---------------------------------------------------------------------------

// GammaRow is one gamma setting's outcome.
type GammaRow struct {
	Gamma     float64
	FinalLoss float64
	FinalTau  int
}

// GammaAblation compares saturation-decay factors. gamma close to 1
// effectively disables the eq-18 refinement (tau only decreases when the
// loss ratio says so), which leaves tau stuck high on plateaus.
func GammaAblation(scale Scale) []GammaRow {
	w, cfg, budget := ablationWorkload(scale)
	gammas := []float64{0.95, 0.5, 0.25}
	rows := make([]GammaRow, len(gammas))
	forEach(len(gammas), func(i int) {
		gamma := gammas[i]
		ada := core.NewAdaComm(core.Config{
			Tau0: 32, Interval: budget / 12, Gamma: gamma,
			Schedule: sgd.Const{Eta: 0.12},
		})
		e := w.Engine(cfg)
		tr := e.Run(ada, fmt.Sprintf("gamma=%g", gamma))
		rows[i] = GammaRow{Gamma: gamma, FinalLoss: tr.FinalLoss(), FinalTau: ada.Tau()}
	})
	return rows
}

// PrintGammaAblation renders the gamma sweep.
func PrintGammaAblation(w io.Writer, rows []GammaRow) {
	fmt.Fprintln(w, "== Ablation: saturation decay factor gamma (eq 18) ==")
	fmt.Fprintf(w, "%8s %12s %10s\n", "gamma", "final loss", "final tau")
	for _, r := range rows {
		fmt.Fprintf(w, "%8.2f %12.5f %10d\n", r.Gamma, r.FinalLoss, r.FinalTau)
	}
}

// ---------------------------------------------------------------------------
// LR-coupling rule ablation: eq 19 vs eq 20 vs none.
// ---------------------------------------------------------------------------

// CouplingRow is one coupling rule's outcome under a 10x LR decay schedule.
type CouplingRow struct {
	Rule      core.Coupling
	FinalLoss float64
	MaxTau    int // largest tau the controller reached
}

// CouplingAblation reproduces the paper's observation that the fully
// coupled rule (19) inflates tau after LR decays (they saw tau -> 1000 and
// divergence), while the sqrt rule (20) raises tau moderately.
func CouplingAblation(scale Scale) []CouplingRow {
	w, cfg, budget := ablationWorkload(scale)
	sched := sgd.MultiStep{Eta: 0.12, Factor: 0.1, Milestones: []int{8, 16}}
	rules := []core.Coupling{core.NoCoupling, core.SqrtCoupling, core.FullCoupling}
	rows := make([]CouplingRow, len(rules))
	forEach(len(rules), func(i int) {
		rule := rules[i]
		ada := core.NewAdaComm(core.Config{
			Tau0: 16, Interval: budget / 12, Gamma: 0.5,
			Schedule: sched, Coupling: rule,
		})
		e := w.Engine(cfg)
		tr := e.Run(ada, "coupling="+rule.String())
		maxTau := 0
		for _, p := range tr.Points {
			if p.Tau > maxTau {
				maxTau = p.Tau
			}
		}
		rows[i] = CouplingRow{Rule: rule, FinalLoss: tr.FinalLoss(), MaxTau: maxTau}
	})
	return rows
}

// PrintCouplingAblation renders the rule comparison.
func PrintCouplingAblation(w io.Writer, rows []CouplingRow) {
	fmt.Fprintln(w, "== Ablation: LR coupling rule (eq 19 full vs eq 20 sqrt vs none) ==")
	fmt.Fprintf(w, "%8s %12s %10s\n", "rule", "final loss", "max tau")
	for _, r := range rows {
		fmt.Fprintf(w, "%8s %12.5f %10d\n", r.Rule, r.FinalLoss, r.MaxTau)
	}
}

// ---------------------------------------------------------------------------
// Interval length T0 sensitivity.
// ---------------------------------------------------------------------------

// IntervalRow is one T0 setting's outcome.
type IntervalRow struct {
	T0          float64
	FinalLoss   float64
	Adaptations int // distinct tau values seen
}

// IntervalAblation sweeps the adaptation interval. Too-long intervals adapt
// too rarely (behaving like fixed tau); too-short intervals are noisy but
// mostly harmless since the rule is loss-ratio based.
func IntervalAblation(scale Scale) []IntervalRow {
	w, cfg, budget := ablationWorkload(scale)
	divs := []float64{40, 12, 4}
	rows := make([]IntervalRow, len(divs))
	forEach(len(divs), func(i int) {
		t0 := budget / divs[i]
		ada := core.NewAdaComm(core.Config{
			Tau0: 32, Interval: t0, Gamma: 0.5,
			Schedule: sgd.Const{Eta: 0.12},
		})
		e := w.Engine(cfg)
		tr := e.Run(ada, fmt.Sprintf("T0=%g", t0))
		seen := map[int]bool{}
		for _, p := range tr.Points {
			if p.Tau > 0 {
				seen[p.Tau] = true
			}
		}
		rows[i] = IntervalRow{T0: t0, FinalLoss: tr.FinalLoss(), Adaptations: len(seen)}
	})
	return rows
}

// PrintIntervalAblation renders the T0 sweep.
func PrintIntervalAblation(w io.Writer, rows []IntervalRow) {
	fmt.Fprintln(w, "== Ablation: adaptation interval T0 ==")
	fmt.Fprintf(w, "%10s %12s %12s\n", "T0", "final loss", "tau levels")
	for _, r := range rows {
		fmt.Fprintf(w, "%10.1f %12.5f %12d\n", r.T0, r.FinalLoss, r.Adaptations)
	}
}

// ---------------------------------------------------------------------------
// Synchronization-strategy extension: AdaComm beyond simple averaging.
// ---------------------------------------------------------------------------

// StrategyRow is one mixing strategy's outcome under AdaComm control.
type StrategyRow struct {
	Strategy  cluster.Strategy
	FinalLoss float64
	MinLoss   float64
}

// StrategyAblation runs AdaComm on top of each synchronization strategy —
// full averaging (PASGD), ring gossip (decentralized SGD), and elastic
// averaging (EASGD) — realizing the paper's concluding remark that adaptive
// communication extends directly to those frameworks.
func StrategyAblation(scale Scale) []StrategyRow {
	w, cfg, budget := ablationWorkload(scale)
	strats := []cluster.Strategy{
		cluster.FullAveraging, cluster.RingGossip, cluster.ElasticAveraging,
	}
	rows := make([]StrategyRow, len(strats))
	forEach(len(strats), func(i int) {
		c := cfg
		c.Strategy = strats[i]
		ada := core.NewAdaComm(core.Config{
			Tau0: 16, Interval: budget / 12, Gamma: 0.5,
			Schedule: sgd.Const{Eta: 0.12},
		})
		e := w.Engine(c)
		tr := e.Run(ada, strats[i].String())
		rows[i] = StrategyRow{
			Strategy: strats[i], FinalLoss: tr.FinalLoss(), MinLoss: tr.MinLoss(),
		}
	})
	return rows
}

// PrintStrategyAblation renders the strategy comparison.
func PrintStrategyAblation(w io.Writer, rows []StrategyRow) {
	fmt.Fprintln(w, "== Extension: AdaComm over full-averaging / ring-gossip / elastic ==")
	fmt.Fprintf(w, "%-20s %12s %12s\n", "strategy", "final loss", "min loss")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %12.5f %12.5f\n", r.Strategy, r.FinalLoss, r.MinLoss)
	}
}

// ---------------------------------------------------------------------------
// Delay-distribution (straggler) ablation.
// ---------------------------------------------------------------------------

// DelayRow reports the runtime advantage of tau=10 over tau=1 under one
// compute-time distribution, decomposed into the communication saving and
// the straggler-mitigation saving.
type DelayRow struct {
	Dist          string
	SpeedupMC     float64 // E[T_sync]/E[T_PAvg(tau=10)]
	ConstantModel float64 // eq 12 prediction (constant-Y approximation)
}

// DelayAblation quantifies Sec 3.2: under heavy-tailed compute times the
// measured speedup of PASGD exceeds the constant-delay formula because
// averaging tau draws also shrinks the straggler tail.
func DelayAblation(scale Scale) []DelayRow {
	trials := 100000
	if scale == ScaleQuick {
		trials = 20000
	}
	r := rng.New(303)
	dists := []rng.Distribution{
		rng.Constant{Value: 1},
		rng.Exponential{MeanVal: 1},
		rng.Pareto{Xm: 0.6, Alpha: 2.5}, // mean = 1
	}
	var rows []DelayRow
	for _, d := range dists {
		dm := delaymodel.New(16, d, rng.Constant{Value: 1}, delaymodel.ConstantScaling{})
		alpha := 1 / d.Mean()
		rows = append(rows, DelayRow{
			Dist:          d.String(),
			SpeedupMC:     dm.SpeedupMC(10, trials, r),
			ConstantModel: delaymodel.SpeedupConstant(alpha, 10),
		})
	}
	return rows
}

// PrintDelayAblation renders the distribution sweep.
func PrintDelayAblation(w io.Writer, rows []DelayRow) {
	fmt.Fprintln(w, "== Ablation: compute-time distribution (straggler mitigation, m=16, D=1) ==")
	fmt.Fprintf(w, "%-22s %12s %18s\n", "Y distribution", "MC speedup", "eq-12 (const Y)")
	for _, r := range rows {
		extra := ""
		if r.SpeedupMC > r.ConstantModel*1.05 {
			extra = "  <-- straggler mitigation beyond eq 12"
		}
		fmt.Fprintf(w, "%-22s %12.3f %18.3f%s\n", r.Dist, r.SpeedupMC, r.ConstantModel, extra)
	}
}
