package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/compress"
	"repro/internal/metrics"
	"repro/internal/sgd"
)

// The compression experiments extend the paper's error-runtime trade-off to
// the communication-VOLUME axis: on a bandwidth-constrained link the
// broadcast cost depends on payload size (delaymodel.SampleDBytes), so
// sending fewer bytes buys more local steps per simulated second, at the
// price of a noisier averaging direction — the exact shape of the tau
// trade-off, one level down.

// CompressionGridSpec describes a (tau x compressor) sweep on one
// bandwidth-constrained workload.
type CompressionGridSpec struct {
	Scale     Scale
	Seed      uint64
	Bandwidth float64 // bytes per simulated second on every link
	Taus      []int
	Specs     []compress.Spec

	BatchSize  int
	LR         float64
	TimeBudget float64
}

// CompressionGridRow is one cell of the sweep.
type CompressionGridRow struct {
	Tau           int
	Compressor    string
	BytesPerRound int
	FinalLoss     float64
	MinLoss       float64
	TimeToTarget  float64 // NaN if the target was not reached
}

// CompressionGridResult bundles the sweep with the shared loss target.
type CompressionGridResult struct {
	Spec   CompressionGridSpec
	Target float64
	Rows   []CompressionGridRow
}

// DefaultCompressionGrid is the shipped trade-off sweep: a logistic
// workload on a federated-style link where one dense broadcast costs as
// much as several local steps.
func DefaultCompressionGrid(scale Scale) CompressionGridSpec {
	budget := 2400.0
	if scale == ScaleQuick {
		budget = 800
	}
	return CompressionGridSpec{
		Scale:     scale,
		Seed:      140,
		Bandwidth: 128, // dense 68-param payload = 544 B = 4.25 s per sync
		Taus:      []int{2, 10},
		Specs: []compress.Spec{
			{},
			{Kind: compress.KindTopK, Ratio: 0.25, ErrorFeedback: true},
			{Kind: compress.KindRandK, Ratio: 0.5},
			{Kind: compress.KindQSGD, Bits: 4},
		},
		BatchSize:  4,
		LR:         0.1,
		TimeBudget: budget,
	}
}

// workload builds the sweep's shared bandwidth-constrained workload.
func (spec CompressionGridSpec) workload() *Workload {
	w := BuildWorkload(ArchLogistic, 4, 4, spec.Scale, spec.Seed)
	w.Delay.Bandwidth = spec.Bandwidth
	return w
}

// runCell trains one fixed-tau run with the given compressor on w and
// returns its trace alongside the engine (for payload accounting).
func (spec CompressionGridSpec) runCell(w *Workload, tau int, cs compress.Spec, name string) (*cluster.Engine, *metrics.Trace) {
	e := w.Engine(cluster.Config{
		BatchSize:  spec.BatchSize,
		MaxTime:    spec.TimeBudget,
		EvalEvery:  100,
		EvalSubset: 256,
		Compress:   cs,
		Seed:       spec.Seed + 1,
	})
	return e, e.Run(cluster.FixedTau{Tau: tau, Schedule: sgd.Const{Eta: spec.LR}}, name)
}

// RunCompressionGrid trains every (tau, compressor) cell on a shared
// workload and reports time-to-target at a loss level all cells reach.
// Cells are independent (each owns its engine and compressor streams), so
// the grid fans out across the experiment pool.
func RunCompressionGrid(spec CompressionGridSpec) CompressionGridResult {
	w := spec.workload()

	type cellSpec struct {
		tau int
		cs  compress.Spec
	}
	var cellSpecs []cellSpec
	for _, tau := range spec.Taus {
		for _, cs := range spec.Specs {
			cellSpecs = append(cellSpecs, cellSpec{tau: tau, cs: cs})
		}
	}

	type cell struct {
		row   CompressionGridRow
		trace *metrics.Trace
	}
	cells := make([]cell, len(cellSpecs))
	forEach(len(cellSpecs), func(i int) {
		tau, cs := cellSpecs[i].tau, cellSpecs[i].cs
		name := fmt.Sprintf("tau=%d/%s", tau, cs)
		e, tr := spec.runCell(w, tau, cs, name)
		cells[i] = cell{
			row: CompressionGridRow{
				Tau:           tau,
				Compressor:    cs.String(),
				BytesPerRound: e.CommBytesPerRound(),
				FinalLoss:     tr.FinalLoss(),
				MinLoss:       tr.MinLoss(),
			},
			trace: tr,
		}
	})

	traces := make([]*metrics.Trace, len(cells))
	for i := range cells {
		traces[i] = cells[i].trace
	}
	res := CompressionGridResult{Spec: spec, Target: reachableTarget(traces, 0.05)}
	for _, c := range cells {
		c.row.TimeToTarget = c.trace.TimeToLoss(res.Target)
		res.Rows = append(res.Rows, c.row)
	}
	return res
}

// PrintCompressionGrid renders the sweep as a table.
func PrintCompressionGrid(w io.Writer, res CompressionGridResult) {
	fmt.Fprintf(w, "== Compression x tau trade-off (bandwidth %g B/s) ==\n", res.Spec.Bandwidth)
	fmt.Fprintf(w, "target loss: %.5f\n", res.Target)
	fmt.Fprintf(w, "%-5s %-14s %10s %12s %12s %12s\n",
		"tau", "compressor", "B/round", "final loss", "min loss", "t(target)")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-5d %-14s %10d %12.5f %12.5f %12.2f\n",
			r.Tau, r.Compressor, r.BytesPerRound, r.FinalLoss, r.MinLoss, r.TimeToTarget)
	}
}

// CompressionTradeoffResult is the headline demonstration: on a
// bandwidth-constrained link, compressed PASGD reaches the target loss in
// less simulated wall-clock time than uncompressed PASGD at the same tau.
type CompressionTradeoffResult struct {
	Tau          int
	Bandwidth    float64
	Target       float64
	Uncompressed *metrics.Trace
	Compressed   *metrics.Trace
	TimeUncomp   float64
	TimeComp     float64
	Speedup      float64 // TimeUncomp / TimeComp
}

// CompressionTradeoff runs the pair at the grid's default bandwidth using
// top-k(0.25) with error feedback against the dense baseline.
func CompressionTradeoff(scale Scale) CompressionTradeoffResult {
	spec := DefaultCompressionGrid(scale)
	const tau = 5
	w := spec.workload()

	pair := []compress.Spec{
		{},
		{Kind: compress.KindTopK, Ratio: 0.25, ErrorFeedback: true},
	}
	names := []string{"dense", "topk+ef"}
	out := make([]*metrics.Trace, len(pair))
	forEach(len(pair), func(i int) {
		_, out[i] = spec.runCell(w, tau, pair[i], names[i])
	})
	dense, sparse := out[0], out[1]

	res := CompressionTradeoffResult{
		Tau:          tau,
		Bandwidth:    spec.Bandwidth,
		Target:       reachableTarget([]*metrics.Trace{dense, sparse}, 0.05),
		Uncompressed: dense,
		Compressed:   sparse,
	}
	res.TimeUncomp = dense.TimeToLoss(res.Target)
	res.TimeComp = sparse.TimeToLoss(res.Target)
	res.Speedup = res.TimeUncomp / res.TimeComp
	return res
}

// PrintCompressionTradeoff renders the headline pair.
func PrintCompressionTradeoff(w io.Writer, res CompressionTradeoffResult) {
	fmt.Fprintf(w, "== Compressed vs dense PASGD at tau=%d, bandwidth %g B/s ==\n",
		res.Tau, res.Bandwidth)
	fmt.Fprintf(w, "target loss %.5f: dense %.2f s, compressed %.2f s (%.2fx)\n",
		res.Target, res.TimeUncomp, res.TimeComp, res.Speedup)
}
