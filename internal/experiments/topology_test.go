package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestTopologyGridTorusBeatsRingAndComplete(t *testing.T) {
	// The acceptance pin for graph-native gossip: under the 10x slow edge
	// (3,4), the 4x4 torus — which routes around the edge and mixes with an
	// O(1/n) spectral gap — reaches the shared loss target in less simulated
	// time than BOTH density endpoints that activate the edge every sync:
	// the ring and the complete graph (full averaging).
	res := RunTopologyGrid(DefaultTopologyGrid(ScaleQuick))

	byTopo := map[string]TopologyRow{}
	for _, r := range res.Rows {
		if r.FinalLoss <= 0 || r.MinLoss <= 0 {
			t.Fatalf("degenerate losses in row %+v", r)
		}
		if r.TimeToTarget <= 0 {
			t.Fatalf("cell %s/%s never reached the shared target %v", r.Topology, r.Method, res.Target)
		}
		if r.Method == "raw" {
			byTopo[r.Topology] = r
		}
	}
	torus, ring, complete := byTopo["torus:4x4"], byTopo["graph:ring"], byTopo["complete"]

	// Premise: the slow edge is active on ring and complete, inactive on the
	// torus, so their per-sync charges differ by exactly the edge latency.
	if torus.RoundComm != 1 || ring.RoundComm != 11 || complete.RoundComm != 11 {
		t.Fatalf("per-sync comm premise broken: torus %v ring %v complete %v",
			torus.RoundComm, ring.RoundComm, complete.RoundComm)
	}
	if !(torus.SpectralGap > ring.SpectralGap) {
		t.Fatalf("torus gap %v not above ring gap %v", torus.SpectralGap, ring.SpectralGap)
	}
	if !(torus.TimeToTarget < ring.TimeToTarget) {
		t.Fatalf("torus t(target) %v not below ring %v", torus.TimeToTarget, ring.TimeToTarget)
	}
	if !(torus.TimeToTarget < complete.TimeToTarget) {
		t.Fatalf("torus t(target) %v not below complete (full averaging) %v",
			torus.TimeToTarget, complete.TimeToTarget)
	}

	var buf bytes.Buffer
	PrintTopologyGrid(&buf, res)
	out := buf.String()
	for _, want := range []string{"torus:4x4", "graph:ring", "complete", "regular:4@11", "choco", "t(target)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered grid missing %q:\n%s", want, out)
		}
	}
}

func TestTopologyGridConcurrentMatchesSerial(t *testing.T) {
	// Cells are independent engines over independent workloads, so the
	// experiment pool must not change a byte of the rendered output.
	old := SetWorkers(1)
	defer SetWorkers(old)

	spec := DefaultTopologyGrid(ScaleQuick)
	spec.Topos = []string{"graph:ring", "torus:4x4"}
	var serial bytes.Buffer
	PrintTopologyGrid(&serial, RunTopologyGrid(spec))

	SetWorkers(8)
	var conc bytes.Buffer
	PrintTopologyGrid(&conc, RunTopologyGrid(spec))

	if serial.String() != conc.String() {
		t.Fatalf("topology grid output differs across pool widths:\n%s\nvs\n%s",
			serial.String(), conc.String())
	}
}
