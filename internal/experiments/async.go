package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sgd"
)

// The async ablation puts the round-barrier engines and the event-driven
// K-of-m engine on the same error-vs-simulated-wall-clock axis, under the
// same 10x compute straggler. The barrier methods pay the straggler on
// EVERY round — the slow worker gates each aggregation whether or not its
// gradient is worth waiting for. The event-driven engine aggregates the
// first K arrivals, staleness-weighted, and lets the straggler's work
// overlap later rounds; AdaComm rides the same barrier but amortizes it
// with larger tau. Time-to-target is the headline column: the async rows
// must reach the shared loss level well before the full-barrier row.

// AsyncSpec sizes the async-vs-sync ablation.
type AsyncSpec struct {
	Scale         Scale
	Workers       int
	SlowFactor    float64 // compute-straggler multiplier on the last worker
	Tau           int
	BatchSize     int
	LR            float64
	TimeBudget    float64 // simulated seconds per method
	Participation int     // K for the partial-participation row
	Seed          uint64
}

// DefaultAsyncSpec returns the sizing used by cmd/figures and cmd/sweep.
func DefaultAsyncSpec(scale Scale) AsyncSpec {
	s := AsyncSpec{
		Scale:         scale,
		Workers:       8,
		SlowFactor:    10,
		Tau:           4,
		BatchSize:     8,
		LR:            0.1,
		TimeBudget:    600,
		Participation: 6,
		Seed:          601,
	}
	if scale == ScaleQuick {
		s.TimeBudget = 240
	}
	return s
}

// AsyncAblation runs four methods on one logistic workload with a
// SlowFactor compute straggler on the last worker, under one simulated-time
// budget: the fixed-tau barrier, AdaComm on the same barrier, the
// event-driven engine at full participation (K=m, the barrier expressed as
// events), and the event-driven engine at K-of-m. Returns the shared target
// loss and one row per method (linkAwareRows semantics).
func AsyncAblation(spec AsyncSpec) (float64, []LinkAwareRow) {
	m := spec.Workers
	straggler := make([]float64, m)
	for i := range straggler {
		straggler[i] = 1
	}
	straggler[m-1] = spec.SlowFactor

	sched := sgd.Const{Eta: spec.LR}
	syncCfg := cluster.Config{
		BatchSize:       spec.BatchSize,
		MaxTime:         spec.TimeBudget,
		EvalEvery:       50,
		EvalSubset:      400,
		StragglerFactor: straggler,
		Seed:            spec.Seed + 1,
	}
	asyncCfg := func(k int) cluster.AsyncConfig {
		return cluster.AsyncConfig{
			Participation:   k,
			InFlight:        m,
			Tau:             spec.Tau,
			BatchSize:       spec.BatchSize,
			LR:              spec.LR,
			MaxTime:         spec.TimeBudget,
			EvalEvery:       50,
			EvalSubset:      400,
			StragglerFactor: straggler,
			Seed:            spec.Seed + 2,
		}
	}

	runs := []struct {
		name string
		run  func(*Workload) *metrics.Trace
	}{
		{fmt.Sprintf("sync tau=%d", spec.Tau), func(w *Workload) *metrics.Trace {
			e := w.Engine(syncCfg)
			return e.Run(cluster.FixedTau{Tau: spec.Tau, Schedule: sched}, fmt.Sprintf("sync tau=%d", spec.Tau))
		}},
		{"adacomm", func(w *Workload) *metrics.Trace {
			ctrl := core.NewAdaComm(core.Config{
				Tau0: spec.Tau, Interval: spec.TimeBudget / 12, Gamma: 0.5, Schedule: sched,
			})
			e := w.Engine(syncCfg)
			return e.Run(ctrl, "adacomm")
		}},
		{fmt.Sprintf("async K=%d/%d", m, m), func(w *Workload) *metrics.Trace {
			e, err := cluster.NewAsync(w.Proto, w.Shards, w.Train, w.Test, w.Delay, asyncCfg(m))
			if err != nil {
				panic(fmt.Sprintf("experiments: %v", err))
			}
			return e.Run(fmt.Sprintf("async K=%d/%d", m, m))
		}},
		{fmt.Sprintf("async K=%d/%d", spec.Participation, m), func(w *Workload) *metrics.Trace {
			e, err := cluster.NewAsync(w.Proto, w.Shards, w.Train, w.Test, w.Delay, asyncCfg(spec.Participation))
			if err != nil {
				panic(fmt.Sprintf("experiments: %v", err))
			}
			return e.Run(fmt.Sprintf("async K=%d/%d", spec.Participation, m))
		}},
	}

	traces := make([]*metrics.Trace, len(runs))
	forEach(len(runs), func(i int) {
		// Each method gets its own workload instance (same seed → same data
		// and initialization) so parallel runs share nothing mutable.
		w := BuildWorkload(ArchLogistic, 4, m, spec.Scale, spec.Seed)
		traces[i] = runs[i].run(w)
	})
	return linkAwareRows(traces)
}
