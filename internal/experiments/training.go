package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sgd"
)

// TrainSpec describes one training comparison: a set of fixed-tau PASGD
// baselines plus AdaComm, all trained on the same workload for the same
// simulated wall-clock budget (the paper's protocol: "train all methods for
// sufficiently long time ... and compare training loss and test accuracy",
// with curves plotted against wall-clock time).
type TrainSpec struct {
	Name    string
	Arch    Arch
	Classes int
	M       int
	Scale   Scale
	Seed    uint64

	BatchSize  int
	BaseLR     float64
	VariableLR bool    // multi-step 10x decay at epoch milestones
	Milestones []int   // decay epochs (nil = derived default)
	TimeBudget float64 // simulated seconds per method

	Taus     []int   // fixed-tau baselines (tau=1 is fully synchronous SGD)
	Tau0     int     // AdaComm initial period
	Interval float64 // AdaComm T0

	Momentum      float64 // local momentum
	BlockMomentum float64 // global block momentum (Sec 5.3)

	EvalEvery  int
	EvalSubset int

	// ComputeWorkers pins the engines' compute-pool width (see
	// cluster.Config.ComputeWorkers). 0 lets Workload.Engine pick: serial
	// engines inside a parallel grid fan-out, GOMAXPROCS otherwise.
	ComputeWorkers int
}

func (s TrainSpec) withDefaults() TrainSpec {
	if s.BatchSize == 0 {
		s.BatchSize = 16
	}
	if s.BaseLR == 0 {
		s.BaseLR = 0.08
	}
	if s.EvalEvery == 0 {
		s.EvalEvery = 100
	}
	if s.EvalSubset == 0 {
		s.EvalSubset = 512
	}
	if s.Milestones == nil && s.VariableLR {
		// Chosen so the first decay fires within the time budget even for
		// tau=1 (which completes the fewest epochs per simulated second),
		// mirroring the paper's 80/120/160/200 schedule proportionally.
		s.Milestones = []int{15, 30, 45}
	}
	return s
}

func (s TrainSpec) schedule() sgd.Schedule {
	if s.VariableLR {
		return sgd.MultiStep{Eta: s.BaseLR, Factor: 0.1, Milestones: s.Milestones}
	}
	return sgd.Const{Eta: s.BaseLR}
}

// Comparison holds the per-method traces of one experiment.
type Comparison struct {
	Spec   TrainSpec
	Order  []string                  // method names in display order
	Traces map[string]*metrics.Trace // keyed by method name
}

// RunComparison executes all baselines and AdaComm on a shared workload.
// Each method owns its engine and controller, so the methods run
// concurrently on the experiment pool (SetWorkers); results land in display
// order, identical to a serial sweep.
func RunComparison(spec TrainSpec) *Comparison {
	spec = spec.withDefaults()
	w := BuildWorkload(spec.Arch, spec.Classes, spec.M, spec.Scale, spec.Seed)
	sched := spec.schedule()

	cfg := cluster.Config{
		BatchSize:      spec.BatchSize,
		Momentum:       spec.Momentum,
		BlockMomentum:  spec.BlockMomentum,
		MaxTime:        spec.TimeBudget,
		EvalEvery:      spec.EvalEvery,
		EvalSubset:     spec.EvalSubset,
		AccEverySync:   5,
		ComputeWorkers: spec.ComputeWorkers,
		Seed:           spec.Seed + 1,
	}

	cmp := &Comparison{Spec: spec, Traces: map[string]*metrics.Trace{}}
	type job struct {
		name string
		ctrl func() cluster.Controller
	}
	var jobs []job
	for _, tau := range spec.Taus {
		tau := tau
		jobs = append(jobs, job{
			name: fmt.Sprintf("tau=%d", tau),
			ctrl: func() cluster.Controller {
				return cluster.FixedTau{Tau: tau, Schedule: sched}
			},
		})
	}
	jobs = append(jobs, job{
		name: "AdaComm",
		ctrl: func() cluster.Controller {
			return core.NewAdaComm(core.Config{
				Tau0:         spec.Tau0,
				Interval:     spec.Interval,
				Gamma:        0.5,
				Schedule:     sched,
				Coupling:     couplingFor(spec),
				DeferLRDecay: spec.VariableLR,
			})
		},
	})

	traces := make([]*metrics.Trace, len(jobs))
	forEach(len(jobs), func(i int) {
		traces[i] = w.Engine(cfg).Run(jobs[i].ctrl(), jobs[i].name)
	})
	for i, j := range jobs {
		cmp.Traces[j.name] = traces[i]
		cmp.Order = append(cmp.Order, j.name)
	}
	return cmp
}

func couplingFor(spec TrainSpec) core.Coupling {
	if spec.VariableLR {
		return core.SqrtCoupling
	}
	return core.NoCoupling
}

// SpeedupVsSync computes each method's speedup over the tau=1 baseline at
// the given target loss (NaN entries mean the target was not reached).
func (c *Comparison) SpeedupVsSync(target float64) map[string]float64 {
	sync, ok := c.Traces["tau=1"]
	out := map[string]float64{}
	if !ok {
		return out
	}
	for name, tr := range c.Traces {
		out[name] = metrics.Speedup(sync, tr, target)
	}
	return out
}

// ReachableTarget picks a loss target that EVERY method reaches: slightly
// above the worst method's minimum loss. q in (0, 1] scales the margin
// (q=0.05 means 5% above the worst minimum). This mirrors how the paper
// quotes "X minutes to reach loss Y": Y is always a level all curves cross.
func (c *Comparison) ReachableTarget(q float64) float64 {
	traces := make([]*metrics.Trace, 0, len(c.Traces))
	for _, tr := range c.Traces {
		traces = append(traces, tr)
	}
	return reachableTarget(traces, q)
}

// reachableTarget is ReachableTarget over a plain trace list, shared with
// the compression experiments.
func reachableTarget(traces []*metrics.Trace, q float64) float64 {
	worst := 0.0
	for _, tr := range traces {
		if l := tr.MinLoss(); l > worst {
			worst = l
		}
	}
	return worst * (1 + q)
}

// Print renders final losses, time-to-target and speedups.
func (c *Comparison) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", c.Spec.Name)
	target := c.ReachableTarget(0.05)
	fmt.Fprintf(w, "target loss for speedups: %.5f\n", target)
	fmt.Fprintf(w, "%-10s %12s %12s %14s %10s\n",
		"method", "final loss", "min loss", "t(target)", "speedup")
	for _, name := range c.Order {
		tr := c.Traces[name]
		tt := tr.TimeToLoss(target)
		sp := metrics.Speedup(c.Traces["tau=1"], tr, target)
		fmt.Fprintf(w, "%-10s %12.5f %12.5f %14.2f %10.2f\n",
			name, tr.FinalLoss(), tr.MinLoss(), tt, sp)
	}
	// AdaComm's tau trajectory (the lower subplot of Figs 9-13).
	if tr, ok := c.Traces["AdaComm"]; ok {
		fmt.Fprintf(w, "AdaComm tau trajectory:")
		lastTau := -1
		for _, p := range tr.Points {
			if p.Tau != lastTau && p.Tau > 0 {
				fmt.Fprintf(w, " (t=%.0f tau=%d)", p.Time, p.Tau)
				lastTau = p.Tau
			}
		}
		fmt.Fprintln(w)
	}
}

// ---------------------------------------------------------------------------
// Figure specs.
// ---------------------------------------------------------------------------

// Fig1Spec is the conceptual error-vs-iterations / error-vs-time figure on
// the cheap logistic workload with alpha = 1.
func Fig1Spec(scale Scale) TrainSpec {
	budget := 4000.0
	if scale == ScaleQuick {
		budget = 1200
	}
	return TrainSpec{
		Name: "Fig 1: error vs iterations and vs wall-clock (logistic, alpha=1)",
		Arch: ArchLogistic, Classes: 4, M: 4, Scale: scale, Seed: 101,
		BatchSize: 4, BaseLR: 0.2, TimeBudget: budget,
		Taus: []int{1, 20}, Tau0: 20, Interval: budget / 10,
	}
}

// Fig9Spec: AdaComm on VGG-like, CIFAR10/100-like, fixed or variable LR,
// tau in {1, 20, 100} (paper Fig 9 a-c).
func Fig9Spec(classes int, variableLR bool, scale Scale) TrainSpec {
	budget := 300.0
	if scale == ScaleQuick {
		budget = 60
	}
	lrName := "fixed"
	if variableLR {
		lrName = "variable"
	}
	return TrainSpec{
		Name: fmt.Sprintf("Fig 9: VGG-like, %s LR, %d classes", lrName, classes),
		Arch: ArchVGG, Classes: classes, M: 4, Scale: scale, Seed: 109,
		BatchSize: 16, BaseLR: 0.08, VariableLR: variableLR,
		TimeBudget: budget,
		Taus:       []int{1, 20, 100}, Tau0: 20, Interval: budget / 10,
	}
}

// Fig10Spec: AdaComm on ResNet-like (computation-bound), tau in {1,5,100}.
func Fig10Spec(classes int, variableLR bool, scale Scale) TrainSpec {
	budget := 240.0
	if scale == ScaleQuick {
		budget = 45
	}
	lrName := "fixed"
	if variableLR {
		lrName = "variable"
	}
	return TrainSpec{
		Name: fmt.Sprintf("Fig 10: ResNet-like, %s LR, %d classes", lrName, classes),
		Arch: ArchResNet, Classes: classes, M: 4, Scale: scale, Seed: 110,
		BatchSize: 16, BaseLR: 0.08, VariableLR: variableLR,
		TimeBudget: budget,
		Taus:       []int{1, 5, 100}, Tau0: 10, Interval: budget / 10,
	}
}

// Fig11Spec: AdaComm plus block momentum (paper Fig 11): local momentum
// 0.9 reset at syncs, global block momentum 0.3.
func Fig11Spec(arch Arch, classes int, scale Scale) TrainSpec {
	budget := 300.0
	taus := []int{1, 20, 100}
	tau0 := 20
	if arch == ArchResNet {
		budget = 240
	}
	if scale == ScaleQuick {
		budget /= 10
	}
	return TrainSpec{
		Name: fmt.Sprintf("Fig 11: %s with block momentum, %d classes", arch, classes),
		Arch: arch, Classes: classes, M: 4, Scale: scale, Seed: 111,
		BatchSize: 16, BaseLR: 0.04, VariableLR: true,
		TimeBudget: budget,
		Taus:       taus, Tau0: tau0, Interval: budget / 10,
		Momentum: 0.9, BlockMomentum: 0.3,
	}
}

// Fig12Spec / Fig13Spec: the appendix 8-worker runs (per-worker batch
// halved, mirroring the paper's 64-per-node setting).
func Fig12Spec(classes int, variableLR bool, scale Scale) TrainSpec {
	s := Fig9Spec(classes, variableLR, scale)
	s.Name = fmt.Sprintf("Fig 12: VGG-like, 8 workers, %d classes", classes)
	s.M = 8
	s.BatchSize = 8
	s.Seed = 112
	return s
}

// Fig13Spec is the 8-worker ResNet-like appendix experiment.
func Fig13Spec(classes int, variableLR bool, scale Scale) TrainSpec {
	s := Fig10Spec(classes, variableLR, scale)
	s.Name = fmt.Sprintf("Fig 13: ResNet-like, 8 workers, %d classes", classes)
	s.M = 8
	s.BatchSize = 8
	s.Seed = 113
	s.Taus = []int{1, 10, 100}
	return s
}

// ---------------------------------------------------------------------------
// Table 1: best test accuracy within a shared time budget.
// ---------------------------------------------------------------------------

// Table1Row is one (model, method, LR-mode) accuracy cell.
type Table1Row struct {
	Model               string
	Method              string
	FixedLR, VariableLR float64 // best test accuracy (fraction)
}

// Table1 trains both architectures under both LR regimes and reports the
// best test accuracy each method achieved within the common time budget.
func Table1(scale Scale) []Table1Row {
	var rows []Table1Row
	for _, arch := range []Arch{ArchVGG, ArchResNet} {
		specFor := func(variable bool) TrainSpec {
			var s TrainSpec
			if arch == ArchVGG {
				s = Fig9Spec(10, variable, scale)
			} else {
				s = Fig10Spec(10, variable, scale)
			}
			s.Seed = 120
			return s
		}
		fixed := RunComparison(specFor(false))
		variable := RunComparison(specFor(true))

		budget := math.Inf(1)
		for _, c := range []*Comparison{fixed, variable} {
			for _, tr := range c.Traces {
				if t := tr.Last().Time; t < budget {
					budget = t
				}
			}
		}
		methods := append([]string(nil), fixed.Order...)
		for _, m := range methods {
			rows = append(rows, Table1Row{
				Model:      string(arch),
				Method:     m,
				FixedLR:    fixed.Traces[m].BestAccWithin(budget),
				VariableLR: variable.Traces[m].BestAccWithin(budget),
			})
		}
	}
	return rows
}

// PrintTable1 renders the accuracy table.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "== Table 1: best test accuracy within time budget ==")
	fmt.Fprintf(w, "%-8s %-10s %10s %12s\n", "model", "method", "fixed LR", "variable LR")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-10s %9.2f%% %11.2f%%\n",
			r.Model, r.Method, 100*r.FixedLR, 100*r.VariableLR)
	}
}

// ---------------------------------------------------------------------------
// Figure 14: local vs synchronized model accuracy gap (appendix B).
// ---------------------------------------------------------------------------

// Fig14Result carries the two accuracy series of the appendix-B probe.
type Fig14Result struct {
	Tau        int
	SyncIters  []int     // iterations at which the synchronized model was scored
	SyncAcc    []float64 // accuracy right after averaging
	LocalIters []int     // iterations at which a local model was scored
	LocalAcc   []float64 // accuracy of worker 0's unsynchronized model
	MeanGap    float64   // mean(syncAcc) - mean(localAcc) over the tail half
}

// Fig14 trains PASGD with tau=15 and scores the synchronized model at every
// sync point that is a multiple of evalEvery, and worker 0's local model at
// mid-period points — reproducing the ~10% gap of the paper's Fig 14.
func Fig14(scale Scale, seed uint64) Fig14Result {
	w := BuildWorkload(ArchLogistic, 4, 4, scale, seed)
	maxIters := 6000
	evalEvery := 300
	if scale == ScaleQuick {
		maxIters, evalEvery = 1500, 150
	}
	cfg := cluster.Config{
		BatchSize: 4, // noisy gradients make local drift visible
		MaxIters:  maxIters,
		EvalEvery: evalEvery,
		Seed:      seed + 1,
	}
	e := w.Engine(cfg)

	const tau = 15
	res := Fig14Result{Tau: tau}
	lr := 0.25
	iter := 0
	for iter < maxIters {
		// Advance to the next averaging point, scoring the local model at
		// the half-period mark.
		e.StepLocal(tau/2, lr)
		iter += tau / 2
		if iter%evalEvery < tau {
			res.LocalIters = append(res.LocalIters, iter)
			res.LocalAcc = append(res.LocalAcc, e.EvalParamsAccuracy(e.LocalModelParams(0)))
		}
		e.StepLocal(tau-tau/2, lr)
		iter += tau - tau/2
		e.SyncNow()
		if iter%evalEvery < tau {
			res.SyncIters = append(res.SyncIters, iter)
			res.SyncAcc = append(res.SyncAcc, e.TestAccuracy())
		}
	}
	// Mean gap over the tail half (after warmup).
	tail := func(v []float64) float64 {
		if len(v) == 0 {
			return math.NaN()
		}
		half := v[len(v)/2:]
		s := 0.0
		for _, x := range half {
			s += x
		}
		return s / float64(len(half))
	}
	res.MeanGap = tail(res.SyncAcc) - tail(res.LocalAcc)
	return res
}

// PrintFig14 renders both series.
func PrintFig14(w io.Writer, res Fig14Result) {
	fmt.Fprintf(w, "== Fig 14: local vs synchronized accuracy (tau=%d) ==\n", res.Tau)
	type pt struct {
		iter int
		acc  float64
		kind string
	}
	var pts []pt
	for i := range res.SyncIters {
		pts = append(pts, pt{res.SyncIters[i], res.SyncAcc[i], "sync"})
	}
	for i := range res.LocalIters {
		pts = append(pts, pt{res.LocalIters[i], res.LocalAcc[i], "local"})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].iter < pts[j].iter })
	for _, p := range pts {
		fmt.Fprintf(w, "iter %6d  %-5s acc %6.2f%%\n", p.iter, p.kind, 100*p.acc)
	}
	fmt.Fprintf(w, "mean tail gap (sync - local): %.2f%%\n", 100*res.MeanGap)
}
