package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/compress"
	"repro/internal/delaymodel"
	"repro/internal/metrics"
	"repro/internal/sgd"
)

// The topology ablation quantifies the graph layer's claim: under per-edge
// delay pricing, the best mixing topology is neither the sparsest nor the
// densest. A single slow edge gates every round of a graph that activates it
// — the ring (it is a ring edge) and the complete graph (it contains every
// edge, and complete-graph gossip IS full averaging) both pay it every sync
// — while a sparse graph that routes around the edge (the 4x4 torus, a
// random-regular draw) pays only its good links AND mixes far faster than
// the ring (spectral gap O(1/n) vs O(1/n^2)). Time-to-loss therefore orders
// torus/expander ahead of both endpoints of the density spectrum.

// TopologySpec describes the ablation.
type TopologySpec struct {
	Scale Scale
	Seed  uint64

	Workers int      // node count (16: the torus spec below pins 4x4)
	Topos   []string // comm.ParseTopology graph specs to race
	// The slow edge: EdgeFrom-EdgeTo gets EdgeLatency seconds of latency in
	// BOTH directions on top of the constant D0 = 1 round base. (3,4) is a
	// ring edge at m = 16 that the 4x4 torus does not contain.
	EdgeFrom, EdgeTo int
	EdgeLatency      float64

	// Ratio > 0 adds, per topology, a CHOCO cell at that top-k keep-ratio
	// with the spectral-gap-adapted consensus step (AdaptGossipGamma).
	Ratio float64

	Tau        int
	BatchSize  int
	LR         float64
	TimeBudget float64
}

// TopologyRow is one cell's outcome.
type TopologyRow struct {
	Topology     string
	Method       string // "raw" or "choco"
	SpectralGap  float64
	RoundComm    float64 // simulated seconds of one sync under the edge table
	FinalLoss    float64
	MinLoss      float64
	TimeToTarget float64
}

// TopologyResult bundles the ablation rows with the shared loss target.
type TopologyResult struct {
	Spec   TopologySpec
	Target float64
	Rows   []TopologyRow
}

// DefaultTopologyGrid is the shipped ablation: 16 nodes, one 10x-latency
// edge, the ring and the complete graph (the two density endpoints, both
// containing the slow edge) against the torus and a random-regular draw
// (both routing around it).
func DefaultTopologyGrid(scale Scale) TopologySpec {
	budget := 1500.0
	if scale == ScaleQuick {
		budget = 500
	}
	return TopologySpec{
		Scale:       scale,
		Seed:        160,
		Workers:     16,
		Topos:       []string{"graph:ring", "torus:4x4", "regular:4@11", "complete"},
		EdgeFrom:    3,
		EdgeTo:      4,
		EdgeLatency: 10,
		Ratio:       0.25,
		Tau:         5,
		BatchSize:   4,
		LR:          0.1,
		TimeBudget:  budget,
	}
}

// RunTopologyGrid races the topologies under the per-edge delay table. Cells
// are independent engines, so the grid fans out across the experiment pool;
// rows are written by index and the result is identical at any pool width.
func RunTopologyGrid(spec TopologySpec) TopologyResult {
	type cellSpec struct {
		topoStr string
		topo    comm.Topology
		method  string
		cs      compress.Spec
		adapt   bool
	}
	var cells []cellSpec
	for _, s := range spec.Topos {
		topo, err := comm.ParseTopology(s)
		if err != nil {
			panic(fmt.Sprintf("experiments: topology grid: %v", err))
		}
		cells = append(cells, cellSpec{topoStr: s, topo: topo, method: "raw"})
		if spec.Ratio > 0 {
			cells = append(cells, cellSpec{
				topoStr: s, topo: topo, method: "choco",
				cs:    compress.Spec{Kind: compress.KindTopK, Ratio: spec.Ratio},
				adapt: true,
			})
		}
	}
	rows := make([]TopologyRow, len(cells))
	traces := make([]*metrics.Trace, len(cells))
	forEach(len(cells), func(i int) {
		c := cells[i]
		w := BuildWorkload(ArchLogistic, 4, spec.Workers, spec.Scale, spec.Seed)
		w.Delay.EdgeLinks = map[delaymodel.Edge]delaymodel.Link{
			{From: spec.EdgeFrom, To: spec.EdgeTo}: {Latency: spec.EdgeLatency},
			{From: spec.EdgeTo, To: spec.EdgeFrom}: {Latency: spec.EdgeLatency},
		}
		cfg := cluster.Config{
			BatchSize:        spec.BatchSize,
			MaxTime:          spec.TimeBudget,
			EvalEvery:        50,
			EvalSubset:       256,
			Strategy:         cluster.RingGossip,
			Topology:         c.topo,
			Compress:         c.cs,
			AdaptGossipGamma: c.adapt,
			Seed:             spec.Seed + 1,
		}
		e := w.Engine(cfg)
		name := fmt.Sprintf("%s/%s", c.topoStr, c.method)
		tr := e.Run(cluster.FixedTau{Tau: spec.Tau, Schedule: sgd.Const{Eta: spec.LR}}, name)
		seq, err := c.topo.Graphs(spec.Workers)
		if err != nil {
			panic(fmt.Sprintf("experiments: topology grid: %v", err))
		}
		g := seq.Graph(0)
		// One sync's communication charge: D0 = 1 plus the slow edge's
		// latency iff the graph activates it.
		roundComm := 1.0
		for _, nb := range g.Neighbors(spec.EdgeFrom) {
			if nb == spec.EdgeTo {
				roundComm += spec.EdgeLatency
				break
			}
		}
		rows[i] = TopologyRow{
			Topology:    c.topoStr,
			Method:      c.method,
			SpectralGap: g.SpectralGap(),
			RoundComm:   roundComm,
			FinalLoss:   tr.FinalLoss(),
			MinLoss:     tr.MinLoss(),
		}
		traces[i] = tr
	})
	// Shared target: the loosest minimum loss across cells, relaxed 1%, so
	// every cell reaches it and time-to-target is always defined.
	worst := 0.0
	for _, r := range rows {
		if r.MinLoss > worst {
			worst = r.MinLoss
		}
	}
	target := worst * 1.01
	for i := range rows {
		rows[i].TimeToTarget = traces[i].TimeToLoss(target)
	}
	return TopologyResult{Spec: spec, Target: target, Rows: rows}
}

// PrintTopologyGrid renders the ablation as a table.
func PrintTopologyGrid(w io.Writer, res TopologyResult) {
	fmt.Fprintf(w, "== Mixing topology under a %gx slow edge (%d-%d), m=%d (time to loss %.5f) ==\n",
		res.Spec.EdgeLatency, res.Spec.EdgeFrom, res.Spec.EdgeTo, res.Spec.Workers, res.Target)
	fmt.Fprintf(w, "%-16s %-6s %9s %10s %12s %12s %11s\n",
		"topology", "method", "gap", "comm/sync", "final loss", "min loss", "t(target)")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-16s %-6s %9.4f %10.1f %12.5f %12.5f %11.1f\n",
			r.Topology, r.Method, r.SpectralGap, r.RoundComm, r.FinalLoss, r.MinLoss, r.TimeToTarget)
	}
}
