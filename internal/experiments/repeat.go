package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/metrics"
)

// Multi-seed repetition: the paper reports single runs; this driver reruns
// a comparison across several seeds and reports mean +/- sample-std of each
// method's final loss and speedup-over-sync, quantifying how robust the
// reproduced shape is to data/initialization randomness.

// RepeatResult aggregates one method's statistics across seeds.
type RepeatResult struct {
	Method        string
	FinalLossMean float64
	FinalLossStd  float64
	SpeedupMean   float64 // vs tau=1 at each run's own reachable target
	SpeedupStd    float64
	Runs          int // runs where the speedup was defined
}

// RepeatComparison reruns the spec with `seeds` different seeds.
func RepeatComparison(spec TrainSpec, seeds []uint64) []RepeatResult {
	if len(seeds) == 0 {
		panic("experiments: RepeatComparison needs seeds")
	}
	type acc struct {
		losses   []float64
		speedups []float64
	}
	order := []string(nil)
	accs := map[string]*acc{}
	for _, seed := range seeds {
		s := spec
		s.Seed = seed
		cmp := RunComparison(s)
		if order == nil {
			order = cmp.Order
			for _, name := range order {
				accs[name] = &acc{}
			}
		}
		target := cmp.ReachableTarget(0.05)
		for _, name := range order {
			tr := cmp.Traces[name]
			a := accs[name]
			a.losses = append(a.losses, tr.FinalLoss())
			if sp := metrics.Speedup(cmp.Traces["tau=1"], tr, target); !math.IsNaN(sp) {
				a.speedups = append(a.speedups, sp)
			}
		}
	}
	var out []RepeatResult
	for _, name := range order {
		a := accs[name]
		lm, ls := meanStd(a.losses)
		sm, ss := meanStd(a.speedups)
		out = append(out, RepeatResult{
			Method:        name,
			FinalLossMean: lm, FinalLossStd: ls,
			SpeedupMean: sm, SpeedupStd: ss,
			Runs: len(a.speedups),
		})
	}
	return out
}

func meanStd(v []float64) (mean, std float64) {
	if len(v) == 0 {
		return math.NaN(), math.NaN()
	}
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	if len(v) < 2 {
		return mean, 0
	}
	ss := 0.0
	for _, x := range v {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(v)-1))
}

// PrintRepeat renders the multi-seed aggregate.
func PrintRepeat(w io.Writer, title string, rows []RepeatResult) {
	fmt.Fprintf(w, "== %s (multi-seed) ==\n", title)
	fmt.Fprintf(w, "%-10s %20s %20s %6s\n", "method", "final loss", "speedup vs sync", "runs")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %11.5f±%-8.5f %12.2f±%-7.2f %6d\n",
			r.Method, r.FinalLossMean, r.FinalLossStd, r.SpeedupMean, r.SpeedupStd, r.Runs)
	}
}
