package experiments

import (
	"strings"
	"testing"
)

// TestAsyncAblation is the acceptance check for the event-driven engine's
// headline claim: under a 10x compute straggler, K-of-m partial
// participation reaches the shared target loss in less simulated wall-clock
// than the full-barrier sync run.
func TestAsyncAblation(t *testing.T) {
	spec := DefaultAsyncSpec(ScaleQuick)
	target, rows := AsyncAblation(spec)
	if target <= 0 {
		t.Fatalf("degenerate target %v", target)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	byName := map[string]LinkAwareRow{}
	for _, r := range rows {
		if r.MinLoss > target {
			t.Errorf("%s never reached the shared target %v (min %v)", r.Method, target, r.MinLoss)
		}
		if r.TimeToTarget <= 0 {
			t.Errorf("%s has no time-to-target", r.Method)
		}
		byName[r.Method] = r
	}
	sync, ok := byName["sync tau=4"]
	if !ok {
		t.Fatalf("missing sync row in %v", rows)
	}
	var partial LinkAwareRow
	found := false
	for name, r := range byName {
		if strings.HasPrefix(name, "async K=6") {
			partial, found = r, true
		}
	}
	if !found {
		t.Fatalf("missing partial-participation row in %v", rows)
	}
	if partial.TimeToTarget >= sync.TimeToTarget {
		t.Fatalf("K-of-m (t=%v) did not beat the full barrier (t=%v) under the 10x straggler",
			partial.TimeToTarget, sync.TimeToTarget)
	}
}

// TestAsyncAblationDeterministic guards the grid-parallel fan-out: the
// rows must be byte-identical however the pool schedules the methods.
func TestAsyncAblationDeterministic(t *testing.T) {
	spec := DefaultAsyncSpec(ScaleQuick)
	spec.TimeBudget = 60 // a short budget is enough to compare runs
	t1, r1 := AsyncAblation(spec)
	t2, r2 := AsyncAblation(spec)
	if t1 != t2 {
		t.Fatalf("targets differ: %v vs %v", t1, t2)
	}
	if len(r1) != len(r2) {
		t.Fatalf("row counts differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, r1[i], r2[i])
		}
	}
}
