package experiments

import (
	"math"
	"strings"
	"testing"
)

// TestChurnAblation is the acceptance pin for the fault subsystem: under 20%
// mid-run crash-recover churn plus drops, every strategy (barrier, gossip,
// elastic, event-driven, parameter server) completes its budget with a finite
// loss and a defined time-to-target — no deadlocks, no stalls on the
// departed. Paired fault-free rows bound the degradation.
func TestChurnAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("churn ablation runs every strategy twice")
	}
	spec := DefaultChurnSpec(ScaleQuick)
	target, rows := ChurnAblation(spec)
	if !(target > 0) {
		t.Fatalf("target %v", target)
	}
	if len(rows) != 14 {
		t.Fatalf("%d rows, want 14 (7 methods x clean/churn)", len(rows))
	}
	byName := map[string]LinkAwareRow{}
	for _, r := range rows {
		if math.IsNaN(r.FinalLoss) || math.IsInf(r.FinalLoss, 0) {
			t.Errorf("%s: final loss %v", r.Method, r.FinalLoss)
		}
		if math.IsNaN(r.TimeToTarget) || r.TimeToTarget < 0 {
			t.Errorf("%s: time-to-target %v undefined", r.Method, r.TimeToTarget)
		}
		byName[r.Method] = r
	}
	// Every churned method has its clean twin, and churn can only slow the
	// march to target, never corrupt it: the churned row still reaches the
	// shared loss level within the budget.
	for name, r := range byName {
		if strings.HasSuffix(name, "+churn") {
			if _, ok := byName[strings.TrimSuffix(name, "+churn")]; !ok {
				t.Errorf("%s has no fault-free twin", name)
			}
			if r.TimeToTarget > spec.TimeBudget {
				t.Errorf("%s: time-to-target %v exceeds budget %v", name, r.TimeToTarget, spec.TimeBudget)
			}
		}
	}
}

func TestChurnAblationRejectsBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("accepted malformed fault spec")
		}
	}()
	spec := DefaultChurnSpec(ScaleQuick)
	spec.Faults = "crash:bogus"
	ChurnAblation(spec)
}
