package experiments

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/delaymodel"
	"repro/internal/metrics"
	"repro/internal/sgd"
)

// Determinism under parallelism: the compute pool inside the engine
// (Config.ComputeWorkers) and the experiment pool across grid cells
// (SetWorkers) must both be invisible in the results — same parameters,
// same trace times, same losses, bit for bit.

func tracesEqual(t *testing.T, name string, a, b *metrics.Trace) {
	t.Helper()
	if len(a.Points) != len(b.Points) {
		t.Fatalf("%s: %d points vs %d", name, len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		pa, pb := a.Points[i], b.Points[i]
		sameLoss := pa.Loss == pb.Loss || (math.IsNaN(pa.Loss) && math.IsNaN(pb.Loss))
		sameAcc := pa.Acc == pb.Acc || (math.IsNaN(pa.Acc) && math.IsNaN(pb.Acc))
		if pa.Time != pb.Time || pa.Iter != pb.Iter || !sameLoss || !sameAcc ||
			pa.Tau != pb.Tau || pa.LR != pb.LR {
			t.Fatalf("%s: point %d differs: %+v vs %+v", name, i, pa, pb)
		}
	}
}

func paramsEqual(t *testing.T, name string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: param length %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("%s: param %d differs: %v vs %v", name, i, a[i], b[i])
		}
	}
}

// TestComputeWorkersBitIdentical pins the tentpole invariant: fanning the
// per-worker local-update loops across 8 goroutines produces the same
// trajectory as the serial loop for a fixed-tau baseline, AdaComm, and the
// link-aware AdaComm that consumes observed per-round timing.
func TestComputeWorkersBitIdentical(t *testing.T) {
	const budget = 250.0
	controllers := []struct {
		name  string
		links bool
		ctrl  func() cluster.Controller
	}{
		{"fixed-tau", false, func() cluster.Controller {
			return cluster.FixedTau{Tau: 5, Schedule: sgd.Const{Eta: 0.1}}
		}},
		{"adacomm", false, func() cluster.Controller {
			return core.NewAdaComm(core.Config{
				Tau0: 8, Interval: budget / 8, Gamma: 0.5,
				Schedule: sgd.Const{Eta: 0.1},
			})
		}},
		{"adacomm-linkaware", true, func() cluster.Controller {
			return core.NewAdaComm(core.Config{
				Tau0: 8, Interval: budget / 8, Gamma: 0.5,
				Schedule: sgd.Const{Eta: 0.1}, LinkAware: true,
			})
		}},
	}
	run := func(tc int, computeWorkers int, links bool) (*metrics.Trace, []float64) {
		w := BuildWorkload(ArchLogistic, 4, 4, ScaleQuick, 901)
		if links {
			w.Delay.Bandwidth = 256
			ls := make([]delaymodel.Link, 4)
			ls[3].Bandwidth = 25.6
			w.Delay.Links = ls
		}
		e := w.Engine(cluster.Config{
			BatchSize: 8, MaxTime: budget, EvalEvery: 50, EvalSubset: 256,
			ComputeWorkers: computeWorkers,
			Seed:           902,
		})
		tr := e.Run(controllers[tc].ctrl(), controllers[tc].name)
		return tr, e.GlobalParams()
	}
	for i, tc := range controllers {
		t.Run(tc.name, func(t *testing.T) {
			serialTr, serialP := run(i, 1, tc.links)
			poolTr, poolP := run(i, 8, tc.links)
			tracesEqual(t, tc.name, serialTr, poolTr)
			paramsEqual(t, tc.name, serialP, poolP)
		})
	}
}

// TestRunComparisonConcurrentMatchesSerial pins the experiment-pool
// invariant: RunComparison with 8 concurrent methods produces the same
// traces, in the same order, as the serial sweep.
func TestRunComparisonConcurrentMatchesSerial(t *testing.T) {
	spec := TrainSpec{
		Name: "pool-test", Arch: ArchLogistic, Classes: 4, M: 4,
		Scale: ScaleQuick, Seed: 903,
		BatchSize: 4, BaseLR: 0.2, TimeBudget: 300,
		Taus: []int{1, 10}, Tau0: 10, Interval: 30,
	}
	old := SetWorkers(1)
	defer SetWorkers(old)
	serial := RunComparison(spec)
	SetWorkers(8)
	concurrent := RunComparison(spec)

	if len(serial.Order) != len(concurrent.Order) {
		t.Fatalf("order length %d vs %d", len(serial.Order), len(concurrent.Order))
	}
	for i := range serial.Order {
		if serial.Order[i] != concurrent.Order[i] {
			t.Fatalf("order[%d] %q vs %q", i, serial.Order[i], concurrent.Order[i])
		}
		name := serial.Order[i]
		tracesEqual(t, name, serial.Traces[name], concurrent.Traces[name])
	}
}

// TestAblationGridsConcurrentMatchSerial covers the remaining fan-outs: the
// tau0 grid search and the gamma ablation must pick the same rows under a
// wide pool as serially.
func TestAblationGridsConcurrentMatchSerial(t *testing.T) {
	old := SetWorkers(1)
	defer SetWorkers(old)
	serialTau := TauGridAblation(ScaleQuick)
	serialGamma := GammaAblation(ScaleQuick)
	SetWorkers(8)
	poolTau := TauGridAblation(ScaleQuick)
	poolGamma := GammaAblation(ScaleQuick)

	if len(serialTau) != len(poolTau) {
		t.Fatalf("tau rows %d vs %d", len(serialTau), len(poolTau))
	}
	for i := range serialTau {
		if serialTau[i] != poolTau[i] {
			t.Fatalf("tau row %d: %+v vs %+v", i, serialTau[i], poolTau[i])
		}
	}
	if len(serialGamma) != len(poolGamma) {
		t.Fatalf("gamma rows %d vs %d", len(serialGamma), len(poolGamma))
	}
	for i := range serialGamma {
		if serialGamma[i] != poolGamma[i] {
			t.Fatalf("gamma row %d: %+v vs %+v", i, serialGamma[i], poolGamma[i])
		}
	}
}
