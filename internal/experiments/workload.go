// Package experiments contains one driver per table and figure of the
// paper's evaluation, plus the ablations called out in DESIGN.md. Every
// driver is deterministic given its seed, returns a structured result, and
// can render itself as text; cmd/figures and the benchmark harness in the
// repository root are thin wrappers around this package.
//
// Sizing: the paper's experiments train VGG-16/ResNet-50 on CIFAR for tens
// of GPU-minutes. The reproduction's workloads are miniaturized (see
// DESIGN.md) so that a full figure regenerates in seconds to minutes of CPU
// time, while preserving the quantities that determine the figure's shape:
// the communication/computation ratio alpha, the gradient-noise floor, and
// the number of adaptation intervals. Each driver takes a Scale knob:
// ScaleQuick for unit tests, ScaleFull for the benchmark harness.
package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/data"
	"repro/internal/delaymodel"
	"repro/internal/nn"
	"repro/internal/rng"
)

// Scale selects experiment sizing.
type Scale int

const (
	// ScaleQuick shrinks datasets/iterations for fast unit tests.
	ScaleQuick Scale = iota
	// ScaleFull is the benchmark-harness sizing used for EXPERIMENTS.md.
	ScaleFull
)

// Arch selects the model family (stand-ins for the paper's two networks).
type Arch string

const (
	// ArchVGG is the communication-bound VGGNano (alpha ~ 4).
	ArchVGG Arch = "vgg"
	// ArchResNet is the computation-bound ResNetNano (alpha ~ 0.5).
	ArchResNet Arch = "resnet"
	// ArchLogistic is a linear softmax model on blob data, used by the
	// conceptual figures where the model is irrelevant.
	ArchLogistic Arch = "logistic"
)

// Workload bundles everything a training experiment needs.
type Workload struct {
	Arch    Arch
	Classes int
	M       int // workers
	Proto   *nn.Network
	Train   *data.Dataset
	Test    *data.Dataset
	Shards  []*data.Dataset
	Delay   *delaymodel.Model
	Profile delaymodel.Profile
}

// BuildWorkload constructs a deterministic workload. classes is 10 or 100
// (mirroring CIFAR-10/100); m is the worker count (4 or 8 in the paper).
func BuildWorkload(arch Arch, classes, m int, scale Scale, seed uint64) *Workload {
	r := rng.New(seed)
	w := &Workload{Arch: arch, Classes: classes, M: m}

	switch arch {
	case ArchLogistic:
		dim := 16
		nTrain, nTest := 1024, 256
		if scale == ScaleQuick {
			nTrain, nTest = 512, 128
		}
		full := data.GaussianBlobs(data.GaussianBlobsConfig{
			Classes: classes, Dim: dim, N: nTrain + nTest, Separation: 4,
			Noise: 1.5, LabelNoise: 0.1,
		}, r)
		w.Train, w.Test = data.SplitTrainTest(full, nTest, r)
		w.Proto = nn.NewLogisticRegression(dim, classes)
		w.Profile = delaymodel.Profile{
			Name:     "logistic",
			ComputeY: rng.Constant{Value: 1},
			CommD0:   rng.Constant{Value: 1},
		}

	case ArchVGG, ArchResNet:
		shape := data.ImageShape{Channels: 3, Height: 8, Width: 8}
		nTrain, nTest := 2048, 512
		if scale == ScaleQuick {
			shape = data.ImageShape{Channels: 1, Height: 8, Width: 8}
			nTrain, nTest = 384, 128
		}
		full := data.SynthImages(data.SynthImagesConfig{
			Classes: classes, Shape: shape, N: nTrain + nTest, Noise: 0.8,
			LabelNoise: 0.1,
		}, r)
		w.Train, w.Test = data.SplitTrainTest(full, nTest, r)
		if arch == ArchVGG {
			w.Proto = nn.NewVGGNano(shape, classes)
			w.Profile = delaymodel.VGG16Profile()
		} else {
			w.Proto = nn.NewResNetNano(shape, classes)
			w.Profile = delaymodel.ResNet50Profile()
		}

	default:
		panic(fmt.Sprintf("experiments: unknown arch %q", arch))
	}

	w.Proto.InitParams(r.Split())
	w.Shards = data.ShardIID(w.Train, m, r.Split())
	w.Delay = w.Profile.Model(m, delaymodel.ConstantScaling{})
	return w
}

// Engine builds a cluster engine on this workload. Engines with an unset
// ComputeWorkers that are constructed inside a parallel grid fan-out run
// their simulated workers serially — the grid already saturates the cores,
// and stacking a second GOMAXPROCS-wide pool per config would oversubscribe
// them. Engines built outside a fan-out (single runs) keep the full
// compute pool. Either way the results are bit-identical.
func (w *Workload) Engine(cfg cluster.Config) *cluster.Engine {
	if cfg.ComputeWorkers == 0 && poolBusy() {
		cfg.ComputeWorkers = 1
	}
	e, err := cluster.New(w.Proto, w.Shards, w.Train, w.Test, w.Delay, cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: engine construction failed: %v", err))
	}
	return e
}
