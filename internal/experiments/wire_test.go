package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestWireAblation(t *testing.T) {
	// Seeded convergence satellite: the float32 wire halves the per-round
	// payload exactly, tracks the float64 trajectory within tolerance, and
	// on the bandwidth-constrained link reaches the shared target sooner.
	res := WireAblation(ScaleQuick)
	if res.NarrowBytes*2 != res.WideBytes {
		t.Fatalf("payload not halved: f32 %d B vs f64 %d B", res.NarrowBytes, res.WideBytes)
	}
	if math.IsNaN(res.TimeWide) || math.IsNaN(res.TimeNarrow) {
		t.Fatalf("target %v unreached: f64 %v, f32 %v", res.Target, res.TimeWide, res.TimeNarrow)
	}
	if res.TimeNarrow >= res.TimeWide {
		t.Fatalf("narrow wire did not pay off: f64 %v s vs f32 %v s",
			res.TimeWide, res.TimeNarrow)
	}
	wide, narrow := res.Wide.FinalLoss(), res.Narrow.FinalLoss()
	if math.IsNaN(narrow) {
		t.Fatal("float32-wire run produced NaN loss")
	}
	// The narrow run fits MORE rounds into the budget, so its final loss can
	// only beat or track the wide one — bound the relative gap both ways.
	if rel := math.Abs(narrow-wide) / wide; rel > 0.25 {
		t.Fatalf("float32 wire drifted: final loss %v vs %v (rel %v)", narrow, wide, rel)
	}
	var sb strings.Builder
	PrintWireAblation(&sb, res)
	if !strings.Contains(sb.String(), "Float32 vs float64 wire") {
		t.Fatal("PrintWireAblation empty")
	}
}
