package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/delaymodel"
	"repro/internal/sgd"
)

// The heterogeneous-link ablation extends the paper's straggler analysis
// (Sec 3.2) to the regime studied by the adaptive distributed-SGD follow-ups
// (Spiridonoff et al. 2020; Kas Hanna et al. 2022): the straggler is slow in
// bytes per second, not compute. One worker's uplink is 10x worse than the
// rest, so every synchronization is gated by its transfer time; communicating
// rarely (large tau) amortizes the slow link, and AdaComm's decaying-tau
// schedule buys the large-tau runtime early without the error floor late.

// HeteroSpec parameterizes the bandwidth-straggler ablation.
type HeteroSpec struct {
	Scale      Scale
	Seed       uint64
	Workers    int
	Bandwidth  float64 // healthy per-worker link, bytes per simulated second
	SlowFactor float64 // the straggler's link is Bandwidth/SlowFactor
	TimeBudget float64
	BatchSize  int
	LR         float64
	Tau0       int // AdaComm's initial period and the large fixed tau
}

// DefaultHeteroSpec is the shipped configuration: a logistic workload where
// one dense broadcast over the slow link costs about 20 local steps.
func DefaultHeteroSpec(scale Scale) HeteroSpec {
	budget := 2400.0
	if scale == ScaleQuick {
		budget = 800
	}
	return HeteroSpec{
		Scale:      scale,
		Seed:       520,
		Workers:    4,
		Bandwidth:  256,
		SlowFactor: 10,
		TimeBudget: budget,
		BatchSize:  8,
		LR:         0.1,
		Tau0:       16,
	}
}

// HeteroRow is one method's outcome on the constrained cluster.
type HeteroRow struct {
	Method    string
	FinalLoss float64
	MinLoss   float64
	Iters     int // local iterations completed within the budget
	FinalTau  int
}

// HeterogeneousStragglerAblation runs fixed tau = 1, fixed tau = Tau0, and
// AdaComm on a cluster where worker m-1 has a SlowFactor-times-worse link,
// under the same simulated-time budget.
func HeterogeneousStragglerAblation(spec HeteroSpec) []HeteroRow {
	w := BuildWorkload(ArchLogistic, 4, spec.Workers, spec.Scale, spec.Seed)
	w.Delay.Bandwidth = spec.Bandwidth
	links := make([]delaymodel.Link, spec.Workers)
	links[spec.Workers-1].Bandwidth = spec.Bandwidth / spec.SlowFactor
	w.Delay.Links = links

	cfg := cluster.Config{
		BatchSize:  spec.BatchSize,
		MaxTime:    spec.TimeBudget,
		EvalEvery:  100,
		EvalSubset: 400,
		Seed:       spec.Seed + 1,
	}
	sched := sgd.Const{Eta: spec.LR}
	runs := []struct {
		name string
		ctrl func() cluster.Controller
	}{
		{"tau=1", func() cluster.Controller { return cluster.FixedTau{Tau: 1, Schedule: sched} }},
		{fmt.Sprintf("tau=%d", spec.Tau0), func() cluster.Controller {
			return cluster.FixedTau{Tau: spec.Tau0, Schedule: sched}
		}},
		{"adacomm", func() cluster.Controller {
			return core.NewAdaComm(core.Config{
				Tau0: spec.Tau0, Interval: spec.TimeBudget / 12, Gamma: 0.5,
				Schedule: sched,
			})
		}},
	}
	rows := make([]HeteroRow, len(runs))
	forEach(len(runs), func(i int) {
		e := w.Engine(cfg)
		tr := e.Run(runs[i].ctrl(), runs[i].name)
		rows[i] = HeteroRow{
			Method:    runs[i].name,
			FinalLoss: tr.FinalLoss(),
			MinLoss:   tr.MinLoss(),
			Iters:     tr.Last().Iter,
			FinalTau:  tr.Last().Tau,
		}
	})
	return rows
}

// PrintHeterogeneousAblation renders the comparison.
func PrintHeterogeneousAblation(w io.Writer, spec HeteroSpec, rows []HeteroRow) {
	fmt.Fprintf(w, "== Bandwidth straggler: worker %d at %g B/s, rest at %g B/s, budget %g s ==\n",
		spec.Workers-1, spec.Bandwidth/spec.SlowFactor, spec.Bandwidth, spec.TimeBudget)
	fmt.Fprintf(w, "%-10s %12s %12s %8s %9s\n", "method", "final loss", "min loss", "iters", "final tau")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %12.5f %12.5f %8d %9d\n",
			r.Method, r.FinalLoss, r.MinLoss, r.Iters, r.FinalTau)
	}
}
