package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/paramserver"
	"repro/internal/rng"
	"repro/internal/sgd"
)

// The churn ablation is the robustness counterpart of the straggler studies:
// instead of slowing a link it removes workers outright. A fifth of the
// population crash-recovers mid-run (two staggered blips on a 10-worker
// cluster) on top of a background message-drop rate, and every aggregation
// strategy — centralized averaging, AdaComm on the same barrier, raw and
// compressed gossip, elastic averaging, the event-driven K-of-m engine, and
// the K-async parameter server — must finish the budget without deadlock.
// Each method runs twice, fault-free and under churn, so the table shows the
// degradation directly: the headline claim is that AdaComm's time-to-target
// degrades gracefully (survivors keep averaging over the active set, rejoiners
// snap back via a priced dense pull) rather than stalling on the departed.

// ChurnSpec sizes the churn ablation.
type ChurnSpec struct {
	Scale      Scale
	Workers    int
	Tau        int
	BatchSize  int
	LR         float64
	TimeBudget float64 // simulated seconds per method
	// Faults is the schedule every churn row runs under (faults.Forms
	// grammar, validated against Workers). Empty uses the default 20%
	// crash-recover churn plus a 5% drop rate.
	Faults string
	Seed   uint64
}

// DefaultChurnSpec returns the sizing used by cmd/figures and cmd/sweep.
func DefaultChurnSpec(scale Scale) ChurnSpec {
	s := ChurnSpec{
		Scale:      scale,
		Workers:    10,
		Tau:        5,
		BatchSize:  8,
		LR:         0.1,
		TimeBudget: 600,
		Faults:     "blip:0@r8-20,blip:1@r28-42,drop:0.05",
		Seed:       901,
	}
	if scale == ScaleQuick {
		s.TimeBudget = 240
	}
	return s
}

// ChurnAblation runs every strategy fault-free and under the spec's churn
// schedule, on one logistic workload and one simulated-time budget. Returns
// the shared target loss and one row per (method, condition) pair — the
// "+churn" rows carry the degradation. Panics on an invalid fault spec;
// callers wiring user input should faults.Parse first.
func ChurnAblation(spec ChurnSpec) (float64, []LinkAwareRow) {
	m := spec.Workers
	sched, err := faults.Parse(spec.Faults)
	if err != nil {
		panic(fmt.Sprintf("experiments: churn fault spec: %v", err))
	}
	if err := sched.Validate(m); err != nil {
		panic(fmt.Sprintf("experiments: churn fault spec: %v", err))
	}

	lrSched := sgd.Const{Eta: spec.LR}
	clusterCfg := func(f *faults.Schedule) cluster.Config {
		return cluster.Config{
			BatchSize:  spec.BatchSize,
			MaxTime:    spec.TimeBudget,
			EvalEvery:  50,
			EvalSubset: 400,
			Seed:       spec.Seed + 1,
			Faults:     f,
		}
	}

	type method struct {
		name string
		run  func(w *Workload, f *faults.Schedule, label string) *metrics.Trace
	}
	methods := []method{
		{"full", func(w *Workload, f *faults.Schedule, label string) *metrics.Trace {
			e := w.Engine(clusterCfg(f))
			return e.Run(cluster.FixedTau{Tau: spec.Tau, Schedule: lrSched}, label)
		}},
		{"adacomm", func(w *Workload, f *faults.Schedule, label string) *metrics.Trace {
			ctrl := core.NewAdaComm(core.Config{
				Tau0: spec.Tau, Interval: spec.TimeBudget / 12, Gamma: 0.5, Schedule: lrSched,
			})
			e := w.Engine(clusterCfg(f))
			return e.Run(ctrl, label)
		}},
		{"ring", func(w *Workload, f *faults.Schedule, label string) *metrics.Trace {
			cfg := clusterCfg(f)
			cfg.Strategy = cluster.RingGossip
			e := w.Engine(cfg)
			return e.Run(cluster.FixedTau{Tau: spec.Tau, Schedule: lrSched}, label)
		}},
		{"choco", func(w *Workload, f *faults.Schedule, label string) *metrics.Trace {
			cfg := clusterCfg(f)
			cfg.Strategy = cluster.RingGossip
			cfg.Compress = compress.Spec{Kind: compress.KindTopK, Ratio: 0.25}
			cfg.AdaptGossipGamma = true
			e := w.Engine(cfg)
			return e.Run(cluster.FixedTau{Tau: spec.Tau, Schedule: lrSched}, label)
		}},
		{"elastic", func(w *Workload, f *faults.Schedule, label string) *metrics.Trace {
			cfg := clusterCfg(f)
			cfg.Strategy = cluster.ElasticAveraging
			e := w.Engine(cfg)
			return e.Run(cluster.FixedTau{Tau: spec.Tau, Schedule: lrSched}, label)
		}},
		{fmt.Sprintf("async K=%d/%d", m-2, m), func(w *Workload, f *faults.Schedule, label string) *metrics.Trace {
			cfg := cluster.AsyncConfig{
				Participation: m - 2,
				InFlight:      m,
				Tau:           spec.Tau,
				BatchSize:     spec.BatchSize,
				LR:            spec.LR,
				MaxTime:       spec.TimeBudget,
				EvalEvery:     50,
				EvalSubset:    400,
				Seed:          spec.Seed + 2,
				Faults:        f,
			}
			e, err := cluster.NewAsync(w.Proto, w.Shards, w.Train, w.Test, w.Delay, cfg)
			if err != nil {
				panic(fmt.Sprintf("experiments: %v", err))
			}
			return e.Run(label)
		}},
		{fmt.Sprintf("ps k-async K=%d", m/2), func(w *Workload, f *faults.Schedule, label string) *metrics.Trace {
			cfg := paramserver.Config{
				Mode:       paramserver.KAsync,
				BatchSize:  spec.BatchSize,
				ComputeY:   rng.Exponential{MeanVal: 1},
				PushDelay:  rng.Constant{Value: 0.1},
				MaxTime:    spec.TimeBudget,
				EvalEvery:  10,
				EvalSubset: 400,
				Seed:       spec.Seed + 3,
				Faults:     f,
			}
			shards := data.ShardIID(w.Train, m, rng.New(spec.Seed+4))
			s, err := paramserver.New(w.Proto, shards, w.Train, cfg)
			if err != nil {
				panic(fmt.Sprintf("experiments: %v", err))
			}
			tr, _ := s.Run(paramserver.FixedK{K: m / 2, LR: spec.LR}, label)
			return tr
		}},
	}

	// Every method runs fault-free and churned; each run gets its own
	// workload instance (same seed → same data and initialization) so
	// parallel runs share nothing mutable.
	type job struct {
		label string
		f     *faults.Schedule
		m     method
	}
	jobs := make([]job, 0, 2*len(methods))
	for _, mt := range methods {
		jobs = append(jobs, job{mt.name, nil, mt})
		jobs = append(jobs, job{mt.name + "+churn", sched, mt})
	}
	traces := make([]*metrics.Trace, len(jobs))
	forEach(len(jobs), func(i int) {
		w := BuildWorkload(ArchLogistic, 4, m, spec.Scale, spec.Seed)
		traces[i] = jobs[i].m.run(w, jobs[i].f, jobs[i].label)
	})
	return linkAwareRows(traces)
}
