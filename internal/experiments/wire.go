package experiments

import (
	"fmt"
	"io"

	"repro/internal/compress"
	"repro/internal/metrics"
)

// The wire ablation isolates the float32 wire format from sparsification:
// both runs average the FULL model (identity compressor), differing only in
// the width of each value on the link. On a bandwidth-constrained cluster
// the narrow wire halves every broadcast, so the float32 run fits more
// rounds into the same simulated budget while its trajectory tracks the
// float64 one to within the ~2^-24 relative narrowing error per round.

// WireAblationResult compares dense full averaging over a float64 wire
// against the same run over a float32 wire.
type WireAblationResult struct {
	Tau         int
	Bandwidth   float64
	Target      float64 // shared loss level both runs reach
	Wide        *metrics.Trace
	Narrow      *metrics.Trace
	WideBytes   int // per-round payload, float64 wire
	NarrowBytes int // per-round payload, float32 wire
	TimeWide    float64
	TimeNarrow  float64
	Speedup     float64 // TimeWide / TimeNarrow
}

// WireAblation runs the pair on the compression grid's shared
// bandwidth-constrained workload at a fixed tau. Both runs see identical
// seeds; the only difference is the Spec's wire format.
func WireAblation(scale Scale) WireAblationResult {
	spec := DefaultCompressionGrid(scale)
	const tau = 5
	w := spec.workload()

	pair := []compress.Spec{
		{Kind: compress.KindIdentity},
		{Kind: compress.KindIdentity, Wire: compress.WireFloat32},
	}
	names := []string{"f64 wire", "f32 wire"}
	traces := make([]*metrics.Trace, len(pair))
	bytesPerRound := make([]int, len(pair))
	forEach(len(pair), func(i int) {
		e, tr := spec.runCell(w, tau, pair[i], names[i])
		traces[i] = tr
		bytesPerRound[i] = e.CommBytesPerRound()
	})

	res := WireAblationResult{
		Tau:         tau,
		Bandwidth:   spec.Bandwidth,
		Target:      reachableTarget(traces, 0.05),
		Wide:        traces[0],
		Narrow:      traces[1],
		WideBytes:   bytesPerRound[0],
		NarrowBytes: bytesPerRound[1],
	}
	res.TimeWide = res.Wide.TimeToLoss(res.Target)
	res.TimeNarrow = res.Narrow.TimeToLoss(res.Target)
	res.Speedup = res.TimeWide / res.TimeNarrow
	return res
}

// PrintWireAblation renders the pair.
func PrintWireAblation(w io.Writer, res WireAblationResult) {
	fmt.Fprintf(w, "== Float32 vs float64 wire at tau=%d, bandwidth %g B/s ==\n",
		res.Tau, res.Bandwidth)
	fmt.Fprintf(w, "payload/round: f64 %d B, f32 %d B\n", res.WideBytes, res.NarrowBytes)
	fmt.Fprintf(w, "target loss %.5f: f64 %.2f s, f32 %.2f s (%.2fx)\n",
		res.Target, res.TimeWide, res.TimeNarrow, res.Speedup)
}
