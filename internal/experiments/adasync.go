package experiments

import (
	"fmt"
	"io"

	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/paramserver"
	"repro/internal/rng"
)

// AdaSyncRow is one parameter-server method's outcome.
type AdaSyncRow struct {
	Method       string
	FinalLoss    float64
	TimeToTarget float64
	Updates      int
	MeanStale    float64
}

// AdaSyncExperiment runs the paper's concluding extension: adapting
// asynchrony in a K-async parameter server. Baselines are fully
// asynchronous (K=1) and fully synchronous (K=m) aggregation; AdaSync grows
// K from 1 toward m as the training loss decreases.
func AdaSyncExperiment(scale Scale) []AdaSyncRow {
	m := 8
	w := BuildWorkload(ArchLogistic, 4, m, scale, 501)
	budget := 400.0
	if scale == ScaleQuick {
		budget = 150
	}
	cfg := paramserver.Config{
		Mode:       paramserver.KAsync,
		BatchSize:  8,
		ComputeY:   rng.Exponential{MeanVal: 1},
		PushDelay:  rng.Constant{Value: 0.1},
		MaxTime:    budget,
		EvalEvery:  25,
		EvalSubset: 400,
		Seed:       502,
	}
	// Re-shard for the PS worker count.
	shards := data.ShardIID(w.Train, m, rng.New(503))

	run := func(name string, ctrl paramserver.Controller) (*metrics.Trace, rng.Summary) {
		s, err := paramserver.New(w.Proto, shards, w.Train, cfg)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		return s.Run(ctrl, name)
	}

	type result struct {
		name  string
		trace *metrics.Trace
		stale rng.Summary
	}
	var results []result
	for _, rc := range []struct {
		name string
		ctrl paramserver.Controller
	}{
		{"K=1 (async)", paramserver.FixedK{K: 1, LR: 0.1}},
		{fmt.Sprintf("K=%d (sync)", m), paramserver.FixedK{K: m, LR: 0.1}},
		{"AdaSync", paramserver.NewAdaSync(paramserver.AdaSyncConfig{
			K0: 1, M: m, Interval: budget / 10, LR: 0.1,
		})},
	} {
		tr, st := run(rc.name, rc.ctrl)
		results = append(results, result{rc.name, tr, st})
	}

	// Target every method reaches.
	worst := 0.0
	for _, r := range results {
		if l := r.trace.MinLoss(); l > worst {
			worst = l
		}
	}
	target := worst * 1.05

	rows := make([]AdaSyncRow, 0, len(results))
	for _, r := range results {
		rows = append(rows, AdaSyncRow{
			Method:       r.name,
			FinalLoss:    r.trace.FinalLoss(),
			TimeToTarget: r.trace.TimeToLoss(target),
			Updates:      r.trace.Last().Iter,
			MeanStale:    r.stale.Mean,
		})
	}
	return rows
}

// PrintAdaSync renders the adaptive-asynchrony comparison.
func PrintAdaSync(w io.Writer, rows []AdaSyncRow) {
	fmt.Fprintln(w, "== Extension: adaptive asynchrony (K-async parameter server, m=8) ==")
	fmt.Fprintf(w, "%-14s %12s %12s %10s %12s\n",
		"method", "final loss", "t(target)", "updates", "mean stale")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %12.5f %12.2f %10d %12.2f\n",
			r.Method, r.FinalLoss, r.TimeToTarget, r.Updates, r.MeanStale)
	}
}
