package experiments

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/compress"
	"repro/internal/metrics"
	"repro/internal/sgd"
)

// The gossip-compression ablation quantifies what decentralizing the
// compression reference costs. The pre-CHOCO compressed ring referenced the
// exact replica mean — state only a centralized algorithm can hold, and
// exactly what compressed FULL averaging maintains legitimately. The grid
// therefore pits, at several ring sizes and keep-ratios, CHOCO ring gossip
// (per-node estimates, everything wire-derivable) against that
// shared-reference full-averaging baseline and against uncompressed ring
// gossip, on a bandwidth-constrained link where the payload saving buys
// simulated wall-clock.

// GossipGridSpec describes the sweep.
type GossipGridSpec struct {
	Scale     Scale
	Seed      uint64
	Bandwidth float64 // bytes per simulated second on every link

	RingSizes []int     // ring topologies to sweep (worker counts)
	Ratios    []float64 // top-k keep-ratios for the compressed cells
	Gamma     float64   // CHOCO consensus step size
	// Wire selects the value precision of the COMPRESSED cells' payloads;
	// the "ring raw" baseline always runs the uncompressed float64 path so
	// the grid keeps its lossless reference.
	Wire compress.WireFormat

	BatchSize  int
	LR         float64
	TimeBudget float64
}

// GossipGridRow is one cell of the sweep.
type GossipGridRow struct {
	M             int
	Method        string // "ring raw", "ring choco", or "full shared-ref"
	Compressor    string
	BytesPerRound int
	FinalLoss     float64
	MinLoss       float64
}

// GossipGridResult bundles the sweep rows.
type GossipGridResult struct {
	Spec GossipGridSpec
	Rows []GossipGridRow
}

// DefaultGossipGrid is the shipped sweep: a logistic workload on a
// federated-style link, rings of 4 and 8 nodes, moderate and aggressive
// sparsification.
func DefaultGossipGrid(scale Scale) GossipGridSpec {
	budget := 2400.0
	if scale == ScaleQuick {
		budget = 800
	}
	return GossipGridSpec{
		Scale:      scale,
		Seed:       150,
		Bandwidth:  128,
		RingSizes:  []int{4, 8},
		Ratios:     []float64{0.25, 0.1},
		Gamma:      0.5,
		BatchSize:  4,
		LR:         0.1,
		TimeBudget: budget,
	}
}

// runGossipCell trains one fixed-tau run on w with the given strategy and
// compressor and fills the row.
func (spec GossipGridSpec) runGossipCell(w *Workload, method string, strat cluster.Strategy,
	cs compress.Spec, gamma float64) (GossipGridRow, *metrics.Trace) {
	cfg := cluster.Config{
		BatchSize:   spec.BatchSize,
		MaxTime:     spec.TimeBudget,
		EvalEvery:   100,
		EvalSubset:  256,
		Strategy:    strat,
		Compress:    cs,
		GossipGamma: gamma,
		Seed:        spec.Seed + 1,
	}
	e := w.Engine(cfg)
	name := fmt.Sprintf("m=%d/%s/%s", w.M, method, cs)
	tr := e.Run(cluster.FixedTau{Tau: 5, Schedule: sgd.Const{Eta: spec.LR}}, name)
	return GossipGridRow{
		M:             w.M,
		Method:        method,
		Compressor:    cs.String(),
		BytesPerRound: e.CommBytesPerRound(),
		FinalLoss:     tr.FinalLoss(),
		MinLoss:       tr.MinLoss(),
	}, tr
}

// RunGossipGrid trains every cell. Cells are independent configurations
// (each owns its engine, estimate state, and compressor streams), so the
// grid fans out across the experiment pool; rows are written by index and
// the result is identical at any pool width.
func RunGossipGrid(spec GossipGridSpec) GossipGridResult {
	type cellSpec struct {
		w      *Workload
		method string
		strat  cluster.Strategy
		cs     compress.Spec
		gamma  float64
	}
	var cells []cellSpec
	for _, m := range spec.RingSizes {
		w := BuildWorkload(ArchLogistic, 4, m, spec.Scale, spec.Seed)
		w.Delay.Bandwidth = spec.Bandwidth
		cells = append(cells, cellSpec{w: w, method: "ring raw", strat: cluster.RingGossip})
		for _, ratio := range spec.Ratios {
			cs := compress.Spec{Kind: compress.KindTopK, Ratio: ratio, Wire: spec.Wire}
			cells = append(cells,
				cellSpec{w: w, method: "ring choco", strat: cluster.RingGossip, cs: cs, gamma: spec.Gamma},
				cellSpec{w: w, method: "full shared-ref", strat: cluster.FullAveraging, cs: cs})
		}
	}
	rows := make([]GossipGridRow, len(cells))
	forEach(len(cells), func(i int) {
		c := cells[i]
		rows[i], _ = spec.runGossipCell(c.w, c.method, c.strat, c.cs, c.gamma)
	})
	return GossipGridResult{Spec: spec, Rows: rows}
}

// PrintGossipGrid renders the sweep as a table.
func PrintGossipGrid(w io.Writer, res GossipGridResult) {
	fmt.Fprintf(w, "== Gossip compression: CHOCO ring vs shared-reference averaging (gamma %g, bandwidth %g B/s) ==\n",
		res.Spec.Gamma, res.Spec.Bandwidth)
	fmt.Fprintf(w, "%-4s %-16s %-12s %10s %12s %12s\n",
		"m", "method", "compressor", "B/round", "final loss", "min loss")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-4d %-16s %-12s %10d %12.5f %12.5f\n",
			r.M, r.Method, r.Compressor, r.BytesPerRound, r.FinalLoss, r.MinLoss)
	}
}
