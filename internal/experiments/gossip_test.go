package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestGossipGridShape(t *testing.T) {
	spec := DefaultGossipGrid(ScaleQuick)
	res := RunGossipGrid(spec)

	// One raw row plus (choco, shared-ref) per ratio, per ring size.
	want := len(spec.RingSizes) * (1 + 2*len(spec.Ratios))
	if len(res.Rows) != want {
		t.Fatalf("%d rows, want %d", len(res.Rows), want)
	}
	raw := map[int]GossipGridRow{}
	for _, r := range res.Rows {
		if r.FinalLoss <= 0 || r.MinLoss <= 0 {
			t.Fatalf("degenerate losses in row %+v", r)
		}
		if r.Method == "ring raw" {
			raw[r.M] = r
		}
	}
	for _, r := range res.Rows {
		if r.Method == "ring choco" {
			base, ok := raw[r.M]
			if !ok {
				t.Fatalf("no raw reference for m=%d", r.M)
			}
			if r.BytesPerRound >= base.BytesPerRound/2 {
				t.Fatalf("m=%d choco payload %d not meaningfully below raw %d",
					r.M, r.BytesPerRound, base.BytesPerRound)
			}
			// The wire-derivable estimates must keep CHOCO in the same
			// loss regime as uncompressed gossip.
			if r.FinalLoss > 2*base.FinalLoss {
				t.Fatalf("m=%d choco final loss %v far above raw %v",
					r.M, r.FinalLoss, base.FinalLoss)
			}
		}
	}

	var buf bytes.Buffer
	PrintGossipGrid(&buf, res)
	out := buf.String()
	for _, want := range []string{"CHOCO", "ring choco", "full shared-ref", "ring raw"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered grid missing %q:\n%s", want, out)
		}
	}
}

func TestGossipGridConcurrentMatchesSerial(t *testing.T) {
	// The grid's cells are independent engines (each owning its CHOCO
	// estimate state), so the experiment pool must not change a byte of the
	// rendered output.
	old := SetWorkers(1)
	defer SetWorkers(old)

	spec := DefaultGossipGrid(ScaleQuick)
	spec.RingSizes = []int{4}
	spec.Ratios = []float64{0.25}
	var serial bytes.Buffer
	PrintGossipGrid(&serial, RunGossipGrid(spec))

	SetWorkers(8)
	var conc bytes.Buffer
	PrintGossipGrid(&conc, RunGossipGrid(spec))

	if serial.String() != conc.String() {
		t.Fatalf("gossip grid output differs across pool widths:\n%s\nvs\n%s",
			serial.String(), conc.String())
	}
}
