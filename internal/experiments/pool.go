package experiments

import (
	"runtime"
	"sync/atomic"

	"repro/internal/par"
)

// Shared experiment pool: every grid in this package — the RunComparison
// baselines, the tau/gamma/coupling/interval/strategy ablations, the
// compression cells, the link-aware configs — is a set of INDEPENDENT
// configurations, each owning its seeds, its engine, and its controller.
// forEach fans those configurations across a bounded goroutine pool and
// writes results by index, so the rendered output is byte-identical to a
// serial sweep regardless of pool width or scheduling (the determinism
// tests assert this). Workloads shared across a grid's cells are read-only
// once built; anything mutable (engines, controllers, RNG streams) is
// constructed inside the per-index function.

var poolWorkers int64 = int64(runtime.GOMAXPROCS(0))

// SetWorkers bounds how many experiment configurations run concurrently
// (cmd/figures and cmd/sweep expose it as -workers). Values below 1 force
// serial execution. It returns the previous setting so tests can restore it.
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(atomic.SwapInt64(&poolWorkers, int64(n)))
}

// Workers reports the current experiment-pool width.
func Workers() int { return int(atomic.LoadInt64(&poolWorkers)) }

// activeFanOuts counts grid fan-outs currently running with real
// parallelism. While it is non-zero, Workload.Engine defaults freshly built
// engines to a serial compute pool: the grid already saturates the cores,
// and stacking a GOMAXPROCS-wide engine pool under every concurrent config
// would only oversubscribe them. Single runs built outside any fan-out
// (cmd/adacomm, Fig 14) keep the full engine pool.
var activeFanOuts atomic.Int64

// poolBusy reports whether a parallel grid fan-out is in flight.
func poolBusy() bool { return activeFanOuts.Load() > 0 }

// forEach runs fn(i) for every i in [0, n), at most Workers() at a time.
// fn must only write state owned by (or indexed to) its own i.
func forEach(n int, fn func(i int)) {
	w := Workers()
	if w > 1 && n > 1 {
		activeFanOuts.Add(1)
		defer activeFanOuts.Add(-1)
	}
	par.ForEach(n, w, fn)
}
