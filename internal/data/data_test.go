package data

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func blobs(t *testing.T, n int) *Dataset {
	t.Helper()
	ds := GaussianBlobs(GaussianBlobsConfig{
		Classes: 4, Dim: 8, N: n, Separation: 4, Noise: 1,
	}, rng.New(1))
	if err := ds.Validate(); err != nil {
		t.Fatalf("invalid dataset: %v", err)
	}
	return ds
}

func TestGaussianBlobsShape(t *testing.T) {
	ds := blobs(t, 100)
	if ds.N() != 100 || ds.Dim() != 8 || ds.Classes != 4 {
		t.Fatalf("bad shape: n=%d dim=%d classes=%d", ds.N(), ds.Dim(), ds.Classes)
	}
}

func TestGaussianBlobsBalanced(t *testing.T) {
	ds := blobs(t, 400)
	counts := make([]int, ds.Classes)
	for _, y := range ds.Y {
		counts[y]++
	}
	for c, n := range counts {
		if n != 100 {
			t.Fatalf("class %d has %d examples, want 100", c, n)
		}
	}
}

func TestGaussianBlobsDeterministic(t *testing.T) {
	a := GaussianBlobs(GaussianBlobsConfig{Classes: 3, Dim: 5, N: 30, Separation: 2, Noise: 0.5}, rng.New(7))
	b := GaussianBlobs(GaussianBlobsConfig{Classes: 3, Dim: 5, N: 30, Separation: 2, Noise: 0.5}, rng.New(7))
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			t.Fatal("same seed produced different data")
		}
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatal("same seed produced different labels")
		}
	}
}

func TestGaussianBlobsSeparation(t *testing.T) {
	// With high separation and low noise, per-class means of the data
	// should be far apart relative to noise.
	ds := GaussianBlobs(GaussianBlobsConfig{Classes: 2, Dim: 4, N: 2000, Separation: 10, Noise: 0.1}, rng.New(2))
	mean := func(cls int) []float64 {
		m := make([]float64, ds.Dim())
		n := 0
		for i := 0; i < ds.N(); i++ {
			if ds.Y[i] == cls {
				for j, v := range ds.X.Row(i) {
					m[j] += v
				}
				n++
			}
		}
		for j := range m {
			m[j] /= float64(n)
		}
		return m
	}
	m0, m1 := mean(0), mean(1)
	dist := 0.0
	for j := range m0 {
		d := m0[j] - m1[j]
		dist += d * d
	}
	if math.Sqrt(dist) < 1 {
		t.Fatalf("class means too close: %v", math.Sqrt(dist))
	}
}

func TestSynthImages(t *testing.T) {
	shape := ImageShape{Channels: 3, Height: 8, Width: 8}
	ds := SynthImages(SynthImagesConfig{Classes: 10, Shape: shape, N: 200, Noise: 0.3}, rng.New(3))
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Dim() != shape.Len() {
		t.Fatalf("dim %d != shape len %d", ds.Dim(), shape.Len())
	}
	if ds.Shape != shape {
		t.Fatalf("shape not recorded: %+v", ds.Shape)
	}
}

func TestSynthImagesClassStructure(t *testing.T) {
	// Same-class examples must be closer (on average) than cross-class:
	// otherwise the dataset carries no learnable signal.
	shape := ImageShape{Channels: 1, Height: 8, Width: 8}
	ds := SynthImages(SynthImagesConfig{Classes: 4, Shape: shape, N: 200, Noise: 0.2}, rng.New(4))
	var within, between float64
	var nw, nb int
	for i := 0; i < 50; i++ {
		for j := i + 1; j < 50; j++ {
			d := 0.0
			ri, rj := ds.X.Row(i), ds.X.Row(j)
			for k := range ri {
				dd := ri[k] - rj[k]
				d += dd * dd
			}
			if ds.Y[i] == ds.Y[j] {
				within += d
				nw++
			} else {
				between += d
				nb++
			}
		}
	}
	if nw == 0 || nb == 0 {
		t.Skip("degenerate sample")
	}
	if within/float64(nw) >= between/float64(nb) {
		t.Fatalf("no class structure: within %v >= between %v", within/float64(nw), between/float64(nb))
	}
}

func TestTwoSpirals(t *testing.T) {
	ds := TwoSpirals(200, 0.05, rng.New(5))
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Classes != 2 || ds.Dim() != 2 {
		t.Fatal("bad spiral dataset")
	}
}

func TestLinearRegressionDataGroundTruth(t *testing.T) {
	ds, w, b := LinearRegressionData(LinearRegressionConfig{Dim: 6, N: 5000, Noise: 0}, rng.New(6))
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// Zero noise: targets must match the linear model exactly.
	for i := 0; i < ds.N(); i++ {
		pred := b
		for j, v := range ds.X.Row(i) {
			pred += v * w[j]
		}
		if math.Abs(pred-ds.T[i]) > 1e-9 {
			t.Fatalf("target mismatch at %d: %v vs %v", i, pred, ds.T[i])
		}
	}
}

func TestSubset(t *testing.T) {
	ds := blobs(t, 50)
	sub := ds.Subset([]int{3, 7, 11})
	if sub.N() != 3 {
		t.Fatalf("subset size %d", sub.N())
	}
	for k, j := range []int{3, 7, 11} {
		if sub.Y[k] != ds.Y[j] {
			t.Fatal("subset labels wrong")
		}
		for c := 0; c < ds.Dim(); c++ {
			if sub.X.At(k, c) != ds.X.At(j, c) {
				t.Fatal("subset rows wrong")
			}
		}
	}
	// Mutating the subset must not affect the parent.
	sub.X.Set(0, 0, 999)
	if ds.X.At(3, 0) == 999 {
		t.Fatal("subset aliases parent")
	}
}

func TestShardIIDPartition(t *testing.T) {
	ds := blobs(t, 103) // deliberately not divisible by m
	shards := ShardIID(ds, 4, rng.New(8))
	total := 0
	for _, s := range shards {
		total += s.N()
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if total != 103 {
		t.Fatalf("shards cover %d rows, want 103", total)
	}
	// Sizes must be near-equal (differ by at most 1).
	for _, s := range shards {
		if s.N() < 25 || s.N() > 26 {
			t.Fatalf("unbalanced shard size %d", s.N())
		}
	}
}

func TestShardByLabelNonIID(t *testing.T) {
	ds := blobs(t, 400)
	shards := ShardByLabel(ds, 4, rng.New(9))
	// Each shard should be dominated by few classes: measure the max
	// class fraction; non-IID sharding should make it ~1.0, while IID
	// sharding gives ~1/classes = 0.25.
	for _, s := range shards {
		counts := make([]int, s.Classes)
		for _, y := range s.Y {
			counts[y]++
		}
		maxFrac := 0.0
		for _, c := range counts {
			if f := float64(c) / float64(s.N()); f > maxFrac {
				maxFrac = f
			}
		}
		if maxFrac < 0.9 {
			t.Fatalf("shard not label-skewed: max class fraction %v", maxFrac)
		}
	}
}

func TestSamplerEpochCoverage(t *testing.T) {
	ds := blobs(t, 100)
	s := NewSampler(ds, 32, rng.New(10))
	// One epoch = ceil(100/32) = 4 batches covering each row exactly once.
	seen := map[float64]int{}
	rows := 0
	for i := 0; i < 4; i++ {
		b := s.Next()
		rows += b.X.Rows
		for r := 0; r < b.X.Rows; r++ {
			seen[b.X.At(r, 0)]++
		}
	}
	if rows != 100 {
		t.Fatalf("epoch covered %d rows, want 100", rows)
	}
	if s.Epoch() != 0 {
		t.Fatalf("epoch counter %d, want 0 before wrap", s.Epoch())
	}
	s.Next()
	if s.Epoch() != 1 {
		t.Fatalf("epoch counter %d, want 1 after wrap", s.Epoch())
	}
	_ = seen
}

func TestSamplerBatchShapes(t *testing.T) {
	ds := blobs(t, 10)
	s := NewSampler(ds, 4, rng.New(11))
	sizes := []int{4, 4, 2, 4} // last batch of epoch is partial, then wraps
	for i, want := range sizes {
		b := s.Next()
		if b.X.Rows != want {
			t.Fatalf("batch %d size %d, want %d", i, b.X.Rows, want)
		}
		if len(b.Y) != want {
			t.Fatalf("batch %d labels %d, want %d", i, len(b.Y), want)
		}
	}
}

func TestSamplerDeterministic(t *testing.T) {
	ds := blobs(t, 64)
	s1 := NewSampler(ds, 16, rng.New(12))
	s2 := NewSampler(ds, 16, rng.New(12))
	for i := 0; i < 10; i++ {
		b1, b2 := s1.Next(), s2.Next()
		for j := range b1.X.Data {
			if b1.X.Data[j] != b2.X.Data[j] {
				t.Fatalf("samplers diverged at batch %d", i)
			}
		}
	}
}

func TestFullBatch(t *testing.T) {
	ds := blobs(t, 20)
	b := FullBatch(ds)
	if b.X.Rows != 20 || len(b.Y) != 20 {
		t.Fatal("FullBatch shape wrong")
	}
	b.X.Set(0, 0, 123456)
	if ds.X.At(0, 0) == 123456 {
		t.Fatal("FullBatch aliases dataset")
	}
}

func TestValidateCatchesBadLabels(t *testing.T) {
	ds := blobs(t, 10)
	ds.Y[0] = 99
	if err := ds.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range label")
	}
}

func TestSplitTrainTestPartition(t *testing.T) {
	ds := blobs(t, 100)
	train, test := SplitTrainTest(ds, 25, rng.New(30))
	if train.N() != 75 || test.N() != 25 {
		t.Fatalf("split sizes %d/%d, want 75/25", train.N(), test.N())
	}
	if err := train.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := test.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitTrainTestPanicsOnBadSize(t *testing.T) {
	ds := blobs(t, 10)
	for _, n := range []int{0, 10, 11} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("accepted nTest=%d", n)
				}
			}()
			SplitTrainTest(ds, n, rng.New(1))
		}()
	}
}

func TestLabelNoise(t *testing.T) {
	// With huge separation and tiny feature noise the true class of each
	// example is recoverable as the nearest class centroid (estimated
	// from the majority-correct labels). The flip rate should then be
	// close to p*(1-1/K): a flip draws uniformly, so 1/K flips are no-ops.
	cfg := GaussianBlobsConfig{
		Classes: 4, Dim: 3, N: 4000, Separation: 20, Noise: 0.01, LabelNoise: 0.2,
	}
	noisy := GaussianBlobs(cfg, rng.New(55))
	if err := noisy.Validate(); err != nil {
		t.Fatal(err)
	}
	// Estimate class centroids from labeled data (80% correct labels keep
	// centroids essentially exact given the separation).
	centroids := make([][]float64, cfg.Classes)
	counts := make([]int, cfg.Classes)
	for c := range centroids {
		centroids[c] = make([]float64, cfg.Dim)
	}
	for i := 0; i < noisy.N(); i++ {
		y := noisy.Y[i]
		counts[y]++
		for j, v := range noisy.X.Row(i) {
			centroids[y][j] += v
		}
	}
	for c := range centroids {
		for j := range centroids[c] {
			centroids[c][j] /= float64(counts[c])
		}
	}
	flipped := 0
	for i := 0; i < noisy.N(); i++ {
		best, bestD := 0, math.Inf(1)
		for c := 0; c < cfg.Classes; c++ {
			d := 0.0
			for j, v := range noisy.X.Row(i) {
				diff := v - centroids[c][j]
				d += diff * diff
			}
			if d < bestD {
				best, bestD = c, d
			}
		}
		if best != noisy.Y[i] {
			flipped++
		}
	}
	rate := float64(flipped) / float64(noisy.N())
	want := 0.2 * (1 - 1.0/4)
	if math.Abs(rate-want) > 0.03 {
		t.Fatalf("flip rate %v, want ~%v", rate, want)
	}
}

// Property: sharding always partitions (sizes sum to N) for any m <= N.
func TestShardPartitionProperty(t *testing.T) {
	ds := blobs(t, 60)
	f := func(m8 uint8) bool {
		m := 1 + int(m8)%12
		shards := ShardIID(ds, m, rng.New(uint64(m8)))
		total := 0
		for _, s := range shards {
			total += s.N()
		}
		return total == ds.N() && len(shards) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
