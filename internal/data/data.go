// Package data provides the synthetic datasets that stand in for CIFAR-10 /
// CIFAR-100 in this reproduction, plus the sharding and mini-batch sampling
// machinery of a distributed training run: each worker owns a partition of
// the training set and reshuffles it every epoch, exactly as in the paper's
// experimental setup (Sec 5.1).
//
// The substitution rationale (see DESIGN.md): SGD only observes the data
// through stochastic gradients, so any dataset with genuine class structure
// and controllable difficulty exercises the same error-runtime trade-off.
// SynthImages produces Gaussian class clusters with spatial texture so that
// both MLPs and the small CNNs in internal/nn have signal to learn.
package data

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Task distinguishes classification from regression datasets.
type Task int

const (
	// Classification datasets carry integer labels in Y.
	Classification Task = iota
	// Regression datasets carry float targets in T.
	Regression
)

// ImageShape records the (channels, height, width) layout of flattened
// image rows, for convolutional models. A zero value means "not an image".
type ImageShape struct {
	Channels, Height, Width int
}

// Len returns C*H*W.
func (s ImageShape) Len() int { return s.Channels * s.Height * s.Width }

// Dataset is an in-memory supervised dataset. X holds one example per row.
// Exactly one of Y (classification) or T (regression) is non-nil.
type Dataset struct {
	Task    Task
	X       *tensor.Matrix
	Y       []int     // class labels, len == X.Rows, for Classification
	T       []float64 // targets, len == X.Rows, for Regression
	Classes int       // number of classes (Classification only)
	Shape   ImageShape
}

// N returns the number of examples.
func (d *Dataset) N() int { return d.X.Rows }

// Dim returns the input dimensionality.
func (d *Dataset) Dim() int { return d.X.Cols }

// Validate checks internal consistency and returns a descriptive error.
func (d *Dataset) Validate() error {
	switch d.Task {
	case Classification:
		if d.Y == nil || len(d.Y) != d.X.Rows {
			return fmt.Errorf("data: classification labels length %d != rows %d", len(d.Y), d.X.Rows)
		}
		if d.Classes < 2 {
			return fmt.Errorf("data: classification needs >= 2 classes, got %d", d.Classes)
		}
		for i, y := range d.Y {
			if y < 0 || y >= d.Classes {
				return fmt.Errorf("data: label %d out of range at row %d", y, i)
			}
		}
	case Regression:
		if d.T == nil || len(d.T) != d.X.Rows {
			return fmt.Errorf("data: regression targets length %d != rows %d", len(d.T), d.X.Rows)
		}
	default:
		return fmt.Errorf("data: unknown task %d", d.Task)
	}
	if s := d.Shape; s != (ImageShape{}) && s.Len() != d.X.Cols {
		return fmt.Errorf("data: image shape %v length %d != cols %d", s, s.Len(), d.X.Cols)
	}
	return nil
}

// Subset returns a view-sharing dataset restricted to the given row indices.
// The returned dataset copies rows (X is materialized) so that samplers can
// hold it without aliasing surprises.
func (d *Dataset) Subset(idx []int) *Dataset {
	sub := &Dataset{Task: d.Task, Classes: d.Classes, Shape: d.Shape}
	sub.X = tensor.NewMatrix(len(idx), d.X.Cols)
	for i, j := range idx {
		copy(sub.X.Row(i), d.X.Row(j))
	}
	if d.Y != nil {
		sub.Y = make([]int, len(idx))
		for i, j := range idx {
			sub.Y[i] = d.Y[j]
		}
	}
	if d.T != nil {
		sub.T = make([]float64, len(idx))
		for i, j := range idx {
			sub.T[i] = d.T[j]
		}
	}
	return sub
}

// ShardIID partitions the dataset into m near-equal random shards, the
// "each worker machine is assigned a partition" setup of the paper. The
// permutation is drawn from r, so shards are deterministic given the seed.
func ShardIID(d *Dataset, m int, r *rng.Rand) []*Dataset {
	if m < 1 {
		panic("data: ShardIID needs m >= 1")
	}
	perm := r.Perm(d.N())
	return shardByOrder(d, perm, m)
}

// ShardByLabel partitions into m shards after sorting by label, producing
// maximally non-IID shards (each worker sees few classes). Used by the
// federated-learning example to stress AdaComm under heterogeneity.
func ShardByLabel(d *Dataset, m int, r *rng.Rand) []*Dataset {
	if d.Task != Classification {
		panic("data: ShardByLabel requires a classification dataset")
	}
	if m < 1 {
		panic("data: ShardByLabel needs m >= 1")
	}
	// Bucket indices by label, shuffle within each bucket, concatenate.
	buckets := make([][]int, d.Classes)
	for i, y := range d.Y {
		buckets[y] = append(buckets[y], i)
	}
	order := make([]int, 0, d.N())
	for _, b := range buckets {
		r.ShuffleInts(b)
		order = append(order, b...)
	}
	return shardByOrder(d, order, m)
}

func shardByOrder(d *Dataset, order []int, m int) []*Dataset {
	shards := make([]*Dataset, m)
	n := len(order)
	for w := 0; w < m; w++ {
		lo := w * n / m
		hi := (w + 1) * n / m
		shards[w] = d.Subset(order[lo:hi])
	}
	return shards
}

// Batch is one mini-batch: row indices into a dataset plus materialized
// inputs/targets for the model.
type Batch struct {
	X *tensor.Matrix // B x D
	Y []int          // Classification
	T []float64      // Regression
}

// Sampler yields mini-batches from a dataset with a fresh random permutation
// each epoch (sampling without replacement within an epoch), matching the
// "randomly shuffled after every epoch" protocol in the paper.
type Sampler struct {
	ds        *Dataset
	batchSize int
	r         *rng.Rand
	perm      []int
	pos       int
	epoch     int
	batch     Batch // reused across Next calls (see Next's doc)
}

// NewSampler creates a sampler over ds drawing batches of the given size.
func NewSampler(ds *Dataset, batchSize int, r *rng.Rand) *Sampler {
	if batchSize < 1 {
		panic("data: batch size must be >= 1")
	}
	if ds.N() == 0 {
		panic("data: cannot sample from empty dataset")
	}
	s := &Sampler{ds: ds, batchSize: batchSize, r: r}
	s.reshuffle()
	return s
}

func (s *Sampler) reshuffle() {
	s.perm = s.r.Perm(s.ds.N())
	s.pos = 0
}

// Epoch returns the number of completed passes over the shard.
func (s *Sampler) Epoch() int { return s.epoch }

// Next returns the next mini-batch, wrapping (and reshuffling) at epoch
// boundaries. The final partial batch of an epoch is emitted as-is.
//
// The returned Batch shares the sampler's internal buffers and is valid
// only until the next call to Next — the training hot path consumes each
// batch immediately, so reusing the storage keeps per-step allocations at
// zero. Callers that retain a batch must copy it.
func (s *Sampler) Next() Batch {
	if s.pos >= len(s.perm) {
		s.epoch++
		s.reshuffle()
	}
	end := s.pos + s.batchSize
	if end > len(s.perm) {
		end = len(s.perm)
	}
	idx := s.perm[s.pos:end]
	s.pos = end

	b := &s.batch
	dim := s.ds.Dim()
	if need := len(idx) * dim; b.X == nil || cap(b.X.Data) < need {
		b.X = tensor.NewMatrix(len(idx), dim)
	} else {
		b.X.Rows, b.X.Cols = len(idx), dim
		b.X.Data = b.X.Data[:need]
	}
	for i, j := range idx {
		copy(b.X.Row(i), s.ds.X.Row(j))
	}
	if s.ds.Y != nil {
		if cap(b.Y) < len(idx) {
			b.Y = make([]int, len(idx))
		} else {
			b.Y = b.Y[:len(idx)]
		}
		for i, j := range idx {
			b.Y[i] = s.ds.Y[j]
		}
	}
	if s.ds.T != nil {
		if cap(b.T) < len(idx) {
			b.T = make([]float64, len(idx))
		} else {
			b.T = b.T[:len(idx)]
		}
		for i, j := range idx {
			b.T[i] = s.ds.T[j]
		}
	}
	return *b
}

// FullBatch materializes the entire dataset as one batch (used for exact
// loss evaluation F(x_t) that AdaComm's update rule consumes).
func FullBatch(ds *Dataset) Batch {
	b := Batch{X: ds.X.Clone()}
	if ds.Y != nil {
		b.Y = append([]int(nil), ds.Y...)
	}
	if ds.T != nil {
		b.T = append([]float64(nil), ds.T...)
	}
	return b
}
