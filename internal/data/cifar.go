package data

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/tensor"
)

// CIFAR-10 binary-format loader. The reproduction itself runs on synthetic
// data (the module is offline), but a downstream user with the real
// dataset (https://www.cs.toronto.edu/~kriz/cifar.html, "binary version")
// can train on it directly. The format is a concatenation of records:
//
//	1 byte label (0-9) followed by 3072 bytes of pixels
//	(1024 red, 1024 green, 1024 blue; row-major 32x32)
//
// which maps directly onto this package's channel-major ImageShape layout.

// CIFAR10Shape is the canonical CIFAR-10 image shape.
var CIFAR10Shape = ImageShape{Channels: 3, Height: 32, Width: 32}

const (
	cifarRecordLen = 1 + 3*32*32
	cifarClasses   = 10
)

// ReadCIFAR10 parses CIFAR-10 binary records from r until EOF. Pixels are
// scaled to [0, 1] and per-image mean-centered (a cheap stand-in for the
// usual per-channel normalization that needs dataset statistics).
func ReadCIFAR10(r io.Reader) (*Dataset, error) {
	var rows [][]float64
	var labels []int
	buf := make([]byte, cifarRecordLen)
	for {
		_, err := io.ReadFull(r, buf)
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("data: truncated CIFAR-10 record %d", len(rows))
		}
		if err != nil {
			return nil, fmt.Errorf("data: reading CIFAR-10: %w", err)
		}
		label := int(buf[0])
		if label >= cifarClasses {
			return nil, fmt.Errorf("data: CIFAR-10 label %d out of range in record %d", label, len(rows))
		}
		px := make([]float64, 3*32*32)
		mean := 0.0
		for i := 0; i < len(px); i++ {
			v := float64(buf[1+i]) / 255
			px[i] = v
			mean += v
		}
		mean /= float64(len(px))
		for i := range px {
			px[i] -= mean
		}
		rows = append(rows, px)
		labels = append(labels, label)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("data: empty CIFAR-10 stream")
	}
	ds := &Dataset{
		Task:    Classification,
		X:       tensor.NewMatrix(len(rows), CIFAR10Shape.Len()),
		Y:       labels,
		Classes: cifarClasses,
		Shape:   CIFAR10Shape,
	}
	for i, row := range rows {
		copy(ds.X.Row(i), row)
	}
	return ds, nil
}

// LoadCIFAR10 reads the five standard training batches and the test batch
// from dir (data_batch_1.bin .. data_batch_5.bin, test_batch.bin).
func LoadCIFAR10(dir string) (train, test *Dataset, err error) {
	var parts []*Dataset
	for i := 1; i <= 5; i++ {
		ds, err := loadCIFARFile(filepath.Join(dir, fmt.Sprintf("data_batch_%d.bin", i)))
		if err != nil {
			return nil, nil, err
		}
		parts = append(parts, ds)
	}
	train = ConcatDatasets(parts...)
	test, err = loadCIFARFile(filepath.Join(dir, "test_batch.bin"))
	if err != nil {
		return nil, nil, err
	}
	return train, test, nil
}

func loadCIFARFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("data: %w", err)
	}
	defer f.Close()
	return ReadCIFAR10(f)
}

// ConcatDatasets concatenates datasets with identical schema. Panics on a
// schema mismatch or empty input.
func ConcatDatasets(parts ...*Dataset) *Dataset {
	if len(parts) == 0 {
		panic("data: ConcatDatasets of nothing")
	}
	first := parts[0]
	total := 0
	for _, p := range parts {
		if p.Task != first.Task || p.Classes != first.Classes ||
			p.Shape != first.Shape || p.X.Cols != first.X.Cols {
			panic("data: ConcatDatasets schema mismatch")
		}
		total += p.N()
	}
	out := &Dataset{
		Task:    first.Task,
		X:       tensor.NewMatrix(total, first.X.Cols),
		Classes: first.Classes,
		Shape:   first.Shape,
	}
	if first.Y != nil {
		out.Y = make([]int, 0, total)
	}
	if first.T != nil {
		out.T = make([]float64, 0, total)
	}
	row := 0
	for _, p := range parts {
		for i := 0; i < p.N(); i++ {
			copy(out.X.Row(row), p.X.Row(i))
			row++
		}
		if p.Y != nil {
			out.Y = append(out.Y, p.Y...)
		}
		if p.T != nil {
			out.T = append(out.T, p.T...)
		}
	}
	return out
}
