package data

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fakeCIFARRecord builds one binary record with the given label and a
// constant pixel value per channel.
func fakeCIFARRecord(label byte, r, g, b byte) []byte {
	rec := make([]byte, 1+3*1024)
	rec[0] = label
	for i := 0; i < 1024; i++ {
		rec[1+i] = r
		rec[1+1024+i] = g
		rec[1+2048+i] = b
	}
	return rec
}

func TestReadCIFAR10(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(fakeCIFARRecord(3, 255, 0, 0))
	buf.Write(fakeCIFARRecord(7, 0, 255, 0))
	ds, err := ReadCIFAR10(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 2 || ds.Classes != 10 || ds.Shape != CIFAR10Shape {
		t.Fatalf("bad dataset: n=%d classes=%d shape=%+v", ds.N(), ds.Classes, ds.Shape)
	}
	if ds.Y[0] != 3 || ds.Y[1] != 7 {
		t.Fatalf("labels %v", ds.Y[:2])
	}
	// Record 0: red channel 1.0, others 0; per-image mean = 1/3.
	row := ds.X.Row(0)
	if math.Abs(row[0]-(1-1.0/3)) > 1e-9 {
		t.Fatalf("red pixel %v, want %v", row[0], 1-1.0/3)
	}
	if math.Abs(row[1024]-(0-1.0/3)) > 1e-9 {
		t.Fatalf("green pixel %v, want %v", row[1024], -1.0/3)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadCIFAR10Truncated(t *testing.T) {
	rec := fakeCIFARRecord(1, 10, 20, 30)
	if _, err := ReadCIFAR10(bytes.NewReader(rec[:100])); err == nil {
		t.Fatal("accepted truncated record")
	}
}

func TestReadCIFAR10BadLabel(t *testing.T) {
	rec := fakeCIFARRecord(200, 1, 2, 3)
	if _, err := ReadCIFAR10(bytes.NewReader(rec)); err == nil {
		t.Fatal("accepted label 200")
	}
}

func TestReadCIFAR10Empty(t *testing.T) {
	if _, err := ReadCIFAR10(strings.NewReader("")); err == nil {
		t.Fatal("accepted empty stream")
	}
}

func TestLoadCIFAR10Directory(t *testing.T) {
	dir := t.TempDir()
	for i := 1; i <= 5; i++ {
		var buf bytes.Buffer
		buf.Write(fakeCIFARRecord(byte(i%10), byte(i), 0, 0))
		buf.Write(fakeCIFARRecord(byte((i+1)%10), 0, byte(i), 0))
		if err := os.WriteFile(
			filepath.Join(dir, "data_batch_"+string(rune('0'+i))+".bin"),
			buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "test_batch.bin"),
		fakeCIFARRecord(9, 5, 5, 5), 0o644); err != nil {
		t.Fatal(err)
	}
	train, test, err := LoadCIFAR10(dir)
	if err != nil {
		t.Fatal(err)
	}
	if train.N() != 10 {
		t.Fatalf("train %d records, want 10", train.N())
	}
	if test.N() != 1 || test.Y[0] != 9 {
		t.Fatalf("test %d records, label %v", test.N(), test.Y)
	}
}

func TestLoadCIFAR10MissingFile(t *testing.T) {
	if _, _, err := LoadCIFAR10(t.TempDir()); err == nil {
		t.Fatal("accepted empty directory")
	}
}

func TestConcatDatasets(t *testing.T) {
	a := blobs(t, 10)
	b := blobs(t, 20)
	c := ConcatDatasets(a, b)
	if c.N() != 30 {
		t.Fatalf("concat %d rows, want 30", c.N())
	}
	if c.Y[10] != b.Y[0] || c.X.At(10, 0) != b.X.At(0, 0) {
		t.Fatal("concat rows misaligned")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConcatDatasetsMismatch(t *testing.T) {
	a := blobs(t, 10)
	b := blobs(t, 10)
	b.Classes = 7
	defer func() {
		if recover() == nil {
			t.Fatal("accepted schema mismatch")
		}
	}()
	ConcatDatasets(a, b)
}
