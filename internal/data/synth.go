package data

import (
	"math"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Synthetic dataset generators. These replace CIFAR-10/100 (see DESIGN.md):
// each produces a deterministic dataset given a seed, with a train/test
// split drawn from the same distribution.

// GaussianBlobsConfig parameterizes a Gaussian-cluster classification
// dataset: K class means on a sphere of radius Separation, isotropic noise.
type GaussianBlobsConfig struct {
	Classes    int
	Dim        int
	N          int     // number of examples
	Separation float64 // distance scale between class means
	Noise      float64 // per-coordinate noise stddev
	// LabelNoise flips this fraction of labels to a uniformly random
	// class. Label noise guarantees a strictly positive loss floor and
	// non-vanishing gradient variance at the optimum — the regime in
	// which PASGD's error floor grows visibly with tau (Theorem 1's
	// eta^2 L^2 sigma^2 (tau-1) term).
	LabelNoise float64
}

// GaussianBlobs generates a classification dataset of Gaussian clusters.
// Lower Separation/Noise ratio makes the task harder, which raises the
// gradient-noise floor — the knob that makes the PASGD error floor visible.
func GaussianBlobs(cfg GaussianBlobsConfig, r *rng.Rand) *Dataset {
	if cfg.Classes < 2 || cfg.Dim < 1 || cfg.N < cfg.Classes {
		panic("data: invalid GaussianBlobsConfig")
	}
	means := tensor.NewMatrix(cfg.Classes, cfg.Dim)
	for c := 0; c < cfg.Classes; c++ {
		row := means.Row(c)
		for j := range row {
			row[j] = r.NormFloat64()
		}
		// Scale to exactly Separation so class geometry is controlled.
		n := tensor.Norm2(row)
		if n > 0 {
			tensor.Scal(cfg.Separation/n, row)
		}
	}
	ds := &Dataset{
		Task:    Classification,
		X:       tensor.NewMatrix(cfg.N, cfg.Dim),
		Y:       make([]int, cfg.N),
		Classes: cfg.Classes,
	}
	for i := 0; i < cfg.N; i++ {
		c := i % cfg.Classes // balanced classes
		ds.Y[i] = c
		row := ds.X.Row(i)
		mean := means.Row(c)
		for j := range row {
			row[j] = mean[j] + cfg.Noise*r.NormFloat64()
		}
		if cfg.LabelNoise > 0 && r.Float64() < cfg.LabelNoise {
			ds.Y[i] = r.Intn(cfg.Classes)
		}
	}
	shuffleRows(ds, r)
	return ds
}

// SynthImagesConfig parameterizes the CIFAR-like synthetic image dataset:
// each class has a random low-frequency "texture prototype"; examples are
// the prototype plus pixel noise and a random brightness shift. The spatial
// correlation gives convolutions an advantage over raw pixels, so the CNN
// models in internal/nn actually benefit from their structure.
type SynthImagesConfig struct {
	Classes int
	Shape   ImageShape
	N       int
	Noise   float64 // pixel noise stddev
	Waves   int     // number of sinusoidal components per prototype
	// LabelNoise flips this fraction of labels uniformly (see
	// GaussianBlobsConfig.LabelNoise for why).
	LabelNoise float64
}

// SynthImages generates an image-classification dataset ("SynthCIFAR").
func SynthImages(cfg SynthImagesConfig, r *rng.Rand) *Dataset {
	if cfg.Classes < 2 || cfg.N < cfg.Classes || cfg.Shape.Len() == 0 {
		panic("data: invalid SynthImagesConfig")
	}
	if cfg.Waves <= 0 {
		cfg.Waves = 3
	}
	c, h, w := cfg.Shape.Channels, cfg.Shape.Height, cfg.Shape.Width
	// Per-class prototypes built from random 2-D sinusoids: smooth spatial
	// structure that small conv kernels can detect.
	protos := make([][]float64, cfg.Classes)
	for cl := range protos {
		p := make([]float64, cfg.Shape.Len())
		for wv := 0; wv < cfg.Waves; wv++ {
			fx := 1 + r.Float64()*3
			fy := 1 + r.Float64()*3
			phase := r.Float64() * 2 * math.Pi
			amp := 0.5 + r.Float64()
			ch := r.Intn(c)
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					v := amp * math.Sin(2*math.Pi*(fx*float64(x)/float64(w)+fy*float64(y)/float64(h))+phase)
					p[ch*h*w+y*w+x] += v
				}
			}
		}
		protos[cl] = p
	}
	ds := &Dataset{
		Task:    Classification,
		X:       tensor.NewMatrix(cfg.N, cfg.Shape.Len()),
		Y:       make([]int, cfg.N),
		Classes: cfg.Classes,
		Shape:   cfg.Shape,
	}
	for i := 0; i < cfg.N; i++ {
		cl := i % cfg.Classes
		ds.Y[i] = cl
		row := ds.X.Row(i)
		brightness := 0.2 * r.NormFloat64()
		for j := range row {
			row[j] = protos[cl][j] + brightness + cfg.Noise*r.NormFloat64()
		}
		if cfg.LabelNoise > 0 && r.Float64() < cfg.LabelNoise {
			ds.Y[i] = r.Intn(cfg.Classes)
		}
	}
	shuffleRows(ds, r)
	return ds
}

// TwoSpirals generates the classic two-intertwined-spirals binary dataset:
// non-linearly-separable, so linear models plateau while MLPs do not. Used
// in tests to verify the NN stack learns genuinely non-linear structure.
func TwoSpirals(n int, noise float64, r *rng.Rand) *Dataset {
	if n < 2 {
		panic("data: TwoSpirals needs n >= 2")
	}
	ds := &Dataset{
		Task:    Classification,
		X:       tensor.NewMatrix(n, 2),
		Y:       make([]int, n),
		Classes: 2,
	}
	for i := 0; i < n; i++ {
		cl := i % 2
		tpos := float64(i/2) / float64(n/2) * 3 * math.Pi
		radius := 0.5 + tpos/(3*math.Pi)*2
		angle := tpos
		if cl == 1 {
			angle += math.Pi
		}
		ds.X.Set(i, 0, radius*math.Cos(angle)+noise*r.NormFloat64())
		ds.X.Set(i, 1, radius*math.Sin(angle)+noise*r.NormFloat64())
		ds.Y[i] = cl
	}
	shuffleRows(ds, r)
	return ds
}

// LinearRegressionConfig parameterizes a y = <w*, x> + b* + noise dataset
// with a known ground-truth weight vector, for which SGD convergence theory
// (and the Theorem 1 constants L, sigma^2) can be computed exactly.
type LinearRegressionConfig struct {
	Dim   int
	N     int
	Noise float64
}

// LinearRegressionData generates the dataset and returns the ground truth
// (wStar includes the bias as its last element; inputs get an implicit 1
// appended by the Linear model in internal/nn — here X carries only raw
// features and the generator returns the true weights over raw features
// plus bias separately).
func LinearRegressionData(cfg LinearRegressionConfig, r *rng.Rand) (ds *Dataset, wStar []float64, bStar float64) {
	if cfg.Dim < 1 || cfg.N < 1 {
		panic("data: invalid LinearRegressionConfig")
	}
	wStar = make([]float64, cfg.Dim)
	for j := range wStar {
		wStar[j] = r.NormFloat64()
	}
	bStar = r.NormFloat64()
	ds = &Dataset{
		Task: Regression,
		X:    tensor.NewMatrix(cfg.N, cfg.Dim),
		T:    make([]float64, cfg.N),
	}
	for i := 0; i < cfg.N; i++ {
		row := ds.X.Row(i)
		for j := range row {
			row[j] = r.NormFloat64()
		}
		ds.T[i] = tensor.Dot(row, wStar) + bStar + cfg.Noise*r.NormFloat64()
	}
	return ds, wStar, bStar
}

// SplitTrainTest splits one generated dataset into a train and a test part
// drawn from the same distribution (the same class prototypes) — the
// train/validation protocol of the paper's CIFAR experiments. Generators
// like GaussianBlobs and SynthImages draw fresh class prototypes on every
// call, so generating train and test separately would produce two DIFFERENT
// tasks; always split one dataset instead.
func SplitTrainTest(ds *Dataset, nTest int, r *rng.Rand) (train, test *Dataset) {
	if nTest <= 0 || nTest >= ds.N() {
		panic("data: SplitTrainTest needs 0 < nTest < N")
	}
	perm := r.Perm(ds.N())
	return ds.Subset(perm[nTest:]), ds.Subset(perm[:nTest])
}

// shuffleRows permutes examples in place so class order is not systematic.
func shuffleRows(ds *Dataset, r *rng.Rand) {
	r.Shuffle(ds.N(), func(i, j int) {
		ri, rj := ds.X.Row(i), ds.X.Row(j)
		for k := range ri {
			ri[k], rj[k] = rj[k], ri[k]
		}
		if ds.Y != nil {
			ds.Y[i], ds.Y[j] = ds.Y[j], ds.Y[i]
		}
		if ds.T != nil {
			ds.T[i], ds.T[j] = ds.T[j], ds.T[i]
		}
	})
}
