// Package par provides the deterministic fan-out primitive shared by the
// training engine's compute pool (internal/cluster) and the experiment
// grids (internal/experiments): run n independent index-addressed tasks
// across a bounded goroutine pool.
package par

import (
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n), at most width at a time; width
// <= 1 (or n <= 1) degrades to a plain serial loop. fn must only touch
// state owned by (or indexed to) its own i — under that contract the
// goroutine schedule is unobservable, so parallel runs produce bit-identical
// results to serial ones.
func ForEach(n, width int, fn func(i int)) {
	if width > n {
		width = n
	}
	if width <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < width; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
