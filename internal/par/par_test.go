package par

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, width := range []int{0, 1, 3, 8, 100} {
		for _, n := range []int{0, 1, 7, 64} {
			counts := make([]int64, n)
			ForEach(n, width, func(i int) { atomic.AddInt64(&counts[i], 1) })
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("width=%d n=%d: index %d ran %d times", width, n, i, c)
				}
			}
		}
	}
}

func TestForEachSerialOrder(t *testing.T) {
	// width <= 1 must be a plain in-order loop (the legacy serial path).
	var got []int
	ForEach(5, 1, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("serial order broken: %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("ran %d of 5", len(got))
	}
}
