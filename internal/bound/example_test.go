package bound_test

import (
	"fmt"

	"repro/internal/bound"
)

// Theorem 2's optimal communication period tau* (eq 14) with the paper's
// Fig 6 constants, shrinking as the time horizon grows.
func ExampleConstants_OptimalTau() {
	c := bound.Constants{F1: 1, Finf: 0, Eta: 0.08, L: 1, Sigma2: 1, M: 16, Y: 1, D: 1}
	for _, T := range []float64{60, 600, 6000} {
		fmt.Printf("T=%-6.0f tau*=%.2f\n", T, c.OptimalTau(T))
	}
	// Output:
	// T=60     tau*=8.07
	// T=600    tau*=2.55
	// T=6000   tau*=0.81
}

// The Theorem 1 bound (eq 13) evaluated at the crossover between sync SGD
// and PASGD(tau=10): before it tau=10 wins, after it tau=1 wins.
func ExampleConstants_CrossoverTime() {
	c := bound.Constants{F1: 1, Finf: 0, Eta: 0.08, L: 1, Sigma2: 1, M: 16, Y: 1, D: 1}
	T := c.CrossoverTime(10, 1)
	fmt.Printf("crossover at T=%.1f\n", T)
	fmt.Printf("before: tau10=%.4f tau1=%.4f\n", c.ErrorAtTime(T/2, 10), c.ErrorAtTime(T/2, 1))
	fmt.Printf("after:  tau10=%.4f tau1=%.4f\n", c.ErrorAtTime(2*T, 10), c.ErrorAtTime(2*T, 1))
	// Output:
	// crossover at T=390.6
	// before: tau10=0.2034 tau1=0.2610
	// after:  tau10=0.0978 tau1=0.0690
}
