package bound

import (
	"math"
	"testing"
	"testing/quick"
)

// fig6Constants are the exact constants the paper uses for Figure 6:
// F(x1)=1, Finf=0, eta=0.08, L=1, sigma^2=1, m=16, y=1, D=1.
func fig6Constants() Constants {
	return Constants{F1: 1, Finf: 0, Eta: 0.08, L: 1, Sigma2: 1, M: 16, Y: 1, D: 1}
}

func TestValidate(t *testing.T) {
	if err := fig6Constants().Validate(); err != nil {
		t.Fatalf("paper constants invalid: %v", err)
	}
	bad := fig6Constants()
	bad.Eta = 0
	if bad.Validate() == nil {
		t.Fatal("accepted eta=0")
	}
	bad = fig6Constants()
	bad.F1 = -1
	if bad.Validate() == nil {
		t.Fatal("accepted F1 < Finf")
	}
}

func TestLearningRateOK(t *testing.T) {
	c := fig6Constants()
	if !c.LearningRateOK(1) {
		t.Fatal("eta=0.08, tau=1 must satisfy the stability condition")
	}
	if !c.LearningRateOK(10) {
		// 0.08 + 0.0064*90 = 0.656 <= 1
		t.Fatal("eta=0.08, tau=10 must satisfy the stability condition")
	}
	if c.LearningRateOK(100) {
		// 0.08 + 0.0064*9900 = 63.4 > 1
		t.Fatal("eta=0.08, tau=100 must violate the stability condition")
	}
}

func TestErrorAtTimeStructure(t *testing.T) {
	c := fig6Constants()
	// At any fixed T, the transient term shrinks with tau but the floor
	// grows; check both limits.
	if c.ErrorAtTime(10, 1) <= c.ErrorFloor(1) {
		t.Fatal("finite-time bound must exceed the floor")
	}
	// As T -> inf the bound approaches the floor.
	if math.Abs(c.ErrorAtTime(1e12, 10)-c.ErrorFloor(10)) > 1e-9 {
		t.Fatal("bound does not approach floor at large T")
	}
	// Zero/negative time is infinitely bad.
	if !math.IsInf(c.ErrorAtTime(0, 1), 1) {
		t.Fatal("bound at T=0 should be +Inf")
	}
}

func TestFloorMonotoneInTau(t *testing.T) {
	c := fig6Constants()
	prev := -1.0
	for tau := 1; tau <= 128; tau *= 2 {
		f := c.ErrorFloor(tau)
		if f <= prev {
			t.Fatalf("floor not increasing at tau=%d", tau)
		}
		prev = f
	}
}

func TestFig6Shape(t *testing.T) {
	// Reproduce Fig 6's qualitative claim: PASGD tau=10 starts below sync
	// SGD (faster early drop) but ends above it (higher floor).
	c := fig6Constants()
	early := 200.0
	late := 4000.0
	if c.ErrorAtTime(early, 10) >= c.ErrorAtTime(early, 1) {
		t.Fatalf("tau=10 should win early: %v vs %v",
			c.ErrorAtTime(early, 10), c.ErrorAtTime(early, 1))
	}
	if c.ErrorAtTime(late, 10) <= c.ErrorAtTime(late, 1) {
		t.Fatalf("tau=1 should win late: %v vs %v",
			c.ErrorAtTime(late, 1), c.ErrorAtTime(late, 10))
	}
}

func TestCrossoverTimeConsistent(t *testing.T) {
	c := fig6Constants()
	T := c.CrossoverTime(10, 1)
	if math.IsNaN(T) || T <= 0 {
		t.Fatalf("crossover time %v", T)
	}
	// At the crossover the two bounds must agree.
	a := c.ErrorAtTime(T, 10)
	b := c.ErrorAtTime(T, 1)
	if math.Abs(a-b) > 1e-9*(a+b) {
		t.Fatalf("bounds differ at crossover: %v vs %v", a, b)
	}
	// Before: tau=10 wins; after: tau=1 wins.
	if c.ErrorAtTime(T/2, 10) >= c.ErrorAtTime(T/2, 1) {
		t.Fatal("tau=10 should win before crossover")
	}
	if c.ErrorAtTime(T*2, 10) <= c.ErrorAtTime(T*2, 1) {
		t.Fatal("tau=1 should win after crossover")
	}
}

func TestOptimalTauMinimizesBound(t *testing.T) {
	c := fig6Constants()
	for _, T := range []float64{100, 500, 2000, 10000} {
		star := c.OptimalTauInt(T)
		best := c.ErrorAtTime(T, star)
		// tau* (or its floor neighbor) must beat all other integer taus.
		if star > 1 {
			if v := c.ErrorAtTime(T, star-1); v < best {
				best = v
			}
		}
		for tau := 1; tau <= 200; tau++ {
			if v := c.ErrorAtTime(T, tau); v < best-1e-12 {
				t.Fatalf("T=%v: tau=%d bound %v beats tau*=%d bound %v", T, tau, v, star, best)
			}
		}
	}
}

func TestOptimalTauDecreasesWithTime(t *testing.T) {
	// Theorem 2: tau* ~ 1/sqrt(T), so later intervals get smaller periods
	// — the monotone-decreasing schedule AdaComm generates.
	c := fig6Constants()
	prev := math.Inf(1)
	for _, T := range []float64{10, 100, 1000, 10000} {
		v := c.OptimalTau(T)
		if v >= prev {
			t.Fatalf("tau* not decreasing at T=%v", T)
		}
		prev = v
	}
}

func TestOptimalTauScalings(t *testing.T) {
	c := fig6Constants()
	// tau* grows with D (more expensive comm -> communicate less often).
	c2 := c
	c2.D = 4
	if c2.OptimalTau(100) <= c.OptimalTau(100) {
		t.Fatal("tau* should grow with D")
	}
	// tau* shrinks with sigma^2 (noisier gradients -> average more often).
	c3 := c
	c3.Sigma2 = 4
	if c3.OptimalTau(100) >= c.OptimalTau(100) {
		t.Fatal("tau* should shrink with sigma^2")
	}
	// Exact value check against eq 14.
	want := math.Sqrt(2 * 1 * 1 / (math.Pow(0.08, 3) * 1 * 1 * 100))
	if got := c.OptimalTau(100); math.Abs(got-want) > 1e-12 {
		t.Fatalf("tau*(100) = %v, want %v", got, want)
	}
}

func TestOptimalTauDegenerate(t *testing.T) {
	c := fig6Constants()
	c.Sigma2 = 0
	if !math.IsInf(c.OptimalTau(100), 1) {
		t.Fatal("zero noise should give infinite tau*")
	}
	if c.OptimalTauInt(100) < 1000000 {
		t.Fatal("OptimalTauInt should be huge for zero noise")
	}
}

func TestCurve(t *testing.T) {
	c := fig6Constants()
	times, values := c.Curve(10, 4000, 50)
	if len(times) != 50 || len(values) != 50 {
		t.Fatal("curve length wrong")
	}
	// Values are positive, decreasing, and approach (but exceed) the floor.
	floor := c.ErrorFloor(10)
	for i := range values {
		if values[i] <= floor {
			t.Fatalf("curve point %d below floor", i)
		}
		if i > 0 && values[i] >= values[i-1] {
			t.Fatalf("curve not decreasing at %d", i)
		}
	}
	if times[49] != 4000 {
		t.Fatalf("last time %v, want 4000", times[49])
	}
}

func TestCheckSchedule(t *testing.T) {
	// eta_r = 1/(r+1), tau_r = const: classic Robbins-Monro. The first sum
	// grows like log R, the others converge.
	const R = 10000
	etas := make([]float64, R)
	taus := make([]int, R)
	for r := 0; r < R; r++ {
		etas[r] = 1 / float64(r+1)
		taus[r] = 5
	}
	s := CheckSchedule(etas, taus)
	if s.SumEtaTau < 5*math.Log(R)*0.9 {
		t.Fatalf("divergent sum too small: %v", s.SumEtaTau)
	}
	// sum 1/r^2 * 5 < 5 * pi^2/6 ~ 8.2; sum 1/r^3*25 < 31.
	if s.SumEta2Tau > 9 {
		t.Fatalf("sum eta^2 tau should converge: %v", s.SumEta2Tau)
	}
	if s.SumEta3Tau2 > 32 {
		t.Fatalf("sum eta^3 tau^2 should converge: %v", s.SumEta3Tau2)
	}
}

func TestCheckScheduleDecreasingTauHelps(t *testing.T) {
	// Theorem 3 discussion: with decreasing tau the second/third sums are
	// smaller than with constant tau at the same eta sequence.
	const R = 1000
	etas := make([]float64, R)
	tausConst := make([]int, R)
	tausDecr := make([]int, R)
	for r := 0; r < R; r++ {
		etas[r] = 0.1
		tausConst[r] = 16
		tausDecr[r] = 16 / (1 + r/100) // decays over rounds
		if tausDecr[r] < 1 {
			tausDecr[r] = 1
		}
	}
	sc := CheckSchedule(etas, tausConst)
	sd := CheckSchedule(etas, tausDecr)
	if sd.SumEta2Tau >= sc.SumEta2Tau || sd.SumEta3Tau2 >= sc.SumEta3Tau2 {
		t.Fatal("decreasing tau should shrink the bounded sums")
	}
}

func TestFixedTauIterBound(t *testing.T) {
	c := fig6Constants()
	// Per-iteration bound is independent of Y and D.
	c2 := c
	c2.Y, c2.D = 100, 100
	if c.FixedTauIterBound(1000, 5) != c2.FixedTauIterBound(1000, 5) {
		t.Fatal("iteration bound must not depend on delays")
	}
	// Decreasing in K, increasing in tau.
	if c.FixedTauIterBound(100, 5) <= c.FixedTauIterBound(1000, 5) {
		t.Fatal("bound should shrink with K")
	}
	if c.FixedTauIterBound(1000, 50) <= c.FixedTauIterBound(1000, 5) {
		t.Fatal("bound should grow with tau")
	}
}

func TestLearningRateOKFull(t *testing.T) {
	c := fig6Constants()
	// beta = 0, tau = 1: condition reduces to eta*L <= 1.
	if !c.LearningRateOKFull(1, 0) {
		t.Fatal("eta=0.08 should satisfy the full condition at tau=1")
	}
	// Large beta tightens the condition.
	if c.LearningRateOKFull(10, 1000) {
		t.Fatal("huge beta should violate the condition")
	}
	// Large tau violates it just like the simple condition.
	if c.LearningRateOKFull(100, 0) {
		t.Fatal("tau=100 should violate the full condition at eta=0.08")
	}
	// The full condition with beta=0 is implied by the simple one for all
	// tau (its quadratic term uses (tau-1)*tau vs tau*(tau-1) — equal —
	// and its linear term is >= the simple one's only via beta/m = 0).
	for tau := 1; tau <= 50; tau++ {
		if c.LearningRateOK(tau) && !c.LearningRateOKFull(tau, 0) {
			t.Fatalf("simple condition ok but full (beta=0) fails at tau=%d", tau)
		}
	}
}

func TestVariableTauBoundReducesToFixed(t *testing.T) {
	// A constant tau sequence must reproduce FixedTauIterBound exactly.
	c := fig6Constants()
	taus := make([]int, 100)
	for i := range taus {
		taus[i] = 5
	}
	got := c.VariableTauIterBound(taus)
	want := c.FixedTauIterBound(500, 5)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("variable bound %v != fixed bound %v for constant taus", got, want)
	}
}

func TestVariableTauBoundRewardsDecay(t *testing.T) {
	// Two schedules with the same total iterations K: constant tau=8 vs a
	// decaying schedule. The decaying one has smaller sum(tau^2)/sum(tau),
	// hence a strictly smaller bound.
	c := fig6Constants()
	constant := make([]int, 64)
	for i := range constant {
		constant[i] = 8
	}
	var decaying []int
	total := 0
	for tau := 16; total < 512; {
		decaying = append(decaying, tau)
		total += tau
		if tau > 1 {
			tau--
		}
	}
	// Trim to exactly 512 iterations for a fair comparison.
	for total > 512 {
		last := decaying[len(decaying)-1]
		if total-last >= 512 {
			decaying = decaying[:len(decaying)-1]
			total -= last
		} else {
			decaying[len(decaying)-1] -= total - 512
			total = 512
		}
	}
	// Only compare when the decaying schedule's mean-square is lower.
	if c.VariableTauIterBound(decaying) >= c.VariableTauIterBound(constant) {
		// The decaying schedule here starts at 16 > 8; verify via the
		// formula's components rather than failing blindly.
		t.Fatalf("decaying schedule bound %v not below constant %v",
			c.VariableTauIterBound(decaying), c.VariableTauIterBound(constant))
	}
}

func TestVariableTauBoundPanics(t *testing.T) {
	c := fig6Constants()
	for _, taus := range [][]int{nil, {0}, {3, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("accepted bad sequence %v", taus)
				}
			}()
			c.VariableTauIterBound(taus)
		}()
	}
}

// Property: ErrorAtTime is decreasing in T for any valid tau.
func TestErrorMonotoneInTimeProperty(t *testing.T) {
	c := fig6Constants()
	f := func(t8 uint8, k8 uint8) bool {
		tau := 1 + int(t8)%64
		T1 := 1 + float64(k8)
		T2 := T1 * 2
		return c.ErrorAtTime(T2, tau) <= c.ErrorAtTime(T1, tau)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the bound at tau* never exceeds the bound at tau=1 or tau=100.
func TestOptimalTauNeverWorseProperty(t *testing.T) {
	c := fig6Constants()
	f := func(k8 uint8) bool {
		T := 10 + 50*float64(k8)
		star := c.OptimalTauInt(T)
		if star > 10000 {
			star = 10000
		}
		// Either tau* or its lower neighbor must match-or-beat both
		// endpoints (ceiling can overshoot by < 1).
		best := c.ErrorAtTime(T, star)
		if star > 1 {
			if v := c.ErrorAtTime(T, star-1); v < best {
				best = v
			}
		}
		return best <= c.ErrorAtTime(T, 1)+1e-12 && best <= c.ErrorAtTime(T, 100)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
