// Package bound implements the paper's theory: the Theorem 1 error-runtime
// upper bound for PASGD, the Theorem 2 optimal communication period tau*,
// and the Theorem 3 convergence conditions for variable (eta_r, tau_r)
// sequences. These are the formulas AdaComm's update rules are derived
// from, and Fig 6 / Fig 7 are plotted directly from them.
package bound

import (
	"fmt"
	"math"
)

// Constants bundles the problem constants that appear in Theorems 1-2.
type Constants struct {
	F1     float64 // initial objective value F(x_1)
	Finf   float64 // lower bound on the objective
	Eta    float64 // learning rate
	L      float64 // gradient Lipschitz constant
	Sigma2 float64 // mini-batch gradient variance bound sigma^2
	M      int     // number of workers
	Y      float64 // (constant) local-step compute time
	D      float64 // (constant) broadcast delay
}

// Validate reports whether the constants are usable.
func (c Constants) Validate() error {
	switch {
	case c.F1 < c.Finf:
		return fmt.Errorf("bound: F1 %v below Finf %v", c.F1, c.Finf)
	case c.Eta <= 0:
		return fmt.Errorf("bound: eta must be positive, got %v", c.Eta)
	case c.L <= 0:
		return fmt.Errorf("bound: L must be positive, got %v", c.L)
	case c.Sigma2 < 0:
		return fmt.Errorf("bound: sigma^2 must be non-negative, got %v", c.Sigma2)
	case c.M < 1:
		return fmt.Errorf("bound: m must be >= 1, got %d", c.M)
	case c.Y <= 0:
		return fmt.Errorf("bound: Y must be positive, got %v", c.Y)
	case c.D < 0:
		return fmt.Errorf("bound: D must be non-negative, got %v", c.D)
	}
	return nil
}

// LearningRateOK reports whether eta satisfies Theorem 1's stability
// condition eta*L + eta^2*L^2*tau*(tau-1) <= 1.
func (c Constants) LearningRateOK(tau int) bool {
	t := float64(tau)
	return c.Eta*c.L+c.Eta*c.Eta*c.L*c.L*t*(t-1) <= 1
}

// LearningRateOKFull evaluates the appendix's sharper stability condition
// (eq 57), which also involves Assumption 3's relative-variance constant
// beta: eta^2*L^2*(tau-1)*(2*beta+tau) + eta*L*(beta/m + 1) <= 1.
// With beta = 0 it is slightly stronger than LearningRateOK's condition
// (tau-1 vs tau factor aside) and reduces to it as m grows.
func (c Constants) LearningRateOKFull(tau int, beta float64) bool {
	t := float64(tau)
	return c.Eta*c.Eta*c.L*c.L*(t-1)*(2*beta+t)+c.Eta*c.L*(beta/float64(c.M)+1) <= 1
}

// ErrorAtTime evaluates the Theorem 1 bound (eq 13) on the minimal expected
// squared gradient norm after total wall-clock time T with communication
// period tau:
//
//	2(F1-Finf)/(eta*T) * (Y + D/tau)  +  eta*L*sigma^2/m  +  eta^2*L^2*sigma^2*(tau-1)
//
// The first term is the optimization (transient) term — note it carries the
// runtime-per-iteration factor, which is how wall-clock enters — and the
// last two form the noise floor.
func (c Constants) ErrorAtTime(T float64, tau int) float64 {
	if tau < 1 {
		panic("bound: tau must be >= 1")
	}
	if T <= 0 {
		return math.Inf(1)
	}
	t := float64(tau)
	transient := 2 * (c.F1 - c.Finf) / (c.Eta * T) * (c.Y + c.D/t)
	floor := c.Eta*c.L*c.Sigma2/float64(c.M) + c.Eta*c.Eta*c.L*c.L*c.Sigma2*(t-1)
	return transient + floor
}

// ErrorFloor returns the T -> infinity limit of the bound: the noise floor
// eta*L*sigma^2/m + eta^2*L^2*sigma^2*(tau-1). Larger tau means a strictly
// higher floor — the "higher error floor" side of the trade-off.
func (c Constants) ErrorFloor(tau int) float64 {
	t := float64(tau)
	return c.Eta*c.L*c.Sigma2/float64(c.M) + c.Eta*c.Eta*c.L*c.L*c.Sigma2*(t-1)
}

// OptimalTau returns tau* from Theorem 2 (eq 14):
//
//	tau* = sqrt( 2(F1-Finf)*D / (eta^3 * L^2 * sigma^2 * T) )
//
// as a real number; callers round (AdaComm ceils it). Returns +Inf when the
// denominator vanishes (no noise: communicate as rarely as you like).
func (c Constants) OptimalTau(T float64) float64 {
	den := math.Pow(c.Eta, 3) * c.L * c.L * c.Sigma2 * T
	if den <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(2 * (c.F1 - c.Finf) * c.D / den)
}

// OptimalTauInt rounds tau* up to an integer >= 1.
func (c Constants) OptimalTauInt(T float64) int {
	v := c.OptimalTau(T)
	if math.IsInf(v, 1) {
		return math.MaxInt32
	}
	tau := int(math.Ceil(v))
	if tau < 1 {
		tau = 1
	}
	return tau
}

// Curve samples the bound at `points` times spaced uniformly on (0, tMax],
// returning parallel slices of time and bound values — one learning curve
// of Fig 6.
func (c Constants) Curve(tau int, tMax float64, points int) (times, values []float64) {
	if points < 1 {
		panic("bound: need at least one point")
	}
	times = make([]float64, points)
	values = make([]float64, points)
	for i := 0; i < points; i++ {
		T := tMax * float64(i+1) / float64(points)
		times[i] = T
		values[i] = c.ErrorAtTime(T, tau)
	}
	return times, values
}

// CrossoverTime returns the wall-clock time at which the bound for tauA
// equals the bound for tauB (the "switch point" in Fig 7a), or NaN if the
// curves do not cross for positive time. Setting the two bounds equal and
// solving for T is linear:
//
//	2(F1-Finf)/eta * (YA + D/tauA - Y - D/tauB) / T = floor(tauB) - floor(tauA)
func (c Constants) CrossoverTime(tauA, tauB int) float64 {
	num := 2 * (c.F1 - c.Finf) / c.Eta * (c.D/float64(tauA) - c.D/float64(tauB))
	den := c.ErrorFloor(tauB) - c.ErrorFloor(tauA)
	if den == 0 {
		return math.NaN()
	}
	T := num / den
	if T <= 0 {
		return math.NaN()
	}
	return T
}

// ScheduleCondition reports how well a (eta_r, tau_r) sequence satisfies
// Theorem 3's sufficient conditions (eq 21):
//
//	sum eta_r*tau_r -> inf,  sum eta_r^2*tau_r < inf,  sum eta_r^3*tau_r^2 < inf.
//
// For finite sequences "infinite" is judged by divergence rate: the checker
// returns the three partial sums so tests and callers can verify, e.g.,
// that the first grows linearly while the others converge.
type ScheduleCondition struct {
	SumEtaTau   float64 // must diverge
	SumEta2Tau  float64 // must stay bounded
	SumEta3Tau2 float64 // must stay bounded
}

// CheckSchedule computes the Theorem 3 partial sums for the given sequence.
// The slices must have equal length.
func CheckSchedule(etas []float64, taus []int) ScheduleCondition {
	if len(etas) != len(taus) {
		panic("bound: schedule length mismatch")
	}
	var s ScheduleCondition
	for r := range etas {
		eta := etas[r]
		tau := float64(taus[r])
		s.SumEtaTau += eta * tau
		s.SumEta2Tau += eta * eta * tau
		s.SumEta3Tau2 += eta * eta * eta * tau * tau
	}
	return s
}

// VariableTauIterBound evaluates the simplified non-asymptotic bound for a
// variable communication-period sequence at fixed learning rate (appendix
// eq 66):
//
//	2(F1-Finf)/(eta*K) + eta*L*sigma^2/m + eta^2*L^2*sigma^2*(sum tau_j^2/sum tau_j - 1)
//
// with K = sum of tau_j. The last factor is the tau-weighted mean of tau,
// so front-loading large periods (decreasing schedules) costs less than a
// constant schedule with the same total iterations.
func (c Constants) VariableTauIterBound(taus []int) float64 {
	if len(taus) == 0 {
		panic("bound: empty tau sequence")
	}
	sum, sumSq := 0.0, 0.0
	for _, t := range taus {
		if t < 1 {
			panic("bound: tau must be >= 1")
		}
		tf := float64(t)
		sum += tf
		sumSq += tf * tf
	}
	return 2*(c.F1-c.Finf)/(c.Eta*sum) +
		c.Eta*c.L*c.Sigma2/float64(c.M) +
		c.Eta*c.Eta*c.L*c.L*c.Sigma2*(sumSq/sum-1)
}

// FixedTauIterBound evaluates the per-iteration-count error bound of
// Lemma 1 (eq 26): 2(F1-Finf)/(eta*K) + eta*L*sigma^2/m +
// eta^2*L^2*sigma^2*(tau-1). This is the iteration-axis counterpart of
// ErrorAtTime, used to draw the left panel of Fig 1.
func (c Constants) FixedTauIterBound(K, tau int) float64 {
	if K < 1 {
		panic("bound: K must be >= 1")
	}
	return 2*(c.F1-c.Finf)/(c.Eta*float64(K)) + c.ErrorFloor(tau)
}
